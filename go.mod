module github.com/recurpat/rp

go 1.22
