package tsdb

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
)

func randomBinDB(rng *rand.Rand) *DB {
	b := NewBuilder()
	nItems := rng.IntN(20) + 1
	ts := int64(0)
	for t := 0; t < rng.IntN(100); t++ {
		ts += rng.Int64N(50) + 1
		added := false
		for i := 0; i < nItems; i++ {
			if rng.Float64() < 0.3 {
				b.Add(string(rune('A'+i)), ts)
				added = true
			}
		}
		if !added {
			b.Add("A", ts)
		}
	}
	return b.Build()
}

func TestBinaryRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for run := 0; run < 50; run++ {
		db := randomBinDB(rng)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, db); err != nil {
			t.Fatal(err)
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("round trip produced invalid DB: %v", err)
		}
		if got.Len() != db.Len() {
			t.Fatalf("length changed: %d -> %d", db.Len(), got.Len())
		}
		for i := range db.Trans {
			if db.Trans[i].TS != got.Trans[i].TS {
				t.Fatalf("ts changed at %d", i)
			}
			a := db.PatternNames(db.Trans[i].Items)
			b := got.PatternNames(got.Trans[i].Items)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("items changed at ts %d: %v vs %v", db.Trans[i].TS, a, b)
			}
		}
	}
}

func TestBinarySmallerThanText(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 4))
	b := NewBuilder()
	for ts := int64(1); ts <= 2000; ts++ {
		for i := 0; i < 30; i++ {
			if rng.Float64() < 0.2 {
				b.Add("category-with-a-long-name-"+string(rune('a'+i)), ts)
			}
		}
	}
	db := b.Build()
	var text, bin bytes.Buffer
	if err := Write(&text, db); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, db); err != nil {
		t.Fatal(err)
	}
	if bin.Len() >= text.Len()/2 {
		t.Errorf("binary %d bytes vs text %d: expected at least 2x smaller", bin.Len(), text.Len())
	}
}

func TestBinaryRejectsCorruption(t *testing.T) {
	db := randomBinDB(rand.New(rand.NewPCG(9, 9)))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, db); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	cases := map[string][]byte{
		"empty":          {},
		"bad magic":      []byte("NOPE1234"),
		"truncated 8":    full[:min(8, len(full))],
		"truncated half": full[:len(full)/2],
	}
	for name, data := range cases {
		if _, err := ReadBinary(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: ReadBinary accepted corrupt input", name)
		}
	}
	// Flip dictionary bytes so two names collide.
	if _, err := ReadBinary(strings.NewReader("RPDB\x01\x02\x01a\x01a\x00")); err == nil {
		t.Error("duplicate names must be rejected")
	}
}

func TestBinaryEmptyDB(t *testing.T) {
	db := &DB{Dict: NewDictionary()}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, db); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.Dict.Len() != 0 {
		t.Errorf("empty round trip: %d trans, %d items", got.Len(), got.Dict.Len())
	}
}

func TestReadAnyDetectsFormat(t *testing.T) {
	db := randomBinDB(rand.New(rand.NewPCG(11, 11)))
	var text, bin bytes.Buffer
	if err := Write(&text, db); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&bin, db); err != nil {
		t.Fatal(err)
	}
	fromText, err := ReadAny(&text)
	if err != nil {
		t.Fatal(err)
	}
	fromBin, err := ReadAny(&bin)
	if err != nil {
		t.Fatal(err)
	}
	if fromText.Len() != db.Len() || fromBin.Len() != db.Len() {
		t.Errorf("lengths: text %d, bin %d, want %d", fromText.Len(), fromBin.Len(), db.Len())
	}
}
