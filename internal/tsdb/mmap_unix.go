//go:build unix

package tsdb

import (
	"fmt"
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only. mapped=true means the returned
// slice must be released with munmapFile. Empty files get an empty heap
// slice (mmap of length 0 is an error on most Unixes).
func mmapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	if size == 0 {
		return nil, false, nil
	}
	if size < 0 || int64(int(size)) != size {
		return nil, false, fmt.Errorf("tsdb: file too large to map (%d bytes)", size)
	}
	data, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, false, err
	}
	return data, true, nil
}

// munmapFile releases a mapping returned by mmapFile.
func munmapFile(data []byte) error {
	if len(data) == 0 {
		return nil
	}
	return syscall.Munmap(data)
}
