package tsdb

import (
	"bytes"
	"testing"
)

// The fuzz targets run their seed corpus as part of the normal test suite;
// use `go test -fuzz FuzzReadText ./internal/tsdb` for open-ended fuzzing.

func FuzzReadText(f *testing.F) {
	f.Add([]byte("1\ta b g\n2\ta c d\n"))
	f.Add([]byte("# comment\n\n5 x\n"))
	f.Add([]byte("bogus"))
	f.Add([]byte("9223372036854775807\tx\n"))
	f.Add([]byte("-1\tx y z\n-1\tx\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("Read accepted input producing invalid DB: %v", err)
		}
		// Whatever parses must round-trip through the text format.
		var buf bytes.Buffer
		if err := Write(&buf, db); err != nil {
			t.Fatalf("Write failed on parsed DB: %v", err)
		}
		db2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if db2.Len() != db.Len() {
			t.Fatalf("round trip changed length: %d -> %d", db.Len(), db2.Len())
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid encoding and mutations of it.
	b := NewBuilder()
	b.Add("alpha", 1)
	b.Add("beta", 1)
	b.Add("alpha", 7)
	var valid bytes.Buffer
	if err := WriteBinary(&valid, b.Build()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("RPDB"))
	f.Add([]byte("RPDB\x01\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("ReadBinary accepted input producing invalid DB: %v", err)
		}
	})
}

func FuzzReadEvents(f *testing.F) {
	f.Add([]byte("1,a\n2,b\n"))
	f.Add([]byte("x,y\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadEvents(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 1; i < len(events); i++ {
			if events[i-1].TS > events[i].TS {
				t.Fatal("ReadEvents returned unsorted events")
			}
		}
		if db := FromEvents(events); db.Validate() != nil {
			t.Fatal("events produced invalid DB")
		}
	})
}
