package tsdb

import (
	"bytes"
	"testing"
)

// The fuzz targets run their seed corpus as part of the normal test suite;
// use `go test -fuzz FuzzReadText ./internal/tsdb` for open-ended fuzzing.

func FuzzReadText(f *testing.F) {
	f.Add([]byte("1\ta b g\n2\ta c d\n"))
	f.Add([]byte("# comment\n\n5 x\n"))
	f.Add([]byte("bogus"))
	f.Add([]byte("9223372036854775807\tx\n"))
	f.Add([]byte("-1\tx y z\n-1\tx\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := Read(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("Read accepted input producing invalid DB: %v", err)
		}
		// Whatever parses must round-trip through the text format.
		var buf bytes.Buffer
		if err := Write(&buf, db); err != nil {
			t.Fatalf("Write failed on parsed DB: %v", err)
		}
		db2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed: %v", err)
		}
		if db2.Len() != db.Len() {
			t.Fatalf("round trip changed length: %d -> %d", db.Len(), db2.Len())
		}
	})
}

func FuzzReadBinary(f *testing.F) {
	// Seed with a valid encoding and mutations of it.
	b := NewBuilder()
	b.Add("alpha", 1)
	b.Add("beta", 1)
	b.Add("alpha", 7)
	var valid bytes.Buffer
	if err := WriteBinary(&valid, b.Build()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add([]byte("RPDB"))
	f.Add([]byte("RPDB\x01\x00\x00"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		db, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		if err := db.Validate(); err != nil {
			t.Fatalf("ReadBinary accepted input producing invalid DB: %v", err)
		}
	})
}

func FuzzReadParallel(f *testing.F) {
	// Pinned equivalence: the chunked parallel parser and the sequential
	// scanner accept exactly the same language and build identical DBs.
	f.Add([]byte("1\ta b g\n2\ta c d\n"), uint8(4))
	f.Add([]byte("# c\n\n5 x\n5\ty z\n-3 w\n"), uint8(2))
	f.Add([]byte("bogus"), uint8(8))
	f.Add([]byte("1\ta b\n"), uint8(3)) // unicode whitespace splits items
	f.Add([]byte("9223372036854775807\tx\n9223372036854775808\ty\n"), uint8(2))
	f.Fuzz(func(t *testing.T, data []byte, workers uint8) {
		seqDB, seqErr := readSequential(bytes.NewReader(data))
		parDB, parErr := ReadBytesWorkers(data, 1+int(workers%8))
		if (seqErr == nil) != (parErr == nil) {
			t.Fatalf("accept/reject mismatch: sequential %v, parallel %v", seqErr, parErr)
		}
		if seqErr != nil {
			return
		}
		if err := parDB.Validate(); err != nil {
			t.Fatalf("parallel parse produced invalid DB: %v", err)
		}
		if s, p := seqDB.FingerprintUncached(), parDB.FingerprintUncached(); s != p {
			t.Fatalf("fingerprint mismatch: sequential %016x, parallel %016x", s, p)
		}
	})
}

func FuzzMapped(f *testing.F) {
	// Direction 1 (via text seeds): whatever parses must survive a mapped
	// round-trip unchanged. Direction 2 (raw bytes): ReadMapped must reject
	// or produce a valid DB, never panic or accept garbage.
	b := NewBuilder()
	b.Add("alpha", 1)
	b.Add("beta", 1)
	b.Add("alpha", 7)
	var valid bytes.Buffer
	if err := WriteMapped(&valid, b.Build()); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:40])
	f.Add([]byte("RPTDBM02"))
	f.Add([]byte("1\ta b\n2\tc\n"))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if db, err := ReadMapped(data); err == nil {
			if verr := db.Validate(); verr != nil {
				t.Fatalf("ReadMapped accepted input producing invalid DB: %v", verr)
			}
		}
		// Treat the input as text; round-trip every parse through mapped.
		db, err := ReadBytes(data)
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := WriteMapped(&buf, db); err != nil {
			t.Fatalf("WriteMapped failed on parsed DB: %v", err)
		}
		db2, err := ReadMapped(buf.Bytes())
		if err != nil {
			t.Fatalf("mapped round trip failed: %v", err)
		}
		if err := db2.Validate(); err != nil {
			t.Fatalf("mapped round trip produced invalid DB: %v", err)
		}
		if a, b := db.FingerprintUncached(), db2.FingerprintUncached(); a != b {
			t.Fatalf("mapped round trip changed fingerprint: %016x vs %016x", a, b)
		}
	})
}

func FuzzReadEvents(f *testing.F) {
	f.Add([]byte("1,a\n2,b\n"))
	f.Add([]byte("x,y\n"))
	f.Fuzz(func(t *testing.T, data []byte) {
		events, err := ReadEvents(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 1; i < len(events); i++ {
			if events[i-1].TS > events[i].TS {
				t.Fatal("ReadEvents returned unsorted events")
			}
		}
		if db := FromEvents(events); db.Validate() != nil {
			t.Fatal("events produced invalid DB")
		}
	})
}
