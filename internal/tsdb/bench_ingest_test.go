package tsdb

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"strconv"
	"sync"
	"testing"
)

// benchText is the shared benchmark corpus: a realistic TDB text database
// (dense lines, modest dictionary, strictly increasing timestamps, ~16MB)
// generated once per process.
var benchText = sync.OnceValue(func() []byte {
	rng := rand.New(rand.NewPCG(2024, 7))
	var buf bytes.Buffer
	buf.Grow(16 << 20)
	ts := int64(0)
	for buf.Len() < 16<<20 {
		ts += 1 + rng.Int64N(5)
		buf.WriteString(strconv.FormatInt(ts, 10))
		buf.WriteByte('\t')
		n := 2 + rng.IntN(10)
		for j := 0; j < n; j++ {
			if j > 0 {
				buf.WriteByte(' ')
			}
			fmt.Fprintf(&buf, "item-%04d", rng.IntN(4000))
		}
		buf.WriteByte('\n')
	}
	return buf.Bytes()
})

func BenchmarkIngestTextSequential(b *testing.B) {
	data := benchText()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := readSequential(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestTextParallel(b *testing.B) {
	data := benchText()
	for _, workers := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			b.SetBytes(int64(len(data)))
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := ReadBytesWorkers(data, workers); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkIngestBinaryV1(b *testing.B) {
	db, err := ReadBytes(benchText())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBinary(&buf, db); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestMappedView(b *testing.B) {
	// In-memory v2 open: header validation + index materialization, no
	// per-item decode. The MB/s here is "bytes made minable per second".
	db, err := ReadBytes(benchText())
	if err != nil {
		b.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteMapped(&buf, db); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadMapped(data); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkIngestMappedOpen(b *testing.B) {
	// Full OpenMapped latency: open, mmap, validate, materialize, close.
	db, err := ReadBytes(benchText())
	if err != nil {
		b.Fatal(err)
	}
	path := filepath.Join(b.TempDir(), "bench.tsdbm")
	f, err := os.Create(path)
	if err != nil {
		b.Fatal(err)
	}
	if err := WriteMapped(f, db); err != nil {
		b.Fatal(err)
	}
	if err := f.Close(); err != nil {
		b.Fatal(err)
	}
	st, err := os.Stat(path)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(st.Size())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := OpenMapped(path)
		if err != nil {
			b.Fatal(err)
		}
		if err := m.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
