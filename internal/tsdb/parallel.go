package tsdb

import (
	"bytes"
	"cmp"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"unicode"
	"unicode/utf8"
)

// Chunked parallel text ingest (the One Billion Row Challenge playbook,
// adapted to the TDB text format):
//
//  1. Split the input on newline boundaries into ~4×workers byte chunks.
//  2. Each worker parses its chunk with zero-copy []byte scanning into a
//     partial: a chunk-local dictionary (names in chunk first-seen order)
//     and chunk-local transactions (timestamp → local item IDs), sorted by
//     timestamp while still inside the worker.
//  3. A deterministic merge interns each partial's names into the global
//     dictionary in chunk order — which reproduces the whole-file
//     first-seen intern order exactly, since a name's first occurrence
//     lies in the first chunk that mentions it — then k-way merges the
//     sorted partial transaction lists, remapping local to global IDs.
//  4. A final parallel pass sorts and dedups every transaction's items.
//
// The result is byte-identical (same fingerprint) to the sequential
// parser's for every input both accept; see TestReadBytesMatchesSequential
// and FuzzReadParallel for the pinned equivalence.

// maxLineLen bounds one input line, matching the sequential parser's
// bufio.Scanner token limit so both paths accept the same language.
const maxLineLen = 16 * 1024 * 1024

// minChunkBytes keeps tiny inputs on a single worker: below it the
// scheduling and merge overhead costs more than the parallelism returns.
const minChunkBytes = 64 * 1024

// ReadBytes parses a database from the text transaction format held in
// memory, using up to GOMAXPROCS parallel chunk parsers. It accepts
// exactly the language Read accepts and produces an identical database
// (same dictionary order, same fingerprint).
func ReadBytes(data []byte) (*DB, error) {
	return ReadBytesWorkers(data, runtime.GOMAXPROCS(0))
}

// ReadBytesWorkers is ReadBytes with an explicit worker count; values
// below 2 (or inputs too small to split) parse on the calling goroutine.
func ReadBytesWorkers(data []byte, workers int) (*DB, error) {
	chunks := splitChunks(data, chunkCount(len(data), workers))
	parts := make([]*ingestPartial, len(chunks))
	if len(chunks) <= 1 {
		for i, c := range chunks {
			parts[i] = parseChunk(c.data, c.off)
		}
	} else {
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for i, c := range chunks {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, c ingestChunk) {
				defer wg.Done()
				parts[i] = parseChunk(c.data, c.off)
				<-sem
			}(i, c)
		}
		wg.Wait()
	}
	return mergePartials(data, parts, workers)
}

// chunkCount picks how many chunks to split n bytes into: roughly four
// per worker for balance (chunks parse at different speeds), floored so
// no chunk drops under minChunkBytes.
func chunkCount(n, workers int) int {
	if workers < 2 || n < 2*minChunkBytes {
		return 1
	}
	c := 4 * workers
	if max := n / minChunkBytes; c > max {
		c = max
	}
	if c < 1 {
		c = 1
	}
	return c
}

// ingestChunk is one newline-aligned slice of the input and its byte
// offset in the whole buffer (for error line numbers).
type ingestChunk struct {
	data []byte
	off  int
}

// splitChunks cuts data into at most n chunks, advancing every boundary
// to the byte after the next '\n' so no line spans two chunks. The final
// chunk keeps any unterminated last line.
func splitChunks(data []byte, n int) []ingestChunk {
	if n <= 1 || len(data) == 0 {
		return []ingestChunk{{data: data}}
	}
	chunks := make([]ingestChunk, 0, n)
	target := len(data) / n
	start := 0
	for start < len(data) {
		if len(chunks) == n-1 {
			chunks = append(chunks, ingestChunk{data: data[start:], off: start})
			break
		}
		end := start + target
		if end >= len(data) {
			end = len(data)
		} else {
			nl := bytes.IndexByte(data[end:], '\n')
			if nl < 0 {
				end = len(data)
			} else {
				end += nl + 1
			}
		}
		chunks = append(chunks, ingestChunk{data: data[start:end], off: start})
		start = end
	}
	return chunks
}

// partialTx is one chunk-local transaction: a timestamp and the local
// item IDs observed at it, in input order, duplicates included.
type partialTx struct {
	ts    int64
	items []ItemID // chunk-local IDs; remapped during the merge
}

// ingestPartial is one worker's chunk parse result.
type ingestPartial struct {
	names []string          // chunk-local dictionary, first-seen order
	ids   map[string]ItemID // name → chunk-local ID
	trans []partialTx       // sorted by ts, one entry per distinct ts

	err    error // first parse error in the chunk, with a placeholder line
	errOff int   // absolute byte offset of the offending line (for line numbers)
}

// asciiSpace marks the ASCII whitespace bytes strings.Fields splits on.
var asciiSpace = [256]bool{'\t': true, '\n': true, '\v': true, '\f': true, '\r': true, ' ': true}

// parseChunk scans one newline-aligned chunk with zero-copy []byte
// operations: no sc.Text() string churn, map lookups via the compiler's
// string(b) key optimization, and a single map access pair per line.
// Semantics mirror the sequential parser exactly: lines are trimmed,
// '#' comments and blanks skipped, the timestamp is cut at the first tab
// (or, failing that, the first space), and items split on whitespace.
func parseChunk(chunk []byte, base int) *ingestPartial {
	p := &ingestPartial{ids: make(map[string]ItemID), errOff: -1}
	groups := make(map[int64]int) // ts → index into p.trans
	for off := 0; off < len(chunk); {
		lineStart := off
		var line []byte
		if nl := bytes.IndexByte(chunk[off:], '\n'); nl >= 0 {
			line = chunk[off : off+nl]
			off += nl + 1
		} else {
			line = chunk[off:]
			off = len(chunk)
		}
		if len(line) > maxLineLen {
			p.fail(base+lineStart, fmt.Errorf("line longer than %d bytes", maxLineLen))
			return p
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 || line[0] == '#' {
			continue
		}
		tsb, rest, ok := cutByte(line, '\t')
		if !ok {
			tsb, rest, ok = cutByte(line, ' ')
			if !ok {
				p.fail(base+lineStart, fmt.Errorf("missing item list"))
				return p
			}
		}
		ts, err := parseTimestamp(bytes.TrimSpace(tsb))
		if err != nil {
			p.fail(base+lineStart, fmt.Errorf("bad timestamp %q: %v", tsb, err))
			return p
		}
		// One group lookup per line: all its items share the timestamp.
		gi, seen := groups[ts]
		if !seen {
			gi = len(p.trans)
			groups[ts] = gi
			p.trans = append(p.trans, partialTx{ts: ts})
		}
		items := p.trans[gi].items
		n := len(items)
		for len(rest) > 0 {
			tok := nextField(&rest)
			if tok == nil {
				break
			}
			id, ok := p.ids[string(tok)] // no alloc: map lookup on []byte key
			if !ok {
				name := string(tok)
				id = ItemID(len(p.names))
				p.ids[name] = id
				p.names = append(p.names, name)
			}
			items = append(items, id)
		}
		if len(items) == n {
			p.fail(base+lineStart, fmt.Errorf("empty transaction"))
			return p
		}
		p.trans[gi].items = items
	}
	slices.SortFunc(p.trans, func(a, b partialTx) int { return cmp.Compare(a.ts, b.ts) })
	return p
}

// fail records the chunk's parse error with the offending line's absolute
// byte offset; the merge converts offsets to line numbers (counting
// newlines only on the error path keeps the hot loop clean).
func (p *ingestPartial) fail(off int, err error) {
	p.err, p.errOff = err, off
}

// cutByte is strings.Cut for a byte separator on a []byte, allocation-free.
func cutByte(b []byte, sep byte) (before, after []byte, found bool) {
	if i := bytes.IndexByte(b, sep); i >= 0 {
		return b[:i], b[i+1:], true
	}
	return b, nil, false
}

// nextField returns the next whitespace-separated token of *rest and
// advances past it, with strings.Fields semantics: ASCII whitespace via a
// table, multi-byte runes through unicode.IsSpace. Returns nil when only
// whitespace remains.
func nextField(rest *[]byte) []byte {
	b := *rest
	i := 0
	for i < len(b) {
		if c := b[i]; c < utf8.RuneSelf {
			if !asciiSpace[c] {
				break
			}
			i++
			continue
		}
		r, size := utf8.DecodeRune(b[i:])
		if !unicode.IsSpace(r) {
			break
		}
		i += size
	}
	if i == len(b) {
		*rest = nil
		return nil
	}
	start := i
	for i < len(b) {
		if c := b[i]; c < utf8.RuneSelf {
			if asciiSpace[c] {
				break
			}
			i++
			continue
		}
		r, size := utf8.DecodeRune(b[i:])
		if unicode.IsSpace(r) {
			break
		}
		i += size
	}
	*rest = b[i:]
	return b[start:i]
}

// parseTimestamp is strconv.ParseInt(string(b), 10, 64) over bytes,
// allocation-free, with the same accepted language (optional sign, base-10
// digits, overflow rejected).
func parseTimestamp(b []byte) (int64, error) {
	if len(b) == 0 {
		return 0, fmt.Errorf("empty")
	}
	neg := false
	switch b[0] {
	case '-':
		neg = true
		b = b[1:]
	case '+':
		b = b[1:]
	}
	if len(b) == 0 {
		return 0, fmt.Errorf("no digits")
	}
	var v uint64
	for _, c := range b {
		if c < '0' || c > '9' {
			return 0, fmt.Errorf("invalid digit %q", c)
		}
		d := uint64(c - '0')
		if v > (1<<63)/10 {
			return 0, fmt.Errorf("value out of range")
		}
		v = v*10 + d
	}
	if neg {
		if v > 1<<63 {
			return 0, fmt.Errorf("value out of range")
		}
		return -int64(v-1) - 1, nil // avoids overflow for exactly 1<<63
	}
	if v > 1<<63-1 {
		return 0, fmt.Errorf("value out of range")
	}
	return int64(v), nil
}

// mergePartials combines the chunk parse results into one DB. The merge is
// deterministic: partials are visited in chunk (input) order, so the
// global dictionary reproduces the whole-file first-seen intern order, and
// the k-way timestamp merge breaks ties by chunk order, so concatenated
// item lists are stable before the final sort+dedup normalizes them.
func mergePartials(data []byte, parts []*ingestPartial, workers int) (*DB, error) {
	// The earliest failing line wins, as the sequential parser would have
	// stopped there; its line number is recovered by counting newlines.
	errOff, errAt := -1, -1
	for i, p := range parts {
		if p.err != nil && (errOff < 0 || p.errOff < errOff) {
			errOff, errAt = p.errOff, i
		}
	}
	if errAt >= 0 {
		line := 1 + bytes.Count(data[:errOff], []byte{'\n'})
		return nil, fmt.Errorf("tsdb: line %d: %v", line, parts[errAt].err)
	}

	// Global dictionary: intern every partial's names in chunk order.
	dict := NewDictionary()
	remaps := make([][]ItemID, len(parts))
	if len(parts) == 1 {
		// Single chunk: its local dictionary already is the global one.
		p := parts[0]
		if p.names != nil {
			dict = &Dictionary{byName: p.ids, names: p.names}
		}
		remaps[0] = nil // identity
	} else {
		for i, p := range parts {
			rm := make([]ItemID, len(p.names))
			for j, name := range p.names {
				rm[j] = dict.Intern(name)
			}
			remaps[i] = rm
		}
	}

	// K-way merge of the sorted partial transaction lists. Equal
	// timestamps across chunks concatenate in chunk order; the items stay
	// local IDs here and are remapped during the copy.
	total := 0
	for _, p := range parts {
		total += len(p.trans)
	}
	trans := make([]Transaction, 0, total)
	heads := make([]int, len(parts))
	for {
		best := -1
		var bestTS int64
		for i, p := range parts {
			if heads[i] >= len(p.trans) {
				continue
			}
			if ts := p.trans[heads[i]].ts; best < 0 || ts < bestTS {
				best, bestTS = i, ts
			}
		}
		if best < 0 {
			break
		}
		var items []ItemID
		for i := best; i < len(parts); i++ {
			p := parts[i]
			if heads[i] >= len(p.trans) || p.trans[heads[i]].ts != bestTS {
				continue
			}
			local := p.trans[heads[i]].items
			heads[i]++
			if rm := remaps[i]; rm != nil {
				for _, lid := range local {
					items = append(items, rm[lid])
				}
			} else if items == nil {
				items = local
			} else {
				items = append(items, local...)
			}
		}
		trans = append(trans, Transaction{TS: bestTS, Items: items})
	}

	normalizeItems(trans, workers)
	return &DB{Dict: dict, Trans: trans}, nil
}

// normalizeItems sorts and dedups every transaction's item list, in
// parallel for large databases. Per-transaction work is independent, so
// the split is a plain index partition.
func normalizeItems(trans []Transaction, workers int) {
	if workers > len(trans)/1024 {
		workers = len(trans) / 1024
	}
	if workers < 2 {
		for i := range trans {
			trans[i].Items = sortDedup(trans[i].Items)
		}
		return
	}
	var wg sync.WaitGroup
	stride := (len(trans) + workers - 1) / workers
	for start := 0; start < len(trans); start += stride {
		end := start + stride
		if end > len(trans) {
			end = len(trans)
		}
		wg.Add(1)
		go func(part []Transaction) {
			defer wg.Done()
			for i := range part {
				part[i].Items = sortDedup(part[i].Items)
			}
		}(trans[start:end])
	}
	wg.Wait()
}

// sortDedup sorts an item list and removes duplicates in place.
func sortDedup(items []ItemID) []ItemID {
	slices.Sort(items)
	return slices.Compact(items)
}
