// Package tsdb models time series data as temporally ordered transactional
// databases, following Section 3 of Kiran et al., "Discovering Recurring
// Patterns in Time Series" (EDBT 2015).
//
// A time series is an event sequence: an ordered collection of (item,
// timestamp) pairs. Grouping the items that share a timestamp yields a
// transactional database whose transactions are uniquely keyed by their
// timestamps. The point sequence of every pattern is preserved by this
// construction, so no temporal information is lost (paper Definition 2 and
// Example 2).
package tsdb

import (
	"cmp"
	"fmt"
	"slices"
)

// ItemID is a dense integer identifier assigned to an item (event type) by a
// Dictionary. All mining code operates on ItemIDs; human-readable names are
// restored through the owning Dictionary when results are rendered.
type ItemID uint32

// Event is a single observation in a time series: an item occurring at a
// timestamp (paper Definition 1).
type Event struct {
	Item string
	TS   int64
}

// EventSequence is an ordered collection of events. Ordering is by
// timestamp; events sharing a timestamp may appear in any relative order.
type EventSequence []Event

// Sort orders the sequence by timestamp, breaking ties by item name so the
// result is deterministic.
func (s EventSequence) Sort() {
	slices.SortFunc(s, func(a, b Event) int {
		if a.TS != b.TS {
			return cmp.Compare(a.TS, b.TS)
		}
		return cmp.Compare(a.Item, b.Item)
	})
}

// PointSequence returns the ordered occurrence timestamps of item within the
// sequence (paper Definition 2). The sequence need not be pre-sorted.
func (s EventSequence) PointSequence(item string) []int64 {
	var ts []int64
	for _, e := range s {
		if e.Item == item {
			ts = append(ts, e.TS)
		}
	}
	slices.Sort(ts)
	return dedupInt64(ts)
}

func dedupInt64(ts []int64) []int64 {
	if len(ts) < 2 {
		return ts
	}
	out := ts[:1]
	for _, t := range ts[1:] {
		if t != out[len(out)-1] {
			out = append(out, t)
		}
	}
	return out
}

// Dictionary interns item names, assigning each distinct name a dense ItemID
// in first-seen order.
type Dictionary struct {
	byName map[string]ItemID
	names  []string
}

// NewDictionary returns an empty dictionary.
func NewDictionary() *Dictionary {
	return &Dictionary{byName: make(map[string]ItemID)}
}

// Intern returns the ItemID for name, assigning a fresh ID if the name has
// not been seen before.
func (d *Dictionary) Intern(name string) ItemID {
	if id, ok := d.byName[name]; ok {
		return id
	}
	id := ItemID(len(d.names))
	d.byName[name] = id
	d.names = append(d.names, name)
	return id
}

// Lookup returns the ItemID for name and whether it is known.
func (d *Dictionary) Lookup(name string) (ItemID, bool) {
	id, ok := d.byName[name]
	return id, ok
}

// Name returns the item name for id. It panics if id was never assigned,
// since that always indicates a programming error (IDs only come from
// Intern).
func (d *Dictionary) Name(id ItemID) string {
	if int(id) >= len(d.names) {
		panic(fmt.Sprintf("tsdb: unknown ItemID %d (dictionary has %d items)", id, len(d.names)))
	}
	return d.names[id]
}

// Len reports the number of distinct interned items.
func (d *Dictionary) Len() int { return len(d.names) }

// Names returns the interned names in ID order. The returned slice is shared
// with the dictionary and must not be modified.
func (d *Dictionary) Names() []string { return d.names }
