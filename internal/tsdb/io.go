package tsdb

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// The on-disk transaction format is one transaction per line:
//
//	<timestamp>\t<item> <item> ...
//
// Timestamps are base-10 integers. Items are whitespace-free tokens
// separated by single spaces. Lines starting with '#' and blank lines are
// ignored on read. This mirrors the layout of the classic FIMI / Quest
// transaction files with an added timestamp column.

// Write serializes the database in the text transaction format.
func Write(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	for _, tr := range db.Trans {
		if _, err := bw.WriteString(strconv.FormatInt(tr.TS, 10)); err != nil {
			return err
		}
		if err := bw.WriteByte('\t'); err != nil {
			return err
		}
		for i, id := range tr.Items {
			if i > 0 {
				if err := bw.WriteByte(' '); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(db.Dict.Name(id)); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Read parses a database from the text transaction format. Transactions may
// appear in any order and duplicate timestamps are merged; the result is
// temporally ordered.
//
// When the input is already in memory (*bytes.Buffer) or seekable (a file,
// *bytes.Reader, *strings.Reader), Read slurps it and parses through the
// chunked parallel path (ReadBytes); true streams fall back to the
// sequential line scanner. Both paths accept the same language and produce
// identical databases.
func Read(r io.Reader) (*DB, error) {
	if data, ok, err := slurp(r); ok {
		if err != nil {
			return nil, err
		}
		return ReadBytes(data)
	}
	return readSequential(r)
}

// slurp returns the reader's full contents when that is cheap and safe:
// buffered readers hand over their bytes, seekable ones are read to EOF.
// ok=false means the caller should stream instead.
func slurp(r io.Reader) (data []byte, ok bool, err error) {
	switch v := r.(type) {
	case *bytes.Buffer:
		return v.Bytes(), true, nil
	case io.ReadSeeker:
		data, err := io.ReadAll(v)
		return data, true, err
	}
	return nil, false, nil
}

// readSequential is the streaming text parser: one bufio.Scanner pass,
// used for pipes and other non-seekable inputs (and by tests as the
// reference implementation the parallel parser must match).
func readSequential(r io.Reader) (*DB, error) {
	b := NewBuilder()
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tsStr, rest, ok := strings.Cut(line, "\t")
		if !ok {
			// Accept a space separator after the timestamp as well.
			tsStr, rest, ok = strings.Cut(line, " ")
			if !ok {
				return nil, fmt.Errorf("tsdb: line %d: missing item list", lineNo)
			}
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(tsStr), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tsdb: line %d: bad timestamp %q: %v", lineNo, tsStr, err)
		}
		fields := strings.Fields(rest)
		if len(fields) == 0 {
			return nil, fmt.Errorf("tsdb: line %d: empty transaction", lineNo)
		}
		for _, f := range fields {
			b.Add(f, ts)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return b.Build(), nil
}

// ReadEvents parses an event sequence from lines of the form
//
//	<timestamp>,<item>
//
// one event per line, in any order. Lines starting with '#' and blank lines
// are ignored.
func ReadEvents(r io.Reader) (EventSequence, error) {
	var events EventSequence
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		tsStr, item, ok := strings.Cut(line, ",")
		if !ok {
			return nil, fmt.Errorf("tsdb: line %d: want \"timestamp,item\"", lineNo)
		}
		ts, err := strconv.ParseInt(strings.TrimSpace(tsStr), 10, 64)
		if err != nil {
			return nil, fmt.Errorf("tsdb: line %d: bad timestamp %q: %v", lineNo, tsStr, err)
		}
		item = strings.TrimSpace(item)
		if item == "" {
			return nil, fmt.Errorf("tsdb: line %d: empty item", lineNo)
		}
		events = append(events, Event{Item: item, TS: ts})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	events.Sort()
	return events, nil
}
