package tsdb

import (
	"bytes"
	"encoding/binary"
	"os"
	"path/filepath"
	"testing"
)

func mappedTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := ReadBytes(genText(42, 800))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// shiftNonNeg rebases timestamps to start at zero: the v1 binary format
// delta-encodes from 0 and cannot represent a negative first timestamp,
// so cross-format tests use a rebased database.
func shiftNonNeg(db *DB) *DB {
	if db.Len() == 0 || db.Trans[0].TS >= 0 {
		return db
	}
	shift := -db.Trans[0].TS
	trans := make([]Transaction, len(db.Trans))
	for i, tr := range db.Trans {
		trans[i] = Transaction{TS: tr.TS + shift, Items: tr.Items}
	}
	return &DB{Dict: db.Dict, Trans: trans}
}

func TestMappedRoundTripBuffer(t *testing.T) {
	want := mappedTestDB(t)
	var buf bytes.Buffer
	if err := WriteMapped(&buf, want); err != nil {
		t.Fatal(err)
	}
	got, err := ReadMapped(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("mapped view invalid: %v", err)
	}
	requireSameDB(t, got, want)

	// Determinism: writing the same DB twice yields identical bytes.
	var buf2 bytes.Buffer
	if err := WriteMapped(&buf2, want); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Error("WriteMapped is not byte-deterministic")
	}
}

func TestMappedRoundTripFile(t *testing.T) {
	want := mappedTestDB(t)
	path := filepath.Join(t.TempDir(), "db.tsdbm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMapped(f, want); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	m, err := OpenMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if m.StoredFingerprint() != want.Fingerprint() {
		t.Errorf("stored fingerprint %016x, want %016x", m.StoredFingerprint(), want.Fingerprint())
	}
	if err := m.Verify(); err != nil {
		t.Errorf("Verify: %v", err)
	}
	requireSameDB(t, m.DB(), want)
}

func TestMappedEmptyDB(t *testing.T) {
	for _, db := range []*DB{NewBuilder().Build(), {}} {
		var buf bytes.Buffer
		if err := WriteMapped(&buf, db); err != nil {
			t.Fatal(err)
		}
		got, err := ReadMapped(buf.Bytes())
		if err != nil {
			t.Fatal(err)
		}
		if got.Len() != 0 || got.Dict.Len() != 0 {
			t.Errorf("empty DB round-tripped to %d transactions, %d items", got.Len(), got.Dict.Len())
		}
	}
}

func TestMappedRejectsCorrupt(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteMapped(&buf, mappedTestDB(t)); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Every strict prefix must be rejected (truncation at any point).
	for _, n := range []int{0, 4, 8, 16, mappedHeaderSize - 1, mappedDataStart - 1, mappedDataStart + 5, len(valid) - 1} {
		if _, err := ReadMapped(valid[:n]); err == nil {
			t.Errorf("truncation to %d bytes accepted", n)
		}
	}

	corrupt := func(name string, mutate func(b []byte)) {
		b := bytes.Clone(valid)
		mutate(b)
		if _, err := ReadMapped(b); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
	corrupt("bad magic", func(b []byte) { b[0] = 'X' })
	corrupt("bad version", func(b []byte) { binary.LittleEndian.PutUint32(b[8:], 99) })
	corrupt("big-endian flag", func(b []byte) { binary.LittleEndian.PutUint32(b[12:], 0) })
	corrupt("implausible item count", func(b []byte) { binary.LittleEndian.PutUint64(b[16:], 1<<40) })
	corrupt("section out of bounds", func(b []byte) {
		binary.LittleEndian.PutUint64(b[mappedHeaderSize:], uint64(len(valid)+8))
	})
	corrupt("misaligned section", func(b []byte) {
		off := binary.LittleEndian.Uint64(b[mappedHeaderSize:])
		binary.LittleEndian.PutUint64(b[mappedHeaderSize:], off+4)
	})
	corrupt("section count", func(b []byte) { binary.LittleEndian.PutUint64(b[48:], 7) })
	corrupt("row offsets out of order", func(b []byte) {
		// Section 3's second entry (first row end) jumps past totalItems.
		base := mappedHeaderSize + secRowOffsets*mappedSectionSize
		off := binary.LittleEndian.Uint64(b[base:])
		binary.LittleEndian.PutUint64(b[off+8:], 1<<50)
	})
	corrupt("timestamps out of order", func(b []byte) {
		base := mappedHeaderSize + secTimestamps*mappedSectionSize
		off := binary.LittleEndian.Uint64(b[base:])
		// Make the second timestamp equal the first: duplicates are invalid.
		first := binary.LittleEndian.Uint64(b[off:])
		binary.LittleEndian.PutUint64(b[off+8:], first)
	})
	corrupt("name offsets regress", func(b []byte) {
		base := mappedHeaderSize + secNameOffsets*mappedSectionSize
		off := binary.LittleEndian.Uint64(b[base:])
		binary.LittleEndian.PutUint64(b[off+8:], 1<<50)
	})
}

// canonicalDB returns a database whose dictionary intern order matches
// its own text serialization (the text format stores no dictionary, so a
// text round-trip re-interns in timestamp order; parsing the DB's own
// Write output makes that a fixed point). Cross-format equivalence tests
// start here so text, v1 and v2 loads can be representation-identical.
func canonicalDB(t *testing.T) *DB {
	t.Helper()
	base := shiftNonNeg(mappedTestDB(t))
	var text bytes.Buffer
	if err := Write(&text, base); err != nil {
		t.Fatal(err)
	}
	db, err := ReadBytes(text.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestReadAnyBytesDispatch(t *testing.T) {
	want := canonicalDB(t)
	var text, v1, v2 bytes.Buffer
	if err := Write(&text, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteBinary(&v1, want); err != nil {
		t.Fatal(err)
	}
	if err := WriteMapped(&v2, want); err != nil {
		t.Fatal(err)
	}
	for name, data := range map[string][]byte{"text": text.Bytes(), "v1": v1.Bytes(), "v2": v2.Bytes()} {
		got, err := ReadAnyBytes(data)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		requireSameDB(t, got, want)

		// ReadAny over a stream (no Seek, no Bytes) must agree too.
		gotStream, err := ReadAny(onlyReader{bytes.NewReader(data)})
		if err != nil {
			t.Fatalf("%s stream: %v", name, err)
		}
		requireSameDB(t, gotStream, want)
	}
}

func TestOpenFileFormats(t *testing.T) {
	want := canonicalDB(t)
	dir := t.TempDir()
	write := func(name string, fn func(f *os.File) error) string {
		t.Helper()
		path := filepath.Join(dir, name)
		f, err := os.Create(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := fn(f); err != nil {
			t.Fatal(err)
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		return path
	}
	textPath := write("db.tdb", func(f *os.File) error { return Write(f, want) })
	v1Path := write("db.rpdb", func(f *os.File) error { return WriteBinary(f, want) })
	v2Path := write("db.tsdbm", func(f *os.File) error { return WriteMapped(f, want) })

	for path, wantMapped := range map[string]bool{textPath: false, v1Path: false, v2Path: true} {
		fh, err := OpenFile(path)
		if err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if fh.Mapped() != wantMapped {
			t.Errorf("%s: Mapped() = %v, want %v", path, fh.Mapped(), wantMapped)
		}
		requireSameDB(t, fh.DB(), want)
		if err := fh.Close(); err != nil {
			t.Errorf("%s: Close: %v", path, err)
		}
	}

	// ReadFile agrees with OpenFile on every format.
	for _, path := range []string{textPath, v1Path, v2Path} {
		db, err := ReadFile(path)
		if err != nil {
			t.Fatalf("ReadFile(%s): %v", path, err)
		}
		requireSameDB(t, db, want)
	}
}

func TestFingerprintCachedAcrossRoundTrips(t *testing.T) {
	// Satellite: Fingerprint is computed once and cached; the cached value
	// must match a fresh recompute, including after format round-trips.
	db := canonicalDB(t)
	fp := db.Fingerprint()
	if fp != db.FingerprintUncached() {
		t.Fatal("cached fingerprint diverges from recompute")
	}
	if fp != db.Fingerprint() {
		t.Fatal("second Fingerprint call changed the value")
	}

	var v1, v2, text bytes.Buffer
	if err := WriteBinary(&v1, db); err != nil {
		t.Fatal(err)
	}
	if err := WriteMapped(&v2, db); err != nil {
		t.Fatal(err)
	}
	if err := Write(&text, db); err != nil {
		t.Fatal(err)
	}
	for name, load := range map[string]func() (*DB, error){
		"v1":   func() (*DB, error) { return ReadBinary(bytes.NewReader(v1.Bytes())) },
		"v2":   func() (*DB, error) { return ReadMapped(v2.Bytes()) },
		"text": func() (*DB, error) { return ReadBytes(text.Bytes()) },
	} {
		got, err := load()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got.Fingerprint() != fp {
			t.Errorf("%s round-trip changed fingerprint: %016x vs %016x", name, got.Fingerprint(), fp)
		}
		if got.Fingerprint() != got.FingerprintUncached() {
			t.Errorf("%s: cached fingerprint diverges from recompute", name)
		}
	}
}
