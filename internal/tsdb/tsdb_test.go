package tsdb

import (
	"bytes"
	"math/rand/v2"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestDictionaryIntern(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("a")
	b := d.Intern("b")
	if a == b {
		t.Fatal("distinct names must get distinct IDs")
	}
	if got := d.Intern("a"); got != a {
		t.Errorf("re-interning a = %d, want %d", got, a)
	}
	if d.Len() != 2 {
		t.Errorf("Len = %d, want 2", d.Len())
	}
	if d.Name(a) != "a" || d.Name(b) != "b" {
		t.Error("Name round-trip failed")
	}
	if _, ok := d.Lookup("c"); ok {
		t.Error("Lookup of unknown name must report !ok")
	}
	if got := d.Names(); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Errorf("Names = %v", got)
	}
}

func TestDictionaryNamePanicsOnUnknownID(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Name of unassigned ID should panic")
		}
	}()
	NewDictionary().Name(3)
}

func TestEventSequenceSortAndPointSequence(t *testing.T) {
	s := EventSequence{
		{Item: "b", TS: 3}, {Item: "a", TS: 1}, {Item: "a", TS: 3},
		{Item: "a", TS: 2}, {Item: "a", TS: 1}, // duplicate event
	}
	s.Sort()
	for i := 1; i < len(s); i++ {
		if s[i-1].TS > s[i].TS {
			t.Fatalf("not sorted at %d: %v", i, s)
		}
	}
	got := s.PointSequence("a")
	want := []int64{1, 2, 3}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PointSequence(a) = %v, want %v", got, want)
	}
	if got := s.PointSequence("zzz"); got != nil {
		t.Errorf("PointSequence of absent item = %v, want nil", got)
	}
}

func TestBuilderGroupsByTimestamp(t *testing.T) {
	b := NewBuilder()
	b.Add("x", 5)
	b.Add("y", 5)
	b.Add("x", 5) // duplicate collapses
	b.Add("z", 2)
	db := b.Build()
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
	if db.Trans[0].TS != 2 || db.Trans[1].TS != 5 {
		t.Errorf("transactions not time-ordered: %+v", db.Trans)
	}
	if len(db.Trans[1].Items) != 2 {
		t.Errorf("duplicate add not collapsed: %+v", db.Trans[1])
	}
	if err := db.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestBuilderAddIDs(t *testing.T) {
	b := NewBuilder()
	x := b.Dict().Intern("x")
	y := b.Dict().Intern("y")
	b.AddIDs(1, y, x)
	b.AddIDs(1, x)
	db := b.Build()
	if db.Len() != 1 {
		t.Fatalf("Len = %d, want 1", db.Len())
	}
	if !reflect.DeepEqual(db.Trans[0].Items, []ItemID{x, y}) {
		t.Errorf("items = %v, want sorted [%d %d]", db.Trans[0].Items, x, y)
	}
}

func TestTransactionContains(t *testing.T) {
	tr := Transaction{TS: 1, Items: []ItemID{1, 3, 5, 9}}
	cases := []struct {
		pattern []ItemID
		want    bool
	}{
		{nil, true},
		{[]ItemID{1}, true},
		{[]ItemID{9}, true},
		{[]ItemID{1, 9}, true},
		{[]ItemID{1, 3, 5, 9}, true},
		{[]ItemID{2}, false},
		{[]ItemID{1, 2}, false},
		{[]ItemID{0, 1}, false},
		{[]ItemID{9, 10}, false},
	}
	for _, c := range cases {
		if got := tr.Contains(c.pattern); got != c.want {
			t.Errorf("Contains(%v) = %v, want %v", c.pattern, got, c.want)
		}
	}
}

func TestTSListMatchesPointSequences(t *testing.T) {
	// TS^X from the DB must equal the intersection of the items' point
	// sequences in the original event sequence (the "no information loss"
	// claim of paper Section 3).
	f := func(seed uint64) bool {
		rng := rand.New(rand.NewPCG(seed, 1))
		var events EventSequence
		names := []string{"a", "b", "c", "d"}
		for ts := int64(1); ts <= 40; ts++ {
			for _, n := range names {
				if rng.Float64() < 0.4 {
					events = append(events, Event{Item: n, TS: ts})
				}
			}
		}
		db := FromEvents(events)
		pattern, err := db.InternPattern([]string{"a", "b"})
		if err != nil {
			// One of the items never occurred; fine.
			return true
		}
		got := db.TSList(pattern)
		// Reference: timestamps present in both point sequences.
		pa := events.PointSequence("a")
		pb := events.PointSequence("b")
		inB := make(map[int64]bool, len(pb))
		for _, ts := range pb {
			inB[ts] = true
		}
		var want []int64
		for _, ts := range pa {
			if inB[ts] {
				want = append(want, ts)
			}
		}
		return reflect.DeepEqual(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsCorruptDBs(t *testing.T) {
	d := NewDictionary()
	a := d.Intern("a")
	b := d.Intern("b")
	cases := []struct {
		name string
		db   *DB
	}{
		{"nil dict", &DB{}},
		{"unsorted ts", &DB{Dict: d, Trans: []Transaction{
			{TS: 5, Items: []ItemID{a}}, {TS: 3, Items: []ItemID{a}}}}},
		{"duplicate ts", &DB{Dict: d, Trans: []Transaction{
			{TS: 5, Items: []ItemID{a}}, {TS: 5, Items: []ItemID{b}}}}},
		{"empty transaction", &DB{Dict: d, Trans: []Transaction{{TS: 1}}}},
		{"unknown item", &DB{Dict: d, Trans: []Transaction{
			{TS: 1, Items: []ItemID{99}}}}},
		{"unsorted items", &DB{Dict: d, Trans: []Transaction{
			{TS: 1, Items: []ItemID{b, a}}}}},
		{"duplicate items", &DB{Dict: d, Trans: []Transaction{
			{TS: 1, Items: []ItemID{a, a}}}}},
	}
	for _, c := range cases {
		if err := c.db.Validate(); err == nil {
			t.Errorf("%s: Validate accepted a corrupt DB", c.name)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	in := "1\ta b g\n2\ta c d\n14\ta b g\n"
	db, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 3 {
		t.Fatalf("Len = %d, want 3", db.Len())
	}
	var buf bytes.Buffer
	if err := Write(&buf, db); err != nil {
		t.Fatal(err)
	}
	db2, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if db2.Len() != db.Len() {
		t.Fatalf("round trip changed length: %d vs %d", db2.Len(), db.Len())
	}
	for i := range db.Trans {
		if db.Trans[i].TS != db2.Trans[i].TS {
			t.Errorf("ts %d changed to %d", db.Trans[i].TS, db2.Trans[i].TS)
		}
		if !reflect.DeepEqual(db.PatternNames(db.Trans[i].Items), db2.PatternNames(db2.Trans[i].Items)) {
			t.Errorf("items changed at ts %d", db.Trans[i].TS)
		}
	}
}

func TestReadToleratesCommentsAndBlankLines(t *testing.T) {
	in := "# header\n\n1\ta b\n# another\n2 c d\n"
	db, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 2 {
		t.Fatalf("Len = %d, want 2", db.Len())
	}
}

func TestReadErrors(t *testing.T) {
	for _, in := range []string{
		"notanumber\ta b\n",
		"5\n",
		"5\t \n",
	} {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("Read(%q) should fail", in)
		}
	}
}

func TestReadEvents(t *testing.T) {
	in := "# events\n3,b\n1,a\n1,a\n2,c\n"
	events, err := ReadEvents(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 4 {
		t.Fatalf("got %d events, want 4", len(events))
	}
	if events[0].TS != 1 || events[0].Item != "a" {
		t.Errorf("events not sorted: %+v", events)
	}
	for _, in := range []string{"1 a\n", "x,a\n", "1,\n"} {
		if _, err := ReadEvents(strings.NewReader(in)); err == nil {
			t.Errorf("ReadEvents(%q) should fail", in)
		}
	}
}

func TestComputeStats(t *testing.T) {
	db, err := Read(strings.NewReader("1\ta b\n5\ta\n9\ta b c\n"))
	if err != nil {
		t.Fatal(err)
	}
	s := ComputeStats(db)
	if s.Transactions != 3 || s.DistinctItems != 3 || s.Events != 6 || s.MaxTxLen != 3 {
		t.Errorf("stats = %+v", s)
	}
	if s.AvgTxLen != 2.0 {
		t.Errorf("AvgTxLen = %f, want 2.0", s.AvgTxLen)
	}
	if s.FirstTS != 1 || s.LastTS != 9 {
		t.Errorf("span = [%d,%d], want [1,9]", s.FirstTS, s.LastTS)
	}
	if s.String() == "" {
		t.Error("String should render")
	}
}

func TestItemSupportAndTopItems(t *testing.T) {
	db, err := Read(strings.NewReader("1\ta b\n2\ta\n3\ta b c\n"))
	if err != nil {
		t.Fatal(err)
	}
	top := db.TopItems(2)
	if len(top) != 2 || top[0].Name != "a" || top[0].Support != 3 || top[1].Name != "b" {
		t.Errorf("TopItems = %+v", top)
	}
	all := db.TopItems(100)
	if len(all) != 3 {
		t.Errorf("TopItems(100) = %+v", all)
	}
}

func TestDailyFrequency(t *testing.T) {
	db, err := Read(strings.NewReader("1\ta\n2\ta b\n11\ta\n25\tb\n"))
	if err != nil {
		t.Fatal(err)
	}
	got := db.DailyFrequency("a", 10)
	want := []int{2, 1, 0}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("DailyFrequency(a,10) = %v, want %v", got, want)
	}
	if db.DailyFrequency("zzz", 10) != nil {
		t.Error("unknown item should yield nil")
	}
	if db.DailyFrequency("a", 0) != nil {
		t.Error("non-positive bucket should yield nil")
	}
}

func TestFormatPatternAndInternPattern(t *testing.T) {
	db, err := Read(strings.NewReader("1\tb a\n"))
	if err != nil {
		t.Fatal(err)
	}
	ids, err := db.InternPattern([]string{"a", "b"})
	if err != nil {
		t.Fatal(err)
	}
	got := db.FormatPattern(ids)
	// IDs are sorted; first-seen order interned "b" before "a".
	if got != "{b,a}" && got != "{a,b}" {
		t.Errorf("FormatPattern = %q", got)
	}
	if _, err := db.InternPattern([]string{"nope"}); err == nil {
		t.Error("InternPattern must reject unknown items")
	}
}
