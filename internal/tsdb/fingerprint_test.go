package tsdb

import "testing"

type fpRow struct {
	ts    int64
	items []string
}

func fpDB(rows []fpRow) *DB {
	b := NewBuilder()
	for _, r := range rows {
		for _, it := range r.items {
			b.Add(it, r.ts)
		}
	}
	return b.Build()
}

func TestFingerprintStableAndSensitive(t *testing.T) {
	base := []fpRow{{1, []string{"a", "b"}}, {3, []string{"a"}}, {7, []string{"b", "c"}}}

	db1 := fpDB(base)
	db2 := fpDB(base)
	if db1.Fingerprint() != db2.Fingerprint() {
		t.Error("identical construction produced different fingerprints")
	}
	if got, again := db1.Fingerprint(), db1.Fingerprint(); got != again {
		t.Error("Fingerprint is not deterministic on the same DB")
	}

	variants := [][]fpRow{
		base[:2], // fewer transactions
		{{1, []string{"a", "b"}}, {3, []string{"a"}}, {8, []string{"b", "c"}}},  // shifted ts
		{{1, []string{"a", "b"}}, {3, []string{"a"}}, {7, []string{"b", "d"}}},  // renamed item
		{{1, []string{"a", "b"}}, {3, []string{"ab"}}, {7, []string{"b", "c"}}}, // name boundary shift
	}
	seen := map[uint64]bool{db1.Fingerprint(): true}
	for i, rows := range variants {
		fp := fpDB(rows).Fingerprint()
		if seen[fp] {
			t.Errorf("variant %d collides with an earlier fingerprint", i)
		}
		seen[fp] = true
	}
}

func TestFingerprintEmptyDB(t *testing.T) {
	// Degenerate databases must hash without panicking, nil dictionary
	// included.
	_ = NewBuilder().Build().Fingerprint()
	_ = (&DB{}).Fingerprint()
}
