package tsdb

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// Binary format: a compact encoding for large databases. Layout:
//
//	magic "RPDB" | version uvarint | itemCount uvarint
//	itemCount x (nameLen uvarint, name bytes)        -- dictionary, ID order
//	txCount uvarint
//	txCount x (tsDelta uvarint, itemCount uvarint,
//	           itemCount x itemID-delta uvarint)     -- transactions in ts order
//
// Timestamps are delta-encoded against the previous transaction (first
// against zero); item IDs are delta-encoded within each transaction (they
// are sorted). The format typically takes a quarter of the text format's
// space on the evaluation datasets.

const (
	binaryMagic   = "RPDB"
	binaryVersion = 1
)

// WriteBinary serializes the database in the binary format.
func WriteBinary(w io.Writer, db *DB) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	var buf [binary.MaxVarintLen64]byte
	writeUvarint := func(v uint64) error {
		n := binary.PutUvarint(buf[:], v)
		_, err := bw.Write(buf[:n])
		return err
	}
	if err := writeUvarint(binaryVersion); err != nil {
		return err
	}
	names := db.Dict.Names()
	if err := writeUvarint(uint64(len(names))); err != nil {
		return err
	}
	for _, name := range names {
		if err := writeUvarint(uint64(len(name))); err != nil {
			return err
		}
		if _, err := bw.WriteString(name); err != nil {
			return err
		}
	}
	if err := writeUvarint(uint64(len(db.Trans))); err != nil {
		return err
	}
	prevTS := int64(0)
	for _, tr := range db.Trans {
		if tr.TS < prevTS {
			return fmt.Errorf("tsdb: transactions out of order at ts %d", tr.TS)
		}
		if err := writeUvarint(uint64(tr.TS - prevTS)); err != nil {
			return err
		}
		prevTS = tr.TS
		if err := writeUvarint(uint64(len(tr.Items))); err != nil {
			return err
		}
		prev := ItemID(0)
		for i, id := range tr.Items {
			delta := uint64(id - prev)
			if i == 0 {
				delta = uint64(id)
			}
			if err := writeUvarint(delta); err != nil {
				return err
			}
			prev = id
		}
	}
	return bw.Flush()
}

// ReadBinary parses a database written by WriteBinary.
func ReadBinary(r io.Reader) (*DB, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("tsdb: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, errors.New("tsdb: not a binary database (bad magic)")
	}
	version, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tsdb: reading version: %w", err)
	}
	if version != binaryVersion {
		return nil, fmt.Errorf("tsdb: unsupported binary version %d", version)
	}
	itemCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tsdb: reading item count: %w", err)
	}
	const maxItems = 1 << 28
	if itemCount > maxItems {
		return nil, fmt.Errorf("tsdb: implausible item count %d", itemCount)
	}
	dict := NewDictionary()
	nameBuf := make([]byte, 0, 64)
	for i := uint64(0); i < itemCount; i++ {
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("tsdb: reading name length: %w", err)
		}
		if n > 1<<20 {
			return nil, fmt.Errorf("tsdb: implausible name length %d", n)
		}
		if uint64(cap(nameBuf)) < n {
			nameBuf = make([]byte, n)
		}
		nameBuf = nameBuf[:n]
		if _, err := io.ReadFull(br, nameBuf); err != nil {
			return nil, fmt.Errorf("tsdb: reading name: %w", err)
		}
		name := string(nameBuf)
		if id := dict.Intern(name); id != ItemID(i) {
			return nil, fmt.Errorf("tsdb: duplicate item name %q", name)
		}
	}
	txCount, err := binary.ReadUvarint(br)
	if err != nil {
		return nil, fmt.Errorf("tsdb: reading transaction count: %w", err)
	}
	db := &DB{Dict: dict}
	prevTS := int64(0)
	for t := uint64(0); t < txCount; t++ {
		delta, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("tsdb: transaction %d: reading ts: %w", t, err)
		}
		ts := prevTS + int64(delta)
		if t > 0 && delta == 0 {
			return nil, fmt.Errorf("tsdb: transaction %d: duplicate timestamp %d", t, ts)
		}
		prevTS = ts
		n, err := binary.ReadUvarint(br)
		if err != nil {
			return nil, fmt.Errorf("tsdb: transaction %d: reading size: %w", t, err)
		}
		if n == 0 || n > itemCount {
			return nil, fmt.Errorf("tsdb: transaction %d: bad size %d", t, n)
		}
		items := make([]ItemID, n)
		prev := uint64(0)
		for i := range items {
			d, err := binary.ReadUvarint(br)
			if err != nil {
				return nil, fmt.Errorf("tsdb: transaction %d: reading item: %w", t, err)
			}
			var id uint64
			if i == 0 {
				id = d
			} else {
				if d == 0 {
					return nil, fmt.Errorf("tsdb: transaction %d: duplicate item", t)
				}
				id = prev + d
			}
			if id >= itemCount {
				return nil, fmt.Errorf("tsdb: transaction %d: item %d out of range", t, id)
			}
			items[i] = ItemID(id)
			prev = id
		}
		db.Trans = append(db.Trans, Transaction{TS: ts, Items: items})
	}
	return db, nil
}

// ReadAny detects the on-disk format (mapped v2, binary v1, or text) by
// peeking at the magic bytes and parses accordingly. Buffered or seekable
// inputs are slurped so text goes through the parallel parser and mapped
// data needs no copy; true streams are peeked through a bufio.Reader.
func ReadAny(r io.Reader) (*DB, error) {
	if data, ok, err := slurp(r); ok {
		if err != nil {
			return nil, err
		}
		return ReadAnyBytes(data)
	}
	br := bufio.NewReader(r)
	magic, _ := br.Peek(len(mappedMagic))
	if string(magic) == mappedMagic {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, err
		}
		return ReadMapped(data)
	}
	if len(magic) >= len(binaryMagic) && string(magic[:len(binaryMagic)]) == binaryMagic {
		return ReadBinary(br)
	}
	return Read(br)
}

// ReadAnyBytes is ReadAny over a fully buffered input: format sniff, then
// the zero-copy path for each format (parallel parse for text, in-place
// view for mapped). The returned DB may alias data; callers must not
// modify it afterwards.
func ReadAnyBytes(data []byte) (*DB, error) {
	if len(data) >= len(mappedMagic) && string(data[:len(mappedMagic)]) == mappedMagic {
		return ReadMapped(data)
	}
	if len(data) >= len(binaryMagic) && string(data[:len(binaryMagic)]) == binaryMagic {
		return ReadBinary(bytes.NewReader(data))
	}
	return ReadBytes(data)
}
