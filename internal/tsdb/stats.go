package tsdb

import (
	"cmp"
	"fmt"
	"slices"
	"strings"
)

// Stats summarizes a transactional database; used for the dataset
// characteristics reported alongside each experiment.
type Stats struct {
	Transactions  int
	DistinctItems int
	Events        int     // total item occurrences
	AvgTxLen      float64 // Events / Transactions
	MaxTxLen      int
	FirstTS       int64
	LastTS        int64
}

// ComputeStats scans the database once and returns its summary.
func ComputeStats(db *DB) Stats {
	s := Stats{Transactions: db.Len(), DistinctItems: db.Dict.Len()}
	seen := make([]bool, db.Dict.Len())
	distinct := 0
	for _, tr := range db.Trans {
		s.Events += len(tr.Items)
		if len(tr.Items) > s.MaxTxLen {
			s.MaxTxLen = len(tr.Items)
		}
		for _, id := range tr.Items {
			if !seen[id] {
				seen[id] = true
				distinct++
			}
		}
	}
	// The dictionary can hold items that never made it into a transaction
	// (for example when a builder interned names up front); report the
	// number that actually occur.
	s.DistinctItems = distinct
	if s.Transactions > 0 {
		s.AvgTxLen = float64(s.Events) / float64(s.Transactions)
		s.FirstTS, s.LastTS = db.Span()
	}
	return s
}

// String renders the stats as a single human-readable line.
func (s Stats) String() string {
	return fmt.Sprintf("|TDB|=%d items=%d events=%d avgLen=%.2f maxLen=%d span=[%d,%d]",
		s.Transactions, s.DistinctItems, s.Events, s.AvgTxLen, s.MaxTxLen, s.FirstTS, s.LastTS)
}

// ItemSupport counts the support of every item; result indexed by ItemID.
func (db *DB) ItemSupport() []int {
	sup := make([]int, db.Dict.Len())
	for _, tr := range db.Trans {
		for _, id := range tr.Items {
			sup[id]++
		}
	}
	return sup
}

// TopItems returns up to n item names ordered by descending support
// (ties broken by name) together with their supports.
func (db *DB) TopItems(n int) []ItemCount {
	sup := db.ItemSupport()
	counts := make([]ItemCount, 0, len(sup))
	for id, c := range sup {
		if c > 0 {
			counts = append(counts, ItemCount{Name: db.Dict.Name(ItemID(id)), Support: c})
		}
	}
	slices.SortFunc(counts, func(a, b ItemCount) int {
		if a.Support != b.Support {
			return b.Support - a.Support
		}
		return cmp.Compare(a.Name, b.Name)
	})
	if n < len(counts) {
		counts = counts[:n]
	}
	return counts
}

// ItemCount pairs an item name with its support.
type ItemCount struct {
	Name    string
	Support int
}

// DailyFrequency aggregates an item's occurrences into buckets of bucketSize
// timestamps, returning counts indexed by bucket number starting at the
// database's first timestamp. Used to regenerate Figure 8 (daily hashtag
// frequencies, bucketSize = 1440 minutes).
func (db *DB) DailyFrequency(item string, bucketSize int64) []int {
	id, ok := db.Dict.Lookup(item)
	if !ok || db.Len() == 0 || bucketSize <= 0 {
		return nil
	}
	first, last := db.Span()
	n := int((last-first)/bucketSize) + 1
	counts := make([]int, n)
	for _, tr := range db.Trans {
		for _, it := range tr.Items {
			if it == id {
				counts[(tr.TS-first)/bucketSize]++
				break
			}
		}
	}
	return counts
}

// FormatPattern renders a pattern as "{a,b,c}" using the database's
// dictionary.
func (db *DB) FormatPattern(pattern []ItemID) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, id := range pattern {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(db.Dict.Name(id))
	}
	b.WriteByte('}')
	return b.String()
}
