package tsdb

import (
	"encoding/binary"
	"hash/fnv"
)

// Fingerprint returns a stable 64-bit FNV-1a digest of the database
// content: the dictionary's item names in ID order, then every
// transaction's timestamp and item IDs. The digest is deterministic
// across processes and runs, so it can key result caches and appear in
// logs; databases with different fingerprints are guaranteed different,
// equal fingerprints mean identical content up to hash collision.
//
// The digest covers the concrete representation (ItemIDs follow intern
// order), so two logically equal databases built in different event
// orders may fingerprint differently — fine for caching, where a miss
// only costs a recomputation.
//
// The digest is computed once and cached (hashing is O(database) and the
// serve layer asks per request); the database must not be mutated after
// the first call. FingerprintUncached bypasses the cache for tests.
func (db *DB) Fingerprint() uint64 {
	db.fpOnce.Do(func() { db.fpVal = db.FingerprintUncached() })
	return db.fpVal
}

// FingerprintUncached recomputes the digest from the content, ignoring
// and not touching the cache. It exists so tests can prove the cached
// value stays truthful across round-trips.
func (db *DB) FingerprintUncached() uint64 {
	h := fnv.New64a()
	var buf [8]byte
	writeInt := func(v int64) {
		binary.LittleEndian.PutUint64(buf[:], uint64(v))
		_, _ = h.Write(buf[:])
	}
	n := 0
	if db.Dict != nil {
		n = db.Dict.Len()
	}
	writeInt(int64(n))
	for id := 0; id < n; id++ {
		name := db.Dict.Name(ItemID(id))
		writeInt(int64(len(name)))
		_, _ = h.Write([]byte(name))
	}
	writeInt(int64(len(db.Trans)))
	for _, tr := range db.Trans {
		writeInt(tr.TS)
		writeInt(int64(len(tr.Items)))
		for _, id := range tr.Items {
			writeInt(int64(id))
		}
	}
	return h.Sum64()
}
