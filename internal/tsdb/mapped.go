package tsdb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"unsafe"
)

// The mapped binary format (tsdbm v2) is a zero-copy, mmap-able TDB
// layout: instead of a varint stream that must be decoded transaction by
// transaction (v1), it lays the database out as flat little-endian arrays
// so an open materializes a read-only *DB view without a decode loop —
// the item arrays of every transaction alias the mapping directly.
//
// Layout (all integers little-endian, every section 8-byte aligned):
//
//	off  size  field
//	0    8     magic "RPTDBM02"
//	8    4     version uint32 (= 2)
//	12   4     flags uint32 (bit0: payload is little-endian; always set)
//	16   8     itemCount uint64
//	24   8     txCount uint64
//	32   8     totalItems uint64 (sum of per-transaction item counts)
//	40   8     fingerprint uint64 (DB.Fingerprint of the content)
//	48   8     sectionCount uint64 (= 5)
//	56   8     reserved (0)
//	64   5×16  section table: (offset uint64, length uint64) per section
//	144  ...   the sections, in table order, each padded to 8 bytes:
//	           0 nameOffsets  (itemCount+1) × uint64, prefix offsets into 1
//	           1 nameBlob     concatenated item names, ID order
//	           2 timestamps   txCount × int64, strictly increasing
//	           3 rowOffsets   (txCount+1) × uint64, CSR offsets into 4
//	           4 items        totalItems × uint32, sorted within each row
//
// The fingerprint field is informative (logged, returned by Stored
// Fingerprint); opens validate structure, not content — Verify or
// DB.Fingerprint make the full pass when the caller wants proof.

const (
	mappedMagic   = "RPTDBM02"
	mappedVersion = 2

	mappedFlagLittleEndian = 1 << 0

	mappedHeaderSize  = 64
	mappedSectionSize = 16
	mappedNumSections = 5
	mappedDataStart   = mappedHeaderSize + mappedNumSections*mappedSectionSize

	secNameOffsets = 0
	secNameBlob    = 1
	secTimestamps  = 2
	secRowOffsets  = 3
	secItems       = 4
)

// hostLittleEndian reports whether the running machine is little-endian;
// only then may the view alias mapped sections instead of decoding them.
var hostLittleEndian = binary.NativeEndian.Uint16([]byte{0x34, 0x12}) == 0x1234

// WriteMapped serializes the database in the mapped (tsdbm v2) format.
// The output is byte-deterministic for a given database.
func WriteMapped(w io.Writer, db *DB) error {
	itemCount := 0
	if db.Dict != nil {
		itemCount = db.Dict.Len()
	}
	totalItems := uint64(0)
	for _, tr := range db.Trans {
		totalItems += uint64(len(tr.Items))
	}
	blobLen := uint64(0)
	for id := 0; id < itemCount; id++ {
		blobLen += uint64(len(db.Dict.Name(ItemID(id))))
	}

	// Section sizes (unpadded) and their table, laid out back to back.
	sizes := [mappedNumSections]uint64{
		secNameOffsets: uint64(itemCount+1) * 8,
		secNameBlob:    blobLen,
		secTimestamps:  uint64(len(db.Trans)) * 8,
		secRowOffsets:  uint64(len(db.Trans)+1) * 8,
		secItems:       totalItems * 4,
	}
	var table [mappedNumSections][2]uint64
	off := uint64(mappedDataStart)
	for i, sz := range sizes {
		table[i] = [2]uint64{off, sz}
		off += pad8(sz)
	}

	bw := bufio.NewWriterSize(w, 1<<20)
	var scratch [8]byte
	put64 := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		_, _ = bw.Write(scratch[:])
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		_, _ = bw.Write(scratch[:4])
	}

	_, _ = bw.WriteString(mappedMagic)
	put32(mappedVersion)
	put32(mappedFlagLittleEndian)
	put64(uint64(itemCount))
	put64(uint64(len(db.Trans)))
	put64(totalItems)
	put64(db.Fingerprint())
	put64(mappedNumSections)
	put64(0) // reserved
	for _, s := range table {
		put64(s[0])
		put64(s[1])
	}

	writePad := func(sz uint64) {
		for p := pad8(sz) - sz; p > 0; p-- {
			_ = bw.WriteByte(0)
		}
	}

	// Section 0+1: name offsets, then the blob.
	cum := uint64(0)
	put64(0)
	for id := 0; id < itemCount; id++ {
		cum += uint64(len(db.Dict.Name(ItemID(id))))
		put64(cum)
	}
	for id := 0; id < itemCount; id++ {
		_, _ = bw.WriteString(db.Dict.Name(ItemID(id)))
	}
	writePad(blobLen)

	// Section 2: timestamps.
	prev := int64(math.MinInt64)
	for _, tr := range db.Trans {
		if tr.TS <= prev && prev != math.MinInt64 {
			return fmt.Errorf("tsdb: transactions out of order at ts %d", tr.TS)
		}
		prev = tr.TS
		put64(uint64(tr.TS))
	}

	// Section 3: CSR row offsets.
	row := uint64(0)
	put64(0)
	for _, tr := range db.Trans {
		row += uint64(len(tr.Items))
		put64(row)
	}

	// Section 4: items.
	for _, tr := range db.Trans {
		for _, id := range tr.Items {
			put32(uint32(id))
		}
	}
	writePad(totalItems * 4)
	return bw.Flush()
}

func pad8(n uint64) uint64 { return (n + 7) &^ 7 }

// Mapped is an open mapped-format database. The *DB view returned by DB()
// aliases the underlying mapping (or, for non-mmap opens, a heap buffer):
// it is read-only and valid until Close.
type Mapped struct {
	db     *DB
	fp     uint64 // fingerprint recorded in the header
	data   []byte
	mapped bool // data came from mmap and must be munmapped
}

// DB returns the database view. Treat it as immutable; it shares memory
// with the mapping and dies with Close.
func (m *Mapped) DB() *DB { return m.db }

// StoredFingerprint returns the fingerprint recorded in the file header
// at write time. It identifies the content cheaply; Verify proves it.
func (m *Mapped) StoredFingerprint() uint64 { return m.fp }

// Verify recomputes the content fingerprint (one full pass over the
// mapping) and checks it against the header's.
func (m *Mapped) Verify() error {
	if got := m.db.Fingerprint(); got != m.fp {
		return fmt.Errorf("tsdb: mapped content fingerprint %016x does not match header %016x", got, m.fp)
	}
	return nil
}

// Close releases the mapping. The *DB view (and every Transaction.Items
// slice taken from it) must not be used afterwards.
func (m *Mapped) Close() error {
	data, mapped := m.data, m.mapped
	m.db, m.data = nil, nil
	if mapped {
		return munmapFile(data)
	}
	return nil
}

// OpenMapped opens a mapped-format file as a read-only database view in
// O(index pages touched): the item dictionary and per-transaction index
// are materialized from the flat sections with no per-item decode loop,
// and the transaction item arrays alias the mapping directly. On
// platforms without mmap (or for unaligned buffers) it transparently
// falls back to reading the file into memory — same view, same API.
func OpenMapped(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, err
	}
	data, mapped, err := mmapFile(f, st.Size())
	if err != nil {
		// No mmap on this platform (or mapping failed): fall back to a
		// plain read. The view then aliases the heap buffer instead.
		data, err = os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		mapped = false
	}
	m, err := openMappedBytes(data, mapped)
	if err != nil {
		if mapped {
			_ = munmapFile(data)
		}
		return nil, err
	}
	return m, nil
}

// ReadMapped parses a mapped-format database from a fully buffered byte
// slice (ReadAny uses it for v2 inputs arriving over pipes). The returned
// DB aliases data where alignment allows; data must not be modified
// afterwards.
func ReadMapped(data []byte) (*DB, error) {
	m, err := openMappedBytes(data, false)
	if err != nil {
		return nil, err
	}
	return m.db, nil
}

// openMappedBytes validates the header and section table and builds the
// database view over data.
func openMappedBytes(data []byte, mapped bool) (*Mapped, error) {
	if len(data) < mappedDataStart {
		return nil, fmt.Errorf("tsdb: mapped file truncated: %d bytes, want at least %d", len(data), mappedDataStart)
	}
	if string(data[:8]) != mappedMagic {
		return nil, fmt.Errorf("tsdb: not a mapped database (bad magic)")
	}
	version := binary.LittleEndian.Uint32(data[8:12])
	if version != mappedVersion {
		return nil, fmt.Errorf("tsdb: unsupported mapped version %d", version)
	}
	flags := binary.LittleEndian.Uint32(data[12:16])
	if flags&mappedFlagLittleEndian == 0 {
		return nil, fmt.Errorf("tsdb: mapped file payload is not little-endian (flags %#x)", flags)
	}
	itemCount := binary.LittleEndian.Uint64(data[16:24])
	txCount := binary.LittleEndian.Uint64(data[24:32])
	totalItems := binary.LittleEndian.Uint64(data[32:40])
	fp := binary.LittleEndian.Uint64(data[40:48])
	if n := binary.LittleEndian.Uint64(data[48:56]); n != mappedNumSections {
		return nil, fmt.Errorf("tsdb: mapped file has %d sections, want %d", n, mappedNumSections)
	}
	const maxItems = 1 << 28
	if itemCount > maxItems || txCount > 1<<40 || totalItems > 1<<40 {
		return nil, fmt.Errorf("tsdb: implausible mapped header (items %d, transactions %d, total %d)", itemCount, txCount, totalItems)
	}

	// Section table: every section must be 8-aligned, inside the file and
	// exactly the size the header's counts dictate.
	want := [mappedNumSections]uint64{
		secNameOffsets: (itemCount + 1) * 8,
		secNameBlob:    0, // checked against nameOffsets below
		secTimestamps:  txCount * 8,
		secRowOffsets:  (txCount + 1) * 8,
		secItems:       totalItems * 4,
	}
	var secs [mappedNumSections][]byte
	fileEnd := uint64(mappedDataStart)
	for i := 0; i < mappedNumSections; i++ {
		base := mappedHeaderSize + i*mappedSectionSize
		off := binary.LittleEndian.Uint64(data[base : base+8])
		length := binary.LittleEndian.Uint64(data[base+8 : base+16])
		if off%8 != 0 || off < mappedDataStart || off > uint64(len(data)) || length > uint64(len(data))-off {
			return nil, fmt.Errorf("tsdb: mapped section %d out of bounds (offset %d, length %d, file %d)", i, off, length, len(data))
		}
		if i != secNameBlob && length != want[i] {
			return nil, fmt.Errorf("tsdb: mapped section %d has length %d, want %d", i, length, want[i])
		}
		secs[i] = data[off : off+length]
		if end := off + pad8(length); end > fileEnd {
			fileEnd = end
		}
	}
	// The file is exactly its sections: truncation (even of padding) and
	// trailing garbage both fail loudly rather than silently shifting data.
	if uint64(len(data)) != fileEnd {
		return nil, fmt.Errorf("tsdb: mapped file is %d bytes, sections end at %d", len(data), fileEnd)
	}

	// Dictionary: prefix offsets into the name blob. Names are copied out
	// (the dictionary is small next to the transactions) so the lookup map
	// never references the mapping.
	nameOffs := aliasOrDecodeUint64(secs[secNameOffsets])
	blob := secs[secNameBlob]
	dict := &Dictionary{
		byName: make(map[string]ItemID, itemCount),
		names:  make([]string, itemCount),
	}
	prevOff := uint64(0)
	if nameOffs[0] != 0 {
		return nil, fmt.Errorf("tsdb: mapped name offsets do not start at 0")
	}
	for id := uint64(0); id < itemCount; id++ {
		end := nameOffs[id+1]
		if end < prevOff || end > uint64(len(blob)) {
			return nil, fmt.Errorf("tsdb: mapped name offsets corrupt at item %d", id)
		}
		name := string(blob[prevOff:end])
		dict.names[id] = name
		if _, dup := dict.byName[name]; dup {
			return nil, fmt.Errorf("tsdb: duplicate item name %q in mapped dictionary", name)
		}
		dict.byName[name] = ItemID(id)
		prevOff = end
	}
	if prevOff != uint64(len(blob)) {
		return nil, fmt.Errorf("tsdb: mapped name blob has %d trailing bytes", uint64(len(blob))-prevOff)
	}

	ts := aliasOrDecodeInt64(secs[secTimestamps])
	rows := aliasOrDecodeUint64(secs[secRowOffsets])
	items := aliasOrDecodeUint32(secs[secItems])

	// Materialize the transaction index: a pointer-arithmetic fill, not a
	// decode — the item arrays alias the items section as-is.
	trans := make([]Transaction, txCount)
	if rows[0] != 0 {
		return nil, fmt.Errorf("tsdb: mapped row offsets do not start at 0")
	}
	prevTS := int64(math.MinInt64)
	for i := uint64(0); i < txCount; i++ {
		start, end := rows[i], rows[i+1]
		if end < start || end > totalItems {
			return nil, fmt.Errorf("tsdb: mapped row offsets corrupt at transaction %d", i)
		}
		if start == end {
			return nil, fmt.Errorf("tsdb: mapped transaction %d is empty", i)
		}
		t := ts[i]
		if i > 0 && t <= prevTS {
			return nil, fmt.Errorf("tsdb: mapped transactions out of order at index %d (ts %d after %d)", i, t, prevTS)
		}
		prevTS = t
		row := items[start:end]
		// Item sweep: IDs in dictionary range, strictly increasing within
		// the row — the invariants mining indexes by. A read-only pass at
		// memory bandwidth, not a decode (no varints, no allocation).
		for j, id := range row {
			if uint64(id) >= itemCount {
				return nil, fmt.Errorf("tsdb: mapped transaction %d references unknown item %d", i, id)
			}
			if j > 0 && row[j-1] >= id {
				return nil, fmt.Errorf("tsdb: mapped transaction %d has unsorted or duplicate items", i)
			}
		}
		trans[i] = Transaction{TS: t, Items: row}
	}
	if txCount > 0 && rows[txCount] != totalItems {
		return nil, fmt.Errorf("tsdb: mapped row offsets end at %d, want %d", rows[txCount], totalItems)
	}

	return &Mapped{
		db:     &DB{Dict: dict, Trans: trans},
		fp:     fp,
		data:   data,
		mapped: mapped,
	}, nil
}

// canAlias reports whether a section slice may be reinterpreted in place:
// little-endian host and suitably aligned backing memory (mmap regions
// are page-aligned and sections 8-aligned; heap buffers are checked).
func canAlias(b []byte, align uintptr) bool {
	if !hostLittleEndian || len(b) == 0 {
		return false
	}
	return uintptr(unsafe.Pointer(&b[0]))%align == 0
}

// aliasOrDecodeUint64 views b as []uint64, aliasing when possible and
// decoding into a fresh slice otherwise.
func aliasOrDecodeUint64(b []byte) []uint64 {
	n := len(b) / 8
	if canAlias(b, 8) {
		return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]uint64, n)
	for i := range out {
		out[i] = binary.LittleEndian.Uint64(b[i*8:])
	}
	return out
}

func aliasOrDecodeInt64(b []byte) []int64 {
	n := len(b) / 8
	if canAlias(b, 8) {
		return unsafe.Slice((*int64)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]int64, n)
	for i := range out {
		out[i] = int64(binary.LittleEndian.Uint64(b[i*8:]))
	}
	return out
}

func aliasOrDecodeUint32(b []byte) []ItemID {
	n := len(b) / 4
	if canAlias(b, 4) {
		return unsafe.Slice((*ItemID)(unsafe.Pointer(&b[0])), n)
	}
	out := make([]ItemID, n)
	for i := range out {
		out[i] = ItemID(binary.LittleEndian.Uint32(b[i*4:]))
	}
	return out
}
