//go:build !unix

package tsdb

import (
	"errors"
	"os"
)

// errNoMmap makes OpenMapped take its read-into-memory fallback on
// platforms without a memory-map shim.
var errNoMmap = errors.New("tsdb: mmap not supported on this platform")

func mmapFile(f *os.File, size int64) (data []byte, mapped bool, err error) {
	return nil, false, errNoMmap
}

func munmapFile(data []byte) error { return nil }
