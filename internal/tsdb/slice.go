package tsdb

import "sort"

// Slice returns the sub-database of transactions with from <= ts <= to.
// The result shares the dictionary and transaction storage with db; treat
// both as immutable afterwards.
func (db *DB) Slice(from, to int64) *DB {
	lo := sort.Search(len(db.Trans), func(i int) bool { return db.Trans[i].TS >= from })
	hi := sort.Search(len(db.Trans), func(i int) bool { return db.Trans[i].TS > to })
	if lo > hi {
		lo = hi
	}
	return &DB{Dict: db.Dict, Trans: db.Trans[lo:hi]}
}

// FilterItems returns a copy of db restricted to the given items;
// transactions left empty are dropped. The result shares the dictionary.
func (db *DB) FilterItems(keep []ItemID) *DB {
	want := make(map[ItemID]bool, len(keep))
	for _, id := range keep {
		want[id] = true
	}
	out := &DB{Dict: db.Dict}
	for _, tr := range db.Trans {
		var items []ItemID
		for _, id := range tr.Items {
			if want[id] {
				items = append(items, id)
			}
		}
		if len(items) > 0 {
			out.Trans = append(out.Trans, Transaction{TS: tr.TS, Items: items})
		}
	}
	return out
}

// Rebase returns a copy of db with all timestamps shifted by delta.
// Useful for aligning datasets collected against different epochs.
func (db *DB) Rebase(delta int64) *DB {
	out := &DB{Dict: db.Dict, Trans: make([]Transaction, len(db.Trans))}
	for i, tr := range db.Trans {
		out.Trans[i] = Transaction{TS: tr.TS + delta, Items: tr.Items}
	}
	return out
}

// Merge combines several databases that share a dictionary into one,
// unioning transactions at equal timestamps. It panics if the databases do
// not share the same dictionary, since silently cross-wiring item IDs
// would corrupt every downstream result.
func Merge(dbs ...*DB) *DB {
	if len(dbs) == 0 {
		return &DB{Dict: NewDictionary()}
	}
	dict := dbs[0].Dict
	b := &Builder{dict: dict, groups: make(map[int64]map[ItemID]struct{})}
	for _, db := range dbs {
		if db.Dict != dict {
			panic("tsdb: Merge requires databases sharing one dictionary")
		}
		for _, tr := range db.Trans {
			b.AddIDs(tr.TS, tr.Items...)
		}
	}
	return b.Build()
}
