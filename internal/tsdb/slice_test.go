package tsdb

import (
	"reflect"
	"strings"
	"testing"
)

func sliceTestDB(t *testing.T) *DB {
	t.Helper()
	db, err := Read(strings.NewReader("1\ta b\n5\tb c\n9\ta c\n12\tc\n"))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestSlice(t *testing.T) {
	db := sliceTestDB(t)
	cases := []struct {
		from, to int64
		want     []int64
	}{
		{0, 100, []int64{1, 5, 9, 12}},
		{5, 9, []int64{5, 9}},
		{2, 4, nil},
		{12, 12, []int64{12}},
		{13, 5, nil}, // inverted range
	}
	for _, c := range cases {
		got := db.Slice(c.from, c.to)
		var ts []int64
		for _, tr := range got.Trans {
			ts = append(ts, tr.TS)
		}
		if !reflect.DeepEqual(ts, c.want) {
			t.Errorf("Slice(%d,%d) = %v, want %v", c.from, c.to, ts, c.want)
		}
		if got.Dict != db.Dict {
			t.Error("Slice must share the dictionary")
		}
	}
}

func TestFilterItems(t *testing.T) {
	db := sliceTestDB(t)
	a, _ := db.Dict.Lookup("a")
	got := db.FilterItems([]ItemID{a})
	if got.Len() != 2 {
		t.Fatalf("FilterItems(a) kept %d transactions, want 2", got.Len())
	}
	for _, tr := range got.Trans {
		if len(tr.Items) != 1 || tr.Items[0] != a {
			t.Errorf("unexpected transaction %+v", tr)
		}
	}
	if err := got.Validate(); err != nil {
		t.Errorf("filtered DB invalid: %v", err)
	}
	empty := db.FilterItems(nil)
	if empty.Len() != 0 {
		t.Errorf("FilterItems(nil) kept %d transactions", empty.Len())
	}
}

func TestRebase(t *testing.T) {
	db := sliceTestDB(t)
	shifted := db.Rebase(100)
	if shifted.Trans[0].TS != 101 || shifted.Trans[3].TS != 112 {
		t.Errorf("Rebase failed: %v", shifted.Trans)
	}
	if err := shifted.Validate(); err != nil {
		t.Errorf("rebased DB invalid: %v", err)
	}
	// Negative shifts work too.
	back := shifted.Rebase(-100)
	for i := range db.Trans {
		if back.Trans[i].TS != db.Trans[i].TS {
			t.Fatal("round trip shift failed")
		}
	}
}

func TestMerge(t *testing.T) {
	db := sliceTestDB(t)
	first := db.Slice(0, 5)
	second := db.Slice(5, 100) // overlaps at ts 5
	merged := Merge(first, second)
	if merged.Len() != db.Len() {
		t.Fatalf("merge lost transactions: %d vs %d", merged.Len(), db.Len())
	}
	for i := range db.Trans {
		if merged.Trans[i].TS != db.Trans[i].TS ||
			!reflect.DeepEqual(merged.Trans[i].Items, db.Trans[i].Items) {
			t.Fatalf("merge diverged at %d", i)
		}
	}
	if Merge().Len() != 0 {
		t.Error("empty merge should be empty")
	}
	// Foreign dictionaries are rejected loudly.
	other := sliceTestDB(t)
	defer func() {
		if recover() == nil {
			t.Error("Merge across dictionaries must panic")
		}
	}()
	Merge(db, other)
}
