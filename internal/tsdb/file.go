package tsdb

import (
	"io"
	"os"
)

// ReadFile loads a database file of any format into memory: text goes
// through the chunked parallel parser, v1 binary through the varint
// decoder, and mapped v2 through the in-place view over the heap buffer.
// The result never references the file; use OpenFile to keep a mapped
// file on disk instead.
func ReadFile(path string) (*DB, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return ReadAnyBytes(data)
}

// File is an open database file. For mapped-format (v2) files the view
// aliases an mmap of the file and Close releases it; for text and v1
// binary files the database is heap-resident and Close is a no-op kept
// for symmetry.
type File struct {
	db *DB
	m  *Mapped // non-nil iff the file was opened via mmap
}

// DB returns the database. For a mapped file it is valid until Close.
func (f *File) DB() *DB { return f.db }

// Mapped reports whether the database view aliases a file mapping (and
// therefore dies with Close).
func (f *File) Mapped() bool { return f.m != nil }

// Close releases any file mapping backing the database view.
func (f *File) Close() error {
	if f.m != nil {
		m := f.m
		f.m, f.db = nil, nil
		return m.Close()
	}
	f.db = nil
	return nil
}

// OpenFile opens a database file of any format, memory-mapping it when
// the format allows (mapped v2) and loading it into memory otherwise.
// This is the cheapest way to get at a database that lives for the rest
// of the process — CLIs and server startup loads — while ReadFile is the
// right call when the database must outlive the file.
func OpenFile(path string) (*File, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	var magic [len(mappedMagic)]byte
	n, err := io.ReadFull(f, magic[:])
	if closeErr := f.Close(); err == nil && closeErr != nil {
		return nil, closeErr
	}
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	if n == len(magic) && string(magic[:]) == mappedMagic {
		m, err := OpenMapped(path)
		if err != nil {
			return nil, err
		}
		return &File{db: m.DB(), m: m}, nil
	}
	db, err := ReadFile(path)
	if err != nil {
		return nil, err
	}
	return &File{db: db}, nil
}
