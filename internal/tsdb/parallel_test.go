package tsdb

import (
	"bytes"
	"fmt"
	"math/rand/v2"
	"reflect"
	"strconv"
	"strings"
	"testing"
)

// genText produces a deterministic, deliberately messy TDB text input:
// comments, blank lines, space and tab separators, duplicate timestamps
// out of order, repeated items within a line, and the occasional unicode
// whitespace — everything the parser language allows.
func genText(seed uint64, lines int) []byte {
	rng := rand.New(rand.NewPCG(seed, 99))
	var sb strings.Builder
	sb.WriteString("# generated test database\n\n")
	for i := 0; i < lines; i++ {
		ts := rng.Int64N(int64(lines)) - int64(lines)/3
		sb.WriteString(strconv.FormatInt(ts, 10))
		if rng.IntN(4) == 0 {
			sb.WriteByte(' ')
		} else {
			sb.WriteByte('\t')
		}
		n := 1 + rng.IntN(6)
		for j := 0; j < n; j++ {
			if j > 0 {
				if rng.IntN(8) == 0 {
					sb.WriteString(" ") // unicode space between items
				} else {
					sb.WriteByte(' ')
				}
			}
			fmt.Fprintf(&sb, "item-%d", rng.IntN(200))
		}
		if rng.IntN(10) == 0 {
			sb.WriteString("  ") // trailing whitespace
		}
		sb.WriteByte('\n')
		if rng.IntN(16) == 0 {
			sb.WriteString("# interleaved comment\n")
		}
		if rng.IntN(16) == 0 {
			sb.WriteByte('\n')
		}
	}
	return []byte(sb.String())
}

// requireSameDB asserts two databases are identical representations:
// same dictionary in the same intern order, same transactions.
func requireSameDB(t *testing.T, got, want *DB) {
	t.Helper()
	if !reflect.DeepEqual(got.Dict.Names(), want.Dict.Names()) {
		t.Fatalf("dictionary order differs:\n got %v\nwant %v", got.Dict.Names(), want.Dict.Names())
	}
	if got.Len() != want.Len() {
		t.Fatalf("transaction count differs: %d vs %d", got.Len(), want.Len())
	}
	for i := range want.Trans {
		if got.Trans[i].TS != want.Trans[i].TS || !reflect.DeepEqual(got.Trans[i].Items, want.Trans[i].Items) {
			t.Fatalf("transaction %d differs: %+v vs %+v", i, got.Trans[i], want.Trans[i])
		}
	}
	if g, w := got.FingerprintUncached(), want.FingerprintUncached(); g != w {
		t.Fatalf("fingerprints differ: %016x vs %016x", g, w)
	}
}

func TestReadBytesMatchesSequential(t *testing.T) {
	for _, lines := range []int{0, 1, 7, 500, 5000} {
		data := genText(uint64(lines)+1, lines)
		want, err := readSequential(bytes.NewReader(data))
		if err != nil {
			t.Fatalf("lines=%d: sequential: %v", lines, err)
		}
		for _, workers := range []int{1, 2, 4, 8} {
			got, err := ReadBytesWorkers(data, workers)
			if err != nil {
				t.Fatalf("lines=%d workers=%d: %v", lines, workers, err)
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("lines=%d workers=%d: invalid DB: %v", lines, workers, err)
			}
			requireSameDB(t, got, want)
		}
	}
}

func TestReadBytesManyChunks(t *testing.T) {
	// Force multi-chunk splits regardless of minChunkBytes by going through
	// splitChunks directly: reassembly must be lossless and newline-aligned.
	data := genText(3, 300)
	for _, n := range []int{2, 3, 7, 50} {
		chunks := splitChunks(data, n)
		var re []byte
		for i, c := range chunks {
			if c.off != len(re) {
				t.Fatalf("n=%d chunk %d: offset %d, want %d", n, i, c.off, len(re))
			}
			if i > 0 && len(chunks[i-1].data) > 0 && chunks[i-1].data[len(chunks[i-1].data)-1] != '\n' {
				t.Fatalf("n=%d chunk %d does not end at a newline", n, i-1)
			}
			re = append(re, c.data...)
		}
		if !bytes.Equal(re, data) {
			t.Fatalf("n=%d: chunks do not reassemble the input", n)
		}

		// Parse each chunk and merge; must equal the sequential parse.
		parts := make([]*ingestPartial, len(chunks))
		for i, c := range chunks {
			parts[i] = parseChunk(c.data, c.off)
		}
		got, err := mergePartials(data, parts, 2)
		if err != nil {
			t.Fatalf("n=%d: merge: %v", n, err)
		}
		want, err := readSequential(bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		requireSameDB(t, got, want)
	}
}

func TestReadBytesErrorsMatchSequential(t *testing.T) {
	// The parallel parser must report the earliest failing line by the same
	// line number the sequential parser would, even when a later chunk
	// fails "first" in wall time.
	good := string(genText(9, 200))
	cases := []string{
		"notanumber\ta b\n",
		"5\n",
		"5\t \n",
		good + "bogus line\n",
		good[:len(good)/2] + "12x\tq\n" + good[len(good)/2:],
		"99999999999999999999999999\tx\n" + good,
	}
	for _, in := range cases {
		_, seqErr := readSequential(strings.NewReader(in))
		if seqErr == nil {
			t.Fatalf("case should fail sequentially: %q...", in[:40])
		}
		for _, workers := range []int{1, 4} {
			_, parErr := ReadBytesWorkers([]byte(in), workers)
			if parErr == nil {
				t.Fatalf("workers=%d: parallel accepted input the sequential parser rejects", workers)
			}
			seqLine := errLine(t, seqErr.Error())
			parLine := errLine(t, parErr.Error())
			if seqLine != parLine {
				t.Errorf("workers=%d: error line %d, sequential says %d (%v vs %v)", workers, parLine, seqLine, parErr, seqErr)
			}
		}
	}
}

// errLine extracts N from an error of the form "tsdb: line N: ...".
func errLine(t *testing.T, msg string) int {
	t.Helper()
	var n int
	if _, err := fmt.Sscanf(msg, "tsdb: line %d:", &n); err != nil {
		t.Fatalf("error %q does not carry a line number", msg)
	}
	return n
}

func TestReadDispatchesSeekableInputs(t *testing.T) {
	// Read over a seekable reader (parallel path) and over a plain pipe-like
	// reader (sequential path) must agree.
	data := genText(11, 400)
	viaSeek, err := Read(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	viaStream, err := Read(onlyReader{bytes.NewReader(data)})
	if err != nil {
		t.Fatal(err)
	}
	requireSameDB(t, viaSeek, viaStream)
}

// onlyReader hides every interface except io.Reader, modeling a pipe.
type onlyReader struct{ r *bytes.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func TestParseTimestampMatchesStrconv(t *testing.T) {
	cases := []string{
		"0", "1", "-1", "+5", "007", "123456789",
		"9223372036854775807", "-9223372036854775808",
		"9223372036854775808", "-9223372036854775809", // overflow by one
		"18446744073709551615", "18446744073709551616",
		"99999999999999999999999999", "-99999999999999999999999999",
		"", "-", "+", "x", "1x", "0x10", "1_0", " 1", "1 ",
	}
	for _, c := range cases {
		want, wantErr := strconv.ParseInt(c, 10, 64)
		got, gotErr := parseTimestamp([]byte(c))
		if (gotErr == nil) != (wantErr == nil) {
			t.Errorf("parseTimestamp(%q) err=%v, strconv err=%v", c, gotErr, wantErr)
			continue
		}
		if gotErr == nil && got != want {
			t.Errorf("parseTimestamp(%q) = %d, want %d", c, got, want)
		}
	}
}

func TestNextFieldMatchesStringsFields(t *testing.T) {
	cases := []string{
		"", " ", "a", " a ", "a b  c", "\tx\vy\fz\r",
		"a b", " wide ", "mixed  \tseps",
	}
	for _, c := range cases {
		want := strings.Fields(c)
		var got []string
		rest := []byte(c)
		for {
			tok := nextField(&rest)
			if tok == nil {
				break
			}
			got = append(got, string(tok))
		}
		if !reflect.DeepEqual(got, want) && !(len(got) == 0 && len(want) == 0) {
			t.Errorf("nextField(%q) = %q, want %q", c, got, want)
		}
	}
}
