package tsdb

import (
	"cmp"
	"errors"
	"fmt"
	"slices"
	"sort"
	"sync"
)

// Transaction is one row of a temporally ordered transactional database: the
// set of items observed at a particular timestamp. Items are sorted and
// duplicate-free.
type Transaction struct {
	TS    int64
	Items []ItemID
}

// Contains reports whether the transaction contains every item of pattern.
// Both the transaction items and pattern must be sorted ascending.
func (t Transaction) Contains(pattern []ItemID) bool {
	items := t.Items
	for _, p := range pattern {
		i := sort.Search(len(items), func(k int) bool { return items[k] >= p })
		if i == len(items) || items[i] != p {
			return false
		}
		items = items[i+1:]
	}
	return true
}

// DB is a transactional database constructed from a time series. Transactions
// are strictly ordered by timestamp and each timestamp appears at most once
// (paper Section 3: transactions are uniquely identifiable by timestamp).
//
// A DB must not be copied by value once Fingerprint has been called (the
// cache embeds a sync.Once); share it by pointer, as every constructor in
// this package already does.
type DB struct {
	Dict  *Dictionary
	Trans []Transaction

	// Fingerprint cache: content hashing is O(database) and callers (the
	// serve cache, the journal) ask per request, so the first computation
	// is kept. Mutating Dict or Trans after that first call is a misuse;
	// loaders and builders here never do.
	fpOnce sync.Once
	fpVal  uint64
}

// Builder accumulates events and produces a DB. It implements the
// "linked hash table" construction sketched at the end of Section 3 of the
// paper: items are grouped by their occurrence timestamp.
type Builder struct {
	dict   *Dictionary
	groups map[int64]map[ItemID]struct{}
}

// NewBuilder returns a Builder using a fresh dictionary.
func NewBuilder() *Builder {
	return &Builder{
		dict:   NewDictionary(),
		groups: make(map[int64]map[ItemID]struct{}),
	}
}

// Add records that item occurred at ts. Duplicate (item, ts) pairs collapse
// into a single occurrence, matching the set semantics of transactions.
func (b *Builder) Add(item string, ts int64) {
	id := b.dict.Intern(item)
	g, ok := b.groups[ts]
	if !ok {
		g = make(map[ItemID]struct{})
		b.groups[ts] = g
	}
	g[id] = struct{}{}
}

// AddIDs records that the (already interned) items occurred at ts.
func (b *Builder) AddIDs(ts int64, items ...ItemID) {
	g, ok := b.groups[ts]
	if !ok {
		g = make(map[ItemID]struct{})
		b.groups[ts] = g
	}
	for _, id := range items {
		g[id] = struct{}{}
	}
}

// Dict exposes the builder's dictionary so callers can intern items up front.
func (b *Builder) Dict() *Dictionary { return b.dict }

// Build produces the temporally ordered transactional database. The builder
// may continue to be used afterwards; subsequent Build calls include all
// events added so far.
func (b *Builder) Build() *DB {
	trans := make([]Transaction, 0, len(b.groups))
	for ts, g := range b.groups {
		items := make([]ItemID, 0, len(g))
		for id := range g {
			items = append(items, id)
		}
		slices.Sort(items)
		trans = append(trans, Transaction{TS: ts, Items: items})
	}
	slices.SortFunc(trans, func(a, b Transaction) int { return cmp.Compare(a.TS, b.TS) })
	return &DB{Dict: b.dict, Trans: trans}
}

// FromEvents builds a DB directly from an event sequence.
func FromEvents(events EventSequence) *DB {
	b := NewBuilder()
	for _, e := range events {
		b.Add(e.Item, e.TS)
	}
	return b.Build()
}

// Len reports the number of transactions, |TDB|.
func (db *DB) Len() int { return len(db.Trans) }

// Span returns the smallest and largest transaction timestamps. It returns
// (0, 0) for an empty database.
func (db *DB) Span() (first, last int64) {
	if len(db.Trans) == 0 {
		return 0, 0
	}
	return db.Trans[0].TS, db.Trans[len(db.Trans)-1].TS
}

// TSList returns the ordered set of timestamps at which every item of
// pattern occurs together, i.e. TS^X from paper Definition 2/Example 2.
// The pattern must be sorted ascending. This is the reference (scan-based)
// implementation used by tests and small tools; miners use their own
// incremental representations.
func (db *DB) TSList(pattern []ItemID) []int64 {
	var ts []int64
	for _, tr := range db.Trans {
		if tr.Contains(pattern) {
			ts = append(ts, tr.TS)
		}
	}
	return ts
}

// ItemTSLists returns, for every item, its ordered occurrence timestamps.
// The result is indexed by ItemID.
func (db *DB) ItemTSLists() [][]int64 {
	lists := make([][]int64, db.Dict.Len())
	for _, tr := range db.Trans {
		for _, id := range tr.Items {
			lists[id] = append(lists[id], tr.TS)
		}
	}
	return lists
}

// Validate checks the structural invariants of the database: strictly
// increasing timestamps, sorted duplicate-free non-empty transactions, and
// item IDs within the dictionary range.
func (db *DB) Validate() error {
	if db.Dict == nil {
		return errors.New("tsdb: nil dictionary")
	}
	n := ItemID(db.Dict.Len())
	for i, tr := range db.Trans {
		if i > 0 && db.Trans[i-1].TS >= tr.TS {
			return fmt.Errorf("tsdb: transactions out of order at index %d (ts %d after %d)", i, tr.TS, db.Trans[i-1].TS)
		}
		if len(tr.Items) == 0 {
			return fmt.Errorf("tsdb: empty transaction at ts %d", tr.TS)
		}
		for j, id := range tr.Items {
			if id >= n {
				return fmt.Errorf("tsdb: transaction at ts %d references unknown item %d", tr.TS, id)
			}
			if j > 0 && tr.Items[j-1] >= id {
				return fmt.Errorf("tsdb: transaction at ts %d has unsorted or duplicate items", tr.TS)
			}
		}
	}
	return nil
}

// InternPattern converts item names into a sorted ItemID pattern. It returns
// an error naming the first unknown item.
func (db *DB) InternPattern(names []string) ([]ItemID, error) {
	ids := make([]ItemID, 0, len(names))
	for _, name := range names {
		id, ok := db.Dict.Lookup(name)
		if !ok {
			return nil, fmt.Errorf("tsdb: unknown item %q", name)
		}
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids, nil
}

// PatternNames renders a sorted ItemID pattern back into item names.
func (db *DB) PatternNames(pattern []ItemID) []string {
	names := make([]string, len(pattern))
	for i, id := range pattern {
		names[i] = db.Dict.Name(id)
	}
	return names
}
