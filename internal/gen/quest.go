package gen

import (
	"fmt"
	"slices"

	"github.com/recurpat/rp/internal/tsdb"
)

// QuestConfig parameterizes the IBM Quest-style synthetic transaction
// generator of Agrawal and Srikant (SIGMOD 1993 / VLDB 1994), the process
// behind T10I4D100K. Field names follow the original: D transactions of
// average size T, built from L potentially frequent itemsets of average
// size I over N items.
type QuestConfig struct {
	Seed uint64

	D int // number of transactions (default 100,000)
	T int // average transaction size (default 10)
	I int // average size of potentially frequent itemsets (default 4)
	L int // number of potentially frequent itemsets (default 2,000)
	N int // number of items (default 941, the paper's distinct-item count)

	// Correlation is the mean fraction of items a potential itemset reuses
	// from its predecessor (default 0.5).
	Correlation float64
	// CorruptionMean/SD parameterize the per-itemset corruption level that
	// drops items when itemsets are inserted into transactions (defaults
	// 0.5 / 0.1).
	CorruptionMean, CorruptionSD float64
}

// DefaultQuest returns the T10I4D100K parameters used in the paper.
func DefaultQuest(seed uint64) QuestConfig {
	return QuestConfig{
		Seed:           seed,
		D:              100_000,
		T:              10,
		I:              4,
		L:              2_000,
		N:              941,
		Correlation:    0.5,
		CorruptionMean: 0.5,
		CorruptionSD:   0.1,
	}
}

// Scale returns a copy with the transaction count scaled by f (at least 1),
// for reduced test and benchmark instances drawn from the same
// distribution.
func (c QuestConfig) Scale(f float64) QuestConfig {
	c.D = int(float64(c.D) * f)
	if c.D < 1 {
		c.D = 1
	}
	return c
}

// Quest generates the synthetic transactional database. Transaction i is
// assigned timestamp i (1-based), making the sequence a time-based series
// with unit spacing, exactly how the paper treats T10I4D100K (per values of
// 360/720/1440 timestamp units, Table 4).
func Quest(c QuestConfig) *tsdb.DB {
	rng := newRNG(c.Seed)

	// Item weights: exponentially distributed popularity, as in the
	// original generator.
	itemW := make([]float64, c.N)
	for i := range itemW {
		itemW[i] = rng.ExpFloat64()
	}
	itemPick := newPicker(itemW)

	// Potential frequent itemsets: sizes Poisson(I-1)+1; a fraction of each
	// itemset (exponential with the correlation mean, clamped) is drawn
	// from the previous itemset, the rest picked by item weight.
	itemsets := make([][]tsdb.ItemID, c.L)
	var prev []tsdb.ItemID
	for s := range itemsets {
		size := poisson(rng, float64(c.I-1)) + 1
		set := make(map[tsdb.ItemID]struct{}, size)
		if len(prev) > 0 {
			frac := expVar(rng, c.Correlation)
			if frac > 1 {
				frac = 1
			}
			reuse := int(frac * float64(size))
			for k := 0; k < reuse && k < len(prev); k++ {
				set[prev[rng.IntN(len(prev))]] = struct{}{}
			}
		}
		for len(set) < size {
			set[tsdb.ItemID(itemPick.pick(rng))] = struct{}{}
		}
		items := make([]tsdb.ItemID, 0, len(set))
		for id := range set {
			items = append(items, id)
		}
		// Sort so later rng draws consume in a deterministic order; map
		// iteration order would otherwise make same-seed runs diverge.
		slices.Sort(items)
		itemsets[s] = items
		prev = items
	}

	// Itemset weights (exponential) and per-itemset corruption levels
	// (normal around CorruptionMean).
	setW := make([]float64, c.L)
	for i := range setW {
		setW[i] = rng.ExpFloat64()
	}
	setPick := newPicker(setW)
	corrupt := make([]float64, c.L)
	for i := range corrupt {
		v := c.CorruptionMean + c.CorruptionSD*rng.NormFloat64()
		if v < 0 {
			v = 0
		}
		if v > 1 {
			v = 1
		}
		corrupt[i] = v
	}

	b := tsdb.NewBuilder()
	for i := 0; i < c.N; i++ {
		b.Dict().Intern(fmt.Sprintf("i%d", i))
	}
	scratch := make(map[tsdb.ItemID]struct{}, 4*c.T)
	ids := make([]tsdb.ItemID, 0, 4*c.T)
	for tr := 1; tr <= c.D; tr++ {
		size := poisson(rng, float64(c.T-1)) + 1
		clear(scratch)
		for len(scratch) < size {
			s := setPick.pick(rng)
			cl := corrupt[s]
			added := false
			for _, id := range itemsets[s] {
				// Drop each item with probability equal to the corruption
				// level; this is the original generator's per-itemset decay.
				if rng.Float64() < cl {
					continue
				}
				scratch[id] = struct{}{}
				added = true
			}
			if !added {
				// Fully corrupted pick: add one weighted random item so the
				// loop always progresses.
				scratch[tsdb.ItemID(itemPick.pick(rng))] = struct{}{}
			}
		}
		ids = ids[:0]
		for id := range scratch {
			ids = append(ids, id)
		}
		// Same-seed byte-identity: map order must not reach the builder.
		slices.Sort(ids)
		b.AddIDs(int64(tr), ids...)
	}
	return b.Build()
}
