package gen

import (
	"slices"

	"fmt"

	"github.com/recurpat/rp/internal/tsdb"
)

// ShopConfig parameterizes the Shop-14 clickstream simulator. The original
// dataset (ECML/PKDD 2005 discovery challenge, store www.shop4.cz) is a
// minute-granularity log of product-category page visits: 59,240
// transactions over 41 days covering 138 categories. The simulator
// reproduces that shape with a heavy-tailed category popularity, a diurnal
// visit cycle, a weekly rhythm, and seasonal category-group promotions that
// induce the recurring co-visit patterns the paper mines.
type ShopConfig struct {
	Seed uint64

	Days          int // default 41
	MinutesPerDay int // default 1440
	Categories    int // default 138

	// PeakRate is the expected number of distinct background categories
	// visited during a peak-hour minute.
	PeakRate float64

	// Promotions is the number of correlated category groups that burst
	// together during promotion windows.
	Promotions int
}

// DefaultShop returns the Shop-14-shaped configuration.
func DefaultShop(seed uint64) ShopConfig {
	return ShopConfig{
		Seed:          seed,
		Days:          41,
		MinutesPerDay: 1440,
		Categories:    138,
		PeakRate:      7,
		Promotions:    14,
	}
}

// Scale returns a copy with the day count scaled by f (at least 1 day).
func (c ShopConfig) Scale(f float64) ShopConfig {
	c.Days = int(float64(c.Days) * f)
	if c.Days < 1 {
		c.Days = 1
	}
	return c
}

// Shop generates the clickstream database. Timestamps are minute indices
// starting at 1; minutes with no visits produce no transaction, mirroring
// how the paper's database skips empty timestamps.
func Shop(c ShopConfig) *tsdb.DB {
	rng := newRNG(c.Seed)
	weights := zipfWeights(c.Categories, 1.05, 4)
	catPick := newPicker(weights)

	// Promotion groups: 2-4 mid-tail categories each, bursting together in
	// 2-3 windows of 2-6 days. Mid-tail categories make the groups visible
	// against the frequent head without being drowned out.
	type window struct{ startDay, endDay int }
	type promo struct {
		cats    []tsdb.ItemID
		windows []window
		rate    float64 // per-minute probability at diurnal peak
	}
	promos := make([]promo, c.Promotions)
	for i := range promos {
		size := rng.IntN(3) + 2
		cats := make([]tsdb.ItemID, 0, size)
		seen := map[int]bool{}
		for len(cats) < size {
			// Mid-tail: skip the ~15 most popular categories.
			cat := 15 + rng.IntN(c.Categories-15)
			if seen[cat] {
				continue
			}
			seen[cat] = true
			cats = append(cats, tsdb.ItemID(cat))
		}
		nw := rng.IntN(2) + 2
		windows := make([]window, 0, nw)
		for w := 0; w < nw; w++ {
			span := rng.IntN(5) + 2
			if span > c.Days {
				span = c.Days
			}
			start := rng.IntN(c.Days - span + 1)
			windows = append(windows, window{startDay: start, endDay: start + span})
		}
		promos[i] = promo{cats: cats, windows: windows, rate: 0.35 + 0.4*rng.Float64()}
	}

	b := tsdb.NewBuilder()
	for i := 0; i < c.Categories; i++ {
		b.Dict().Intern(fmt.Sprintf("cat%d", i))
	}

	scratch := make(map[tsdb.ItemID]struct{}, 32)
	ids := make([]tsdb.ItemID, 0, 32)
	for day := 0; day < c.Days; day++ {
		// Weekly rhythm: weekends (days 5 and 6 of each week) run hotter.
		weekFactor := 1.0
		if d := day % 7; d == 5 || d == 6 {
			weekFactor = 1.35
		}
		for m := 0; m < c.MinutesPerDay; m++ {
			ts := int64(day*c.MinutesPerDay+m) + 1
			clear(scratch)
			lambda := c.PeakRate * diurnal(m) * weekFactor
			k := poisson(rng, lambda)
			for j := 0; j < k; j++ {
				scratch[tsdb.ItemID(catPick.pick(rng))] = struct{}{}
			}
			act := diurnal(m)
			for _, p := range promos {
				active := false
				for _, w := range p.windows {
					if day >= w.startDay && day < w.endDay {
						active = true
						break
					}
				}
				if active && rng.Float64() < p.rate*act {
					for _, cat := range p.cats {
						scratch[cat] = struct{}{}
					}
				}
			}
			if len(scratch) == 0 {
				continue
			}
			ids = ids[:0]
			for id := range scratch {
				ids = append(ids, id)
			}
			// Map iteration order must not leak into the stored transaction
			// (tsdb.Builder sorts again, but same-seed byte-identity is this
			// package's contract, so keep the invariant local).
			slices.Sort(ids)
			b.AddIDs(ts, ids...)
		}
	}
	return b.Build()
}
