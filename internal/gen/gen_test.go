package gen

import (
	"math"
	"math/rand/v2"
	"testing"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

func TestPoisson(t *testing.T) {
	rng := newRNG(1)
	for _, lambda := range []float64{0, 0.5, 3, 10, 50} {
		sum := 0.0
		n := 20000
		for i := 0; i < n; i++ {
			v := poisson(rng, lambda)
			if v < 0 {
				t.Fatalf("poisson(%f) returned %d", lambda, v)
			}
			sum += float64(v)
		}
		mean := sum / float64(n)
		if math.Abs(mean-lambda) > 0.15*lambda+0.05 {
			t.Errorf("poisson(%f) mean = %f", lambda, mean)
		}
	}
}

func TestZipfWeights(t *testing.T) {
	w := zipfWeights(100, 1.1, 2)
	total := 0.0
	for i, v := range w {
		if v <= 0 {
			t.Fatalf("weight %d not positive", i)
		}
		if i > 0 && w[i-1] < v {
			t.Fatalf("weights not decreasing at %d", i)
		}
		total += v
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("weights sum to %f", total)
	}
}

func TestPicker(t *testing.T) {
	w := []float64{0.5, 0.3, 0.2}
	p := newPicker(w)
	rng := rand.New(rand.NewPCG(7, 7))
	counts := make([]int, 3)
	n := 30000
	for i := 0; i < n; i++ {
		idx := p.pick(rng)
		if idx < 0 || idx >= 3 {
			t.Fatalf("pick out of range: %d", idx)
		}
		counts[idx]++
	}
	for i, want := range w {
		got := float64(counts[i]) / float64(n)
		if math.Abs(got-want) > 0.02 {
			t.Errorf("index %d frequency %f, want %f", i, got, want)
		}
	}
}

func TestDiurnalShape(t *testing.T) {
	for m := 0; m < 1440; m++ {
		v := diurnal(m)
		if v <= 0 || v > 1 {
			t.Fatalf("diurnal(%d) = %f out of (0,1]", m, v)
		}
	}
	if diurnal(4*60) >= diurnal(13*60) {
		t.Error("04:00 should be quieter than 13:00")
	}
	if diurnal(21*60) <= diurnal(4*60) {
		t.Error("21:00 should be busier than 04:00")
	}
}

func validDB(t *testing.T, db *tsdb.DB, name string) tsdb.Stats {
	t.Helper()
	if err := db.Validate(); err != nil {
		t.Fatalf("%s: invalid DB: %v", name, err)
	}
	return tsdb.ComputeStats(db)
}

func TestQuestShape(t *testing.T) {
	c := DefaultQuest(42).Scale(0.05) // 5k transactions
	db := Quest(c)
	s := validDB(t, db, "quest")
	if s.Transactions != c.D {
		t.Errorf("transactions = %d, want %d", s.Transactions, c.D)
	}
	if s.AvgTxLen < 6 || s.AvgTxLen > 15 {
		t.Errorf("avg transaction length = %f, want near 10", s.AvgTxLen)
	}
	if s.DistinctItems < c.N/2 {
		t.Errorf("distinct items = %d, want most of %d", s.DistinctItems, c.N)
	}
	// Timestamps are the transaction index: dense 1..D.
	if s.FirstTS != 1 || s.LastTS != int64(c.D) {
		t.Errorf("span = [%d,%d], want [1,%d]", s.FirstTS, s.LastTS, c.D)
	}
}

func TestQuestDeterminism(t *testing.T) {
	a := Quest(DefaultQuest(7).Scale(0.01))
	b := Quest(DefaultQuest(7).Scale(0.01))
	if a.Len() != b.Len() {
		t.Fatal("same seed produced different transaction counts")
	}
	for i := range a.Trans {
		if a.Trans[i].TS != b.Trans[i].TS || len(a.Trans[i].Items) != len(b.Trans[i].Items) {
			t.Fatalf("same seed diverged at transaction %d", i)
		}
		for j := range a.Trans[i].Items {
			if a.Trans[i].Items[j] != b.Trans[i].Items[j] {
				t.Fatalf("same seed diverged at transaction %d item %d", i, j)
			}
		}
	}
	c := Quest(DefaultQuest(8).Scale(0.01))
	same := a.Len() == c.Len()
	if same {
		diff := false
		for i := range a.Trans {
			if len(a.Trans[i].Items) != len(c.Trans[i].Items) {
				diff = true
				break
			}
		}
		same = !diff
	}
	if same {
		t.Error("different seeds produced identical databases")
	}
}

func TestShopShape(t *testing.T) {
	c := DefaultShop(42).Scale(0.15) // ~6 days
	db := Shop(c)
	s := validDB(t, db, "shop")
	maxTS := int64(c.Days * c.MinutesPerDay)
	if s.LastTS > maxTS {
		t.Errorf("last ts %d beyond horizon %d", s.LastTS, maxTS)
	}
	// Nearly every minute should have at least one visit.
	if float64(s.Transactions) < 0.75*float64(maxTS) {
		t.Errorf("only %d of %d minutes busy", s.Transactions, maxTS)
	}
	if s.DistinctItems < 60 {
		t.Errorf("distinct categories = %d, want most of %d", s.DistinctItems, c.Categories)
	}
}

func TestShopHasRecurringPromotions(t *testing.T) {
	c := DefaultShop(3)
	c.Days = 14
	db := Shop(c)
	// With a 6-hour period and a modest periodic support, promotions should
	// surface as recurring patterns of length >= 2.
	res, err := core.Mine(db, core.Options{Per: 360, MinPS: core.MinPSFromPercent(db, 0.5), MinRec: 1, MaxLen: 4})
	if err != nil {
		t.Fatal(err)
	}
	multi := 0
	for _, p := range res.Patterns {
		if p.Len() >= 2 {
			multi++
		}
	}
	if multi == 0 {
		t.Error("no multi-category recurring patterns found in shop data")
	}
}

func TestTwitterShape(t *testing.T) {
	c := DefaultTwitter(42).Scale(0.08) // ~9 days
	db, events := TwitterWithEvents(c)
	s := validDB(t, db, "twitter")
	maxTS := int64(c.Days * c.MinutesPerDay)
	if float64(s.Transactions) < 0.8*float64(maxTS) {
		t.Errorf("only %d of %d minutes busy", s.Transactions, maxTS)
	}
	if len(events) == 0 {
		t.Fatal("no events planted")
	}
	for _, e := range events {
		for _, w := range e.Windows {
			if w.End > c.Days {
				t.Errorf("event %v window %v beyond scaled horizon", e.Tags, w)
			}
		}
	}
}

func TestTwitterEventTagsBurstInWindows(t *testing.T) {
	c := DefaultTwitter(5)
	c.Days = 30 // covers nuclear window 1 (days 5-23) and pakvotes (8-14)
	c.SyntheticEvents = 0
	db, _ := TwitterWithEvents(c)
	daily := db.DailyFrequency("pakvotes", int64(c.MinutesPerDay))
	if daily == nil {
		t.Fatal("pakvotes never occurs")
	}
	inWindow, outWindow := 0, 0
	for day, n := range daily {
		if day >= 8 && day < 14 {
			inWindow += n
		} else {
			outWindow += n
		}
	}
	if inWindow < 10*outWindow {
		t.Errorf("pakvotes not bursty: %d in window vs %d outside", inWindow, outWindow)
	}
}

func TestTwitterNamedEventsRecoverable(t *testing.T) {
	// The headline qualitative claim (Table 6): the miner rediscovers a
	// planted multi-tag event, with its interesting periodic interval
	// inside the planted window.
	c := DefaultTwitter(11)
	c.Days = 30
	c.SyntheticEvents = 0
	db, _ := TwitterWithEvents(c)
	minPS := core.MinPSFromPercent(db, 2)
	res, err := core.Mine(db, core.Options{Per: 360, MinPS: minPS, MinRec: 1, MaxLen: 3})
	if err != nil {
		t.Fatal(err)
	}
	want, err := db.InternPattern([]string{"pakvotes", "nayapakistan"})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Patterns {
		if len(p.Items) == 2 && p.Items[0] == want[0] && p.Items[1] == want[1] {
			found = true
			for _, iv := range p.Intervals {
				startDay := (iv.Start - 1) / int64(c.MinutesPerDay)
				endDay := (iv.End - 1) / int64(c.MinutesPerDay)
				if startDay < 7 || endDay > 14 {
					t.Errorf("interval [%d,%d] (days %d-%d) outside planted window 8-14",
						iv.Start, iv.End, startDay, endDay)
				}
			}
		}
	}
	if !found {
		t.Errorf("{pakvotes,nayapakistan} not rediscovered among %d patterns", len(res.Patterns))
	}
}

func TestTwitterDayOnlyEventsQuietOvernight(t *testing.T) {
	c := DefaultTwitter(21).Scale(0.15) // ~18 days
	db, events := TwitterWithEvents(c)
	checked := 0
	for _, e := range events {
		if !e.DayOnly {
			continue
		}
		id, ok := db.Dict.Lookup(e.Tags[0])
		if !ok {
			continue
		}
		night, day := 0, 0
		for _, tr := range db.Trans {
			m := int((tr.TS - 1) % 1440)
			for _, it := range tr.Items {
				if it != id {
					continue
				}
				if m < 450 {
					night++
				} else {
					day++
				}
			}
		}
		if day == 0 {
			continue // window may fall outside the scaled horizon
		}
		checked++
		// Only the sporadic background path can fire at night; it is two
		// orders of magnitude rarer than in-window day activity.
		if night*20 > day {
			t.Errorf("day-only tag %s: %d night vs %d day occurrences", e.Tags[0], night, day)
		}
	}
	if checked == 0 {
		t.Fatal("no day-only events with in-horizon activity")
	}
}

func TestTwitterDayOnlyDrivesPerAxis(t *testing.T) {
	// The mechanism behind the paper's per-axis trend: a day-only event's
	// window fragments into sub-minPS daily intervals at per=360 but
	// coalesces at per=1440. Count recurring patterns at both settings.
	c := DefaultTwitter(22)
	c.Days = 24
	db, _ := TwitterWithEvents(c)
	minPS := core.MinPSFromPercent(db, 6)
	small, err := core.Mine(db, core.Options{Per: 360, MinPS: minPS, MinRec: 1, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	large, err := core.Mine(db, core.Options{Per: 1440, MinPS: minPS, MinRec: 1, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(large.Patterns) <= len(small.Patterns) {
		t.Errorf("per=1440 found %d patterns, per=360 found %d; expected growth",
			len(large.Patterns), len(small.Patterns))
	}
}
