// Package gen synthesizes the three evaluation datasets of the paper's
// Section 5. None of the originals is redistributable (T10I4D100K is the
// output of the IBM Quest generator, Shop-14 came from the ECML/PKDD 2005
// discovery challenge, and the Twitter hashtag collection is private), so
// each generator reimplements the closest documented process and matches
// the published shape: transaction counts, item counts, time spans and the
// qualitative periodic structure the experiments depend on.
//
// All generators are deterministic for a given seed (math/rand/v2 PCG) and
// expose a Scale knob so tests and benchmarks can run reduced instances of
// the same distribution.
package gen

import (
	"math"
	"math/rand/v2"
	"sort"
)

// newRNG returns the deterministic generator used across the package.
func newRNG(seed uint64) *rand.Rand {
	return rand.New(rand.NewPCG(seed, seed^0x9e3779b97f4a7c15))
}

// poisson draws from a Poisson distribution with mean lambda (Knuth's
// algorithm for small lambda, normal approximation above 30 where the exact
// loop gets slow). Always returns a non-negative value.
func poisson(rng *rand.Rand, lambda float64) int {
	if lambda <= 0 {
		return 0
	}
	if lambda > 30 {
		v := lambda + math.Sqrt(lambda)*rng.NormFloat64()
		if v < 0 {
			return 0
		}
		return int(v + 0.5)
	}
	l := math.Exp(-lambda)
	k := 0
	p := 1.0
	for {
		p *= rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}

// expVar draws from an exponential distribution with the given mean.
func expVar(rng *rand.Rand, mean float64) float64 {
	return rng.ExpFloat64() * mean
}

// zipfWeights returns n weights proportional to 1/(rank+q)^s, normalized to
// sum to one. s controls the skew; q flattens the head.
func zipfWeights(n int, s, q float64) []float64 {
	w := make([]float64, n)
	total := 0.0
	for i := range w {
		w[i] = 1 / math.Pow(float64(i+1)+q, s)
		total += w[i]
	}
	for i := range w {
		w[i] /= total
	}
	return w
}

// picker samples indices proportionally to a fixed weight vector using
// binary search over the cumulative distribution.
type picker struct {
	cum []float64
}

func newPicker(weights []float64) *picker {
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		total += w
		cum[i] = total
	}
	// Normalize defensively so the final entry is exactly the search bound.
	for i := range cum {
		cum[i] /= total
	}
	return &picker{cum: cum}
}

func (p *picker) pick(rng *rand.Rand) int {
	x := rng.Float64()
	return sort.SearchFloat64s(p.cum, x)
}

// diurnal maps a minute-of-day to a daily activity multiplier in (0, 1]:
// a quiet overnight trough, a morning ramp and an evening peak. The curve
// integrates to roughly 0.6 over a day, so rates given as daytime peaks
// stay interpretable.
func diurnal(minuteOfDay int) float64 {
	h := float64(minuteOfDay) / 60
	// Two-humped curve: activity rises from 07:00, peaks near 13:00 and
	// again near 21:00, bottoms out near 04:00.
	v := 0.15 +
		0.45*math.Exp(-sq(h-13)/18) +
		0.55*math.Exp(-sq(h-21)/8)
	if v > 1 {
		v = 1
	}
	return v
}

func sq(x float64) float64 { return x * x }
