package gen

import (
	"slices"

	"fmt"

	"github.com/recurpat/rp/internal/tsdb"
)

// TwitterConfig parameterizes the hashtag-stream simulator standing in for
// the paper's private Twitter collection: the top 1000 English hashtags of
// 44M tweets between 1 May and 31 August 2013, aggregated per minute into
// 177,120 transactions (123 days x 1440 minutes). The simulator reproduces
// that shape: a heavy-tailed set of evergreen hashtags that co-occur
// minute-to-minute (driving the p-pattern explosion of Table 8), plus
// burst events — named after the real incidents of Table 6 and Figure 8 —
// during which otherwise-rare hashtags appear densely for days at a time,
// sometimes in several separate windows (driving recurrence).
type TwitterConfig struct {
	Seed uint64

	Days          int // default 123 (1 May - 31 Aug 2013)
	MinutesPerDay int // default 1440
	Tags          int // default 1000

	// PeakRate is the expected number of distinct background hashtags in a
	// peak-hour minute's transaction.
	PeakRate float64

	// SyntheticEvents is the number of random burst events planted in
	// addition to the named Table 6 events.
	SyntheticEvents int
}

// DefaultTwitter returns the paper-shaped configuration.
func DefaultTwitter(seed uint64) TwitterConfig {
	return TwitterConfig{
		Seed:            seed,
		Days:            123,
		MinutesPerDay:   1440,
		Tags:            1000,
		PeakRate:        64,
		SyntheticEvents: 48,
	}
}

// Scale returns a copy with the day count scaled by f (at least 1 day).
func (c TwitterConfig) Scale(f float64) TwitterConfig {
	c.Days = int(float64(c.Days) * f)
	if c.Days < 1 {
		c.Days = 1
	}
	return c
}

// DayRange is a half-open range of day offsets from the start of the
// collection (day 0 = 1 May 2013).
type DayRange struct{ Start, End int }

// BurstEvent is a group of hashtags that appear together densely during one
// or more day windows.
type BurstEvent struct {
	Tags    []string
	Windows []DayRange
	// Rate is the per-minute co-occurrence probability at the diurnal peak.
	Rate float64
	// DayOnly events go silent overnight (roughly 00:30-07:30). Their
	// activity splits into per-day periodic intervals at a 6-hour period
	// but coalesces at a 1-day period — the mechanism behind the paper's
	// observation that larger per values surface more recurring patterns.
	DayOnly bool
}

// NamedEvents returns the four real-world incidents of the paper's Table 6,
// with day offsets from 1 May 2013:
//
//	{yyc, uttarakhand}                     21 Jun - 1 Jul (floods in Alberta and Uttarakhand)
//	{nuclear, hibaku}                      6-24 May and 1-14 Jul (two nuclear news cycles)
//	{pakvotes, nayapakistan}               9-15 May (Pakistani general election)
//	{oklahoma, tornado, prayforoklahoma}   21-24 May (Oklahoma tornado)
func NamedEvents() []BurstEvent {
	return []BurstEvent{
		{Tags: []string{"yyc", "uttarakhand"}, Windows: []DayRange{{51, 61}}, Rate: 0.55},
		{Tags: []string{"nuclear", "hibaku"}, Windows: []DayRange{{5, 23}, {61, 74}}, Rate: 0.5},
		{Tags: []string{"pakvotes", "nayapakistan"}, Windows: []DayRange{{8, 14}}, Rate: 0.6},
		{Tags: []string{"oklahoma", "tornado", "prayforoklahoma"}, Windows: []DayRange{{20, 23}}, Rate: 0.6},
	}
}

// Twitter generates the hashtag database. Timestamps are minute indices
// starting at 1.
func Twitter(c TwitterConfig) *tsdb.DB {
	db, _ := TwitterWithEvents(c)
	return db
}

// TwitterWithEvents additionally returns the planted events (named plus
// synthetic) so experiments can check which were rediscovered.
func TwitterWithEvents(c TwitterConfig) (*tsdb.DB, []BurstEvent) {
	rng := newRNG(c.Seed)

	events := NamedEvents()
	// Drop named windows that fall outside a scaled-down collection.
	events = clipEvents(events, c.Days)

	// Synthetic burst events over reserved tail hashtags, so their tags are
	// rare outside their windows (the rare-item regime of Section 5.2).
	reserved := map[int]bool{}
	for i := 0; i < c.SyntheticEvents; i++ {
		size := rng.IntN(2) + 2
		tags := make([]string, 0, size)
		for len(tags) < size {
			// Tail of the popularity ranking: ranks in the last 60%.
			r := c.Tags*2/5 + rng.IntN(c.Tags*3/5)
			if reserved[r] {
				continue
			}
			reserved[r] = true
			tags = append(tags, tagName(r))
		}
		nw := rng.IntN(3) + 2
		// Every third event is a long "seasonal" burst (weeks-long windows)
		// so that patterns with high periodic support and recurrence >= 2
		// exist, as in the paper's Table 5 at large minPS. Half of the
		// events are day-active only, so their windows fragment or coalesce
		// depending on the period threshold.
		long := i%3 == 0
		windows := make([]DayRange, 0, nw)
		for w := 0; w < nw; w++ {
			span := rng.IntN(9) + 3
			if long {
				span = rng.IntN(21) + 15
			}
			if span > c.Days {
				span = c.Days
			}
			start := rng.IntN(c.Days - span + 1)
			windows = append(windows, DayRange{Start: start, End: start + span})
		}
		rate := 0.3 + 0.5*rng.Float64()
		if long {
			rate = 0.45 + 0.35*rng.Float64()
		}
		events = append(events, BurstEvent{
			Tags:    tags,
			Windows: windows,
			Rate:    rate,
			DayOnly: i%2 == 0,
		})
	}

	// Background popularity: strongly skewed so the head co-occurs almost
	// every minute while the tail is rare.
	weights := zipfWeights(c.Tags, 1.15, 1.5)
	// Zero out the weight of event-reserved tags and the named-event tags;
	// they live almost exclusively inside their windows.
	named := map[string]bool{}
	for _, e := range events {
		for _, tag := range e.Tags {
			named[tag] = true
		}
	}
	for r := range weights {
		if reserved[r] {
			weights[r] *= 0.02
		}
	}
	tagPick := newPicker(weights)

	b := tsdb.NewBuilder()
	for i := 0; i < c.Tags; i++ {
		b.Dict().Intern(tagName(i))
	}
	for _, e := range events {
		for _, tag := range e.Tags {
			b.Dict().Intern(tag) // named tags replace no rank; extra IDs
		}
	}

	scratch := make(map[tsdb.ItemID]struct{}, 48)
	ids := make([]tsdb.ItemID, 0, 48)
	for day := 0; day < c.Days; day++ {
		for m := 0; m < c.MinutesPerDay; m++ {
			ts := int64(day*c.MinutesPerDay+m) + 1
			clear(scratch)
			act := diurnal(m)
			k := poisson(rng, c.PeakRate*act)
			for j := 0; j < k; j++ {
				r := tagPick.pick(rng)
				if named[tagName(r)] {
					continue // event tags only appear via their events
				}
				scratch[tsdb.ItemID(r)] = struct{}{}
			}
			for _, e := range events {
				active := false
				for _, w := range e.Windows {
					if day >= w.Start && day < w.End {
						active = true
						break
					}
				}
				if !active {
					// Sporadic background mentions of event tags.
					if rng.Float64() < 0.002*act {
						tag := e.Tags[rng.IntN(len(e.Tags))]
						id, _ := b.Dict().Lookup(tag)
						scratch[id] = struct{}{}
					}
					continue
				}
				night := m < 450 // 00:00-07:30
				if e.DayOnly && night {
					continue
				}
				if rng.Float64() < e.Rate*act {
					for _, tag := range e.Tags {
						id, _ := b.Dict().Lookup(tag)
						scratch[id] = struct{}{}
					}
				}
			}
			if len(scratch) == 0 {
				continue
			}
			ids = ids[:0]
			for id := range scratch {
				ids = append(ids, id)
			}
			// Map iteration order must not leak into the stored transaction
			// (tsdb.Builder sorts again, but same-seed byte-identity is this
			// package's contract, so keep the invariant local).
			slices.Sort(ids)
			b.AddIDs(ts, ids...)
		}
	}
	return b.Build(), events
}

func clipEvents(events []BurstEvent, days int) []BurstEvent {
	var out []BurstEvent
	for _, e := range events {
		var windows []DayRange
		for _, w := range e.Windows {
			if w.Start < days {
				if w.End > days {
					w.End = days
				}
				windows = append(windows, w)
			}
		}
		if len(windows) > 0 {
			e.Windows = windows
			out = append(out, e)
		}
	}
	return out
}

func tagName(rank int) string { return fmt.Sprintf("tag%03d", rank) }
