// Package shard is the scatter-gather coordination layer of the mining
// stack: it splits one mine into per-item-group shard tasks, executes them
// on local goroutine pools or remote rpserved peers, and merges the shard
// results into output byte-identical to a single-box mine.
//
// The decomposition is RP-growth's own: each top-level suffix item's
// conditional subtree is mined independently, so a shard task owns the
// suffix items whose RP-list rank falls in its residue class
// (core.ShardSpec) and the tasks partition the search space exactly. The
// three pieces:
//
//   - Planner (Plan): one mine → Count tasks, a pure function of the
//     database fingerprint and the shard count, so every participant
//     derives the same plan independently.
//   - Executors: Local mines a task in-process through
//     core.MineShardContext; Client POSTs it to a remote rpserved peer's
//     /v1/shard/mine, with consistent-hash routing, per-task timeouts,
//     bounded retries with backoff, and optional request hedging.
//   - Reducer (Reduce): concatenates shard pattern sets and canonicalizes.
//     Canonical order is a total order on unique item sets and the tasks
//     partition the pattern set, so the merged output is byte-identical to
//     core.MineContext whatever the shard count or completion order — the
//     same argument as the parallel miner's rank-ordered merge.
//
// Coordinator ties them together with a partial-failure policy: FailFast
// cancels the scatter on the first shard error, BestEffort returns the
// surviving shards' patterns marked Partial (still deterministic for a
// given surviving set).
package shard

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"

	"github.com/recurpat/rp/internal/core"
)

// Task is one shard of a planned mine: mine the suffix items whose RP-list
// rank r has r mod Count == Index, over the database whose content
// fingerprint is FP.
type Task struct {
	Index int
	Count int
	// FP pins the database content: executors must refuse to mine a
	// database with a different fingerprint, since shards of one mine
	// must agree on the bytes, not just on a name.
	FP uint64
}

// Spec is the task's core-level shard restriction.
func (t Task) Spec() core.ShardSpec { return core.ShardSpec{Index: t.Index, Count: t.Count} }

// key is the task's consistent-hash routing key: finalized FNV-1a over
// the database fingerprint and the shard index, so one dataset's tasks
// spread over the ring rather than dogpiling the peer that owns the
// fingerprint (see mix64 for why the finalizer matters).
func (t Task) key() uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], t.FP)
	_, _ = h.Write(b[:])
	binary.BigEndian.PutUint64(b[:], uint64(t.Index))
	_, _ = h.Write(b[:])
	return mix64(h.Sum64())
}

// Plan splits one mine over the fingerprinted database into count tasks.
// count must be positive.
func Plan(fp uint64, count int) ([]Task, error) {
	if count <= 0 {
		return nil, fmt.Errorf("shard: shard count must be positive, got %d", count)
	}
	tasks := make([]Task, count)
	for i := range tasks {
		tasks[i] = Task{Index: i, Count: count, FP: fp}
	}
	return tasks, nil
}

// Policy selects how a scatter handles shard failures.
type Policy int

const (
	// FailFast cancels the remaining shards on the first failure and
	// reports the error; no partial results are returned.
	FailFast Policy = iota
	// BestEffort waits for every shard and returns the survivors' merged
	// patterns marked partial, with the failed shard indexes listed. All
	// shards failing is still an error.
	BestEffort
)

// String returns the policy's flag form.
func (p Policy) String() string {
	if p == BestEffort {
		return "best-effort"
	}
	return "fail-fast"
}

// ParsePolicy parses the flag form of a policy.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "", "fail-fast":
		return FailFast, nil
	case "best-effort":
		return BestEffort, nil
	default:
		return 0, fmt.Errorf("shard: unknown partial-failure policy %q (want fail-fast or best-effort)", s)
	}
}
