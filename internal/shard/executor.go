package shard

import (
	"context"
	"fmt"
	"time"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// Partial is one shard task's result: the patterns of the owned suffix
// items in canonical order, plus the task's search statistics and mining
// wall time.
type Partial struct {
	Task     Task
	Patterns []core.Pattern
	Stats    core.MineStats
	MineTime time.Duration
	// Phases is the peer's per-phase attribution of the task (remote
	// executors only; a Local task flushes straight into the shared trace).
	Phases []obs.PhaseStat
	// Remote is the peer's recorded timeline with its clock references and
	// the client's retry/hedge annotations, ready to graft into the
	// coordinator's timeline. Set only by remote executors on traced tasks.
	Remote *obs.PeerTimeline
}

// Executor runs one shard task of a mine. Implementations must honour ctx
// and must verify the task's fingerprint against the database they
// actually mine. db is the coordinator's copy of the database — the Local
// executor mines it directly, remote executors use it only to resolve
// wire patterns back to item IDs.
type Executor interface {
	Execute(ctx context.Context, db *tsdb.DB, o core.Options, t Task) (*Partial, error)
}

// Local mines shard tasks in-process through core.MineShardContext: the
// one-box execution mode (rpmine -shards) and the reference the remote
// mode's equivalence tests pin against.
type Local struct{}

// Execute mines the task's slice of db. The options' Trace is shared with
// the coordinator, so a traced one-box scatter attributes every shard's
// scan/tree-build/mine phases into one report.
func (Local) Execute(ctx context.Context, db *tsdb.DB, o core.Options, t Task) (*Partial, error) {
	if fp := db.Fingerprint(); fp != t.FP {
		return nil, fmt.Errorf("shard: task is for database %016x, holding %016x", t.FP, fp)
	}
	start := obs.Now()
	res, err := core.MineShardContext(ctx, db, o, t.Spec())
	if err != nil {
		return nil, err
	}
	return &Partial{
		Task:     t,
		Patterns: res.Patterns,
		Stats:    res.Stats,
		MineTime: time.Duration(obs.Since(start)),
	}, nil
}

// Reduce merges shard partials into one canonical result — the gather half
// of a scatter. Nil partials (failed shards under BestEffort) are skipped.
// Patterns concatenate and canonicalize: the tasks partition the pattern
// set by deepest-ranked item and canonical order is total on unique item
// sets, so the output is byte-identical to a single-box mine whatever the
// shard count, and deterministic for a given surviving-shard set.
//
// Stats merge per counter semantics: examined/pruned sum exactly (the
// search spaces partition); CandidateItems and MaxDepth take the maximum
// (each shard sees the full candidate list and its own deepest recursion);
// TreeNodes sums, which overcounts the initial tree (each shard builds its
// own copy) but counts every conditional tree exactly once.
func Reduce(parts []*Partial) *core.Result {
	res := &core.Result{}
	for _, p := range parts {
		if p == nil {
			continue
		}
		res.Patterns = append(res.Patterns, p.Patterns...)
		res.Stats.PatternsExamined += p.Stats.PatternsExamined
		res.Stats.PatternsPruned += p.Stats.PatternsPruned
		res.Stats.TreeNodes += p.Stats.TreeNodes
		if p.Stats.CandidateItems > res.Stats.CandidateItems {
			res.Stats.CandidateItems = p.Stats.CandidateItems
		}
		if p.Stats.MaxDepth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = p.Stats.MaxDepth
		}
	}
	res.Canonicalize()
	return res
}
