package shard

import (
	"fmt"
	"hash/fnv"
	"slices"
	"sort"
)

// ringVnodes is the number of virtual nodes per peer on the consistent
// hash ring. Enough to spread a handful of peers' arcs evenly; the peer
// sets here are single-digit, not datacenter-sized.
const ringVnodes = 64

// mix64 is the splitmix64 finalizer. FNV-1a alone is a poor circle hash:
// similar inputs (one peer's "url#0".."url#63" vnode names, one plan's
// task keys) keep their shared prefix in the high bits, so a peer's 64
// vnodes collapse into one narrow band and a plan's tasks all fall into
// the same inter-point gap — every task of a mine homing on one peer. The
// finalizer's avalanche spreads both over the whole circle.
func mix64(z uint64) uint64 {
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// ringPoint is one virtual node: a position on the hash circle owned by a
// peer (indexed into the client's sorted peer list).
type ringPoint struct {
	hash uint64
	peer int
}

// ring is a consistent hash ring over a fixed peer set. Task keys map to
// the first virtual node clockwise; the failover sequence continues
// clockwise through the remaining peers, so retries and hedges have a
// deterministic, key-dependent peer order and a peer-set change only
// remaps the arcs the changed peer owned.
type ring struct {
	points []ringPoint
	peers  int
}

// newRing builds the ring over peers (identified by index into a sorted
// URL list; the URLs only matter as hash salt).
func newRing(urls []string) (ring, error) {
	if len(urls) == 0 {
		return ring{}, fmt.Errorf("shard: a peer ring needs at least one peer")
	}
	r := ring{points: make([]ringPoint, 0, len(urls)*ringVnodes), peers: len(urls)}
	for i, u := range urls {
		for v := 0; v < ringVnodes; v++ {
			h := fnv.New64a()
			_, _ = fmt.Fprintf(h, "%s#%d", u, v)
			r.points = append(r.points, ringPoint{hash: mix64(h.Sum64()), peer: i})
		}
	}
	slices.SortFunc(r.points, func(a, b ringPoint) int {
		switch {
		case a.hash < b.hash:
			return -1
		case a.hash > b.hash:
			return 1
		default:
			return a.peer - b.peer
		}
	})
	return r, nil
}

// sequence returns the distinct peers in clockwise ring order starting at
// key's successor point: sequence(k)[0] is the task's home peer, the rest
// the failover order retries and hedges walk.
func (r ring) sequence(key uint64) []int {
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= key })
	seq := make([]int, 0, r.peers)
	seen := make([]bool, r.peers)
	for i := 0; i < len(r.points) && len(seq) < r.peers; i++ {
		p := r.points[(start+i)%len(r.points)].peer
		if !seen[p] {
			seen[p] = true
			seq = append(seq, p)
		}
	}
	return seq
}
