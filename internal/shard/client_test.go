package shard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/recurpat/rp/internal/api"
	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// stubPeer is an httptest peer speaking the /v1/shard/mine wire protocol
// over api + core directly — the protocol contract the real rpserved
// handler also implements. failFirst makes the first N requests 500 to
// exercise retries. It honours the trace-context fields: the propagated
// request ID and trace flag are captured for assertions, and a traced task
// gets a recorded timeline back.
type stubPeer struct {
	db        *tsdb.DB
	requests  atomic.Int64
	failFirst int64
	delay     time.Duration
	srv       *httptest.Server

	mu         sync.Mutex
	lastHeader string // X-Request-Id of the last shard request
	lastBodyID string
	lastTrace  bool
}

func newStubPeer(t *testing.T, db *tsdb.DB) *stubPeer {
	t.Helper()
	p := &stubPeer{db: db}
	p.srv = httptest.NewServer(http.HandlerFunc(p.handle))
	t.Cleanup(p.srv.Close)
	return p
}

func (p *stubPeer) handle(w http.ResponseWriter, r *http.Request) {
	if r.Method == http.MethodGet && r.URL.Path == "/v1/stats" {
		_ = json.NewEncoder(w).Encode(map[string]any{"draining": false, "peer": p.srv.URL})
		return
	}
	start := time.Now()
	n := p.requests.Add(1)
	if p.delay > 0 {
		select {
		case <-time.After(p.delay):
		case <-r.Context().Done():
			return
		}
	}
	if n <= p.failFirst {
		w.WriteHeader(http.StatusInternalServerError)
		_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: "injected peer failure"})
		return
	}
	req, err := api.DecodeShardMineRequest(r.Body)
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: err.Error()})
		return
	}
	if want := fmt.Sprintf("%016x", p.db.Fingerprint()); req.Fingerprint != want {
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: "no dataset with fingerprint " + req.Fingerprint})
		return
	}
	p.mu.Lock()
	p.lastHeader = r.Header.Get("X-Request-Id")
	p.lastBodyID = req.RequestID
	p.lastTrace = req.Trace
	p.mu.Unlock()
	o, err := req.ToCoreOptions(p.db.Len())
	if err != nil {
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: err.Error()})
		return
	}
	o.Trace = obs.NewTrace()
	var tl *obs.Timeline
	if req.Trace {
		tl = obs.NewTimeline(64)
		o.Trace.AttachTimeline(tl)
	}
	res, err := core.MineShardContext(r.Context(), p.db, o,
		core.ShardSpec{Index: req.Shard, Count: req.Shards})
	if err != nil {
		w.WriteHeader(http.StatusInternalServerError)
		_ = json.NewEncoder(w).Encode(api.ErrorResponse{Error: err.Error()})
		return
	}
	resp := api.ShardMineResponse{
		V:           api.Version,
		Fingerprint: req.Fingerprint,
		Shard:       req.Shard,
		Shards:      req.Shards,
		Count:       len(res.Patterns),
		Patterns:    api.PatternsFromCore(p.db, res.Patterns),
		Stats:       &res.Stats,
	}
	for _, st := range o.Trace.Report().Phases {
		if st.Nanos > 0 || st.Count > 0 {
			resp.Phases = append(resp.Phases, st)
		}
	}
	if tl != nil {
		snap := tl.Snapshot()
		resp.Timeline = &snap
		resp.ElapsedNS = int64(time.Since(start))
	}
	_ = json.NewEncoder(w).Encode(resp)
}

func TestNewClientValidation(t *testing.T) {
	if _, err := NewClient(ClientConfig{}); err == nil {
		t.Error("want error for empty peer set")
	}
	if _, err := NewClient(ClientConfig{Peers: []string{""}}); err == nil {
		t.Error("want error for blank peer URL")
	}
	c, err := NewClient(ClientConfig{Peers: []string{"http://b:1/", "http://a:1", "http://a:1"}})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Peers(); len(got) != 2 || got[0] != "http://a:1" || got[1] != "http://b:1" {
		t.Errorf("peers not deduplicated/sorted/trimmed: %v", got)
	}
}

// TestClientRemoteEquivalence mines through two real HTTP stub peers and
// pins the result against the single-box mine.
func TestClientRemoteEquivalence(t *testing.T) {
	db := testDB(11, 10, 50, 0.4)
	p1, p2 := newStubPeer(t, db), newStubPeer(t, db)
	client, err := NewClient(ClientConfig{Peers: []string{p1.srv.URL, p2.srv.URL}, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	o := core.Options{Per: 4, MinPS: 2, MinRec: 1, CollectStats: true}
	want, err := core.MineContext(context.Background(), db, o)
	if err != nil {
		t.Fatal(err)
	}
	c := &Coordinator{Count: 3, Exec: client}
	got, err := c.Mine(context.Background(), db, o)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Result.Equal(want) {
		t.Errorf("remote scatter diverged from single-box (%d vs %d patterns)",
			len(got.Patterns), len(want.Patterns))
	}
	if got.Stats.PatternsExamined != want.Stats.PatternsExamined {
		t.Errorf("examined = %d, want %d", got.Stats.PatternsExamined, want.Stats.PatternsExamined)
	}
	var success int64
	for _, ps := range client.Stats() {
		success += ps.Success
		if ps.Failure != 0 {
			t.Errorf("peer %s recorded %d failures", ps.URL, ps.Failure)
		}
	}
	if success != 3 {
		t.Errorf("success counters sum to %d, want 3", success)
	}
	// A single fingerprint's 3 tasks may legitimately all home on one peer;
	// only the total matters here (spread over many plans is pinned by
	// TestRingSpreadsTasks).
	if total := p1.requests.Load() + p2.requests.Load(); total != 3 {
		t.Errorf("peers served %d requests, want 3", total)
	}
}

// TestClientRetriesFailover exercises retry-with-backoff onto the next
// ring peer when the home peer errors.
func TestClientRetriesFailover(t *testing.T) {
	db := testDB(13, 8, 40, 0.4)
	bad, good := newStubPeer(t, db), newStubPeer(t, db)
	bad.failFirst = 1 << 30 // always fails
	client, err := NewClient(ClientConfig{
		Peers:   []string{bad.srv.URL, good.srv.URL},
		Retries: 3,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := core.Options{Per: 4, MinPS: 2, MinRec: 1}
	want, err := core.MineContext(context.Background(), db, o)
	if err != nil {
		t.Fatal(err)
	}
	c := &Coordinator{Count: 2, Exec: client}
	got, err := c.Mine(context.Background(), db, o)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Result.Equal(want) {
		t.Error("failover scatter diverged from single-box")
	}
	var retries, failures int64
	for _, ps := range client.Stats() {
		retries += ps.Retries
		failures += ps.Failure
	}
	if bad.requests.Load() > 0 && (failures == 0) {
		t.Errorf("bad peer served %d requests but no failures counted", bad.requests.Load())
	}
	if bad.requests.Load() > 0 && retries == 0 {
		t.Error("failover happened but no retries counted")
	}
}

func TestClientExhaustedRetries(t *testing.T) {
	db := testDB(13, 8, 40, 0.4)
	bad := newStubPeer(t, db)
	bad.failFirst = 1 << 30
	client, err := NewClient(ClientConfig{
		Peers:   []string{bad.srv.URL},
		Retries: 2,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Execute(context.Background(), db, core.Options{Per: 4, MinPS: 2, MinRec: 1},
		Task{Index: 0, Count: 1, FP: db.Fingerprint()})
	if err == nil {
		t.Fatal("want error after exhausting retries")
	}
	if !strings.Contains(err.Error(), "3 attempts failed") {
		t.Errorf("error does not report attempt count: %v", err)
	}
	if !strings.Contains(err.Error(), "injected peer failure") {
		t.Errorf("error lost the peer's message: %v", err)
	}
	if got := bad.requests.Load(); got != 3 {
		t.Errorf("peer saw %d requests, want 3 (1 + 2 retries)", got)
	}
}

// TestClientHedging delays every peer response beyond the hedge trigger so
// a hedged duplicate fires; the mine must still come back correct and the
// hedge counters move.
func TestClientHedging(t *testing.T) {
	db := testDB(17, 8, 40, 0.4)
	p1, p2 := newStubPeer(t, db), newStubPeer(t, db)
	p1.delay, p2.delay = 30*time.Millisecond, 30*time.Millisecond
	client, err := NewClient(ClientConfig{
		Peers:   []string{p1.srv.URL, p2.srv.URL},
		Hedge:   time.Millisecond,
		Backoff: time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := core.Options{Per: 4, MinPS: 2, MinRec: 1}
	want, err := core.MineContext(context.Background(), db, o)
	if err != nil {
		t.Fatal(err)
	}
	p, err := client.Execute(context.Background(), db, o, Task{Index: 0, Count: 1, FP: db.Fingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	res := Reduce([]*Partial{p})
	if !res.Equal(want) {
		t.Error("hedged mine diverged from single-box")
	}
	var hedges int64
	for _, ps := range client.Stats() {
		hedges += ps.Hedges
	}
	if hedges == 0 {
		t.Error("hedge timer never fired despite slow peers")
	}
}

// TestClientPropagatesTraceContext drives a traced task through the client
// and checks trace context in both directions: the coordinator's request ID
// reaches the peer as header and body, the peer's returned timeline comes
// back wrapped in Partial.Remote with sane clock references, and the
// coordinator grafts it into its own timeline.
func TestClientPropagatesTraceContext(t *testing.T) {
	db := testDB(29, 10, 50, 0.4)
	peer := newStubPeer(t, db)
	client, err := NewClient(ClientConfig{Peers: []string{peer.srv.URL}, Backoff: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	o := core.Options{Per: 4, MinPS: 2, MinRec: 1, Trace: obs.NewTrace()}
	tl := obs.NewTimeline(32)
	o.Trace.AttachTimeline(tl)
	ctx := obs.WithRequestID(context.Background(), "req-42")

	c := &Coordinator{Count: 2, Exec: client}
	if _, err := c.Mine(ctx, db, o); err != nil {
		t.Fatal(err)
	}
	peer.mu.Lock()
	header, bodyID, traced := peer.lastHeader, peer.lastBodyID, peer.lastTrace
	peer.mu.Unlock()
	if header != "req-42" || bodyID != "req-42" {
		t.Errorf("request ID did not propagate: header=%q body=%q, want req-42", header, bodyID)
	}
	if !traced {
		t.Error("trace flag did not propagate to the peer")
	}

	snap := tl.Snapshot()
	if len(snap.Peers) != 2 {
		t.Fatalf("coordinator grafted %d peer timelines, want 2", len(snap.Peers))
	}
	for _, pt := range snap.Peers {
		if pt.Peer != peer.srv.URL {
			t.Errorf("graft names peer %q, want %q", pt.Peer, peer.srv.URL)
		}
		if pt.SendNS < 0 || pt.RecvNS < pt.SendNS {
			t.Errorf("exchange window [%d,%d] is not ordered", pt.SendNS, pt.RecvNS)
		}
		if pt.ElapsedNS <= 0 {
			t.Errorf("peer handling time = %d, want > 0", pt.ElapsedNS)
		}
		if len(pt.Snapshot.Spans) == 0 {
			t.Error("grafted peer snapshot retained no spans")
		}
		if off := pt.AlignOffset(); off < pt.SendNS || off > pt.RecvNS {
			t.Errorf("AlignOffset %d outside exchange window [%d,%d]", off, pt.SendNS, pt.RecvNS)
		}
	}
	// The peers' phase reports feed the per-peer phase counters.
	stats := client.Stats()
	if len(stats) != 1 || len(stats[0].PhaseSeconds) == 0 {
		t.Fatalf("PhaseSeconds empty after traced tasks: %+v", stats)
	}
	if stats[0].PhaseSeconds[obs.PhaseMine.String()] <= 0 {
		t.Errorf("mine phase seconds = %v, want > 0", stats[0].PhaseSeconds)
	}

	// An untraced task stays untraced on the wire and returns no graft.
	p2, err := client.Execute(context.Background(), db, core.Options{Per: 4, MinPS: 2, MinRec: 1},
		Task{Index: 0, Count: 1, FP: db.Fingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	peer.mu.Lock()
	header, bodyID, traced = peer.lastHeader, peer.lastBodyID, peer.lastTrace
	peer.mu.Unlock()
	if header != "" || bodyID != "" || traced {
		t.Errorf("untraced request leaked trace context: header=%q body=%q trace=%v", header, bodyID, traced)
	}
	if p2.Remote != nil {
		t.Error("untraced task returned a Remote timeline")
	}
}

// TestFetchStats covers the fleet fan-out: every peer gets one entry in
// sorted order, and a dead peer degrades to an error entry rather than
// failing the fetch.
func TestFetchStats(t *testing.T) {
	db := testDB(31, 6, 30, 0.5)
	alive := newStubPeer(t, db)
	dead := httptest.NewServer(http.NotFoundHandler())
	deadURL := dead.URL
	dead.Close()
	client, err := NewClient(ClientConfig{Peers: []string{alive.srv.URL, deadURL}})
	if err != nil {
		t.Fatal(err)
	}
	bodies := client.FetchStats(context.Background())
	if len(bodies) != 2 {
		t.Fatalf("FetchStats returned %d entries, want 2", len(bodies))
	}
	wantOrder := client.Peers()
	for i, b := range bodies {
		if b.URL != wantOrder[i] {
			t.Errorf("entry %d is %s, want sorted order %v", i, b.URL, wantOrder)
		}
		switch b.URL {
		case alive.srv.URL:
			if b.Err != nil || !strings.Contains(string(b.Body), "draining") {
				t.Errorf("live peer entry: err=%v body=%q", b.Err, b.Body)
			}
		case deadURL:
			if b.Err == nil {
				t.Error("dead peer fetch reported no error")
			}
		}
	}
}

func TestClientRejectsWrongFingerprint(t *testing.T) {
	db := testDB(19, 6, 30, 0.5)
	other := testDB(23, 6, 30, 0.5)
	peer := newStubPeer(t, other) // peer holds a different database
	client, err := NewClient(ClientConfig{Peers: []string{peer.srv.URL}, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	_, err = client.Execute(context.Background(), db, core.Options{Per: 4, MinPS: 2, MinRec: 1},
		Task{Index: 0, Count: 1, FP: db.Fingerprint()})
	if err == nil {
		t.Fatal("want error when the peer does not hold the fingerprint")
	}
	if !strings.Contains(err.Error(), "no dataset with fingerprint") {
		t.Errorf("unexpected error: %v", err)
	}
}
