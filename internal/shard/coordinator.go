package shard

import (
	"context"
	"errors"
	"fmt"
	"sync"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// Result is a gathered scatter: the merged mining result, plus the
// partial-failure marker when a BestEffort scatter lost shards.
type Result struct {
	*core.Result
	// Partial is true when one or more shards failed under BestEffort and
	// the pattern set covers only the surviving shards' suffix items.
	Partial bool
	// FailedShards lists the failed shard indexes, ascending, when Partial.
	FailedShards []int
}

// Coordinator scatters one mine over Count shard tasks through an Executor
// and gathers the partials into a canonical result. The zero Policy is
// FailFast.
type Coordinator struct {
	// Count is the number of shard tasks to plan. Must be positive.
	Count int
	// Exec runs each task: Local{} for a one-box scatter, *Client for
	// remote peers.
	Exec Executor
	// Policy selects partial-failure handling for the scatter.
	Policy Policy
}

// Mine scatters the mine over the planned tasks — one goroutine per task,
// each traced as a labeled obs.PhaseShard span — and gathers: with no
// failures the reduced result is byte-identical to core.MineContext over
// the same database and options. Under FailFast the first shard error
// cancels the rest; under BestEffort the survivors merge into a result
// marked Partial. Every shard failing is an error either way.
func (c *Coordinator) Mine(ctx context.Context, db *tsdb.DB, o core.Options) (*Result, error) {
	if c.Exec == nil {
		return nil, errors.New("shard: coordinator has no executor")
	}
	tasks, err := Plan(db.Fingerprint(), c.Count)
	if err != nil {
		return nil, err
	}
	sctx := ctx
	cancel := context.CancelFunc(func() {})
	if c.Policy == FailFast {
		sctx, cancel = context.WithCancel(ctx)
	}
	defer cancel()

	parts := make([]*Partial, len(tasks))
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, t := range tasks {
		wg.Add(1)
		go func(i int, t Task) {
			defer wg.Done()
			sp := o.Trace.StartLabeled(obs.PhaseShard, fmt.Sprintf("shard=%d/%d", t.Index, t.Count))
			parts[i], errs[i] = c.Exec.Execute(sctx, db, o, t)
			sp.End()
			if p := parts[i]; p != nil && p.Remote != nil {
				// Graft the peer's recorded lane into the coordinator's
				// timeline: one fleet-wide flight record per request.
				o.Trace.Timeline().AddPeer(*p.Remote)
			}
			if errs[i] != nil && c.Policy == FailFast {
				cancel()
			}
		}(i, t)
	}
	wg.Wait()

	var failed []int
	var firstErr error
	for i, err := range errs {
		if err == nil {
			continue
		}
		failed = append(failed, i)
		// Prefer the root-cause error over the cancellations it induced in
		// sibling shards under FailFast.
		if firstErr == nil || isCancellation(firstErr) && !isCancellation(err) {
			firstErr = err
		}
	}
	if len(failed) == 0 {
		return &Result{Result: Reduce(parts)}, nil
	}
	if err := ctx.Err(); err != nil {
		// The caller's own context fired; report that rather than a
		// per-shard symptom.
		return nil, &core.CancelError{Err: err}
	}
	if c.Policy == FailFast || len(failed) == len(tasks) {
		return nil, fmt.Errorf("shard: %d/%d shard tasks failed: %w", len(failed), len(tasks), firstErr)
	}
	return &Result{Result: Reduce(parts), Partial: true, FailedShards: failed}, nil
}

// isCancellation reports whether err is a context or miner cancellation —
// the induced errors FailFast produces in the shards it aborts.
func isCancellation(err error) bool {
	var cerr *core.CancelError
	return errors.Is(err, context.Canceled) || errors.As(err, &cerr)
}
