package shard

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

// testDB builds a deterministic random database: nItems item names over
// nTS timestamps, each (item, ts) pair present with the given density.
func testDB(seed int64, nItems, nTS int, density float64) *tsdb.DB {
	rng := rand.New(rand.NewSource(seed))
	b := tsdb.NewBuilder()
	for ts := 1; ts <= nTS; ts++ {
		for i := 0; i < nItems; i++ {
			if rng.Float64() < density {
				b.Add(fmt.Sprintf("item%02d", i), int64(ts))
			}
		}
	}
	return b.Build()
}

func TestPlan(t *testing.T) {
	tasks, err := Plan(0xdeadbeef, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 3 {
		t.Fatalf("planned %d tasks, want 3", len(tasks))
	}
	for i, task := range tasks {
		if task.Index != i || task.Count != 3 || task.FP != 0xdeadbeef {
			t.Errorf("task %d = %+v", i, task)
		}
	}
	if _, err := Plan(1, 0); err == nil {
		t.Error("want error for zero shard count")
	}
	if _, err := Plan(1, -2); err == nil {
		t.Error("want error for negative shard count")
	}
}

func TestParsePolicy(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Policy
	}{{"", FailFast}, {"fail-fast", FailFast}, {"best-effort", BestEffort}} {
		p, err := ParsePolicy(c.in)
		if err != nil || p != c.want {
			t.Errorf("ParsePolicy(%q) = %v, %v", c.in, p, err)
		}
	}
	if _, err := ParsePolicy("yolo"); err == nil {
		t.Error("want error for unknown policy")
	}
	if FailFast.String() != "fail-fast" || BestEffort.String() != "best-effort" {
		t.Error("policy String/Parse forms disagree")
	}
}

func TestRingDeterministicSequences(t *testing.T) {
	urls := []string{"http://a:1", "http://b:1", "http://c:1"}
	r1, err := newRing(urls)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := newRing(urls)
	for key := uint64(0); key < 64; key++ {
		s1, s2 := r1.sequence(key*0x9e3779b97f4a7c15), r2.sequence(key*0x9e3779b97f4a7c15)
		if len(s1) != len(urls) || len(s2) != len(urls) {
			t.Fatalf("sequence for key %d has %d/%d peers, want %d", key, len(s1), len(s2), len(urls))
		}
		seen := make(map[int]bool)
		for i := range s1 {
			if s1[i] != s2[i] {
				t.Fatalf("ring sequences diverge for key %d: %v vs %v", key, s1, s2)
			}
			if seen[s1[i]] {
				t.Fatalf("sequence repeats peer %d: %v", s1[i], s1)
			}
			seen[s1[i]] = true
		}
	}
	if _, err := newRing(nil); err == nil {
		t.Error("want error for empty peer set")
	}
}

func TestRingSpreadsTasks(t *testing.T) {
	r, err := newRing([]string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"})
	if err != nil {
		t.Fatal(err)
	}
	// Tasks of many plans should land on more than one home peer.
	homes := make(map[int]int)
	for fp := uint64(1); fp <= 32; fp++ {
		tasks, _ := Plan(fp, 4)
		for _, task := range tasks {
			homes[r.sequence(task.key())[0]]++
		}
	}
	if len(homes) < 2 {
		t.Errorf("all tasks homed on one peer: %v", homes)
	}
	// The tasks of ONE plan must spread too: their keys share the
	// fingerprint prefix, which is exactly the similar-input case the
	// mix64 finalizer exists for (without it a whole plan dogpiles one
	// peer and scatter-gather degenerates to a proxy).
	within := make(map[int]int)
	for _, task := range mustPlan(t, 0xdeadbeefcafe, 16) {
		within[r.sequence(task.key())[0]]++
	}
	if len(within) < 2 {
		t.Errorf("all 16 tasks of one plan homed on one peer: %v", within)
	}
}

func mustPlan(t *testing.T, fp uint64, count int) []Task {
	t.Helper()
	tasks, err := Plan(fp, count)
	if err != nil {
		t.Fatal(err)
	}
	return tasks
}

// TestCoordinatorEquivalence pins the reducer determinism property: the
// gathered scatter is byte-identical to the single-box mine for every
// shard count, option set, and database tried.
func TestCoordinatorEquivalence(t *testing.T) {
	optSets := []core.Options{
		{Per: 4, MinPS: 2, MinRec: 1},
		{Per: 4, MinPS: 2, MinRec: 1, Parallelism: 3, CollectStats: true},
		{Per: 6, MinPS: 3, MinRec: 2, ItemOrder: core.Lexicographic},
		{Per: 4, MinPS: 2, MinRec: 1, MaxLen: 2, DisableErecPruning: true},
	}
	for seed := int64(1); seed <= 3; seed++ {
		db := testDB(seed, 12, 60, 0.35)
		for oi, o := range optSets {
			want, err := core.MineContext(context.Background(), db, o)
			if err != nil {
				t.Fatalf("seed %d opts %d: single-box: %v", seed, oi, err)
			}
			for _, count := range []int{1, 2, 3, 7} {
				c := &Coordinator{Count: count, Exec: Local{}}
				got, err := c.Mine(context.Background(), db, o)
				if err != nil {
					t.Fatalf("seed %d opts %d shards %d: %v", seed, oi, count, err)
				}
				if got.Partial || got.FailedShards != nil {
					t.Fatalf("seed %d opts %d shards %d: unexpected partial marker", seed, oi, count)
				}
				if !got.Result.Equal(want) {
					t.Errorf("seed %d opts %d shards %d: scatter diverged from single-box (%d vs %d patterns)",
						seed, oi, count, len(got.Patterns), len(want.Patterns))
				}
			}
		}
	}
}

// failExec fails the tasks whose index is in fail, delegating the rest.
type failExec struct {
	inner Executor
	fail  map[int]bool
}

func (f failExec) Execute(ctx context.Context, db *tsdb.DB, o core.Options, task Task) (*Partial, error) {
	if f.fail[task.Index] {
		return nil, fmt.Errorf("injected failure on shard %d", task.Index)
	}
	return f.inner.Execute(ctx, db, o, task)
}

func TestCoordinatorBestEffortPartial(t *testing.T) {
	db := testDB(7, 10, 50, 0.4)
	o := core.Options{Per: 4, MinPS: 2, MinRec: 1}
	c := &Coordinator{
		Count:  3,
		Exec:   failExec{inner: Local{}, fail: map[int]bool{1: true}},
		Policy: BestEffort,
	}
	got, err := c.Mine(context.Background(), db, o)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Partial || len(got.FailedShards) != 1 || got.FailedShards[0] != 1 {
		t.Fatalf("partial marker wrong: partial=%v failed=%v", got.Partial, got.FailedShards)
	}
	// The surviving shards' merge is deterministic: re-running yields the
	// same patterns, and they are exactly the survivors' single-shard sets.
	again, err := c.Mine(context.Background(), db, o)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Result.Equal(again.Result) {
		t.Error("best-effort survivors not deterministic across runs")
	}
	var parts []*Partial
	for _, idx := range []int{0, 2} {
		p, err := Local{}.Execute(context.Background(), db, o, Task{Index: idx, Count: 3, FP: db.Fingerprint()})
		if err != nil {
			t.Fatal(err)
		}
		parts = append(parts, p)
	}
	if want := Reduce(parts); !got.Result.Equal(want) {
		t.Errorf("partial result is not the survivors' merge (%d vs %d patterns)",
			len(got.Patterns), len(want.Patterns))
	}
	// A full mine must differ (shard 1 owned at least one suffix item here).
	full, err := core.MineContext(context.Background(), db, o)
	if err != nil {
		t.Fatal(err)
	}
	if got.Result.Equal(full) {
		t.Error("partial result unexpectedly equals the full mine; failure injection inert")
	}
}

func TestCoordinatorFailFast(t *testing.T) {
	db := testDB(9, 8, 40, 0.4)
	o := core.Options{Per: 4, MinPS: 2, MinRec: 1}
	c := &Coordinator{Count: 4, Exec: failExec{inner: Local{}, fail: map[int]bool{2: true}}}
	_, err := c.Mine(context.Background(), db, o)
	if err == nil {
		t.Fatal("want error under fail-fast")
	}
	if want := "injected failure on shard 2"; !strings.Contains(err.Error(), want) {
		t.Errorf("error lost the root cause: %v", err)
	}
}

func TestCoordinatorAllShardsFailedBestEffort(t *testing.T) {
	db := testDB(3, 6, 30, 0.5)
	c := &Coordinator{
		Count:  2,
		Exec:   failExec{inner: Local{}, fail: map[int]bool{0: true, 1: true}},
		Policy: BestEffort,
	}
	if _, err := c.Mine(context.Background(), db, core.Options{Per: 4, MinPS: 2, MinRec: 1}); err == nil {
		t.Fatal("want error when every shard fails, even best-effort")
	}
}

func TestCoordinatorCancelled(t *testing.T) {
	db := testDB(5, 10, 50, 0.4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	c := &Coordinator{Count: 3, Exec: Local{}}
	_, err := c.Mine(ctx, db, core.Options{Per: 4, MinPS: 2, MinRec: 1})
	if err == nil {
		t.Fatal("want error for pre-cancelled context")
	}
	var cerr *core.CancelError
	if !errors.As(err, &cerr) {
		t.Errorf("want *core.CancelError, got %T: %v", err, err)
	}
}

func TestLocalRejectsWrongFingerprint(t *testing.T) {
	db := testDB(2, 6, 30, 0.5)
	_, err := Local{}.Execute(context.Background(), db, core.Options{Per: 4, MinPS: 2, MinRec: 1},
		Task{Index: 0, Count: 1, FP: db.Fingerprint() + 1})
	if err == nil {
		t.Fatal("want fingerprint mismatch error")
	}
}

func TestReduceSkipsNil(t *testing.T) {
	db := testDB(4, 8, 40, 0.4)
	o := core.Options{Per: 4, MinPS: 2, MinRec: 1, CollectStats: true}
	p0, err := Local{}.Execute(context.Background(), db, o, Task{Index: 0, Count: 2, FP: db.Fingerprint()})
	if err != nil {
		t.Fatal(err)
	}
	res := Reduce([]*Partial{p0, nil})
	if len(res.Patterns) != len(p0.Patterns) {
		t.Errorf("Reduce with nil partial has %d patterns, want %d", len(res.Patterns), len(p0.Patterns))
	}
	if res.Stats.PatternsExamined != p0.Stats.PatternsExamined {
		t.Errorf("stats merge wrong: %+v", res.Stats)
	}
}
