package shard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/recurpat/rp/internal/api"
	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// ClientConfig tunes the remote executor. The zero value of each field
// resolves to the documented default.
type ClientConfig struct {
	// Peers are the base URLs of the rpserved peers ("http://host:port").
	// At least one is required; order does not matter (the ring hashes
	// them).
	Peers []string
	// Timeout bounds one POST attempt, connection and body included.
	// 0 → 30s, negative → no per-attempt bound (the request context still
	// applies).
	Timeout time.Duration
	// Retries is how many additional attempts a failed task gets, each on
	// the next peer of its failover sequence with exponential backoff in
	// between. 0 → 2, negative → none.
	Retries int
	// Backoff is the delay before the first retry, doubling per retry.
	// 0 → 100ms, negative → none.
	Backoff time.Duration
	// Hedge, when positive, fires a duplicate request at the next peer of
	// the failover sequence if the primary has not answered within the
	// delay; the first success wins and the loser is cancelled. Off by
	// default — hedging buys tail latency with duplicated work.
	Hedge time.Duration
	// HTTPClient overrides the transport; nil uses http.DefaultClient.
	// Per-attempt timeouts come from Timeout via the request context, so
	// the client's own Timeout field should stay zero.
	HTTPClient *http.Client
}

func (c ClientConfig) withDefaults() ClientConfig {
	if c.Timeout == 0 {
		c.Timeout = 30 * time.Second
	}
	if c.Timeout < 0 {
		c.Timeout = 0
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.Retries < 0 {
		c.Retries = 0
	}
	if c.Backoff == 0 {
		c.Backoff = 100 * time.Millisecond
	}
	if c.Backoff < 0 {
		c.Backoff = 0
	}
	if c.HTTPClient == nil {
		c.HTTPClient = http.DefaultClient
	}
	return c
}

// peerCounters is one peer's atomic outcome counters, exported through
// PeerStats for /metrics and /v1/stats.
type peerCounters struct {
	url       string
	success   atomic.Int64
	failure   atomic.Int64
	retries   atomic.Int64
	hedges    atomic.Int64
	hedgeWins atomic.Int64
	// phaseNanos accumulates the peer-reported per-phase wall time of
	// successful tasks (ShardMineResponse.Phases), indexed by obs.Phase —
	// the raw material of rpserved_shard_peer_phase_seconds.
	phaseNanos [obs.NumPhases]atomic.Int64
}

// PeerStats is a point-in-time copy of one peer's counters.
type PeerStats struct {
	URL string `json:"url"`
	// Success and Failure count completed attempts against this peer.
	Success int64 `json:"success"`
	Failure int64 `json:"failure"`
	// Retries counts attempts that were re-dispatches of a previously
	// failed task; Hedges duplicate requests fired by the hedging timer,
	// and HedgeWins the hedged requests that answered first.
	Retries   int64 `json:"retries"`
	Hedges    int64 `json:"hedges"`
	HedgeWins int64 `json:"hedgeWins"`
	// PhaseSeconds is the peer-reported wall time of each algorithm phase,
	// summed over this peer's successful tasks, keyed by canonical phase
	// name. Only phases that observed time appear.
	PhaseSeconds map[string]float64 `json:"phaseSeconds,omitempty"`
}

// Client executes shard tasks on remote rpserved peers over HTTP: POST
// /v1/shard/mine with consistent-hash routing on (fingerprint, shard
// index), bounded retries with exponential backoff walking the task's
// failover sequence, and optional hedged requests. A Client is safe for
// concurrent use; one serves every task of a coordinator's scatter.
type Client struct {
	cfg   ClientConfig
	ring  ring
	peers []*peerCounters // sorted by URL; ring peer indexes point here
}

// NewClient builds a client over the configured peer set.
func NewClient(cfg ClientConfig) (*Client, error) {
	urls := make([]string, 0, len(cfg.Peers))
	for _, u := range cfg.Peers {
		u = strings.TrimRight(u, "/")
		if u == "" {
			return nil, fmt.Errorf("shard: empty peer URL")
		}
		urls = append(urls, u)
	}
	slices.Sort(urls)
	urls = slices.Compact(urls)
	r, err := newRing(urls)
	if err != nil {
		return nil, err
	}
	c := &Client{cfg: cfg.withDefaults(), ring: r}
	for _, u := range urls {
		c.peers = append(c.peers, &peerCounters{url: u})
	}
	return c, nil
}

// Peers reports the deduplicated, sorted peer URLs the client routes over.
func (c *Client) Peers() []string {
	urls := make([]string, len(c.peers))
	for i, p := range c.peers {
		urls[i] = p.url
	}
	return urls
}

// Stats snapshots the per-peer counters, sorted by URL for deterministic
// exposition.
func (c *Client) Stats() []PeerStats {
	out := make([]PeerStats, len(c.peers))
	for i, p := range c.peers {
		out[i] = PeerStats{
			URL:       p.url,
			Success:   p.success.Load(),
			Failure:   p.failure.Load(),
			Retries:   p.retries.Load(),
			Hedges:    p.hedges.Load(),
			HedgeWins: p.hedgeWins.Load(),
		}
		for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
			if n := p.phaseNanos[ph].Load(); n > 0 {
				if out[i].PhaseSeconds == nil {
					out[i].PhaseSeconds = make(map[string]float64)
				}
				out[i].PhaseSeconds[ph.String()] = float64(n) / 1e9
			}
		}
	}
	return out
}

// taskEvents collects the client's per-task annotations — retries, hedges,
// failed attempts — stamped on the coordinator timeline's clock, so the
// winning peer's graft can carry them as instant events. A nil receiver is
// inert (untraced tasks record nothing); the mutex covers the hedged case
// where two attempts race.
type taskEvents struct {
	tl *obs.Timeline

	mu     sync.Mutex
	events []obs.PeerEvent
}

func (te *taskEvents) add(name string) {
	if te == nil {
		return
	}
	at := te.tl.Elapsed(obs.Now())
	te.mu.Lock()
	te.events = append(te.events, obs.PeerEvent{Name: name, AtNS: at})
	te.mu.Unlock()
}

// take copies the events recorded so far; a hedged loser finishing late may
// add more afterwards, which the winner's copy correctly excludes.
func (te *taskEvents) take() []obs.PeerEvent {
	if te == nil {
		return nil
	}
	te.mu.Lock()
	defer te.mu.Unlock()
	return slices.Clone(te.events)
}

// Execute runs one shard task remotely: the task's failover sequence comes
// off the ring, the first attempt goes to its home peer, and each failed
// attempt moves to the next peer after a doubling backoff, up to Retries
// re-dispatches. A context error stops retrying immediately — the caller
// cancelled or the scatter was failed fast; backoff waits also abort on
// ctx.
//
// Trace context propagates both ways: a request ID on ctx
// (obs.WithRequestID) rides in the body and the X-Request-Id header so the
// peer journals the task under the coordinator's ID, and when the options
// carry a timeline the peer is asked to record and return its own, which
// Execute wraps — clock references, retry/hedge/failover annotations — into
// Partial.Remote for the coordinator to graft.
func (c *Client) Execute(ctx context.Context, db *tsdb.DB, o core.Options, t Task) (*Partial, error) {
	reqID := obs.RequestIDFrom(ctx)
	tl := o.Trace.Timeline()
	body, err := json.Marshal(api.ShardMineRequest{
		MineRequest: api.FromCoreOptions(o),
		Shard:       t.Index,
		Shards:      t.Count,
		Fingerprint: fmt.Sprintf("%016x", t.FP),
		RequestID:   reqID,
		Trace:       tl != nil,
	})
	if err != nil {
		return nil, err
	}
	var te *taskEvents
	if tl != nil {
		te = &taskEvents{tl: tl}
	}
	seq := c.ring.sequence(t.key())
	var lastErr error
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if err := ctx.Err(); err != nil {
			if lastErr != nil {
				return nil, lastErr
			}
			return nil, err
		}
		if attempt > 0 {
			peer := seq[attempt%len(seq)]
			c.peers[peer].retries.Add(1)
			te.add(fmt.Sprintf("retry %d -> %s", attempt, c.peers[peer].url))
			if !sleep(ctx, c.cfg.Backoff<<(attempt-1)) {
				return nil, lastErr
			}
		}
		p, err := c.attempt(ctx, db, body, t, seq, attempt, reqID, te)
		if err == nil {
			return p, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("shard %d/%d: %d attempts failed: %w", t.Index, t.Count, c.cfg.Retries+1, lastErr)
}

// sleep waits for d or until ctx fires; it reports whether the full wait
// elapsed.
func sleep(ctx context.Context, d time.Duration) bool {
	if d <= 0 {
		return true
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// attemptOutcome carries one in-flight request's result to the attempt
// loop.
type attemptOutcome struct {
	p      *Partial
	err    error
	peer   int
	hedged bool
}

// attempt performs one (possibly hedged) dispatch of the task: the primary
// request goes to the attempt's peer in the failover sequence; when
// hedging is on and the primary is quiet past the hedge delay, a duplicate
// fires at the next peer and the first success wins, cancelling the loser.
func (c *Client) attempt(ctx context.Context, db *tsdb.DB, body []byte, t Task, seq []int, attempt int, reqID string, te *taskEvents) (*Partial, error) {
	primary := seq[attempt%len(seq)]
	if c.cfg.Hedge <= 0 || len(seq) < 2 {
		return c.post(ctx, db, body, t, primary, reqID, te)
	}
	actx, cancel := context.WithCancel(ctx)
	defer cancel()
	// Buffered to the maximum in-flight count: a loser's send never
	// blocks, so cancelled goroutines always exit.
	results := make(chan attemptOutcome, 2)
	post := func(peer int, hedged bool) {
		go func() {
			p, err := c.post(actx, db, body, t, peer, reqID, te)
			results <- attemptOutcome{p: p, err: err, peer: peer, hedged: hedged}
		}()
	}
	post(primary, false)
	inFlight := 1
	hedgeTimer := time.NewTimer(c.cfg.Hedge)
	defer hedgeTimer.Stop()
	var firstErr error
	for {
		select {
		case out := <-results:
			inFlight--
			if out.err == nil {
				if out.hedged {
					c.peers[out.peer].hedgeWins.Add(1)
				}
				return out.p, nil
			}
			if firstErr == nil {
				firstErr = out.err
			}
			if inFlight == 0 {
				return nil, firstErr
			}
		case <-hedgeTimer.C:
			hedge := seq[(attempt+1)%len(seq)]
			c.peers[hedge].hedges.Add(1)
			te.add("hedge -> " + c.peers[hedge].url)
			post(hedge, true)
			inFlight++
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// post performs one POST /v1/shard/mine against one peer, verifying the
// response's version, fingerprint and task identity, and mapping the wire
// patterns back to item IDs against the coordinator's copy of the
// database. On a traced task it also stamps the exchange's send/receive
// instants and wraps a returned peer timeline into Partial.Remote.
func (c *Client) post(ctx context.Context, db *tsdb.DB, body []byte, t Task, peer int, reqID string, te *taskEvents) (p *Partial, err error) {
	pc := c.peers[peer]
	defer func() {
		if err != nil {
			pc.failure.Add(1)
			te.add("fail " + pc.url)
		}
	}()
	pctx := ctx
	if c.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		pctx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(pctx, http.MethodPost, pc.url+"/v1/shard/mine", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	if reqID != "" {
		req.Header.Set("X-Request-Id", reqID)
	}
	send := obs.Now()
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return nil, fmt.Errorf("shard: peer %s: %w", pc.url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("shard: peer %s: %s: %s", pc.url, resp.Status, errorBody(resp.Body))
	}
	sr, err := api.DecodeShardMineResponse(resp.Body)
	if err != nil {
		return nil, fmt.Errorf("shard: peer %s: decoding response: %w", pc.url, err)
	}
	// The body is fully read here, so recv closes the network window the
	// clock alignment centers the peer's handling time in.
	recv := obs.Now()
	if want := fmt.Sprintf("%016x", t.FP); sr.Fingerprint != want {
		return nil, fmt.Errorf("shard: peer %s mined fingerprint %s, want %s", pc.url, sr.Fingerprint, want)
	}
	if sr.Shard != t.Index || sr.Shards != t.Count {
		return nil, fmt.Errorf("shard: peer %s answered task %d/%d, want %d/%d",
			pc.url, sr.Shard, sr.Shards, t.Index, t.Count)
	}
	patterns, err := api.PatternsToCore(db, sr.Patterns)
	if err != nil {
		return nil, fmt.Errorf("shard: peer %s: %w", pc.url, err)
	}
	pc.success.Add(1)
	for _, st := range sr.Phases {
		if ph, ok := obs.ParsePhase(st.Phase); ok {
			pc.phaseNanos[ph].Add(st.Nanos)
		}
	}
	p = &Partial{
		Task:     t,
		Patterns: patterns,
		MineTime: time.Duration(sr.MiningMS * 1e6),
		Phases:   sr.Phases,
	}
	if sr.Stats != nil {
		p.Stats = *sr.Stats
	}
	if te != nil && sr.Timeline != nil {
		p.Remote = &obs.PeerTimeline{
			Peer:      pc.url,
			SendNS:    te.tl.Elapsed(send),
			RecvNS:    te.tl.Elapsed(recv),
			ElapsedNS: sr.ElapsedNS,
			Snapshot:  *sr.Timeline,
			Events:    te.take(),
		}
	}
	return p, nil
}

// PeerStatsBody is one peer's raw GET /v1/stats response (or the error the
// fetch failed with), as gathered by FetchStats.
type PeerStatsBody struct {
	URL  string
	Body []byte
	Err  error
}

// FetchStats GETs every peer's /v1/stats concurrently and returns the raw
// bodies in the client's deterministic (sorted-URL) peer order — the fan-out
// half of the coordinator's /v1/fleet/stats. Per-peer failures land in the
// entry's Err; the slice always has one entry per peer.
func (c *Client) FetchStats(ctx context.Context) []PeerStatsBody {
	out := make([]PeerStatsBody, len(c.peers))
	var wg sync.WaitGroup
	for i, p := range c.peers {
		wg.Add(1)
		go func(i int, url string) {
			defer wg.Done()
			out[i] = c.fetchStats(ctx, url)
		}(i, p.url)
	}
	wg.Wait()
	return out
}

func (c *Client) fetchStats(ctx context.Context, url string) PeerStatsBody {
	if c.cfg.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.cfg.Timeout)
		defer cancel()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url+"/v1/stats", nil)
	if err != nil {
		return PeerStatsBody{URL: url, Err: err}
	}
	resp, err := c.cfg.HTTPClient.Do(req)
	if err != nil {
		return PeerStatsBody{URL: url, Err: fmt.Errorf("peer %s: %w", url, err)}
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return PeerStatsBody{URL: url, Err: fmt.Errorf("peer %s: %s: %s", url, resp.Status, errorBody(resp.Body))}
	}
	b, err := io.ReadAll(io.LimitReader(resp.Body, 4<<20))
	if err != nil {
		return PeerStatsBody{URL: url, Err: fmt.Errorf("peer %s: %w", url, err)}
	}
	return PeerStatsBody{URL: url, Body: b}
}

// errorBody extracts the message of an api.ErrorResponse body, falling
// back to a bounded raw prefix for non-JSON errors.
func errorBody(r io.Reader) string {
	raw, err := io.ReadAll(io.LimitReader(r, 4096))
	if err != nil || len(raw) == 0 {
		return "(no body)"
	}
	var e api.ErrorResponse
	if json.Unmarshal(raw, &e) == nil && e.Error != "" {
		return e.Error
	}
	return strings.TrimSpace(string(raw))
}
