// Package ppattern implements p-pattern mining after Ma and Hellerstein,
// "Mining partially periodic event patterns with unknown periods" (ICDE
// 2001), in the form the recurring-pattern paper uses it as a comparator
// (Table 8): the period is supplied by the user, and a pattern is a
// p-pattern iff its number of periodic appearances — inter-arrival times of
// at most per plus the tolerance window w — throughout the whole database
// reaches minSup.
//
// The package implements the *periodic-first* algorithm (the faster of Ma
// and Hellerstein's two): first find the items with enough periodic
// appearances, then grow itemsets level-wise Apriori-style over those items
// using plain support for candidate pruning, and finally keep the itemsets
// whose periodic-appearance count reaches the threshold.
//
// Note: with the gap-based periodicity used here, the periodic-appearance
// count is itself anti-monotone (each periodic gap of a superset contains at
// least one periodic gap of any subset), so the level-wise search loses no
// patterns.
package ppattern

import (
	"cmp"
	"fmt"
	"slices"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

// Options holds the p-pattern thresholds.
type Options struct {
	// Per is the period: an inter-arrival time counts as a periodic
	// appearance iff it is at most Per+Window.
	Per int64
	// Window is Ma and Hellerstein's time tolerance w.
	Window int64
	// MinSup is the minimum number of periodic appearances a pattern must
	// have throughout the database.
	MinSup int
	// MaxLen, when positive, bounds the pattern length.
	MaxLen int
	// Limit, when positive, stops the search after that many patterns and
	// marks the result truncated. Low minSup values make the p-pattern set
	// explode combinatorially (the phenomenon the recurring-pattern paper's
	// Table 8 documents), so unattended runs should set a ceiling.
	Limit int
}

// Validate reports the first violated constraint.
func (o Options) Validate() error {
	if o.Per <= 0 {
		return fmt.Errorf("ppattern: Per must be positive, got %d", o.Per)
	}
	if o.Window < 0 {
		return fmt.Errorf("ppattern: Window must be non-negative, got %d", o.Window)
	}
	if o.MinSup <= 0 {
		return fmt.Errorf("ppattern: MinSup must be positive, got %d", o.MinSup)
	}
	if o.MaxLen < 0 {
		return fmt.Errorf("ppattern: MaxLen must be non-negative, got %d", o.MaxLen)
	}
	return nil
}

// Pattern is a p-pattern: items, support, and the number of periodic
// appearances that qualified it.
type Pattern struct {
	Items    []tsdb.ItemID // sorted ascending
	Support  int
	Periodic int // periodic appearances (inter-arrival times within per+w)
}

// Result is the output of a mining run, canonically ordered.
type Result struct {
	Patterns []Pattern
	// Truncated reports that Options.Limit stopped the search early; the
	// pattern count is then a lower bound.
	Truncated bool
}

// MaxLen returns the length of the longest pattern found.
func (r *Result) MaxLen() int {
	max := 0
	for _, p := range r.Patterns {
		if len(p.Items) > max {
			max = len(p.Items)
		}
	}
	return max
}

// Mine discovers all p-patterns of db under o with the periodic-first
// algorithm.
func Mine(db *tsdb.DB, o Options) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	bound := o.Per + o.Window
	all := db.ItemTSLists()

	// Phase 1: periodic items.
	type entry struct {
		item tsdb.ItemID
		ts   []int64
	}
	var items []entry
	for id, ts := range all {
		if core.PeriodicAppearances(ts, bound) >= o.MinSup {
			items = append(items, entry{item: tsdb.ItemID(id), ts: ts})
		}
	}
	slices.SortFunc(items, func(a, b entry) int {
		if len(a.ts) != len(b.ts) {
			return len(b.ts) - len(a.ts)
		}
		return cmp.Compare(a.item, b.item)
	})

	// Phase 2+3: grow itemsets over the periodic items; candidates are kept
	// alive by support (a p-pattern trivially has support > minSup periodic
	// gaps), and emitted when their periodic-appearance count qualifies.
	var dfs func(prefix []tsdb.ItemID, ts []int64, idx int)
	dfs = func(prefix []tsdb.ItemID, ts []int64, idx int) {
		if res.Truncated {
			return
		}
		if p := core.PeriodicAppearances(ts, bound); p >= o.MinSup {
			sorted := make([]tsdb.ItemID, len(prefix))
			copy(sorted, prefix)
			slices.Sort(sorted)
			res.Patterns = append(res.Patterns, Pattern{Items: sorted, Support: len(ts), Periodic: p})
			if o.Limit > 0 && len(res.Patterns) >= o.Limit {
				res.Truncated = true
				return
			}
		} else {
			// Periodic appearances are anti-monotone for gap periodicity, so
			// no superset can qualify either.
			return
		}
		if o.MaxLen > 0 && len(prefix) >= o.MaxLen {
			return
		}
		n := len(prefix)
		for j := idx + 1; j < len(items); j++ {
			ext := core.IntersectTS(nil, ts, items[j].ts)
			if len(ext) <= o.MinSup { // need minSup inter-arrival times
				continue
			}
			dfs(append(prefix[:n:n], items[j].item), ext, j)
		}
	}
	for i := range items {
		dfs([]tsdb.ItemID{items[i].item}, items[i].ts, i)
	}

	slices.SortFunc(res.Patterns, func(a, b Pattern) int {
		return comparePatterns(a.Items, b.Items)
	})
	return res, nil
}

func comparePatterns(a, b []tsdb.ItemID) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}
