package ppattern

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

func mustDB(t *testing.T, text string) *tsdb.DB {
	t.Helper()
	db, err := tsdb.Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestValidate(t *testing.T) {
	for _, o := range []Options{
		{Per: 0, MinSup: 1},
		{Per: 1, Window: -1, MinSup: 1},
		{Per: 1, MinSup: 0},
		{Per: 1, MinSup: 1, MaxLen: -1},
	} {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", o)
		}
	}
	if _, err := Mine(&tsdb.DB{Dict: tsdb.NewDictionary()}, Options{}); err == nil {
		t.Error("Mine must reject invalid options")
	}
}

func TestPeriodicAppearanceCounting(t *testing.T) {
	// 'a' at 1,2,3,10,11: gaps 1,1,7,1 -> 3 periodic appearances at per=2.
	db := mustDB(t, "1\ta\n2\ta\n3\ta\n10\ta\n11\ta\n")
	res, err := Mine(db, Options{Per: 2, MinSup: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 || res.Patterns[0].Periodic != 3 {
		t.Fatalf("got %+v, want one pattern with 3 periodic appearances", res.Patterns)
	}
	// minSup=4 filters it.
	res, err = Mine(db, Options{Per: 2, MinSup: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("got %+v, want none", res.Patterns)
	}
	// The window tolerance admits the gap of 7 at per=6, w=1.
	res, err = Mine(db, Options{Per: 6, Window: 1, MinSup: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 || res.Patterns[0].Periodic != 4 {
		t.Fatalf("window tolerance: got %+v", res.Patterns)
	}
}

// bruteForce enumerates all itemsets and filters by the model definition.
func bruteForce(db *tsdb.DB, o Options) []Pattern {
	bound := o.Per + o.Window
	all := db.ItemTSLists()
	var items []tsdb.ItemID
	for id, ts := range all {
		if len(ts) > 0 {
			items = append(items, tsdb.ItemID(id))
		}
	}
	var out []Pattern
	var grow func(start int, prefix []tsdb.ItemID, ts []int64)
	grow = func(start int, prefix []tsdb.ItemID, ts []int64) {
		for i := start; i < len(items); i++ {
			var ext []int64
			if len(prefix) == 0 {
				ext = all[items[i]]
			} else {
				ext = core.IntersectTS(nil, ts, all[items[i]])
			}
			next := append(prefix[:len(prefix):len(prefix)], items[i])
			if p := core.PeriodicAppearances(ext, bound); p >= o.MinSup {
				if o.MaxLen == 0 || len(next) <= o.MaxLen {
					cp := make([]tsdb.ItemID, len(next))
					copy(cp, next)
					out = append(out, Pattern{Items: cp, Support: len(ext), Periodic: p})
				}
			}
			if len(ext) > 0 {
				grow(i+1, next, ext)
			}
		}
	}
	grow(0, nil, nil)
	sort.Slice(out, func(i, j int) bool { return comparePatterns(out[i].Items, out[j].Items) < 0 })
	return out
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 4))
	for run := 0; run < 40; run++ {
		b := tsdb.NewBuilder()
		nItems := rng.IntN(6) + 2
		nTS := rng.IntN(50) + 10
		for ts := int64(1); ts <= int64(nTS); ts++ {
			for i := 0; i < nItems; i++ {
				if rng.Float64() < 0.4 {
					b.Add(string(rune('a'+i)), ts)
				}
			}
		}
		db := b.Build()
		if db.Len() == 0 {
			continue
		}
		o := Options{Per: rng.Int64N(6) + 1, Window: rng.Int64N(2), MinSup: rng.IntN(5) + 1}
		got, err := Mine(db, o)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(db, o)
		if !reflect.DeepEqual(got.Patterns, want) {
			t.Fatalf("run %d (o=%+v): got %d patterns, want %d\ngot  %+v\nwant %+v",
				run, o, len(got.Patterns), len(want), got.Patterns, want)
		}
	}
}

func TestPeriodicAppearancesAntiMonotone(t *testing.T) {
	// The completeness of periodic-first rests on the periodic-appearance
	// count being anti-monotone for gap periodicity; verify on random lists.
	rng := rand.New(rand.NewPCG(8, 8))
	for run := 0; run < 200; run++ {
		var ts []int64
		cur := int64(0)
		for i := 0; i < rng.IntN(40); i++ {
			cur += rng.Int64N(10) + 1
			ts = append(ts, cur)
		}
		var sub []int64
		for _, v := range ts {
			if rng.Float64() < 0.6 {
				sub = append(sub, v)
			}
		}
		per := rng.Int64N(12) + 1
		if core.PeriodicAppearances(sub, per) > core.PeriodicAppearances(ts, per) {
			t.Fatalf("anti-monotonicity violated: ts=%v sub=%v per=%d", ts, sub, per)
		}
	}
}

func TestExplosionAtLowMinSup(t *testing.T) {
	// The phenomenon Table 8 documents: with a long period and low minSup,
	// every combination of frequent items becomes a p-pattern.
	b := tsdb.NewBuilder()
	for ts := int64(1); ts <= 60; ts++ {
		for i := 0; i < 6; i++ {
			if (ts+int64(i))%2 == 0 || ts%3 == 0 {
				b.Add(string(rune('a'+i)), ts)
			}
		}
	}
	db := b.Build()
	pp, err := Mine(db, Options{Per: 30, MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	rp, err := core.Mine(db, core.Options{Per: 2, MinPS: 5, MinRec: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.Patterns) <= len(rp.Patterns) {
		t.Errorf("expected p-pattern explosion: %d p-patterns vs %d recurring",
			len(pp.Patterns), len(rp.Patterns))
	}
	if pp.MaxLen() < 3 {
		t.Errorf("expected long p-patterns, max len %d", pp.MaxLen())
	}
}

func TestLimitTruncates(t *testing.T) {
	db := mustDB(t, "1\ta b c d\n2\ta b c d\n3\ta b c d\n4\ta b c d\n")
	res, err := Mine(db, Options{Per: 2, MinSup: 2, Limit: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Truncated || len(res.Patterns) != 3 {
		t.Errorf("Limit=3: truncated=%v count=%d", res.Truncated, len(res.Patterns))
	}
	full, err := Mine(db, Options{Per: 2, MinSup: 2})
	if err != nil {
		t.Fatal(err)
	}
	if full.Truncated || len(full.Patterns) != 15 {
		t.Errorf("unlimited: truncated=%v count=%d, want all 15 subsets", full.Truncated, len(full.Patterns))
	}
}

func TestAssociationFirstMatchesPeriodicFirst(t *testing.T) {
	rng := rand.New(rand.NewPCG(55, 5))
	for run := 0; run < 30; run++ {
		b := tsdb.NewBuilder()
		nItems := rng.IntN(6) + 2
		nTS := rng.IntN(60) + 10
		for ts := int64(1); ts <= int64(nTS); ts++ {
			for i := 0; i < nItems; i++ {
				if rng.Float64() < 0.4 {
					b.Add(string(rune('a'+i)), ts)
				}
			}
		}
		db := b.Build()
		if db.Len() == 0 {
			continue
		}
		o := Options{Per: rng.Int64N(6) + 1, Window: rng.Int64N(2), MinSup: rng.IntN(5) + 1}
		pf, err := Mine(db, o)
		if err != nil {
			t.Fatal(err)
		}
		af, err := MineAssociationFirst(db, o)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(pf.Patterns, af.Patterns) {
			t.Fatalf("run %d (%+v): periodic-first %d patterns, association-first %d",
				run, o, len(pf.Patterns), len(af.Patterns))
		}
	}
	if _, err := MineAssociationFirst(&tsdb.DB{Dict: tsdb.NewDictionary()}, Options{}); err == nil {
		t.Error("MineAssociationFirst must reject invalid options")
	}
}
