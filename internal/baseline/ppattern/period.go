package ppattern

import (
	"cmp"
	"math"
	"slices"
)

// Period discovery. Ma and Hellerstein's p-pattern mining does not assume
// the period is known: it first finds statistically significant candidate
// periods from an item's inter-arrival distribution, then mines patterns
// at those periods. This file implements that first phase.
//
// The test follows the paper's construction: if events occurred at random
// (a Poisson process with the item's observed rate), the count of
// inter-arrival times falling in a window around a candidate period p
// would follow a binomial distribution; a chi-squared score far above the
// 95% quantile of chi^2(1) rejects randomness and makes p a candidate
// period.

// CandidatePeriod is a period supported by significantly many
// inter-arrival times.
type CandidatePeriod struct {
	Period int64
	// Count is the number of inter-arrival times within the tolerance
	// window of the period.
	Count int
	// Score is the chi-squared statistic against the random-arrivals null.
	Score float64
}

// chiSquared95 is the 95% quantile of the chi-squared distribution with
// one degree of freedom.
const chiSquared95 = 3.84

// DiscoverPeriods returns the candidate periods of a sorted timestamp
// list, strongest first. w is the time tolerance (a gap g supports period
// p iff |g-p| <= w); spanFirst/spanLast bound the observation window used
// for the null model. Periods from 1 up to half the span are considered.
func DiscoverPeriods(ts []int64, w int64, spanFirst, spanLast int64) []CandidatePeriod {
	if len(ts) < 3 || spanLast <= spanFirst {
		return nil
	}
	span := float64(spanLast - spanFirst + 1)
	n := len(ts) - 1 // number of inter-arrival times
	rate := float64(len(ts)) / span

	// Histogram of inter-arrival times.
	gaps := make(map[int64]int)
	maxGap := int64(0)
	for i := 1; i < len(ts); i++ {
		g := ts[i] - ts[i-1]
		gaps[g]++
		if g > maxGap {
			maxGap = g
		}
	}
	half := (spanLast - spanFirst) / 2
	if maxGap > half {
		maxGap = half
	}

	var out []CandidatePeriod
	for p := int64(1); p <= maxGap; p++ {
		count := 0
		for d := p - w; d <= p+w; d++ {
			if d > 0 {
				count += gaps[d]
			}
		}
		if count == 0 {
			continue
		}
		// Null: each gap lands in the window [p-w, p+w] with the
		// probability a Poisson inter-arrival (exponential with the
		// observed rate) would.
		lo := float64(p-w) - 0.5
		if lo < 0 {
			lo = 0
		}
		hi := float64(p+w) + 0.5
		prob := math.Exp(-rate*lo) - math.Exp(-rate*hi)
		if prob <= 0 || prob >= 1 {
			continue
		}
		expected := float64(n) * prob
		diff := float64(count) - expected
		score := diff * diff / (expected * (1 - prob))
		if diff > 0 && score > chiSquared95 {
			out = append(out, CandidatePeriod{Period: p, Count: count, Score: score})
		}
	}
	slices.SortFunc(out, func(a, b CandidatePeriod) int {
		if a.Score != b.Score {
			return cmp.Compare(b.Score, a.Score)
		}
		return cmp.Compare(a.Period, b.Period)
	})
	// Suppress harmonics and window-overlap duplicates: keep a period only
	// if no stronger kept period lies within w of it.
	var kept []CandidatePeriod
	for _, c := range out {
		dup := false
		for _, k := range kept {
			if abs64(k.Period-c.Period) <= w {
				dup = true
				break
			}
		}
		if !dup {
			kept = append(kept, c)
		}
	}
	return kept
}

func abs64(x int64) int64 {
	if x < 0 {
		return -x
	}
	return x
}
