package ppattern

import (
	"math/rand/v2"
	"testing"
)

func TestDiscoverPeriodsFindsPlantedPeriod(t *testing.T) {
	// Strongly periodic arrivals every 7 units with jitter of ±1.
	rng := rand.New(rand.NewPCG(2, 2))
	var ts []int64
	cur := int64(1)
	for i := 0; i < 300; i++ {
		ts = append(ts, cur)
		cur += 7 + rng.Int64N(3) - 1
	}
	periods := DiscoverPeriods(ts, 1, ts[0], ts[len(ts)-1])
	if len(periods) == 0 {
		t.Fatal("no periods discovered")
	}
	best := periods[0]
	if best.Period < 6 || best.Period > 8 {
		t.Errorf("best period = %d, want ~7 (all: %+v)", best.Period, periods)
	}
	if best.Count < 250 {
		t.Errorf("best period count = %d, want most of 299", best.Count)
	}
}

func TestDiscoverPeriodsRejectsRandomArrivals(t *testing.T) {
	// A Poisson process has no period; the detector may fire on a handful
	// of spurious windows but must not report strong, dominant periods.
	rng := rand.New(rand.NewPCG(5, 5))
	var ts []int64
	cur := int64(1)
	for i := 0; i < 500; i++ {
		ts = append(ts, cur)
		cur += rng.Int64N(20) + 1
	}
	periods := DiscoverPeriods(ts, 1, ts[0], ts[len(ts)-1])
	for _, p := range periods {
		// Allow weak false positives; a planted period in the previous test
		// scores in the hundreds, so anything comparable here is a bug.
		if p.Score > 100 {
			t.Errorf("random arrivals produced strong period %+v", p)
		}
	}
}

func TestDiscoverPeriodsDegenerate(t *testing.T) {
	if got := DiscoverPeriods(nil, 1, 0, 100); got != nil {
		t.Errorf("nil input: %v", got)
	}
	if got := DiscoverPeriods([]int64{1, 2}, 1, 1, 2); got != nil {
		t.Errorf("two points: %v", got)
	}
	if got := DiscoverPeriods([]int64{1, 2, 3}, 1, 3, 1); got != nil {
		t.Errorf("inverted span: %v", got)
	}
}

func TestDiscoverPeriodsMultiple(t *testing.T) {
	// Two interleaved processes: period 5 and period 13. Both should rank.
	var ts []int64
	seen := map[int64]bool{}
	for c := int64(1); c < 3000; c += 5 {
		if !seen[c] {
			ts = append(ts, c)
			seen[c] = true
		}
	}
	for c := int64(3); c < 3000; c += 13 {
		if !seen[c] {
			ts = append(ts, c)
			seen[c] = true
		}
	}
	sortInt64(ts)
	periods := DiscoverPeriods(ts, 0, ts[0], ts[len(ts)-1])
	found5 := false
	for _, p := range periods {
		if p.Period == 5 {
			found5 = true
		}
	}
	if !found5 {
		t.Errorf("period 5 not discovered: %+v", periods)
	}
}

func sortInt64(ts []int64) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j] < ts[j-1]; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
