package ppattern

import (
	"cmp"
	"slices"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

// MineAssociationFirst discovers the same p-patterns as Mine using Ma and
// Hellerstein's *association-first* algorithm: first find all frequent
// itemsets (plain support, Apriori-style), then keep those with enough
// periodic appearances. The recurring-pattern paper chose periodic-first
// for its comparison because it is faster; both are provided here so the
// speed claim itself can be benchmarked (see BenchmarkPPatternVariants).
//
// The two algorithms provably return identical pattern sets: a pattern
// with minSup periodic inter-arrival times occurs in at least minSup+1
// transactions, so the support-based lattice of association-first covers
// every p-pattern, and the final filter is the same.
func MineAssociationFirst(db *tsdb.DB, o Options) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	bound := o.Per + o.Window
	all := db.ItemTSLists()

	// Phase 1: frequent items by support (a p-pattern needs more than
	// minSup occurrences to have minSup periodic gaps).
	type entry struct {
		item tsdb.ItemID
		ts   []int64
	}
	var items []entry
	for id, ts := range all {
		if len(ts) > o.MinSup {
			items = append(items, entry{item: tsdb.ItemID(id), ts: ts})
		}
	}
	slices.SortFunc(items, func(a, b entry) int {
		if len(a.ts) != len(b.ts) {
			return len(b.ts) - len(a.ts)
		}
		return cmp.Compare(a.item, b.item)
	})

	// Phase 2: grow frequent itemsets by support; Phase 3: filter by
	// periodic appearances at emission time.
	var dfs func(prefix []tsdb.ItemID, ts []int64, idx int)
	dfs = func(prefix []tsdb.ItemID, ts []int64, idx int) {
		if res.Truncated {
			return
		}
		if p := core.PeriodicAppearances(ts, bound); p >= o.MinSup {
			sorted := make([]tsdb.ItemID, len(prefix))
			copy(sorted, prefix)
			slices.Sort(sorted)
			res.Patterns = append(res.Patterns, Pattern{Items: sorted, Support: len(ts), Periodic: p})
			if o.Limit > 0 && len(res.Patterns) >= o.Limit {
				res.Truncated = true
				return
			}
		}
		if o.MaxLen > 0 && len(prefix) >= o.MaxLen {
			return
		}
		n := len(prefix)
		for j := idx + 1; j < len(items); j++ {
			ext := core.IntersectTS(nil, ts, items[j].ts)
			if len(ext) <= o.MinSup { // support pruning only
				continue
			}
			dfs(append(prefix[:n:n], items[j].item), ext, j)
		}
	}
	for i := range items {
		dfs([]tsdb.ItemID{items[i].item}, items[i].ts, i)
	}

	slices.SortFunc(res.Patterns, func(a, b Pattern) int {
		return comparePatterns(a.Items, b.Items)
	})
	return res, nil
}
