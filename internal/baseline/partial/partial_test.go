package partial

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/tsdb"
)

func mustDB(t *testing.T, text string) *tsdb.DB {
	t.Helper()
	db, err := tsdb.Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestValidate(t *testing.T) {
	for _, o := range []Options{
		{Period: 0, MinSup: 1},
		{Period: 1, MinSup: 0},
		{Period: 1, MinSup: 1, MaxSlotItems: -1},
	} {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", o)
		}
	}
	if _, err := Mine(&tsdb.DB{Dict: tsdb.NewDictionary()}, Options{}); err == nil {
		t.Error("Mine must reject invalid options")
	}
}

func TestClassicExample(t *testing.T) {
	// A sequence with period 3: position 0 is almost always 'a', position 2
	// alternates; "a**" should be frequent, "a*b" roughly half as frequent.
	var b strings.Builder
	for seg := 0; seg < 8; seg++ {
		base := seg * 3
		b.WriteString(itoa(base+1) + "\ta\n")
		b.WriteString(itoa(base+2) + "\tx\n")
		if seg%2 == 0 {
			b.WriteString(itoa(base+3) + "\tb\n")
		} else {
			b.WriteString(itoa(base+3) + "\tc\n")
		}
	}
	db := mustDB(t, b.String())
	res, err := Mine(db, Options{Period: 3, MinSup: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 8 {
		t.Fatalf("segments = %d, want 8", res.Segments)
	}
	byText := map[string]int{}
	for _, p := range res.Patterns {
		byText[p.Format(db.Dict)] = p.Frequency
	}
	if byText["a**"] != 8 {
		t.Errorf("freq(a**) = %d, want 8 (got %v)", byText["a**"], byText)
	}
	if byText["*x*"] != 8 {
		t.Errorf("freq(*x*) = %d, want 8", byText["*x*"])
	}
	if byText["a*b"] != 4 {
		t.Errorf("freq(a*b) = %d, want 4", byText["a*b"])
	}
	if byText["axb"] != 4 {
		t.Errorf("freq(axb) = %d, want 4", byText["axb"])
	}
	if _, ok := byText["a*c"]; !ok {
		t.Errorf("a*c (freq 4) missing: %v", byText)
	}
}

func itoa(n int) string {
	digits := "0123456789"
	if n == 0 {
		return "0"
	}
	var out []byte
	for n > 0 {
		out = append([]byte{digits[n%10]}, out...)
		n /= 10
	}
	return string(out)
}

// bruteForce counts every candidate pattern over the frequent 1-patterns by
// rescanning all segments directly.
func bruteForce(db *tsdb.DB, o Options) map[string]int {
	L := o.Period
	segments := db.Len() / L
	// Frequent 1-patterns.
	ones := map[slotEntry]int{}
	for seg := 0; seg < segments; seg++ {
		for pos := 0; pos < L; pos++ {
			for _, id := range db.Trans[seg*L+pos].Items {
				ones[slotEntry{pos, id}]++
			}
		}
	}
	var f1 []slotEntry
	for e, c := range ones {
		if c >= o.MinSup {
			f1 = append(f1, e)
		}
	}
	match := func(chosen []slotEntry, seg int) bool {
		for _, e := range chosen {
			tr := db.Trans[seg*L+e.pos]
			found := false
			for _, id := range tr.Items {
				if id == e.item {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	out := map[string]int{}
	var rec func(start int, chosen []slotEntry)
	rec = func(start int, chosen []slotEntry) {
		for i := start; i < len(f1); i++ {
			next := append(chosen[:len(chosen):len(chosen)], f1[i])
			cnt := 0
			for seg := 0; seg < segments; seg++ {
				if match(next, seg) {
					cnt++
				}
			}
			if cnt >= o.MinSup {
				out[key(next, L)] = cnt
				rec(i+1, next)
			}
		}
	}
	rec(0, nil)
	return out
}

func key(entries []slotEntry, L int) string {
	slots := make([][]tsdb.ItemID, L)
	for _, e := range entries {
		slots[e.pos] = append(slots[e.pos], e.item)
	}
	var b strings.Builder
	for _, slot := range slots {
		sort.Slice(slot, func(i, j int) bool { return slot[i] < slot[j] })
		b.WriteByte('|')
		for _, id := range slot {
			b.WriteByte(byte('0' + id))
		}
	}
	return b.String()
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(41, 41))
	for run := 0; run < 25; run++ {
		b := tsdb.NewBuilder()
		nItems := rng.IntN(4) + 2
		nTS := rng.IntN(40) + 12
		for ts := int64(1); ts <= int64(nTS); ts++ {
			for i := 0; i < nItems; i++ {
				if rng.Float64() < 0.4 {
					b.Add(string(rune('a'+i)), ts)
				}
			}
			b.Add("pad", ts) // ensure no empty transactions break positions
		}
		db := b.Build()
		o := Options{Period: rng.IntN(4) + 2, MinSup: rng.IntN(4) + 2}
		res, err := Mine(db, o)
		if err != nil {
			t.Fatal(err)
		}
		got := map[string]int{}
		for _, p := range res.Patterns {
			var entries []slotEntry
			for pos, slot := range p.Slots {
				for _, id := range slot {
					entries = append(entries, slotEntry{pos, id})
				}
			}
			got[key(entries, o.Period)] = p.Frequency
		}
		want := bruteForce(db, o)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("run %d (%+v): got %d patterns, want %d\ngot  %v\nwant %v",
				run, o, len(got), len(want), got, want)
		}
	}
}

func TestMaxSlotItemsCap(t *testing.T) {
	db := mustDB(t, "1\ta b c d\n2\ta b c d\n3\ta b c d\n4\ta b c d\n")
	res, err := Mine(db, Options{Period: 1, MinSup: 2, MaxSlotItems: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if len(p.Slots[0]) > 2 {
			t.Errorf("slot cap violated: %v", p.Slots)
		}
	}
}

func TestNoFullSegments(t *testing.T) {
	db := mustDB(t, "1\ta\n2\ta\n")
	res, err := Mine(db, Options{Period: 5, MinSup: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Segments != 0 || len(res.Patterns) != 0 {
		t.Errorf("short DB: %+v", res)
	}
}
