// Package partial implements segment-wise partial periodic pattern mining
// in symbolic sequences, after Han, Dong and Yin, "Efficient Mining of
// Partial Periodic Patterns in Time Series Database" (ICDE 1999) — the
// classic fixed-period model the recurring-pattern paper's related work
// opens with. It serves as the representative of the "symbolic sequence"
// school the paper contrasts itself against: the sequence is cut into
// fixed-length period segments and a pattern must repeat across enough
// segments of the whole series, with no notion of when it does so.
//
// A pattern has one slot per period position: a set of items the segment
// must contain at that position, or the wildcard '*' (an empty slot). The
// frequency of a pattern is the number of segments matching every non-'*'
// slot; a pattern is frequent iff its frequency reaches minSup. Mining
// follows the paper's two-scan max-subpattern hit set method:
//
//  1. one scan finds F1, the frequent 1-patterns (single slot filled with
//     a single item), which bound the maximal candidate pattern Cmax;
//  2. a second scan inserts, for each segment, its maximal subpattern of
//     Cmax into the hit set with a count;
//  3. the frequency of any candidate subpattern is the sum of hits that
//     contain it, and the frequent patterns are enumerated from F1
//     downward with Apriori pruning.
//
// The original paper stores hits in a max-subpattern tree; this
// implementation uses a hash-keyed hit set, which computes identical
// counts (the tree is a sharing optimization, not a semantic one).
package partial

import (
	"bytes"
	"fmt"
	"slices"
	"strings"

	"github.com/recurpat/rp/internal/tsdb"
)

// Options configures a mining run.
type Options struct {
	// Period is the segment length L. The sequence of transactions is cut
	// into consecutive segments of L transactions (by position, not
	// timestamp — the symbolic-sequence view).
	Period int
	// MinSup is the minimum number of matching segments.
	MinSup int
	// MaxSlotItems bounds how many items a single slot of Cmax may hold
	// (guards against degenerate blowup on dense data; 0 means unlimited).
	MaxSlotItems int
}

// Validate reports the first violated constraint.
func (o Options) Validate() error {
	if o.Period <= 0 {
		return fmt.Errorf("partial: Period must be positive, got %d", o.Period)
	}
	if o.MinSup <= 0 {
		return fmt.Errorf("partial: MinSup must be positive, got %d", o.MinSup)
	}
	if o.MaxSlotItems < 0 {
		return fmt.Errorf("partial: MaxSlotItems must be non-negative, got %d", o.MaxSlotItems)
	}
	return nil
}

// Pattern is a partial periodic pattern: Slots[i] holds the required items
// at period position i (empty slot = '*'). Frequency is the number of
// matching segments.
type Pattern struct {
	Slots     [][]tsdb.ItemID
	Frequency int
}

// Filled reports the number of non-wildcard slot entries (the pattern's
// "L-length" in Han et al.'s terminology: a pattern with k filled entries
// is a k-pattern).
func (p Pattern) Filled() int {
	n := 0
	for _, s := range p.Slots {
		n += len(s)
	}
	return n
}

// Format renders the pattern in the paper's "a*b" style notation, with
// multi-item slots braced: "{ab}*c".
func (p Pattern) Format(dict *tsdb.Dictionary) string {
	var b strings.Builder
	for _, slot := range p.Slots {
		switch len(slot) {
		case 0:
			b.WriteByte('*')
		case 1:
			b.WriteString(dict.Name(slot[0]))
		default:
			b.WriteByte('{')
			for _, id := range slot {
				b.WriteString(dict.Name(id))
			}
			b.WriteByte('}')
		}
	}
	return b.String()
}

// Result is a mining result.
type Result struct {
	Patterns []Pattern
	Segments int // number of full segments scanned
}

// Mine discovers all frequent partial periodic patterns of db under o.
func Mine(db *tsdb.DB, o Options) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	L := o.Period
	segments := db.Len() / L
	res := &Result{Segments: segments}
	if segments == 0 {
		return res, nil
	}

	// Scan 1: count (position, item) 1-patterns.
	ones := make(map[[2]uint64]int)
	for seg := 0; seg < segments; seg++ {
		for pos := 0; pos < L; pos++ {
			tr := db.Trans[seg*L+pos]
			for _, id := range tr.Items {
				ones[[2]uint64{uint64(pos), uint64(id)}]++
			}
		}
	}
	// Cmax: per position, the frequent items (sorted for determinism).
	cmax := make([][]tsdb.ItemID, L)
	for key, cnt := range ones {
		if cnt >= o.MinSup {
			cmax[key[0]] = append(cmax[key[0]], tsdb.ItemID(key[1]))
		}
	}
	totalF1 := 0
	for pos := range cmax {
		slices.Sort(cmax[pos])
		if o.MaxSlotItems > 0 && len(cmax[pos]) > o.MaxSlotItems {
			cmax[pos] = cmax[pos][:o.MaxSlotItems]
		}
		totalF1 += len(cmax[pos])
	}
	if totalF1 == 0 {
		return res, nil
	}

	// Scan 2: hit set of maximal subpatterns of Cmax per segment.
	// Enumerate the F1 entries in a fixed order; a hit is a bitset over
	// them encoded as a string key.
	var f1 []slotEntry
	index := make(map[slotEntry]int)
	for pos, items := range cmax {
		for _, id := range items {
			index[slotEntry{pos, id}] = len(f1)
			f1 = append(f1, slotEntry{pos, id})
		}
	}
	hits := make(map[string]int)
	buf := make([]byte, (len(f1)+7)/8)
	for seg := 0; seg < segments; seg++ {
		for i := range buf {
			buf[i] = 0
		}
		nonEmpty := false
		for pos := 0; pos < L; pos++ {
			tr := db.Trans[seg*L+pos]
			for _, id := range tr.Items {
				if bit, ok := index[slotEntry{pos, id}]; ok {
					buf[bit/8] |= 1 << (bit % 8)
					nonEmpty = true
				}
			}
		}
		if nonEmpty {
			hits[string(buf)]++
		}
	}

	// Enumerate frequent patterns: DFS over F1 entries with Apriori
	// pruning; the frequency of a candidate is the sum of hits whose
	// bitset covers the candidate's bits.
	type hit struct {
		bits  []byte
		count int
	}
	hitList := make([]hit, 0, len(hits))
	for k, c := range hits {
		hitList = append(hitList, hit{bits: []byte(k), count: c})
	}
	slices.SortFunc(hitList, func(a, b hit) int { return bytes.Compare(a.bits, b.bits) })

	freq := func(bits []byte) int {
		total := 0
		for _, h := range hitList {
			covered := true
			for i := range bits {
				if bits[i]&h.bits[i] != bits[i] {
					covered = false
					break
				}
			}
			if covered {
				total += h.count
			}
		}
		return total
	}

	cand := make([]byte, len(buf))
	var dfs func(start int, chosen []int)
	dfs = func(start int, chosen []int) {
		for i := start; i < len(f1); i++ {
			cand[i/8] |= 1 << (i % 8)
			f := freq(cand)
			if f >= o.MinSup {
				res.Patterns = append(res.Patterns, materialize(f1, append(chosen, i), L, f))
				dfs(i+1, append(chosen, i))
			}
			cand[i/8] &^= 1 << (i % 8)
		}
	}
	dfs(0, nil)

	slices.SortFunc(res.Patterns, func(a, b Pattern) int {
		if a.Filled() != b.Filled() {
			return a.Filled() - b.Filled()
		}
		return comparePatternSlots(a.Slots, b.Slots)
	})
	return res, nil
}

// slotEntry is one frequent (position, item) 1-pattern of Cmax.
type slotEntry struct {
	pos  int
	item tsdb.ItemID
}

func materialize(f1 []slotEntry, chosen []int, L, f int) Pattern {
	slots := make([][]tsdb.ItemID, L)
	for _, idx := range chosen {
		e := f1[idx]
		slots[e.pos] = append(slots[e.pos], e.item)
	}
	return Pattern{Slots: slots, Frequency: f}
}

func comparePatternSlots(a, b [][]tsdb.ItemID) int {
	for i := range a {
		av, bv := a[i], b[i]
		n := len(av)
		if len(bv) < n {
			n = len(bv)
		}
		for k := 0; k < n; k++ {
			if av[k] != bv[k] {
				if av[k] < bv[k] {
					return -1
				}
				return 1
			}
		}
		if len(av) != len(bv) {
			if len(av) < len(bv) {
				return -1
			}
			return 1
		}
	}
	return 0
}
