package pfgrowth

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

func mustDB(t *testing.T, text string) *tsdb.DB {
	t.Helper()
	db, err := tsdb.Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func TestValidate(t *testing.T) {
	for _, o := range []Options{
		{MinSup: 0, MaxPer: 1},
		{MinSup: 1, MaxPer: 0},
		{MinSup: 1, MaxPer: 1, MaxLen: -1},
	} {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", o)
		}
	}
	if err := (Options{MinSup: 1, MaxPer: 1}).Validate(); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
	if _, err := Mine(&tsdb.DB{Dict: tsdb.NewDictionary()}, Options{}); err == nil {
		t.Error("Mine must reject invalid options")
	}
}

func TestEmptyDB(t *testing.T) {
	db := &tsdb.DB{Dict: tsdb.NewDictionary()}
	res, err := Mine(db, Options{MinSup: 1, MaxPer: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("empty DB produced %d patterns", len(res.Patterns))
	}
	if res.MaxLen() != 0 {
		t.Errorf("MaxLen of empty result = %d", res.MaxLen())
	}
}

func TestPeriodicFrequentSimple(t *testing.T) {
	// 'a' appears every timestamp: periodicity 1. 'b' appears at 1 and 5:
	// max periodicity 4. 'c' appears once at 1: lead-out gap 4.
	db := mustDB(t, "1\ta b c\n2\ta\n3\ta\n4\ta\n5\ta b\n")
	res, err := Mine(db, Options{MinSup: 2, MaxPer: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 {
		t.Fatalf("got %d patterns, want 1 (just 'a'): %+v", len(res.Patterns), res.Patterns)
	}
	p := res.Patterns[0]
	if p.Support != 5 || p.Periodicity != 1 {
		t.Errorf("pattern a = %+v", p)
	}
	// Relax the period: 'b' (periodicity 4) and 'ab' now qualify.
	res, err = Mine(db, Options{MinSup: 2, MaxPer: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 3 {
		t.Fatalf("got %d patterns, want 3: %+v", len(res.Patterns), res.Patterns)
	}
}

func TestBoundaryGapsCount(t *testing.T) {
	// Item appears densely but only in the second half: the lead-in gap
	// from the database start must disqualify it.
	db := mustDB(t, "1\tx\n2\tx\n10\ty\n11\ty\n12\ty x\n")
	res, err := Mine(db, Options{MinSup: 2, MaxPer: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		for _, id := range p.Items {
			if db.Dict.Name(id) == "y" {
				t.Errorf("y has lead-in gap 9 > 3 but was reported: %+v", p)
			}
		}
	}
}

// bruteForce enumerates all itemsets and filters by the model definition.
func bruteForce(db *tsdb.DB, o Options) []Pattern {
	first, last := db.Span()
	all := db.ItemTSLists()
	var items []tsdb.ItemID
	for id, ts := range all {
		if len(ts) > 0 {
			items = append(items, tsdb.ItemID(id))
		}
	}
	var out []Pattern
	var grow func(start int, prefix []tsdb.ItemID, ts []int64)
	grow = func(start int, prefix []tsdb.ItemID, ts []int64) {
		for i := start; i < len(items); i++ {
			var ext []int64
			if len(prefix) == 0 {
				ext = all[items[i]]
			} else {
				ext = core.IntersectTS(nil, ts, all[items[i]])
			}
			next := append(prefix[:len(prefix):len(prefix)], items[i])
			if len(ext) >= o.MinSup && core.MaxPeriodicity(ext, first, last) <= o.MaxPer {
				if o.MaxLen == 0 || len(next) <= o.MaxLen {
					cp := make([]tsdb.ItemID, len(next))
					copy(cp, next)
					out = append(out, Pattern{Items: cp, Support: len(ext),
						Periodicity: core.MaxPeriodicity(ext, first, last)})
				}
			}
			if len(ext) > 0 {
				grow(i+1, next, ext)
			}
		}
	}
	grow(0, nil, nil)
	sort.Slice(out, func(i, j int) bool { return comparePatterns(out[i].Items, out[j].Items) < 0 })
	return out
}

func TestAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 33))
	for run := 0; run < 40; run++ {
		b := tsdb.NewBuilder()
		nItems := rng.IntN(6) + 2
		nTS := rng.IntN(50) + 10
		for ts := int64(1); ts <= int64(nTS); ts++ {
			for i := 0; i < nItems; i++ {
				if rng.Float64() < 0.4 {
					b.Add(string(rune('a'+i)), ts)
				}
			}
		}
		db := b.Build()
		if db.Len() == 0 {
			continue
		}
		o := Options{MinSup: rng.IntN(4) + 1, MaxPer: rng.Int64N(8) + 1}
		got, err := Mine(db, o)
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(db, o)
		if !reflect.DeepEqual(got.Patterns, want) {
			t.Fatalf("run %d: got %d patterns, want %d\ngot  %+v\nwant %+v",
				run, len(got.Patterns), len(want), got.Patterns, want)
		}
	}
}

func TestMaxLenBound(t *testing.T) {
	db := mustDB(t, "1\ta b c\n2\ta b c\n3\ta b c\n")
	res, err := Mine(db, Options{MinSup: 2, MaxPer: 3, MaxLen: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaxLen() != 2 {
		t.Errorf("MaxLen bound ignored: longest = %d", res.MaxLen())
	}
	full, err := Mine(db, Options{MinSup: 2, MaxPer: 3})
	if err != nil {
		t.Fatal(err)
	}
	if full.MaxLen() != 3 {
		t.Errorf("unbounded longest = %d, want 3", full.MaxLen())
	}
}
