// Package pfgrowth implements periodic-frequent pattern mining with the
// semantics of PF-growth++ (Kiran and Kitsuregawa, DASFAA 2014, building on
// Tanbeer et al., PAKDD 2009): a pattern is periodic-frequent iff its
// support reaches minSup AND its maximum periodicity — the largest
// inter-arrival time, counting the lead-in gap from the start of the
// database and the lead-out gap to its end — is at most the period
// threshold. This is the "complete cyclic repetitions throughout the
// database" model that the recurring-pattern paper compares against in
// Table 8.
//
// Both measures are anti-monotone (a superset's ts-list is a subset, which
// can only lower support and raise the maximum periodicity), so a plain
// depth-first search over intersected ts-lists mines the complete set.
package pfgrowth

import (
	"cmp"
	"fmt"
	"slices"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

// Options holds the two thresholds of the periodic-frequent model.
type Options struct {
	// MinSup is the minimum number of transactions a pattern must appear in.
	MinSup int
	// MaxPer is the maximum allowed periodicity: every inter-arrival time of
	// the pattern, including the database-boundary gaps, must be at most
	// MaxPer.
	MaxPer int64
	// MaxLen, when positive, bounds the pattern length.
	MaxLen int
	// Limit, when positive, stops the search after that many patterns and
	// marks the result truncated (dense databases can make the
	// periodic-frequent set explode combinatorially).
	Limit int
}

// Validate reports the first violated constraint.
func (o Options) Validate() error {
	if o.MinSup <= 0 {
		return fmt.Errorf("pfgrowth: MinSup must be positive, got %d", o.MinSup)
	}
	if o.MaxPer <= 0 {
		return fmt.Errorf("pfgrowth: MaxPer must be positive, got %d", o.MaxPer)
	}
	if o.MaxLen < 0 {
		return fmt.Errorf("pfgrowth: MaxLen must be non-negative, got %d", o.MaxLen)
	}
	return nil
}

// Pattern is a periodic-frequent pattern: items, support, and the pattern's
// maximum periodicity.
type Pattern struct {
	Items       []tsdb.ItemID // sorted ascending
	Support     int
	Periodicity int64
}

// Result is the output of a mining run, canonically ordered by pattern
// length then item IDs.
type Result struct {
	Patterns []Pattern
	// Truncated reports that Options.Limit stopped the search early.
	Truncated bool
}

// MaxLen returns the length of the longest pattern found.
func (r *Result) MaxLen() int {
	max := 0
	for _, p := range r.Patterns {
		if len(p.Items) > max {
			max = len(p.Items)
		}
	}
	return max
}

// Mine discovers all periodic-frequent patterns of db under o.
func Mine(db *tsdb.DB, o Options) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	if db.Len() == 0 {
		return res, nil
	}
	first, last := db.Span()
	all := db.ItemTSLists()

	// Candidate 1-patterns: support and periodicity both within bounds.
	type entry struct {
		item tsdb.ItemID
		ts   []int64
	}
	var items []entry
	for id, ts := range all {
		if len(ts) >= o.MinSup && core.MaxPeriodicity(ts, first, last) <= o.MaxPer {
			items = append(items, entry{item: tsdb.ItemID(id), ts: ts})
		}
	}
	// Support-descending exploration order, ties by item ID.
	slices.SortFunc(items, func(a, b entry) int {
		if len(a.ts) != len(b.ts) {
			return len(b.ts) - len(a.ts)
		}
		return cmp.Compare(a.item, b.item)
	})

	var dfs func(prefix []tsdb.ItemID, ts []int64, idx int)
	dfs = func(prefix []tsdb.ItemID, ts []int64, idx int) {
		if res.Truncated {
			return
		}
		per := core.MaxPeriodicity(ts, first, last)
		sorted := make([]tsdb.ItemID, len(prefix))
		copy(sorted, prefix)
		slices.Sort(sorted)
		res.Patterns = append(res.Patterns, Pattern{Items: sorted, Support: len(ts), Periodicity: per})
		if o.Limit > 0 && len(res.Patterns) >= o.Limit {
			res.Truncated = true
			return
		}
		if o.MaxLen > 0 && len(prefix) >= o.MaxLen {
			return
		}
		n := len(prefix)
		for j := idx + 1; j < len(items); j++ {
			ext := core.IntersectTS(nil, ts, items[j].ts)
			if len(ext) < o.MinSup || core.MaxPeriodicity(ext, first, last) > o.MaxPer {
				continue
			}
			dfs(append(prefix[:n:n], items[j].item), ext, j)
		}
	}
	for i := range items {
		dfs([]tsdb.ItemID{items[i].item}, items[i].ts, i)
	}

	slices.SortFunc(res.Patterns, func(a, b Pattern) int {
		return comparePatterns(a.Items, b.Items)
	})
	return res, nil
}

func comparePatterns(a, b []tsdb.ItemID) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}
