package analysis

import (
	"go/ast"
	"go/types"
)

// ErrcheckPass flags dropped error return values module-wide. A call used
// as a bare statement (or behind go/defer) whose result set includes an
// error must consume it; assigning the error to _ is an explicit,
// accepted opt-out.
//
// Exclusions, to keep the pass signal-dense:
//
//   - fmt.Print/Printf/Println (best-effort stdout diagnostics);
//   - fmt.Fprint* writing to a destination that cannot fail
//     (*strings.Builder, *bytes.Buffer) or that is os.Stdout/os.Stderr;
//   - fmt.Fprint* writing to an error-latching writer — any writer type
//     with an `Err() error` method (e.g. internal/cliio.Writer), whose
//     contract is that the caller checks Err() once at the end;
//   - methods on strings.Builder and bytes.Buffer, whose Write* methods
//     are documented to never return a non-nil error;
//   - deferred Close calls — `defer f.Close()` is idiomatic best-effort
//     cleanup on read paths; write paths must check Close explicitly
//     before returning, which this pass cannot distinguish, so Close is
//     the one method name defer may drop.
func ErrcheckPass() *Pass {
	return &Pass{
		Name:    "errcheck",
		Version: 1,
		Doc:     "flag dropped error return values module-wide",
		Run:     runErrcheck,
	}
}

var errorType = types.Universe.Lookup("error").Type()

func runErrcheck(ctx *Context) {
	info := ctx.Pkg.Info
	check := func(call *ast.CallExpr, deferred bool) {
		if !returnsError(info, call) || excludedCall(info, call, deferred) {
			return
		}
		ctx.Report(call.Pos(), "%s drops its error result; handle it or assign it to _", callName(info, call))
	}
	for _, f := range ctx.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					check(call, false)
				}
			case *ast.GoStmt:
				check(n.Call, false)
			case *ast.DeferStmt:
				check(n.Call, true)
			}
			return true
		})
	}
}

// returnsError reports whether any result of the call is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// excludedCall applies the documented exclusions.
func excludedCall(info *types.Info, call *ast.CallExpr, deferred bool) bool {
	fn := calleeFunc(info, call)
	if fn == nil {
		return false // calls through function values are always checked
	}
	if deferred && fn.Name() == "Close" {
		return true
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil {
		if n := namedOf(recv.Type()); n != nil && infallibleWriters[qualifiedName(n)] {
			return true
		}
		return false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return false
	}
	switch fn.Name() {
	case "Print", "Printf", "Println":
		return true
	case "Fprint", "Fprintf", "Fprintln":
		return len(call.Args) > 0 && infallibleDest(info, call.Args[0])
	}
	return false
}

// infallibleWriters are types whose Write*/error-returning methods are
// documented to always return a nil error.
var infallibleWriters = map[string]bool{
	"strings.Builder": true,
	"bytes.Buffer":    true,
}

// infallibleDest reports whether the fmt.Fprint* destination either cannot
// fail, is a best-effort process stream, or latches its first error behind
// an Err() error method for the caller to check later.
func infallibleDest(info *types.Info, dest ast.Expr) bool {
	// os.Stdout / os.Stderr by identity.
	if sel, ok := dest.(*ast.SelectorExpr); ok {
		if obj, ok := info.Uses[sel.Sel].(*types.Var); ok && obj.Pkg() != nil &&
			obj.Pkg().Path() == "os" && (obj.Name() == "Stdout" || obj.Name() == "Stderr") {
			return true
		}
	}
	tv, ok := info.Types[dest]
	if !ok || tv.Type == nil {
		return false
	}
	t := tv.Type
	if n := namedOf(t); n != nil && infallibleWriters[qualifiedName(n)] {
		return true
	}
	// Error-latching writer: has an Err() error method in its method set.
	ms := types.NewMethodSet(t)
	for i := 0; i < ms.Len(); i++ {
		m := ms.At(i).Obj()
		if m.Name() != "Err" {
			continue
		}
		sig, ok := m.Type().(*types.Signature)
		if ok && sig.Params().Len() == 0 && sig.Results().Len() == 1 &&
			types.Identical(sig.Results().At(0).Type(), errorType) {
			return true
		}
	}
	return false
}

// calleeFunc resolves the called function or method, or nil for calls of
// function-typed values and conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

// callName renders the callee for the diagnostic message.
func callName(info *types.Info, call *ast.CallExpr) string {
	fn := calleeFunc(info, call)
	if fn == nil {
		return "call"
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if n := namedOf(sig.Recv().Type()); n != nil {
			return "(" + qualifiedName(n) + ")." + fn.Name()
		}
		return fn.Name()
	}
	if fn.Pkg() != nil {
		return pathBase(fn.Pkg().Path()) + "." + fn.Name()
	}
	return fn.Name()
}

// namedOf unwraps pointers to reach a named type, or nil.
func namedOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, _ := t.(*types.Named)
	return n
}

// qualifiedName renders a named type as "pkgbase.Name".
func qualifiedName(n *types.Named) string {
	obj := n.Obj()
	if obj.Pkg() == nil {
		return obj.Name()
	}
	return pathBase(obj.Pkg().Path()) + "." + obj.Name()
}
