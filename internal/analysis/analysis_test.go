package analysis

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden files under testdata/golden")

// loadFixture type-checks the rpfix fixture module once and runs the full
// pass suite over it.
func loadFixture(t *testing.T) (*Loader, []Diagnostic) {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("testdata", "src", "rpfix"))
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(dir)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatalf("LoadAll: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("fixture module loaded zero packages")
	}
	return l, Run(l, pkgs, Passes())
}

// TestFixtureGolden checks every pass against its golden findings on the
// rpfix fixture module. Regenerate with:
//
//	go test ./internal/analysis -run TestFixtureGolden -update
func TestFixtureGolden(t *testing.T) {
	l, diags := loadFixture(t)

	byPass := make(map[string][]string)
	for _, d := range diags {
		byPass[d.Pass] = append(byPass[d.Pass], d.String(l.ModDir))
	}

	for _, p := range Passes() {
		t.Run(p.Name, func(t *testing.T) {
			got := strings.Join(byPass[p.Name], "\n")
			if got != "" {
				got += "\n"
			}
			golden := filepath.Join("testdata", "golden", p.Name+".txt")
			if *update {
				if err := os.WriteFile(golden, []byte(got), 0o644); err != nil {
					t.Fatal(err)
				}
				return
			}
			want, err := os.ReadFile(golden)
			if err != nil {
				t.Fatalf("reading golden file (run with -update to create it): %v", err)
			}
			if got != string(want) {
				t.Errorf("findings differ from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
			}
		})
	}
}

// TestFixtureFindsEveryKind spot-checks, independently of the golden
// files, that each seeded violation class in the fixture is reported and
// each deliberately clean construct is not.
func TestFixtureFindsEveryKind(t *testing.T) {
	l, diags := loadFixture(t)
	var all []string
	for _, d := range diags {
		all = append(all, d.String(l.ModDir))
	}
	out := strings.Join(all, "\n")

	mustContain := []string{
		// determinism
		"det.go:14:9: determinism: time.Now",
		"det.go:19:9: determinism: auto-seeded rand.IntN",
		"det.go:31:2: determinism: map iteration order",
		// errcheck
		"cmd/tool/main.go:19:8: errcheck: (bufio.Writer).Flush",
		"cmd/tool/main.go:20:2: errcheck: fmt.Fprintln",
		"cmd/tool/main.go:29:2: errcheck: (os.File).Sync",
		"cmd/tool/main.go:30:5: errcheck: (os.File).Sync",
		// layering
		"badimport.go:7:2: layering: import of cmd/toolkit: cmd/ packages are leaves",
		"badimport.go:8:2: layering: import of internal/bench",
		"fake.go:10:14: layering: baseline packages may only use internal/core's measure API, not core.Mine",
		"ext/badserve.go:6:8: layering: import of internal/serve: only {cmd/rpserved} may import it",
		"bench/badanalysis.go:6:8: layering: import of internal/analysis: only {cmd/rpvet} may import it",
		"ext/badprof.go:6:8: layering: import of internal/obs/prof: only {internal/serve, cmd} may import it",
		"obs/prof/badimport.go:6:8: layering: import of internal/tsdb breaks the layering rules: internal/obs/prof may only import {internal/obs}",
		"serve/badimport.go:7:8: layering: import of internal/baseline/fake breaks the layering rules",
		// concurrency
		"conc.go:16:46: concurrency: goroutine captures loop variable r",
		"conc.go:16:4: concurrency: goroutine shares res",
		"conc.go:16:40: concurrency: goroutine shares parts",
		// sortslice
		"sortslice.go:14:2: sortslice: reflection-based sort.Slice on []int64",
		"sortslice.go:20:2: sortslice: reflection-based sort.SliceStable on []string",
		"sortonly.go:12:2: sortslice: reflection-based sort.Slice on []int64",
		// ctxflow
		"ctxflow.go:23:23: ctxflow: context.Background discards the in-scope context ctx",
		"ctxflow.go:29:23: ctxflow: context.TODO mints a fresh root below the edge layer",
		"ctxflow.go:35:9: ctxflow: call to Search ignores the in-scope context ctx; call SearchContext(ctx, ...)",
		"ctxflow.go:58:9: ctxflow: call to Run ignores the in-scope context ctx; call RunContext(ctx, ...)",
		// goroutine-lifecycle
		"conc.go:15:3: goroutine-lifecycle: goroutine has no visible join or cancel path",
		"lifecycle.go:14:2: goroutine-lifecycle: goroutine has no visible join or cancel path",
		"lifecycle.go:64:7: goroutine-lifecycle: method Count passes its receiver",
		"lifecycle.go:75:14: goroutine-lifecycle: assignment copies",
		"lifecycle.go:82:9: goroutine-lifecycle: range value b copies",
		"lifecycle.go:90:17: goroutine-lifecycle: call passes",
	}
	for _, want := range mustContain {
		if !strings.Contains(out, want) {
			t.Errorf("missing expected finding %q in:\n%s", want, out)
		}
	}

	mustNotContain := []string{
		"bench.go",             // time.Now there carries //rpvet:allow determinism
		"PickSeeded",           // explicitly seeded generator is clean
		"CollectSorted",        // collect-then-sort idiom is clean
		"FanOutClean",          // parameter passing + mutex + WaitGroup is clean
		"core.Recurrence",      // baseline use of the measure API is allowed
		"tsdb.go",              // the substrate package is entirely clean
		"serve/serve.go",       // serve importing core is within its Allow rule
		"cmd/rpserved/main.go", // the one importer the serve restriction permits
		"serve/profok.go",      // serve is inside the obs/prof restriction's allow list
		"obs/prof/prof.go",     // prof importing the obs substrate is its Allow rule
		"cmd/tool/ctx.go",      // the edge layer may mint root contexts
		"ctxflow.go:40",        // Threads passes its ctx along: clean
		"ctxflow.go:18",        // SearchContext's own body is clean
	}
	for _, bad := range mustNotContain {
		for _, line := range all {
			if strings.Contains(line, bad) {
				t.Errorf("unexpected finding mentioning %q: %s", bad, line)
			}
		}
	}

	// Clean lines of the errcheck fixture must stay silent: the deferred
	// Close, the Builder/stderr/stdout writes, and the explicit _ drop.
	for _, line := range all {
		if !strings.Contains(line, "cmd/tool/main.go") {
			continue
		}
		for _, cleanLine := range []string{":17:", ":23:", ":24:", ":25:", ":26:", ":28:"} {
			if strings.Contains(line, cleanLine) {
				t.Errorf("finding on a deliberately clean line: %s", line)
			}
		}
	}

	// The lifecycle fixture's disciplined goroutines (WaitGroup, channel,
	// context, carrier argument) and pointer-based lock handling must stay
	// silent: only the seeded lines may be reported.
	for _, line := range all {
		if !strings.Contains(line, "serve/lifecycle.go") {
			continue
		}
		seeded := false
		for _, want := range []string{":14:", ":64:", ":75:", ":82:", ":90:"} {
			if strings.Contains(line, want) {
				seeded = true
			}
		}
		if !seeded {
			t.Errorf("finding on a deliberately clean lifecycle line: %s", line)
		}
	}

	// The sortslice fixture's struct-element sort and the slices-based
	// variants must stay silent: only the two seeded reflection sorts on
	// basic-typed slices may be reported.
	for _, line := range all {
		if !strings.Contains(line, "sortslice.go") {
			continue
		}
		if !strings.Contains(line, ":14:") && !strings.Contains(line, ":20:") {
			t.Errorf("finding on a deliberately clean sortslice line: %s", line)
		}
	}
}

// TestRepoIsClean runs the full suite over this repository itself: the
// tree must carry zero findings, or check.sh (and CI) would be red.
func TestRepoIsClean(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.LoadAll()
	if err != nil {
		t.Fatal(err)
	}
	diags := Run(l, pkgs, Passes())
	for _, d := range diags {
		t.Errorf("unexpected finding: %s", d.String(root))
	}
}

// TestAllowDirectiveParsing pins the directive grammar.
func TestAllowDirectiveParsing(t *testing.T) {
	cases := []struct {
		text string
		want []string
		ok   bool
	}{
		{"//rpvet:allow determinism", []string{"determinism"}, true},
		{"//rpvet:allow determinism,errcheck trailing reason", []string{"determinism", "errcheck"}, true},
		{"//rpvet:allow", nil, false},
		{"// rpvet:allow determinism", nil, false}, // space breaks the directive
		{"// plain comment", nil, false},
	}
	for _, c := range cases {
		got, ok := parseAllow(c.text)
		if ok != c.ok {
			t.Errorf("parseAllow(%q) ok = %v, want %v", c.text, ok, c.ok)
			continue
		}
		if strings.Join(got, ",") != strings.Join(c.want, ",") {
			t.Errorf("parseAllow(%q) = %v, want %v", c.text, got, c.want)
		}
	}
}
