package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// ConcurrencyPass applies two hygiene rules to `go` statements, aimed at
// the parallel miner and anything future PRs stack on top of it:
//
//  1. a goroutine literal must not capture an enclosing loop variable —
//     even with Go ≥1.22 per-iteration semantics, passing the variable as
//     a parameter keeps the data flow explicit and the code safe to
//     backport or copy into range-free loops;
//  2. a goroutine that touches a shared mining *Result (or container of
//     Results) declared outside the goroutine must do so in a function
//     that visibly synchronizes — some use of the sync package
//     (WaitGroup, Mutex, ...) or a channel operation must be in scope —
//     otherwise the write is a data race waiting for -race to find it.
func ConcurrencyPass() *Pass {
	return &Pass{
		Name:    "concurrency",
		Version: 1,
		Doc:     "flag goroutines capturing loop variables or sharing Result state without visible synchronization",
		Run:     runConcurrency,
	}
}

func runConcurrency(ctx *Context) {
	info := ctx.Pkg.Info
	for _, f := range ctx.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			gost, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			lit, ok := gost.Call.Fun.(*ast.FuncLit)
			if !ok {
				return true
			}
			loopVars := enclosingLoopVars(info, stack)
			body := enclosingFuncBody(stack)
			synced := body != nil && usesSynchronization(info, body)
			modPath := ctx.Loader.ModPath
			sharedReported := make(map[*types.Var]bool)
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				id, ok := m.(*ast.Ident)
				if !ok {
					return true
				}
				obj, ok := info.Uses[id].(*types.Var)
				if !ok {
					return true
				}
				if loopVars[obj] {
					ctx.Report(id.Pos(), "goroutine captures loop variable %s; pass it as an argument to the goroutine's function instead", obj.Name())
					loopVars[obj] = false // one finding per variable per goroutine
				}
				if !synced && !sharedReported[obj] && obj.Pos() < lit.Pos() && touchesResult(modPath, obj.Type()) {
					sharedReported[obj] = true
					ctx.Report(id.Pos(), "goroutine shares %s (%s) without visible synchronization; guard it with a sync.Mutex/WaitGroup or a channel", obj.Name(), obj.Type())
				}
				return true
			})
			return true
		})
	}
}

// enclosingLoopVars collects the variables declared by the for/range
// statements surrounding the current node.
func enclosingLoopVars(info *types.Info, stack []ast.Node) map[*types.Var]bool {
	vars := make(map[*types.Var]bool)
	add := func(e ast.Expr) {
		if id, ok := e.(*ast.Ident); ok {
			if v, ok := info.Defs[id].(*types.Var); ok {
				vars[v] = true
			}
		}
	}
	for _, n := range stack {
		switch n := n.(type) {
		case *ast.RangeStmt:
			add(n.Key)
			add(n.Value)
		case *ast.ForStmt:
			if assign, ok := n.Init.(*ast.AssignStmt); ok {
				for _, lhs := range assign.Lhs {
					add(lhs)
				}
			}
		}
	}
	return vars
}

// usesSynchronization reports whether the function body references the
// sync or sync/atomic packages, or performs a channel send/receive —
// the visible evidence that shared state is coordinated.
func usesSynchronization(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.Ident:
			if obj := info.Uses[n]; obj != nil && obj.Pkg() != nil {
				if p := obj.Pkg().Path(); p == "sync" || p == "sync/atomic" {
					found = true
				}
			}
		case *ast.SendStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		}
		return !found
	})
	return found
}

// touchesResult reports whether t is, points to, or contains mining
// Result values of the module under analysis — the shared accumulator the
// parallel miner must merge under synchronization.
func touchesResult(modPath string, t types.Type) bool {
	switch t := t.(type) {
	case *types.Named:
		obj := t.Obj()
		return obj.Name() == "Result" && obj.Pkg() != nil &&
			(obj.Pkg().Path() == modPath || strings.HasPrefix(obj.Pkg().Path(), modPath+"/"))
	case *types.Pointer:
		return touchesResult(modPath, t.Elem())
	case *types.Slice:
		return touchesResult(modPath, t.Elem())
	case *types.Array:
		return touchesResult(modPath, t.Elem())
	case *types.Map:
		return touchesResult(modPath, t.Elem())
	}
	return false
}
