package analysis

import (
	"go/ast"
	"go/types"
)

// SortSlicePass flags reflection-based sort.Slice calls whose first argument
// is a slice of a basic ordered type (integers, floats, strings). Those sites
// pay an interface-boxing and reflect.Swapper cost on every call for nothing:
// slices.Sort covers the natural ascending order and slices.SortFunc covers
// every other comparator, both monomorphic and allocation-free. The mining
// hot path was converted wholesale (see internal/core/merge.go); this pass
// keeps the conversion from regressing. Struct-element sorts are left alone —
// there sort.Slice and slices.SortFunc are an idiom choice, not a perf bug.
func SortSlicePass() *Pass {
	return &Pass{
		Name: "sortslice",
		Doc:  "forbid reflection-based sort.Slice on slices of basic ordered types in internal/ and cmd/",
		Run:  runSortSlice,
	}
}

func runSortSlice(ctx *Context) {
	if !determinismScope(ctx.Pkg.Rel) {
		return
	}
	info := ctx.Pkg.Info
	for _, f := range ctx.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
				return true
			}
			if name := fn.Name(); name != "Slice" && name != "SliceStable" {
				return true
			}
			tv, ok := info.Types[call.Args[0]]
			if !ok {
				return true
			}
			sl, ok := tv.Type.Underlying().(*types.Slice)
			if !ok {
				return true
			}
			elem, ok := sl.Elem().Underlying().(*types.Basic)
			if !ok || elem.Info()&types.IsOrdered == 0 {
				return true
			}
			ctx.Report(call.Pos(), "reflection-based sort.%s on []%s; use slices.Sort for ascending order or slices.SortFunc otherwise", fn.Name(), elem.Name())
			return true
		})
	}
}
