package analysis

import (
	"bytes"
	"go/ast"
	"go/format"
	"go/token"
	"go/types"
	"strconv"
)

// SortSlicePass flags reflection-based sort.Slice calls whose first argument
// is a slice of a basic ordered type (integers, floats, strings). Those sites
// pay an interface-boxing and reflect.Swapper cost on every call for nothing:
// slices.Sort covers the natural ascending order and slices.SortFunc covers
// every other comparator, both monomorphic and allocation-free. The mining
// hot path was converted wholesale (see internal/core/merge.go); this pass
// keeps the conversion from regressing. Struct-element sorts are left alone —
// there sort.Slice and slices.SortFunc are an idiom choice, not a perf bug.
//
// When the comparator is the canonical ascending form
// `func(i, j int) bool { return xs[i] < xs[j] }`, the finding carries a
// suggested fix rewriting the call to `slices.Sort(xs)`, adding the
// "slices" import if missing and dropping the "sort" import when the fix
// removes its last use in the file. `rpvet -fix` applies it.
func SortSlicePass() *Pass {
	return &Pass{
		Name:    "sortslice",
		Version: 2,
		Doc:     "forbid reflection-based sort.Slice on slices of basic ordered types in internal/ and cmd/",
		Run:     runSortSlice,
	}
}

func runSortSlice(ctx *Context) {
	if !determinismScope(ctx.Pkg.Rel) {
		return
	}
	info := ctx.Pkg.Info
	for _, f := range ctx.Pkg.Files {
		type site struct {
			call *ast.CallExpr
			fn   *types.Func
			elem *types.Basic
			asc  bool // canonical ascending comparator, fixable
		}
		var sites []site
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 2 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
				return true
			}
			if name := fn.Name(); name != "Slice" && name != "SliceStable" {
				return true
			}
			tv, ok := info.Types[call.Args[0]]
			if !ok {
				return true
			}
			sl, ok := tv.Type.Underlying().(*types.Slice)
			if !ok {
				return true
			}
			elem, ok := sl.Elem().Underlying().(*types.Basic)
			if !ok || elem.Info()&types.IsOrdered == 0 {
				return true
			}
			sites = append(sites, site{
				call: call,
				fn:   fn,
				elem: elem,
				asc:  fn.Name() == "Slice" && isAscendingComparator(ctx.Loader.Fset, call),
			})
			return true
		})
		if len(sites) == 0 {
			continue
		}

		fixable := 0
		for _, s := range sites {
			if s.asc {
				fixable++
			}
		}
		// Import surgery shared by every fix in the file: add "slices" if
		// missing, and drop "sort" when the fixes remove its last use.
		// Identical edits across fixes are deduplicated by the fix engine.
		var importEdits []TextEdit
		if fixable > 0 {
			removeSort := fixable == countPackageQualifiers(info, f, "sort")
			importEdits = sortImportEdits(ctx, f, removeSort)
		}
		for _, s := range sites {
			if !s.asc {
				ctx.Report(s.call.Pos(), "reflection-based sort.%s on []%s; use slices.Sort for ascending order or slices.SortFunc otherwise", s.fn.Name(), s.elem.Name())
				continue
			}
			edits := []TextEdit{ctx.Edit(s.call.Pos(), s.call.End(), "slices.Sort("+renderNode(ctx.Loader.Fset, s.call.Args[0])+")")}
			edits = append(edits, importEdits...)
			fix := []SuggestedFix{{Message: "replace with the monomorphic slices.Sort", Edits: edits}}
			ctx.ReportFix(s.call.Pos(), fix, "reflection-based sort.%s on []%s; use slices.Sort for ascending order or slices.SortFunc otherwise", s.fn.Name(), s.elem.Name())
		}
	}
}

// isAscendingComparator recognizes the canonical natural-order comparator:
// the second argument is `func(i, j int) bool { return xs[i] < xs[j] }`
// where xs prints identically to the sorted slice expression.
func isAscendingComparator(fset *token.FileSet, call *ast.CallExpr) bool {
	lit, ok := call.Args[1].(*ast.FuncLit)
	if !ok || lit.Type.Params == nil {
		return false
	}
	var params []string
	for _, field := range lit.Type.Params.List {
		for _, name := range field.Names {
			params = append(params, name.Name)
		}
	}
	if len(params) != 2 {
		return false
	}
	if len(lit.Body.List) != 1 {
		return false
	}
	ret, ok := lit.Body.List[0].(*ast.ReturnStmt)
	if !ok || len(ret.Results) != 1 {
		return false
	}
	bin, ok := ret.Results[0].(*ast.BinaryExpr)
	if !ok || bin.Op != token.LSS {
		return false
	}
	x, ok := bin.X.(*ast.IndexExpr)
	if !ok {
		return false
	}
	y, ok := bin.Y.(*ast.IndexExpr)
	if !ok {
		return false
	}
	xi, ok := x.Index.(*ast.Ident)
	if !ok || xi.Name != params[0] {
		return false
	}
	yj, ok := y.Index.(*ast.Ident)
	if !ok || yj.Name != params[1] {
		return false
	}
	slice := renderNode(fset, call.Args[0])
	return renderNode(fset, x.X) == slice && renderNode(fset, y.X) == slice
}

// renderNode prints an AST node back to source text.
func renderNode(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := format.Node(&buf, fset, n); err != nil {
		return ""
	}
	return buf.String()
}

// countPackageQualifiers counts identifier uses in f that name the given
// package (each `sort.X` expression contributes exactly one).
func countPackageQualifiers(info *types.Info, f *ast.File, pkgPath string) int {
	count := 0
	ast.Inspect(f, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		if pn, ok := info.Uses[id].(*types.PkgName); ok && pn.Imported().Path() == pkgPath {
			count++
		}
		return true
	})
	return count
}

// sortImportEdits builds the import-block edits shared by every
// sortslice fix in f: insert `"slices"` when the file does not import it
// yet, and delete the `"sort"` spec when removeSort says its last use is
// going away. The edits lean on the fix engine's final go/format run to
// restore canonical import ordering and spacing.
func sortImportEdits(ctx *Context, f *ast.File, removeSort bool) []TextEdit {
	var edits []TextEdit
	hasSlices := false
	for _, imp := range f.Imports {
		if path, err := strconv.Unquote(imp.Path.Value); err == nil && path == "slices" {
			hasSlices = true
		}
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if !hasSlices {
			if gd.Lparen.IsValid() {
				edits = append(edits, ctx.Edit(gd.Lparen+1, gd.Lparen+1, "\n\t\"slices\""))
			} else {
				edits = append(edits, ctx.Edit(gd.Pos(), gd.Pos(), "import \"slices\"\n"))
			}
			hasSlices = true
		}
		if removeSort {
			for i, spec := range gd.Specs {
				imp, ok := spec.(*ast.ImportSpec)
				if !ok {
					continue
				}
				if path, err := strconv.Unquote(imp.Path.Value); err != nil || path != "sort" {
					continue
				}
				if !gd.Lparen.IsValid() {
					// `import "sort"`: drop the whole declaration.
					edits = append(edits, ctx.Edit(gd.Pos(), gd.End(), ""))
				} else if i > 0 {
					edits = append(edits, ctx.Edit(gd.Specs[i-1].End(), imp.End(), ""))
				} else {
					edits = append(edits, ctx.Edit(gd.Lparen+1, imp.End(), ""))
				}
			}
		}
		break // only the first import declaration needs surgery
	}
	return edits
}
