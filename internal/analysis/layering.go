package analysis

import (
	"go/ast"
	"go/types"
	"slices"
	"strconv"
	"strings"
)

// LayeringPass enforces the module's import DAG on module-internal
// imports (rules are expressed on module-relative paths, so they apply
// unchanged to test fixture modules):
//
//	internal/tsdb      → nothing internal (the shared substrate)
//	internal/obs       → nothing internal (the observability substrate)
//	internal/obs/prof  → internal/obs (profiling rides on the substrate)
//	internal/core      → internal/tsdb, internal/obs
//	internal/gen       → internal/tsdb
//	internal/seq       → internal/tsdb
//	internal/baseline  → internal/tsdb, internal/core (measure API only)
//	internal/ext       → internal/core, internal/tsdb, internal/seq
//	internal/analysis  → nothing internal (stdlib-only by construction)
//	internal/cliio     → internal/obs
//	internal/api       → internal/core, internal/tsdb, internal/obs (the wire schema: no transport, no miner internals; obs for the trace-context payload types)
//	internal/shard     → internal/api, internal/core, internal/tsdb, internal/obs
//	internal/serve     → internal/api, internal/shard, internal/core, internal/tsdb, internal/cliio, internal/obs
//	internal/bench     → anything internal except cmd/
//	rp (module root)   → internal/core, internal/tsdb, internal/obs
//	examples/, cmd/    → unconstrained (leaves of the DAG)
//
// Some packages are additionally restricted on the importer side:
// internal/serve is the HTTP service's implementation and only
// cmd/rpserved may import it, so the library surface other code builds on
// stays the public rp package (and the service can change shape freely);
// internal/analysis is the vet tool's framework and only cmd/rpvet may
// import it, so pass plumbing never leaks into the miner;
// internal/obs/prof is continuous-profiling service plumbing and only the
// serve layer and the cmds may import it, so the miner and the library
// packages never grow a dependency on process-wide profiler state.
//
// On top of the import edges, internal/baseline packages may reference
// only internal/core's shared measure API (Recurrence, Erec, ...): the
// baselines exist to be compared against RP-growth, so reaching into the
// miner itself would make the comparison circular.
func LayeringPass() *Pass {
	return &Pass{
		Name:    "layering",
		Version: 4,
		Doc:     "enforce the internal import DAG and the baseline/core measure-API boundary",
		Run:     runLayering,
	}
}

// layerRule gives the module-internal import allowance for packages whose
// relative path matches Prefix. The longest matching prefix wins. A nil
// Allow means unconstrained; an empty Allow means no internal imports.
type layerRule struct {
	Prefix string
	Allow  []string
}

var layerRules = []layerRule{
	{Prefix: "internal/tsdb", Allow: []string{}},
	{Prefix: "internal/obs", Allow: []string{}},
	{Prefix: "internal/obs/prof", Allow: []string{"internal/obs"}},
	{Prefix: "internal/core", Allow: []string{"internal/tsdb", "internal/obs"}},
	{Prefix: "internal/gen", Allow: []string{"internal/tsdb"}},
	{Prefix: "internal/seq", Allow: []string{"internal/tsdb"}},
	{Prefix: "internal/baseline", Allow: []string{"internal/tsdb", "internal/core"}},
	{Prefix: "internal/ext", Allow: []string{"internal/core", "internal/tsdb", "internal/seq"}},
	{Prefix: "internal/analysis", Allow: []string{}},
	{Prefix: "internal/cliio", Allow: []string{"internal/obs"}},
	{Prefix: "internal/api", Allow: []string{"internal/core", "internal/tsdb", "internal/obs"}},
	{Prefix: "internal/shard", Allow: []string{"internal/api", "internal/core", "internal/tsdb", "internal/obs"}},
	{Prefix: "internal/serve", Allow: []string{"internal/api", "internal/shard", "internal/core", "internal/tsdb", "internal/cliio", "internal/obs"}},
	{Prefix: "internal/bench", Allow: []string{"internal"}},
	{Prefix: "", Allow: []string{"internal/core", "internal/tsdb", "internal/obs"}}, // module root
	{Prefix: "examples", Allow: nil},
	{Prefix: "cmd", Allow: nil},
}

// importRestriction closes a package to all importers except the listed
// prefixes (the package's own subpackages are always allowed). It is the
// converse of layerRule: instead of saying what a package may import, it
// says who may import the package. Checked on the importer side, on top
// of — not instead of — the importer's own Allow rule.
type importRestriction struct {
	Prefix  string   // the package being protected
	Allowed []string // importer prefixes that may use it
	Reason  string   // appended to the finding, explains the closure
}

var importRestrictions = []importRestriction{
	{Prefix: "internal/serve", Allowed: []string{"cmd/rpserved"},
		Reason: "everything else goes through the public rp package"},
	{Prefix: "internal/analysis", Allowed: []string{"cmd/rpvet"},
		Reason: "the vet framework is tooling, not a library for the miner"},
	{Prefix: "internal/obs/prof", Allowed: []string{"internal/serve", "cmd"},
		Reason: "continuous profiling is service plumbing, not a library for the miner"},
}

// coreMeasureAPI is the part of internal/core the baselines may use: the
// shared recurrence measures and their types, nothing of the miner.
var coreMeasureAPI = map[string]bool{
	"Recurrence":          true,
	"Erec":                true,
	"PeriodicAppearances": true,
	"MaxPeriodicity":      true,
	"IntersectTS":         true,
	"Interval":            true,
	"MinPSFromPercent":    true,
}

func runLayering(ctx *Context) {
	rule := matchRule(ctx.Pkg.Rel)
	modPath := ctx.Loader.ModPath
	for _, f := range ctx.Pkg.Files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path != modPath && !strings.HasPrefix(path, modPath+"/") {
				continue // stdlib (or external) imports are not layering's business
			}
			rel := strings.TrimPrefix(strings.TrimPrefix(path, modPath), "/")
			if strings.HasPrefix(rel, "cmd/") || rel == "cmd" {
				ctx.Report(imp.Pos(), "import of %s: cmd/ packages are leaves of the DAG and must not be imported", rel)
				continue
			}
			if r, restricted := matchRestriction(rel); restricted && !importerAllowed(ctx.Pkg.Rel, r) {
				ctx.Report(imp.Pos(), "import of %s: only {%s} may import it (%s)", rel, strings.Join(r.Allowed, ", "), r.Reason)
				continue
			}
			if rule.Allow == nil {
				continue
			}
			if !allowedImport(rule.Allow, rel) {
				ctx.Report(imp.Pos(), "import of %s breaks the layering rules: %s may only import {%s}", rel, describeRel(ctx.Pkg.Rel), strings.Join(describeAllows(rule.Allow), ", "))
			}
		}
	}
	if strings.HasPrefix(ctx.Pkg.Rel, "internal/baseline") {
		checkBaselineUses(ctx)
	}
}

// matchRestriction returns the restriction protecting rel, if any.
func matchRestriction(rel string) (importRestriction, bool) {
	for _, r := range importRestrictions {
		if rel == r.Prefix || strings.HasPrefix(rel, r.Prefix+"/") {
			return r, true
		}
	}
	return importRestriction{}, false
}

// importerAllowed reports whether a package may import into restriction r:
// the protected package's own subtree always may, plus the listed prefixes.
func importerAllowed(importer string, r importRestriction) bool {
	if importer == r.Prefix || strings.HasPrefix(importer, r.Prefix+"/") {
		return true
	}
	for _, a := range r.Allowed {
		if importer == a || strings.HasPrefix(importer, a+"/") {
			return true
		}
	}
	return false
}

// matchRule returns the longest-prefix rule for a relative package path.
func matchRule(rel string) layerRule {
	best := layerRule{Allow: nil}
	bestLen := -1
	for _, r := range layerRules {
		if r.Prefix == "" {
			if rel == "" && bestLen < 0 {
				best, bestLen = r, 0
			}
			continue
		}
		if (rel == r.Prefix || strings.HasPrefix(rel, r.Prefix+"/")) && len(r.Prefix) > bestLen {
			best, bestLen = r, len(r.Prefix)
		}
	}
	return best
}

func allowedImport(allow []string, rel string) bool {
	for _, a := range allow {
		if a == "" {
			if rel == "" {
				return true
			}
			continue
		}
		if rel == a || strings.HasPrefix(rel, a+"/") {
			return true
		}
	}
	return false
}

func describeRel(rel string) string {
	if rel == "" {
		return "the module root"
	}
	return rel
}

func describeAllows(allow []string) []string {
	if len(allow) == 0 {
		return []string{"stdlib only"}
	}
	out := make([]string, len(allow))
	for i, a := range allow {
		out[i] = describeRel(a)
	}
	return out
}

// checkBaselineUses flags references from a baseline package into
// internal/core that go beyond the shared measure API.
func checkBaselineUses(ctx *Context) {
	corePath := ctx.Loader.ModPath + "/internal/core"
	type finding struct {
		pos  ast.Node
		name string
	}
	seen := map[string]bool{}
	var findings []finding
	for _, f := range ctx.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			obj := ctx.Pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != corePath {
				return true
			}
			if _, isPkgName := obj.(*types.PkgName); isPkgName {
				return true
			}
			if coreMeasureAPI[obj.Name()] || seen[obj.Name()] {
				return true
			}
			seen[obj.Name()] = true
			findings = append(findings, finding{pos: id, name: obj.Name()})
			return true
		})
	}
	slices.SortFunc(findings, func(a, b finding) int { return int(a.pos.Pos()) - int(b.pos.Pos()) })
	for _, fd := range findings {
		ctx.Report(fd.pos.Pos(), "baseline packages may only use internal/core's measure API, not core.%s (the comparison must not lean on the miner under test)", fd.name)
	}
}
