package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// DeterminismPass guards the repo's canonical-output invariant (DESIGN
// §"Mine … result is canonically ordered"): mining, baselines and dataset
// generation must be bit-reproducible run to run. Inside internal/ and
// cmd/ packages it forbids
//
//   - time.Now — wall-clock reads make output time-dependent; benchmark
//     timing code opts out per line with //rpvet:allow determinism;
//   - the auto-seeded top-level functions of math/rand and math/rand/v2
//     (rand.IntN, rand.Float64, ...) — generators must thread an
//     explicitly seeded *rand.Rand so the same seed gives the same data;
//   - ranging over a map without a sort afterwards in the same function —
//     map iteration order would leak into results; collect the keys or
//     values and sort them (or allowlist aggregation loops whose output
//     is genuinely order-independent).
func DeterminismPass() *Pass {
	return &Pass{
		Name:    "determinism",
		Version: 1,
		Doc:     "forbid time.Now, auto-seeded math/rand and unsorted map iteration in internal/ and cmd/",
		Run:     runDeterminism,
	}
}

// determinismScope reports whether the pass applies to a package.
func determinismScope(rel string) bool {
	return strings.HasPrefix(rel, "internal/") || rel == "internal" ||
		strings.HasPrefix(rel, "cmd/") || rel == "cmd"
}

// randConstructors are the math/rand{,/v2} top-level functions that build
// explicitly seeded generators rather than drawing from the global one.
var randConstructors = map[string]bool{
	"New": true, "NewSource": true, "NewPCG": true, "NewChaCha8": true,
	"NewZipf": true,
}

func runDeterminism(ctx *Context) {
	if !determinismScope(ctx.Pkg.Rel) {
		return
	}
	info := ctx.Pkg.Info
	for _, f := range ctx.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.SelectorExpr:
				obj := info.Uses[n.Sel]
				fn, ok := obj.(*types.Func)
				if !ok || fn.Pkg() == nil {
					return true
				}
				// Only package-level functions: methods on *rand.Rand or
				// on time.Time values are fine.
				if fn.Type().(*types.Signature).Recv() != nil {
					return true
				}
				switch fn.Pkg().Path() {
				case "time":
					if fn.Name() == "Now" {
						ctx.Report(n.Pos(), "time.Now makes output wall-clock dependent; inject the timestamp or add //rpvet:allow determinism on timing code")
					}
				case "math/rand", "math/rand/v2":
					if !randConstructors[fn.Name()] {
						ctx.Report(n.Pos(), "auto-seeded %s.%s is nondeterministic; draw from an explicitly seeded *rand.Rand", fn.Pkg().Name(), fn.Name())
					}
				}
			case *ast.RangeStmt:
				tv, ok := info.Types[n.X]
				if !ok {
					return true
				}
				if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
					return true
				}
				body := enclosingFuncBody(stack)
				if body == nil || sortedAfter(info, body, n) {
					return true
				}
				ctx.Report(n.Pos(), "map iteration order is random; sort what this loop produces (no sort call follows in this function) or add //rpvet:allow determinism")
			}
			return true
		})
	}
}

// sortedAfter reports whether a call into package sort or slices appears
// lexically after the range statement inside the same function body — the
// collect-then-sort idiom that makes a map iteration deterministic.
func sortedAfter(info *types.Info, body *ast.BlockStmt, rng *ast.RangeStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found || n == nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		if p := fn.Pkg().Path(); p == "sort" || p == "slices" {
			found = true
			return false
		}
		return true
	})
	return found
}

func pathBase(p string) string {
	if i := strings.LastIndexByte(p, '/'); i >= 0 {
		return p[i+1:]
	}
	return p
}
