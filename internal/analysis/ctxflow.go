package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CtxflowPass guards the context plumbing PR 3 threaded through the miner
// and the serving layer: cancellation must flow from the edge (cmd/ mains,
// HTTP handlers) down to the subtree tasks without being silently replaced
// by a fresh root context. Three rules, scoped to internal/core,
// internal/serve and cmd/:
//
//  1. inside a function that has a context.Context parameter, calling
//     context.Background() or context.TODO() discards the caller's
//     cancellation — thread the parameter instead (the pass attaches a
//     suggested fix doing exactly that);
//  2. in internal/core and internal/serve — the layers below the edge —
//     context.Background()/TODO() must not appear at all: roots are minted
//     at the edge. Compatibility wrappers (rp.Mine calling rp.MineContext)
//     justify themselves with //rpvet:allow ctxflow and a written reason;
//  3. inside a function that has a context.Context parameter, calling a
//     sibling X when a context-aware XContext exists in the same scope
//     drops cancellation one call down — call XContext(ctx, ...) (also
//     offered as a suggested fix).
//
// cmd/ packages are the edge layer: they may mint root contexts in
// functions that have no context parameter (rule 2 does not apply there),
// but rules 1 and 3 still hold once a ctx is in scope.
func CtxflowPass() *Pass {
	return &Pass{
		Name:    "ctxflow",
		Version: 1,
		Doc:     "require in-scope contexts to be threaded; forbid fresh root contexts below the edge layer",
		Run:     runCtxflow,
	}
}

// ctxflowScope reports whether the pass applies to a package.
func ctxflowScope(rel string) bool {
	return rel == "internal/core" || strings.HasPrefix(rel, "internal/core/") ||
		rel == "internal/serve" || strings.HasPrefix(rel, "internal/serve/") ||
		rel == "cmd" || strings.HasPrefix(rel, "cmd/")
}

// ctxflowBelowEdge reports whether rel is below the edge layer, where
// minting root contexts is forbidden outright (rule 2).
func ctxflowBelowEdge(rel string) bool {
	return rel == "internal/core" || strings.HasPrefix(rel, "internal/core/") ||
		rel == "internal/serve" || strings.HasPrefix(rel, "internal/serve/")
}

func runCtxflow(ctx *Context) {
	if !ctxflowScope(ctx.Pkg.Rel) {
		return
	}
	info := ctx.Pkg.Info
	for _, f := range ctx.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			ctxParam := enclosingCtxParam(info, stack)

			// Rules 1 and 2: a fresh root context.
			if name, isRoot := rootContextCall(info, call); isRoot {
				switch {
				case ctxParam != "":
					var fixes []SuggestedFix
					fixes = append(fixes, SuggestedFix{
						Message: "thread the in-scope context " + ctxParam,
						Edits:   []TextEdit{ctx.Edit(call.Pos(), call.End(), ctxParam)},
					})
					ctx.ReportFix(call.Pos(), fixes, "context.%s discards the in-scope context %s; thread it (or derive from it) instead", name, ctxParam)
				case ctxflowBelowEdge(ctx.Pkg.Rel):
					ctx.Report(call.Pos(), "context.%s mints a fresh root below the edge layer; accept a ctx from the caller (or justify with //rpvet:allow ctxflow)", name)
				}
				return true
			}

			// Rule 3: ignoring a context-aware sibling while a ctx is in
			// scope. Skip when this very call already receives a context
			// argument (then it is the context-aware variant itself).
			if ctxParam == "" || callTakesContext(info, call) {
				return true
			}
			fn := calleeFunc(info, call)
			if fn == nil {
				return true
			}
			if sibling := contextSibling(fn); sibling != nil {
				fixes := []SuggestedFix{threadSiblingFix(ctx, call, fn, ctxParam)}
				ctx.ReportFix(call.Pos(), fixes, "call to %s ignores the in-scope context %s; call %s(%s, ...) so cancellation keeps flowing", fn.Name(), ctxParam, sibling.Name(), ctxParam)
			}
			return true
		})
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}

// enclosingCtxParam returns the name of the innermost enclosing function's
// context.Context parameter, or "" when there is none (or it is blank).
func enclosingCtxParam(info *types.Info, stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			ft = fn.Type
		case *ast.FuncLit:
			ft = fn.Type
		default:
			continue
		}
		if ft.Params != nil {
			for _, field := range ft.Params.List {
				tv, ok := info.Types[field.Type]
				if !ok || !isContextType(tv.Type) {
					continue
				}
				for _, name := range field.Names {
					if name.Name != "_" {
						return name.Name
					}
				}
			}
		}
		return "" // innermost function wins; do not look further out
	}
	return ""
}

// rootContextCall reports whether call is context.Background() or
// context.TODO(), returning the function name.
func rootContextCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "context" {
		return "", false
	}
	if name := fn.Name(); name == "Background" || name == "TODO" {
		return name, true
	}
	return "", false
}

// callTakesContext reports whether the callee's signature accepts a
// context.Context parameter.
func callTakesContext(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	if !ok || tv.Type == nil {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok {
		return false
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if isContextType(sig.Params().At(i).Type()) {
			return true
		}
	}
	return false
}

// contextSibling finds a context-aware variant of fn: a function or method
// named fn.Name()+"Context" in the same scope (package scope for
// functions, the receiver's method set for methods) whose first parameter
// is a context.Context.
func contextSibling(fn *types.Func) *types.Func {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return nil
	}
	want := fn.Name() + "Context"
	if recv := sig.Recv(); recv != nil {
		n := namedOf(recv.Type())
		if n == nil {
			return nil
		}
		for i := 0; i < n.NumMethods(); i++ {
			if m := n.Method(i); m.Name() == want && firstParamIsContext(m) {
				return m
			}
		}
		return nil
	}
	if fn.Pkg() == nil {
		return nil
	}
	sib, ok := fn.Pkg().Scope().Lookup(want).(*types.Func)
	if ok && firstParamIsContext(sib) {
		return sib
	}
	return nil
}

func firstParamIsContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

// threadSiblingFix rewrites `X(args)` into `XContext(ctx, args)`: one edit
// renames the callee, one inserts the context as the first argument.
func threadSiblingFix(ctx *Context, call *ast.CallExpr, fn *types.Func, ctxParam string) SuggestedFix {
	var namePos, nameEnd token.Pos
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		namePos, nameEnd = fun.Pos(), fun.End()
	case *ast.SelectorExpr:
		namePos, nameEnd = fun.Sel.Pos(), fun.Sel.End()
	default:
		namePos, nameEnd = call.Fun.Pos(), call.Fun.End()
	}
	arg := ctxParam
	if len(call.Args) > 0 {
		arg += ", "
	}
	return SuggestedFix{
		Message: "call the context-aware sibling " + fn.Name() + "Context",
		Edits: []TextEdit{
			ctx.Edit(namePos, nameEnd, fn.Name()+"Context"),
			ctx.Edit(call.Lparen+1, call.Lparen+1, arg),
		},
	}
}
