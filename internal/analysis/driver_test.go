package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// renderDiags prints diagnostics the way rpvet's text format does, so
// equality checks below compare the exact bytes a user would see.
func renderDiags(t *testing.T, root string, diags []Diagnostic) string {
	t.Helper()
	var buf bytes.Buffer
	if _, err := Print(&buf, root, diags); err != nil {
		t.Fatal(err)
	}
	return buf.String()
}

// copyFixture clones the rpfix fixture module into a fresh temp dir so
// tests can edit files without touching testdata.
func copyFixture(t *testing.T) string {
	t.Helper()
	src, err := filepath.Abs(filepath.Join("testdata", "src", "rpfix"))
	if err != nil {
		t.Fatal(err)
	}
	dst := filepath.Join(t.TempDir(), "rpfix")
	err = filepath.WalkDir(src, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if d.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		return os.WriteFile(target, data, 0o644)
	})
	if err != nil {
		t.Fatal(err)
	}
	return dst
}

// TestParallelMatchesSequential pins the driver's central contract: the
// merged output of a parallel run is byte-identical to a strictly
// sequential one. Run with -race in make check.
func TestParallelMatchesSequential(t *testing.T) {
	root := copyFixture(t)
	dirs, err := ModuleDirs(root)
	if err != nil {
		t.Fatal(err)
	}

	seq := &Driver{Root: root, Passes: Passes(), Workers: 1}
	seqDiags, err := seq.Run(dirs)
	if err != nil {
		t.Fatal(err)
	}
	want := renderDiags(t, root, seqDiags)
	if want == "" {
		t.Fatal("fixture run produced no findings; the comparison would be vacuous")
	}

	for run := 0; run < 3; run++ {
		par := &Driver{Root: root, Passes: Passes(), Workers: 8}
		parDiags, err := par.Run(dirs)
		if err != nil {
			t.Fatal(err)
		}
		if got := renderDiags(t, root, parDiags); got != want {
			t.Fatalf("parallel run %d differs from sequential\n--- parallel ---\n%s--- sequential ---\n%s", run, got, want)
		}
	}
}

// TestCacheWarmAndInvalidation drives the on-disk cache through its
// life cycle: cold run misses everything, warm run hits everything and
// type-checks nothing, editing one leaf package re-analyzes only that
// package, and bumping a pass version re-runs that pass module-wide.
func TestCacheWarmAndInvalidation(t *testing.T) {
	root := copyFixture(t)
	dirs, err := ModuleDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenCache(filepath.Join(t.TempDir(), "cache"), root)
	if err != nil {
		t.Fatal(err)
	}
	suite := Passes()
	d := &Driver{Root: root, Passes: suite, Workers: 4, Cache: cache}

	cold, err := d.Run(dirs)
	if err != nil {
		t.Fatal(err)
	}
	want := renderDiags(t, root, cold)
	if d.Stats.CacheHits != 0 {
		t.Errorf("cold run: %d cache hits, want 0", d.Stats.CacheHits)
	}
	if got, wantMiss := d.Stats.CacheMisses, len(dirs)*len(suite); got != wantMiss {
		t.Errorf("cold run: %d cache misses, want %d", got, wantMiss)
	}

	warm, err := d.Run(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if d.Stats.CacheMisses != 0 {
		t.Errorf("warm run: %d cache misses, want 0", d.Stats.CacheMisses)
	}
	if len(d.Stats.Analyzed) != 0 {
		t.Errorf("warm run type-checked %v, want nothing", d.Stats.Analyzed)
	}
	if got := renderDiags(t, root, warm); got != want {
		t.Errorf("warm output differs from cold\n--- warm ---\n%s--- cold ---\n%s", got, want)
	}

	// Edit a leaf package nothing imports: only it may be re-analyzed.
	edited := filepath.Join(root, "cmd", "tool", "ctx.go")
	data, err := os.ReadFile(edited)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(edited, append(data, []byte("\n// touched by the cache test\n")...), 0o644); err != nil {
		t.Fatal(err)
	}
	after, err := d.Run(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Stats.Analyzed) != 1 || d.Stats.Analyzed[0] != "cmd/tool" {
		t.Errorf("after editing cmd/tool/ctx.go, re-analyzed %v, want [cmd/tool]", d.Stats.Analyzed)
	}
	if got, wantMiss := d.Stats.CacheMisses, len(suite); got != wantMiss {
		t.Errorf("after edit: %d cache misses, want %d (one per pass)", got, wantMiss)
	}
	if got := renderDiags(t, root, after); got != want {
		t.Errorf("output changed after a comment-only edit\n--- after ---\n%s--- before ---\n%s", got, want)
	}

	// Bump one pass's version: that pass re-runs for every package, the
	// other passes stay cached.
	suite[0].Version++
	bumped, err := d.Run(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if got, wantMiss := d.Stats.CacheMisses, len(dirs); got != wantMiss {
		t.Errorf("after version bump: %d cache misses, want %d (one per package)", got, wantMiss)
	}
	if got, wantPkgs := len(d.Stats.Analyzed), len(dirs); got != wantPkgs {
		t.Errorf("after version bump, re-analyzed %d packages %v, want all %d", got, d.Stats.Analyzed, wantPkgs)
	}
	if got := renderDiags(t, root, bumped); got != want {
		t.Errorf("output changed after a version bump\n--- after ---\n%s--- before ---\n%s", got, want)
	}
}

// TestCachedRunMatchesUncached pins that diagnostics round-tripped
// through the cache (positions, messages, fixes) render identically to a
// fresh run — a half-warm mix must be indistinguishable from either.
func TestCachedRunMatchesUncached(t *testing.T) {
	root := copyFixture(t)
	dirs, err := ModuleDirs(root)
	if err != nil {
		t.Fatal(err)
	}
	plain := &Driver{Root: root, Passes: Passes(), Workers: 4}
	fresh, err := plain.Run(dirs)
	if err != nil {
		t.Fatal(err)
	}
	cache, err := OpenCache(filepath.Join(t.TempDir(), "cache"), root)
	if err != nil {
		t.Fatal(err)
	}
	cachedDriver := &Driver{Root: root, Passes: Passes(), Workers: 4, Cache: cache}
	if _, err := cachedDriver.Run(dirs); err != nil {
		t.Fatal(err)
	}
	warm, err := cachedDriver.Run(dirs)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := renderDiags(t, root, warm), renderDiags(t, root, fresh); got != want {
		t.Errorf("cache round-trip changed the output\n--- cached ---\n%s--- fresh ---\n%s", got, want)
	}
	// The fixes must survive the round-trip too, not just the text lines.
	countFixes := func(diags []Diagnostic) (n int) {
		for _, d := range diags {
			n += len(d.Fixes)
		}
		return n
	}
	if got, want := countFixes(warm), countFixes(fresh); got != want || want == 0 {
		t.Errorf("cached run carries %d fixes, fresh run %d (want equal and non-zero)", got, want)
	}
}
