package core

// Seeded ctxflow violations next to the clean threading discipline: core
// is below the edge layer, so fresh root contexts and dropped in-scope
// contexts are both flagged.

import "context"

// Search is the context-free variant callers should avoid once a ctx is
// in scope.
func Search(q int) int { return q }

// SearchContext is the context-aware sibling the suggested fix rewrites
// calls toward.
func SearchContext(ctx context.Context, q int) int {
	_ = ctx
	return q
}

// DropsCtx has a context in scope but mints a fresh root: flagged
// (rule 1) with a fix threading ctx instead.
func DropsCtx(ctx context.Context, q int) int {
	return SearchContext(ctx, q)
}

// RootBelowEdge has no context parameter, but core sits below the edge
// layer: minting a root is flagged outright (rule 2).
func RootBelowEdge(q int) int {
	return SearchContext(context.TODO(), q)
}

// IgnoresSibling calls the context-free Search while SearchContext
// exists and ctx is in scope: flagged (rule 3) with a rewrite fix.
func IgnoresSibling(ctx context.Context, q int) int {
	return SearchContext(ctx, q)
}

// Threads does everything right: clean.
func Threads(ctx context.Context, q int) int {
	return SearchContext(ctx, q)
}

// Miner pairs a method with its context-aware sibling so rule 3 is
// exercised on method sets, not just package scope.
type Miner struct{}

// Run is the context-free method variant.
func (Miner) Run(q int) int { return q }

// RunContext is the context-aware method sibling.
func (Miner) RunContext(ctx context.Context, q int) int {
	_ = ctx
	return q
}

// IgnoresMethodSibling drops ctx on a method call: flagged (rule 3).
func IgnoresMethodSibling(ctx context.Context, m Miner, q int) int {
	return m.RunContext(ctx, q)
}
