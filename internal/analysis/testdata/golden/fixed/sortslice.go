package core

// Seeded sortslice violations next to the clean variants the diagnostic
// should steer people toward.

import (
	"cmp"
	"slices"
	"sort"
)

// SortInts sorts a basic-typed slice through reflection: flagged.
func SortInts(xs []int64) {
	slices.Sort(xs)
}

// SortNamesDesc sorts strings with a custom order, still through
// reflection: flagged (slices.SortFunc covers the descending comparator).
func SortNamesDesc(names []string) {
	sort.SliceStable(names, func(i, j int) bool { return names[i] > names[j] })
}

type scored struct {
	name  string
	score float64
}

// SortStructs sorts a struct slice with sort.Slice: clean — the pass only
// targets basic element types where slices.Sort applies directly.
func SortStructs(xs []scored) {
	sort.Slice(xs, func(i, j int) bool { return xs[i].score > xs[j].score })
}

// SortIntsGeneric uses the monomorphic API: clean.
func SortIntsGeneric(xs []int64) {
	slices.Sort(xs)
}

// SortNamesDescGeneric uses the monomorphic comparator API: clean.
func SortNamesDescGeneric(names []string) {
	slices.SortFunc(names, func(a, b string) int { return cmp.Compare(b, a) })
}
