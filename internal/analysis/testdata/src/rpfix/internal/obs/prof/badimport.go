package prof

// Seeded layering violation: prof sits just above the obs substrate and
// may not reach into the storage layer.

import "example.com/rpfix/internal/tsdb"

// BadCapture drags the storage substrate into prof: flagged.
func BadCapture(id tsdb.ItemID) int {
	return int(id)
}
