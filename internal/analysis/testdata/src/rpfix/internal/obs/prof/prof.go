// Minimal stand-in for the continuous-profiling subsystem: it may import
// the obs substrate (and nothing else internal), and only internal/serve
// and cmd/ may import it.
package prof

import "example.com/rpfix/internal/obs"

// Sample is a trivially valid capture helper leaning on the substrate.
func Sample(n int) int { return obs.Count(n) }
