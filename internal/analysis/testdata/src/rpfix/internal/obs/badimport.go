package obs

// Seeded layering violation: the observability substrate must import
// nothing module-internal (every layer may depend on it, so any internal
// import risks a cycle).

import "example.com/rpfix/internal/tsdb"

// BadSpan drags the storage substrate into obs: flagged.
func BadSpan(id tsdb.ItemID) int {
	return int(id)
}
