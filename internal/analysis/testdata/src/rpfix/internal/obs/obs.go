package obs

// Minimal stand-in for the observability substrate: stdlib-only by the
// layering rules, importable from every other layer.

// Count is a trivially valid observation helper.
func Count(n int) int { return n + 1 }
