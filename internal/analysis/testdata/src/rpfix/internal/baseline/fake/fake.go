// Package fake is a fixture baseline: it may lean on core's shared
// measure API, but calling into the miner under comparison is flagged.
package fake

import "example.com/rpfix/internal/core"

// Compare mixes an allowed measure call with a forbidden miner call.
func Compare(ts []int64) int {
	n := core.Recurrence(ts) // measure API: allowed
	res := core.Mine()       // miner entry point: flagged
	return n + len(res.Patterns)
}
