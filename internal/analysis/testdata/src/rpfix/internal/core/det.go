package core

// Seeded determinism violations for the golden tests, next to the clean
// variants each diagnostic should steer people toward.

import (
	"math/rand/v2"
	"slices"
	"time"
)

// Stamp reads the wall clock inside mining state: flagged.
func Stamp() int64 {
	return time.Now().Unix()
}

// Pick draws from the auto-seeded global generator: flagged.
func Pick(n int) int {
	return rand.IntN(n)
}

// PickSeeded threads an explicitly seeded generator: clean.
func PickSeeded(seed uint64, n int) int {
	rng := rand.New(rand.NewPCG(seed, 0))
	return rng.IntN(n)
}

// Collect ranges a map with no sort afterwards: flagged.
func Collect(m map[int]int64) []int64 {
	var out []int64
	for _, v := range m {
		out = append(out, v)
	}
	return out
}

// CollectSorted uses the collect-then-sort idiom: clean.
func CollectSorted(m map[int]int64) []int64 {
	var out []int64
	for _, v := range m {
		out = append(out, v)
	}
	slices.Sort(out)
	return out
}
