package core

// Seeded concurrency violations: a fan-out that captures its loop
// variable and mutates shared Result state with no synchronization in
// sight, next to the disciplined version.

import "sync"

// FanOutCapture is everything the pass forbids at once: the goroutine
// captures loop variable r and touches res and parts (shared Result
// state) in a function with no sync or channel use.
func FanOutCapture(parts []Result) *Result {
	res := &Result{}
	for r := range parts {
		go func() {
			res.Patterns = append(res.Patterns, parts[r].Patterns...)
		}()
	}
	return res
}

// FanOutClean passes the index as an argument and merges under a mutex
// with a WaitGroup in scope: clean.
func FanOutClean(parts []Result) *Result {
	res := &Result{}
	var wg sync.WaitGroup
	var mu sync.Mutex
	for r := range parts {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			mu.Lock()
			res.Patterns = append(res.Patterns, parts[r].Patterns...)
			mu.Unlock()
		}(r)
	}
	wg.Wait()
	return res
}
