package core

// The file's only sort-package use is the one flagged ascending
// sort.Slice, so its suggested fix must also swap the import: "sort"
// goes away, "slices" comes in. fix_test.go pins the rewritten file.

import "sort"

// SortIDsAsc sorts ascending through reflection: flagged, with a fix
// rewriting to slices.Sort and replacing the import.
func SortIDsAsc(ids []int64) {
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
}
