package core

// Seeded layering violations: core reaching up the DAG into bench, and
// importing a cmd/ package (a leaf that nothing may import).

import (
	"example.com/rpfix/cmd/toolkit"
	"example.com/rpfix/internal/bench"
)

// BadTiming drags benchmark machinery into the miner: flagged.
func BadTiming(f func()) int64 {
	return bench.Elapsed(f).Nanoseconds()
}

// BadVersion reaches into a cmd/ leaf: flagged.
func BadVersion() string {
	return toolkit.Version
}
