// Package core is the fixture miner: a Result accumulator, a Mine entry
// point the baselines must not call, and the shared measure API they may.
package core

import "example.com/rpfix/internal/tsdb"

// Result mirrors the real miner's accumulator.
type Result struct {
	Patterns []tsdb.ItemID
}

// Mine is the miner entry point; baselines referencing it break layering.
func Mine() *Result { return &Result{} }

// Recurrence belongs to the shared measure API baselines may use.
func Recurrence(ts []int64) int { return len(ts) }

// Erec belongs to the shared measure API baselines may use.
func Erec(ts []int64) int { return len(ts) }
