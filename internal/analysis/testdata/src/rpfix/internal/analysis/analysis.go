// Package analysis is the fixture vet framework: importer-restricted to
// cmd/rpvet, which uses it cleanly while internal/bench's badanalysis.go
// trips the restriction.
package analysis

// Touch exists so importers have something to reference.
func Touch() {}
