package ext

// Seeded restriction violation: internal/obs/prof is service plumbing and
// only internal/serve and cmd/ may import it.

import "example.com/rpfix/internal/obs/prof"

// BadProfileUse reaches into the profiling subsystem from a library
// package: flagged.
func BadProfileUse() int {
	return prof.Sample(1)
}
