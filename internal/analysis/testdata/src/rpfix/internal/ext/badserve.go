// Package ext is the fixture extension layer. Its one file seeds an
// importer-side violation: internal/serve is restricted to cmd/rpserved,
// so importing it from here is flagged regardless of ext's own Allow rule.
package ext

import "example.com/rpfix/internal/serve"

// BadServe leans on the service implementation: flagged.
func BadServe() { serve.Handle() }
