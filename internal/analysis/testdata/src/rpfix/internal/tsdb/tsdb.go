// Package tsdb is the fixture's shared substrate: the one internal
// package every layer may import.
package tsdb

// ItemID mirrors the real module's item identifier.
type ItemID int32
