// Package shard is the fixture scatter-gather layer: it speaks the wire
// schema (api) and runs the miner (core), and may also use tsdb and obs.
package shard

import (
	"example.com/rpfix/internal/api"
	"example.com/rpfix/internal/core"
)

// Execute mines one shard task and wires the result into its wire shape:
// clean.
func Execute() api.Pattern {
	return api.FromCore(core.Mine())
}
