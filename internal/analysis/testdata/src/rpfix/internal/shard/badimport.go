package shard

// Seeded layering violation: the scatter-gather layer reaching sideways
// into the extension layer, which its Allow rule (api, core, tsdb, obs)
// does not cover.

import "example.com/rpfix/internal/ext"

// BadExt drags the extension layer into the executor: flagged.
func BadExt() {
	ext.BadServe()
}
