package api

// Seeded layering violation: the wire schema importing a baseline miner,
// which its Allow rule (core, tsdb, obs) does not cover — schema types
// must stay free of algorithm implementations.

import "example.com/rpfix/internal/baseline/fake"

// BadBaseline drags a baseline implementation into the schema: flagged.
func BadBaseline(p Pattern) int {
	return fake.Compare(nil) + p.Count
}
