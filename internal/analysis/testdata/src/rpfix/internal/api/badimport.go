package api

// Seeded layering violation: the wire schema importing the observability
// substrate, which its Allow rule (core, tsdb) does not cover — schema
// types must stay transport- and telemetry-free.

import "example.com/rpfix/internal/obs"

// BadObserve drags telemetry into the schema: flagged.
func BadObserve(p Pattern) int {
	return obs.Count(p.Count)
}
