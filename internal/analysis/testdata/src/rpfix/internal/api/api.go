// Package api is the fixture wire schema: by the layering rules it may
// import only core and tsdb — the types it mirrors — never transport or
// telemetry machinery.
package api

import "example.com/rpfix/internal/core"

// Pattern mirrors a wire pattern built from a core result.
type Pattern struct {
	Count int
}

// FromCore converts a miner result into its wire shape: clean.
func FromCore(r *core.Result) Pattern {
	return Pattern{Count: len(r.Patterns)}
}
