package serve

// Clean: the serve layer is one of the two importers the internal/obs/prof
// restriction permits, and obs/prof is within serve's Allow rule via the
// internal/obs prefix.

import "example.com/rpfix/internal/obs/prof"

// ProfileSample wires the profiling subsystem into the service: clean.
func ProfileSample() int { return prof.Sample(2) }
