// Package serve is the fixture service layer: its own imports of core are
// within its Allow rule, but the package is importer-restricted — only
// cmd/rpserved may use it, which badserve.go (in bench) violates and
// cmd/rpserved exercises cleanly.
package serve

import "example.com/rpfix/internal/core"

// Handle mines on demand; the body only exists to reference core.
func Handle() *core.Result { return core.Mine() }
