package serve

// Seeded layering violation: the service layer reaching sideways into a
// baseline package, which its Allow rule (core, tsdb, cliio) does not
// cover.

import "example.com/rpfix/internal/baseline/fake"

// BadCompare drags a baseline into serve: flagged.
func BadCompare(ts []int64) int {
	return fake.Compare(ts)
}
