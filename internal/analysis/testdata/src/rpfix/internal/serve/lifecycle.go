package serve

// Seeded goroutine-lifecycle violations: goroutines with no visible join
// or cancel path, and copied sync locks, next to their disciplined
// counterparts.

import (
	"context"
	"sync"
)

// LeakyFire launches a goroutine nothing can join or cancel: flagged.
func LeakyFire() {
	go func() {
		_ = Handle()
	}()
}

// JoinedFire pairs the goroutine with a WaitGroup: clean.
func JoinedFire() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		_ = Handle()
	}()
	wg.Wait()
}

// ChannelFire hands the collector a rendezvous channel: clean.
func ChannelFire() <-chan int {
	done := make(chan int, 1)
	go func() {
		done <- len(Handle().Patterns)
	}()
	return done
}

// CtxFire watches a context for cancellation: clean.
func CtxFire(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// CarrierFire passes the lifecycle carrier to a named worker: clean.
func CarrierFire() {
	done := make(chan struct{})
	go worker(done)
	<-done
}

func worker(done chan struct{}) {
	close(done)
}

// box carries a mutex by value; copying it copies the lock.
type box struct {
	mu sync.Mutex
	n  int
}

// Count takes its receiver by value, copying mu: flagged.
func (b box) Count() int { return b.n }

// Grow takes the receiver by pointer: clean.
func (b *box) Grow() {
	b.mu.Lock()
	b.n++
	b.mu.Unlock()
}

// CopyBox copies a lock-bearing value in an assignment: flagged.
func CopyBox(b *box) int {
	snapshot := *b
	return snapshot.n
}

// RangeBoxes copies each element into the range value: flagged.
func RangeBoxes(boxes []box) int {
	total := 0
	for _, b := range boxes {
		total += b.n
	}
	return total
}

// PassBox passes a lock-bearing value as a call argument: flagged.
func PassBox(b *box) int {
	return readBox(*b)
}

func readBox(b box) int { return b.n }

// PassBoxPtr keeps the pointer: clean.
func PassBoxPtr(b *box) { b.Grow() }
