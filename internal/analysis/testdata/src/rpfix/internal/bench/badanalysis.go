// The fixture bench layer may import anything internal by its Allow
// rule, but internal/analysis is importer-restricted to cmd/rpvet: this
// import is flagged before bench's own rule is even consulted.
package bench

import "example.com/rpfix/internal/analysis"

// BadAnalysis reaches into the vet framework: flagged.
func BadAnalysis() { analysis.Touch() }
