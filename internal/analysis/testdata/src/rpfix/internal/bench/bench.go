// Package bench is the fixture benchmark layer. Its wall-clock read is
// the measurement itself, so it carries the allow directive the golden
// tests verify.
package bench

import "time"

// Elapsed times one run of f.
func Elapsed(f func()) time.Duration {
	start := time.Now() //rpvet:allow determinism — timing is the measurement
	f()
	return time.Since(start)
}
