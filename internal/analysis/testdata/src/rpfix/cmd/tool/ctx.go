// The edge layer may mint root contexts in functions that have no
// context parameter: nothing in this file is flagged.
package main

import "context"

// rootAtEdge mints the process root the way mains do: clean in cmd/.
func rootAtEdge() context.Context {
	return context.Background()
}

// edgeThreads still must thread an in-scope context below: rule 1
// applies in cmd/ too, but this function is clean.
func edgeThreads(ctx context.Context) context.Context {
	return ctx
}
