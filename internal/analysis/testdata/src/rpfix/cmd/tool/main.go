// Command tool is the errcheck fixture: each statement below is either a
// seeded dropped-error violation or a documented exclusion.
package main

import (
	"bufio"
	"fmt"
	"os"
	"strings"
)

func main() {
	f, err := os.Create("out.txt")
	if err != nil {
		return
	}
	defer f.Close() // deferred Close: the one allowed defer drop
	bw := bufio.NewWriter(f)
	defer bw.Flush()          // deferred Flush: flagged (silent short write)
	fmt.Fprintln(bw, "hello") // fallible io.Writer destination: flagged

	var b strings.Builder
	fmt.Fprintf(&b, "x")                // strings.Builder destination: clean
	b.WriteString("y")                  // Builder method: clean
	fmt.Fprintln(os.Stderr, b.String()) // best-effort stderr: clean
	fmt.Println("done")                 // best-effort stdout: clean

	_ = f.Sync() // explicit blank assignment: clean
	f.Sync()     // bare statement dropping the error: flagged
	go f.Sync()  // goroutine dropping the error: flagged
}
