// Command rpserved is the fixture's allowed importer of internal/serve:
// the one place the importer restriction permits, so nothing here may be
// flagged.
package main

import "example.com/rpfix/internal/serve"

func main() {
	_ = serve.Handle()
}
