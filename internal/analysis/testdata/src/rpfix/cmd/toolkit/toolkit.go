// Package toolkit exists only so the fixture can exercise the rule that
// cmd/ packages are leaves: importing it from anywhere is flagged. (The
// package is deliberately not main — main packages cannot be imported at
// all, so the rule would otherwise be untestable.)
package toolkit

// Version is referenced by the bad importer.
const Version = "0.0.0"
