// Command rpvet is the fixture's allowed importer of internal/analysis:
// the one place that restriction permits, so nothing here may be flagged.
package main

import "example.com/rpfix/internal/analysis"

func main() {
	analysis.Touch()
}
