module example.com/rpfix

go 1.22
