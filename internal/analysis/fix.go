package analysis

import (
	"fmt"
	"go/format"
	"os"
	"slices"
	"strings"
)

// FixResult is the outcome of applying the suggested fixes of a
// diagnostic set: the rewritten content of every touched file, plus
// bookkeeping for the CLI summary.
type FixResult struct {
	// Files maps absolute paths to their fixed (and, for .go files,
	// gofmt-formatted) content.
	Files map[string][]byte
	// Applied counts the fixes whose edits were accepted.
	Applied int
	// Skipped counts the fixes dropped because an edit conflicted with an
	// already-accepted one (first writer wins, in diagnostic order).
	Skipped int
}

// ApplyFixes materializes the suggested fixes carried by diags. Fixes are
// considered in canonical diagnostic order; a fix is accepted only if
// none of its edits overlaps an already-accepted edit (byte-identical
// duplicate edits — e.g. two findings both inserting the same import —
// are deduplicated rather than conflicting). Touched .go files are run
// through go/format, which is what keeps the edits themselves simple:
// a fix may leave whitespace slightly off and formatting normalizes it.
func ApplyFixes(diags []Diagnostic) (*FixResult, error) {
	type span struct {
		start, end int
		newText    string
	}
	accepted := make(map[string][]span) // per file, unordered
	res := &FixResult{Files: make(map[string][]byte)}

	overlaps := func(file string, e TextEdit) (conflict, duplicate bool) {
		for _, s := range accepted[file] {
			if s.start == e.Start && s.end == e.End && s.newText == e.NewText {
				return false, true
			}
			// Two ranges conflict when they intersect; pure insertions at
			// the same offset (both empty) also conflict unless identical.
			if e.Start < s.end && s.start < e.End {
				return true, false
			}
			if e.Start == e.End && s.start == s.end && e.Start == s.start {
				return true, false
			}
		}
		return false, false
	}

	for _, d := range diags {
		for _, fix := range d.Fixes {
			ok := true
			for _, e := range fix.Edits {
				if c, _ := overlaps(e.File, e); c {
					ok = false
					break
				}
			}
			if !ok {
				res.Skipped++
				continue
			}
			res.Applied++
			for _, e := range fix.Edits {
				if _, dup := overlaps(e.File, e); dup {
					continue
				}
				accepted[e.File] = append(accepted[e.File], span{start: e.Start, end: e.End, newText: e.NewText})
			}
		}
	}

	var files []string
	for file := range accepted {
		files = append(files, file)
	}
	slices.Sort(files)
	for _, file := range files {
		content, err := os.ReadFile(file)
		if err != nil {
			return nil, fmt.Errorf("analysis: applying fixes: %w", err)
		}
		spans := accepted[file]
		// Apply back to front so earlier offsets stay valid; on equal
		// starts the wider span (a deletion) goes before a pure insertion
		// at the same offset, so the insertion lands on untouched bytes.
		slices.SortFunc(spans, func(a, b span) int {
			if a.start != b.start {
				return b.start - a.start
			}
			return b.end - a.end
		})
		for _, s := range spans {
			if s.start < 0 || s.end > len(content) || s.start > s.end {
				return nil, fmt.Errorf("analysis: fix edit [%d,%d) out of range for %s (%d bytes)", s.start, s.end, file, len(content))
			}
			content = append(content[:s.start], append([]byte(s.newText), content[s.end:]...)...)
		}
		if strings.HasSuffix(file, ".go") {
			if formatted, err := format.Source(content); err == nil {
				content = formatted
			} else {
				return nil, fmt.Errorf("analysis: fixed %s does not parse: %w", file, err)
			}
		}
		res.Files[file] = content
	}
	return res, nil
}

// Write persists the fixed files to disk.
func (r *FixResult) Write() error {
	var files []string
	for file := range r.Files {
		files = append(files, file)
	}
	slices.Sort(files)
	for _, file := range files {
		info, err := os.Stat(file)
		mode := os.FileMode(0o644)
		if err == nil {
			mode = info.Mode().Perm()
		}
		if err := os.WriteFile(file, r.Files[file], mode); err != nil {
			return err
		}
	}
	return nil
}

// Diff renders the unified diff between every touched file's on-disk
// content and its fixed content, in file order. An empty string means the
// fixes change nothing — the invariant `make vet-fix-check` asserts on
// the repository tree.
func (r *FixResult) Diff(root string) (string, error) {
	var files []string
	for file := range r.Files {
		files = append(files, file)
	}
	slices.Sort(files)
	var sb strings.Builder
	for _, file := range files {
		old, err := os.ReadFile(file)
		if err != nil {
			return "", err
		}
		rel := relPath(root, file)
		sb.WriteString(unifiedDiff("a/"+rel, "b/"+rel, old, r.Files[file]))
	}
	return sb.String(), nil
}
