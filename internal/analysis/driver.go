package analysis

import (
	"path/filepath"
	"runtime"
	"slices"
	"strings"
	"sync"
)

// Driver runs a pass suite over a set of package directories, in parallel
// and through the on-disk result cache when one is attached. Its contract
// is byte-determinism: for the same tree and pass suite, the merged,
// sorted diagnostics are identical whatever Workers is and whatever mix of
// cache hits and fresh runs produced them. Scheduling only ever decides
// *when* a (package, pass) unit runs, never what it reports, and the merge
// discards arrival order entirely.
type Driver struct {
	// Root is the module root directory (holding go.mod).
	Root string
	// Passes is the suite to run, in suite order.
	Passes []*Pass
	// Workers bounds load and pass concurrency; <=0 means GOMAXPROCS,
	// 1 is strictly sequential.
	Workers int
	// Cache, when non-nil, is consulted before any type-checking and
	// updated after every fresh (package, pass) run.
	Cache *Cache

	// Stats describes the last Run: cache traffic and which packages were
	// freshly analyzed.
	Stats DriverStats
}

// DriverStats reports what one Driver.Run did.
type DriverStats struct {
	// CacheHits and CacheMisses count (package, pass) units.
	CacheHits   int
	CacheMisses int
	// Analyzed lists the module-relative paths of packages that ran at
	// least one pass fresh (i.e. were type-checked), sorted.
	Analyzed []string
}

// unit is one (package, pass) work item.
type unit struct {
	pkgRel string
	pass   *Pass
	key    string // cache key, "" when uncached
}

// Run analyzes the packages in dirs (which must sit inside Root) and
// returns the merged diagnostics in canonical order.
func (d *Driver) Run(dirs []string) ([]Diagnostic, error) {
	d.Stats = DriverStats{}
	workers := d.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	modPath, err := modulePath(filepath.Join(d.Root, "go.mod"))
	if err != nil {
		return nil, err
	}

	// Resolve directories to module-relative package paths, deduplicated
	// and sorted so every downstream step sees a canonical order.
	var rels []string
	seen := make(map[string]bool)
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(d.Root, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, &outsideModuleError{dir: dir, root: d.Root}
		}
		if rel == "." {
			rel = ""
		}
		rel = filepath.ToSlash(rel)
		if !seen[rel] {
			seen[rel] = true
			rels = append(rels, rel)
		}
	}
	slices.Sort(rels)

	// Probe the cache with nothing but file hashes and import scans: a
	// fully warm run never constructs a type checker.
	var diags []Diagnostic
	var misses []unit
	if d.Cache != nil {
		sc := newScanner(d.Root, modPath)
		for _, rel := range rels {
			closure, err := sc.closure(rel)
			if err != nil {
				return nil, err
			}
			for _, pass := range d.Passes {
				key := d.Cache.Key(modPath, pass, closure)
				if cached, ok := d.Cache.Get(key); ok {
					d.Stats.CacheHits++
					diags = append(diags, cached...)
					continue
				}
				d.Stats.CacheMisses++
				misses = append(misses, unit{pkgRel: rel, pass: pass, key: key})
			}
		}
	} else {
		for _, rel := range rels {
			for _, pass := range d.Passes {
				d.Stats.CacheMisses++
				misses = append(misses, unit{pkgRel: rel, pass: pass})
			}
		}
	}

	if len(misses) > 0 {
		fresh, err := d.runFresh(misses, workers)
		if err != nil {
			return nil, err
		}
		diags = append(diags, fresh...)
	}
	SortDiagnostics(diags)
	return diags, nil
}

// runFresh type-checks the packages behind the missed units and runs their
// missing passes, workers at a time.
func (d *Driver) runFresh(misses []unit, workers int) ([]Diagnostic, error) {
	// Group misses by package so each package type-checks once.
	byPkg := make(map[string][]unit)
	var pkgRels []string
	for _, u := range misses {
		if _, ok := byPkg[u.pkgRel]; !ok {
			pkgRels = append(pkgRels, u.pkgRel)
		}
		byPkg[u.pkgRel] = append(byPkg[u.pkgRel], u)
	}
	slices.Sort(pkgRels)
	d.Stats.Analyzed = slices.Clone(pkgRels)

	loader, err := NewLoader(d.Root)
	if err != nil {
		return nil, err
	}
	loader.Workers = workers
	dirs := make([]string, len(pkgRels))
	for i, rel := range pkgRels {
		dirs[i] = filepath.Join(d.Root, filepath.FromSlash(rel))
	}
	pkgs, err := loader.LoadDirs(dirs)
	if err != nil {
		return nil, err
	}
	pkgByRel := make(map[string]*Package, len(pkgs))
	for _, p := range pkgs {
		pkgByRel[p.Rel] = p
	}

	// Run each package's missing passes as one task; results land in a
	// per-package slot, so scheduling cannot reorder anything.
	results := make([][]Diagnostic, len(pkgRels))
	errs := make([]error, len(pkgRels))
	run := func(i int) {
		rel := pkgRels[i]
		pkg := pkgByRel[rel]
		var out []Diagnostic
		for _, u := range byPkg[rel] {
			unitDiags := runPass(loader, pkg, u.pass)
			if d.Cache != nil && u.key != "" {
				if err := d.Cache.Put(u.key, u.pass.Name, rel, unitDiags); err != nil {
					errs[i] = err
					return
				}
			}
			out = append(out, unitDiags...)
		}
		results[i] = out
	}
	if workers == 1 || len(pkgRels) == 1 {
		for i := range pkgRels {
			run(i)
		}
	} else {
		sem := make(chan struct{}, workers)
		var wg sync.WaitGroup
		for i := range pkgRels {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int) {
				defer wg.Done()
				defer func() { <-sem }()
				run(i)
			}(i)
		}
		wg.Wait()
	}
	var diags []Diagnostic
	for i := range pkgRels {
		if errs[i] != nil {
			return nil, errs[i]
		}
		diags = append(diags, results[i]...)
	}
	return diags, nil
}

// outsideModuleError keeps the error text of the old loader for callers
// that match on it.
type outsideModuleError struct{ dir, root string }

func (e *outsideModuleError) Error() string {
	return "analysis: " + e.dir + " is outside module " + e.root
}
