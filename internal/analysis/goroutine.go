package analysis

import (
	"go/ast"
	"go/types"
)

// GoroutineLifecyclePass guards goroutine and lock hygiene module-wide,
// ahead of the sharded scatter-gather layer the ROADMAP stacks on the
// serving code:
//
//  1. every `go` statement must show a join or cancel path the reader can
//     see from the launch site: the goroutine pairs with a
//     sync.WaitGroup (Done/Add referenced inside it, or a *WaitGroup
//     passed to it), performs a channel operation (send, receive, close,
//     select) that a collector can rendezvous with, runs under an
//     errgroup.Group, or receives a context to watch. Process-lifetime
//     goroutines launched from a cmd/ main are allowed (the server
//     allowlist); anything else is a leak waiting for a load test, and
//     must either gain a join path or justify itself with
//     //rpvet:allow goroutine-lifecycle;
//  2. sync locks must not be copied: methods may not take a receiver by
//     value if the receiver type contains a Mutex/RWMutex/WaitGroup/...,
//     and assignments, range clauses and call arguments may not copy a
//     lock-bearing value (go vet's copylocks, reimplemented here so the
//     cached driver sees it and fixtures can pin the message format).
func GoroutineLifecyclePass() *Pass {
	return &Pass{
		Name:    "goroutine-lifecycle",
		Version: 1,
		Doc:     "require a visible join/cancel path for every goroutine; forbid copying sync locks",
		Run:     runGoroutineLifecycle,
	}
}

func runGoroutineLifecycle(ctx *Context) {
	info := ctx.Pkg.Info
	isMainPkg := ctx.Pkg.Types.Name() == "main"
	for _, f := range ctx.Pkg.Files {
		inspectWithStack(f, func(n ast.Node, stack []ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				checkGoStmt(ctx, info, n, stack, isMainPkg)
			case *ast.FuncDecl:
				checkValueReceiver(ctx, info, n)
			case *ast.AssignStmt:
				for _, rhs := range n.Rhs {
					checkLockCopy(ctx, info, rhs, "assignment")
				}
			case *ast.ValueSpec:
				for _, v := range n.Values {
					checkLockCopy(ctx, info, v, "variable declaration")
				}
			case *ast.RangeStmt:
				checkRangeLockCopy(ctx, info, n)
			case *ast.CallExpr:
				checkCallLockCopy(ctx, info, n)
			}
			return true
		})
	}
}

// checkGoStmt looks for visible join/cancel evidence on one `go` statement.
func checkGoStmt(ctx *Context, info *types.Info, g *ast.GoStmt, stack []ast.Node, isMainPkg bool) {
	// Server allowlist: a goroutine launched straight from main() lives
	// for the process, joined by exit.
	if isMainPkg {
		for _, anc := range stack {
			if fd, ok := anc.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "main" {
				return
			}
		}
	}
	// Arguments handed to the goroutine can carry the lifecycle: a
	// *sync.WaitGroup, a channel, or a context to watch.
	for _, arg := range g.Call.Args {
		if tv, ok := info.Types[arg]; ok && tv.Type != nil && lifecycleCarrier(tv.Type) {
			return
		}
	}
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		if bodyShowsLifecycle(info, lit.Body) {
			return
		}
	} else if tv, ok := info.Types[g.Call.Fun]; ok && tv.Type != nil {
		// A named callee whose signature accepts a lifecycle carrier
		// (checked above via the arguments) was already cleared; a method
		// on an errgroup-style receiver also counts.
		if sig, ok := tv.Type.Underlying().(*types.Signature); ok && sig.Recv() != nil && lifecycleCarrier(sig.Recv().Type()) {
			return
		}
	}
	ctx.Report(g.Pos(), "goroutine has no visible join or cancel path; pair it with a WaitGroup, channel or context (or justify with //rpvet:allow goroutine-lifecycle)")
}

// lifecycleCarrier reports whether a value of type t can carry a
// goroutine's lifecycle: a (pointer to) sync.WaitGroup, a channel, or a
// context.Context.
func lifecycleCarrier(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if isContextType(t) {
		return true
	}
	if _, ok := t.Underlying().(*types.Chan); ok {
		return true
	}
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
			return true
		}
	}
	return false
}

// bodyShowsLifecycle reports whether a goroutine body contains join/cancel
// evidence: a channel operation, a select, a close, a WaitGroup method
// call, or a reference to a context.Context value.
func bodyShowsLifecycle(info *types.Info, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.SendStmt, *ast.SelectStmt:
			found = true
		case *ast.UnaryExpr:
			if n.Op.String() == "<-" {
				found = true
			}
		case *ast.RangeStmt:
			if tv, ok := info.Types[n.X]; ok && tv.Type != nil {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					found = true
				}
			}
		case *ast.CallExpr:
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && id.Name == "close" {
				if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
					found = true
				}
			}
		case *ast.SelectorExpr:
			fn, ok := info.Uses[n.Sel].(*types.Func)
			if !ok {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() == nil {
				return true
			}
			if named := namedOf(sig.Recv().Type()); named != nil {
				obj := named.Obj()
				if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup" {
					found = true
				}
				// errgroup.Group.Go / .Wait, if the module ever vendors it.
				if obj.Name() == "Group" && obj.Pkg() != nil && pathBase(obj.Pkg().Path()) == "errgroup" {
					found = true
				}
			}
		case *ast.Ident:
			if obj, ok := info.Uses[n].(*types.Var); ok && isContextType(obj.Type()) {
				found = true
			}
		}
		return !found
	})
	return found
}

// lockTypes are the sync types that must never be copied after first use.
var lockTypes = map[string]bool{
	"Mutex": true, "RWMutex": true, "WaitGroup": true, "Once": true,
	"Cond": true, "Pool": true, "Map": true,
}

// containsLock reports whether a value of type t holds a sync lock by
// value (directly, in a struct field, or in an array element).
func containsLock(t types.Type) bool {
	return containsLockRec(t, make(map[types.Type]bool))
}

func containsLockRec(t types.Type, seen map[types.Type]bool) bool {
	if seen[t] {
		return false
	}
	seen[t] = true
	if n, ok := t.(*types.Named); ok {
		obj := n.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && lockTypes[obj.Name()] {
			return true
		}
	}
	switch u := t.Underlying().(type) {
	case *types.Struct:
		for i := 0; i < u.NumFields(); i++ {
			if containsLockRec(u.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLockRec(u.Elem(), seen)
	}
	return false
}

// checkValueReceiver flags methods whose by-value receiver carries a lock.
func checkValueReceiver(ctx *Context, info *types.Info, fd *ast.FuncDecl) {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return
	}
	field := fd.Recv.List[0]
	tv, ok := info.Types[field.Type]
	if !ok || tv.Type == nil {
		return
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return
	}
	if containsLock(tv.Type) {
		ctx.Report(field.Pos(), "method %s passes its receiver %s by value, copying its lock; use a pointer receiver", fd.Name.Name, tv.Type)
	}
}

// copiesLockValue reports whether evaluating expr copies an existing
// lock-bearing value: the expression must denote storage (identifier,
// field, dereference, index) of a lock-containing non-pointer type.
// Composite literals and call results are fresh values, not copies.
func copiesLockValue(info *types.Info, expr ast.Expr) (types.Type, bool) {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return nil, false
	}
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return nil, false
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return nil, false
	}
	if !containsLock(tv.Type) {
		return nil, false
	}
	return tv.Type, true
}

func checkLockCopy(ctx *Context, info *types.Info, rhs ast.Expr, what string) {
	if t, bad := copiesLockValue(info, rhs); bad {
		ctx.Report(rhs.Pos(), "%s copies %s, which contains a sync lock; keep a pointer instead", what, t)
	}
}

// checkRangeLockCopy flags `for _, v := range xs` where v copies a
// lock-bearing element.
func checkRangeLockCopy(ctx *Context, info *types.Info, rng *ast.RangeStmt) {
	id, ok := rng.Value.(*ast.Ident)
	if !ok || id.Name == "_" {
		return
	}
	v, ok := info.Defs[id].(*types.Var)
	if !ok {
		return
	}
	if _, isPtr := v.Type().(*types.Pointer); isPtr {
		return
	}
	if containsLock(v.Type()) {
		ctx.Report(id.Pos(), "range value %s copies %s, which contains a sync lock; range over indices or pointers instead", id.Name, v.Type())
	}
}

// checkCallLockCopy flags call arguments that pass a lock-bearing value
// by value. Type conversions are not calls and stay silent.
func checkCallLockCopy(ctx *Context, info *types.Info, call *ast.CallExpr) {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return
	}
	for _, arg := range call.Args {
		if t, bad := copiesLockValue(info, arg); bad {
			ctx.Report(arg.Pos(), "call passes %s by value, copying its lock; pass a pointer instead", t)
		}
	}
}
