package analysis

import (
	"encoding/json"
	"io"
	"path/filepath"
	"strings"
)

// jsonFinding is one diagnostic in rpvet's -format=json output. File
// names are module-root-relative with forward slashes, so the output is
// stable across checkouts and usable as a machine interface for editors
// and CI annotators.
type jsonFinding struct {
	File    string    `json:"file"`
	Line    int       `json:"line"`
	Column  int       `json:"column"`
	Pass    string    `json:"pass"`
	Message string    `json:"message"`
	Fixes   []jsonFix `json:"fixes,omitempty"`
}

type jsonFix struct {
	Message string     `json:"message"`
	Edits   []jsonEdit `json:"edits"`
}

type jsonEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"newText"`
}

// WriteJSON renders the diagnostics as a single JSON document
// {"findings": [...]} and returns how many findings it wrote.
func WriteJSON(w io.Writer, root string, diags []Diagnostic) (int, error) {
	findings := make([]jsonFinding, 0, len(diags))
	for _, d := range diags {
		f := jsonFinding{
			File:    relPath(root, d.Pos.Filename),
			Line:    d.Pos.Line,
			Column:  d.Pos.Column,
			Pass:    d.Pass,
			Message: d.Msg,
		}
		for _, fix := range d.Fixes {
			jf := jsonFix{Message: fix.Message}
			for _, e := range fix.Edits {
				jf.Edits = append(jf.Edits, jsonEdit{
					File:    relPath(root, e.File),
					Start:   e.Start,
					End:     e.End,
					NewText: e.NewText,
				})
			}
			f.Fixes = append(f.Fixes, jf)
		}
		findings = append(findings, f)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(struct {
		Findings []jsonFinding `json:"findings"`
	}{findings}); err != nil {
		return 0, err
	}
	return len(diags), nil
}

// relPath relativizes abs against root when possible, with forward
// slashes; paths outside root stay absolute.
func relPath(root, abs string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, abs); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(abs)
}
