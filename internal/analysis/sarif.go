package analysis

import (
	"encoding/json"
	"fmt"
	"io"
)

// SARIF 2.1.0 writer. The subset emitted here is what GitHub code
// scanning consumes for inline PR annotations: one run, one rule per
// pass, one result per diagnostic with a physical location, and suggested
// fixes mapped to SARIF fix/artifactChange/replacement objects
// (deletedRegion in charOffset/charLength form, the byte-offset scheme
// our TextEdits already use). All URIs are module-root-relative with the
// conventional uriBaseId ROOT, so the document is checkout-independent
// and the golden test can pin it byte for byte.

const sarifSchema = "https://json.schemastore.org/sarif-2.1.0.json"

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name           string      `json:"name"`
	InformationURI string      `json:"informationUri"`
	Rules          []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifResult struct {
	RuleID    string          `json:"ruleId"`
	RuleIndex int             `json:"ruleIndex"`
	Level     string          `json:"level"`
	Message   sarifMessage    `json:"message"`
	Locations []sarifLocation `json:"locations"`
	Fixes     []sarifFix      `json:"fixes,omitempty"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysicalLocation `json:"physicalLocation"`
}

type sarifPhysicalLocation struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Region           sarifRegion           `json:"region"`
}

type sarifArtifactLocation struct {
	URI       string `json:"uri"`
	URIBaseID string `json:"uriBaseId"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

type sarifFix struct {
	Description     sarifMessage          `json:"description"`
	ArtifactChanges []sarifArtifactChange `json:"artifactChanges"`
}

type sarifArtifactChange struct {
	ArtifactLocation sarifArtifactLocation `json:"artifactLocation"`
	Replacements     []sarifReplacement    `json:"replacements"`
}

type sarifReplacement struct {
	DeletedRegion   sarifCharRegion `json:"deletedRegion"`
	InsertedContent sarifMessage    `json:"insertedContent"`
}

type sarifCharRegion struct {
	CharOffset int `json:"charOffset"`
	CharLength int `json:"charLength"`
}

// WriteSARIF renders the diagnostics as a SARIF 2.1.0 log for the given
// pass suite and returns how many results it wrote. passes supplies the
// rule table (every selected pass appears as a rule even when silent, so
// code scanning knows the full rule universe of the run).
func WriteSARIF(w io.Writer, root string, passes []*Pass, diags []Diagnostic) (int, error) {
	ruleIndex := make(map[string]int, len(passes))
	rules := make([]sarifRule, 0, len(passes))
	for i, p := range passes {
		ruleIndex[p.Name] = i
		rules = append(rules, sarifRule{
			ID:               p.Name,
			ShortDescription: sarifMessage{Text: p.Doc},
		})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		idx, ok := ruleIndex[d.Pass]
		if !ok {
			return 0, fmt.Errorf("analysis: diagnostic of pass %q not in the rule table", d.Pass)
		}
		res := sarifResult{
			RuleID:    d.Pass,
			RuleIndex: idx,
			Level:     "error",
			Message:   sarifMessage{Text: d.Msg},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysicalLocation{
					ArtifactLocation: sarifArtifactLocation{
						URI:       relPath(root, d.Pos.Filename),
						URIBaseID: "ROOT",
					},
					Region: sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column},
				},
			}},
		}
		for _, fix := range d.Fixes {
			sf := sarifFix{Description: sarifMessage{Text: fix.Message}}
			// Group this fix's edits per file into one artifactChange each.
			perFile := make(map[string]*sarifArtifactChange)
			var order []string
			for _, e := range fix.Edits {
				uri := relPath(root, e.File)
				ch, ok := perFile[uri]
				if !ok {
					ch = &sarifArtifactChange{
						ArtifactLocation: sarifArtifactLocation{URI: uri, URIBaseID: "ROOT"},
					}
					perFile[uri] = ch
					order = append(order, uri)
				}
				ch.Replacements = append(ch.Replacements, sarifReplacement{
					DeletedRegion:   sarifCharRegion{CharOffset: e.Start, CharLength: e.End - e.Start},
					InsertedContent: sarifMessage{Text: e.NewText},
				})
			}
			for _, uri := range order {
				sf.ArtifactChanges = append(sf.ArtifactChanges, *perFile[uri])
			}
			res.Fixes = append(res.Fixes, sf)
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  sarifSchema,
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "rpvet", InformationURI: "https://github.com/recurpat/rp", Rules: rules}},
			Results: results,
		}},
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(log); err != nil {
		return 0, err
	}
	return len(results), nil
}

// ValidateSARIF structurally checks a SARIF document produced by
// WriteSARIF (or anyone else claiming 2.1.0): version and schema, at
// least one run with a named driver, every result's ruleId resolving into
// the rule table with a matching ruleIndex, and every location carrying a
// relative URI and a positive start line. It is the safety net behind the
// golden test: the golden pins our bytes, this pins the invariants GitHub
// code scanning relies on.
func ValidateSARIF(data []byte) error {
	var log sarifLog
	if err := json.Unmarshal(data, &log); err != nil {
		return fmt.Errorf("sarif: not valid JSON: %w", err)
	}
	if log.Version != "2.1.0" {
		return fmt.Errorf("sarif: version %q, want 2.1.0", log.Version)
	}
	if len(log.Runs) == 0 {
		return fmt.Errorf("sarif: no runs")
	}
	for _, run := range log.Runs {
		if run.Tool.Driver.Name == "" {
			return fmt.Errorf("sarif: run has no tool.driver.name")
		}
		index := make(map[string]int, len(run.Tool.Driver.Rules))
		for i, r := range run.Tool.Driver.Rules {
			if r.ID == "" {
				return fmt.Errorf("sarif: rule %d has no id", i)
			}
			index[r.ID] = i
		}
		for i, res := range run.Results {
			want, ok := index[res.RuleID]
			if !ok {
				return fmt.Errorf("sarif: result %d references unknown rule %q", i, res.RuleID)
			}
			if res.RuleIndex != want {
				return fmt.Errorf("sarif: result %d ruleIndex %d, want %d", i, res.RuleIndex, want)
			}
			if res.Message.Text == "" {
				return fmt.Errorf("sarif: result %d has an empty message", i)
			}
			if len(res.Locations) == 0 {
				return fmt.Errorf("sarif: result %d has no locations", i)
			}
			for _, loc := range res.Locations {
				pl := loc.PhysicalLocation
				if pl.ArtifactLocation.URI == "" {
					return fmt.Errorf("sarif: result %d has an empty artifact URI", i)
				}
				if pl.Region.StartLine < 1 {
					return fmt.Errorf("sarif: result %d startLine %d < 1", i, pl.Region.StartLine)
				}
			}
		}
	}
	return nil
}
