package analysis

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestApplyFixesGolden applies every suggested fix the fixture module
// produces and pins the rewritten files byte for byte. Each file must
// parse and come out gofmt-clean (ApplyFixes errors otherwise).
func TestApplyFixesGolden(t *testing.T) {
	l, diags := loadFixture(t)
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	// The fixture carries exactly five fixes: three ctxflow rewrites and
	// two sortslice conversions; none of them conflict.
	if res.Applied != 5 || res.Skipped != 0 {
		t.Errorf("applied %d fixes, skipped %d; want 5 applied, 0 skipped", res.Applied, res.Skipped)
	}
	wantFiles := map[string]bool{
		"internal/core/ctxflow.go":   true,
		"internal/core/sortslice.go": true,
		"internal/core/sortonly.go":  true,
	}
	for file, content := range res.Files {
		rel := relPath(l.ModDir, file)
		if !wantFiles[rel] {
			t.Errorf("fixes touched unexpected file %s", rel)
			continue
		}
		delete(wantFiles, rel)
		goldenCompare(t, filepath.Join("testdata", "golden", "fixed", filepath.Base(rel)), content)
	}
	for rel := range wantFiles {
		t.Errorf("fixes did not touch %s", rel)
	}
}

// TestFixResultDiff checks the unified-diff rendering of the same fix
// set: a/ and b/ headers, hunks, and the import swap in sortonly.go.
func TestFixResultDiff(t *testing.T) {
	l, diags := loadFixture(t)
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := res.Diff(l.ModDir)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"--- a/internal/core/ctxflow.go",
		"+++ b/internal/core/ctxflow.go",
		"--- a/internal/core/sortonly.go",
		"-import \"sort\"",
		"+import \"slices\"",
		"+	slices.Sort(ids)",
		"+	return SearchContext(ctx, q)",
	} {
		if !strings.Contains(diff, want) {
			t.Errorf("diff is missing %q\n%s", want, diff)
		}
	}
}

// TestApplyFixesConflicts pins the engine's conflict policy: first writer
// wins in diagnostic order, identical edits deduplicate, overlapping ones
// skip the later fix.
func TestApplyFixesConflicts(t *testing.T) {
	dir := t.TempDir()
	file := filepath.Join(dir, "x.txt")
	if err := os.WriteFile(file, []byte("abcdef"), 0o644); err != nil {
		t.Fatal(err)
	}

	mkdiag := func(edits ...TextEdit) Diagnostic {
		return Diagnostic{Pass: "test", Fixes: []SuggestedFix{{Message: "m", Edits: edits}}}
	}
	diags := []Diagnostic{
		mkdiag(TextEdit{File: file, Start: 0, End: 2, NewText: "XY"}),  // wins
		mkdiag(TextEdit{File: file, Start: 1, End: 3, NewText: "ZZ"}),  // overlaps: skipped
		mkdiag(TextEdit{File: file, Start: 0, End: 2, NewText: "XY"}),  // identical: deduplicated, still applied
		mkdiag(TextEdit{File: file, Start: 4, End: 4, NewText: "-"}),   // insertion elsewhere: applied
		mkdiag(TextEdit{File: file, Start: 4, End: 4, NewText: "oth"}), // different insertion at same offset: skipped
	}
	res, err := ApplyFixes(diags)
	if err != nil {
		t.Fatal(err)
	}
	if res.Applied != 3 || res.Skipped != 2 {
		t.Errorf("applied %d, skipped %d; want 3 applied, 2 skipped", res.Applied, res.Skipped)
	}
	if got, want := string(res.Files[file]), "XYcd-ef"; got != want {
		t.Errorf("fixed content %q, want %q", got, want)
	}
}

// TestUnifiedDiff unit-tests the diff writer directly.
func TestUnifiedDiff(t *testing.T) {
	if d := unifiedDiff("a/f", "b/f", []byte("same\n"), []byte("same\n")); d != "" {
		t.Errorf("identical inputs produced a diff:\n%s", d)
	}
	old := []byte("one\ntwo\nthree\nfour\nfive\nsix\nseven\neight\nnine\n")
	new := []byte("one\ntwo\nthree\nFOUR\nfive\nsix\nseven\neight\nnine\n")
	d := unifiedDiff("a/f", "b/f", old, new)
	for _, want := range []string{
		"--- a/f\n",
		"+++ b/f\n",
		"@@ -1,7 +1,7 @@\n",
		"-four\n",
		"+FOUR\n",
		" three\n", // context line
	} {
		if !strings.Contains(d, want) {
			t.Errorf("diff is missing %q\n%s", want, d)
		}
	}
}
