// Package analysis is a from-scratch static-analysis driver for this
// repository, built only on the standard library (go/parser, go/ast,
// go/types, go/token, go/importer). It loads every package in the module,
// type-checks them, and runs a suite of repo-specific passes that guard the
// invariants the paper's evaluation depends on: deterministic canonical
// output, checked errors, the internal import DAG, and concurrency hygiene.
// cmd/rpvet is the command-line front end; scripts/check.sh wires it into
// the repo gate next to go vet and the race-enabled tests.
package analysis

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"slices"
	"strings"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	// PkgPath is the full import path.
	PkgPath string
	// Rel is the import path relative to the module root: "" for the root
	// package, "internal/core", "cmd/rpmine", ... The passes scope their
	// rules on Rel so they apply unchanged to fixture modules in tests.
	Rel string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks the packages of one module. Stdlib imports
// are resolved through go/importer's source importer; module-internal
// imports are resolved recursively by the loader itself, so no toolchain
// export data or third-party package driver is needed.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModDir  string

	std     types.Importer
	pkgs    map[string]*Package
	loading map[string]bool
}

// NewLoader prepares a loader for the module rooted at modDir (the
// directory holding go.mod).
func NewLoader(modDir string) (*Loader, error) {
	abs, err := filepath.Abs(modDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModDir:  abs,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		loading: make(map[string]bool),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// a go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// LoadAll loads every package of the module: each directory under the
// module root that contains non-test .go files. testdata and hidden
// directories are skipped, as the go tool does.
func (l *Loader) LoadAll() ([]*Package, error) {
	var dirs []string
	err := filepath.WalkDir(l.ModDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != l.ModDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		// A nested module is its own analysis unit, not part of this one.
		if path != l.ModDir {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return l.LoadDirs(dirs)
}

// LoadDirs loads the packages in the given directories, which must sit
// inside the module. The result is sorted by import path.
func (l *Loader) LoadDirs(dirs []string) ([]*Package, error) {
	var out []*Package
	for _, dir := range dirs {
		abs, err := filepath.Abs(dir)
		if err != nil {
			return nil, err
		}
		rel, err := filepath.Rel(l.ModDir, abs)
		if err != nil || strings.HasPrefix(rel, "..") {
			return nil, fmt.Errorf("analysis: %s is outside module %s", dir, l.ModDir)
		}
		pkgPath := l.ModPath
		if rel != "." {
			pkgPath = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		p, err := l.load(pkgPath)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	slices.SortFunc(out, func(a, b *Package) int { return cmp.Compare(a.PkgPath, b.PkgPath) })
	return out, nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Import implements types.Importer: module-internal paths are loaded from
// source by the loader itself, everything else (the standard library) is
// delegated to the source importer.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.Import(path)
}

// load parses and type-checks one module-internal package, memoized.
func (l *Loader) load(pkgPath string) (*Package, error) {
	if p, ok := l.pkgs[pkgPath]; ok {
		return p, nil
	}
	if l.loading[pkgPath] {
		return nil, fmt.Errorf("analysis: import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, l.ModPath), "/")
	dir := filepath.Join(l.ModDir, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", pkgPath, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	slices.Sort(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: type-checking %s: %w", pkgPath, err)
	}
	p := &Package{
		PkgPath: pkgPath,
		Rel:     rel,
		Dir:     dir,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.pkgs[pkgPath] = p
	return p, nil
}
