// Package analysis is a from-scratch static-analysis driver for this
// repository, built only on the standard library (go/parser, go/ast,
// go/types, go/token, go/importer). It loads every package in the module,
// type-checks them, and runs a suite of repo-specific passes that guard the
// invariants the paper's evaluation depends on: deterministic canonical
// output, checked errors, the internal import DAG, context threading, and
// concurrency hygiene. cmd/rpvet is the command-line front end;
// scripts/check.sh wires it into the repo gate next to go vet and the
// race-enabled tests.
package analysis

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"slices"
	"strconv"
	"strings"
	"sync"
)

// Package is one loaded, type-checked package of the module under analysis.
type Package struct {
	// PkgPath is the full import path.
	PkgPath string
	// Rel is the import path relative to the module root: "" for the root
	// package, "internal/core", "cmd/rpmine", ... The passes scope their
	// rules on Rel so they apply unchanged to fixture modules in tests.
	Rel string
	// Dir is the absolute directory the package was loaded from.
	Dir   string
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader loads and type-checks the packages of one module. Stdlib imports
// are resolved through go/importer's source importer; module-internal
// imports are resolved by the loader itself, so no toolchain export data
// or third-party package driver is needed.
//
// Loading happens in two phases: the requested directories and their
// module-internal import closure are parsed (cheap), the import graph is
// topologically ordered, and then packages type-check generation by
// generation — every package of one generation depends only on earlier
// generations, so the packages within a generation can check concurrently.
// Workers bounds that concurrency; 1 reproduces the strictly sequential
// topological order. Either way the resulting type information is
// identical, which is what lets the driver promise byte-identical output
// regardless of parallelism.
type Loader struct {
	Fset    *token.FileSet
	ModPath string
	ModDir  string
	// Workers bounds how many packages type-check concurrently. Zero or
	// negative means GOMAXPROCS.
	Workers int

	std   types.Importer
	stdMu sync.Mutex // the source importer is not safe for concurrent use

	mu    sync.Mutex
	pkgs  map[string]*Package
	nodes map[string]*loadNode
}

// loadNode is one parsed-but-not-yet-type-checked package of the closure.
type loadNode struct {
	pkgPath string
	rel     string
	dir     string
	files   []*ast.File
	imports []string // module-internal import paths, sorted
}

// NewLoader prepares a loader for the module rooted at modDir (the
// directory holding go.mod).
func NewLoader(modDir string) (*Loader, error) {
	abs, err := filepath.Abs(modDir)
	if err != nil {
		return nil, err
	}
	modPath, err := modulePath(filepath.Join(abs, "go.mod"))
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModDir:  abs,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Package),
		nodes:   make(map[string]*loadNode),
	}, nil
}

// modulePath extracts the module path from a go.mod file.
func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", fmt.Errorf("analysis: reading %s: %w", gomod, err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.Trim(strings.TrimSpace(rest), `"`), nil
		}
	}
	return "", fmt.Errorf("analysis: no module directive in %s", gomod)
}

// FindModuleRoot walks upward from dir to the nearest directory containing
// a go.mod.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("analysis: no go.mod found above %s", dir)
		}
		abs = parent
	}
}

// ModuleDirs lists every package directory of the module rooted at modDir:
// each directory containing non-test .go files. testdata, hidden and
// underscore directories are skipped, as the go tool does, and a nested
// go.mod starts a different module that is its own analysis unit.
func ModuleDirs(modDir string) ([]string, error) {
	var dirs []string
	err := filepath.WalkDir(modDir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != modDir && (name == "testdata" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if path != modDir {
			if _, err := os.Stat(filepath.Join(path, "go.mod")); err == nil {
				return filepath.SkipDir
			}
		}
		if hasGoFiles(path) {
			dirs = append(dirs, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return dirs, nil
}

// LoadAll loads every package of the module.
func (l *Loader) LoadAll() ([]*Package, error) {
	dirs, err := ModuleDirs(l.ModDir)
	if err != nil {
		return nil, err
	}
	return l.LoadDirs(dirs)
}

// LoadDirs loads the packages in the given directories, which must sit
// inside the module, plus their module-internal import closure. The result
// holds only the requested packages, sorted by import path.
func (l *Loader) LoadDirs(dirs []string) ([]*Package, error) {
	var roots []string
	for _, dir := range dirs {
		pkgPath, err := l.dirToPkgPath(dir)
		if err != nil {
			return nil, err
		}
		roots = append(roots, pkgPath)
	}
	if err := l.loadClosure(roots); err != nil {
		return nil, err
	}
	var out []*Package
	seen := make(map[string]bool)
	l.mu.Lock()
	for _, pkgPath := range roots {
		if !seen[pkgPath] {
			seen[pkgPath] = true
			out = append(out, l.pkgs[pkgPath])
		}
	}
	l.mu.Unlock()
	slices.SortFunc(out, func(a, b *Package) int { return cmp.Compare(a.PkgPath, b.PkgPath) })
	return out, nil
}

// dirToPkgPath maps a directory inside the module to its import path.
func (l *Loader) dirToPkgPath(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	rel, err := filepath.Rel(l.ModDir, abs)
	if err != nil || strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("analysis: %s is outside module %s", dir, l.ModDir)
	}
	if rel == "." {
		return l.ModPath, nil
	}
	return l.ModPath + "/" + filepath.ToSlash(rel), nil
}

// loadClosure parses roots and their module-internal import closure,
// orders the graph, and type-checks every package not yet checked.
func (l *Loader) loadClosure(roots []string) error {
	// Phase 1: parse the closure breadth-first. Parsing is cheap compared
	// to type-checking, so this phase stays sequential and deterministic.
	queue := slices.Clone(roots)
	var closure []*loadNode
	enqueued := make(map[string]bool)
	for _, p := range queue {
		enqueued[p] = true
	}
	for len(queue) > 0 {
		pkgPath := queue[0]
		queue = queue[1:]
		l.mu.Lock()
		if _, done := l.pkgs[pkgPath]; done {
			l.mu.Unlock()
			continue
		}
		n, ok := l.nodes[pkgPath]
		l.mu.Unlock()
		if !ok {
			var err error
			n, err = l.parseNode(pkgPath)
			if err != nil {
				return err
			}
			l.mu.Lock()
			l.nodes[pkgPath] = n
			l.mu.Unlock()
		}
		closure = append(closure, n)
		for _, imp := range n.imports {
			if !enqueued[imp] {
				enqueued[imp] = true
				queue = append(queue, imp)
			}
		}
	}
	if len(closure) == 0 {
		return nil
	}

	// Phase 2: topological generations. Generation k holds the packages
	// whose unchecked dependencies all sit in generations < k; packages
	// within one generation are independent and may check concurrently.
	gens, err := l.generations(closure)
	if err != nil {
		return err
	}

	// Phase 3: type-check generation by generation.
	workers := l.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	for _, gen := range gens {
		if workers == 1 || len(gen) == 1 {
			for _, n := range gen {
				if err := l.check(n); err != nil {
					return err
				}
			}
			continue
		}
		sem := make(chan struct{}, workers)
		errs := make([]error, len(gen))
		var wg sync.WaitGroup
		for i, n := range gen {
			wg.Add(1)
			sem <- struct{}{}
			go func(i int, n *loadNode) {
				defer wg.Done()
				defer func() { <-sem }()
				errs[i] = l.check(n)
			}(i, n)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// generations orders the unchecked closure into dependency generations and
// reports import cycles.
func (l *Loader) generations(closure []*loadNode) ([][]*loadNode, error) {
	pending := make(map[string]int, len(closure))
	inClosure := make(map[string]*loadNode, len(closure))
	for _, n := range closure {
		inClosure[n.pkgPath] = n
	}
	for _, n := range closure {
		for _, imp := range n.imports {
			if _, ok := inClosure[imp]; ok {
				pending[n.pkgPath]++
			}
		}
	}
	dependents := make(map[string][]*loadNode)
	for _, n := range closure {
		for _, imp := range n.imports {
			if _, ok := inClosure[imp]; ok {
				dependents[imp] = append(dependents[imp], n)
			}
		}
	}
	var gens [][]*loadNode
	current := make([]*loadNode, 0, len(closure))
	for _, n := range closure {
		if pending[n.pkgPath] == 0 {
			current = append(current, n)
		}
	}
	placed := 0
	for len(current) > 0 {
		slices.SortFunc(current, func(a, b *loadNode) int { return cmp.Compare(a.pkgPath, b.pkgPath) })
		gens = append(gens, current)
		placed += len(current)
		var next []*loadNode
		for _, n := range current {
			for _, d := range dependents[n.pkgPath] {
				pending[d.pkgPath]--
				if pending[d.pkgPath] == 0 {
					next = append(next, d)
				}
			}
		}
		current = next
	}
	if placed != len(closure) {
		var stuck []string
		for _, n := range closure {
			if pending[n.pkgPath] > 0 {
				stuck = append(stuck, n.pkgPath)
			}
		}
		slices.Sort(stuck)
		return nil, fmt.Errorf("analysis: import cycle through %s", strings.Join(stuck, ", "))
	}
	return gens, nil
}

// parseNode reads and parses one package directory.
func (l *Loader) parseNode(pkgPath string) (*loadNode, error) {
	rel := strings.TrimPrefix(strings.TrimPrefix(pkgPath, l.ModPath), "/")
	dir := filepath.Join(l.ModDir, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", pkgPath, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		if !fileSelected(dir, name) {
			continue
		}
		names = append(names, name)
	}
	slices.Sort(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	n := &loadNode{pkgPath: pkgPath, rel: rel, dir: dir}
	seen := make(map[string]bool)
	for _, name := range names {
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		n.files = append(n.files, f)
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if (path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/")) && !seen[path] {
				seen[path] = true
				n.imports = append(n.imports, path)
			}
		}
	}
	slices.Sort(n.imports)
	return n, nil
}

// fileSelected reports whether a Go file belongs to the host platform's
// build: its //go:build constraint (if any) and GOOS/GOARCH filename
// suffixes must be satisfied for runtime.GOOS/GOARCH. The loader
// type-checks exactly one platform's file set — the host's — so
// tag-disjoint platform shims (mmap_unix.go / mmap_other.go and the like)
// do not collide as redeclarations.
func fileSelected(dir, name string) bool {
	if !filenameSelected(name) {
		return false
	}
	data, err := os.ReadFile(filepath.Join(dir, name))
	if err != nil {
		return true // let ParseFile report the real error
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" || strings.HasPrefix(line, "//") {
			if expr, err := constraint.Parse(line); err == nil {
				return expr.Eval(hostTagSatisfied)
			}
			continue
		}
		break // package clause: the constraint block is over
	}
	return true
}

// unixGOOS mirrors the GOOS values matched by the "unix" build tag.
var unixGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"linux": true, "netbsd": true, "openbsd": true, "solaris": true,
}

// knownGOOS/knownGOARCH drive filename-suffix constraint detection: a
// final _<token> only constrains the build when the token is a real
// platform name ("mmap_unix.go" is unconstrained, "x_linux.go" is not).
var knownGOOS = map[string]bool{
	"aix": true, "android": true, "darwin": true, "dragonfly": true,
	"freebsd": true, "hurd": true, "illumos": true, "ios": true,
	"js": true, "linux": true, "netbsd": true, "openbsd": true,
	"plan9": true, "solaris": true, "wasip1": true, "windows": true,
}

var knownGOARCH = map[string]bool{
	"386": true, "amd64": true, "arm": true, "arm64": true,
	"loong64": true, "mips": true, "mips64": true, "mips64le": true,
	"mipsle": true, "ppc64": true, "ppc64le": true, "riscv64": true,
	"s390x": true, "wasm": true,
}

// hostTagSatisfied evaluates one build tag against the host platform,
// matching the cmd/go semantics this repository relies on.
func hostTagSatisfied(tag string) bool {
	switch {
	case tag == runtime.GOOS || tag == runtime.GOARCH:
		return true
	case tag == "unix":
		return unixGOOS[runtime.GOOS]
	case tag == "gc":
		return true
	case strings.HasPrefix(tag, "go1"):
		return true // release tags: the loader runs on the current toolchain
	}
	return false
}

// filenameSelected applies the _GOOS, _GOARCH and _GOOS_GOARCH filename
// conventions.
func filenameSelected(name string) bool {
	base := strings.TrimSuffix(name, ".go")
	parts := strings.Split(base, "_")
	// Trailing _test was already filtered; walk at most the last two
	// tokens: ..._GOOS_GOARCH.go, ..._GOOS.go or ..._GOARCH.go.
	if len(parts) >= 3 && knownGOOS[parts[len(parts)-2]] && knownGOARCH[parts[len(parts)-1]] {
		return parts[len(parts)-2] == runtime.GOOS && parts[len(parts)-1] == runtime.GOARCH
	}
	if len(parts) >= 2 {
		last := parts[len(parts)-1]
		if knownGOOS[last] {
			return last == runtime.GOOS
		}
		if knownGOARCH[last] {
			return last == runtime.GOARCH
		}
	}
	return true
}

// check type-checks one parsed package; its module-internal dependencies
// must already be checked (the generation order guarantees it).
func (l *Loader) check(n *loadNode) error {
	l.mu.Lock()
	if _, done := l.pkgs[n.pkgPath]; done {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(n.pkgPath, l.Fset, n.files, info)
	if err != nil {
		return fmt.Errorf("analysis: type-checking %s: %w", n.pkgPath, err)
	}
	p := &Package{
		PkgPath: n.pkgPath,
		Rel:     n.rel,
		Dir:     n.dir,
		Files:   n.files,
		Types:   tpkg,
		Info:    info,
	}
	l.mu.Lock()
	l.pkgs[n.pkgPath] = p
	l.mu.Unlock()
	return nil
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		name := e.Name()
		if !e.IsDir() && strings.HasSuffix(name, ".go") && !strings.HasSuffix(name, "_test.go") {
			return true
		}
	}
	return false
}

// Import implements types.Importer: module-internal paths resolve to the
// already-checked packages of the closure; everything else (the standard
// library) is delegated to the source importer, serialized because that
// importer keeps unguarded internal state.
func (l *Loader) Import(path string) (*types.Package, error) {
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		l.mu.Lock()
		p := l.pkgs[path]
		l.mu.Unlock()
		if p == nil {
			return nil, fmt.Errorf("analysis: internal import %s not in load closure", path)
		}
		return p.Types, nil
	}
	l.stdMu.Lock()
	defer l.stdMu.Unlock()
	return l.std.Import(path)
}
