package analysis

import (
	"fmt"
	"strings"
)

// unifiedDiff renders a unified diff (3 context lines) between two byte
// slices. Equal inputs yield the empty string. The implementation is a
// plain longest-common-subsequence table over lines — quadratic, which is
// fine for the source files rpvet rewrites.
func unifiedDiff(aName, bName string, a, b []byte) string {
	if string(a) == string(b) {
		return ""
	}
	al := splitLines(string(a))
	bl := splitLines(string(b))

	// LCS table.
	n, m := len(al), len(bl)
	lcs := make([][]int32, n+1)
	for i := range lcs {
		lcs[i] = make([]int32, m+1)
	}
	for i := n - 1; i >= 0; i-- {
		for j := m - 1; j >= 0; j-- {
			if al[i] == bl[j] {
				lcs[i][j] = lcs[i+1][j+1] + 1
			} else {
				lcs[i][j] = max(lcs[i+1][j], lcs[i][j+1])
			}
		}
	}

	// Walk the table into an edit script of (op, aLine, bLine).
	type edit struct {
		op   byte // ' ', '-', '+'
		text string
	}
	var script []edit
	i, j := 0, 0
	for i < n && j < m {
		switch {
		case al[i] == bl[j]:
			script = append(script, edit{' ', al[i]})
			i++
			j++
		case lcs[i+1][j] >= lcs[i][j+1]:
			script = append(script, edit{'-', al[i]})
			i++
		default:
			script = append(script, edit{'+', bl[j]})
			j++
		}
	}
	for ; i < n; i++ {
		script = append(script, edit{'-', al[i]})
	}
	for ; j < m; j++ {
		script = append(script, edit{'+', bl[j]})
	}

	// Group changes into hunks with 3 lines of context, merging hunks
	// whose context would touch.
	const context = 3
	var sb strings.Builder
	fmt.Fprintf(&sb, "--- %s\n+++ %s\n", aName, bName)
	aLine, bLine := 1, 1
	k := 0
	for k < len(script) {
		// Skip unchanged region, remembering where the next change is.
		start := k
		for k < len(script) && script[k].op == ' ' {
			k++
		}
		if k == len(script) {
			break
		}
		// Hunk starts up to `context` lines before the change.
		hunkStart := k - context
		if hunkStart < start {
			hunkStart = start
		}
		// Advance aLine/bLine over the skipped prefix.
		for idx := start; idx < hunkStart; idx++ {
			aLine++
			bLine++
		}
		// Extend the hunk: include runs of changes separated by at most
		// 2*context equal lines.
		hunkEnd := k
		for {
			for hunkEnd < len(script) && script[hunkEnd].op != ' ' {
				hunkEnd++
			}
			gap := 0
			probe := hunkEnd
			for probe < len(script) && script[probe].op == ' ' && gap <= 2*context {
				probe++
				gap++
			}
			if probe < len(script) && script[probe].op != ' ' && gap <= 2*context {
				hunkEnd = probe
				continue
			}
			break
		}
		tail := hunkEnd + context
		if tail > len(script) {
			tail = len(script)
		}
		// Only equal lines may pad the tail.
		for hunkEnd < tail && script[hunkEnd].op == ' ' {
			hunkEnd++
		}

		// Count hunk extents.
		aStart, bStart := aLine, bLine
		aCount, bCount := 0, 0
		for idx := hunkStart; idx < hunkEnd; idx++ {
			switch script[idx].op {
			case ' ':
				aCount++
				bCount++
			case '-':
				aCount++
			case '+':
				bCount++
			}
		}
		fmt.Fprintf(&sb, "@@ -%s +%s @@\n", hunkRange(aStart, aCount), hunkRange(bStart, bCount))
		for idx := hunkStart; idx < hunkEnd; idx++ {
			e := script[idx]
			sb.WriteByte(e.op)
			sb.WriteString(e.text)
			sb.WriteByte('\n')
			switch e.op {
			case ' ':
				aLine++
				bLine++
			case '-':
				aLine++
			case '+':
				bLine++
			}
		}
		k = hunkEnd
	}
	return sb.String()
}

// hunkRange renders a unified-diff range, eliding ",1" as diff does.
func hunkRange(start, count int) string {
	if count == 1 {
		return fmt.Sprintf("%d", start)
	}
	if count == 0 && start > 0 {
		start--
	}
	return fmt.Sprintf("%d,%d", start, count)
}

// splitLines splits on newlines without keeping them; a trailing newline
// does not produce a final empty line.
func splitLines(s string) []string {
	if s == "" {
		return nil
	}
	s = strings.TrimSuffix(s, "\n")
	return strings.Split(s, "\n")
}
