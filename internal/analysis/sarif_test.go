package analysis

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goldenCompare checks got against the golden file, rewriting it under
// -update.
func goldenCompare(t *testing.T, golden string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("reading golden file (run with -update to create it): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output differs from %s\n--- got ---\n%s--- want ---\n%s", golden, got, want)
	}
}

// TestSARIFGolden pins the SARIF document for the fixture module byte for
// byte and cross-checks it against the structural validator.
func TestSARIFGolden(t *testing.T) {
	l, diags := loadFixture(t)
	var buf bytes.Buffer
	n, err := WriteSARIF(&buf, l.ModDir, Passes(), diags)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(diags) {
		t.Errorf("WriteSARIF reported %d results, want %d", n, len(diags))
	}
	if err := ValidateSARIF(buf.Bytes()); err != nil {
		t.Errorf("generated SARIF fails validation: %v", err)
	}
	goldenCompare(t, filepath.Join("testdata", "golden", "sarif.json"), buf.Bytes())
}

// TestJSONGolden pins the -format=json document the same way.
func TestJSONGolden(t *testing.T) {
	l, diags := loadFixture(t)
	var buf bytes.Buffer
	n, err := WriteJSON(&buf, l.ModDir, diags)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(diags) {
		t.Errorf("WriteJSON reported %d findings, want %d", n, len(diags))
	}
	goldenCompare(t, filepath.Join("testdata", "golden", "findings.json"), buf.Bytes())
}

// TestWriteSARIFUnknownPass: a diagnostic whose pass is missing from the
// rule table must be an error, never a dangling ruleIndex.
func TestWriteSARIFUnknownPass(t *testing.T) {
	diags := []Diagnostic{{Pass: "no-such-pass", Msg: "x"}}
	var buf bytes.Buffer
	if _, err := WriteSARIF(&buf, "", Passes(), diags); err == nil {
		t.Error("WriteSARIF accepted a diagnostic outside the rule table")
	}
}

// TestValidateSARIFRejects exercises the validator on documents breaking
// each invariant it guards.
func TestValidateSARIFRejects(t *testing.T) {
	valid := func() string {
		l, diags := loadFixture(t)
		var buf bytes.Buffer
		if _, err := WriteSARIF(&buf, l.ModDir, Passes(), diags); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}()

	cases := []struct {
		name    string
		mutate  func(string) string
		wantErr string
	}{
		{"not json", func(s string) string { return s[:len(s)/2] }, "not valid JSON"},
		{"wrong version", func(s string) string {
			return strings.Replace(s, `"version": "2.1.0"`, `"version": "9.9"`, 1)
		}, "want 2.1.0"},
		{"unknown rule", func(s string) string {
			return strings.Replace(s, `"ruleId": "ctxflow"`, `"ruleId": "bogus"`, 1)
		}, "unknown rule"},
		{"ruleIndex mismatch", func(s string) string {
			return strings.Replace(s, `"ruleIndex": 5`, `"ruleIndex": 3`, 1)
		}, "ruleIndex"},
		{"bad start line", func(s string) string {
			return strings.Replace(s, `"startLine": 23`, `"startLine": 0`, 1)
		}, "startLine"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			doc := c.mutate(valid)
			if doc == valid {
				t.Fatal("mutation did not change the document; the case tests nothing")
			}
			err := ValidateSARIF([]byte(doc))
			if err == nil {
				t.Fatal("validator accepted a broken document")
			}
			if !strings.Contains(err.Error(), c.wantErr) {
				t.Errorf("error %q does not mention %q", err, c.wantErr)
			}
		})
	}
}
