package analysis

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"slices"
	"strconv"
	"strings"
)

// cacheKeyVersion is baked into every key; bump it when the on-disk entry
// format (not a pass) changes, so old cache directories invalidate wholesale.
const cacheKeyVersion = "rpvet cache v1"

// Cache is the on-disk result cache under <module>/.rpvetcache. Entries
// are content-addressed: the file name is the hex SHA-256 of the cache key
// (see Key), so a hit is a plain stat+read and invalidation is automatic —
// any change to a pass version or to any file of the package's
// module-internal import closure produces a different key, and the stale
// entry is simply never looked up again.
type Cache struct {
	dir  string
	root string // module root, for relativizing file names in entries
}

// OpenCache opens (creating if needed) a cache directory. root is the
// module root the cached diagnostics' file names are relative to.
func OpenCache(dir, root string) (*Cache, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("analysis: opening cache: %w", err)
	}
	return &Cache{dir: dir, root: root}, nil
}

// Key computes the cache key for one pass over one package. closure is
// the package's module-internal import closure (itself included) as
// produced by scanner.closure: the key covers every file's content hash,
// so a change anywhere the pass could see through type information misses.
func (c *Cache) Key(modPath string, pass *Pass, closure []*scanPkg) string {
	h := sha256.New()
	fmt.Fprintf(h, "%s\nmod %s\npass %s@%d\n", cacheKeyVersion, modPath, pass.Name, pass.Version) //rpvet:allow errcheck — hash.Hash.Write never returns an error
	for _, p := range closure {
		for _, f := range p.files {
			fmt.Fprintf(h, "file %s %s\n", f.rel, f.hash) //rpvet:allow errcheck — hash.Hash.Write never returns an error
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}

// cacheEntry is the JSON payload of one cache file.
type cacheEntry struct {
	Pass        string       `json:"pass"`
	Package     string       `json:"package"`
	Diagnostics []cachedDiag `json:"diagnostics"`
}

type cachedDiag struct {
	File   string      `json:"file"` // module-root-relative, slash-separated
	Line   int         `json:"line"`
	Column int         `json:"column"`
	Offset int         `json:"offset"`
	Msg    string      `json:"message"`
	Fixes  []cachedFix `json:"fixes,omitempty"`
}

type cachedFix struct {
	Message string       `json:"message"`
	Edits   []cachedEdit `json:"edits"`
}

type cachedEdit struct {
	File    string `json:"file"`
	Start   int    `json:"start"`
	End     int    `json:"end"`
	NewText string `json:"newText"`
}

// Get loads the diagnostics cached under key, reporting ok=false on any
// miss or undecodable entry (which is then treated as a miss and
// overwritten by the next Put).
func (c *Cache) Get(key string) ([]Diagnostic, bool) {
	data, err := os.ReadFile(filepath.Join(c.dir, key+".json"))
	if err != nil {
		return nil, false
	}
	var ent cacheEntry
	if err := json.Unmarshal(data, &ent); err != nil {
		return nil, false
	}
	diags := make([]Diagnostic, 0, len(ent.Diagnostics))
	for _, cd := range ent.Diagnostics {
		d := Diagnostic{
			Pos: token.Position{
				Filename: filepath.Join(c.root, filepath.FromSlash(cd.File)),
				Line:     cd.Line,
				Column:   cd.Column,
				Offset:   cd.Offset,
			},
			Pass: ent.Pass,
			Msg:  cd.Msg,
		}
		for _, cf := range cd.Fixes {
			fix := SuggestedFix{Message: cf.Message}
			for _, e := range cf.Edits {
				fix.Edits = append(fix.Edits, TextEdit{
					File:    filepath.Join(c.root, filepath.FromSlash(e.File)),
					Start:   e.Start,
					End:     e.End,
					NewText: e.NewText,
				})
			}
			d.Fixes = append(d.Fixes, fix)
		}
		diags = append(diags, d)
	}
	return diags, true
}

// Put stores the diagnostics of one (package, pass) run under key,
// atomically (write-to-temp then rename), so a crashed or concurrent run
// never leaves a truncated entry.
func (c *Cache) Put(key, passName, pkgRel string, diags []Diagnostic) error {
	ent := cacheEntry{Pass: passName, Package: pkgRel, Diagnostics: []cachedDiag{}}
	for _, d := range diags {
		cd := cachedDiag{
			File:   c.relFile(d.Pos.Filename),
			Line:   d.Pos.Line,
			Column: d.Pos.Column,
			Offset: d.Pos.Offset,
			Msg:    d.Msg,
		}
		for _, f := range d.Fixes {
			cf := cachedFix{Message: f.Message}
			for _, e := range f.Edits {
				cf.Edits = append(cf.Edits, cachedEdit{
					File:    c.relFile(e.File),
					Start:   e.Start,
					End:     e.End,
					NewText: e.NewText,
				})
			}
			cd.Fixes = append(cd.Fixes, cf)
		}
		ent.Diagnostics = append(ent.Diagnostics, cd)
	}
	data, err := json.Marshal(ent)
	if err != nil {
		return err
	}
	tmp, err := os.CreateTemp(c.dir, "tmp-*")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()           //rpvet:allow errcheck — the write error is what matters
		os.Remove(tmp.Name()) //rpvet:allow errcheck — best-effort cleanup
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name()) //rpvet:allow errcheck — best-effort cleanup
		return err
	}
	return os.Rename(tmp.Name(), filepath.Join(c.dir, key+".json"))
}

func (c *Cache) relFile(abs string) string {
	if rel, err := filepath.Rel(c.root, abs); err == nil && !strings.HasPrefix(rel, "..") {
		return filepath.ToSlash(rel)
	}
	return filepath.ToSlash(abs)
}

// scanFile is one hashed source file of a scanned package.
type scanFile struct {
	rel  string // module-root-relative, slash-separated
	hash string // hex SHA-256 of the content
}

// scanPkg is the cheap, type-check-free view of one package the cache
// keys are computed from: its hashed files and its module-internal
// imports (parsed in ImportsOnly mode).
type scanPkg struct {
	rel     string
	dir     string
	files   []scanFile
	imports []string // module-root-relative package paths, sorted
}

// scanner walks package metadata without type-checking, so a fully warm
// cache run never pays for go/types at all.
type scanner struct {
	modDir  string
	modPath string
	pkgs    map[string]*scanPkg
}

func newScanner(modDir, modPath string) *scanner {
	return &scanner{modDir: modDir, modPath: modPath, pkgs: make(map[string]*scanPkg)}
}

// scan reads, hashes and import-scans one package directory, memoized on
// the module-relative package path ("" is the root package).
func (s *scanner) scan(rel string) (*scanPkg, error) {
	if p, ok := s.pkgs[rel]; ok {
		return p, nil
	}
	dir := filepath.Join(s.modDir, filepath.FromSlash(rel))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("analysis: scanning %s: %w", dir, err)
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		names = append(names, name)
	}
	slices.Sort(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("analysis: no Go files in %s", dir)
	}
	p := &scanPkg{rel: rel, dir: dir}
	fset := token.NewFileSet()
	seen := make(map[string]bool)
	for _, name := range names {
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		sum := sha256.Sum256(data)
		frel := name
		if rel != "" {
			frel = rel + "/" + name
		}
		p.files = append(p.files, scanFile{rel: frel, hash: hex.EncodeToString(sum[:])})
		f, err := parser.ParseFile(fset, name, data, parser.ImportsOnly)
		if err != nil {
			return nil, err
		}
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if path == s.modPath || strings.HasPrefix(path, s.modPath+"/") {
				irel := strings.TrimPrefix(strings.TrimPrefix(path, s.modPath), "/")
				if !seen[irel] {
					seen[irel] = true
					p.imports = append(p.imports, irel)
				}
			}
		}
	}
	slices.Sort(p.imports)
	s.pkgs[rel] = p
	return p, nil
}

// closure returns rel's module-internal import closure (rel included),
// sorted by package path so the cache key is order-independent.
func (s *scanner) closure(rel string) ([]*scanPkg, error) {
	var out []*scanPkg
	seen := map[string]bool{rel: true}
	queue := []string{rel}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		p, err := s.scan(cur)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
		for _, imp := range p.imports {
			if !seen[imp] {
				seen[imp] = true
				queue = append(queue, imp)
			}
		}
	}
	slices.SortFunc(out, func(a, b *scanPkg) int {
		if a.rel < b.rel {
			return -1
		}
		if a.rel > b.rel {
			return 1
		}
		return 0
	})
	return out, nil
}
