package analysis

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"slices"
	"strings"
)

// Diagnostic is one finding of one pass.
type Diagnostic struct {
	Pos  token.Position
	Pass string
	Msg  string
}

// String renders the finding as "file:line:col: pass: message" with the
// file path relative to root (when possible), the format the golden tests
// and scripts/check.sh consume.
func (d Diagnostic) String(root string) string {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", file, d.Pos.Line, d.Pos.Column, d.Pass, d.Msg)
}

// Pass is one analysis over a single package.
type Pass struct {
	// Name is the identifier used in output and in //rpvet:allow directives.
	Name string
	// Doc is a one-line description shown by rpvet -list.
	Doc string
	// Run inspects one package and reports findings through ctx.Report.
	Run func(ctx *Context)
}

// Context hands one package to a pass and collects its findings.
type Context struct {
	Loader *Loader
	Pkg    *Package

	pass string
	out  *[]Diagnostic
}

// Report records a finding at pos.
func (ctx *Context) Report(pos token.Pos, format string, args ...any) {
	*ctx.out = append(*ctx.out, Diagnostic{
		Pos:  ctx.Loader.Fset.Position(pos),
		Pass: ctx.pass,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// Passes returns the full suite in its fixed running order.
func Passes() []*Pass {
	return []*Pass{
		DeterminismPass(),
		ErrcheckPass(),
		LayeringPass(),
		ConcurrencyPass(),
		SortSlicePass(),
	}
}

// PassByName looks a pass up by its directive name.
func PassByName(name string) *Pass {
	for _, p := range Passes() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Run applies the passes to the packages, drops findings suppressed by
// //rpvet:allow directives, and returns the rest sorted by position.
func Run(l *Loader, pkgs []*Package, passes []*Pass) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, pass := range passes {
			ctx := &Context{Loader: l, Pkg: pkg, pass: pass.Name, out: &diags}
			pass.Run(ctx)
		}
	}
	diags = filterAllowed(l, pkgs, diags)
	slices.SortFunc(diags, func(a, b Diagnostic) int {
		if a.Pos.Filename != b.Pos.Filename {
			return cmp.Compare(a.Pos.Filename, b.Pos.Filename)
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line - b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column - b.Pos.Column
		}
		return cmp.Compare(a.Pass, b.Pass)
	})
	return diags
}

// Print writes the diagnostics one per line and returns how many there
// were, so callers can turn findings into a non-zero exit.
func Print(w io.Writer, root string, diags []Diagnostic) (int, error) {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String(root)); err != nil {
			return 0, err
		}
	}
	return len(diags), nil
}

// allowKey identifies one source line of one file.
type allowKey struct {
	file string
	line int
}

// filterAllowed drops diagnostics covered by an "//rpvet:allow <pass>"
// comment directive. A directive covers the line it sits on (trailing
// comment) and the line directly below it (standalone comment above the
// flagged statement). Several passes may be listed, comma-separated:
//
//	start := time.Now() //rpvet:allow determinism
//	//rpvet:allow errcheck,determinism
//	doRiskyThing()
func filterAllowed(l *Loader, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	allowed := make(map[allowKey]map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					passes, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					end := l.Fset.Position(c.End())
					for _, line := range []int{end.Line, end.Line + 1} {
						key := allowKey{file: end.Filename, line: line}
						if allowed[key] == nil {
							allowed[key] = make(map[string]bool)
						}
						for _, p := range passes {
							allowed[key][p] = true
						}
					}
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if allowed[allowKey{file: d.Pos.Filename, line: d.Pos.Line}][d.Pass] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parseAllow extracts the pass names from an "//rpvet:allow p1,p2 reason"
// comment, reporting ok=false for any other comment.
func parseAllow(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "//rpvet:allow")
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	var passes []string
	for _, p := range strings.Split(fields[0], ",") {
		if p = strings.TrimSpace(p); p != "" {
			passes = append(passes, p)
		}
	}
	return passes, len(passes) > 0
}

// enclosingFunc returns the body of the innermost function declaration or
// literal in path (a Inspect-style ancestor stack, outermost first) that
// contains the node at stack top.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// inspectWithStack walks the file keeping the ancestor stack, calling fn
// for every node with the stack of its ancestors (outermost first, not
// including the node itself).
func inspectWithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		recurse := fn(n, stack)
		if recurse {
			stack = append(stack, n)
		}
		return recurse
	})
}
