package analysis

import (
	"cmp"
	"fmt"
	"go/ast"
	"go/token"
	"io"
	"path/filepath"
	"slices"
	"strings"
)

// TextEdit replaces the bytes [Start, End) of File with NewText. File is
// an absolute path; offsets are byte offsets into the file as parsed.
type TextEdit struct {
	File    string
	Start   int
	End     int
	NewText string
}

// SuggestedFix is a self-contained, automatically applicable resolution
// for one diagnostic. The contract (see DESIGN.md "Pass author's guide"):
// applying every edit of the fix — and nothing else — must leave the tree
// building, gofmt-clean after formatting, and free of the finding that
// carried the fix. Edits of one fix must not overlap; identical edits
// from different fixes (e.g. two findings both inserting the same import)
// are deduplicated by the fix engine.
type SuggestedFix struct {
	Message string
	Edits   []TextEdit
}

// Diagnostic is one finding of one pass.
type Diagnostic struct {
	Pos   token.Position
	Pass  string
	Msg   string
	Fixes []SuggestedFix
}

// String renders the finding as "file:line:col: pass: message" with the
// file path relative to root (when possible), the format the golden tests
// and scripts/check.sh consume.
func (d Diagnostic) String(root string) string {
	file := d.Pos.Filename
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			file = filepath.ToSlash(rel)
		}
	}
	return fmt.Sprintf("%s:%d:%d: %s: %s", file, d.Pos.Line, d.Pos.Column, d.Pass, d.Msg)
}

// Pass is one analysis over a single package.
type Pass struct {
	// Name is the identifier used in output and in //rpvet:allow directives.
	Name string
	// Version participates in the result-cache key: bump it whenever the
	// pass's rules, message texts, or suggested fixes change, so stale
	// cached findings are invalidated module-wide.
	Version int
	// Doc is a one-line description shown by rpvet -list.
	Doc string
	// Run inspects one package and reports findings through ctx.Report.
	Run func(ctx *Context)
}

// Context hands one package to a pass and collects its findings.
type Context struct {
	Loader *Loader
	Pkg    *Package

	pass string
	out  *[]Diagnostic
}

// Report records a finding at pos.
func (ctx *Context) Report(pos token.Pos, format string, args ...any) {
	ctx.ReportFix(pos, nil, format, args...)
}

// ReportFix records a finding at pos carrying zero or more suggested
// fixes (nil fixes are skipped, so passes can build the fix conditionally
// and hand over whatever they managed to construct).
func (ctx *Context) ReportFix(pos token.Pos, fixes []SuggestedFix, format string, args ...any) {
	*ctx.out = append(*ctx.out, Diagnostic{
		Pos:   ctx.Loader.Fset.Position(pos),
		Pass:  ctx.pass,
		Msg:   fmt.Sprintf(format, args...),
		Fixes: fixes,
	})
}

// Edit builds a TextEdit replacing the source range [start, end) with
// newText, resolving the token positions through the loader's FileSet.
func (ctx *Context) Edit(start, end token.Pos, newText string) TextEdit {
	sp := ctx.Loader.Fset.Position(start)
	ep := ctx.Loader.Fset.Position(end)
	return TextEdit{File: sp.Filename, Start: sp.Offset, End: ep.Offset, NewText: newText}
}

// Passes returns the full suite in its fixed running order.
func Passes() []*Pass {
	return []*Pass{
		DeterminismPass(),
		ErrcheckPass(),
		LayeringPass(),
		ConcurrencyPass(),
		SortSlicePass(),
		CtxflowPass(),
		GoroutineLifecyclePass(),
	}
}

// PassByName looks a pass up by its directive name.
func PassByName(name string) *Pass {
	for _, p := range Passes() {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Run applies the passes to the packages, drops findings suppressed by
// //rpvet:allow directives, and returns the rest sorted by position.
func Run(l *Loader, pkgs []*Package, passes []*Pass) []Diagnostic {
	var diags []Diagnostic
	for _, pkg := range pkgs {
		for _, pass := range passes {
			diags = append(diags, runPass(l, pkg, pass)...)
		}
	}
	SortDiagnostics(diags)
	return diags
}

// runPass is the unit of work the driver schedules and the cache keys:
// one pass over one package, allow-directives already applied. The result
// depends only on the package's source (and, through type information,
// its dependencies' source), never on scheduling, which is what makes the
// parallel driver's merged output byte-identical to a sequential run.
func runPass(l *Loader, pkg *Package, pass *Pass) []Diagnostic {
	var diags []Diagnostic
	ctx := &Context{Loader: l, Pkg: pkg, pass: pass.Name, out: &diags}
	pass.Run(ctx)
	return filterAllowed(l, []*Package{pkg}, diags)
}

// SortDiagnostics orders findings by file, line, column, then pass name —
// the canonical output order every format emits.
func SortDiagnostics(diags []Diagnostic) {
	slices.SortFunc(diags, func(a, b Diagnostic) int {
		if a.Pos.Filename != b.Pos.Filename {
			return cmp.Compare(a.Pos.Filename, b.Pos.Filename)
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line - b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column - b.Pos.Column
		}
		return cmp.Compare(a.Pass, b.Pass)
	})
}

// Print writes the diagnostics one per line and returns how many there
// were, so callers can turn findings into a non-zero exit.
func Print(w io.Writer, root string, diags []Diagnostic) (int, error) {
	for _, d := range diags {
		if _, err := fmt.Fprintln(w, d.String(root)); err != nil {
			return 0, err
		}
	}
	return len(diags), nil
}

// allowKey identifies one source line of one file.
type allowKey struct {
	file string
	line int
}

// filterAllowed drops diagnostics covered by an "//rpvet:allow <pass>"
// comment directive. A directive covers the line it sits on (trailing
// comment) and the line directly below it (standalone comment above the
// flagged statement). Several passes may be listed, comma-separated:
//
//	start := time.Now() //rpvet:allow determinism
//	//rpvet:allow errcheck,determinism
//	doRiskyThing()
func filterAllowed(l *Loader, pkgs []*Package, diags []Diagnostic) []Diagnostic {
	allowed := make(map[allowKey]map[string]bool)
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					passes, ok := parseAllow(c.Text)
					if !ok {
						continue
					}
					end := l.Fset.Position(c.End())
					for _, line := range []int{end.Line, end.Line + 1} {
						key := allowKey{file: end.Filename, line: line}
						if allowed[key] == nil {
							allowed[key] = make(map[string]bool)
						}
						for _, p := range passes {
							allowed[key][p] = true
						}
					}
				}
			}
		}
	}
	out := diags[:0]
	for _, d := range diags {
		if allowed[allowKey{file: d.Pos.Filename, line: d.Pos.Line}][d.Pass] {
			continue
		}
		out = append(out, d)
	}
	return out
}

// parseAllow extracts the pass names from an "//rpvet:allow p1,p2 reason"
// comment, reporting ok=false for any other comment.
func parseAllow(text string) ([]string, bool) {
	rest, ok := strings.CutPrefix(text, "//rpvet:allow")
	if !ok {
		return nil, false
	}
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil, false
	}
	var passes []string
	for _, p := range strings.Split(fields[0], ",") {
		if p = strings.TrimSpace(p); p != "" {
			passes = append(passes, p)
		}
	}
	return passes, len(passes) > 0
}

// enclosingFunc returns the body of the innermost function declaration or
// literal in path (a Inspect-style ancestor stack, outermost first) that
// contains the node at stack top.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 1; i >= 0; i-- {
		switch fn := stack[i].(type) {
		case *ast.FuncDecl:
			return fn.Body
		case *ast.FuncLit:
			return fn.Body
		}
	}
	return nil
}

// inspectWithStack walks the file keeping the ancestor stack, calling fn
// for every node with the stack of its ancestors (outermost first, not
// including the node itself).
func inspectWithStack(f *ast.File, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		recurse := fn(n, stack)
		if recurse {
			stack = append(stack, n)
		}
		return recurse
	})
}
