package obs

import (
	"context"
	"fmt"
	"io"
	"log/slog"
	"sync/atomic"
	"time"
)

// slog plumbing shared by rpserved's access log and the CLIs' -v mode: one
// place decides the handler shape so every tool logs the same way, and one
// place mints request IDs so log lines across restarts stay distinguishable.

// NewLogger returns a text-handler slog.Logger writing to w at the given
// level. Text (logfmt-style key=value) rather than JSON: these logs are
// read by humans tailing a terminal first and machines second.
func NewLogger(w io.Writer, level slog.Level) *slog.Logger {
	return slog.New(slog.NewTextHandler(w, &slog.HandlerOptions{Level: level}))
}

// NopLogger returns a logger that discards everything, so callers can keep
// unconditional logger.Info calls instead of nil checks.
func NopLogger() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// reqBase seeds request IDs with process start time so IDs from different
// server incarnations do not collide in aggregated logs; reqSeq makes them
// unique within the process.
var (
	reqBase = uint32(time.Now().UnixNano()) //rpvet:allow determinism — request IDs must differ across restarts
	reqSeq  atomic.Uint64
)

// RequestID mints a short unique request identifier: a per-process hex
// prefix and a monotonically increasing sequence number.
func RequestID() string {
	return fmt.Sprintf("%08x-%d", reqBase, reqSeq.Add(1))
}

// requestIDKey is the context key request IDs travel under; unexported so
// only this package's accessors touch it.
type requestIDKey struct{}

// WithRequestID returns ctx carrying a request ID, the in-process half of
// trace-context propagation: a coordinator stamps its mine context so the
// shard client can forward the ID to peers (X-Request-Id) and journals on
// both sides become joinable.
func WithRequestID(ctx context.Context, id string) context.Context {
	return context.WithValue(ctx, requestIDKey{}, id)
}

// RequestIDFrom extracts the request ID from ctx, or "" when none was
// attached.
func RequestIDFrom(ctx context.Context) string {
	id, _ := ctx.Value(requestIDKey{}).(string)
	return id
}
