package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// snapshotFixture is a hand-built recorded run: a total span covering a
// sequential scan, then two overlapping mining tasks (as a parallel run
// produces), one with nested merge work.
func snapshotFixture() TimelineSnapshot {
	return TimelineSnapshot{
		Cap: 16,
		Spans: []SpanRecord{
			{Phase: "total", StartNS: 0, DurNS: 1000},
			{Phase: "scan", StartNS: 0, DurNS: 100},
			{Phase: "mine", Label: "item=1", StartNS: 100, DurNS: 600, MergeNS: 50, Merges: 4, Prunes: 2},
			{Phase: "mine", Label: "item=2", StartNS: 150, DurNS: 500},
		},
	}
}

// TestWriteTraceEventsMeta checks extra otherData entries land next to the
// exporter's own and survive the validator (which rejects unknown
// top-level fields but not otherData keys).
func TestWriteTraceEventsMeta(t *testing.T) {
	snap := snapshotFixture()
	snap.Dropped = 2
	var buf bytes.Buffer
	extra := map[string]string{"requestAllocBytes": "4096", "requestCPUMS": "1.250"}
	if err := WriteTraceEventsMeta(&buf, "rpmine", snap, extra); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTraceEvents(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatalf("trace with metadata fails validation: %v", err)
	}
	var f struct {
		OtherData map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	want := map[string]string{
		"droppedSpans": "2", "requestAllocBytes": "4096", "requestCPUMS": "1.250",
	}
	for k, v := range want {
		if f.OtherData[k] != v {
			t.Errorf("otherData[%q] = %q, want %q (all: %v)", k, f.OtherData[k], v, f.OtherData)
		}
	}
	// The caller's map is not retained or mutated.
	if len(extra) != 2 {
		t.Errorf("extra map mutated: %v", extra)
	}
}

func TestWriteTraceEventsRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, "rpmine", snapshotFixture()); err != nil {
		t.Fatal(err)
	}
	spans, err := ValidateTraceEvents(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("exported trace fails its own validator: %v\n%s", err, buf.String())
	}
	if spans != 4 {
		t.Fatalf("validator counted %d spans, want 4", spans)
	}

	var f struct {
		TraceEvents     []TraceEvent `json:"traceEvents"`
		DisplayTimeUnit string       `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	if f.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q, want ms", f.DisplayTimeUnit)
	}
	var meta, tasks int
	tids := map[int]bool{}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			meta++
		case "X":
			if strings.HasPrefix(ev.Name, "mine") {
				tasks++
				tids[ev.Tid] = true
			}
		}
	}
	if meta == 0 {
		t.Error("no process_name metadata event")
	}
	if tasks != 2 || len(tids) != 2 {
		t.Errorf("overlapping mining tasks must land on distinct lanes: %d tasks on %d lanes", tasks, len(tids))
	}
	// The labelled task carries its work counters as args.
	found := false
	for _, ev := range f.TraceEvents {
		if ev.Name == "mine item=1" {
			found = true
			if ev.Args["merges"] != float64(4) || ev.Args["prunes"] != float64(2) {
				t.Errorf("task args lost counters: %v", ev.Args)
			}
		}
	}
	if !found {
		t.Error("labelled task event missing")
	}
}

func TestAssignLanesNesting(t *testing.T) {
	// total ⊃ scan and total ⊃ task: containment stacks on one lane; the
	// second, overlapping task needs a lane of its own.
	spans := []SpanRecord{
		{Phase: "total", StartNS: 0, DurNS: 1000},
		{Phase: "scan", StartNS: 0, DurNS: 100},
		{Phase: "mine", StartNS: 100, DurNS: 600},
		{Phase: "mine", StartNS: 150, DurNS: 500},
	}
	lanes := assignLanes(spans)
	if lanes[0] != 0 || lanes[1] != 0 || lanes[2] != 0 {
		t.Errorf("nested spans should share lane 0: %v", lanes)
	}
	if lanes[3] == 0 {
		t.Errorf("concurrent span must not share its sibling's lane: %v", lanes)
	}
	// Sequential spans reuse freed lanes.
	seq := []SpanRecord{
		{Phase: "a", StartNS: 0, DurNS: 10},
		{Phase: "b", StartNS: 20, DurNS: 10},
	}
	if l := assignLanes(seq); l[0] != 0 || l[1] != 0 {
		t.Errorf("sequential spans should reuse lane 0: %v", l)
	}
}

func TestValidateTraceEventsRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"not json", "nope"},
		{"empty events", `{"traceEvents":[],"displayTimeUnit":"ms"}`},
		{"unknown phase type", `{"traceEvents":[{"name":"x","ph":"Q","ts":0,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`},
		{"negative duration", `{"traceEvents":[{"name":"x","ph":"X","ts":0,"dur":-1,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`},
		{"nameless event", `{"traceEvents":[{"name":"","ph":"X","ts":0,"dur":1,"pid":1,"tid":0}],"displayTimeUnit":"ms"}`},
		{"metadata only", `{"traceEvents":[{"name":"process_name","ph":"M","pid":1,"tid":0}],"displayTimeUnit":"ms"}`},
	}
	for _, tc := range cases {
		if _, err := ValidateTraceEvents(strings.NewReader(tc.in)); err == nil {
			t.Errorf("%s: validator accepted malformed input", tc.name)
		}
	}
}

// TestExportRecordedRun exercises the full pipeline the way rpmine does:
// record a traced run shape, export, validate.
func TestExportRecordedRun(t *testing.T) {
	tr := NewTrace()
	tl := NewTimeline(8)
	tr.AttachTimeline(tl)
	total := tr.StartTotal()
	tr.Start(PhaseScan).End()
	var lc Local
	sp := tr.StartTask("item=1", &lc)
	sp.End(&lc)
	lc.Flush(tr)
	total.End()

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, "test", tl.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if _, err := ValidateTraceEvents(&buf); err != nil {
		t.Fatalf("recorded run failed validation: %v", err)
	}

	// Dropped spans surface in otherData so a capped export is honest.
	capped := TimelineSnapshot{Cap: 1, Dropped: 41, Spans: []SpanRecord{{Phase: "mine", DurNS: 5}}}
	buf.Reset()
	if err := WriteTraceEvents(&buf, "test", capped); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "droppedSpans") {
		t.Error("export of a capped timeline does not mention dropped spans")
	}
}
