package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Chrome trace-event export: a recorded run's TimelineSnapshot rendered as
// the JSON object format every trace-event consumer (Perfetto,
// chrome://tracing, catapult) loads. Spans become "X" (complete) events
// with microsecond timestamps; concurrent spans are spread over synthetic
// thread lanes by a greedy interval assignment, so a parallel run renders
// as stacked worker tracks without the recorder having to know worker IDs.

// TraceEvent is one entry of the trace-event array — the subset of the
// Chrome trace-event format the exporter emits and the validator checks.
type TraceEvent struct {
	// Name labels the event in the UI (here: the phase, plus the span
	// label when present).
	Name string `json:"name"`
	// Ph is the event type: "X" for complete spans, "M" for metadata.
	Ph string `json:"ph"`
	// Ts is the event start in microseconds since the timeline epoch.
	Ts float64 `json:"ts"`
	// Dur is the span duration in microseconds ("X" events only).
	Dur float64 `json:"dur,omitempty"`
	// Pid and Tid place the event on a process/thread track.
	Pid int `json:"pid"`
	Tid int `json:"tid"`
	// Cat is the event category (here: the phase name).
	Cat string `json:"cat,omitempty"`
	// Args carries the span's work counters.
	Args map[string]any `json:"args,omitempty"`
}

// traceEventFile is the on-disk object shape: the array form also exists in
// the wild, but the object form self-describes its time unit and leaves
// room for metadata, and both Perfetto and chrome://tracing accept it.
type traceEventFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	// OtherData records exporter context (tool name, dropped span count).
	OtherData map[string]string `json:"otherData,omitempty"`
}

// WriteTraceEvents renders a recorded run as Chrome trace-event JSON.
// name labels the process track (e.g. "rpmine" or a request ID). Spans are
// laid out on as few thread lanes as their overlaps allow: lane 0 carries
// the run total and the sequential phases, concurrent mining tasks fan out
// over further lanes.
func WriteTraceEvents(w io.Writer, name string, snap TimelineSnapshot) error {
	events := make([]TraceEvent, 0, len(snap.Spans)+2)
	events = append(events, TraceEvent{
		Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
		Args: map[string]any{"name": name},
	})

	spans := append([]SpanRecord(nil), snap.Spans...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].StartNS != spans[j].StartNS {
			return spans[i].StartNS < spans[j].StartNS
		}
		return spans[i].DurNS > spans[j].DurNS // enclosing spans first
	})
	lanes := assignLanes(spans)

	for i, s := range spans {
		ev := TraceEvent{
			Name: s.Phase,
			Ph:   "X",
			Ts:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			Pid:  1,
			Tid:  lanes[i],
			Cat:  s.Phase,
		}
		if s.Label != "" {
			ev.Name = s.Phase + " " + s.Label
		}
		if s.Merges != 0 || s.Prunes != 0 {
			ev.Args = map[string]any{
				"mergeUS": float64(s.MergeNS) / 1e3,
				"merges":  s.Merges,
				"prunes":  s.Prunes,
			}
		}
		events = append(events, ev)
	}

	f := traceEventFile{TraceEvents: events, DisplayTimeUnit: "ms"}
	if snap.Dropped > 0 {
		f.OtherData = map[string]string{
			"droppedSpans": fmt.Sprintf("%d (retention cap %d; aggregates still include them)", snap.Dropped, snap.Cap),
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// assignLanes spreads spans (sorted by start, enclosing-first) over thread
// lanes greedily: each span takes the lowest lane that is free at its
// start, where a lane is free once every span previously placed on it has
// ended. A span may also stack on an open span of a different phase that
// contains it (the run total over its phases), so trace viewers render the
// real nesting — but never on a same-phase sibling, because two concurrent
// mining tasks can be interval-contained in each other without one nesting
// in the other, and those must fan out to separate worker lanes.
func assignLanes(spans []SpanRecord) []int {
	type open struct {
		end   int64
		phase string
	}
	lanes := make([]int, len(spans))
	var laneStacks [][]open // per lane, stack of still-open spans
	for i, s := range spans {
		end := s.StartNS + s.DurNS
		placed := false
		for l := range laneStacks {
			// Pop spans that ended before this one starts.
			st := laneStacks[l]
			for len(st) > 0 && st[len(st)-1].end <= s.StartNS {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || (end <= st[len(st)-1].end && s.Phase != st[len(st)-1].phase) {
				laneStacks[l] = append(st, open{end, s.Phase})
				lanes[i] = l
				placed = true
				break
			}
			laneStacks[l] = st
		}
		if !placed {
			laneStacks = append(laneStacks, []open{{end, s.Phase}})
			lanes[i] = len(laneStacks) - 1
		}
	}
	return lanes
}

// ValidateTraceEvents parses Chrome trace-event JSON (the object form
// WriteTraceEvents emits) and checks every event is well-formed: a known
// type, a name, and non-negative timing. It returns the number of span
// ("X") events, so callers can assert a trace is non-trivial.
func ValidateTraceEvents(r io.Reader) (spans int, err error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f traceEventFile
	if err := dec.Decode(&f); err != nil {
		return 0, fmt.Errorf("trace-event JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return 0, fmt.Errorf("trace-event JSON: no traceEvents")
	}
	for i, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			// Metadata events carry no timing.
		case "X":
			if ev.Ts < 0 || ev.Dur < 0 {
				return 0, fmt.Errorf("trace-event JSON: event %d (%q) has negative timing ts=%v dur=%v", i, ev.Name, ev.Ts, ev.Dur)
			}
			spans++
		default:
			return 0, fmt.Errorf("trace-event JSON: event %d has unsupported phase type %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return 0, fmt.Errorf("trace-event JSON: event %d has no name", i)
		}
	}
	if spans == 0 {
		return 0, fmt.Errorf("trace-event JSON: no span (\"X\") events")
	}
	return spans, nil
}
