package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"maps"
	"sort"
	"strconv"
)

// Chrome trace-event export: a recorded run's TimelineSnapshot rendered as
// the JSON object format every trace-event consumer (Perfetto,
// chrome://tracing, catapult) loads. Spans become "X" (complete) events
// with microsecond timestamps; concurrent spans are spread over synthetic
// thread lanes by a greedy interval assignment, so a parallel run renders
// as stacked worker tracks without the recorder having to know worker IDs.
// A snapshot with grafted peer timelines (a fleet-wide flight record)
// renders each peer as its own process track: the coordinator is pid 1,
// peers follow in canonical order, and the shard client's retry/hedge
// annotations appear as instant events on their peer's track.

// TraceEvent is one entry of the trace-event array — the subset of the
// Chrome trace-event format the exporter emits and the validator checks.
type TraceEvent struct {
	// Name labels the event in the UI (here: the phase, plus the span
	// label when present).
	Name string `json:"name"`
	// Ph is the event type: "X" for complete spans, "i" for instant
	// annotations, "M" for metadata.
	Ph string `json:"ph"`
	// S is the instant event's scope ("i" events only): "p" renders the
	// annotation across its whole process track.
	S string `json:"s,omitempty"`
	// Ts is the event start in microseconds since the timeline epoch.
	Ts float64 `json:"ts"`
	// Dur is the span duration in microseconds ("X" events only).
	Dur float64 `json:"dur,omitempty"`
	// Pid and Tid place the event on a process/thread track.
	Pid int `json:"pid"`
	Tid int `json:"tid"`
	// Cat is the event category (here: the phase name).
	Cat string `json:"cat,omitempty"`
	// Args carries the span's work counters.
	Args map[string]any `json:"args,omitempty"`
}

// traceEventFile is the on-disk object shape: the array form also exists in
// the wild, but the object form self-describes its time unit and leaves
// room for metadata, and both Perfetto and chrome://tracing accept it.
type traceEventFile struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	// OtherData records exporter context. "droppedSpans" is the total
	// span count dropped past retention caps, fleet-wide, as a bare
	// integer (rptrace and the summarizers parse it).
	OtherData map[string]string `json:"otherData,omitempty"`
}

// processNameEvent is the metadata event naming a process track.
func processNameEvent(pid int, name string) TraceEvent {
	return TraceEvent{
		Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
		Args: map[string]any{"name": name},
	}
}

// WriteTraceEvents renders a recorded run as Chrome trace-event JSON.
// name labels the coordinator's process track (e.g. "rpmine" or a request
// ID). Spans are laid out on as few thread lanes as their overlaps allow:
// lane 0 carries the run total and the sequential phases, concurrent
// mining tasks fan out over further lanes. Grafted peer snapshots become
// their own process tracks, peer epochs aligned onto the local clock via
// AlignOffset; the output is byte-deterministic in the snapshot alone
// (grafts are canonicalized), whatever order peers answered in.
func WriteTraceEvents(w io.Writer, name string, snap TimelineSnapshot) error {
	return WriteTraceEventsMeta(w, name, snap, nil)
}

// WriteTraceEventsMeta is WriteTraceEvents with extra otherData entries —
// exporter context like the producing request's resource cost. Keys in
// extra must not collide with the exporter's own ("droppedSpans"); values
// are copied verbatim.
func WriteTraceEventsMeta(w io.Writer, name string, snap TimelineSnapshot, extra map[string]string) error {
	events := make([]TraceEvent, 0, len(snap.Spans)+2)
	events = append(events, processNameEvent(1, name))
	events = append(events, spanEvents(snap.Spans, 1, 0)...)
	dropped := snap.Dropped

	peers := canonicalPeers(snap.Peers)
	pid := 1
	for i := 0; i < len(peers); {
		// One process track per distinct peer; a peer that served several
		// shard tasks of the scatter contributes all of them to its track.
		j := i
		for j < len(peers) && peers[j].Peer == peers[i].Peer {
			j++
		}
		pid++
		events = append(events, processNameEvent(pid, "peer "+peers[i].Peer))
		var spans []SpanRecord
		for k := i; k < j; k++ {
			pt := &peers[k]
			off := pt.AlignOffset()
			for _, s := range pt.Snapshot.Spans {
				s.StartNS += off
				spans = append(spans, s)
			}
			dropped += pt.Snapshot.Dropped
			for _, ev := range pt.Events {
				events = append(events, TraceEvent{
					Name: ev.Name, Ph: "i", S: "p",
					Ts: float64(ev.AtNS) / 1e3, Pid: pid, Tid: 0, Cat: "shard",
				})
			}
		}
		events = append(events, spanEvents(spans, pid, 0)...)
		i = j
	}

	f := traceEventFile{TraceEvents: events, DisplayTimeUnit: "ms"}
	if dropped > 0 || len(extra) > 0 {
		f.OtherData = make(map[string]string, len(extra)+1)
		maps.Copy(f.OtherData, extra)
		if dropped > 0 {
			f.OtherData["droppedSpans"] = strconv.FormatInt(dropped, 10)
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// spanEvents renders spans as "X" events on pid's thread lanes, numbered
// from firstLane.
func spanEvents(records []SpanRecord, pid, firstLane int) []TraceEvent {
	spans := append([]SpanRecord(nil), records...)
	sort.SliceStable(spans, func(i, j int) bool {
		if spans[i].StartNS != spans[j].StartNS {
			return spans[i].StartNS < spans[j].StartNS
		}
		return spans[i].DurNS > spans[j].DurNS // enclosing spans first
	})
	lanes := assignLanes(spans)

	events := make([]TraceEvent, 0, len(spans))
	for i, s := range spans {
		ev := TraceEvent{
			Name: s.Phase,
			Ph:   "X",
			Ts:   float64(s.StartNS) / 1e3,
			Dur:  float64(s.DurNS) / 1e3,
			Pid:  pid,
			Tid:  firstLane + lanes[i],
			Cat:  s.Phase,
		}
		if s.Label != "" {
			ev.Name = s.Phase + " " + s.Label
		}
		if s.Merges != 0 || s.Prunes != 0 {
			ev.Args = map[string]any{
				"mergeUS": float64(s.MergeNS) / 1e3,
				"merges":  s.Merges,
				"prunes":  s.Prunes,
			}
		}
		events = append(events, ev)
	}
	return events
}

// assignLanes spreads spans (sorted by start, enclosing-first) over thread
// lanes greedily: each span takes the lowest lane that is free at its
// start, where a lane is free once every span previously placed on it has
// ended. A span may also stack on an open span of a different phase that
// contains it (the run total over its phases), so trace viewers render the
// real nesting — but never on a same-phase sibling, because two concurrent
// mining tasks can be interval-contained in each other without one nesting
// in the other, and those must fan out to separate worker lanes.
func assignLanes(spans []SpanRecord) []int {
	type open struct {
		end   int64
		phase string
	}
	lanes := make([]int, len(spans))
	var laneStacks [][]open // per lane, stack of still-open spans
	for i, s := range spans {
		end := s.StartNS + s.DurNS
		placed := false
		for l := range laneStacks {
			// Pop spans that ended before this one starts.
			st := laneStacks[l]
			for len(st) > 0 && st[len(st)-1].end <= s.StartNS {
				st = st[:len(st)-1]
			}
			if len(st) == 0 || (end <= st[len(st)-1].end && s.Phase != st[len(st)-1].phase) {
				laneStacks[l] = append(st, open{end, s.Phase})
				lanes[i] = l
				placed = true
				break
			}
			laneStacks[l] = st
		}
		if !placed {
			laneStacks = append(laneStacks, []open{{end, s.Phase}})
			lanes[i] = len(laneStacks) - 1
		}
	}
	return lanes
}

// ValidateTraceEvents parses Chrome trace-event JSON (the object form
// WriteTraceEvents emits) and checks every event is well-formed: a known
// type, a name, and non-negative timing. It returns the number of span
// ("X") events, so callers can assert a trace is non-trivial.
func ValidateTraceEvents(r io.Reader) (spans int, err error) {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	var f traceEventFile
	if err := dec.Decode(&f); err != nil {
		return 0, fmt.Errorf("trace-event JSON: %w", err)
	}
	if len(f.TraceEvents) == 0 {
		return 0, fmt.Errorf("trace-event JSON: no traceEvents")
	}
	for i, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			// Metadata events carry no timing.
		case "i":
			// Instant annotations (retry/hedge marks on peer tracks).
			if ev.Ts < 0 {
				return 0, fmt.Errorf("trace-event JSON: event %d (%q) has negative timing ts=%v", i, ev.Name, ev.Ts)
			}
		case "X":
			if ev.Ts < 0 || ev.Dur < 0 {
				return 0, fmt.Errorf("trace-event JSON: event %d (%q) has negative timing ts=%v dur=%v", i, ev.Name, ev.Ts, ev.Dur)
			}
			spans++
		default:
			return 0, fmt.Errorf("trace-event JSON: event %d has unsupported phase type %q", i, ev.Ph)
		}
		if ev.Name == "" {
			return 0, fmt.Errorf("trace-event JSON: event %d has no name", i)
		}
	}
	if spans == 0 {
		return 0, fmt.Errorf("trace-event JSON: no span (\"X\") events")
	}
	return spans, nil
}
