package obs

import (
	"fmt"
	"strings"
	"time"
)

// PhaseStat is one phase's aggregate in a report snapshot.
type PhaseStat struct {
	// Phase is the canonical phase name (Phase.String).
	Phase string `json:"phase"`
	// Nanos is the wall time attributed to the phase. For nested phases
	// it is contained in an enclosing phase's time.
	Nanos int64 `json:"nanos"`
	// Count is the number of work units, in Unit.
	Count int64 `json:"count"`
	// Unit names what Count counts ("tasks", "merges", ...).
	Unit string `json:"unit"`
	// Nested marks phases whose time is contained in another phase's and
	// must not be added to coverage sums.
	Nested bool `json:"nested,omitempty"`
}

// PhaseReport is a point-in-time snapshot of a Trace: per-phase times and
// work counts plus the whole-run total they are measured against. The
// individual loads are atomic but the snapshot as a whole is not, which is
// fine for reporting.
type PhaseReport struct {
	Phases     []PhaseStat `json:"phases"`
	TotalNanos int64       `json:"totalNanos"`
	Runs       int64       `json:"runs"`
}

// Report snapshots the trace. A nil trace reports zero phases.
func (t *Trace) Report() PhaseReport {
	if t == nil {
		return PhaseReport{}
	}
	r := PhaseReport{
		Phases:     make([]PhaseStat, 0, NumPhases),
		TotalNanos: t.totalNanos.Load(),
		Runs:       t.runs.Load(),
	}
	for p := Phase(0); p < NumPhases; p++ {
		r.Phases = append(r.Phases, PhaseStat{
			Phase:  p.String(),
			Nanos:  t.nanos[p].Load(),
			Count:  t.counts[p].Load(),
			Unit:   p.Unit(),
			Nested: p.Nested(),
		})
	}
	return r
}

// CoveredNanos sums the top-level phase times — the part of TotalNanos the
// tracer attributed to a phase. Nested phases are excluded (their time is
// already inside PhaseMine's).
func (r PhaseReport) CoveredNanos() int64 {
	var sum int64
	for _, s := range r.Phases {
		if !s.Nested {
			sum += s.Nanos
		}
	}
	return sum
}

// String renders the report as an aligned table: one row per phase with its
// wall time, share of the run total, and work count, nested phases indented
// under the phase containing them, then the coverage line. Sequential runs
// cover their total to within scheduling noise; parallel runs sum per-task
// times across workers, so their mine row can exceed 100% of wall time.
func (r PhaseReport) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %12s %8s %14s\n", "phase", "time", "share", "work")
	for _, s := range r.Phases {
		name := s.Phase
		if s.Nested {
			name = "  " + name
		}
		share := "-"
		if !s.Nested && r.TotalNanos > 0 {
			share = fmt.Sprintf("%.1f%%", 100*float64(s.Nanos)/float64(r.TotalNanos))
		}
		tm := "-"
		if s.Nanos > 0 {
			tm = formatNanos(s.Nanos)
		}
		fmt.Fprintf(&b, "%-14s %12s %8s %14s\n", name, tm, share,
			fmt.Sprintf("%d %s", s.Count, s.Unit))
	}
	fmt.Fprintf(&b, "%-14s %12s", "total", formatNanos(r.TotalNanos))
	if r.TotalNanos > 0 {
		fmt.Fprintf(&b, " %7.1f%%", 100*float64(r.CoveredNanos())/float64(r.TotalNanos))
		fmt.Fprintf(&b, "  phase coverage, %d run(s)", r.Runs)
	}
	b.WriteByte('\n')
	return b.String()
}

// formatNanos renders a nanosecond quantity the way time.Duration does,
// rounded to keep columns readable.
func formatNanos(n int64) string {
	d := time.Duration(n)
	switch {
	case d >= time.Second:
		return d.Round(time.Millisecond).String()
	case d >= time.Millisecond:
		return d.Round(time.Microsecond).String()
	default:
		return d.String()
	}
}

// BenchMetrics flattens the report into benchmark metric keys, per-run:
// "<phase>-ns/op" for phase wall time and "<phase>-count/op" for phase work
// counts, the shape `go test -bench` reports via b.ReportMetric and
// benchfmt records into BENCH_*.json. Runs must be positive.
func (r PhaseReport) BenchMetrics() map[string]float64 {
	if r.Runs <= 0 {
		return nil
	}
	m := make(map[string]float64, 2*len(r.Phases))
	per := float64(r.Runs)
	for _, s := range r.Phases {
		m[s.Phase+"-ns/op"] = float64(s.Nanos) / per
		m[s.Phase+"-count/op"] = float64(s.Count) / per
	}
	return m
}
