package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func phaseStat(t *testing.T, r PhaseReport, name string) PhaseStat {
	t.Helper()
	for _, s := range r.Phases {
		if s.Phase == name {
			return s
		}
	}
	t.Fatalf("report has no phase %q", name)
	return PhaseStat{}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	sp := tr.Start(PhaseScan)
	sp.End()
	tr.StartTotal().End()
	tr.Observe(PhaseMine, 10, 1)
	tr.ObserveTotal(10)
	tr.Reset()
	r := tr.Report()
	if len(r.Phases) != 0 || r.TotalNanos != 0 || r.Runs != 0 {
		t.Fatalf("nil trace produced a non-empty report: %+v", r)
	}
	// A Local flushed to a nil trace must still zero itself.
	var lc Local
	lc.Observe(PhaseMerge, 5, 2)
	lc.Flush(tr)
	if lc.nanos[PhaseMerge] != 0 || lc.counts[PhaseMerge] != 0 {
		t.Fatal("Local not zeroed by Flush(nil)")
	}
}

func TestSpanNesting(t *testing.T) {
	tr := NewTrace()
	total := tr.StartTotal()
	outer := tr.Start(PhaseMine)
	inner := tr.Start(PhaseMerge)
	time.Sleep(2 * time.Millisecond)
	inner.End()
	outer.End()
	total.End()

	r := tr.Report()
	mine, merge := phaseStat(t, r, "mine"), phaseStat(t, r, "ts-merge")
	if merge.Nanos <= 0 || mine.Nanos <= 0 || r.TotalNanos <= 0 {
		t.Fatalf("expected positive times, got mine=%d merge=%d total=%d", mine.Nanos, merge.Nanos, r.TotalNanos)
	}
	// The nested span's time is contained in the outer span's, and the
	// outer span's in the total.
	if merge.Nanos > mine.Nanos {
		t.Errorf("nested merge time %d exceeds enclosing mine time %d", merge.Nanos, mine.Nanos)
	}
	if mine.Nanos > r.TotalNanos {
		t.Errorf("mine time %d exceeds total %d", mine.Nanos, r.TotalNanos)
	}
	if mine.Count != 1 || merge.Count != 1 || r.Runs != 1 {
		t.Errorf("span counts: mine=%d merge=%d runs=%d, want 1 each", mine.Count, merge.Count, r.Runs)
	}
	// Coverage must exclude the nested phase: only mine contributes here.
	if got := r.CoveredNanos(); got != mine.Nanos {
		t.Errorf("CoveredNanos = %d, want mine's %d (nested phases excluded)", got, mine.Nanos)
	}
}

// TestConcurrentFlushAccuracy drives the tracer the way the parallel miner
// does — one Local per worker, flushed once per task — and checks that no
// observation is lost or double-counted. Run under -race by make check.
func TestConcurrentFlushAccuracy(t *testing.T) {
	const workers, tasks = 8, 200
	tr := NewTrace()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lc Local
			for i := 0; i < tasks; i++ {
				lc.Observe(PhaseMine, 10, 1)
				lc.Observe(PhaseMerge, 3, 2)
				lc.Observe(PhasePrune, 0, 1)
				lc.Flush(tr)
			}
			tr.ObserveTotal(1)
		}()
	}
	wg.Wait()

	r := tr.Report()
	want := []struct {
		phase string
		nanos int64
		count int64
	}{
		{"mine", workers * tasks * 10, workers * tasks},
		{"ts-merge", workers * tasks * 3, workers * tasks * 2},
		{"erec-prune", 0, workers * tasks},
	}
	for _, w := range want {
		s := phaseStat(t, r, w.phase)
		if s.Nanos != w.nanos || s.Count != w.count {
			t.Errorf("%s: got nanos=%d count=%d, want nanos=%d count=%d",
				w.phase, s.Nanos, s.Count, w.nanos, w.count)
		}
	}
	if r.Runs != workers || r.TotalNanos != workers {
		t.Errorf("totals: runs=%d totalNanos=%d, want %d and %d", r.Runs, r.TotalNanos, workers, workers)
	}
}

func TestPhaseReportString(t *testing.T) {
	tr := NewTrace()
	tr.Observe(PhaseScan, 1_000_000, 1)
	tr.Observe(PhaseTreeBuild, 2_000_000, 1)
	tr.Observe(PhaseMine, 6_000_000, 42)
	tr.Observe(PhaseFinalize, 1_000_000, 1)
	tr.Observe(PhaseMerge, 3_000_000, 99)
	tr.Observe(PhasePrune, 0, 7)
	tr.ObserveTotal(10_000_000)

	out := tr.Report().String()
	for _, want := range []string{
		"scan", "tree-build", "mine", "finalize", "ts-merge", "erec-prune",
		"42 tasks", "99 merges", "7 prunes",
		"60.0%",  // mine share of total
		"100.0%", // coverage: 1+2+6+1 of 10ms
		"1 run(s)",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report output missing %q:\n%s", want, out)
		}
	}
	// Nested phases render dashes for time (untimed) and share (their time
	// is already inside mine's).
	for _, line := range strings.Split(out, "\n") {
		if !strings.Contains(line, "erec-prune") {
			continue
		}
		dashes := 0
		for _, f := range strings.Fields(line) {
			if f == "-" {
				dashes++
			}
		}
		if dashes != 2 {
			t.Errorf("nested untimed phase line should render two dash fields: %q", line)
		}
	}
}

func TestBenchMetrics(t *testing.T) {
	tr := NewTrace()
	tr.Observe(PhaseScan, 300, 3)
	tr.ObserveTotal(1000)
	tr.ObserveTotal(1000)
	tr.Observe(PhaseScan, 100, 1)

	m := tr.Report().BenchMetrics()
	if m["scan-ns/op"] != 200 {
		t.Errorf("scan-ns/op = %v, want 200 (400ns over 2 runs)", m["scan-ns/op"])
	}
	if m["scan-count/op"] != 2 {
		t.Errorf("scan-count/op = %v, want 2", m["scan-count/op"])
	}
	if (PhaseReport{}).BenchMetrics() != nil {
		t.Error("zero-run report should produce no metrics")
	}
}

func TestRequestIDsAreUnique(t *testing.T) {
	seen := make(map[string]bool)
	for i := 0; i < 1000; i++ {
		id := RequestID()
		if seen[id] {
			t.Fatalf("duplicate request id %q", id)
		}
		seen[id] = true
		if !strings.Contains(id, "-") {
			t.Fatalf("unexpected id shape %q", id)
		}
	}
}
