package prof

import (
	"bytes"
	"compress/gzip"
	"context"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime/pprof"
	"testing"
	"time"

	"github.com/recurpat/rp/internal/obs"
)

func TestReadCostAllocDelta(t *testing.T) {
	before := ReadCost()
	// Large objects: they bypass the per-P span caches whose unflushed
	// remainders make small-allocation deltas approximate.
	sink := make([][]byte, 0, 8)
	for i := 0; i < 8; i++ {
		sink = append(sink, make([]byte, 1<<20))
	}
	after := ReadCost()
	d := after.Sub(before)
	// The counter is span-granular, so demand most of the allocation, not
	// a byte-exact total.
	if d.AllocBytes < 6*(1<<20) {
		t.Fatalf("alloc delta %d, want >= %d", d.AllocBytes, 6*(1<<20))
	}
	_ = sink
}

func TestCostSubClamps(t *testing.T) {
	a := Cost{AllocBytes: 10, CPU: 10}
	b := Cost{AllocBytes: 30, CPU: 5}
	d := a.Sub(b)
	if d.AllocBytes != 0 {
		t.Errorf("AllocBytes delta = %d, want clamped 0", d.AllocBytes)
	}
	if d.CPU != 5 {
		t.Errorf("CPU delta = %v, want 5", d.CPU)
	}
}

func TestCaptureOnceRingAndEviction(t *testing.T) {
	r := New(Config{CPUDuration: 10 * time.Millisecond, Retain: 3,
		Load: func() float64 { return 7 }})
	for i := 0; i < 3; i++ { // 3 ticks x 2 kinds = 6 captures into a ring of 3
		r.CaptureOnce()
	}
	caps, dropped := r.List()
	if len(caps) != 3 {
		t.Fatalf("ring holds %d captures, want 3", len(caps))
	}
	if dropped != 3 {
		t.Fatalf("dropped = %d, want 3", dropped)
	}
	// Oldest-first, and metadata populated.
	if caps[0].Seq > caps[len(caps)-1].Seq {
		t.Errorf("ring not oldest-first: %+v", caps)
	}
	for _, c := range caps {
		if c.Kind != "cpu" && c.Kind != "heap" {
			t.Errorf("capture kind %q", c.Kind)
		}
		if c.ID != fmt.Sprintf("%d-%s", c.Seq, c.Kind) {
			t.Errorf("capture ID %q does not match seq %d kind %s", c.ID, c.Seq, c.Kind)
		}
		if c.Load != 7 {
			t.Errorf("capture load %v, want 7", c.Load)
		}
		if c.Bytes != nil {
			t.Errorf("List must strip profile bytes")
		}
		if c.Err != "" {
			t.Errorf("capture %s failed: %s", c.ID, c.Err)
		}
	}
	got, ok := r.Get(caps[len(caps)-1].ID)
	if !ok || len(got.Bytes) == 0 {
		t.Fatalf("Get(%q) = ok=%v bytes=%d, want profile bytes", caps[len(caps)-1].ID, ok, len(got.Bytes))
	}
	if _, ok := r.Get("999-cpu"); ok {
		t.Error("Get of evicted/unknown ID succeeded")
	}
}

func TestCaptureSpillsToDirAndPrunes(t *testing.T) {
	dir := t.TempDir()
	r := New(Config{CPUDuration: 5 * time.Millisecond, Retain: 2, Dir: dir})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	r.Stop()
	r.CaptureOnce()
	r.CaptureOnce() // second tick evicts the first tick's captures
	caps, _ := r.List()
	if len(caps) != 2 {
		t.Fatalf("ring holds %d, want 2", len(caps))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		names := make([]string, len(entries))
		for i, e := range entries {
			names[i] = e.Name()
		}
		t.Fatalf("dir holds %v, want exactly the 2 retained captures", names)
	}
	for _, c := range caps {
		b, err := os.ReadFile(filepath.Join(dir, c.ID+".pprof"))
		if err != nil {
			t.Fatalf("retained capture %s not on disk: %v", c.ID, err)
		}
		full, _ := r.Get(c.ID)
		if !bytes.Equal(b, full.Bytes) {
			t.Errorf("disk bytes differ from ring bytes for %s", c.ID)
		}
	}
}

func TestCaptureRecordsCPUConflict(t *testing.T) {
	var sink bytes.Buffer
	if err := pprof.StartCPUProfile(&sink); err != nil {
		t.Fatal(err)
	}
	defer pprof.StopCPUProfile()
	r := New(Config{CPUDuration: 5 * time.Millisecond, Retain: 8, Logger: obs.NopLogger()})
	r.CaptureOnce()
	caps, _ := r.List()
	var cpu, heap *Capture
	for i := range caps {
		switch caps[i].Kind {
		case "cpu":
			cpu = &caps[i]
		case "heap":
			heap = &caps[i]
		}
	}
	if cpu == nil || cpu.Err == "" {
		t.Fatalf("cpu capture should record the profiler conflict, got %+v", cpu)
	}
	if heap == nil || heap.Err != "" {
		t.Fatalf("heap capture should still succeed, got %+v", heap)
	}
}

func TestRecorderStartStopTicks(t *testing.T) {
	r := New(Config{Interval: 20 * time.Millisecond, CPUDuration: 5 * time.Millisecond, Retain: 64})
	if err := r.Start(); err != nil {
		t.Fatal(err)
	}
	deadline := obs.Now().Add(5 * time.Second)
	for {
		caps, _ := r.List()
		if len(caps) >= 2 {
			break
		}
		if obs.Now().After(deadline) {
			t.Fatal("no captures after 5s of 20ms interval")
		}
		time.Sleep(5 * time.Millisecond)
	}
	r.Stop()
	n0, _ := r.List()
	time.Sleep(50 * time.Millisecond)
	n1, _ := r.List()
	if len(n1) != len(n0) {
		t.Fatalf("captures kept arriving after Stop: %d -> %d", len(n0), len(n1))
	}
}

// TestCaptureCarriesPprofLabels pins the attribution contract end to end at
// this layer: CPU samples taken by a capture while labeled mining work runs
// carry {request_id, dataset_fp, phase}. The label strings land in the
// profile protobuf's string table, so gunzip+Contains is enough to assert
// presence without a profile parser.
func TestCaptureCarriesPprofLabels(t *testing.T) {
	const reqID = "deadbeef-42"
	ctx := obs.WithMineLabels(context.Background(), reqID, "fp-cafe")
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		obs.DoPhase(ctx, obs.PhaseMine, func(context.Context) {
			x := 0.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				for i := 0; i < 1000; i++ {
					x += float64(i % 7)
				}
			}
		})
	}()
	defer func() { close(stop); <-done }()

	// Sampling is statistical (100Hz): retry a few short windows before
	// declaring the labels missing.
	for attempt := 0; attempt < 5; attempt++ {
		r := New(Config{CPUDuration: 300 * time.Millisecond, Retain: 4})
		r.CaptureOnce()
		caps, _ := r.List()
		var raw []byte
		for _, c := range caps {
			if c.Kind == "cpu" {
				full, _ := r.Get(c.ID)
				raw = full.Bytes
			}
		}
		if len(raw) == 0 {
			t.Fatal("no cpu capture bytes")
		}
		zr, err := gzip.NewReader(bytes.NewReader(raw))
		if err != nil {
			t.Fatalf("cpu capture is not gzipped pprof: %v", err)
		}
		proto, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		if bytes.Contains(proto, []byte(obs.LabelRequestID)) &&
			bytes.Contains(proto, []byte(reqID)) &&
			bytes.Contains(proto, []byte(obs.LabelPhase)) &&
			bytes.Contains(proto, []byte("mine")) {
			return // labels present
		}
	}
	t.Fatal("no capture attempt contained the request_id/phase labels")
}
