package prof

import (
	"runtime/metrics"
	"time"
)

// Cost is a point-in-time read of the process's cumulative resource use.
// Per-request cost is the difference of two reads taken around the mining
// section; both counters are process-wide, so attribution is exact only
// while one request mines at a time and an upper bound under concurrency
// (the journal documents it as such).
type Cost struct {
	// AllocBytes is cumulative heap allocation (runtime/metrics
	// /gc/heap/allocs:bytes): monotone, counts all allocs ever, immune to
	// GC timing.
	AllocBytes uint64
	// CPU is cumulative user+system CPU time consumed by the process.
	// Read from getrusage on unix; zero where unavailable, and a Sub of
	// two zero reads stays zero rather than inventing numbers.
	CPU time.Duration
}

// Sub returns the per-section delta c-prev, clamped at zero (counters are
// monotone, but clamping keeps a misordered pair from going negative).
func (c Cost) Sub(prev Cost) Cost {
	d := Cost{}
	if c.AllocBytes > prev.AllocBytes {
		d.AllocBytes = c.AllocBytes - prev.AllocBytes
	}
	if c.CPU > prev.CPU {
		d.CPU = c.CPU - prev.CPU
	}
	return d
}

var allocSample = []metrics.Sample{{Name: "/gc/heap/allocs:bytes"}}

// ReadCost samples the process counters. Cheap enough to call per request:
// one runtime/metrics read plus one getrusage syscall.
func ReadCost() Cost {
	s := make([]metrics.Sample, len(allocSample))
	copy(s, allocSample)
	metrics.Read(s)
	return Cost{AllocBytes: s[0].Value.Uint64(), CPU: processCPU()}
}
