//go:build unix

package prof

import (
	"syscall"
	"time"
)

// processCPU returns cumulative user+system CPU time via getrusage.
// runtime/metrics' /cpu/classes/* would avoid the syscall but is only
// refreshed at GC boundaries (and documented as an estimate), so deltas
// around a short mining section read as zero there; rusage is exact.
func processCPU() time.Duration {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return tvDuration(ru.Utime) + tvDuration(ru.Stime)
}

func tvDuration(tv syscall.Timeval) time.Duration {
	return time.Duration(tv.Sec)*time.Second + time.Duration(tv.Usec)*time.Microsecond
}
