//go:build !unix

package prof

import "time"

// processCPU is unavailable off unix; cost deltas report zero CPU there
// (alloc bytes still work — they come from runtime/metrics).
func processCPU() time.Duration { return 0 }
