// Package prof is the continuous-profiling subsystem: a recorder that
// periodically captures CPU and heap pprof profiles of the running process
// into a bounded in-memory ring (optionally spilled to disk), plus the
// per-request cost readout (alloc bytes, CPU seconds) the serve layer
// wraps around its mining sections.
//
// It is stdlib-only and sits one layer above internal/obs (for the shared
// clock); only the serve layer and the cmds may import it — profiling is
// service plumbing, not a library for the miner, and the layering pass
// enforces that.
//
// Design: a capture is cheap (runtime/pprof does the work) but not free,
// so the recorder runs one background goroutine on a fixed interval; each
// tick takes a CPU profile of a short window and a heap snapshot, stamps
// both with capture metadata (sequence, wall time, load at capture, alloc
// delta over the window), and pushes them into a ring of the last Retain
// captures. When the ring is full the oldest capture is dropped and a
// dropped counter advances, so the /debug/profiles listing always says how
// much history was discarded. Ring data lives in memory — profiles of this
// process are a few tens of KB gzipped — and is additionally written to
// Dir when set, so a crashed process leaves its last profiles behind.
package prof

import (
	"bytes"
	"fmt"
	"log/slog"
	"os"
	"path/filepath"
	"runtime/pprof"
	"sync"
	"time"

	"github.com/recurpat/rp/internal/obs"
)

// Config parameterizes a Recorder. The zero value is usable: defaults are
// applied by New.
type Config struct {
	// Interval is the spacing between capture ticks. Default 60s.
	Interval time.Duration
	// CPUDuration is the length of the CPU-profile window inside each
	// tick. Default min(1s, Interval/2); clamped to Interval/2 so a tick
	// always finishes before the next starts.
	CPUDuration time.Duration
	// Retain bounds the capture ring (one entry per profile kind per
	// tick). Default 16.
	Retain int
	// Dir, when non-empty, also writes each capture to
	// <Dir>/<seq>-<kind>.pprof. The directory is created on Start. Disk
	// files are pruned alongside the ring.
	Dir string
	// Load, when non-nil, is sampled at each capture and recorded in the
	// capture metadata (the serve layer passes its admission in-flight
	// count, so a profile can be read next to the load it saw).
	Load func() float64
	// Logger receives capture failures. Nil means discard.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Interval <= 0 {
		c.Interval = time.Minute
	}
	if c.CPUDuration <= 0 {
		c.CPUDuration = time.Second
	}
	if c.CPUDuration > c.Interval/2 {
		c.CPUDuration = c.Interval / 2
	}
	if c.Retain <= 0 {
		c.Retain = 16
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	return c
}

// Capture is one recorded profile plus its metadata. Bytes holds the
// gzipped pprof protobuf exactly as runtime/pprof wrote it.
type Capture struct {
	// ID names the capture for download URLs and disk files:
	// "<seq>-<kind>", e.g. "42-cpu".
	ID string `json:"id"`
	// Kind is "cpu" or "heap".
	Kind string `json:"kind"`
	// Seq increments per tick (both kinds of one tick share a Seq).
	Seq uint64 `json:"seq"`
	// Start is the wall time the capture window opened.
	Start time.Time `json:"start"`
	// DurMS is the capture window length (CPU) or 0 (heap snapshot).
	DurMS int64 `json:"durMS"`
	// Load is Config.Load sampled at the window open, or 0.
	Load float64 `json:"load"`
	// AllocDeltaBytes is the heap allocation growth across the capture
	// window (both kinds of one tick report the same window).
	AllocDeltaBytes uint64 `json:"allocDeltaBytes"`
	// Err carries a capture failure (for example the CPU profiler was
	// already running under -cpuprofile); Bytes is empty then.
	Err string `json:"err,omitempty"`

	Bytes []byte `json:"-"`
}

// Recorder owns the background capture loop and the ring. Create with New,
// then Start/Stop; List and Get serve the ring to HTTP handlers.
type Recorder struct {
	cfg Config

	mu      sync.Mutex
	ring    []Capture // oldest first, len <= cfg.Retain
	dropped uint64
	seq     uint64

	stop chan struct{}
	wg   sync.WaitGroup
}

// New returns a stopped Recorder with defaults applied.
func New(cfg Config) *Recorder {
	return &Recorder{cfg: cfg.withDefaults()}
}

// Interval returns the effective capture interval after defaulting.
func (r *Recorder) Interval() time.Duration { return r.cfg.Interval }

// Retain returns the effective ring capacity after defaulting.
func (r *Recorder) Retain() int { return r.cfg.Retain }

// Start launches the capture loop. It returns an error only when Dir is
// set and cannot be created. Start after Stop is not supported.
func (r *Recorder) Start() error {
	if r.cfg.Dir != "" {
		if err := os.MkdirAll(r.cfg.Dir, 0o755); err != nil {
			return fmt.Errorf("prof: create capture dir: %w", err)
		}
	}
	r.stop = make(chan struct{})
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		r.loop()
	}()
	return nil
}

// Stop terminates the capture loop and waits for an in-flight capture to
// finish. Safe to call once after Start.
func (r *Recorder) Stop() {
	if r.stop == nil {
		return
	}
	close(r.stop)
	r.wg.Wait()
}

func (r *Recorder) loop() {
	ticker := time.NewTicker(r.cfg.Interval)
	defer ticker.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-ticker.C:
			r.CaptureOnce()
		}
	}
}

// CaptureOnce performs one capture tick synchronously: a CPU profile over
// the configured window plus a heap snapshot, both pushed into the ring.
// Exported for tests and for a future on-demand trigger; the background
// loop calls it per tick.
func (r *Recorder) CaptureOnce() {
	seq := r.nextSeq()
	start := obs.Now()
	load := 0.0
	if r.cfg.Load != nil {
		load = r.cfg.Load()
	}
	alloc0 := ReadCost().AllocBytes

	var cpuBuf bytes.Buffer
	cpuErr := pprof.StartCPUProfile(&cpuBuf)
	if cpuErr == nil {
		// The window is a plain sleep, interruptible by Stop so shutdown
		// never waits out a long window.
		select {
		case <-time.After(r.cfg.CPUDuration):
		case <-r.stopCh():
		}
		pprof.StopCPUProfile()
	}

	allocDelta := ReadCost().AllocBytes - alloc0
	cpu := Capture{
		ID:              fmt.Sprintf("%d-cpu", seq),
		Kind:            "cpu",
		Seq:             seq,
		Start:           start,
		DurMS:           r.cfg.CPUDuration.Milliseconds(),
		Load:            load,
		AllocDeltaBytes: allocDelta,
		Bytes:           cpuBuf.Bytes(),
	}
	if cpuErr != nil {
		// Another profiler owns the CPU profile (e.g. -cpuprofile); record
		// the failed slot so the listing shows the gap, keep heap captures.
		cpu.Err = cpuErr.Error()
		cpu.Bytes = nil
		r.cfg.Logger.Warn("prof: cpu capture failed", "err", cpuErr)
	}

	var heapBuf bytes.Buffer
	heap := Capture{
		ID:              fmt.Sprintf("%d-heap", seq),
		Kind:            "heap",
		Seq:             seq,
		Start:           start,
		Load:            load,
		AllocDeltaBytes: allocDelta,
	}
	if err := pprof.Lookup("heap").WriteTo(&heapBuf, 0); err != nil {
		heap.Err = err.Error()
		r.cfg.Logger.Warn("prof: heap capture failed", "err", err)
	} else {
		heap.Bytes = heapBuf.Bytes()
	}

	r.push(cpu)
	r.push(heap)
}

// stopCh returns the stop channel, or a nil channel (blocks forever) when
// the recorder was never started — CaptureOnce must work standalone.
func (r *Recorder) stopCh() <-chan struct{} {
	if r.stop == nil {
		return nil
	}
	return r.stop
}

func (r *Recorder) nextSeq() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.seq++
	return r.seq
}

func (r *Recorder) push(c Capture) {
	if c.Err == "" && r.cfg.Dir != "" {
		path := filepath.Join(r.cfg.Dir, c.ID+".pprof")
		if err := os.WriteFile(path, c.Bytes, 0o644); err != nil {
			r.cfg.Logger.Warn("prof: spill capture", "path", path, "err", err)
		}
	}
	r.mu.Lock()
	var evicted []Capture
	r.ring = append(r.ring, c)
	for len(r.ring) > r.cfg.Retain {
		evicted = append(evicted, r.ring[0])
		r.ring = r.ring[1:]
		r.dropped++
	}
	r.mu.Unlock()
	if r.cfg.Dir != "" {
		for _, old := range evicted {
			if err := os.Remove(filepath.Join(r.cfg.Dir, old.ID+".pprof")); err != nil && !os.IsNotExist(err) {
				r.cfg.Logger.Warn("prof: prune capture", "id", old.ID, "err", err)
			}
		}
	}
}

// List returns the retained captures oldest-first (metadata only, Bytes
// nil) plus the count of captures dropped by ring eviction.
func (r *Recorder) List() (captures []Capture, dropped uint64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	captures = make([]Capture, len(r.ring))
	for i, c := range r.ring {
		c.Bytes = nil
		captures[i] = c
	}
	return captures, r.dropped
}

// Get returns the capture with the given ID, including its profile bytes.
func (r *Recorder) Get(id string) (Capture, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.ring {
		if c.ID == id {
			return c, true
		}
	}
	return Capture{}, false
}
