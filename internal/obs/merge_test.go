package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// peerFixture builds one synthetic grafted peer: a recorded shard run with
// a queue span and a mine span, stamped with the given clock references.
func peerFixture(peer string, sendNS, recvNS, elapsedNS int64, events ...PeerEvent) PeerTimeline {
	return PeerTimeline{
		Peer:      peer,
		SendNS:    sendNS,
		RecvNS:    recvNS,
		ElapsedNS: elapsedNS,
		Snapshot: TimelineSnapshot{
			Cap: 8,
			Spans: []SpanRecord{
				{Phase: "queue", StartNS: 0, DurNS: 50},
				{Phase: "mine", Label: "shard", StartNS: 50, DurNS: elapsedNS - 50, Merges: 2, Prunes: 1},
			},
		},
		Events: events,
	}
}

func TestAlignOffset(t *testing.T) {
	// The peer's handling window centers inside the send→receive window:
	// send=1000, recv=5000, handling=2000 → the network halves split the
	// remaining 2000ns evenly and the peer epoch lands at 2000.
	pt := peerFixture("a", 1000, 5000, 2000)
	if off := pt.AlignOffset(); off != 2000 {
		t.Errorf("AlignOffset = %d, want 2000", off)
	}
	// A peer clock that claims more handling time than the whole exchange
	// took (clock skew, coarse timers) clamps to the send instant rather
	// than rendering spans before the request left.
	pt = peerFixture("a", 1000, 5000, 60000)
	if off := pt.AlignOffset(); off != 1000 {
		t.Errorf("skewed AlignOffset = %d, want clamp to SendNS=1000", off)
	}
	// Without a reported ElapsedNS the span extent stands in for the
	// handling width.
	pt = peerFixture("a", 1000, 5000, 2000)
	pt.ElapsedNS = 0 // spans end at 1950... rebuild with a known extent
	pt.Snapshot.Spans = []SpanRecord{{Phase: "mine", StartNS: 0, DurNS: 2000}}
	if off := pt.AlignOffset(); off != 2000 {
		t.Errorf("fallback AlignOffset = %d, want 2000", off)
	}
	// Aligned spans always land inside the send→receive window.
	pt = peerFixture("b", 700, 1300, 400)
	off := pt.AlignOffset()
	for _, s := range pt.Snapshot.Spans {
		if start := s.StartNS + off; start < 700 || start+s.DurNS > 1300+400 {
			t.Errorf("aligned span [%d,%d] escapes the exchange window", start, start+s.DurNS)
		}
	}
}

// TestMergeOrderInvariance is the determinism property the fleet merge
// promises: whatever order peer responses arrive in (AddPeer call order),
// the snapshot and the rendered Chrome trace are byte-identical, because
// grafts are canonicalized by (peer, send time).
func TestMergeOrderInvariance(t *testing.T) {
	grafts := []PeerTimeline{
		peerFixture("http://b:1", 2000, 9000, 4000, PeerEvent{Name: "retry 1 -> http://b:1", AtNS: 1500}),
		peerFixture("http://a:1", 1000, 8000, 5000),
		peerFixture("http://a:1", 3000, 7000, 3000), // same peer, second task
	}
	perms := [][]int{
		{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0},
	}
	var want []byte
	for _, perm := range perms {
		tl := NewTimeline(8)
		tl.record(SpanRecord{Phase: "total", StartNS: 0, DurNS: 10000})
		for _, i := range perm {
			tl.AddPeer(grafts[i])
		}
		var buf bytes.Buffer
		if err := WriteTraceEvents(&buf, "coordinator", tl.Snapshot()); err != nil {
			t.Fatal(err)
		}
		if want == nil {
			want = buf.Bytes()
			continue
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Fatalf("arrival order %v changed the rendered trace:\n%s\nvs\n%s", perm, buf.Bytes(), want)
		}
	}
	if _, err := ValidateTraceEvents(bytes.NewReader(want)); err != nil {
		t.Fatalf("merged fleet trace fails validation: %v", err)
	}
}

// TestFleetTraceRender pins the merged trace's structure: one process
// track per distinct peer, peer spans shifted onto the coordinator clock,
// client annotations as instant events, and dropped counts summed
// fleet-wide.
func TestFleetTraceRender(t *testing.T) {
	tl := NewTimeline(8)
	tl.record(SpanRecord{Phase: "total", StartNS: 0, DurNS: 10000})
	a := peerFixture("http://a:1", 1000, 8000, 5000)
	a.Snapshot.Dropped = 3
	b := peerFixture("http://b:1", 2000, 9000, 4000, PeerEvent{Name: "hedge -> http://b:1", AtNS: 2500})
	tl.AddPeer(b)
	tl.AddPeer(a)

	var buf bytes.Buffer
	if err := WriteTraceEvents(&buf, "coordinator", tl.Snapshot()); err != nil {
		t.Fatal(err)
	}
	var f struct {
		TraceEvents []TraceEvent      `json:"traceEvents"`
		OtherData   map[string]string `json:"otherData"`
	}
	if err := json.Unmarshal(buf.Bytes(), &f); err != nil {
		t.Fatal(err)
	}
	names := map[int]string{}
	spansByPid := map[int]int{}
	instants := 0
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				names[ev.Pid], _ = ev.Args["name"].(string)
			}
		case "X":
			spansByPid[ev.Pid]++
		case "i":
			instants++
			if ev.S != "p" {
				t.Errorf("instant event scope = %q, want process-wide \"p\"", ev.S)
			}
		}
	}
	if names[1] != "coordinator" {
		t.Errorf("pid 1 named %q, want coordinator", names[1])
	}
	// Canonical order: peers sort by URL, so a gets pid 2 and b pid 3.
	if names[2] != "peer http://a:1" || names[3] != "peer http://b:1" {
		t.Errorf("peer tracks misnamed/misordered: %v", names)
	}
	if spansByPid[2] != 2 || spansByPid[3] != 2 {
		t.Errorf("peer span counts = %v, want 2 per peer", spansByPid)
	}
	if instants != 1 {
		t.Errorf("instant events = %d, want 1", instants)
	}
	// Peer a's graft: offset = 1000+(7000-5000)/2 = 2000, so its queue span
	// starts at 2000ns = 2µs on peer a's track.
	found := false
	for _, ev := range f.TraceEvents {
		if ev.Ph == "X" && ev.Pid == 2 && ev.Name == "queue" {
			found = true
			if ev.Ts != 2.0 {
				t.Errorf("aligned queue span at %vµs, want 2µs", ev.Ts)
			}
		}
	}
	if !found {
		t.Error("peer a's queue span missing from its track")
	}
	if f.OtherData["droppedSpans"] != "3" {
		t.Errorf("droppedSpans = %q, want fleet-wide sum 3", f.OtherData["droppedSpans"])
	}
}

func TestTimelineRecordSpanAndElapsed(t *testing.T) {
	tl := NewTimeline(4)
	start := Now()
	if el := tl.Elapsed(start); el < 0 {
		t.Errorf("Elapsed of a post-epoch instant = %d, want >= 0", el)
	}
	tl.RecordSpan("queue", "slot", start, 5*time.Millisecond)
	snap := tl.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Phase != "queue" || snap.Spans[0].Label != "slot" {
		t.Fatalf("RecordSpan retained %+v", snap.Spans)
	}
	if snap.Spans[0].DurNS != int64(5*time.Millisecond) {
		t.Errorf("DurNS = %d, want 5ms", snap.Spans[0].DurNS)
	}

	// Nil receivers stay inert across the merge API.
	var nilTL *Timeline
	nilTL.RecordSpan("queue", "", Now(), time.Millisecond)
	nilTL.AddPeer(PeerTimeline{Peer: "x"})
	if el := nilTL.Elapsed(Now()); el != 0 {
		t.Errorf("nil Elapsed = %d, want 0", el)
	}
	if s := nilTL.Snapshot(); len(s.Spans) != 0 || len(s.Peers) != 0 {
		t.Errorf("nil Snapshot = %+v, want empty", s)
	}
}

func TestParsePhase(t *testing.T) {
	for p := Phase(0); p < NumPhases; p++ {
		got, ok := ParsePhase(p.String())
		if !ok || got != p {
			t.Errorf("ParsePhase(%q) = %v/%v, want %v", p.String(), got, ok, p)
		}
	}
	if _, ok := ParsePhase("no-such-phase"); ok {
		t.Error("ParsePhase accepted an unknown name")
	}
}

func TestValidateTraceEventsInstant(t *testing.T) {
	ok := `{"traceEvents":[
		{"name":"mine","ph":"X","ts":0,"dur":1,"pid":1,"tid":0},
		{"name":"retry 1","ph":"i","s":"p","ts":5,"pid":2,"tid":0}
	],"displayTimeUnit":"ms"}`
	if spans, err := ValidateTraceEvents(strings.NewReader(ok)); err != nil || spans != 1 {
		t.Errorf("instant event rejected or miscounted: spans=%d err=%v", spans, err)
	}
	bad := `{"traceEvents":[
		{"name":"mine","ph":"X","ts":0,"dur":1,"pid":1,"tid":0},
		{"name":"retry 1","ph":"i","ts":-5,"pid":2,"tid":0}
	],"displayTimeUnit":"ms"}`
	if _, err := ValidateTraceEvents(strings.NewReader(bad)); err == nil {
		t.Error("negative-timestamp instant event validated")
	}
}
