package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus text exposition (version 0.0.4) rendering. Deliberately a
// writer API, not a registry: the callers own their atomics (serve.metrics,
// Trace) and render a snapshot per scrape, so there is no second source of
// truth to keep in sync and nothing to register at init time.

// PromWriter renders metric families in Prometheus text exposition format.
// Families must be written one at a time (all samples of a name together),
// which the single-method-per-family API enforces naturally. Write errors
// latch: rendering continues cheaply but Err returns the first failure.
type PromWriter struct {
	w   io.Writer
	err error
}

// NewPromWriter wraps w.
func NewPromWriter(w io.Writer) *PromWriter { return &PromWriter{w: w} }

// Err returns the first write error, or nil.
func (p *PromWriter) Err() error { return p.err }

func (p *PromWriter) printf(format string, args ...any) {
	if p.err != nil {
		return
	}
	if _, err := fmt.Fprintf(p.w, format, args...); err != nil {
		p.err = err
	}
}

// header emits the HELP and TYPE lines of a family.
func (p *PromWriter) header(name, help, typ string) {
	p.printf("# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

// Counter writes a counter family with a single unlabelled sample.
func (p *PromWriter) Counter(name, help string, value float64) {
	p.header(name, help, "counter")
	p.printf("%s %s\n", name, formatPromValue(value))
}

// LabeledValue is one sample of a labeled metric family.
type LabeledValue struct {
	Labels map[string]string
	Value  float64
}

// CounterVec writes a counter family with one sample per labeled value, in
// the order given (callers sort for deterministic exposition). An empty
// sample list still emits the HELP/TYPE header so the family is
// discoverable.
func (p *PromWriter) CounterVec(name, help string, samples []LabeledValue) {
	p.header(name, help, "counter")
	for _, s := range samples {
		p.printf("%s%s %s\n", name, formatLabels(s.Labels), formatPromValue(s.Value))
	}
}

// Gauge writes a gauge family with a single unlabelled sample.
func (p *PromWriter) Gauge(name, help string, value float64) {
	p.header(name, help, "gauge")
	p.printf("%s %s\n", name, formatPromValue(value))
}

// Histogram writes one histogram family from per-bucket (non-cumulative)
// counts: buckets[i] holds the observations with value <= bounds[i], and
// buckets[len(bounds)] the rest. The rendered _bucket series are cumulative
// with an explicit +Inf bucket, plus the _sum and _count samples, per the
// exposition format. labels, which may be nil, are applied to every sample.
func (p *PromWriter) Histogram(name, help string, labels map[string]string, bounds []float64, buckets []int64, sum float64) {
	p.header(name, help, "histogram")
	var cum int64
	for i, b := range bounds {
		cum += buckets[i]
		p.printf("%s_bucket%s %d\n", name, formatLabels(labels, "le", formatPromValue(b)), cum)
	}
	cum += buckets[len(bounds)]
	p.printf("%s_bucket%s %d\n", name, formatLabels(labels, "le", "+Inf"), cum)
	p.printf("%s_sum%s %s\n", name, formatLabels(labels), formatPromValue(sum))
	p.printf("%s_count%s %d\n", name, formatLabels(labels), cum)
}

// labelEscaper applies the label-value escaping the text exposition format
// (version 0.0.4) defines: backslash, double-quote and line-feed become
// backslash sequences, every other byte — UTF-8 included — passes through
// literally. Go's %q is close but wrong here: it also escapes tabs,
// control bytes and non-ASCII runes, which Prometheus parsers would read
// back as literal backslash sequences.
var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// formatLabels renders a label set (plus optional extra key/value pairs
// appended last) as {k="v",...}, keys sorted for deterministic output, or
// the empty string when there are no labels at all. Values are escaped per
// the exposition format.
func formatLabels(labels map[string]string, extra ...string) string {
	if len(labels) == 0 && len(extra) == 0 {
		return ""
	}
	keys := make([]string, 0, len(labels))
	for k := range labels {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", k, labelEscaper.Replace(labels[k]))
	}
	for i := 0; i+1 < len(extra); i += 2 {
		if i > 0 || len(keys) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", extra[i], labelEscaper.Replace(extra[i+1]))
	}
	b.WriteByte('}')
	return b.String()
}

// formatPromValue renders a float the way Prometheus clients do: integers
// without an exponent or trailing zeros, everything else in Go's shortest
// representation.
func formatPromValue(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
