package obs

import (
	"sync"
	"testing"
)

// TestNilTraceTimelineInert covers the flight-recorder additions to the
// nil-receiver contract: every new exported API must be a no-op on a nil
// *Trace / nil *Timeline and on the zero TaskSpan.
func TestNilTraceTimelineInert(t *testing.T) {
	var tr *Trace
	tr.AttachTimeline(NewTimeline(8))
	if tl := tr.Timeline(); tl != nil {
		t.Fatalf("nil trace returned a timeline: %v", tl)
	}
	var lc Local
	sp := tr.StartTask("item=1", &lc)
	sp.End(&lc)
	if lc.nanos[PhaseMine] != 0 || lc.counts[PhaseMine] != 0 {
		t.Fatal("zero TaskSpan.End observed into the Local")
	}

	var tl *Timeline
	tl.record(SpanRecord{Phase: "mine"})
	if got := tl.Snapshot(); len(got.Spans) != 0 || got.Dropped != 0 {
		t.Fatalf("nil timeline snapshot not empty: %+v", got)
	}
	if tl.Cap() != 0 {
		t.Fatalf("nil timeline cap = %d, want 0", tl.Cap())
	}
}

// TestTraceWithoutTimelineStaysAggregateOnly pins the pay-for-use contract:
// a Trace with no timeline attached records aggregates exactly as before
// and retains nothing.
func TestTraceWithoutTimelineStaysAggregateOnly(t *testing.T) {
	tr := NewTrace()
	tr.Start(PhaseScan).End()
	var lc Local
	sp := tr.StartTask("item=3", &lc)
	sp.End(&lc)
	lc.Flush(tr)

	r := tr.Report()
	if phaseStat(t, r, "scan").Count != 1 || phaseStat(t, r, "mine").Count != 1 {
		t.Fatalf("aggregates not recorded without a timeline: %+v", r)
	}
	if tr.Timeline() != nil {
		t.Fatal("trace grew a timeline nobody attached")
	}
}

func TestTimelineRecordsSpansAndTasks(t *testing.T) {
	tr := NewTrace()
	tl := NewTimeline(0)
	tr.AttachTimeline(tl)
	if tl.Cap() != DefaultTimelineSpans {
		t.Fatalf("zero cap resolved to %d, want DefaultTimelineSpans", tl.Cap())
	}

	total := tr.StartTotal()
	tr.Start(PhaseScan).End()
	var lc Local
	sp := tr.StartTask("item=7", &lc)
	lc.Observe(PhaseMerge, 100, 2)
	lc.Observe(PhasePrune, 0, 3)
	sp.End(&lc)
	lc.Flush(tr)
	total.End()

	snap := tl.Snapshot()
	if len(snap.Spans) != 3 {
		t.Fatalf("retained %d spans, want 3 (scan, mine task, total): %+v", len(snap.Spans), snap.Spans)
	}
	byPhase := map[string]SpanRecord{}
	for _, s := range snap.Spans {
		byPhase[s.Phase] = s
		if s.StartNS < 0 || s.DurNS < 0 {
			t.Errorf("span %q has negative timing: %+v", s.Phase, s)
		}
	}
	task, ok := byPhase["mine"]
	if !ok {
		t.Fatalf("no mine task span retained: %+v", snap.Spans)
	}
	if task.Label != "item=7" || task.MergeNS != 100 || task.Merges != 2 || task.Prunes != 3 {
		t.Errorf("task span work attribution wrong: %+v", task)
	}
	if tot, ok := byPhase["total"]; !ok || tot.DurNS < task.DurNS {
		t.Errorf("total span missing or shorter than its task: %+v", byPhase["total"])
	}
	// The aggregate side must agree with the retained side.
	r := tr.Report()
	if got := phaseStat(t, r, "mine"); got.Nanos != task.DurNS || got.Count != 1 {
		t.Errorf("aggregate mine (%d ns, %d tasks) disagrees with retained span (%d ns)", got.Nanos, got.Count, task.DurNS)
	}
}

// TestTimelineCapDegradesToAggregates checks that a full timeline drops
// (and counts) further spans while the aggregates keep everything.
func TestTimelineCapDegradesToAggregates(t *testing.T) {
	tr := NewTrace()
	tl := NewTimeline(2)
	tr.AttachTimeline(tl)

	var lc Local
	for i := 0; i < 5; i++ {
		sp := tr.StartTask("", &lc)
		sp.End(&lc)
	}
	lc.Flush(tr)

	snap := tl.Snapshot()
	if len(snap.Spans) != 2 || snap.Dropped != 3 || snap.Cap != 2 {
		t.Fatalf("cap behavior: got %d spans, %d dropped, cap %d; want 2, 3, 2", len(snap.Spans), snap.Dropped, snap.Cap)
	}
	if got := phaseStat(t, tr.Report(), "mine").Count; got != 5 {
		t.Fatalf("aggregates lost capped tasks: count=%d, want 5", got)
	}

	// A negative cap retains nothing at all.
	none := NewTimeline(-1)
	none.record(SpanRecord{Phase: "mine"})
	if snap := none.Snapshot(); len(snap.Spans) != 0 || snap.Dropped != 1 {
		t.Fatalf("negative-cap timeline retained spans: %+v", snap)
	}
}

// TestTimelineConcurrentRecording shares one timeline across goroutines the
// way the parallel miner's workers do; run under -race by make check.
func TestTimelineConcurrentRecording(t *testing.T) {
	const workers, tasks = 8, 50
	tr := NewTrace()
	tl := NewTimeline(workers * tasks)
	tr.AttachTimeline(tl)

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lc Local
			for i := 0; i < tasks; i++ {
				sp := tr.StartTask("item", &lc)
				lc.Observe(PhaseMerge, 1, 1)
				sp.End(&lc)
				lc.Flush(tr)
			}
		}()
	}
	wg.Wait()

	snap := tl.Snapshot()
	if len(snap.Spans) != workers*tasks || snap.Dropped != 0 {
		t.Fatalf("retained %d spans (%d dropped), want %d", len(snap.Spans), snap.Dropped, workers*tasks)
	}
	var merges int64
	for _, s := range snap.Spans {
		merges += s.Merges
	}
	if merges != workers*tasks {
		t.Fatalf("per-span merge attribution lost work: %d, want %d", merges, workers*tasks)
	}
}
