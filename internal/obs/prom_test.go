package obs

import (
	"errors"
	"strings"
	"testing"
)

// TestPromGolden pins the exact exposition text for a representative family
// mix; any formatting drift (spacing, cumulative buckets, label quoting,
// float rendering) must show up as a diff here before a scraper sees it.
func TestPromGolden(t *testing.T) {
	var b strings.Builder
	p := NewPromWriter(&b)
	p.Counter("rpserved_requests_total", "Mining requests received.", 42)
	p.Gauge("rpserved_in_flight", "Mines currently running.", 3)
	p.Histogram("rpserved_mining_seconds", "Wall time per mining run.", nil,
		[]float64{0.001, 0.01, 0.1, 1, 10},
		[]int64{5, 3, 2, 0, 1, 1},
		12.625)
	p.Histogram("rpserved_phase_seconds", "Wall time per phase.",
		map[string]string{"phase": "scan"},
		[]float64{0.001, 0.01},
		[]int64{1, 0, 0},
		0.0005)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}

	want := `# HELP rpserved_requests_total Mining requests received.
# TYPE rpserved_requests_total counter
rpserved_requests_total 42
# HELP rpserved_in_flight Mines currently running.
# TYPE rpserved_in_flight gauge
rpserved_in_flight 3
# HELP rpserved_mining_seconds Wall time per mining run.
# TYPE rpserved_mining_seconds histogram
rpserved_mining_seconds_bucket{le="0.001"} 5
rpserved_mining_seconds_bucket{le="0.01"} 8
rpserved_mining_seconds_bucket{le="0.1"} 10
rpserved_mining_seconds_bucket{le="1"} 10
rpserved_mining_seconds_bucket{le="10"} 11
rpserved_mining_seconds_bucket{le="+Inf"} 12
rpserved_mining_seconds_sum 12.625
rpserved_mining_seconds_count 12
# HELP rpserved_phase_seconds Wall time per phase.
# TYPE rpserved_phase_seconds histogram
rpserved_phase_seconds_bucket{phase="scan",le="0.001"} 1
rpserved_phase_seconds_bucket{phase="scan",le="0.01"} 1
rpserved_phase_seconds_bucket{phase="scan",le="+Inf"} 1
rpserved_phase_seconds_sum{phase="scan"} 0.0005
rpserved_phase_seconds_count{phase="scan"} 1
`
	if got := b.String(); got != want {
		t.Errorf("exposition text differs\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// failAfter fails every write past the first n bytes, to exercise error
// latching.
type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("sink full")
	}
	f.n -= len(p)
	return len(p), nil
}

func TestPromWriterLatchesErrors(t *testing.T) {
	p := NewPromWriter(&failAfter{n: 10})
	p.Counter("a_total", "A.", 1)
	p.Counter("b_total", "B.", 2)
	if p.Err() == nil {
		t.Fatal("expected a latched write error")
	}
}

// TestFormatLabelsEscaping covers the exposition format's label-value
// escaping rules: backslash, double-quote and line-feed are escaped, and
// nothing else is — tabs and non-ASCII UTF-8 must pass through literally
// (where Go's %q would mangle them into backslash sequences).
func TestFormatLabelsEscaping(t *testing.T) {
	cases := []struct {
		name  string
		value string
		want  string
	}{
		{"plain", "shop", `{db="shop"}`},
		{"embedded quotes", `say "hi"`, `{db="say \"hi\""}`},
		{"newline", "line1\nline2", `{db="line1\nline2"}`},
		{"backslash", `C:\data\db`, `{db="C:\\data\\db"}`},
		{"backslash then quote", `\"`, `{db="\\\""}`},
		{"all three", "a\\b\"c\nd", `{db="a\\b\"c\nd"}`},
		{"tab stays literal", "a\tb", "{db=\"a\tb\"}"},
		{"utf-8 stays literal", "café→η", `{db="café→η"}`},
	}
	for _, tc := range cases {
		if got := formatLabels(map[string]string{"db": tc.value}); got != tc.want {
			t.Errorf("%s: formatLabels(%q) = %s, want %s", tc.name, tc.value, got, tc.want)
		}
	}
	// The extra (appended) pairs are escaped the same way.
	got := formatLabels(map[string]string{"phase": "scan"}, "le", `+Inf"`)
	if want := `{phase="scan",le="+Inf\""}`; got != want {
		t.Errorf("extra pair escaping: got %s, want %s", got, want)
	}
	if got := formatLabels(nil); got != "" {
		t.Errorf("no labels should render empty, got %q", got)
	}
}

func TestFormatPromValue(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		42:     "42",
		-3:     "-3",
		0.0005: "0.0005",
		12.625: "12.625",
	}
	for in, want := range cases {
		if got := formatPromValue(in); got != want {
			t.Errorf("formatPromValue(%v) = %q, want %q", in, got, want)
		}
	}
}
