package obs

import (
	"context"
	"runtime/pprof"
)

// pprof label attribution. Continuous profiling (internal/obs/prof) captures
// CPU profiles of the whole process; these helpers make those profiles
// attributable to workloads by tagging the mining goroutines with
// {request_id, dataset_fp, phase} pprof labels. Labels ride the context and
// are inherited by every goroutine the labeled region spawns, so the serve
// layer tags a request once and the parallel miner's workers tag only the
// phase.
//
// The label taxonomy is deliberately tiny (three keys, bounded value sets
// per capture window) because every distinct label set becomes a sample
//-aggregation bucket in the profile: request_id identifies one journal row,
// dataset_fp one registered database, phase one obs.Phase name.

// Label keys attached to mining goroutines. Exported so tests and tools
// filter on the same strings the serve layer writes (`go tool pprof
// -tagfocus request_id=...`).
const (
	LabelRequestID = "request_id"
	LabelDatasetFP = "dataset_fp"
	LabelPhase     = "phase"
)

// WithMineLabels returns ctx carrying pprof labels identifying one mining
// request. The labels take effect for goroutines that run under DoPhase (or
// any pprof.Do) with the returned context; empty values are omitted so an
// unlabeled caller costs no profile cardinality.
func WithMineLabels(ctx context.Context, requestID, datasetFP string) context.Context {
	kv := make([]string, 0, 4)
	if requestID != "" {
		kv = append(kv, LabelRequestID, requestID)
	}
	if datasetFP != "" {
		kv = append(kv, LabelDatasetFP, datasetFP)
	}
	if len(kv) == 0 {
		return ctx
	}
	return pprof.WithLabels(ctx, pprof.Labels(kv...))
}

// DoPhase runs fn with the context's pprof labels plus phase=p applied to
// the current goroutine, so CPU samples taken while fn runs are attributed
// to the phase (and to whatever request labels the context already
// carries). Child goroutines started inside fn inherit the labels.
func DoPhase(ctx context.Context, p Phase, fn func(ctx context.Context)) {
	pprof.Do(ctx, pprof.Labels(LabelPhase, p.String()), fn)
}
