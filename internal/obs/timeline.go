package obs

import (
	"sync"
	"time"
)

// Flight recorder: a Trace optionally retains a bounded per-run span
// timeline — every phase span and mining subtree task with its start/end
// timestamps and nested work counters — on top of the aggregate phase
// accumulators. Retention is strictly pay-for-what-you-use: a Trace with no
// Timeline attached behaves exactly as before (the aggregate-only traced
// path costs one extra nil check per span end), a nil *Trace stays inert
// everywhere, and a full Timeline degrades to aggregate-only by counting
// dropped spans instead of growing without bound.

// DefaultTimelineSpans is the span retention cap a Timeline resolves a
// zero cap to. Each retained span is a fixed-size record, so the default
// bounds a recorded run to a few tens of kilobytes.
const DefaultTimelineSpans = 512

// SpanRecord is one retained span of a recorded run. Start and duration
// are relative to the Timeline's epoch, so records from one run order and
// render without wall-clock context. Mining subtree-task spans additionally
// carry the nested work attributed to them by the worker's batch (the
// ts-merge time/count and Erec-prune count of the obs phase taxonomy).
type SpanRecord struct {
	// Phase is the canonical phase name (Phase.String), or "total" for the
	// whole-run span.
	Phase string `json:"phase"`
	// Label distinguishes spans within a phase, e.g. the suffix item of a
	// mining subtree task. May be empty.
	Label string `json:"label,omitempty"`
	// StartNS is the span's start, in nanoseconds since the Timeline epoch.
	StartNS int64 `json:"startNS"`
	// DurNS is the span's duration in nanoseconds.
	DurNS int64 `json:"durNS"`
	// MergeNS and Merges are the ts-list merge time and count nested inside
	// this span; Prunes the nested Erec-prune count. Zero outside mining
	// task spans.
	MergeNS int64 `json:"mergeNS,omitempty"`
	Merges  int64 `json:"merges,omitempty"`
	Prunes  int64 `json:"prunes,omitempty"`
}

// Timeline retains the spans of one recorded run, bounded by a cap. It is
// safe for concurrent recording (the parallel miner's workers share one),
// and a nil *Timeline is a valid, inert receiver for every method.
type Timeline struct {
	epoch time.Time
	cap   int

	mu      sync.Mutex
	spans   []SpanRecord
	dropped int64
	// peers are grafted shard-peer snapshots (AddPeer in merge.go). They
	// are bounded by the peer count of a scatter, not by cap: each graft
	// is itself a capped snapshot.
	peers []PeerTimeline
}

// NewTimeline returns an empty timeline whose epoch is now. maxSpans caps
// how many spans are retained (further spans are counted as dropped and
// only contribute to the Trace's aggregates); zero resolves to
// DefaultTimelineSpans, negative to a timeline that retains nothing.
func NewTimeline(maxSpans int) *Timeline {
	if maxSpans == 0 {
		maxSpans = DefaultTimelineSpans
	}
	if maxSpans < 0 {
		maxSpans = 0
	}
	return &Timeline{epoch: Now(), cap: maxSpans}
}

// Cap reports the timeline's span retention cap.
func (tl *Timeline) Cap() int {
	if tl == nil {
		return 0
	}
	return tl.cap
}

// record appends one span, or counts it as dropped once the cap is
// reached. The aggregate Trace accumulators are unaffected either way.
func (tl *Timeline) record(r SpanRecord) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	if len(tl.spans) < tl.cap {
		tl.spans = append(tl.spans, r)
	} else {
		tl.dropped++
	}
	tl.mu.Unlock()
}

// startNS converts a span start time to epoch-relative nanoseconds.
func (tl *Timeline) startNS(start time.Time) int64 {
	return int64(start.Sub(tl.epoch))
}

// TimelineSnapshot is a point-in-time copy of a Timeline, the unit the
// trace-event exporter and the serve journal retain and render.
type TimelineSnapshot struct {
	// Spans are the retained spans in recording order (which is start
	// order per goroutine, but interleaved across workers).
	Spans []SpanRecord `json:"spans"`
	// Dropped counts spans that were recorded past the cap and retained
	// only in the aggregates.
	Dropped int64 `json:"dropped,omitempty"`
	// Cap is the retention cap the timeline ran with.
	Cap int `json:"cap"`
	// Peers holds grafted shard-peer snapshots in canonical (peer, send
	// time) order — the per-peer lanes of a fleet-wide flight record.
	// Empty except on a scatter-gather coordinator's timeline.
	Peers []PeerTimeline `json:"peers,omitempty"`
}

// Snapshot copies the retained spans. A nil timeline snapshots empty.
func (tl *Timeline) Snapshot() TimelineSnapshot {
	if tl == nil {
		return TimelineSnapshot{}
	}
	tl.mu.Lock()
	defer tl.mu.Unlock()
	return TimelineSnapshot{
		Spans:   append([]SpanRecord(nil), tl.spans...),
		Dropped: tl.dropped,
		Cap:     tl.cap,
		Peers:   canonicalPeers(tl.peers),
	}
}

// AttachTimeline makes t retain spans into tl on top of its aggregates:
// every Span end and subtree TaskSpan end appends a SpanRecord until tl's
// cap is reached. Attach before the run starts; a nil receiver or a nil tl
// is a no-op (the trace stays aggregate-only).
func (t *Trace) AttachTimeline(tl *Timeline) {
	if t == nil {
		return
	}
	t.tl = tl
}

// Timeline returns the attached timeline, or nil.
func (t *Trace) Timeline() *Timeline {
	if t == nil {
		return nil
	}
	return t.tl
}

// TaskSpan is an in-progress mining subtree task: the unit of timeline
// retention inside the mine phase, matching the granularity at which
// workers flush their Local batches and observe cancellation. The zero
// TaskSpan (from a nil Trace) is inert.
type TaskSpan struct {
	t     *Trace
	start time.Time
	label string

	// mergeNS, merges, prunes snapshot the Local's nested-phase state at
	// task start, so End can attribute only this task's delta to the span.
	mergeNS, merges, prunes int64
}

// StartTask opens a span for one mining subtree task. label names the task
// (e.g. its suffix item); l is the worker's batch, snapshotted so End can
// attribute the nested merge/prune work done during the task to it.
func (t *Trace) StartTask(label string, l *Local) TaskSpan {
	if t == nil {
		return TaskSpan{}
	}
	return TaskSpan{
		t:       t,
		start:   Now(),
		label:   label,
		mergeNS: l.nanos[PhaseMerge],
		merges:  l.counts[PhaseMerge],
		prunes:  l.counts[PhasePrune],
	}
}

// End closes the task span: its elapsed time and one task are credited to
// PhaseMine in l (not the shared atomics — the caller flushes l per task as
// before), and when a timeline is attached the span is retained with the
// nested ts-merge/Erec-prune work l accumulated since StartTask.
func (s TaskSpan) End(l *Local) {
	if s.t == nil {
		return
	}
	el := Since(s.start)
	l.Observe(PhaseMine, el, 1)
	if tl := s.t.tl; tl != nil {
		tl.record(SpanRecord{
			Phase:   PhaseMine.String(),
			Label:   s.label,
			StartNS: tl.startNS(s.start),
			DurNS:   el,
			MergeNS: l.nanos[PhaseMerge] - s.mergeNS,
			Merges:  l.counts[PhaseMerge] - s.merges,
			Prunes:  l.counts[PhasePrune] - s.prunes,
		})
	}
}
