package obs

import (
	"cmp"
	"slices"
	"time"
)

// Fleet-wide timeline merge: a scatter-gather coordinator grafts each shard
// peer's recorded TimelineSnapshot into its own Timeline, so one flight
// record covers the whole fleet. Peers run on their own clocks, so each
// grafted snapshot carries the coordinator-clock send and receive instants
// of the request that produced it; AlignOffset maps the peer's epoch into
// the coordinator's timebase from those. The merge is deterministic: grafts
// may arrive in any order (one goroutine per shard task), and Snapshot
// canonicalizes so identical grafts render byte-identically.

// PeerEvent is a point annotation on a peer's lane — a retry, hedge or
// failover observed by the shard client while driving the task that
// produced the peer's snapshot. AtNS is on the coordinator's timeline
// clock (the client observed the event locally).
type PeerEvent struct {
	Name string `json:"name"`
	AtNS int64  `json:"atNS"`
}

// PeerTimeline is one peer's recorded snapshot as grafted into a
// coordinator's timeline, with the clock references needed to place it.
type PeerTimeline struct {
	// Peer identifies the lane, e.g. the peer's base URL.
	Peer string `json:"peer"`
	// SendNS and RecvNS are when the coordinator sent the shard request and
	// received the response, in nanoseconds on the coordinator's timeline
	// clock. They bracket everything the peer's snapshot records.
	SendNS int64 `json:"sendNS"`
	RecvNS int64 `json:"recvNS"`
	// ElapsedNS is the peer-reported handling duration (its clock
	// reference): how long the peer spent between receiving the request and
	// writing the response. It is authoritative over the snapshot's span
	// extent, which undercounts once spans are dropped.
	ElapsedNS int64 `json:"elapsedNS,omitempty"`
	// Snapshot is the peer's recorded timeline, spans relative to the
	// peer's own epoch.
	Snapshot TimelineSnapshot `json:"snapshot"`
	// Events are the shard client's per-task annotations (retries, hedges,
	// failovers), already on the coordinator's clock.
	Events []PeerEvent `json:"events,omitempty"`
}

// AlignOffset maps the peer's timeline epoch onto the coordinator's clock:
// the peer's handling window is centered inside the observed send→receive
// window, splitting the network round trip symmetrically (the classic
// NTP-style offset estimate, with the peer's handling time standing in for
// the processing delay). The result is clamped to SendNS so a peer whose
// reported duration exceeds the round trip — clock skew, or a response
// that raced the measurement — still renders inside the window it provably
// happened in.
func (pt *PeerTimeline) AlignOffset() int64 {
	span := pt.ElapsedNS
	if span == 0 {
		for _, s := range pt.Snapshot.Spans {
			if end := s.StartNS + s.DurNS; end > span {
				span = end
			}
		}
	}
	off := pt.SendNS + (pt.RecvNS-pt.SendNS-span)/2
	return max(off, pt.SendNS)
}

// AddPeer grafts one peer's snapshot into the timeline. Safe for
// concurrent use (the coordinator grafts from its per-task goroutines);
// a nil timeline discards the graft.
func (tl *Timeline) AddPeer(pt PeerTimeline) {
	if tl == nil {
		return
	}
	tl.mu.Lock()
	tl.peers = append(tl.peers, pt)
	tl.mu.Unlock()
}

// Elapsed converts an instant read from Now into nanoseconds since the
// timeline's epoch — the coordinate peer grafts and their events use. A
// nil timeline reports zero.
func (tl *Timeline) Elapsed(t time.Time) int64 {
	if tl == nil {
		return 0
	}
	return tl.startNS(t)
}

// RecordSpan retains an ad-hoc span on the timeline for work outside the
// phase taxonomy — e.g. a serving peer's admission wait ("queue"). It
// counts against the retention cap like any other span; a nil timeline
// discards it.
func (tl *Timeline) RecordSpan(phase, label string, start time.Time, d time.Duration) {
	if tl == nil {
		return
	}
	tl.record(SpanRecord{Phase: phase, Label: label, StartNS: tl.startNS(start), DurNS: int64(d)})
}

// canonicalPeers sorts grafted peer timelines into their canonical order —
// by peer name, then send time — so snapshots taken after grafts that
// raced each other are identical. Events within a graft sort by time.
func canonicalPeers(peers []PeerTimeline) []PeerTimeline {
	if len(peers) == 0 {
		return nil
	}
	out := make([]PeerTimeline, len(peers))
	for i, pt := range peers {
		pt.Events = slices.Clone(pt.Events)
		slices.SortStableFunc(pt.Events, func(a, b PeerEvent) int {
			if c := cmp.Compare(a.AtNS, b.AtNS); c != 0 {
				return c
			}
			return cmp.Compare(a.Name, b.Name)
		})
		out[i] = pt
	}
	slices.SortStableFunc(out, func(a, b PeerTimeline) int {
		if c := cmp.Compare(a.Peer, b.Peer); c != 0 {
			return c
		}
		return cmp.Compare(a.SendNS, b.SendNS)
	})
	return out
}
