// Package obs is the observability layer of the mining stack: a lock-cheap
// phase tracer that attributes wall time and work counts to the algorithm
// phases of RP-growth, a Prometheus text-exposition writer, and log/slog
// helpers shared by the service and the CLIs. It is stdlib-only and imports
// nothing module-internal, so every layer — core, serve, cliio, the cmds —
// may depend on it.
//
// The tracer is pay-for-what-you-use: a nil *Trace is a valid receiver for
// every method and costs a nil check, so core threads Options.Trace through
// the miners unconditionally and an untraced run does no timing work at all.
// Traced hot paths accumulate into a per-worker Local and flush it to the
// shared Trace once per subtree task, so the atomics never sit in a per-node
// loop.
package obs

import (
	"sync/atomic"
	"time"
)

// Phase identifies one algorithm phase of an RP-growth run. The top-level
// phases (Scan through Finalize) partition a run's wall time; the nested
// phases (Merge, Prune) attribute work that happens inside Mine and are
// excluded from coverage sums.
type Phase uint8

const (
	// PhaseIngest is database loading: parsing a TDB from its on-disk or
	// on-the-wire form into the in-memory representation. It precedes the
	// mining phases (a mine over an already-loaded database observes no
	// ingest time); its count is the number of input bytes consumed, so
	// time and count together give ingest throughput.
	PhaseIngest Phase = iota
	// PhaseScan is the first database scan: building the RP-list of
	// candidate items with their supports and Erec estimates (Algorithm 1).
	PhaseScan
	// PhaseTreeBuild is the second database scan: inserting every
	// candidate item projection into the initial RP-tree (Algorithm 2).
	PhaseTreeBuild
	// PhaseMine is bottom-up pattern growth: per-suffix-item conditional
	// mining with recurrence evaluation (Algorithms 4 and 5). Its count is
	// the number of top-level subtree tasks.
	PhaseMine
	// PhaseFinalize is result assembly: merging worker partials and
	// sorting the pattern set into canonical order.
	PhaseFinalize
	// PhaseShard is scatter-gather coordination: one count per shard task
	// dispatched by a shard coordinator, timed from dispatch to that
	// shard's result (or failure). Nested: with local executors the shard
	// time contains the executor's own scan/tree-build/mine phases, and
	// with remote executors it is network plus the peer's run, so it never
	// adds to the coordinator's top-level coverage sum. Labeled timeline
	// spans put each shard on its own flight-recorder lane.
	PhaseShard
	// PhaseMerge counts and times the ts-list run merges (Section 4.2.2's
	// TS-list construction). Nested inside PhaseMine.
	PhaseMerge
	// PhasePrune counts pattern extensions cut by the Erec candidate
	// bound before recurrence evaluation (Property 2). Nested inside
	// PhaseMine; counted, not timed.
	PhasePrune
	// NumPhases is the number of phases; valid Phase values are below it.
	NumPhases
)

var phaseNames = [NumPhases]string{
	PhaseIngest:    "ingest",
	PhaseScan:      "scan",
	PhaseTreeBuild: "tree-build",
	PhaseMine:      "mine",
	PhaseFinalize:  "finalize",
	PhaseShard:     "shard",
	PhaseMerge:     "ts-merge",
	PhasePrune:     "erec-prune",
}

var phaseUnits = [NumPhases]string{
	PhaseIngest:    "bytes",
	PhaseScan:      "scans",
	PhaseTreeBuild: "builds",
	PhaseMine:      "tasks",
	PhaseFinalize:  "sorts",
	PhaseShard:     "tasks",
	PhaseMerge:     "merges",
	PhasePrune:     "prunes",
}

// String returns the phase's canonical name, used in reports, benchmark
// metric keys and Prometheus label values.
func (p Phase) String() string {
	if p >= NumPhases {
		return "invalid"
	}
	return phaseNames[p]
}

// Unit names what the phase's count counts.
func (p Phase) Unit() string {
	if p >= NumPhases {
		return ""
	}
	return phaseUnits[p]
}

// Nested reports whether the phase's time is contained in another phase's
// (and must therefore be excluded when summing phase times against the
// run's total).
func (p Phase) Nested() bool { return p == PhaseShard || p == PhaseMerge || p == PhasePrune }

// ParsePhase maps a canonical phase name (Phase.String) back to its
// Phase — the wire direction, used when per-peer phase stats arrive from
// a remote shard response.
func ParsePhase(name string) (Phase, bool) {
	for p := Phase(0); p < NumPhases; p++ {
		if phaseNames[p] == name {
			return p, true
		}
	}
	return NumPhases, false
}

// PhaseNames returns the canonical names of all phases in declaration
// order (top-level phases first).
func PhaseNames() []string {
	names := make([]string, NumPhases)
	for i := range names {
		names[i] = Phase(i).String()
	}
	return names
}

// Trace accumulates per-phase wall time and work counts across one or more
// mining runs. All fields are atomics, so one Trace may be shared by the
// parallel miner's workers — but hot paths should batch through a Local and
// flush per subtree task rather than touching the atomics per operation.
// The zero value is ready to use; a nil *Trace is valid for every method
// and records nothing.
type Trace struct {
	nanos  [NumPhases]atomic.Int64
	counts [NumPhases]atomic.Int64

	// totalNanos and runs track whole-run wall time (ObserveTotal /
	// deferred total spans), the reference for phase coverage.
	totalNanos atomic.Int64
	runs       atomic.Int64

	// tl, when non-nil, additionally retains ended spans as a bounded
	// per-run timeline (see AttachTimeline in timeline.go). Set before the
	// run and read-only during it; nil keeps the trace aggregate-only.
	tl *Timeline
}

// NewTrace returns an empty trace.
func NewTrace() *Trace { return &Trace{} }

// Observe adds nanos of wall time and count work units to phase p.
func (t *Trace) Observe(p Phase, nanos, count int64) {
	if t == nil || p >= NumPhases {
		return
	}
	if nanos != 0 {
		t.nanos[p].Add(nanos)
	}
	if count != 0 {
		t.counts[p].Add(count)
	}
}

// ObserveTotal records the wall time of one whole run.
func (t *Trace) ObserveTotal(nanos int64) {
	if t == nil {
		return
	}
	t.totalNanos.Add(nanos)
	t.runs.Add(1)
}

// Reset zeroes every accumulator. Not atomic as a whole; callers must not
// race Reset with writers.
func (t *Trace) Reset() {
	if t == nil {
		return
	}
	for p := Phase(0); p < NumPhases; p++ {
		t.nanos[p].Store(0)
		t.counts[p].Store(0)
	}
	t.totalNanos.Store(0)
	t.runs.Store(0)
}

// Span is an in-progress timed region. The zero Span (from a nil Trace) is
// inert: End is a no-op.
type Span struct {
	t     *Trace
	p     Phase
	start time.Time
	label string
}

// Start opens a span for phase p. Spans may nest freely (each records its
// own elapsed time); End every span exactly once.
func (t *Trace) Start(p Phase) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, p: p, start: Now()}
}

// StartLabeled is Start with a label that retained timeline records carry,
// e.g. "shard=2/4" on a scatter-gather lane. The label costs nothing when
// no timeline is attached.
func (t *Trace) StartLabeled(p Phase, label string) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, p: p, start: Now(), label: label}
}

// StartTotal opens a span covering a whole run; its End feeds ObserveTotal.
func (t *Trace) StartTotal() Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, p: NumPhases, start: Now()}
}

// End closes the span, crediting its elapsed time (and one work unit) to
// its phase. When a timeline is attached to the trace, the span is also
// retained as a timeline record (the whole-run span under the phase name
// "total").
func (s Span) End() {
	if s.t == nil {
		return
	}
	el := Since(s.start)
	name := "total"
	if s.p == NumPhases {
		s.t.ObserveTotal(el)
	} else {
		s.t.Observe(s.p, el, 1)
		name = s.p.String()
	}
	if tl := s.t.tl; tl != nil {
		tl.record(SpanRecord{Phase: name, Label: s.label, StartNS: tl.startNS(s.start), DurNS: el})
	}
}

// Now reads the clock for span timing. Centralized so the tracer has the
// repository's one timing read-out next to serve's.
func Now() time.Time {
	return time.Now() //rpvet:allow determinism — phase tracing measures wall time
}

// Since returns the nanoseconds elapsed since a Now() read, using the
// monotonic clock carried by time.Time.
func Since(start time.Time) int64 { return int64(time.Since(start)) }

// Local is a single-goroutine batch of phase observations. Workers record
// into a Local in their hot loops (plain adds, no atomics) and Flush it to
// the shared Trace once per subtree task.
type Local struct {
	nanos  [NumPhases]int64
	counts [NumPhases]int64
}

// Observe adds nanos and count to phase p in the local batch.
func (l *Local) Observe(p Phase, nanos, count int64) {
	if p >= NumPhases {
		return
	}
	l.nanos[p] += nanos
	l.counts[p] += count
}

// Flush adds the batch to t and zeroes the batch. A nil t discards it.
func (l *Local) Flush(t *Trace) {
	for p := Phase(0); p < NumPhases; p++ {
		if l.nanos[p] != 0 || l.counts[p] != 0 {
			t.Observe(p, l.nanos[p], l.counts[p])
			l.nanos[p], l.counts[p] = 0, 0
		}
	}
}
