package bench

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// benchTextFixture renders `go test -bench` style output with one line per
// sample. The jitter pattern is deterministic: sample i of a benchmark at
// base b reads b*(1 + jitter[i%len]) — realistic few-percent noise without
// randomness.
func benchTextFixture(name string, base float64, n int) string {
	jitter := []float64{0, 0.021, -0.017, 0.008, -0.026, 0.013, -0.004, 0.029, -0.011, 0.018}
	var b strings.Builder
	b.WriteString("goos: linux\ngoarch: amd64\npkg: example/fixture\n")
	for i := 0; i < n; i++ {
		v := base * (1 + jitter[i%len(jitter)])
		fmt.Fprintf(&b, "%s-8 \t 1000\t %.0f ns/op\t 128 B/op\t 3 allocs/op\n", name, v)
	}
	b.WriteString("PASS\n")
	return b.String()
}

func writeFixture(t *testing.T, name, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestParseBenchLine(t *testing.T) {
	b, ok := ParseBenchLine("BenchmarkMine-8 \t 2367\t 454715 ns/op\t 492360 B/op\t 1898 allocs/op")
	if !ok {
		t.Fatal("result line did not parse")
	}
	if b.Name != "BenchmarkMine-8" || b.Iterations != 2367 {
		t.Errorf("parsed %+v", b)
	}
	if b.Metrics["ns/op"] != 454715 || b.Metrics["allocs/op"] != 1898 {
		t.Errorf("metrics %v", b.Metrics)
	}
	for _, line := range []string{"PASS", "goos: linux", "ok  \tpkg\t1.2s", "", "Benchmark but not a result"} {
		if _, ok := ParseBenchLine(line); ok {
			t.Errorf("non-result line %q parsed", line)
		}
	}
}

func TestReadSamplesTextAndJSON(t *testing.T) {
	text := writeFixture(t, "bench.txt", benchTextFixture("BenchmarkMine", 1000, 5))
	s, err := ReadSamples(text, "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if len(s["BenchmarkMine"]) != 5 {
		t.Errorf("text samples: %v", s)
	}

	jsonPath := writeFixture(t, "bench.json", `{
	  "context": {"pkg": "example"},
	  "benchmarks": [
	    {"name": "BenchmarkMine", "iterations": 10, "metrics": {"ns/op": 100}},
	    {"name": "BenchmarkMine", "iterations": 10, "metrics": {"ns/op": 110}}
	  ]
	}`)
	s, err = ReadSamples(jsonPath, "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	if want := []float64{100, 110}; len(s["BenchmarkMine"]) != 2 || s["BenchmarkMine"][0] != want[0] {
		t.Errorf("json samples: %v", s)
	}

	if _, err := ReadSamples(text, "widgets/op"); err == nil {
		t.Error("missing metric should error")
	}
	if _, err := ReadSamples(writeFixture(t, "empty.txt", "PASS\n"), "ns/op"); err == nil {
		t.Error("input without benchmarks should error")
	}
}

func TestMannWhitneyU(t *testing.T) {
	same := []float64{5, 5, 5, 5}
	if p := MannWhitneyU(same, same); p != 1 {
		t.Errorf("fully tied samples: p=%v, want 1", p)
	}
	x := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	y := []float64{11, 12, 13, 14, 15, 16, 17, 18, 19, 20}
	if p := MannWhitneyU(x, y); p >= 0.001 {
		t.Errorf("disjoint samples: p=%v, want < 0.001", p)
	}
	// Symmetric in its arguments.
	if p1, p2 := MannWhitneyU(x, y), MannWhitneyU(y, x); math.Abs(p1-p2) > 1e-12 {
		t.Errorf("asymmetric: %v vs %v", p1, p2)
	}
	if p := MannWhitneyU(nil, y); p != 1 {
		t.Errorf("empty side: p=%v, want 1", p)
	}
}

// TestDiffFlagsSlowdown is the acceptance case: a 20% slowdown at N=10
// with realistic jitter must come out a significant regression.
func TestDiffFlagsSlowdown(t *testing.T) {
	oldPath := writeFixture(t, "old.txt", benchTextFixture("BenchmarkMine", 1000, 10))
	newPath := writeFixture(t, "new.txt", benchTextFixture("BenchmarkMine", 1200, 10))
	oldS, err := ReadSamples(oldPath, "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	newS, err := ReadSamples(newPath, "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	rows := DiffSamples(oldS, newS, DefaultDiffOptions())
	if len(rows) != 1 {
		t.Fatalf("rows: %+v", rows)
	}
	r := rows[0]
	if !r.Regression || !r.Significant {
		t.Errorf("20%% slowdown at N=10 not flagged: %+v", r)
	}
	if r.P >= 0.05 {
		t.Errorf("p=%v, want < 0.05", r.P)
	}
	if r.DeltaPct < 15 || r.DeltaPct > 25 {
		t.Errorf("delta %.1f%%, want ~+20%%", r.DeltaPct)
	}

	// A significant speedup is significant but not a regression.
	rows = DiffSamples(newS, oldS, DefaultDiffOptions())
	if r := rows[0]; !r.Significant || r.Regression {
		t.Errorf("20%% speedup misclassified: %+v", r)
	}
}

// TestDiffSilentOnResample is the other acceptance case: two runs drawn
// from the same distribution must not be flagged.
func TestDiffSilentOnResample(t *testing.T) {
	// Same base and jitter pattern, phase-shifted: identical distribution,
	// different sample order.
	text := benchTextFixture("BenchmarkMine", 1000, 10)
	lines := strings.Split(strings.TrimSuffix(text, "\n"), "\n")
	resampled := strings.Join(append(append([]string{}, lines[8:]...), lines[:8]...), "\n") + "\n"

	oldS, err := ReadSamples(writeFixture(t, "old.txt", text), "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	newS, err := ReadSamples(writeFixture(t, "new.txt", resampled), "ns/op")
	if err != nil {
		t.Fatal(err)
	}
	rows := DiffSamples(oldS, newS, DefaultDiffOptions())
	if r := rows[0]; r.Significant || r.Regression {
		t.Errorf("identical resampled runs flagged: %+v", r)
	}
	if Regressions(rows) != 0 {
		t.Errorf("Regressions = %d, want 0", Regressions(rows))
	}
}

func TestDiffDisjointNamesAndThreshold(t *testing.T) {
	oldS := Samples{"BenchmarkGone": {1, 1, 1}, "BenchmarkBoth": {100, 101, 102}}
	newS := Samples{"BenchmarkNew": {2, 2, 2}, "BenchmarkBoth": {103, 104, 105}}
	rows := DiffSamples(oldS, newS, DefaultDiffOptions())
	if len(rows) != 3 {
		t.Fatalf("rows: %+v", rows)
	}
	byName := map[string]DiffRow{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	if byName["BenchmarkGone"].OnlyIn != "old" || byName["BenchmarkNew"].OnlyIn != "new" {
		t.Errorf("OnlyIn rows: %+v", rows)
	}
	// A ~3% shift stays below the 5% threshold, so it must not be flagged
	// regardless of its p-value.
	if r := byName["BenchmarkBoth"]; r.Significant {
		t.Errorf("sub-threshold shift flagged: %+v", r)
	}
}

func TestNormalizeBenchName(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkMine-8":        "BenchmarkMine",
		"BenchmarkMine":          "BenchmarkMine",
		"BenchmarkMine/size=10":  "BenchmarkMine/size=10",
		"BenchmarkMine/sub-case": "BenchmarkMine/sub-case",
	} {
		if got := normalizeBenchName(in); got != want {
			t.Errorf("normalizeBenchName(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestFormatDiff(t *testing.T) {
	rows := DiffSamples(
		Samples{"BenchmarkMine": {1000, 1010, 990}},
		Samples{"BenchmarkMine": {2000, 2020, 1980}},
		DiffOptions{Alpha: 0.2, ThresholdPct: 5},
	)
	text := FormatDiffText(rows, "ns/op")
	for _, want := range []string{"BenchmarkMine", "1.0µs", "2.0µs", "+100.0%", "regression"} {
		if !strings.Contains(text, want) {
			t.Errorf("text table missing %q:\n%s", want, text)
		}
	}
	md := FormatDiffMarkdown(rows, "ns/op")
	if !strings.Contains(md, "| BenchmarkMine |") || !strings.Contains(md, "| regression |") {
		t.Errorf("markdown table malformed:\n%s", md)
	}
}
