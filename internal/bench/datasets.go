// Package bench regenerates every table and figure of the paper's
// evaluation (Section 5). Each experiment has a typed runner returning the
// rows the paper reports and a formatter rendering them as an aligned text
// table; cmd/rpbench drives the runners from the command line and
// bench_test.go wraps them in testing.B benchmarks.
package bench

import (
	"fmt"
	"sync"

	"github.com/recurpat/rp/internal/gen"
	"github.com/recurpat/rp/internal/tsdb"
)

// Dataset bundles a generated database with the experiment parameters the
// paper uses for it (Table 4).
type Dataset struct {
	Name string
	DB   *tsdb.DB
	// MinPSPercents are the three minPS settings, as percentages of |TDB|.
	MinPSPercents [3]float64
	// Pers are the three period settings in timestamp units.
	Pers [3]int64
	// Events are the planted burst events (Twitter only).
	Events []gen.BurstEvent
}

// Pers and minRec values shared by every dataset (Table 4).
var (
	paperPers    = [3]int64{360, 720, 1440}
	paperMinRecs = [3]int{1, 2, 3}
)

type datasetKey struct {
	name  string
	scale float64
	seed  uint64
}

var (
	cacheMu sync.Mutex
	cache   = map[datasetKey]*Dataset{}
)

// Load returns the named dataset ("t10i4d100k", "shop14" or "twitter") at
// the given scale (1.0 = the paper's size), generating and caching it on
// first use. Generation is deterministic in (name, scale, seed).
func Load(name string, scale float64, seed uint64) (*Dataset, error) {
	cacheMu.Lock()
	defer cacheMu.Unlock()
	key := datasetKey{name: name, scale: scale, seed: seed}
	if d, ok := cache[key]; ok {
		return d, nil
	}
	var d *Dataset
	switch name {
	case "t10i4d100k":
		db := gen.Quest(gen.DefaultQuest(seed).Scale(scale))
		d = &Dataset{Name: name, DB: db, MinPSPercents: [3]float64{0.1, 0.2, 0.3}, Pers: paperPers}
	case "shop14":
		db := gen.Shop(gen.DefaultShop(seed + 1).Scale(scale))
		d = &Dataset{Name: name, DB: db, MinPSPercents: [3]float64{0.1, 0.2, 0.3}, Pers: paperPers}
	case "twitter":
		db, events := gen.TwitterWithEvents(gen.DefaultTwitter(seed + 2).Scale(scale))
		d = &Dataset{Name: name, DB: db, MinPSPercents: [3]float64{2, 5, 10}, Pers: paperPers, Events: events}
	default:
		return nil, fmt.Errorf("bench: unknown dataset %q (want t10i4d100k, shop14 or twitter)", name)
	}
	cache[key] = d
	return d, nil
}

// DatasetNames lists the datasets in the paper's order.
func DatasetNames() []string { return []string{"t10i4d100k", "shop14", "twitter"} }

// LoadAll returns all three datasets.
func LoadAll(scale float64, seed uint64) ([]*Dataset, error) {
	var out []*Dataset
	for _, name := range DatasetNames() {
		d, err := Load(name, scale, seed)
		if err != nil {
			return nil, err
		}
		out = append(out, d)
	}
	return out, nil
}
