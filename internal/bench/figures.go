package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/recurpat/rp/internal/core"
)

// SweepPoint is one point of the Figure 7 / Figure 9 sweeps on the Twitter
// dataset: the number of recurring patterns and the mining runtime at a
// given (minPS%, per, minRec).
type SweepPoint struct {
	MinPSPercent float64
	Per          int64
	MinRec       int
	Count        int
	Runtime      time.Duration
}

// Sweep runs the Figure 7/9 parameter sweep: minPS from 'from' to 'to'
// percent in steps of 'step', for every per in the dataset's grid and every
// minRec in 1..3. Each point is mined at its own thresholds, so Runtime is
// directly the paper's Figure 9 measurement and Count its Figure 7
// measurement.
func Sweep(d *Dataset, from, to, step float64) ([]SweepPoint, error) {
	var points []SweepPoint
	for _, minRec := range paperMinRecs {
		for _, per := range d.Pers {
			for pct := from; pct <= to+1e-9; pct += step {
				minPS := core.MinPSFromPercent(d.DB, pct)
				start := time.Now() //rpvet:allow determinism — Figure 9 measures runtime
				res, err := core.Mine(d.DB, core.Options{Per: per, MinPS: minPS, MinRec: minRec})
				if err != nil {
					return nil, err
				}
				points = append(points, SweepPoint{
					MinPSPercent: pct,
					Per:          per,
					MinRec:       minRec,
					Count:        len(res.Patterns),
					Runtime:      time.Since(start),
				})
			}
		}
	}
	return points, nil
}

// FormatSweep renders sweep points as one block per minRec, one line per
// per series — the layout of Figures 7 and 9. Setting counts renders
// pattern counts (Figure 7); otherwise runtimes in seconds (Figure 9).
func FormatSweep(points []SweepPoint, counts bool) string {
	var b strings.Builder
	byKey := map[[2]int64][]SweepPoint{}
	var minRecs []int
	seenRec := map[int]bool{}
	var pcts []float64
	seenPct := map[float64]bool{}
	for _, p := range points {
		key := [2]int64{int64(p.MinRec), p.Per}
		byKey[key] = append(byKey[key], p)
		if !seenRec[p.MinRec] {
			seenRec[p.MinRec] = true
			minRecs = append(minRecs, p.MinRec)
		}
		if !seenPct[p.MinPSPercent] {
			seenPct[p.MinPSPercent] = true
			pcts = append(pcts, p.MinPSPercent)
		}
	}
	for _, minRec := range minRecs {
		fmt.Fprintf(&b, "minRec=%d\n", minRec)
		fmt.Fprintf(&b, "  %-10s", "per\\minPS%")
		for _, pct := range pcts {
			fmt.Fprintf(&b, " %9.1f", pct)
		}
		b.WriteByte('\n')
		for _, per := range paperPers {
			series := byKey[[2]int64{int64(minRec), per}]
			if len(series) == 0 {
				continue
			}
			fmt.Fprintf(&b, "  per=%-6d", per)
			for _, p := range series {
				if counts {
					fmt.Fprintf(&b, " %9d", p.Count)
				} else {
					fmt.Fprintf(&b, " %9.2f", p.Runtime.Seconds())
				}
			}
			b.WriteByte('\n')
		}
	}
	return b.String()
}

// Figure8Series is the daily frequency of one hashtag (Figure 8).
type Figure8Series struct {
	Tag   string
	Daily []int
}

// Figure8 returns the daily frequencies of the hashtags behind the paper's
// Figure 8: yyc, uttarakhand (floods) and nuclear, hibaku (nuclear news).
func Figure8(d *Dataset) []Figure8Series {
	tags := []string{"yyc", "uttarakhand", "nuclear", "hibaku"}
	var out []Figure8Series
	for _, tag := range tags {
		out = append(out, Figure8Series{Tag: tag, Daily: d.DB.DailyFrequency(tag, 1440)})
	}
	return out
}

// FormatFigure8 renders the daily series as sparse text columns: one line
// per day with every tag's count.
func FormatFigure8(series []Figure8Series) string {
	var b strings.Builder
	b.WriteString("day")
	days := 0
	for _, s := range series {
		fmt.Fprintf(&b, "\t%s", s.Tag)
		if len(s.Daily) > days {
			days = len(s.Daily)
		}
	}
	b.WriteByte('\n')
	for day := 0; day < days; day++ {
		fmt.Fprintf(&b, "%d", day)
		for _, s := range series {
			v := 0
			if day < len(s.Daily) {
				v = s.Daily[day]
			}
			fmt.Fprintf(&b, "\t%d", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}
