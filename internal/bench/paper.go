package bench

import (
	"fmt"
	"strings"
)

// This file transcribes the numbers the paper publishes (Tables 5, 7 and
// 8), so experiment runs can be checked against them automatically. We do
// not expect absolute agreement — our datasets are simulations of
// non-redistributable originals — but the *shape* must hold: how counts
// and runtimes move along the per, minPS and minRec axes, and how the
// three models order. ShapeReport quantifies that agreement.

// PaperTable5 returns the published Table 5 counts, in the same row layout
// as Table5 produces (Counts[minRec-1][perIndex]).
func PaperTable5() []Table5Row {
	return []Table5Row{
		{Dataset: "t10i4d100k", MinPSPercent: 0.1, Counts: [3][3]int{
			{428, 1254, 7193}, {255, 436, 1036}, {194, 160, 27}}},
		{Dataset: "t10i4d100k", MinPSPercent: 0.2, Counts: [3][3]int{
			{339, 757, 3205}, {168, 103, 39}, {72, 0, 0}}},
		{Dataset: "t10i4d100k", MinPSPercent: 0.3, Counts: [3][3]int{
			{296, 622, 2148}, {109, 32, 2}, {21, 0, 0}}},
		{Dataset: "shop14", MinPSPercent: 0.1, Counts: [3][3]int{
			{593, 1885, 4977}, {447, 1339, 3198}, {338, 266, 9}}},
		{Dataset: "shop14", MinPSPercent: 0.2, Counts: [3][3]int{
			{342, 1077, 1906}, {257, 750, 1470}, {118, 14, 0}}},
		{Dataset: "shop14", MinPSPercent: 0.3, Counts: [3][3]int{
			{251, 744, 933}, {195, 534, 760}, {48, 3, 0}}},
		{Dataset: "twitter", MinPSPercent: 2, Counts: [3][3]int{
			{14736, 36354, 42319}, {8718, 17982, 19746}, {4551, 7749, 8103}}},
		{Dataset: "twitter", MinPSPercent: 5, Counts: [3][3]int{
			{1655, 11268, 26341}, {595, 6847, 7010}, {337, 3713, 5123}}},
		{Dataset: "twitter", MinPSPercent: 10, Counts: [3][3]int{
			{511, 714, 1190}, {11, 34, 912}, {6, 17, 98}}},
	}
}

// PaperTable7 returns the published Table 7 runtimes in seconds
// (Seconds[minRec-1][perIndex]).
func PaperTable7() []Table7Row {
	return []Table7Row{
		{Dataset: "t10i4d100k", MinPSPercent: 0.1, Seconds: [3][3]float64{
			{14.8, 150.9, 366.5}, {3.8, 10.7, 40.1}, {3.5, 3.9, 6.3}}},
		{Dataset: "t10i4d100k", MinPSPercent: 0.2, Seconds: [3][3]float64{
			{7.7, 45.9, 99.6}, {3.6, 5.4, 9.6}, {2.7, 3.1, 3.1}}},
		{Dataset: "t10i4d100k", MinPSPercent: 0.3, Seconds: [3][3]float64{
			{3.7, 11.6, 21.3}, {3.2, 3.4, 4.2}, {2.5, 2.4, 2.6}}},
		{Dataset: "shop14", MinPSPercent: 0.1, Seconds: [3][3]float64{
			{47.7, 55.6, 67.3}, {43.5, 47.7, 52.3}, {42.4, 45.1, 48.2}}},
		{Dataset: "shop14", MinPSPercent: 0.2, Seconds: [3][3]float64{
			{42.9, 46.1, 51.3}, {41.7, 43.4, 45.0}, {41.4, 42.1, 43.8}}},
		{Dataset: "shop14", MinPSPercent: 0.3, Seconds: [3][3]float64{
			{42.4, 44.0, 47.3}, {41.6, 42.1, 43.6}, {41.1, 41.5, 41.7}}},
		{Dataset: "twitter", MinPSPercent: 2, Seconds: [3][3]float64{
			{55.1, 190.0, 290.5}, {42.9, 154.9, 248.4}, {41.3, 139.2, 226.1}}},
		{Dataset: "twitter", MinPSPercent: 5, Seconds: [3][3]float64{
			{37.9, 134.3, 225.6}, {33.0, 105.3, 181.9}, {31.5, 96.1, 159.7}}},
		{Dataset: "twitter", MinPSPercent: 10, Seconds: [3][3]float64{
			{32.3, 108.3, 190.9}, {30.4, 89.2, 151.3}, {29.9, 66.9, 124.1}}},
	}
}

// PaperTable8 returns the published Table 8 comparison (count, max length).
func PaperTable8() []Table8Row {
	return []Table8Row{
		{Dataset: "shop14", Model: "PF patterns", Count: 22, MaxLen: 3},
		{Dataset: "shop14", Model: "Recurring patterns", Count: 4977, MaxLen: 9},
		{Dataset: "shop14", Model: "p-patterns", Count: 156700, MaxLen: 12},
		{Dataset: "twitter", Model: "PF patterns", Count: 466, MaxLen: 2},
		{Dataset: "twitter", Model: "Recurring patterns", Count: 42319, MaxLen: 7},
		{Dataset: "twitter", Model: "p-patterns", Count: 442076, MaxLen: 16},
	}
}

// ShapeCheck is one directional comparison between the paper's numbers and
// a reproduction run.
type ShapeCheck struct {
	Axis  string // what is varied
	Where string // at which fixed coordinates
	Paper string // direction in the paper: "up", "down", "flat"
	Ours  string
	Agree bool
}

// ShapeReport compares a reproduced Table 5 against the paper's Table 5
// along every axis the paper discusses in Section 5.2:
//
//   - at fixed (per, minRec), counts fall as minPS rises;
//   - at fixed (per, minPS), counts fall as minRec rises;
//   - at fixed (minPS, minRec=1), counts rise with per.
//
// Directions are computed on both tables and compared, so the report
// gives a machine-checked verdict per axis instead of eyeballing numbers.
func ShapeReport(ours []Table5Row) []ShapeCheck {
	paper := PaperTable5()
	index := func(rows []Table5Row) map[string]map[float64][3][3]int {
		m := map[string]map[float64][3][3]int{}
		for _, r := range rows {
			if m[r.Dataset] == nil {
				m[r.Dataset] = map[float64][3][3]int{}
			}
			m[r.Dataset][r.MinPSPercent] = r.Counts
		}
		return m
	}
	po := index(paper)
	oo := index(ours)

	var checks []ShapeCheck
	dir := func(a, b int) string {
		switch {
		case b > a:
			return "up"
		case b < a:
			return "down"
		default:
			return "flat"
		}
	}
	for _, r := range ours {
		pRows, ok := po[r.Dataset]
		if !ok {
			continue
		}
		pCounts, ok := pRows[r.MinPSPercent]
		if !ok {
			continue
		}
		// minRec axis at each per.
		for j, per := range paperPers {
			for k := 0; k < 2; k++ {
				checks = append(checks, ShapeCheck{
					Axis:  fmt.Sprintf("minRec %d->%d", k+1, k+2),
					Where: fmt.Sprintf("%s minPS=%g%% per=%d", r.Dataset, r.MinPSPercent, per),
					Paper: dir(pCounts[k][j], pCounts[k+1][j]),
					Ours:  dir(r.Counts[k][j], r.Counts[k+1][j]),
				})
			}
		}
		// per axis at minRec=1.
		for j := 0; j < 2; j++ {
			checks = append(checks, ShapeCheck{
				Axis:  fmt.Sprintf("per %d->%d", paperPers[j], paperPers[j+1]),
				Where: fmt.Sprintf("%s minPS=%g%% minRec=1", r.Dataset, r.MinPSPercent),
				Paper: dir(pCounts[0][j], pCounts[0][j+1]),
				Ours:  dir(r.Counts[0][j], r.Counts[0][j+1]),
			})
		}
	}
	// minPS axis: compare adjacent rows of the same dataset.
	for _, ds := range DatasetNames() {
		var pcts []float64
		for _, r := range ours {
			if r.Dataset == ds {
				pcts = append(pcts, r.MinPSPercent)
			}
		}
		for i := 0; i+1 < len(pcts); i++ {
			a, okA := oo[ds][pcts[i]]
			b, okB := oo[ds][pcts[i+1]]
			pa, okPA := po[ds][pcts[i]]
			pb, okPB := po[ds][pcts[i+1]]
			if !okA || !okB || !okPA || !okPB {
				continue
			}
			for k := range paperMinRecs {
				for j, per := range paperPers {
					checks = append(checks, ShapeCheck{
						Axis:  fmt.Sprintf("minPS %g%%->%g%%", pcts[i], pcts[i+1]),
						Where: fmt.Sprintf("%s minRec=%d per=%d", ds, k+1, per),
						Paper: dir(pa[k][j], pb[k][j]),
						Ours:  dir(a[k][j], b[k][j]),
					})
				}
			}
		}
	}
	for i := range checks {
		checks[i].Agree = checks[i].Paper == checks[i].Ours ||
			checks[i].Paper == "flat" || checks[i].Ours == "flat"
	}
	return checks
}

// FormatShapeReport renders the checks with a summary line.
func FormatShapeReport(checks []ShapeCheck) string {
	var b strings.Builder
	agree := 0
	for _, c := range checks {
		if c.Agree {
			agree++
		} else {
			fmt.Fprintf(&b, "DISAGREE %-18s at %-40s paper=%s ours=%s\n",
				c.Axis, c.Where, c.Paper, c.Ours)
		}
	}
	fmt.Fprintf(&b, "shape agreement: %d/%d directional checks match the paper\n", agree, len(checks))
	return b.String()
}
