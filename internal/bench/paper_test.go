package bench

import (
	"strings"
	"testing"
)

func TestPaperTablesWellFormed(t *testing.T) {
	t5 := PaperTable5()
	if len(t5) != 9 {
		t.Fatalf("PaperTable5 has %d rows, want 9", len(t5))
	}
	// Spot-check the transcription against memorable cells of the paper.
	if t5[0].Counts[0][2] != 7193 {
		t.Errorf("T10 0.1%% rec=1 per=1440 = %d, want 7193", t5[0].Counts[0][2])
	}
	if t5[6].Counts[0][0] != 14736 {
		t.Errorf("Twitter 2%% rec=1 per=360 = %d, want 14736", t5[6].Counts[0][0])
	}
	if t5[3].Counts[2][2] != 9 {
		t.Errorf("Shop 0.1%% rec=3 per=1440 = %d, want 9", t5[3].Counts[2][2])
	}
	t7 := PaperTable7()
	if len(t7) != 9 {
		t.Fatalf("PaperTable7 has %d rows, want 9", len(t7))
	}
	if t7[0].Seconds[0][2] != 366.5 {
		t.Errorf("T10 0.1%% rec=1 per=1440 runtime = %v, want 366.5", t7[0].Seconds[0][2])
	}
	t8 := PaperTable8()
	if len(t8) != 6 {
		t.Fatalf("PaperTable8 has %d rows, want 6", len(t8))
	}
	if t8[5].Count != 442076 || t8[5].MaxLen != 16 {
		t.Errorf("Twitter p-patterns = %+v", t8[5])
	}
}

func TestShapeReportSelfAgreement(t *testing.T) {
	// The paper's own table must agree with itself on every check.
	checks := ShapeReport(PaperTable5())
	if len(checks) == 0 {
		t.Fatal("no checks generated")
	}
	for _, c := range checks {
		if !c.Agree {
			t.Errorf("paper disagrees with itself: %+v", c)
		}
	}
	out := FormatShapeReport(checks)
	if !strings.Contains(out, "shape agreement:") {
		t.Errorf("missing summary: %s", out)
	}
}

func TestShapeReportDetectsDisagreement(t *testing.T) {
	rows := PaperTable5()
	// Invert the per trend of the first row at minRec=1.
	rows[0].Counts[0] = [3]int{7193, 1254, 428}
	checks := ShapeReport(rows)
	found := false
	for _, c := range checks {
		if !c.Agree && strings.HasPrefix(c.Axis, "per") {
			found = true
		}
	}
	if !found {
		t.Error("inverted per trend not detected")
	}
	if out := FormatShapeReport(checks); !strings.Contains(out, "DISAGREE") {
		t.Error("report does not surface the disagreement")
	}
}
