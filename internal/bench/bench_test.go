package bench

import (
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/core"
)

// Reduced scales keep the harness tests fast while exercising every runner
// end to end on real generator output. The scales are chosen so the
// percentage thresholds stay meaningful: at a too-small |TDB|, minPS=0.1%
// collapses to 1 and the pattern space explodes.
var testScales = map[string]float64{
	"t10i4d100k": 0.05, // 5,000 transactions -> minPS 0.1% = 5
	"shop14":     0.25, // ~10 days           -> minPS 0.1% = 14
	"twitter":    0.05, // ~6 days            -> minPS 2% = ~170
}

func loadT(t *testing.T, name string) *Dataset {
	t.Helper()
	d, err := Load(name, testScales[name], 1)
	if err != nil {
		t.Fatal(err)
	}
	// Raise the thresholds relative to the paper grid: scaled-down datasets
	// keep full-rate transactions, so paper-level minPS percentages admit
	// far more patterns (and far more mining work) than the full-size runs.
	scaled := *d
	scaled.MinPSPercents = [3]float64{
		d.MinPSPercents[0] * 5,
		d.MinPSPercents[1] * 5,
		d.MinPSPercents[2] * 5,
	}
	return &scaled
}

func TestLoadUnknownDataset(t *testing.T) {
	if _, err := Load("nope", 1, 1); err == nil {
		t.Error("unknown dataset must fail")
	}
}

func TestLoadCaches(t *testing.T) {
	a := loadT(t, "shop14")
	b := loadT(t, "shop14")
	if a.DB != b.DB {
		t.Error("same (name, scale, seed) should return the cached database")
	}
	names := DatasetNames()
	if len(names) != 3 {
		t.Errorf("DatasetNames = %v", names)
	}
	all, err := LoadAll(0.02, 99)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 3 {
		t.Errorf("LoadAll returned %d datasets", len(all))
	}
}

func TestTable5Monotonicity(t *testing.T) {
	d := loadT(t, "shop14")
	rows, err := Table5(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	// Counts must not increase with minRec (nested pattern sets)...
	for _, r := range rows {
		for j := range paperPers {
			if r.Counts[1][j] > r.Counts[0][j] || r.Counts[2][j] > r.Counts[1][j] {
				t.Errorf("counts increase with minRec in row %+v", r)
			}
		}
		// ...and at minRec=1 must not decrease with per (longer periods only
		// merge or extend intervals, never destroy one interesting interval
		// without leaving a larger one).
		if r.Counts[0][0] > r.Counts[0][1] || r.Counts[0][1] > r.Counts[0][2] {
			t.Errorf("minRec=1 counts decrease with per in row %+v", r)
		}
	}
	// Counts must not increase with minPS at fixed (minRec, per).
	for i := 1; i < len(rows); i++ {
		for k := range paperMinRecs {
			for j := range paperPers {
				if rows[i].Counts[k][j] > rows[i-1].Counts[k][j] {
					t.Errorf("counts increase with minPS: %d%% -> %d patterns vs %d%% -> %d",
						int(rows[i-1].MinPSPercent*10), rows[i-1].Counts[k][j],
						int(rows[i].MinPSPercent*10), rows[i].Counts[k][j])
				}
			}
		}
	}
	out := FormatTable5(rows)
	if !strings.Contains(out, "shop14") {
		t.Error("FormatTable5 missing dataset name")
	}
}

func TestSweepAndFormats(t *testing.T) {
	d := loadT(t, "twitter")
	points, err := Sweep(d, 10, 20, 10) // minPS 10% and 20%
	if err != nil {
		t.Fatal(err)
	}
	// 2 minPS values x 3 pers x 3 minRecs.
	if len(points) != 18 {
		t.Fatalf("got %d points, want 18", len(points))
	}
	for _, p := range points {
		if p.Runtime <= 0 {
			t.Errorf("non-positive runtime at %+v", p)
		}
	}
	if s := FormatSweep(points, true); !strings.Contains(s, "minRec=3") {
		t.Errorf("FormatSweep counts missing blocks:\n%s", s)
	}
	if s := FormatSweep(points, false); !strings.Contains(s, "per=1440") {
		t.Errorf("FormatSweep runtimes missing series:\n%s", s)
	}
}

func TestTable6FindsPlantedEvents(t *testing.T) {
	// Use a larger slice of the Twitter data so at least one named event
	// window (pakvotes days 8-14) is fully inside the horizon.
	d, err := Load("twitter", 0.15, 1) // ~18 days
	if err != nil {
		t.Fatal(err)
	}
	// 6%% instead of the paper's 2%%: same reduced-scale reasoning as loadT.
	rows, err := Table6(d, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no planted events rediscovered")
	}
	for _, r := range rows {
		if len(r.Pattern) < 2 || len(r.Durations) == 0 || r.Cause == "" {
			t.Errorf("incomplete row %+v", r)
		}
	}
	out := FormatTable6(rows)
	if !strings.Contains(out, "planted burst") {
		t.Errorf("FormatTable6 missing cause:\n%s", out)
	}
}

func TestFigure8Series(t *testing.T) {
	d, err := Load("twitter", 0.15, 1)
	if err != nil {
		t.Fatal(err)
	}
	series := Figure8(d)
	if len(series) != 4 {
		t.Fatalf("got %d series, want 4", len(series))
	}
	// nuclear bursts on days 5-23; with an 18-day horizon the in-window days
	// must dominate.
	for _, s := range series {
		if s.Tag != "nuclear" {
			continue
		}
		in, out := 0, 0
		for day, n := range s.Daily {
			if day >= 5 && day < 23 {
				in += n
			} else {
				out += n
			}
		}
		if in <= out {
			t.Errorf("nuclear not bursty: %d in window vs %d outside", in, out)
		}
	}
	if txt := FormatFigure8(series); !strings.Contains(txt, "uttarakhand") {
		t.Error("FormatFigure8 missing tag header")
	}
}

func TestTable7RunsAndFormats(t *testing.T) {
	d := loadT(t, "t10i4d100k")
	rows, err := Table7(d)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	for _, r := range rows {
		for k := range paperMinRecs {
			for j := range paperPers {
				if r.Seconds[k][j] <= 0 {
					t.Errorf("non-positive runtime in %+v", r)
				}
			}
		}
	}
	if out := FormatTable7(rows); !strings.Contains(out, "t10i4d100k") {
		t.Error("FormatTable7 missing dataset name")
	}
}

func TestTable8Ordering(t *testing.T) {
	d := loadT(t, "shop14")
	o := DefaultTable8Options(d.Name)
	// Same reasoning as loadT: at reduced scale, paper-level minSup admits
	// an enormous p-pattern set; raise it while keeping all three models on
	// identical thresholds.
	o.SupPercent *= 20
	rows, err := Table8(d, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows, want 3", len(rows))
	}
	pf, rp, pp := rows[0], rows[1], rows[2]
	// The paper's headline relations: PF <= recurring <= p-patterns in both
	// count and maximum length.
	if pf.Count > rp.Count || rp.Count > pp.Count {
		t.Errorf("count ordering violated: PF=%d RP=%d PP=%d", pf.Count, rp.Count, pp.Count)
	}
	if pf.MaxLen > rp.MaxLen || rp.MaxLen > pp.MaxLen {
		t.Errorf("max length ordering violated: PF=%d RP=%d PP=%d", pf.MaxLen, rp.MaxLen, pp.MaxLen)
	}
	if out := FormatTable8(rows); !strings.Contains(out, "p-patterns") {
		t.Error("FormatTable8 missing model name")
	}
}

func TestDefaultTable8Options(t *testing.T) {
	if o := DefaultTable8Options("twitter"); o.SupPercent != 2 {
		t.Errorf("twitter minSup%% = %f, want 2", o.SupPercent)
	}
	if o := DefaultTable8Options("shop14"); o.SupPercent != 0.1 {
		t.Errorf("shop14 minSup%% = %f, want 0.1", o.SupPercent)
	}
}

func TestAblationsConsistency(t *testing.T) {
	d := loadT(t, "t10i4d100k")
	o := core.Options{Per: 360, MinPS: core.MinPSFromPercent(d.DB, 0.5), MinRec: 2}
	rows, err := Ablations(d, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("got %d rows, want 6", len(rows))
	}
	// All variants must report the identical pattern count.
	for _, r := range rows[1:] {
		if r.Patterns != rows[0].Patterns {
			t.Errorf("%s/%s found %d patterns, want %d", r.Name, r.Variant, r.Patterns, rows[0].Patterns)
		}
	}
	// Pruning off must examine at least as many patterns as pruning on.
	if rows[1].Examined < rows[0].Examined {
		t.Errorf("pruning off examined %d < on %d", rows[1].Examined, rows[0].Examined)
	}
	if out := FormatAblations(rows); !strings.Contains(out, "erec-pruning") {
		t.Errorf("FormatAblations missing mechanism:\n%s", out)
	}
}
