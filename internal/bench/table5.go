package bench

import (
	"fmt"
	"strings"

	"github.com/recurpat/rp/internal/core"
)

// Table5Row is one row of the paper's Table 5: for a dataset and minPS
// value, the number of recurring patterns at every (minRec, per)
// combination. Counts[i][j] is the count at minRec = paperMinRecs[i] and
// per = paperPers[j].
type Table5Row struct {
	Dataset      string
	MinPSPercent float64
	Counts       [3][3]int
}

// Table5 regenerates the paper's Table 5 for one dataset. For each
// (per, minPS) cell it mines once at minRec = 1 and derives the counts at
// higher minRec values by filtering on each pattern's recurrence — the
// recurring pattern sets are nested in minRec, so this is exact and saves
// two thirds of the mining work.
func Table5(d *Dataset) ([]Table5Row, error) {
	rows := make([]Table5Row, len(d.MinPSPercents))
	for i, pct := range d.MinPSPercents {
		rows[i] = Table5Row{Dataset: d.Name, MinPSPercent: pct}
		minPS := core.MinPSFromPercent(d.DB, pct)
		for j, per := range d.Pers {
			res, err := core.Mine(d.DB, core.Options{Per: per, MinPS: minPS, MinRec: 1})
			if err != nil {
				return nil, err
			}
			for _, p := range res.Patterns {
				for k, minRec := range paperMinRecs {
					if p.Recurrence >= minRec {
						rows[i].Counts[k][j]++
					}
				}
			}
		}
	}
	return rows, nil
}

// FormatTable5 renders Table 5 rows in the paper's layout.
func FormatTable5(rows []Table5Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-7s", "Dataset", "minPS")
	for _, minRec := range paperMinRecs {
		for _, per := range paperPers {
			fmt.Fprintf(&b, " rec=%d,per=%-5d", minRec, per)
		}
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %5.2f%%", r.Dataset, r.MinPSPercent)
		for k := range paperMinRecs {
			for j := range paperPers {
				fmt.Fprintf(&b, " %15d", r.Counts[k][j])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
