package bench

import (
	"fmt"
	"strings"

	"github.com/recurpat/rp/internal/obs"
)

// Benchmark is one benchmark result row: the shape cmd/benchfmt parses out
// of `go test -bench` text, and the shape rpbench -json emits for the timed
// Table 7 cells. Metrics holds every reported unit (ns/op, B/op, and the
// tracer's "<phase>-ns/op" / "<phase>-count/op" attribution keys).
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the benchmark report file (BENCH_*.json) shared by cmd/benchfmt
// and rpbench -json: run context plus one record per benchmark, with
// records in input order and metric keys sorted by encoding/json so
// committed reports diff cleanly.
type Report struct {
	Context    map[string]string `json:"context"`
	Benchmarks []Benchmark       `json:"benchmarks"`
}

// FormatPhaseMetrics renders the per-phase attribution carried by benchmark
// rows whose metrics include the tracer's "<phase>-ns/op" keys: one line
// per such row giving each phase's share of the row's ns/op. Rows without
// phase metrics are skipped; when none carry any, the result is empty.
func FormatPhaseMetrics(benchmarks []Benchmark) string {
	var b strings.Builder
	for _, bm := range benchmarks {
		total := bm.Metrics["ns/op"]
		var parts []string
		for _, phase := range obs.PhaseNames() {
			ns, ok := bm.Metrics[phase+"-ns/op"]
			if !ok || ns <= 0 {
				continue
			}
			if total > 0 {
				parts = append(parts, fmt.Sprintf("%s %.1f%%", phase, 100*ns/total))
			} else {
				parts = append(parts, fmt.Sprintf("%s %.2fms", phase, ns/1e6))
			}
		}
		if len(parts) == 0 {
			continue
		}
		fmt.Fprintf(&b, "  %-44s %s\n", bm.Name, strings.Join(parts, "  "))
	}
	if b.Len() == 0 {
		return ""
	}
	return "phase attribution (share of ns/op):\n" + b.String()
}
