// Benchmark comparison: collect repeated-run samples of one metric from
// bench output (text or a tracked BENCH_*.json report), test each
// benchmark's old-vs-new shift with a Mann–Whitney U test, and render a
// delta table. This is the engine behind cmd/rpbenchdiff.
//
// Why Mann–Whitney: benchmark timings are not normal — they are skewed by
// scheduler noise, GC pauses and frequency scaling, usually with a long
// right tail — so a t-test's normality assumption is off and a single
// outlier can swing its verdict. The rank-based U test only asks whether
// one distribution is stochastically larger than the other, is robust to
// outliers, and is what benchstat uses for the same job.
package bench

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"
)

// ParseBenchLine parses one `go test -bench` result line
// ("BenchmarkName-8   123   456 ns/op   7 B/op ...") into a record;
// ok=false for any other line. Shared by cmd/benchfmt and the sample
// collection below.
func ParseBenchLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		b.Metrics[fields[i+1]] = v
	}
	if len(b.Metrics) == 0 {
		return Benchmark{}, false
	}
	return b, true
}

// Samples maps a benchmark name to the values one metric took across its
// repeated runs (`-count=N` gives N samples per name). Names are
// normalized: the "-<GOMAXPROCS>" suffix is stripped so reports recorded
// on different machines compare.
type Samples map[string][]float64

// normalizeBenchName strips the trailing "-<digits>" GOMAXPROCS suffix go
// test appends when running with more than one CPU.
func normalizeBenchName(name string) string {
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			return name[:i]
		}
	}
	return name
}

// CollectSamples gathers the named metric from benchmark records into
// per-name sample sets. Records missing the metric are skipped.
func CollectSamples(benchmarks []Benchmark, metric string) Samples {
	s := make(Samples)
	for _, b := range benchmarks {
		if v, ok := b.Metrics[metric]; ok {
			name := normalizeBenchName(b.Name)
			s[name] = append(s[name], v)
		}
	}
	return s
}

// ReadSamples loads samples of one metric from a file holding either a
// BENCH_*.json report or raw `go test -bench` text (auto-detected).
func ReadSamples(path, metric string) (Samples, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var benchmarks []Benchmark
	if bytes.HasPrefix(bytes.TrimLeft(data, " \t\r\n"), []byte("{")) {
		var r Report
		if err := json.Unmarshal(data, &r); err != nil {
			return nil, fmt.Errorf("%s: not a benchmark report: %w", path, err)
		}
		benchmarks = r.Benchmarks
	} else {
		sc := bufio.NewScanner(bytes.NewReader(data))
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			if b, ok := ParseBenchLine(sc.Text()); ok {
				benchmarks = append(benchmarks, b)
			}
		}
		if err := sc.Err(); err != nil {
			return nil, err
		}
	}
	s := CollectSamples(benchmarks, metric)
	if len(s) == 0 {
		return nil, fmt.Errorf("%s: no benchmark results carrying %q", path, metric)
	}
	return s, nil
}

// MannWhitneyU runs a two-sided Mann–Whitney U test and returns the
// p-value for the null hypothesis that x and y come from the same
// distribution. The normal approximation with tie correction and
// continuity correction is used — adequate for the sample sizes bench
// comparisons see (3 and up), and exactly what's needed to rank-test
// timings without a normality assumption. Fully tied samples (every value
// equal, e.g. comparing a run against itself) return p=1.
func MannWhitneyU(x, y []float64) float64 {
	n1, n2 := float64(len(x)), float64(len(y))
	if n1 == 0 || n2 == 0 {
		return 1
	}
	// Rank the pooled samples, averaging ranks across ties.
	type obs struct {
		v     float64
		group int // 0 = x, 1 = y
	}
	pooled := make([]obs, 0, len(x)+len(y))
	for _, v := range x {
		pooled = append(pooled, obs{v, 0})
	}
	for _, v := range y {
		pooled = append(pooled, obs{v, 1})
	}
	sort.Slice(pooled, func(i, j int) bool { return pooled[i].v < pooled[j].v })

	n := len(pooled)
	var r1 float64      // rank sum of x
	var tieTerm float64 // sum over tie groups of t^3 - t
	for i := 0; i < n; {
		j := i
		for j < n && pooled[j].v == pooled[i].v {
			j++
		}
		t := float64(j - i)
		tieTerm += t*t*t - t
		// Average rank of this tie group (ranks are 1-based).
		rank := (float64(i+1) + float64(j)) / 2
		for k := i; k < j; k++ {
			if pooled[k].group == 0 {
				r1 += rank
			}
		}
		i = j
	}

	u1 := r1 - n1*(n1+1)/2
	mu := n1 * n2 / 2
	nf := float64(n)
	sigma2 := n1 * n2 / 12 * ((nf + 1) - tieTerm/(nf*(nf-1)))
	if sigma2 <= 0 {
		return 1 // all values tied: no evidence of a shift
	}
	z := math.Abs(u1-mu) - 0.5 // continuity correction
	if z < 0 {
		z = 0
	}
	z /= math.Sqrt(sigma2)
	p := math.Erfc(z / math.Sqrt2) // two-sided
	if p > 1 {
		p = 1
	}
	return p
}

// DiffOptions parameterizes DiffSamples. The zero value is not useful;
// use DefaultDiffOptions for the conventional α=0.05, 5% threshold.
type DiffOptions struct {
	// Alpha is the significance level: a benchmark's shift counts only
	// when its Mann–Whitney p-value is below Alpha.
	Alpha float64
	// ThresholdPct additionally requires the median delta to exceed this
	// percentage in magnitude — statistically detectable 0.3% drifts are
	// not worth failing a build over.
	ThresholdPct float64
}

// DefaultDiffOptions is the conventional benchmark gate: α=0.05 (the
// standard false-positive budget; at ~10 tracked benchmarks it admits
// about one spurious flag per two runs, acceptable for an advisory gate)
// and a 5% median-shift floor, below which even a real change is noise
// relative to machine-to-machine variance.
func DefaultDiffOptions() DiffOptions { return DiffOptions{Alpha: 0.05, ThresholdPct: 5} }

// DiffRow is one benchmark's old-vs-new comparison.
type DiffRow struct {
	Name                 string
	OldN, NewN           int
	OldMedian, NewMedian float64
	// DeltaPct is the median shift (new-old)/old in percent; NaN when the
	// old median is zero.
	DeltaPct float64
	// P is the two-sided Mann–Whitney p-value.
	P float64
	// Significant means p < α and |DeltaPct| ≥ the threshold; Regression
	// additionally means the metric moved up (all tracked units — ns/op,
	// B/op, allocs/op — are smaller-is-better).
	Significant bool
	Regression  bool
	// OnlyIn marks rows present in just one input ("old" or "new"); such
	// rows are never significant.
	OnlyIn string
}

// DiffSamples compares two sample sets benchmark by benchmark, sorted by
// name. Benchmarks present on only one side become OnlyIn rows.
func DiffSamples(oldS, newS Samples, opt DiffOptions) []DiffRow {
	names := make([]string, 0, len(oldS)+len(newS))
	for name := range oldS {
		names = append(names, name)
	}
	for name := range newS {
		if _, ok := oldS[name]; !ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)

	rows := make([]DiffRow, 0, len(names))
	for _, name := range names {
		o, n := oldS[name], newS[name]
		row := DiffRow{Name: name, OldN: len(o), NewN: len(n),
			OldMedian: median(o), NewMedian: median(n), P: 1, DeltaPct: math.NaN()}
		switch {
		case len(o) == 0:
			row.OnlyIn = "new"
		case len(n) == 0:
			row.OnlyIn = "old"
		default:
			if row.OldMedian != 0 {
				row.DeltaPct = (row.NewMedian - row.OldMedian) / row.OldMedian * 100
			}
			row.P = MannWhitneyU(o, n)
			row.Significant = row.P < opt.Alpha && !math.IsNaN(row.DeltaPct) &&
				math.Abs(row.DeltaPct) >= opt.ThresholdPct
			row.Regression = row.Significant && row.DeltaPct > 0
		}
		rows = append(rows, row)
	}
	return rows
}

func median(v []float64) float64 {
	if len(v) == 0 {
		return math.NaN()
	}
	s := append([]float64(nil), v...)
	sort.Float64s(s)
	if len(s)%2 == 1 {
		return s[len(s)/2]
	}
	return (s[len(s)/2-1] + s[len(s)/2]) / 2
}

// Regressions counts the rows flagged as significant regressions.
func Regressions(rows []DiffRow) int {
	c := 0
	for _, r := range rows {
		if r.Regression {
			c++
		}
	}
	return c
}

// FormatDiffText renders the comparison as an aligned text table with one
// verdict column: "regression"/"improvement" for significant shifts, "~"
// for statistically indistinguishable ones.
func FormatDiffText(rows []DiffRow, metric string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-44s %14s %14s %9s %8s  %s\n", metric, "old median", "new median", "delta", "p", "")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-44s %14s %14s %9s %8s  %s\n", r.Name,
			formatMetricValue(metric, r.OldMedian), formatMetricValue(metric, r.NewMedian),
			formatDelta(r), formatP(r), verdict(r))
	}
	return b.String()
}

// FormatDiffMarkdown renders the comparison as a GitHub-flavored markdown
// table, the shape a CI job drops into a summary.
func FormatDiffMarkdown(rows []DiffRow, metric string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "| benchmark | old median | new median | delta | p | verdict |\n")
	fmt.Fprintf(&b, "|---|---:|---:|---:|---:|---|\n")
	for _, r := range rows {
		fmt.Fprintf(&b, "| %s | %s | %s | %s | %s | %s |\n", r.Name,
			formatMetricValue(metric, r.OldMedian), formatMetricValue(metric, r.NewMedian),
			formatDelta(r), formatP(r), verdict(r))
	}
	return b.String()
}

func verdict(r DiffRow) string {
	switch {
	case r.OnlyIn != "":
		return "only in " + r.OnlyIn
	case r.Regression:
		return "regression"
	case r.Significant:
		return "improvement"
	default:
		return "~"
	}
}

func formatDelta(r DiffRow) string {
	if r.OnlyIn != "" || math.IsNaN(r.DeltaPct) {
		return "-"
	}
	return fmt.Sprintf("%+.1f%%", r.DeltaPct)
}

func formatP(r DiffRow) string {
	if r.OnlyIn != "" {
		return "-"
	}
	return fmt.Sprintf("%.3f", r.P)
}

// formatMetricValue renders a metric value in its natural unit: durations
// for ns/op, binary sizes for B/op, plain numbers otherwise.
func formatMetricValue(metric string, v float64) string {
	if math.IsNaN(v) {
		return "-"
	}
	switch {
	case strings.HasSuffix(metric, "ns/op"):
		switch {
		case v >= 1e9:
			return fmt.Sprintf("%.2fs", v/1e9)
		case v >= 1e6:
			return fmt.Sprintf("%.2fms", v/1e6)
		case v >= 1e3:
			return fmt.Sprintf("%.1fµs", v/1e3)
		default:
			return fmt.Sprintf("%.0fns", v)
		}
	case strings.HasSuffix(metric, "B/op"):
		switch {
		case v >= 1<<20:
			return fmt.Sprintf("%.2fMiB", v/(1<<20))
		case v >= 1<<10:
			return fmt.Sprintf("%.1fKiB", v/(1<<10))
		default:
			return fmt.Sprintf("%.0fB", v)
		}
	default:
		return strconv.FormatFloat(v, 'g', 6, 64)
	}
}
