package bench

import (
	"fmt"
	"strings"

	"github.com/recurpat/rp/internal/baseline/pfgrowth"
	"github.com/recurpat/rp/internal/baseline/ppattern"
	"github.com/recurpat/rp/internal/core"
)

// Table8Row compares the three models on one dataset, reporting the
// pattern count (column I of the paper's Table 8) and the maximum pattern
// length (column II).
type Table8Row struct {
	Dataset string
	Model   string
	Count   int
	MaxLen  int
	// Truncated marks a p-pattern count stopped at the safety limit; the
	// count is then a lower bound (the paper's point is precisely that this
	// set explodes).
	Truncated bool
}

// Table8Options carries the comparison thresholds of the paper's Section
// 5.4: per = 1440 (one day), w = 1, minSup and minPS as a percentage of
// |TDB| (0.1% for Shop-14, 2% for Twitter).
type Table8Options struct {
	Per           int64
	Window        int64
	SupPercent    float64
	PPatternLimit int // safety ceiling for the p-pattern enumeration
}

// DefaultTable8Options returns the paper's settings for the given dataset.
func DefaultTable8Options(dataset string) Table8Options {
	pct := 0.1
	if dataset == "twitter" {
		pct = 2
	}
	return Table8Options{Per: 1440, Window: 1, SupPercent: pct, PPatternLimit: 2_000_000}
}

// Table8 runs the three miners on the dataset and returns one row per
// model: periodic-frequent patterns, recurring patterns (minRec = 1, as the
// counts in the paper match its Table 5 at minRec = 1), and p-patterns.
func Table8(d *Dataset, o Table8Options) ([]Table8Row, error) {
	minSup := core.MinPSFromPercent(d.DB, o.SupPercent)

	pf, err := pfgrowth.Mine(d.DB, pfgrowth.Options{MinSup: minSup, MaxPer: o.Per, Limit: o.PPatternLimit})
	if err != nil {
		return nil, err
	}
	rp, err := core.Mine(d.DB, core.Options{Per: o.Per, MinPS: minSup, MinRec: 1})
	if err != nil {
		return nil, err
	}
	// The p-pattern threshold counts periodic inter-arrival times, while
	// minPS counts occurrences; a run of minSup occurrences has minSup-1
	// gaps. Using minSup-1 makes the models strictly comparable: every
	// periodic-frequent pattern is recurring (one interval covering its
	// whole ts-list), and every recurring pattern is a p-pattern.
	ppMinSup := minSup - 1
	if ppMinSup < 1 {
		ppMinSup = 1
	}
	pp, err := ppattern.Mine(d.DB, ppattern.Options{
		Per: o.Per, Window: o.Window, MinSup: ppMinSup, Limit: o.PPatternLimit,
	})
	if err != nil {
		return nil, err
	}

	return []Table8Row{
		{Dataset: d.Name, Model: "PF patterns", Count: len(pf.Patterns), MaxLen: pf.MaxLen(), Truncated: pf.Truncated},
		{Dataset: d.Name, Model: "Recurring patterns", Count: len(rp.Patterns), MaxLen: rp.MaxLen()},
		{Dataset: d.Name, Model: "p-patterns", Count: len(pp.Patterns), MaxLen: pp.MaxLen(), Truncated: pp.Truncated},
	}, nil
}

// FormatTable8 renders comparison rows in the paper's layout.
func FormatTable8(rows []Table8Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-20s %12s %8s\n", "Dataset", "Model", "I (count)", "II (len)")
	for _, r := range rows {
		count := fmt.Sprint(r.Count)
		if r.Truncated {
			count = ">" + count
		}
		fmt.Fprintf(&b, "%-12s %-20s %12s %8d\n", r.Dataset, r.Model, count, r.MaxLen)
	}
	return b.String()
}
