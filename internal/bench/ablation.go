package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/recurpat/rp/internal/core"
)

// AblationRow reports one design-choice comparison: the same mining task
// with a mechanism toggled.
type AblationRow struct {
	Name     string
	Variant  string
	Seconds  float64
	Patterns int
	Examined int // getRecurrence evaluations
	Pruned   int // subtrees cut by the Erec bound
	Nodes    int // prefix-tree nodes created
}

// Ablations runs the design-choice studies of DESIGN.md on one dataset:
// Erec pruning on/off, RP-tree vs vertical mining, and support-descending
// vs lexicographic item order. All variants produce identical pattern sets;
// the table quantifies their cost differences.
func Ablations(d *Dataset, o core.Options) ([]AblationRow, error) {
	o.CollectStats = true
	var rows []AblationRow
	run := func(name, variant string, mine func() (*core.Result, error)) error {
		start := time.Now() //rpvet:allow determinism — the ablation measures runtime
		res, err := mine()
		if err != nil {
			return err
		}
		rows = append(rows, AblationRow{
			Name:     name,
			Variant:  variant,
			Seconds:  time.Since(start).Seconds(),
			Patterns: len(res.Patterns),
			Examined: res.Stats.PatternsExamined,
			Pruned:   res.Stats.PatternsPruned,
			Nodes:    res.Stats.TreeNodes,
		})
		return nil
	}

	base := o
	if err := run("erec-pruning", "on", func() (*core.Result, error) { return core.Mine(d.DB, base) }); err != nil {
		return nil, err
	}
	off := o
	off.DisableErecPruning = true
	if err := run("erec-pruning", "off", func() (*core.Result, error) { return core.Mine(d.DB, off) }); err != nil {
		return nil, err
	}
	if err := run("miner", "rp-tree", func() (*core.Result, error) { return core.Mine(d.DB, base) }); err != nil {
		return nil, err
	}
	if err := run("miner", "vertical", func() (*core.Result, error) { return core.MineVertical(d.DB, base) }); err != nil {
		return nil, err
	}
	lex := o
	lex.ItemOrder = core.Lexicographic
	if err := run("item-order", "support-desc", func() (*core.Result, error) { return core.Mine(d.DB, base) }); err != nil {
		return nil, err
	}
	if err := run("item-order", "lexicographic", func() (*core.Result, error) { return core.Mine(d.DB, lex) }); err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatAblations renders the comparison table.
func FormatAblations(rows []AblationRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %-14s %9s %10s %10s %10s %10s\n",
		"Mechanism", "Variant", "Seconds", "Patterns", "Examined", "Pruned", "TreeNodes")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-14s %9.2f %10d %10d %10d %10d\n",
			r.Name, r.Variant, r.Seconds, r.Patterns, r.Examined, r.Pruned, r.Nodes)
	}
	return b.String()
}
