package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/recurpat/rp/internal/core"
)

// Table7Row is one row of the paper's Table 7: RP-growth runtime in seconds
// for a dataset and minPS value at every (minRec, per) combination.
// Seconds[i][j] corresponds to minRec = paperMinRecs[i], per = paperPers[j].
type Table7Row struct {
	Dataset      string
	MinPSPercent float64
	Seconds      [3][3]float64
}

// Table7 regenerates the paper's Table 7 for one dataset: a full timed
// mining run per cell (unlike Table 5, runtimes cannot be shared across
// minRec values, since minRec drives the pruning).
func Table7(d *Dataset) ([]Table7Row, error) {
	rows := make([]Table7Row, len(d.MinPSPercents))
	for i, pct := range d.MinPSPercents {
		rows[i] = Table7Row{Dataset: d.Name, MinPSPercent: pct}
		minPS := core.MinPSFromPercent(d.DB, pct)
		for k, minRec := range paperMinRecs {
			for j, per := range d.Pers {
				start := time.Now() //rpvet:allow determinism — Table 7 measures runtime
				if _, err := core.Mine(d.DB, core.Options{Per: per, MinPS: minPS, MinRec: minRec}); err != nil {
					return nil, err
				}
				rows[i].Seconds[k][j] = time.Since(start).Seconds()
			}
		}
	}
	return rows, nil
}

// FormatTable7 renders Table 7 rows in the paper's layout.
func FormatTable7(rows []Table7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-7s", "Dataset", "minPS")
	for _, minRec := range paperMinRecs {
		for _, per := range paperPers {
			fmt.Fprintf(&b, " rec=%d,per=%-5d", minRec, per)
		}
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %5.2f%%", r.Dataset, r.MinPSPercent)
		for k := range paperMinRecs {
			for j := range paperPers {
				fmt.Fprintf(&b, " %14.2fs", r.Seconds[k][j])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
