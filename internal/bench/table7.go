package bench

import (
	"fmt"
	"strings"
	"time"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
)

// Table7Row is one row of the paper's Table 7: RP-growth runtime in seconds
// for a dataset and minPS value at every (minRec, per) combination.
// Seconds[i][j] corresponds to minRec = paperMinRecs[i], per = paperPers[j].
type Table7Row struct {
	Dataset      string
	MinPSPercent float64
	Seconds      [3][3]float64
}

// Table7 regenerates the paper's Table 7 for one dataset: a full timed
// mining run per cell (unlike Table 5, runtimes cannot be shared across
// minRec values, since minRec drives the pruning).
func Table7(d *Dataset) ([]Table7Row, error) {
	rows, _, err := table7(d, false)
	return rows, err
}

// Table7Traced is Table7 with phase tracing on: alongside the paper-layout
// rows it returns one benchfmt-shaped Benchmark per grid cell whose metrics
// carry the cell's total runtime and the tracer's per-phase attribution,
// the raw material of rpbench -json.
func Table7Traced(d *Dataset) ([]Table7Row, []Benchmark, error) {
	return table7(d, true)
}

func table7(d *Dataset, traced bool) ([]Table7Row, []Benchmark, error) {
	rows := make([]Table7Row, len(d.MinPSPercents))
	var bms []Benchmark
	for i, pct := range d.MinPSPercents {
		rows[i] = Table7Row{Dataset: d.Name, MinPSPercent: pct}
		minPS := core.MinPSFromPercent(d.DB, pct)
		for k, minRec := range paperMinRecs {
			for j, per := range d.Pers {
				o := core.Options{Per: per, MinPS: minPS, MinRec: minRec}
				if traced {
					o.Trace = obs.NewTrace()
				}
				start := time.Now() //rpvet:allow determinism — Table 7 measures runtime
				if _, err := core.Mine(d.DB, o); err != nil {
					return nil, nil, err
				}
				elapsed := time.Since(start)
				rows[i].Seconds[k][j] = elapsed.Seconds()
				if !traced {
					continue
				}
				metrics := o.Trace.Report().BenchMetrics()
				if metrics == nil {
					metrics = map[string]float64{}
				}
				metrics["ns/op"] = float64(elapsed.Nanoseconds())
				bms = append(bms, Benchmark{
					Name:       fmt.Sprintf("Table7/%s/minPS=%g%%/rec=%d/per=%d", d.Name, pct, minRec, per),
					Iterations: 1,
					Metrics:    metrics,
				})
			}
		}
	}
	return rows, bms, nil
}

// FormatTable7 renders Table 7 rows in the paper's layout.
func FormatTable7(rows []Table7Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %-7s", "Dataset", "minPS")
	for _, minRec := range paperMinRecs {
		for _, per := range paperPers {
			fmt.Fprintf(&b, " rec=%d,per=%-5d", minRec, per)
		}
	}
	b.WriteByte('\n')
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %5.2f%%", r.Dataset, r.MinPSPercent)
		for k := range paperMinRecs {
			for j := range paperPers {
				fmt.Fprintf(&b, " %14.2fs", r.Seconds[k][j])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}
