package bench

import (
	"fmt"
	"strings"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/gen"
)

// Table6Row is one row of the paper's Table 6: an interesting recurring
// pattern from the Twitter dataset, the durations of its interesting
// periodic intervals rendered as day/hour offsets, and — because our events
// are planted — the matching ground-truth event.
type Table6Row struct {
	Pattern   []string
	Durations []string
	Cause     string
	Support   int
	Rec       int
}

// Table6 mines the Twitter dataset with a 6-hour period (per = 360 minutes,
// minRec = 1, and minPS given as a percentage — the paper uses 2%) and
// reports every multi-tag recurring pattern whose tags all belong to one
// planted event, i.e. the rediscovered event stories.
func Table6(d *Dataset, minPSPercent float64) ([]Table6Row, error) {
	minPS := core.MinPSFromPercent(d.DB, minPSPercent)
	res, err := core.Mine(d.DB, core.Options{Per: 360, MinPS: minPS, MinRec: 1})
	if err != nil {
		return nil, err
	}
	// Index tags by the event that owns them.
	owner := map[string]*gen.BurstEvent{}
	for i := range d.Events {
		for _, tag := range d.Events[i].Tags {
			owner[tag] = &d.Events[i]
		}
	}
	var rows []Table6Row
	for _, p := range res.Patterns {
		if len(p.Items) < 2 {
			continue
		}
		names := d.DB.PatternNames(p.Items)
		ev := owner[names[0]]
		if ev == nil {
			continue
		}
		same := true
		for _, n := range names[1:] {
			if owner[n] != ev {
				same = false
				break
			}
		}
		if !same {
			continue
		}
		row := Table6Row{Pattern: names, Support: p.Support, Rec: p.Recurrence}
		for _, iv := range p.Intervals {
			row.Durations = append(row.Durations, fmt.Sprintf("[day %s, day %s]",
				dayClock(iv.Start), dayClock(iv.End)))
		}
		row.Cause = describeEvent(ev)
		rows = append(rows, row)
	}
	return rows, nil
}

// dayClock renders a minute timestamp as "D hh:mm" with day offsets from
// the collection start.
func dayClock(ts int64) string {
	m := ts - 1
	return fmt.Sprintf("%d %02d:%02d", m/1440, (m%1440)/60, m%60)
}

func describeEvent(ev *gen.BurstEvent) string {
	var w []string
	for _, r := range ev.Windows {
		w = append(w, fmt.Sprintf("days %d-%d", r.Start, r.End))
	}
	return fmt.Sprintf("planted burst {%s} in %s", strings.Join(ev.Tags, ","), strings.Join(w, ", "))
}

// FormatTable6 renders the rediscovered event patterns.
func FormatTable6(rows []Table6Row) string {
	var b strings.Builder
	for i, r := range rows {
		fmt.Fprintf(&b, "%d. {%s} sup=%d rec=%d\n", i+1, strings.Join(r.Pattern, ","), r.Support, r.Rec)
		fmt.Fprintf(&b, "   periodic durations: %s\n", strings.Join(r.Durations, "; "))
		fmt.Fprintf(&b, "   cause: %s\n", r.Cause)
	}
	if len(rows) == 0 {
		b.WriteString("(no event patterns rediscovered)\n")
	}
	return b.String()
}
