package core

import (
	"context"
	"fmt"

	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// Shard-restricted mining: the entry point a scatter-gather coordinator
// (internal/shard) fans one mine out over. RP-growth decomposes exactly at
// the top level — each suffix item's conditional subtree is mined
// independently of every other (the property the in-process worker pool
// already exploits) — so a shard owns the suffix items whose RP-list rank
// falls in its residue class, mines only those, and the union of the
// shards' pattern sets over any partition of the ranks is precisely the
// full mine's pattern set. Canonicalize is a total order on unique item
// sets, so the merged output is byte-identical regardless of shard count.

// ShardSpec restricts a mine to one shard of the top-level suffix items:
// the ranks r of the RP-list's support-descending candidate order with
// r mod Count == Index. The rank order is a pure function of the database
// content and Options (BuildRPList is deterministic), so every shard of a
// scatter derives the same assignment independently — no task list needs
// to ride on the wire, only (Index, Count).
type ShardSpec struct {
	// Index identifies this shard, in [0, Count).
	Index int
	// Count is the total number of shards the mine is split into.
	Count int
}

// Validate reports the first violated constraint.
func (s ShardSpec) Validate() error {
	if s.Count <= 0 {
		return fmt.Errorf("core: shard count must be positive, got %d", s.Count)
	}
	if s.Index < 0 || s.Index >= s.Count {
		return fmt.Errorf("core: shard index must be in [0,%d), got %d", s.Count, s.Index)
	}
	return nil
}

// Owns reports whether the shard mines the suffix item at the given
// RP-list rank.
func (s ShardSpec) Owns(rank int) bool { return rank%s.Count == s.Index }

// MineShardContext mines the slice of db's recurring patterns owned by
// spec: exactly the patterns whose deepest-ranked item falls in the shard's
// residue class of the RP-list rank order. Every shard runs the same two
// database scans (RP-list, initial RP-tree) and then mines only its owned
// subtrees through the read-only subtree path, so shards share no state
// and may run in different processes. The result is canonically ordered;
// concatenating the Patterns of all Count shards (in any order) and
// canonicalizing again reproduces MineContext's output byte for byte.
//
// A spec of {0, 1} owns every rank and is equivalent to MineContext.
// Cancellation behaves as in MineContext: task-granular, *CancelError.
func MineShardContext(ctx context.Context, db *tsdb.DB, o Options, spec ShardSpec) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, &CancelError{Err: err}
	}
	defer o.Trace.StartTotal().End()
	res := &Result{}
	sp := o.Trace.Start(obs.PhaseScan)
	list := BuildRPList(db, o)
	sp.End()
	if o.CollectStats {
		res.Stats.CandidateItems = len(list.Candidates)
	}
	if len(list.Candidates) == 0 {
		return res, nil
	}
	sp = o.Trace.Start(obs.PhaseTreeBuild)
	tree := buildRPTree(db, list)
	sp.End()
	if o.CollectStats {
		// Every shard builds the full initial tree, so summing shard stats
		// overcounts TreeNodes by (Count-1) tree sizes; the reducer
		// documents this (conditional-tree nodes, the dominant term, are
		// counted exactly once since each shard only grows its own).
		res.Stats.TreeNodes += tree.nodes
	}
	ranks := make([]int, 0, (len(tree.order)+spec.Count-1)/spec.Count)
	for r := range tree.order {
		if spec.Owns(r) {
			ranks = append(ranks, r)
		}
	}
	if mineRanks(ctx, tree, o, res, ranks) {
		cerr := &CancelError{Err: ctx.Err()}
		if o.CollectStats {
			cerr.Stats = res.Stats
		}
		return nil, cerr
	}
	sp = o.Trace.Start(obs.PhaseFinalize)
	res.Canonicalize()
	sp.End()
	return res, nil
}
