package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"
	"time"

	"github.com/recurpat/rp/internal/tsdb"
)

// clickstreamDB synthesizes a Shop-14-shaped database without importing
// internal/gen (core may only depend on tsdb): nTrans transactions over
// nItems categories with a skewed popularity distribution, so the miner
// sees many candidate items with non-trivial subtrees — enough work that
// cancellation promptness is measurable.
func clickstreamDB(nItems, nTrans, perTrans int, seed uint64) *tsdb.DB {
	rng := rand.New(rand.NewPCG(seed, 0))
	b := tsdb.NewBuilder()
	dict := b.Dict()
	ids := make([]tsdb.ItemID, nItems)
	for i := range ids {
		ids[i] = dict.Intern(string(rune('A'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('0'+i%10)))
	}
	ts := int64(0)
	for t := 0; t < nTrans; t++ {
		ts += 1 + int64(rng.IntN(2))
		for k := 0; k < perTrans; k++ {
			// Quadratic skew: low item indices dominate, giving the
			// RP-tree heavy shared prefixes and real conditional trees.
			idx := int(float64(nItems) * rng.Float64() * rng.Float64())
			if idx >= nItems {
				idx = nItems - 1
			}
			b.AddIDs(ts, ids[idx])
		}
	}
	return b.Build()
}

// contextTestOptions are thresholds under which clickstreamDB mines a
// large pattern space (hundreds of ms uncancelled on a typical machine).
var contextTestOptions = Options{Per: 15, MinPS: 3, MinRec: 1, CollectStats: true}

// TestMineContextCancel proves a cancelled mine returns promptly: the
// cancelled run must finish in a fraction of the uncancelled mining
// time, must have made real progress (a mid-run stop, not a pre-start
// rejection), and must surface ctx.Err() through CancelError.
func TestMineContextCancel(t *testing.T) {
	db := clickstreamDB(150, 20000, 12, 1)
	for _, tc := range []struct {
		name        string
		parallelism int
	}{
		{"sequential", 0},
		{"parallel", 4},
	} {
		t.Run(tc.name, func(t *testing.T) {
			o := contextTestOptions
			o.Parallelism = tc.parallelism

			start := time.Now()
			full, err := MineContext(context.Background(), db, o)
			if err != nil {
				t.Fatalf("uncancelled MineContext: %v", err)
			}
			fullTime := time.Since(start)
			if len(full.Patterns) < 1000 {
				t.Fatalf("test database mines only %d patterns; thresholds are miscalibrated", len(full.Patterns))
			}

			// The database scans that precede pattern growth carry no
			// cancellation points, so a too-early cancel proves nothing
			// about mid-mine behaviour; retry with later cancel points
			// until the stop demonstrably lands inside pattern growth.
			for _, frac := range []int{6, 4, 3, 2} {
				cancelAfter := fullTime / time.Duration(frac)
				ctx, cancel := context.WithTimeout(context.Background(), cancelAfter)
				start = time.Now()
				res, err := MineContext(ctx, db, o)
				cancelledTime := time.Since(start)
				cancel()

				if res != nil {
					t.Fatalf("cancelled MineContext returned a result (%d patterns), want nil", len(res.Patterns))
				}
				if !errors.Is(err, context.DeadlineExceeded) {
					t.Fatalf("cancelled MineContext error = %v, want DeadlineExceeded", err)
				}
				var cerr *CancelError
				if !errors.As(err, &cerr) {
					t.Fatalf("cancelled MineContext error %T does not unwrap to *CancelError", err)
				}
				if cerr.Stats.PatternsExamined == 0 {
					continue // cancel fell inside the scans; try later
				}
				if cerr.Stats.PatternsExamined >= full.Stats.PatternsExamined {
					t.Errorf("cancelled run examined all %d patterns; cancellation had no effect", cerr.Stats.PatternsExamined)
				}
				// Promptness: stopping at the next task boundary must beat
				// mining to completion by a clear margin. A miner that
				// ignores ctx runs the full time regardless of the cancel
				// point and trips this for the early fractions.
				if limit := fullTime*3/4 + cancelAfter; cancelledTime > limit {
					t.Errorf("cancelled at %v, run took %v of a %v full mine (limit %v); cancellation is not prompt",
						cancelAfter, cancelledTime, fullTime, limit)
				}
				return
			}
			t.Error("no cancel point landed inside pattern growth; the test database spends too long in its scans")
		})
	}
}

// TestMineContextPreCancelled pins the deterministic fast path: an
// already-cancelled context never starts mining.
func TestMineContextPreCancelled(t *testing.T) {
	db := clickstreamDB(50, 500, 5, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := MineContext(ctx, db, contextTestOptions)
	if res != nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("MineContext(cancelled ctx) = (%v, %v), want (nil, Canceled)", res, err)
	}
	var cerr *CancelError
	if !errors.As(err, &cerr) {
		t.Fatalf("error %T does not unwrap to *CancelError", err)
	}
	if cerr.Stats != (MineStats{}) {
		t.Errorf("pre-start cancellation carries non-zero stats: %+v", cerr.Stats)
	}
	if err := MineFuncContext(ctx, db, contextTestOptions, func(Pattern) bool { return true }); !errors.Is(err, context.Canceled) {
		t.Fatalf("MineFuncContext(cancelled ctx) error = %v, want Canceled", err)
	}
}

// TestMineContextBackgroundMatchesMine pins that the context plumbing is
// behaviour-neutral when the context never fires.
func TestMineContextBackgroundMatchesMine(t *testing.T) {
	db := clickstreamDB(60, 2000, 6, 3)
	o := Options{Per: 6, MinPS: 4, MinRec: 1}
	want, err := Mine(db, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MineContext(context.Background(), db, o)
	if err != nil {
		t.Fatal(err)
	}
	if !want.Equal(got) {
		t.Errorf("MineContext(Background) differs from Mine: %d vs %d patterns", len(got.Patterns), len(want.Patterns))
	}
}

// TestMineFuncContextCancel proves the streaming miner observes ctx: the
// callback cancels the context itself after a few deliveries, and mining
// must stop with a CancelError rather than delivering the full set.
func TestMineFuncContextCancel(t *testing.T) {
	db := clickstreamDB(150, 8000, 10, 4)
	o := Options{Per: 12, MinPS: 3, MinRec: 1}
	full, err := Mine(db, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Patterns) < 100 {
		t.Fatalf("test database mines only %d patterns; too few to observe a mid-stream stop", len(full.Patterns))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := 0
	err = MineFuncContext(ctx, db, o, func(Pattern) bool {
		delivered++
		if delivered == 10 {
			cancel()
		}
		return true
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("MineFuncContext error = %v, want Canceled", err)
	}
	if delivered >= len(full.Patterns) {
		t.Errorf("callback saw all %d patterns despite cancellation", delivered)
	}

	// fn returning false is an early stop, not an error.
	count := 0
	if err := MineFuncContext(context.Background(), db, o, func(Pattern) bool {
		count++
		return count < 5
	}); err != nil {
		t.Errorf("early stop via fn returned error: %v", err)
	}
}
