package core

import (
	"cmp"
	"slices"

	"github.com/recurpat/rp/internal/tsdb"
)

// RPList is the candidate item list of the RP-tree (paper Section 4.2.1):
// each distinct item with its support and estimated maximum recurrence, the
// items that survive pruning sorted in support-descending order.
type RPList struct {
	// Candidates holds the surviving items in support-descending order
	// (ties broken by ItemID for determinism). This is the item order of
	// the RP-tree, Figure 4(f).
	Candidates []RPListEntry

	// Rank maps an ItemID to its position in Candidates, or -1 when the
	// item was pruned.
	Rank []int

	totalItems int // distinct items seen before pruning
}

// RPListEntry is one row of the RP-list: item, support and Erec.
type RPListEntry struct {
	Item    tsdb.ItemID
	Support int
	Erec    int
}

// itemState is the per-item running state of Algorithm 1: support s,
// accumulated erec, timestamp of the item's last appearance (idl) and the
// periodic support of the run currently being extended (ps).
type itemState struct {
	sup  int
	erec int
	idl  int64
	ps   int
	seen bool
}

// BuildRPList performs the first database scan of RP-growth (Algorithm 1):
// it computes every item's support and estimated maximum recurrence in a
// single streaming pass, prunes items with Erec < minRec, and sorts the
// survivors in support-descending order.
//
// With o.DisableErecPruning set, only items that could never fill a single
// interesting interval (support < MinPS) are pruned.
func BuildRPList(db *tsdb.DB, o Options) *RPList {
	states := make([]itemState, db.Dict.Len())
	for _, tr := range db.Trans {
		tscur := tr.TS
		for _, item := range tr.Items {
			st := &states[item]
			if !st.seen {
				// First occurrence: initialize s, erec, idl, ps
				// (Algorithm 1 lines 3-5).
				st.seen = true
				st.sup = 1
				st.erec = 0
				st.idl = tscur
				st.ps = 1
				continue
			}
			if tscur-st.idl <= o.Per {
				// Periodic reappearance: extend the current run
				// (lines 7-8).
				st.sup++
				st.ps++
				st.idl = tscur
			} else {
				// Aperiodic gap: close the run, contribute
				// floor(ps/minPS) to erec, start a new run (lines 10-11).
				st.erec += st.ps / o.MinPS
				st.sup++
				st.ps = 1
				st.idl = tscur
			}
		}
	}

	list := &RPList{Rank: make([]int, db.Dict.Len())}
	for i := range list.Rank {
		list.Rank[i] = -1
	}
	for item := range states {
		st := &states[item]
		if !st.seen {
			continue
		}
		list.totalItems++
		// Close the final run (Algorithm 1 line 15).
		st.erec += st.ps / o.MinPS
		keep := st.erec >= o.MinRec
		if o.DisableErecPruning {
			keep = st.sup >= o.MinPS
		}
		if keep {
			list.Candidates = append(list.Candidates, RPListEntry{
				Item:    tsdb.ItemID(item),
				Support: st.sup,
				Erec:    st.erec,
			})
		}
	}
	slices.SortFunc(list.Candidates, func(a, b RPListEntry) int {
		if o.ItemOrder == SupportDescending && a.Support != b.Support {
			return b.Support - a.Support
		}
		return cmp.Compare(a.Item, b.Item)
	})
	for rank, e := range list.Candidates {
		list.Rank[e.Item] = rank
	}
	return list
}

// TotalItems reports the number of distinct items seen before pruning.
func (l *RPList) TotalItems() int { return l.totalItems }

// IsCandidate reports whether item survived pruning.
func (l *RPList) IsCandidate(item tsdb.ItemID) bool {
	return int(item) < len(l.Rank) && l.Rank[item] >= 0
}

// Project filters and reorders a transaction's items into the RP-list's
// support-descending candidate order (the "candidate item projection" CI(t)
// of Property 3). The result is appended to dst.
func (l *RPList) Project(dst []tsdb.ItemID, items []tsdb.ItemID) []tsdb.ItemID {
	start := len(dst)
	for _, it := range items {
		if l.Rank[it] >= 0 {
			dst = append(dst, it)
		}
	}
	proj := dst[start:]
	slices.SortFunc(proj, func(a, b tsdb.ItemID) int { return l.Rank[a] - l.Rank[b] })
	return dst
}
