package core

import (
	"testing"
)

func TestMineFuncMatchesMine(t *testing.T) {
	db := paperDB(t)
	o := paperOptions()
	var collected Result
	err := MineFunc(db, o, func(p Pattern) bool {
		collected.Patterns = append(collected.Patterns, p)
		return true
	})
	if err != nil {
		t.Fatal(err)
	}
	collected.Canonicalize()
	want, err := Mine(db, o)
	if err != nil {
		t.Fatal(err)
	}
	if !collected.Equal(want) {
		t.Fatalf("MineFunc collected %d patterns, Mine found %d",
			len(collected.Patterns), len(want.Patterns))
	}
}

func TestMineFuncEarlyStop(t *testing.T) {
	db := paperDB(t)
	calls := 0
	err := MineFunc(db, paperOptions(), func(Pattern) bool {
		calls++
		return calls < 3
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 {
		t.Errorf("callback ran %d times, want exactly 3 (stop after third)", calls)
	}
}

func TestMineFuncValidatesOptions(t *testing.T) {
	db := paperDB(t)
	if err := MineFunc(db, Options{}, func(Pattern) bool { return true }); err == nil {
		t.Error("invalid options must be rejected")
	}
}

func TestMineFuncEmptyCandidates(t *testing.T) {
	db := paperDB(t)
	// Impossible thresholds: no candidates, callback never fires.
	o := Options{Per: 1, MinPS: 100, MinRec: 5}
	called := false
	if err := MineFunc(db, o, func(Pattern) bool { called = true; return true }); err != nil {
		t.Fatal(err)
	}
	if called {
		t.Error("callback fired with no candidates")
	}
}
