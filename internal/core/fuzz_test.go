package core

import (
	"encoding/binary"
	"sort"
	"testing"

	"github.com/recurpat/rp/internal/tsdb"
)

// decodeTS turns fuzz bytes into a sorted duplicate-free timestamp list.
func decodeTS(data []byte) []int64 {
	var ts []int64
	for len(data) >= 2 {
		v := int64(binary.LittleEndian.Uint16(data))
		ts = append(ts, v)
		data = data[2:]
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	out := ts[:0]
	for i, v := range ts {
		if i == 0 || v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}

func FuzzMeasures(f *testing.F) {
	f.Add([]byte{1, 0, 3, 0, 4, 0, 7, 0}, int64(2), 3)
	f.Add([]byte{}, int64(1), 1)
	f.Add([]byte{255, 255, 0, 0}, int64(100), 2)
	f.Fuzz(func(t *testing.T, data []byte, per int64, minPS int) {
		if per <= 0 || per > 1<<20 {
			per = 1
		}
		if minPS <= 0 || minPS > 1<<20 {
			minPS = 1
		}
		ts := decodeTS(data)
		ivs := Intervals(ts, per)
		total := 0
		for i, iv := range ivs {
			total += iv.PS
			if iv.Start > iv.End || iv.PS <= 0 {
				t.Fatalf("malformed interval %+v", iv)
			}
			if i > 0 && iv.Start-ivs[i-1].End <= per {
				t.Fatalf("adjacent runs should have merged: %+v then %+v", ivs[i-1], iv)
			}
		}
		if total != len(ts) {
			t.Fatalf("intervals cover %d of %d timestamps", total, len(ts))
		}
		rec, ipi := Recurrence(ts, per, minPS)
		if rec != len(ipi) {
			t.Fatalf("rec %d != len(ipi) %d", rec, len(ipi))
		}
		if erec := Erec(ts, per, minPS); erec < rec {
			t.Fatalf("Erec %d < Rec %d", erec, rec)
		}
		for _, iv := range ipi {
			if iv.PS < minPS {
				t.Fatalf("interesting interval below minPS: %+v", iv)
			}
		}
	})
}

func FuzzMineAgainstVertical(f *testing.F) {
	f.Add([]byte{1, 2, 3, 0, 1, 2, 3, 4}, int64(2), 2, 1)
	f.Fuzz(func(t *testing.T, data []byte, per int64, minPS, minRec int) {
		if per <= 0 || per > 1000 {
			per = 2
		}
		if minPS <= 0 || minPS > 100 {
			minPS = 2
		}
		if minRec <= 0 || minRec > 10 {
			minRec = 1
		}
		// Interpret the bytes as a tiny database: each byte contributes
		// item (b & 7) at timestamp (index/2 + 1).
		b := newFuzzBuilder()
		for i, by := range data {
			if i > 200 {
				break
			}
			b.add(int64(i/2+1), by&7)
		}
		db := b.build()
		if db.Len() == 0 {
			return
		}
		o := Options{Per: per, MinPS: minPS, MinRec: minRec}
		a, err := Mine(db, o)
		if err != nil {
			t.Fatal(err)
		}
		v, err := MineVertical(db, o)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(v) {
			t.Fatalf("RP-growth and vertical disagree: %d vs %d patterns",
				len(a.Patterns), len(v.Patterns))
		}
	})
}

// fuzzBuilder adapts tsdb.Builder to the fuzz target's byte-driven input.
type fuzzBuilder struct {
	b *tsdb.Builder
}

func newFuzzBuilder() *fuzzBuilder {
	fb := &fuzzBuilder{b: tsdb.NewBuilder()}
	for i := 0; i < 8; i++ {
		fb.b.Dict().Intern(string(rune('a' + i)))
	}
	return fb
}

func (fb *fuzzBuilder) add(ts int64, item byte) {
	fb.b.AddIDs(ts, tsdb.ItemID(item))
}

func (fb *fuzzBuilder) build() *tsdb.DB { return fb.b.Build() }
