package core

import (
	"math/rand/v2"
	"reflect"
	"testing"

	"github.com/recurpat/rp/internal/tsdb"
)

func TestIncrementalRejectsBadInput(t *testing.T) {
	if _, err := NewIncremental(Options{}); err == nil {
		t.Error("invalid options must be rejected")
	}
	inc, err := NewIncremental(Options{Per: 2, MinPS: 2, MinRec: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := inc.Append(5, "a"); err != nil {
		t.Fatal(err)
	}
	if err := inc.Append(5, "b"); err == nil {
		t.Error("duplicate timestamp must be rejected")
	}
	if err := inc.Append(3, "b"); err == nil {
		t.Error("out-of-order timestamp must be rejected")
	}
	if err := inc.Append(9); err == nil {
		t.Error("empty transaction must be rejected")
	}
	if inc.Len() != 1 {
		t.Errorf("Len = %d, want 1", inc.Len())
	}
}

func TestIncrementalMatchesBatchRPList(t *testing.T) {
	// After every append, the incremental candidate snapshot must equal a
	// fresh Algorithm 1 scan over the same prefix.
	rng := rand.New(rand.NewPCG(31, 31))
	for run := 0; run < 10; run++ {
		o := Options{Per: rng.Int64N(5) + 1, MinPS: rng.IntN(3) + 1, MinRec: rng.IntN(2) + 1}
		inc, err := NewIncremental(o)
		if err != nil {
			t.Fatal(err)
		}
		batch := tsdb.NewBuilder()
		names := []string{"a", "b", "c", "d", "e"}
		ts := int64(0)
		for step := 0; step < 40; step++ {
			ts += rng.Int64N(4) + 1
			var items []string
			for _, n := range names {
				if rng.Float64() < 0.4 {
					items = append(items, n)
				}
			}
			if len(items) == 0 {
				items = []string{names[rng.IntN(len(names))]}
			}
			if err := inc.Append(ts, items...); err != nil {
				t.Fatal(err)
			}
			for _, n := range items {
				batch.Add(n, ts)
			}
			got := inc.Candidates()
			want := BuildRPList(batch.Build(), o).Candidates
			if !sameEntries(inc.dict, batch.Dict(), got, want) {
				t.Fatalf("run %d step %d: incremental %+v != batch %+v", run, step, got, want)
			}
		}
	}
}

// sameEntries compares candidate lists across two dictionaries by item
// name (the incremental accumulator and the batch builder intern in
// potentially different orders).
func sameEntries(da, db *tsdb.Dictionary, a, b []RPListEntry) bool {
	type row struct {
		sup, erec int
	}
	ma := map[string]row{}
	for _, e := range a {
		ma[da.Name(e.Item)] = row{e.Support, e.Erec}
	}
	mb := map[string]row{}
	for _, e := range b {
		mb[db.Name(e.Item)] = row{e.Support, e.Erec}
	}
	return reflect.DeepEqual(ma, mb)
}

func TestIncrementalMine(t *testing.T) {
	o := Options{Per: 2, MinPS: 3, MinRec: 2}
	inc, err := NewIncremental(o)
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		ts    int64
		items []string
	}{
		{1, []string{"a", "b", "g"}}, {2, []string{"a", "c", "d"}},
		{3, []string{"a", "b", "e", "f"}}, {4, []string{"a", "b", "c", "d"}},
		{5, []string{"c", "d", "e", "f", "g"}}, {6, []string{"e", "f", "g"}},
		{7, []string{"a", "b", "c", "g"}}, {9, []string{"c", "d"}},
		{10, []string{"c", "d", "e", "f"}}, {11, []string{"a", "b", "e", "f"}},
		{12, []string{"a", "b", "c", "d", "e", "f", "g"}}, {14, []string{"a", "b", "g"}},
	}
	for _, r := range rows {
		if err := inc.Append(r.ts, r.items...); err != nil {
			t.Fatal(err)
		}
	}
	res, err := inc.Mine()
	if err != nil {
		t.Fatal(err)
	}
	// The stream is the paper's running example: Table 2 has 8 patterns.
	if len(res.Patterns) != 8 {
		t.Fatalf("got %d patterns, want 8", len(res.Patterns))
	}
	// And the snapshot candidates must match Figure 4(f): a b c d e f.
	cands := inc.Candidates()
	if len(cands) != 6 {
		t.Fatalf("got %d candidates, want 6: %+v", len(cands), cands)
	}
	if inc.dict.Name(cands[0].Item) != "a" || cands[0].Support != 8 || cands[0].Erec != 2 {
		t.Errorf("first candidate = %+v, want a(8,2)", cands[0])
	}
}
