// Package core implements the recurring pattern model and the RP-growth
// algorithm of Kiran, Shang, Toyoda and Kitsuregawa, "Discovering Recurring
// Patterns in Time Series" (EDBT 2015).
//
// The package is organized in three layers:
//
//   - the measure layer (this file): periodic intervals, periodic supports,
//     recurrence and the Erec pruning bound, all computed from plain sorted
//     timestamp lists (paper Definitions 4-9 and the pruning technique of
//     Section 4.1);
//   - the RP-growth miner: RP-list (Algorithm 1), RP-tree (Algorithms 2-3)
//     and pattern-growth mining (Algorithms 4-5);
//   - alternative miners used for validation and ablation: a vertical
//     (ts-list intersection) miner and a brute-force oracle.
//
// All miners produce identical, canonically ordered results.
package core

// Interval is a periodic interval of a pattern (paper Definition 5): the
// timestamp range [Start, End] of a maximal run of occurrences whose
// consecutive inter-arrival times are all within the period, together with
// the run's periodic support PS (Definition 6), the number of occurrences in
// the run.
type Interval struct {
	Start, End int64
	PS         int
}

// Intervals partitions a sorted timestamp list into its periodic intervals:
// maximal runs where every consecutive gap is at most per. Every timestamp
// belongs to exactly one run; a timestamp whose neighbors are both farther
// than per away forms a singleton run with PS = 1.
//
// The input must be sorted ascending and duplicate-free; per must be
// positive. An empty input yields nil.
func Intervals(ts []int64, per int64) []Interval {
	if len(ts) == 0 {
		return nil
	}
	var out []Interval
	start := ts[0]
	ps := 1
	for i := 1; i < len(ts); i++ {
		if ts[i]-ts[i-1] <= per {
			ps++
			continue
		}
		out = append(out, Interval{Start: start, End: ts[i-1], PS: ps})
		start = ts[i]
		ps = 1
	}
	return append(out, Interval{Start: start, End: ts[len(ts)-1], PS: ps})
}

// Recurrence computes Rec(X) (Definition 8) and the interesting periodic
// intervals IPI^X (Definition 7) of a pattern from its sorted timestamp
// list: the periodic intervals whose periodic support reaches minPS.
//
// This is the paper's getRecurrence procedure (Algorithm 5), fused with
// interval collection in a single pass.
func Recurrence(ts []int64, per int64, minPS int) (rec int, ipi []Interval) {
	if len(ts) == 0 {
		return 0, nil
	}
	start := ts[0]
	ps := 1
	flush := func(end int64) {
		if ps >= minPS {
			ipi = append(ipi, Interval{Start: start, End: end, PS: ps})
			rec++
		}
	}
	for i := 1; i < len(ts); i++ {
		if ts[i]-ts[i-1] <= per {
			ps++
			continue
		}
		flush(ts[i-1])
		start = ts[i]
		ps = 1
	}
	flush(ts[len(ts)-1])
	return rec, ipi
}

// Erec computes the estimated maximum recurrence bound of Section 4.1:
//
//	Erec(X) = sum over periodic intervals of floor(ps_i / minPS)
//
// For any pattern Y that is a superset of X, Rec(Y) <= Erec(Y) <= Erec(X)
// (paper Properties 1 and 2), so if Erec(X) < minRec neither X nor any of
// its supersets can be recurring. The input must be sorted ascending; minPS
// must be positive.
func Erec(ts []int64, per int64, minPS int) int {
	if len(ts) == 0 {
		return 0
	}
	erec := 0
	ps := 1
	for i := 1; i < len(ts); i++ {
		if ts[i]-ts[i-1] <= per {
			ps++
			continue
		}
		erec += ps / minPS
		ps = 1
	}
	return erec + ps/minPS
}

// MaxPeriodicity returns the largest inter-arrival time of a sorted
// timestamp list, additionally counting the lead-in gap from spanFirst to
// the first occurrence and the lead-out gap from the last occurrence to
// spanLast. This is the periodicity measure of the periodic-frequent pattern
// model (Tanbeer et al., PAKDD 2009) that the paper compares against in
// Table 8; it lives here so the baseline and the tests share one definition.
func MaxPeriodicity(ts []int64, spanFirst, spanLast int64) int64 {
	if len(ts) == 0 {
		return spanLast - spanFirst
	}
	max := ts[0] - spanFirst
	for i := 1; i < len(ts); i++ {
		if d := ts[i] - ts[i-1]; d > max {
			max = d
		}
	}
	if d := spanLast - ts[len(ts)-1]; d > max {
		max = d
	}
	return max
}

// PeriodicAppearances counts the inter-arrival times of a sorted timestamp
// list that are at most per (paper Definition 4). This is the "number of
// cyclic repetitions throughout the data" that the p-pattern model of Ma and
// Hellerstein thresholds with minSup; shared with the ppattern baseline.
func PeriodicAppearances(ts []int64, per int64) int {
	n := 0
	for i := 1; i < len(ts); i++ {
		if ts[i]-ts[i-1] <= per {
			n++
		}
	}
	return n
}

// IntersectTS intersects two sorted timestamp lists, appending the result to
// dst (which may be nil). Used by the vertical miner and the baselines.
func IntersectTS(dst, a, b []int64) []int64 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			dst = append(dst, a[i])
			i++
			j++
		}
	}
	return dst
}
