package core

import (
	"fmt"

	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// Options carries the three user-defined thresholds of the recurring pattern
// model (paper Definition 10) plus execution knobs.
type Options struct {
	// Per is the period threshold: an inter-arrival time is periodic iff it
	// is at most Per (Definition 4). Must be positive.
	Per int64

	// MinPS is the minimum periodic support: a periodic interval is
	// interesting iff its periodic support reaches MinPS (Definition 7).
	// Must be positive.
	MinPS int

	// MinRec is the minimum recurrence: a pattern is recurring iff it has at
	// least MinRec interesting periodic intervals (Definition 9). Must be
	// positive.
	MinRec int

	// MaxLen, when positive, limits mining to patterns of at most MaxLen
	// items. Zero means unlimited.
	MaxLen int

	// Parallelism, when greater than one, mines that many suffix-item
	// subtrees concurrently. Zero or one selects the paper's sequential
	// algorithm. Results are identical either way.
	Parallelism int

	// CollectStats, when set, fills the Stats field of the mining Result
	// with search-space counters (used by the ablation benchmarks).
	CollectStats bool

	// DisableErecPruning turns off the Erec candidate bound so that the
	// miners fall back to support-only pruning (a pattern is only skipped
	// when its timestamp list is empty or shorter than MinPS). Exists solely
	// for the pruning ablation; output is unchanged.
	DisableErecPruning bool

	// ItemOrder selects the RP-tree item ordering. The paper's
	// support-descending order (the default) maximizes prefix sharing;
	// lexicographic order exists for the tree-compactness ablation. Output
	// is identical either way.
	ItemOrder ItemOrder

	// Trace, when non-nil, receives per-phase wall time and work counts
	// for the run: the initial scan, tree construction, per-item subtree
	// mining, ts-list merges and Erec prunes. Observations are batched
	// per worker and flushed at subtree-task granularity, so tracing adds
	// no synchronization to the per-node hot loops; a nil Trace costs a
	// pointer check. Output is identical either way.
	Trace *obs.Trace
}

// ItemOrder enumerates RP-tree item orderings.
type ItemOrder int

const (
	// SupportDescending arranges items most-frequent-first (paper Section
	// 4.2.1, "to facilitate a high degree of compactness").
	SupportDescending ItemOrder = iota
	// Lexicographic arranges items by their ItemID.
	Lexicographic
)

// Validate reports the first violated constraint.
func (o Options) Validate() error {
	if o.Per <= 0 {
		return fmt.Errorf("core: Per must be positive, got %d", o.Per)
	}
	if o.MinPS <= 0 {
		return fmt.Errorf("core: MinPS must be positive, got %d", o.MinPS)
	}
	if o.MinRec <= 0 {
		return fmt.Errorf("core: MinRec must be positive, got %d", o.MinRec)
	}
	if o.MaxLen < 0 {
		return fmt.Errorf("core: MaxLen must be non-negative, got %d", o.MaxLen)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("core: Parallelism must be non-negative, got %d", o.Parallelism)
	}
	return nil
}

// MinPSFromPercent converts a percentage of |TDB| into an absolute minimum
// periodic support, matching how the paper states minPS for its datasets
// (e.g. 0.1% of T10I4D100K = 100). The result is at least 1.
func MinPSFromPercent(db *tsdb.DB, percent float64) int {
	return MinPSForLen(db.Len(), percent)
}

// MinPSForLen is MinPSFromPercent against a database size rather than a
// database, for callers (the wire-API converters) that resolve thresholds
// without holding the DB.
func MinPSForLen(n int, percent float64) int {
	ps := int(percent / 100 * float64(n))
	if ps < 1 {
		ps = 1
	}
	return ps
}

// candidateErec returns the Erec bound for a timestamp list under o,
// honouring the pruning ablation switch: with pruning disabled, the bound
// degenerates to "might recur if there are at least MinPS occurrences",
// which only discards patterns that could never form a single interesting
// interval.
func (o Options) candidateErec(ts []int64) int {
	if o.DisableErecPruning {
		if len(ts) >= o.MinPS {
			return o.MinRec // always passes the candidate check
		}
		return 0
	}
	return Erec(ts, o.Per, o.MinPS)
}
