package core

import (
	"slices"

	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// nilNode is the null value of a node index: the slab equivalent of a nil
// pointer for parent, child, sibling and header links.
const nilNode int32 = -1

// rpNode is a node of the RP-tree prefix tree (paper Section 4.2.1), laid
// out for slab allocation: nodes live in a nodeArena's []rpNode slice and
// reference each other by int32 index, and the children of a node form a
// first-child/next-sibling list sorted by tree rank. Unlike an FP-tree node
// it carries no support count; instead, tail nodes (the last node of each
// inserted candidate projection) carry the ts-list of the transactions that
// end there. During bottom-up mining, ts-lists are pushed up to parents
// (Lemma 3), so interior nodes accumulate timestamps too.
//
// A node's ts-list is a concatenation of sorted runs: boundaries of all runs
// but the implicit last one are recorded in runs, and appendRun starts a new
// run only when an append actually breaks the sorted order. Tail appends
// during the database scan arrive in timestamp order, so initial trees hold
// a single run per tail node; push-ups and conditional-tree inserts add runs
// that collectTS later k-way merges instead of re-sorting.
type rpNode struct {
	item        tsdb.ItemID
	rank        int32 // position of item in the owning tree's order
	parent      int32
	firstChild  int32
	nextSibling int32
	link        int32   // next node carrying the same item (header chain)
	ts          []int64 // concatenated sorted runs of timestamps
	runs        []int32 // end offsets of all runs except the last
}

// appendRun appends one sorted run to the node's ts-list, recording a run
// boundary only when the append breaks the existing sorted order (ascending
// appends coalesce into the current run).
func (n *rpNode) appendRun(vals []int64) {
	if len(vals) == 0 {
		return
	}
	if len(n.ts) > 0 && vals[0] < n.ts[len(n.ts)-1] {
		n.runs = append(n.runs, int32(len(n.ts)))
	}
	n.ts = append(n.ts, vals...)
}

// appendRunList appends every run of a run-tracked ts-list.
func (n *rpNode) appendRunList(ts []int64, runs []int32) {
	prev := int32(0)
	for _, end := range runs {
		n.appendRun(ts[prev:end])
		prev = end
	}
	n.appendRun(ts[prev:])
}

// nodeArena is a slab of RP-tree nodes. Conditional trees are carved from a
// per-miner arena stack-wise: mark() before building a conditional tree,
// reset(mark) once its recursion returns, so the slab's capacity is reused
// across the entire mining run instead of being reallocated per tree.
type nodeArena struct {
	nodes []rpNode
}

// newNode appends a fresh node and returns its index. Growing the slab may
// move it, so callers must not hold *rpNode pointers across newNode calls.
//
// When the slab re-expands over a region truncated by reset, the slot's old
// ts/runs capacity is salvaged (truncated, not dropped): conditional trees
// are rebuilt in the same slab region over and over during mining, and
// reusing the per-slot list storage removes almost all of their append
// allocations. A ts backing belongs to exactly one slot at a time and every
// insert copies timestamp values, so a salvaged buffer can never alias a
// live list.
func (a *nodeArena) newNode(item tsdb.ItemID, rank, parent int32) int32 {
	idx := len(a.nodes)
	if idx < cap(a.nodes) {
		a.nodes = a.nodes[:idx+1]
		n := &a.nodes[idx]
		n.item, n.rank, n.parent = item, rank, parent
		n.firstChild, n.nextSibling, n.link = nilNode, nilNode, nilNode
		n.ts, n.runs = n.ts[:0], n.runs[:0]
		return int32(idx)
	}
	a.nodes = append(a.nodes, rpNode{
		item:        item,
		rank:        rank,
		parent:      parent,
		firstChild:  nilNode,
		nextSibling: nilNode,
		link:        nilNode,
	})
	return int32(idx)
}

// node returns the node at index i. The pointer is invalidated by newNode.
func (a *nodeArena) node(i int32) *rpNode { return &a.nodes[i] }

// mark returns the current slab position for a later reset.
func (a *nodeArena) mark() int { return len(a.nodes) }

// reset truncates the slab back to a mark, reclaiming every node created
// since without freeing the slab's backing array.
func (a *nodeArena) reset(mark int) { a.nodes = a.nodes[:mark] }

// rpTree is a prefix tree plus the per-item header chains. The item order is
// support-descending within the tree's own database (the full TDB for the
// initial tree, the conditional pattern base for conditional trees). All
// nodes, including the root, live in the referenced arena.
type rpTree struct {
	arena      *rpArena
	root       int32
	order      []tsdb.ItemID // tree item order, most frequent first
	headers    []int32       // first node per rank, nilNode when empty
	rootByRank []int32       // root's child per rank (O(1) insert lookup)
	nodes      int           // nodes created (stats)
}

// rpArena aliases nodeArena so rpTree reads naturally; kept distinct from
// the merge scratch, which is per-miner, not per-tree.
type rpArena = nodeArena

// newRPTree prepares an empty tree over the given item order, carving its
// root from a.
func newRPTree(a *nodeArena, order []tsdb.ItemID) *rpTree {
	t := &rpTree{
		arena:      a,
		order:      order,
		headers:    make([]int32, len(order)),
		rootByRank: make([]int32, len(order)),
	}
	for i := range t.headers {
		t.headers[i] = nilNode
		t.rootByRank[i] = nilNode
	}
	t.root = a.newNode(0, -1, nilNode)
	return t
}

// insertRanks adds one candidate projection, given as its strictly
// increasing sequence of tree ranks, recording the run-tracked ts-list
// (ts, runs) at the tail node (Algorithm 3, insert_tree). Timestamp values
// are copied, never aliased.
func (t *rpTree) insertRanks(ranks []int32, ts []int64, runs []int32) {
	a := t.arena
	cur := t.root
	for _, rk := range ranks {
		child := nilNode
		if cur == t.root {
			child = t.rootByRank[rk]
		} else {
			for c := a.nodes[cur].firstChild; c != nilNode; c = a.nodes[c].nextSibling {
				if a.nodes[c].rank == rk {
					child = c
					break
				}
				if a.nodes[c].rank > rk {
					break
				}
			}
		}
		if child == nilNode {
			child = a.newNode(t.order[rk], rk, cur)
			t.linkChild(cur, child, rk)
			a.nodes[child].link = t.headers[rk]
			t.headers[rk] = child
			t.nodes++
		}
		cur = child
	}
	if cur != t.root {
		a.nodes[cur].appendRunList(ts, runs)
	}
}

// linkChild splices child into parent's rank-sorted sibling list and, for
// root children, the dense rootByRank index.
func (t *rpTree) linkChild(parent, child int32, rk int32) {
	a := t.arena
	if parent == t.root {
		t.rootByRank[rk] = child
	}
	prev := nilNode
	c := a.nodes[parent].firstChild
	for c != nilNode && a.nodes[c].rank < rk {
		prev = c
		c = a.nodes[c].nextSibling
	}
	a.nodes[child].nextSibling = c
	if prev == nilNode {
		a.nodes[parent].firstChild = child
	} else {
		a.nodes[prev].nextSibling = child
	}
}

// buildRPTree performs the second database scan of RP-growth (Algorithm 2):
// every transaction's candidate item projection is inserted into the prefix
// tree with the transaction's timestamp recorded at the tail node. The tree
// owns a fresh arena; transactions arrive in timestamp order, so every tail
// node's ts-list is a single sorted run.
func buildRPTree(db *tsdb.DB, list *RPList) *rpTree {
	order := make([]tsdb.ItemID, len(list.Candidates))
	for i, e := range list.Candidates {
		order[i] = e.Item
	}
	t := newRPTree(&nodeArena{}, order)
	var ranks []int32
	var tsOne [1]int64
	for _, tr := range db.Trans {
		ranks = ranks[:0]
		for _, it := range tr.Items {
			if r := list.Rank[it]; r >= 0 {
				ranks = append(ranks, int32(r))
			}
		}
		if len(ranks) == 0 {
			continue
		}
		slices.Sort(ranks)
		tsOne[0] = tr.TS
		t.insertRanks(ranks, tsOne[:], nil)
	}
	return t
}

// collectTS merges the ts-lists of every node carrying the item at rank r
// into a sorted timestamp list appended to dst. During sequential mining
// this is TS^beta for the suffix pattern being processed, because deeper
// items have already pushed their ts-lists up (Lemma 3).
func (t *rpTree) collectTS(ms *mergeScratch, r int, dst []int64) []int64 {
	a := t.arena
	runs := ms.runs[:0]
	for n := t.headers[r]; n != nilNode; n = a.nodes[n].link {
		runs = appendRunViews(runs, a.nodes[n].ts, a.nodes[n].runs)
	}
	ms.runs = runs
	return ms.merge(dst)
}

// collectSubtreeTS merges the ts-lists of the node at index n and all its
// descendants into a sorted list appended to dst. Used by the parallel
// miner, which reads a shared immutable tree and so cannot rely on push-ups
// having happened. Sibling links make the walk deterministic.
func (t *rpTree) collectSubtreeTS(ms *mergeScratch, n int32, dst []int64) []int64 {
	ms.runs = t.appendSubtreeRuns(ms.runs[:0], n)
	return ms.merge(dst)
}

// appendSubtreeRuns gathers the run views of n's subtree in first-child/
// next-sibling order.
func (t *rpTree) appendSubtreeRuns(dst []run, n int32) []run {
	a := t.arena
	dst = appendRunViews(dst, a.nodes[n].ts, a.nodes[n].runs)
	for c := a.nodes[n].firstChild; c != nilNode; c = a.nodes[c].nextSibling {
		dst = t.appendSubtreeRuns(dst, c)
	}
	return dst
}

// pushUp implements Lemma 3 and line 9 of Algorithm 4: every node carrying
// the item at rank r hands its ts-list runs to its parent. Timestamps pushed
// to the root (projections that contained only this item) are discarded; the
// transactions they identify contain no other candidate item. The nodes stay
// linked in the slab — bottom-up mining never revisits rank r, and only the
// parallel miner walks child links, on a tree that is never pushed up.
func (t *rpTree) pushUp(r int) {
	a := t.arena
	for ni := t.headers[r]; ni != nilNode; {
		n := &a.nodes[ni]
		ni = n.link
		if n.parent != t.root {
			a.nodes[n.parent].appendRunList(n.ts, n.runs)
		}
		n.ts, n.runs = n.ts[:0], n.runs[:0] // keep capacity for slot salvage
	}
	t.headers[r] = nilNode
}

// basePath is one prefix path of the suffix item, restricted to candidate
// ancestors: the tree ranks of the ancestors (root-most first, ascending,
// stored as [rankLo:rankHi) of the scratch's shared rankBuf backing) and the
// path's run-tracked timestamp list.
type basePath struct {
	rankLo, rankHi int32
	ts             []int64
	runs           []int32
}

// condKeep is one prefix item surviving the conditional Erec check, with its
// conditional support and its rank in the enclosing tree.
type condKeep struct {
	item  tsdb.ItemID
	sup   int
	trank int32
}

// growN resizes *s to n elements (growing the backing as needed, contents
// unspecified) and returns the resized slice.
func growN[T any](s *[]T, n int) []T {
	v := slices.Grow((*s)[:0], n)[:n]
	*s = v
	return v
}

// releaseBase returns subtree-mode collect buffers to the free list; the
// sequential miner's base paths alias tree node lists and are left alone.
func (ms *mergeScratch) releaseBase(subtree bool) {
	if !subtree {
		return
	}
	for i := range ms.base {
		ms.putBuf(ms.base[i].ts)
	}
}

// conditionalTree builds the conditional RP-tree for the item at rank r
// (Algorithm 4 line 4): the prefix paths of the item's nodes, restricted to
// items whose conditional Erec passes the candidate check (computed from
// the per-item merged ts-lists — the "temporary array" of Section 4.2.3),
// re-sorted by conditional support. nil is returned when no item survives.
//
// The new tree is carved from dst (the caller's arena), so the shared
// initial tree is never mutated — the parallel miner's workers all read t
// concurrently while building their own conditional trees.
//
// subtree selects how a node's timestamp list is read: the sequential miner
// reads the node's runs directly (push-ups have accumulated descendant
// timestamps), while the parallel miner merges each node's subtree.
func (t *rpTree) conditionalTree(dst *nodeArena, ms *mergeScratch, o Options, r int, subtree bool) *rpTree {
	a := t.arena

	// First pass: one base path per node carrying rank r — its candidate
	// ancestors (tree ranks, root-most first, in the shared rankBuf
	// backing) and its ts-list. All of it lives in pooled per-miner
	// scratch; the only allocations left in this function are the pieces
	// the returned tree retains.
	base, rankBuf := ms.base[:0], ms.rankBuf[:0]
	for ni := t.headers[r]; ni != nilNode; ni = a.nodes[ni].link {
		n := a.nodes[ni]
		ts, runs := n.ts, n.runs
		if subtree {
			ts = t.collectSubtreeTS(ms, ni, ms.getBuf())
			runs = nil
		}
		if len(ts) == 0 || n.parent == t.root {
			if subtree {
				ms.putBuf(ts)
			}
			continue
		}
		lo := int32(len(rankBuf))
		for p := n.parent; p != t.root; p = a.nodes[p].parent {
			rankBuf = append(rankBuf, a.nodes[p].rank)
		}
		slices.Reverse(rankBuf[lo:]) // root-most first
		base = append(base, basePath{rankLo: lo, rankHi: int32(len(rankBuf)), ts: ts, runs: runs})
	}
	ms.base, ms.rankBuf = base, rankBuf
	if len(base) == 0 {
		ms.releaseBase(subtree)
		return nil
	}

	// CSR index over the base: for each prefix rank pr < r, the conditional
	// support (total timestamps) and which base paths contain pr. Rank
	// indexing keeps the pass deterministic with no map in the hot path.
	sup := growN(&ms.sup, r)
	cur := growN(&ms.cur, r+1)
	clear(sup)
	clear(cur)
	for bi := range base {
		bp := &base[bi]
		for _, pr := range rankBuf[bp.rankLo:bp.rankHi] {
			cur[pr+1]++
			sup[pr] += len(bp.ts)
		}
	}
	for pr := 0; pr < r; pr++ {
		cur[pr+1] += cur[pr]
	}
	pathIdx := growN(&ms.pathIdx, len(rankBuf))
	for bi := range base {
		bp := &base[bi]
		for _, pr := range rankBuf[bp.rankLo:bp.rankHi] {
			pathIdx[cur[pr]] = int32(bi)
			cur[pr]++
		}
	}
	// After the fill, cur[pr] is the end offset of rank pr's path list and
	// cur[pr-1] its start.

	// Keep items whose conditional Erec passes the candidate check
	// (Properties 1-2 make this safe), order them by conditional support.
	keep := ms.keep[:0]
	merged := ms.getBuf()
	start := 0
	for pr := 0; pr < r; pr++ {
		lo, hi := start, cur[pr]
		start = hi
		if lo == hi {
			continue
		}
		runs := ms.runs[:0]
		for _, bi := range pathIdx[lo:hi] {
			bp := &base[bi]
			runs = appendRunViews(runs, bp.ts, bp.runs)
		}
		ms.runs = runs
		merged = ms.merge(merged[:0])
		if o.candidateErec(merged) >= o.MinRec {
			keep = append(keep, condKeep{item: t.order[pr], sup: sup[pr], trank: int32(pr)})
		} else if ms.lc != nil {
			ms.lc.Observe(obs.PhasePrune, 0, 1)
		}
	}
	ms.putBuf(merged)
	ms.keep = keep
	if len(keep) == 0 {
		ms.releaseBase(subtree)
		return nil
	}
	slices.SortFunc(keep, func(x, y condKeep) int {
		if o.ItemOrder == SupportDescending && x.sup != y.sup {
			return y.sup - x.sup
		}
		if x.item != y.item {
			if x.item < y.item {
				return -1
			}
			return 1
		}
		return 0
	})
	order := make([]tsdb.ItemID, len(keep))
	condRank := growN(&ms.condRank, r) // tree rank -> conditional rank
	for i := range condRank {
		condRank[i] = nilNode
	}
	for i, k := range keep {
		order[i] = k.item
		condRank[k.trank] = int32(i)
	}

	// Second pass: insert the filtered, re-ranked prefix paths.
	ct := newRPTree(dst, order)
	path := ms.path[:0]
	for bi := range base {
		bp := &base[bi]
		path = path[:0]
		for _, tr := range rankBuf[bp.rankLo:bp.rankHi] {
			if cr := condRank[tr]; cr != nilNode {
				path = append(path, cr)
			}
		}
		if len(path) == 0 {
			continue
		}
		slices.Sort(path)
		ct.insertRanks(path, bp.ts, bp.runs)
	}
	ms.path = path
	ms.releaseBase(subtree)
	return ct
}
