package core

import (
	"sort"

	"github.com/recurpat/rp/internal/tsdb"
)

// rpNode is a node of the RP-tree prefix tree (paper Section 4.2.1). Unlike
// an FP-tree node it carries no support count; instead, tail nodes (the last
// node of each inserted candidate projection) carry the ts-list of the
// transactions that end there. During bottom-up mining, ts-lists are pushed
// up to parents (Lemma 3), so interior nodes accumulate timestamps too.
type rpNode struct {
	item     tsdb.ItemID
	parent   *rpNode
	children map[tsdb.ItemID]*rpNode
	link     *rpNode // next node carrying the same item (node-traversal pointer)
	ts       []int64 // tail-node timestamp list; possibly unsorted after push-ups
}

// rpTree is a prefix tree plus the per-item header chains. The item order is
// support-descending within the tree's own database (the full TDB for the
// initial tree, the conditional pattern base for conditional trees).
type rpTree struct {
	root    *rpNode
	order   []tsdb.ItemID       // tree item order, most frequent first
	rank    map[tsdb.ItemID]int // item -> position in order
	headers []*rpNode           // first node per rank
	nodes   int                 // nodes created (stats)
}

func newRPTree(order []tsdb.ItemID) *rpTree {
	t := &rpTree{
		root:    &rpNode{children: make(map[tsdb.ItemID]*rpNode)},
		order:   order,
		rank:    make(map[tsdb.ItemID]int, len(order)),
		headers: make([]*rpNode, len(order)),
	}
	for i, it := range order {
		t.rank[it] = i
	}
	return t
}

// insert adds one sorted candidate projection with the timestamps ts ending
// at its tail node (Algorithm 3, insert_tree). The path must already be
// ordered by the tree's rank. ts is appended, not aliased.
func (t *rpTree) insert(path []tsdb.ItemID, ts ...int64) {
	cur := t.root
	for _, item := range path {
		child, ok := cur.children[item]
		if !ok {
			child = &rpNode{
				item:     item,
				parent:   cur,
				children: make(map[tsdb.ItemID]*rpNode),
			}
			cur.children[item] = child
			r := t.rank[item]
			child.link = t.headers[r]
			t.headers[r] = child
			t.nodes++
		}
		cur = child
	}
	if cur != t.root {
		cur.ts = append(cur.ts, ts...)
	}
}

// BuildRPTree performs the second database scan of RP-growth (Algorithm 2):
// every transaction's candidate item projection is inserted into the prefix
// tree with the transaction's timestamp recorded at the tail node.
func buildRPTree(db *tsdb.DB, list *RPList) *rpTree {
	order := make([]tsdb.ItemID, len(list.Candidates))
	for i, e := range list.Candidates {
		order[i] = e.Item
	}
	t := newRPTree(order)
	var proj []tsdb.ItemID
	for _, tr := range db.Trans {
		proj = list.Project(proj[:0], tr.Items)
		if len(proj) == 0 {
			continue
		}
		t.insert(proj, tr.TS)
	}
	return t
}

// collectTS merges the ts-lists of every node carrying the item at rank r
// into a sorted timestamp list. During sequential mining this is TS^beta for
// the suffix pattern being processed, because deeper items have already
// pushed their ts-lists up (Lemma 3).
func (t *rpTree) collectTS(r int, dst []int64) []int64 {
	for n := t.headers[r]; n != nil; n = n.link {
		dst = append(dst, n.ts...)
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst
}

// collectSubtreeTS merges the ts-lists of n and all its descendants, sorted.
// Used by the parallel miner, which reads a shared immutable tree and so
// cannot rely on push-ups having happened.
func collectSubtreeTS(n *rpNode, dst []int64) []int64 {
	dst = appendSubtreeTS(n, dst)
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst
}

func appendSubtreeTS(n *rpNode, dst []int64) []int64 {
	dst = append(dst, n.ts...)
	// Child order is irrelevant here: every caller sorts the merged list
	// (collectSubtreeTS, mineParallel) before it can influence results.
	for _, c := range n.children { //rpvet:allow determinism
		dst = appendSubtreeTS(c, dst)
	}
	return dst
}

// pushUp implements Lemma 3 and line 9 of Algorithm 4: every node carrying
// the item at rank r hands its ts-list to its parent and is removed from the
// tree. Timestamps pushed to the root (projections that contained only this
// item) are discarded; the transactions they identify contain no other
// candidate item.
func (t *rpTree) pushUp(r int) {
	for n := t.headers[r]; n != nil; n = n.link {
		if n.parent != t.root {
			n.parent.ts = append(n.parent.ts, n.ts...)
		}
		delete(n.parent.children, n.item)
		n.parent = nil
		n.ts = nil
	}
	t.headers[r] = nil
}

// conditionalTree builds the conditional RP-tree for the item at rank r
// (Algorithm 4 line 4): the prefix paths of the item's nodes, restricted to
// items whose conditional Erec passes the candidate check (computed from
// the per-item merged ts-lists — the "temporary array" of Section 4.2.3),
// re-sorted by conditional support. nil is returned when no item survives.
//
// subtree selects how a node's timestamp list is read: the sequential miner
// reads n.ts directly (push-ups have accumulated descendant timestamps),
// while the parallel miner merges each node's subtree.
func (t *rpTree) conditionalTree(r int, o Options, subtree bool) *rpTree {
	// First pass: conditional timestamp list per prefix item.
	condTS := make(map[tsdb.ItemID][]int64)
	type basePath struct {
		ts    []int64
		items []tsdb.ItemID // ancestors, root-most first
	}
	var base []basePath
	for n := t.headers[r]; n != nil; n = n.link {
		var ts []int64
		if subtree {
			ts = collectSubtreeTS(n, nil)
		} else {
			ts = n.ts
		}
		if len(ts) == 0 || n.parent == t.root {
			continue
		}
		var items []tsdb.ItemID
		for p := n.parent; p != t.root; p = p.parent {
			items = append(items, p.item)
			condTS[p.item] = append(condTS[p.item], ts...)
		}
		// Reverse into root-most-first order.
		for i, j := 0, len(items)-1; i < j; i, j = i+1, j-1 {
			items[i], items[j] = items[j], items[i]
		}
		base = append(base, basePath{ts: ts, items: items})
	}
	if len(condTS) == 0 {
		return nil
	}

	// Keep items whose conditional Erec passes the candidate check
	// (Properties 1-2 make this safe), order them by conditional support.
	type kept struct {
		item tsdb.ItemID
		sup  int
	}
	var keep []kept
	for item, ts := range condTS {
		sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
		condTS[item] = ts
		if o.candidateErec(ts) >= o.MinRec {
			keep = append(keep, kept{item: item, sup: len(ts)})
		}
	}
	if len(keep) == 0 {
		return nil
	}
	sort.Slice(keep, func(i, j int) bool {
		if o.ItemOrder == SupportDescending && keep[i].sup != keep[j].sup {
			return keep[i].sup > keep[j].sup
		}
		return keep[i].item < keep[j].item
	})
	order := make([]tsdb.ItemID, len(keep))
	for i, k := range keep {
		order[i] = k.item
	}

	// Second pass: insert the filtered, re-sorted prefix paths.
	cond := newRPTree(order)
	var path []tsdb.ItemID
	for _, bp := range base {
		path = path[:0]
		for _, it := range bp.items {
			if _, ok := cond.rank[it]; ok {
				path = append(path, it)
			}
		}
		if len(path) == 0 {
			continue
		}
		sort.Slice(path, func(i, j int) bool { return cond.rank[path[i]] < cond.rank[path[j]] })
		cond.insert(path, bp.ts...)
	}
	return cond
}
