package core

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"

	"github.com/recurpat/rp/internal/tsdb"
)

// randomTS builds a sorted duplicate-free timestamp list from fuzz input.
func randomTS(rng *rand.Rand, maxLen int, maxTS int64) []int64 {
	n := rng.IntN(maxLen + 1)
	seen := make(map[int64]struct{}, n)
	var ts []int64
	for len(ts) < n {
		v := rng.Int64N(maxTS) + 1
		if _, ok := seen[v]; ok {
			continue
		}
		seen[v] = struct{}{}
		ts = append(ts, v)
	}
	sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
	return ts
}

// randomDB builds a small random database: nItems items, nTS candidate
// timestamps, each item present at each timestamp with probability density.
func randomDB(rng *rand.Rand, nItems, nTS int, density float64) *tsdb.DB {
	b := tsdb.NewBuilder()
	names := make([]string, nItems)
	for i := range names {
		names[i] = string(rune('a' + i))
		b.Dict().Intern(names[i])
	}
	for ts := int64(1); ts <= int64(nTS); ts++ {
		for _, name := range names {
			if rng.Float64() < density {
				b.Add(name, ts)
			}
		}
	}
	return b.Build()
}

func TestIntervalPartitionProperties(t *testing.T) {
	f := func(seed uint64) bool {
		local := rand.New(rand.NewPCG(seed, 42))
		ts := randomTS(local, 60, 200)
		per := local.Int64N(20) + 1
		ivs := Intervals(ts, per)

		// Intervals cover exactly the timestamps, in order.
		total := 0
		for i, iv := range ivs {
			if iv.PS <= 0 || iv.Start > iv.End {
				return false
			}
			total += iv.PS
			if i > 0 {
				// Runs are separated by gaps strictly greater than per.
				if iv.Start-ivs[i-1].End <= per {
					return false
				}
			}
		}
		if total != len(ts) {
			return false
		}
		// Within a run every consecutive gap is <= per: verify against the
		// raw list.
		k := 0
		for _, iv := range ivs {
			run := ts[k : k+iv.PS]
			if run[0] != iv.Start || run[len(run)-1] != iv.End {
				return false
			}
			for i := 1; i < len(run); i++ {
				if run[i]-run[i-1] > per {
					return false
				}
			}
			k += iv.PS
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestErecUpperBoundsRecurrence(t *testing.T) {
	// Property 1: Erec(X) >= Rec(X) for every threshold combination.
	f := func(seed uint64) bool {
		local := rand.New(rand.NewPCG(seed, 7))
		ts := randomTS(local, 80, 300)
		per := local.Int64N(25) + 1
		minPS := local.IntN(6) + 1
		rec, _ := Recurrence(ts, per, minPS)
		return Erec(ts, per, minPS) >= rec
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestErecAntiMonotone(t *testing.T) {
	// Property 2: removing timestamps (as any superset pattern does) can
	// only lower Erec.
	f := func(seed uint64) bool {
		local := rand.New(rand.NewPCG(seed, 13))
		ts := randomTS(local, 80, 300)
		per := local.Int64N(25) + 1
		minPS := local.IntN(6) + 1
		// Random subset of ts, preserving order.
		var sub []int64
		for _, v := range ts {
			if local.Float64() < 0.6 {
				sub = append(sub, v)
			}
		}
		return Erec(ts, per, minPS) >= Erec(sub, per, minPS)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestRecurrenceMatchesIntervalFilter(t *testing.T) {
	// Recurrence must equal "count Intervals with PS >= minPS" and return
	// exactly those intervals.
	f := func(seed uint64) bool {
		local := rand.New(rand.NewPCG(seed, 23))
		ts := randomTS(local, 80, 300)
		per := local.Int64N(25) + 1
		minPS := local.IntN(6) + 1
		rec, ipi := Recurrence(ts, per, minPS)
		var want []Interval
		for _, iv := range Intervals(ts, per) {
			if iv.PS >= minPS {
				want = append(want, iv)
			}
		}
		if rec != len(want) || len(ipi) != len(want) {
			return false
		}
		for i := range want {
			if ipi[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// minersAgree runs every miner on db with o and fails the test on any
// disagreement with the brute-force oracle.
func minersAgree(t *testing.T, db *tsdb.DB, o Options, tag string) {
	t.Helper()
	oracle, err := MineBruteForce(db, o)
	if err != nil {
		t.Fatalf("%s: oracle: %v", tag, err)
	}
	type miner struct {
		name string
		run  func() (*Result, error)
	}
	miners := []miner{
		{"RP-growth", func() (*Result, error) { return Mine(db, o) }},
		{"vertical", func() (*Result, error) { return MineVertical(db, o) }},
		{"RP-growth parallel", func() (*Result, error) {
			op := o
			op.Parallelism = 3
			return Mine(db, op)
		}},
		{"RP-growth no pruning", func() (*Result, error) {
			op := o
			op.DisableErecPruning = true
			return Mine(db, op)
		}},
		{"RP-growth lexicographic", func() (*Result, error) {
			op := o
			op.ItemOrder = Lexicographic
			return Mine(db, op)
		}},
	}
	for _, m := range miners {
		got, err := m.run()
		if err != nil {
			t.Fatalf("%s: %s: %v", tag, m.name, err)
		}
		if !got.Equal(oracle) {
			t.Fatalf("%s: %s disagrees with oracle:\ngot  %v\nwant %v",
				tag, m.name, formatAll(db, got.Patterns), formatAll(db, oracle.Patterns))
		}
	}
}

func TestMinersAgainstOracleRandomDBs(t *testing.T) {
	rng := rand.New(rand.NewPCG(2025, 7))
	runs := 60
	if testing.Short() {
		runs = 15
	}
	for i := 0; i < runs; i++ {
		nItems := rng.IntN(7) + 2
		nTS := rng.IntN(60) + 10
		density := 0.1 + rng.Float64()*0.5
		db := randomDB(rng, nItems, nTS, density)
		if db.Len() == 0 {
			continue
		}
		o := Options{
			Per:    rng.Int64N(8) + 1,
			MinPS:  rng.IntN(4) + 1,
			MinRec: rng.IntN(3) + 1,
		}
		minersAgree(t, db, o, "random DB")
	}
}

func TestMinersAgainstOracleSparseRareItems(t *testing.T) {
	// Rare-item shape: a couple of very frequent items plus several rare
	// items that appear only inside short bursts, the regime the model's
	// rare-item tolerance targets (paper Section 5.2).
	rng := rand.New(rand.NewPCG(99, 3))
	for i := 0; i < 25; i++ {
		b := tsdb.NewBuilder()
		nTS := int64(80)
		for ts := int64(1); ts <= nTS; ts++ {
			if rng.Float64() < 0.7 {
				b.Add("x", ts)
			}
			if rng.Float64() < 0.6 {
				b.Add("y", ts)
			}
		}
		// Rare items bursting in two windows each.
		for _, rare := range []string{"r1", "r2", "r3"} {
			for k := 0; k < 2; k++ {
				start := rng.Int64N(nTS-12) + 1
				for ts := start; ts < start+10; ts++ {
					if rng.Float64() < 0.8 {
						b.Add(rare, ts)
					}
				}
			}
		}
		db := b.Build()
		o := Options{Per: rng.Int64N(3) + 1, MinPS: rng.IntN(4) + 2, MinRec: rng.IntN(2) + 1}
		minersAgree(t, db, o, "rare items")
	}
}

func TestMineVerticalAgreesOnLargerRandomDBs(t *testing.T) {
	// Beyond the oracle's reach: RP-growth vs the vertical miner on larger
	// random databases. Two independent implementations agreeing on the
	// full output (measures included) is strong evidence of correctness.
	rng := rand.New(rand.NewPCG(11, 17))
	runs := 10
	if testing.Short() {
		runs = 3
	}
	for i := 0; i < runs; i++ {
		nItems := rng.IntN(20) + 10
		nTS := rng.IntN(800) + 200
		db := randomDB(rng, nItems, nTS, 0.05+rng.Float64()*0.25)
		o := Options{
			Per:    rng.Int64N(15) + 1,
			MinPS:  rng.IntN(5) + 2,
			MinRec: rng.IntN(3) + 1,
		}
		a, err := Mine(db, o)
		if err != nil {
			t.Fatal(err)
		}
		bRes, err := MineVertical(db, o)
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(bRes) {
			t.Fatalf("RP-growth and vertical disagree on run %d (%d vs %d patterns)",
				i, len(a.Patterns), len(bRes.Patterns))
		}
		p, err := Mine(db, Options{Per: o.Per, MinPS: o.MinPS, MinRec: o.MinRec, Parallelism: 4})
		if err != nil {
			t.Fatal(err)
		}
		if !a.Equal(p) {
			t.Fatalf("sequential and parallel RP-growth disagree on run %d", i)
		}
	}
}

func TestMineSubsetOfCandidates(t *testing.T) {
	// Every recurring pattern's every item must be a candidate item, and the
	// pattern's own Erec must pass the bound (soundness of Definition 11).
	rng := rand.New(rand.NewPCG(5, 5))
	for i := 0; i < 20; i++ {
		db := randomDB(rng, rng.IntN(8)+2, rng.IntN(80)+20, 0.3)
		o := Options{Per: rng.Int64N(6) + 1, MinPS: rng.IntN(3) + 1, MinRec: rng.IntN(3) + 1}
		list := BuildRPList(db, o)
		res, err := Mine(db, o)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range res.Patterns {
			for _, it := range p.Items {
				if !list.IsCandidate(it) {
					t.Fatalf("pattern %s contains non-candidate item %d", p.Format(db.Dict), it)
				}
			}
			ts := db.TSList(p.Items)
			if got := Erec(ts, o.Per, o.MinPS); got < o.MinRec {
				t.Fatalf("pattern %s has Erec %d < minRec %d", p.Format(db.Dict), got, o.MinRec)
			}
			if got := len(ts); got != p.Support {
				t.Fatalf("pattern %s support %d, scan says %d", p.Format(db.Dict), p.Support, got)
			}
		}
	}
}
