package core

import (
	"reflect"
	"testing"

	"github.com/recurpat/rp/internal/tsdb"
)

// paperDB reconstructs Table 1 of the paper: the transactional database
// built from the running-example time series of Figure 1.
func paperDB(t testing.TB) *tsdb.DB {
	t.Helper()
	rows := map[int64][]string{
		1:  {"a", "b", "g"},
		2:  {"a", "c", "d"},
		3:  {"a", "b", "e", "f"},
		4:  {"a", "b", "c", "d"},
		5:  {"c", "d", "e", "f", "g"},
		6:  {"e", "f", "g"},
		7:  {"a", "b", "c", "g"},
		9:  {"c", "d"},
		10: {"c", "d", "e", "f"},
		11: {"a", "b", "e", "f"},
		12: {"a", "b", "c", "d", "e", "f", "g"},
		14: {"a", "b", "g"},
	}
	b := tsdb.NewBuilder()
	// Intern in the paper's alphabet order for stable IDs a=0..g=6.
	for _, name := range []string{"a", "b", "c", "d", "e", "f", "g"} {
		b.Dict().Intern(name)
	}
	for ts, items := range rows {
		for _, it := range items {
			b.Add(it, ts)
		}
	}
	db := b.Build()
	if err := db.Validate(); err != nil {
		t.Fatalf("paper DB invalid: %v", err)
	}
	return db
}

// paperOptions are the running example thresholds: per=2, minPS=3, minRec=2.
func paperOptions() Options { return Options{Per: 2, MinPS: 3, MinRec: 2} }

func mustPattern(t testing.TB, db *tsdb.DB, names ...string) []tsdb.ItemID {
	t.Helper()
	ids, err := db.InternPattern(names)
	if err != nil {
		t.Fatalf("intern %v: %v", names, err)
	}
	return ids
}

func TestPaperTSLists(t *testing.T) {
	db := paperDB(t)
	// Example 2: TS^ab = {1, 3, 4, 7, 11, 12, 14}.
	got := db.TSList(mustPattern(t, db, "a", "b"))
	want := []int64{1, 3, 4, 7, 11, 12, 14}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("TS^ab = %v, want %v", got, want)
	}
	// Example 3: Sup(ab) = 7.
	if len(got) != 7 {
		t.Errorf("Sup(ab) = %d, want 7", len(got))
	}
	// Example 1: point sequence of 'a'.
	a := db.TSList(mustPattern(t, db, "a"))
	wantA := []int64{1, 2, 3, 4, 7, 11, 12, 14}
	if !reflect.DeepEqual(a, wantA) {
		t.Errorf("TS^a = %v, want %v", a, wantA)
	}
}

func TestPaperIntervals(t *testing.T) {
	db := paperDB(t)
	// Example 5: with per=2, the periodic intervals of 'ab' are
	// [1,4], [7,7] and [11,14] with periodic supports 3, 1, 3 (Example 6).
	ts := db.TSList(mustPattern(t, db, "a", "b"))
	got := Intervals(ts, 2)
	want := []Interval{{1, 4, 3}, {7, 7, 1}, {11, 14, 3}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Intervals(ab) = %v, want %v", got, want)
	}
}

func TestPaperRecurrence(t *testing.T) {
	db := paperDB(t)
	// Examples 7-9: with minPS=3, IPI^ab = {[1,4], [11,14]}, Rec(ab)=2.
	ts := db.TSList(mustPattern(t, db, "a", "b"))
	rec, ipi := Recurrence(ts, 2, 3)
	if rec != 2 {
		t.Errorf("Rec(ab) = %d, want 2", rec)
	}
	want := []Interval{{1, 4, 3}, {11, 14, 3}}
	if !reflect.DeepEqual(ipi, want) {
		t.Errorf("IPI^ab = %v, want %v", ipi, want)
	}
}

func TestPaperErec(t *testing.T) {
	db := paperDB(t)
	// Example 11: item 'g' occurs at {1,5,6,7,12,14}; with per=2, minPS=3
	// its runs have periodic supports 1, 3, 2 so Erec(g) = 1.
	g := db.TSList(mustPattern(t, db, "g"))
	if got := Erec(g, 2, 3); got != 1 {
		t.Errorf("Erec(g) = %d, want 1", got)
	}
	// Example 10: Rec(c) = 1 but Erec(c) = floor(7/3) = 2, so 'c' must stay
	// a candidate even though it is not recurring (its superset 'cd' is).
	c := db.TSList(mustPattern(t, db, "c"))
	rec, _ := Recurrence(c, 2, 3)
	if rec != 1 {
		t.Errorf("Rec(c) = %d, want 1", rec)
	}
	if got := Erec(c, 2, 3); got != 2 {
		t.Errorf("Erec(c) = %d, want 2", got)
	}
}

func TestPaperRPList(t *testing.T) {
	db := paperDB(t)
	list := BuildRPList(db, paperOptions())
	// Figure 4(e)-(f): candidates sorted support-descending are
	// a(8,2) b(7,2) c(7,2) d(6,2) e(6,2) f(6,2); g is pruned (erec 1 < 2).
	want := []RPListEntry{}
	for _, row := range []struct {
		name string
		sup  int
		erec int
	}{
		{"a", 8, 2}, {"b", 7, 2}, {"c", 7, 2}, {"d", 6, 2}, {"e", 6, 2}, {"f", 6, 2},
	} {
		id, _ := db.Dict.Lookup(row.name)
		want = append(want, RPListEntry{Item: id, Support: row.sup, Erec: row.erec})
	}
	if !reflect.DeepEqual(list.Candidates, want) {
		t.Errorf("RP-list = %+v, want %+v", list.Candidates, want)
	}
	if list.TotalItems() != 7 {
		t.Errorf("TotalItems = %d, want 7", list.TotalItems())
	}
	if g, _ := db.Dict.Lookup("g"); list.IsCandidate(g) {
		t.Error("g should be pruned from the RP-list")
	}
}

// wantTable2 returns the complete Table 2 of the paper: every recurring
// pattern of the running example with its support, recurrence and
// interesting periodic intervals.
func wantTable2(t testing.TB, db *tsdb.DB) []Pattern {
	rows := []struct {
		names []string
		sup   int
		ipi   []Interval
	}{
		{[]string{"a"}, 8, []Interval{{1, 4, 4}, {11, 14, 3}}},
		{[]string{"b"}, 7, []Interval{{1, 4, 3}, {11, 14, 3}}},
		{[]string{"d"}, 6, []Interval{{2, 5, 3}, {9, 12, 3}}},
		{[]string{"e"}, 6, []Interval{{3, 6, 3}, {10, 12, 3}}},
		{[]string{"f"}, 6, []Interval{{3, 6, 3}, {10, 12, 3}}},
		{[]string{"a", "b"}, 7, []Interval{{1, 4, 3}, {11, 14, 3}}},
		{[]string{"c", "d"}, 6, []Interval{{2, 5, 3}, {9, 12, 3}}},
		{[]string{"e", "f"}, 6, []Interval{{3, 6, 3}, {10, 12, 3}}},
	}
	var want []Pattern
	for _, r := range rows {
		want = append(want, Pattern{
			Items:      mustPattern(t, db, r.names...),
			Support:    r.sup,
			Recurrence: 2,
			Intervals:  r.ipi,
		})
	}
	res := &Result{Patterns: want}
	res.Canonicalize()
	return res.Patterns
}

func checkTable2(t *testing.T, db *tsdb.DB, got *Result, minerName string) {
	t.Helper()
	want := wantTable2(t, db)
	if len(got.Patterns) != len(want) {
		t.Fatalf("%s found %d patterns, want %d:\ngot  %v\nwant %v",
			minerName, len(got.Patterns), len(want), formatAll(db, got.Patterns), formatAll(db, want))
	}
	for i := range want {
		if !patternEqual(got.Patterns[i], want[i]) {
			t.Errorf("%s pattern %d = %s, want %s",
				minerName, i, got.Patterns[i].Format(db.Dict), want[i].Format(db.Dict))
		}
	}
}

func formatAll(db *tsdb.DB, ps []Pattern) []string {
	out := make([]string, len(ps))
	for i, p := range ps {
		out[i] = p.Format(db.Dict)
	}
	return out
}

func TestMinePaperExample(t *testing.T) {
	db := paperDB(t)
	res, err := Mine(db, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkTable2(t, db, res, "RP-growth")
}

func TestMineVerticalPaperExample(t *testing.T) {
	db := paperDB(t)
	res, err := MineVertical(db, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkTable2(t, db, res, "vertical")
}

func TestMineBruteForcePaperExample(t *testing.T) {
	db := paperDB(t)
	res, err := MineBruteForce(db, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkTable2(t, db, res, "brute force")
}

func TestMineParallelPaperExample(t *testing.T) {
	db := paperDB(t)
	o := paperOptions()
	o.Parallelism = 4
	res, err := Mine(db, o)
	if err != nil {
		t.Fatal(err)
	}
	checkTable2(t, db, res, "parallel RP-growth")
}

func TestMinePaperExampleNoPruning(t *testing.T) {
	db := paperDB(t)
	o := paperOptions()
	o.DisableErecPruning = true
	res, err := Mine(db, o)
	if err != nil {
		t.Fatal(err)
	}
	checkTable2(t, db, res, "RP-growth (pruning off)")
}

func TestPaperMaxLen(t *testing.T) {
	db := paperDB(t)
	o := paperOptions()
	o.MaxLen = 1
	res, err := Mine(db, o)
	if err != nil {
		t.Fatal(err)
	}
	// Only the five single-item rows of Table 2 remain.
	if len(res.Patterns) != 5 {
		t.Fatalf("MaxLen=1 found %d patterns, want 5: %v", len(res.Patterns), formatAll(db, res.Patterns))
	}
	for _, p := range res.Patterns {
		if p.Len() != 1 {
			t.Errorf("MaxLen=1 produced %s", p.Format(db.Dict))
		}
	}
}

func TestMinePaperExampleLexicographicOrder(t *testing.T) {
	db := paperDB(t)
	o := paperOptions()
	o.ItemOrder = Lexicographic
	res, err := Mine(db, o)
	if err != nil {
		t.Fatal(err)
	}
	checkTable2(t, db, res, "RP-growth (lexicographic order)")
}
