package core

import (
	"math/rand/v2"
	"reflect"
	"slices"
	"testing"
)

// mergeOracle is the representation the merge path replaced: concatenate
// every run and re-sort. For int64 multisets the two are interchangeable, so
// merge must reproduce it exactly.
func mergeOracle(runs [][]int64) []int64 {
	var all []int64
	for _, r := range runs {
		all = append(all, r...)
	}
	slices.Sort(all)
	if all == nil {
		all = []int64{}
	}
	return all
}

// randomRuns builds k sorted runs with lengths in [0, maxLen) and values in
// [1, maxTS], duplicates across (and within) runs allowed.
func randomRuns(rng *rand.Rand, k, maxLen int, maxTS int64) [][]int64 {
	runs := make([][]int64, k)
	for i := range runs {
		n := rng.IntN(maxLen)
		r := make([]int64, n)
		for j := range r {
			r[j] = rng.Int64N(maxTS) + 1
		}
		slices.Sort(r)
		runs[i] = r
	}
	return runs
}

func mergeRuns(ms *mergeScratch, runs [][]int64) []int64 {
	views := ms.runs[:0]
	for _, r := range runs {
		views = append(views, run{s: r})
	}
	ms.runs = views
	out := ms.merge(nil)
	if out == nil {
		out = []int64{}
	}
	return out
}

func TestMergeMatchesConcatAndSort(t *testing.T) {
	var ms mergeScratch
	rng := rand.New(rand.NewPCG(7, 11))
	// Cover the fast paths (0, 1, 2 runs) and the k-way heap explicitly.
	for k := 0; k <= 9; k++ {
		for trial := 0; trial < 200; trial++ {
			runs := randomRuns(rng, k, 12, 30)
			want := mergeOracle(runs)
			got := mergeRuns(&ms, runs)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("k=%d trial=%d: merge = %v, want %v (runs %v)", k, trial, got, want, runs)
			}
			if len(ms.runs) != 0 {
				t.Fatalf("mergeScratch.runs not reset: %d entries left", len(ms.runs))
			}
		}
	}
}

func TestMergeIntoRecycledBuffer(t *testing.T) {
	// merge must honour dst's existing capacity and never read stale
	// contents: fill a buffer with poison, recycle it, and compare.
	var ms mergeScratch
	rng := rand.New(rand.NewPCG(3, 9))
	poison := make([]int64, 0, 256)
	for i := 0; i < cap(poison); i++ {
		poison = append(poison, -1)
	}
	for trial := 0; trial < 100; trial++ {
		runs := randomRuns(rng, 1+rng.IntN(6), 10, 25)
		want := mergeOracle(runs)
		got := mergeRuns(&ms, runs)
		_ = append(poison[:0], got...) // unrelated reuse must not disturb results
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merge = %v, want %v", trial, got, want)
		}
	}
}

func TestAppendRunViewsSplitsRunList(t *testing.T) {
	var ms mergeScratch
	// ts = three runs: [1 4 7 | 2 5 | 9]; boundaries after indexes 3 and 5.
	ts := []int64{1, 4, 7, 2, 5, 9}
	bounds := []int32{3, 5}
	views := appendRunViews(ms.runs[:0], ts, bounds)
	if len(views) != 3 {
		t.Fatalf("got %d views, want 3", len(views))
	}
	want := [][]int64{{1, 4, 7}, {2, 5}, {9}}
	for i, v := range views {
		if !reflect.DeepEqual(v.s, want[i]) {
			t.Errorf("view %d = %v, want %v", i, v.s, want[i])
		}
	}
	// Single-run list: one view covering everything.
	views = appendRunViews(ms.runs[:0], ts[:3], nil)
	if len(views) != 1 || !reflect.DeepEqual(views[0].s, []int64{1, 4, 7}) {
		t.Errorf("single-run views = %+v", views)
	}
	// Empty list: no views.
	if views = appendRunViews(ms.runs[:0], nil, nil); len(views) != 0 {
		t.Errorf("empty list produced %d views", len(views))
	}
}

func TestAppendRunCoalescesAscending(t *testing.T) {
	var n rpNode
	n.appendRun([]int64{1, 3})
	n.appendRun([]int64{5, 8}) // ascending continuation: same run
	if len(n.runs) != 0 {
		t.Fatalf("ascending append split the run: bounds %v", n.runs)
	}
	n.appendRun([]int64{2, 9}) // 2 < 8: new run boundary
	if len(n.runs) != 1 || n.runs[0] != 4 {
		t.Fatalf("descending append bounds = %v, want [4]", n.runs)
	}
	if !reflect.DeepEqual(n.ts, []int64{1, 3, 5, 8, 2, 9}) {
		t.Fatalf("ts = %v", n.ts)
	}
}

func FuzzMergeRuns(f *testing.F) {
	f.Add([]byte{3, 1, 2, 3, 0, 2, 9, 9}, uint8(3))
	f.Add([]byte{}, uint8(1))
	f.Add([]byte{1, 1, 1, 1, 1, 1, 1}, uint8(5))
	f.Fuzz(func(t *testing.T, data []byte, k uint8) {
		nRuns := int(k%8) + 1
		runs := make([][]int64, nRuns)
		for i, b := range data {
			v := int64(b)
			runs[i%nRuns] = append(runs[i%nRuns], v)
		}
		for i := range runs {
			slices.Sort(runs[i])
		}
		var ms mergeScratch
		got := mergeRuns(&ms, runs)
		want := mergeOracle(runs)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("merge = %v, want %v (runs %v)", got, want, runs)
		}
	})
}

func TestMinerArenaReuse(t *testing.T) {
	// Two consecutive mines on the same miner state (as the worker pool
	// does rank after rank) must produce identical results: the arena reset
	// and scratch recycling may not leak state between runs.
	rng := rand.New(rand.NewPCG(21, 4))
	for trial := 0; trial < 20; trial++ {
		db := randomDB(rng, 6, 40, 0.35)
		o := Options{Per: 3, MinPS: 2, MinRec: 2}
		list := BuildRPList(db, o)
		if len(list.Candidates) == 0 {
			continue
		}

		fresh, err := Mine(db, o)
		if err != nil {
			t.Fatal(err)
		}

		var m miner
		m.o = o
		var results []*Result
		for round := 0; round < 2; round++ {
			tree := buildRPTree(db, list)
			res := &Result{}
			m.res = res
			m.mineTree(tree, nil, 1)
			res.Canonicalize()
			results = append(results, res)
			m.arena.reset(0)
		}
		for i, res := range results {
			if renderResult(res) != renderResult(fresh) {
				t.Fatalf("trial %d round %d: reused miner diverged\nreused:\n%s\nfresh:\n%s",
					trial, i, renderResult(res), renderResult(fresh))
			}
		}
	}
}
