package core

import (
	"sort"
	"sync"

	"github.com/recurpat/rp/internal/tsdb"
)

// Mine discovers the complete set of recurring patterns in db under the
// thresholds in o using the RP-growth algorithm (paper Section 4): one scan
// builds the RP-list of candidate items, a second scan builds the RP-tree,
// and bottom-up pattern growth with Erec pruning enumerates the patterns.
//
// The result is canonically ordered (by pattern length, then item IDs).
func Mine(db *tsdb.DB, o Options) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	res := &Result{}
	list := BuildRPList(db, o)
	if o.CollectStats {
		res.Stats.CandidateItems = len(list.Candidates)
	}
	if len(list.Candidates) == 0 {
		return res, nil
	}
	tree := buildRPTree(db, list)
	if o.CollectStats {
		res.Stats.TreeNodes += tree.nodes
	}
	if o.Parallelism > 1 {
		mineParallel(tree, o, res)
	} else {
		m := &miner{o: o, res: res}
		m.mineTree(tree, nil, 1)
	}
	res.Canonicalize()
	return res, nil
}

// miner carries the mining context of one (sequential) RP-growth run.
type miner struct {
	o   Options
	res *Result
}

// mineTree is Algorithm 4 (RP-growth): process the tree's items bottom-up;
// for each item, collect the suffix pattern's timestamp list, apply the Erec
// candidate check, evaluate recurrence (Algorithm 5), recurse into the
// conditional tree, and push the item's ts-lists up for the next iteration.
func (m *miner) mineTree(t *rpTree, suffix []tsdb.ItemID, depth int) {
	if m.o.CollectStats && depth > m.res.Stats.MaxDepth {
		m.res.Stats.MaxDepth = depth
	}
	for r := len(t.order) - 1; r >= 0; r-- {
		item := t.order[r]
		ts := t.collectTS(r, nil)
		if len(ts) > 0 {
			m.extend(t, r, item, ts, suffix, depth)
		}
		t.pushUp(r)
	}
}

// extend evaluates the pattern beta = suffix + item and recurses into its
// conditional tree when the Erec bound allows supersets to recur.
func (m *miner) extend(t *rpTree, r int, item tsdb.ItemID, ts []int64, suffix []tsdb.ItemID, depth int) {
	if m.o.candidateErec(ts) < m.o.MinRec {
		if m.o.CollectStats {
			m.res.Stats.PatternsPruned++
		}
		return
	}
	beta := make([]tsdb.ItemID, 0, len(suffix)+1)
	beta = append(beta, suffix...)
	beta = append(beta, item)

	if m.o.CollectStats {
		m.res.Stats.PatternsExamined++
	}
	rec, ipi := Recurrence(ts, m.o.Per, m.o.MinPS)
	if rec >= m.o.MinRec {
		m.emit(beta, len(ts), rec, ipi)
	}
	if m.o.MaxLen > 0 && len(beta) >= m.o.MaxLen {
		return
	}
	cond := t.conditionalTree(r, m.o, false)
	if cond == nil {
		return
	}
	if m.o.CollectStats {
		m.res.Stats.TreeNodes += cond.nodes
	}
	m.mineTree(cond, beta, depth+1)
}

func (m *miner) emit(beta []tsdb.ItemID, support, rec int, ipi []Interval) {
	items := make([]tsdb.ItemID, len(beta))
	copy(items, beta)
	sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
	m.res.Patterns = append(m.res.Patterns, Pattern{
		Items:      items,
		Support:    support,
		Recurrence: rec,
		Intervals:  ipi,
	})
}

// mineParallel mines the top-level suffix items concurrently. The shared
// initial tree is read-only in this mode: each worker merges subtree
// ts-lists instead of relying on the sequential push-up mutation, which
// yields exactly the same conditional bases (every descendant tail of an
// item's node belongs to a transaction containing the item). Partial results
// are merged in deterministic order.
func mineParallel(t *rpTree, o Options, res *Result) {
	partial := make([]Result, len(t.order))
	sem := make(chan struct{}, o.Parallelism)
	var wg sync.WaitGroup
	for r := range t.order {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			sub := &partial[r]
			m := &miner{o: o, res: sub}
			var ts []int64
			for n := t.headers[r]; n != nil; n = n.link {
				ts = appendSubtreeTS(n, ts)
			}
			sort.Slice(ts, func(i, j int) bool { return ts[i] < ts[j] })
			if len(ts) == 0 {
				return
			}
			item := t.order[r]
			if o.candidateErec(ts) < o.MinRec {
				if o.CollectStats {
					sub.Stats.PatternsPruned++
				}
				return
			}
			if o.CollectStats {
				sub.Stats.PatternsExamined++
			}
			rec, ipi := Recurrence(ts, o.Per, o.MinPS)
			beta := []tsdb.ItemID{item}
			if rec >= o.MinRec {
				m.emit(beta, len(ts), rec, ipi)
			}
			if o.MaxLen == 1 {
				return
			}
			cond := t.conditionalTree(r, o, true)
			if cond == nil {
				return
			}
			if o.CollectStats {
				sub.Stats.TreeNodes += cond.nodes
			}
			m.mineTree(cond, beta, 2)
		}(r)
	}
	wg.Wait()
	for i := range partial {
		res.Patterns = append(res.Patterns, partial[i].Patterns...)
		res.Stats.PatternsExamined += partial[i].Stats.PatternsExamined
		res.Stats.PatternsPruned += partial[i].Stats.PatternsPruned
		res.Stats.TreeNodes += partial[i].Stats.TreeNodes
		if partial[i].Stats.MaxDepth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = partial[i].Stats.MaxDepth
		}
	}
}
