package core

import (
	"context"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"

	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// Mine discovers the complete set of recurring patterns in db under the
// thresholds in o using the RP-growth algorithm (paper Section 4): one scan
// builds the RP-list of candidate items, a second scan builds the RP-tree,
// and bottom-up pattern growth with Erec pruning enumerates the patterns.
//
// The result is canonically ordered (by pattern length, then item IDs).
// Mine is not cancellable; long-running callers should use MineContext.
func Mine(db *tsdb.DB, o Options) (*Result, error) {
	//rpvet:allow ctxflow — Mine is the documented non-cancellable compat wrapper; the root it mints is the API contract
	return MineContext(context.Background(), db, o)
}

// MineContext is Mine with cancellation: when ctx is cancelled (or its
// deadline passes), mining stops at the next subtree-task boundary — the
// workers of a parallel run observe ctx between top-level subtree tasks,
// a sequential run between tree ranks and conditional trees — and a
// *CancelError wrapping ctx.Err() is returned instead of a result. With
// Options.CollectStats set, the CancelError carries the partial search
// statistics accumulated up to the stop.
//
// Contexts that can never fire (context.Background) add no per-task cost.
func MineContext(ctx context.Context, db *tsdb.DB, o Options) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, &CancelError{Err: err}
	}
	defer o.Trace.StartTotal().End()
	res := &Result{}
	// Each section runs under a phase pprof label (plus whatever request
	// labels the caller attached via obs.WithMineLabels), so a continuous
	// -profiling CPU capture attributes its samples to algorithm phases.
	var list *RPList
	obs.DoPhase(ctx, obs.PhaseScan, func(context.Context) {
		sp := o.Trace.Start(obs.PhaseScan)
		list = BuildRPList(db, o)
		sp.End()
	})
	if o.CollectStats {
		res.Stats.CandidateItems = len(list.Candidates)
	}
	if len(list.Candidates) == 0 {
		return res, nil
	}
	var tree *rpTree
	obs.DoPhase(ctx, obs.PhaseTreeBuild, func(context.Context) {
		sp := o.Trace.Start(obs.PhaseTreeBuild)
		tree = buildRPTree(db, list)
		sp.End()
	})
	if o.CollectStats {
		res.Stats.TreeNodes += tree.nodes
	}
	cancelled := false
	if o.Parallelism > 1 {
		cancelled = mineParallel(ctx, tree, o, res)
	} else {
		obs.DoPhase(ctx, obs.PhaseMine, func(ctx context.Context) {
			m := newMiner(o)
			m.res, m.done = res, ctx.Done()
			m.mineTree(tree, nil, 1)
			m.lc.Flush(m.tr)
			cancelled = m.cancelled
		})
	}
	if cancelled {
		cerr := &CancelError{Err: ctx.Err()}
		if o.CollectStats {
			cerr.Stats = res.Stats
		}
		return nil, cerr
	}
	obs.DoPhase(ctx, obs.PhaseFinalize, func(context.Context) {
		sp := o.Trace.Start(obs.PhaseFinalize)
		res.Canonicalize()
		sp.End()
	})
	return res, nil
}

// miner carries the mining context of one RP-growth run: the thresholds, the
// output sink, and the reusable memory of the hot path — the conditional
// tree arena (reset, not freed, between recursions) and the merge scratch.
// A miner is single-goroutine state; the parallel mode gives each worker its
// own and merges their results deterministically afterwards.
type miner struct {
	o         Options
	res       *Result            // accumulating sink (Mine, mineParallel)
	fn        func(Pattern) bool // streaming sink (MineFunc); stops when false
	stop      bool               // set once fn returned false or ctx fired
	done      <-chan struct{}    // ctx.Done(); nil when not cancellable
	cancelled bool               // set once done fired (distinguishes fn stop)
	arena     nodeArena          // conditional-tree slab
	ms        mergeScratch

	// tr is the run's shared phase tracer (nil when untraced); lc batches
	// this miner's observations between flushes, which happen once per
	// top-level subtree task so the atomics stay out of the hot loops.
	tr *obs.Trace
	lc obs.Local
}

// newMiner builds a miner for o, wiring the tracer into the merge scratch
// (which times ts-list merges and counts conditional-tree prunes) when a
// trace is attached.
func newMiner(o Options) *miner {
	m := &miner{o: o}
	if o.Trace != nil {
		m.tr = o.Trace
		m.ms.lc = &m.lc
	}
	return m
}

// mineTree is Algorithm 4 (RP-growth): process the tree's items bottom-up;
// for each item, collect the suffix pattern's timestamp list, apply the Erec
// candidate check, evaluate recurrence (Algorithm 5), recurse into the
// conditional tree, and push the item's ts-lists up for the next iteration.
//
// Cancellation is observed once per rank — task granularity, so the check
// never runs inside the ts-list merge or tree-walk hot loops.
func (m *miner) mineTree(t *rpTree, suffix []tsdb.ItemID, depth int) {
	if m.res != nil && m.o.CollectStats && depth > m.res.Stats.MaxDepth {
		m.res.Stats.MaxDepth = depth
	}
	for r := len(t.order) - 1; r >= 0 && !m.stop; r-- {
		if m.checkCancel() {
			return
		}
		if m.tr != nil && depth == 1 {
			// Top-level subtree task: attribute its wall time to the
			// mining phase (and, when a timeline is attached, retain the
			// task as a span) and publish the batch accumulated during it.
			sp := m.tr.StartTask(m.taskLabel(t.order[r]), &m.lc)
			m.mineRank(t, r, suffix, depth, false)
			t.pushUp(r)
			sp.End(&m.lc)
			m.lc.Flush(m.tr)
			continue
		}
		m.mineRank(t, r, suffix, depth, false)
		t.pushUp(r)
	}
}

// taskLabel names a top-level subtree task by its suffix item, the label
// retained timeline spans carry. The string is only built when a timeline
// is actually attached, so the traced-aggregate-only path allocates
// nothing extra per task.
func (m *miner) taskLabel(item tsdb.ItemID) string {
	if m.tr.Timeline() == nil {
		return ""
	}
	return "item=" + strconv.Itoa(int(item))
}

// mineRank evaluates the pattern beta = suffix + order[r] and recurses into
// its conditional tree when the Erec bound allows supersets to recur. The
// suffix timestamp list lives in a pooled buffer that is released before the
// recursion, and the conditional tree is carved from the miner's arena and
// reclaimed (reset) as soon as its subtree has been mined.
func (m *miner) mineRank(t *rpTree, r int, suffix []tsdb.ItemID, depth int, subtree bool) {
	ts := m.ms.getBuf()
	if subtree {
		runs := m.ms.runs[:0]
		for n := t.headers[r]; n != nilNode; n = t.arena.nodes[n].link {
			runs = t.appendSubtreeRuns(runs, n)
		}
		m.ms.runs = runs
		ts = m.ms.merge(ts)
	} else {
		ts = t.collectTS(&m.ms, r, ts)
	}
	support := len(ts)
	if support == 0 {
		m.ms.putBuf(ts)
		return
	}
	if m.o.candidateErec(ts) < m.o.MinRec {
		if m.res != nil && m.o.CollectStats {
			m.res.Stats.PatternsPruned++
		}
		if m.tr != nil {
			m.lc.Observe(obs.PhasePrune, 0, 1)
		}
		m.ms.putBuf(ts)
		return
	}
	if m.res != nil && m.o.CollectStats {
		m.res.Stats.PatternsExamined++
	}
	rec, ipi := Recurrence(ts, m.o.Per, m.o.MinPS)
	m.ms.putBuf(ts)

	beta := make([]tsdb.ItemID, 0, len(suffix)+1)
	beta = append(beta, suffix...)
	beta = append(beta, t.order[r])
	if rec >= m.o.MinRec {
		m.emit(beta, support, rec, ipi)
		if m.stop {
			return
		}
	}
	if m.o.MaxLen > 0 && len(beta) >= m.o.MaxLen {
		return
	}
	mark := m.arena.mark()
	cond := t.conditionalTree(&m.arena, &m.ms, m.o, r, subtree)
	if cond != nil {
		if m.res != nil && m.o.CollectStats {
			m.res.Stats.TreeNodes += cond.nodes
		}
		m.mineTree(cond, beta, depth+1)
	}
	m.arena.reset(mark)
}

// emit delivers one recurring pattern to the miner's sink.
func (m *miner) emit(beta []tsdb.ItemID, support, rec int, ipi []Interval) {
	items := make([]tsdb.ItemID, len(beta))
	copy(items, beta)
	slices.Sort(items)
	p := Pattern{
		Items:      items,
		Support:    support,
		Recurrence: rec,
		Intervals:  ipi,
	}
	if m.fn != nil {
		if !m.fn(p) {
			m.stop = true
		}
		return
	}
	m.res.Patterns = append(m.res.Patterns, p)
}

// mineParallel mines the top-level suffix items with a fixed pool of
// Parallelism workers; it is mineRanks over every rank of the tree.
func mineParallel(ctx context.Context, t *rpTree, o Options, res *Result) (cancelled bool) {
	ranks := make([]int, len(t.order))
	for i := range ranks {
		ranks[i] = i
	}
	return mineRanks(ctx, t, o, res, ranks)
}

// mineRanks mines the given top-level ranks of t with a fixed pool of
// Parallelism workers (minimum one) pulling rank indexes from a shared
// atomic queue, so a heavy suffix item no longer serializes the tail of the
// run the way the old goroutine-per-item semaphore did. The shared initial
// tree is read-only in this mode: each worker merges subtree ts-lists
// instead of relying on the sequential push-up mutation, which yields
// exactly the same conditional bases (every descendant tail of an item's
// node belongs to a transaction containing the item). Each rank's partial
// result has exactly one writer, and partials are merged in deterministic
// rank order after the pool drains — which is what makes a shard-restricted
// rank subset (core.MineShardContext) produce exactly the patterns the full
// mine attributes to those ranks.
//
// ranks must be sorted ascending and duplicate-free; the parallel mode
// passes every rank, the shard mode the ranks its ShardSpec owns.
//
// Workers observe ctx between subtree tasks (and, via mineTree, between the
// ranks within one task); once it fires they stop claiming ranks and the
// pool drains. The cancelled return still carries merged partial stats.
func mineRanks(ctx context.Context, t *rpTree, o Options, res *Result, ranks []int) (cancelled bool) {
	partial := make([]Result, len(ranks))
	workers := o.Parallelism
	if workers > len(ranks) {
		workers = len(ranks)
	}
	if workers < 1 {
		workers = 1
	}
	done := ctx.Done()
	var stopped atomic.Bool
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			// The worker runs under phase=mine pprof labels; request-scoped
			// labels (request_id, dataset_fp) are inherited from ctx, so a
			// CPU capture taken mid-run attributes worker samples to the
			// request that spawned them.
			obs.DoPhase(ctx, obs.PhaseMine, func(context.Context) { mineWorker(t, o, done, ranks, partial, &next, &stopped) })
		}()
	}
	wg.Wait()
	for i := range partial {
		res.Patterns = append(res.Patterns, partial[i].Patterns...)
		res.Stats.PatternsExamined += partial[i].Stats.PatternsExamined
		res.Stats.PatternsPruned += partial[i].Stats.PatternsPruned
		res.Stats.TreeNodes += partial[i].Stats.TreeNodes
		if partial[i].Stats.MaxDepth > res.Stats.MaxDepth {
			res.Stats.MaxDepth = partial[i].Stats.MaxDepth
		}
	}
	return stopped.Load()
}

// mineWorker is one pool worker's loop: claim rank indexes from the shared
// queue, mine each claimed rank's subtree into its partial slot, and stop
// once ctx fired (done) or the queue drains. Extracted from the goroutine
// literal in mineRanks so the pprof.Do phase wrapper stays a one-liner.
func mineWorker(t *rpTree, o Options, done <-chan struct{}, ranks []int, partial []Result, next *atomic.Int64, stopped *atomic.Bool) {
	m := newMiner(o)
	m.done = done
	for {
		if m.checkCancel() {
			stopped.Store(true)
			return
		}
		i := int(next.Add(1)) - 1
		if i >= len(ranks) {
			return
		}
		r := ranks[i]
		m.res = &partial[i]
		var sp obs.TaskSpan
		if m.tr != nil {
			sp = m.tr.StartTask(m.taskLabel(t.order[r]), &m.lc)
		}
		m.mineRank(t, r, nil, 1, true)
		if m.tr != nil {
			// One subtree task per rank: time it (retaining the
			// span when a timeline is attached) and publish the
			// worker's batch (merge times, prune counts) with it.
			sp.End(&m.lc)
			m.lc.Flush(m.tr)
		}
		if m.cancelled {
			stopped.Store(true)
			return
		}
		if m.o.CollectStats && 1 > m.res.Stats.MaxDepth {
			m.res.Stats.MaxDepth = 1
		}
		m.arena.reset(0)
	}
}
