package core

import (
	"context"

	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// MineFunc runs RP-growth and invokes fn for every recurring pattern as it
// is discovered, instead of accumulating a result slice — memory stays
// bounded by the tree, not by the (possibly huge) pattern set. Patterns
// arrive in discovery order (suffix-item order, not the canonical order of
// Mine); returning false from fn stops mining early.
//
// MineFunc is always sequential; Options.Parallelism is ignored so the
// callback never races with itself. Long-running callers that need
// cancellation should use MineFuncContext.
func MineFunc(db *tsdb.DB, o Options, fn func(Pattern) bool) error {
	//rpvet:allow ctxflow — MineFunc is the documented non-cancellable compat wrapper; the root it mints is the API contract
	return MineFuncContext(context.Background(), db, o, fn)
}

// MineFuncContext is MineFunc with cancellation: when ctx is cancelled the
// miner stops at the next subtree-task boundary and a *CancelError wrapping
// ctx.Err() is returned. Patterns already delivered to fn stay delivered;
// an early stop requested by fn returning false is not an error.
func MineFuncContext(ctx context.Context, db *tsdb.DB, o Options, fn func(Pattern) bool) error {
	if err := o.Validate(); err != nil {
		return err
	}
	if err := ctx.Err(); err != nil {
		return &CancelError{Err: err}
	}
	defer o.Trace.StartTotal().End()
	sp := o.Trace.Start(obs.PhaseScan)
	list := BuildRPList(db, o)
	sp.End()
	if len(list.Candidates) == 0 {
		return nil
	}
	sp = o.Trace.Start(obs.PhaseTreeBuild)
	tree := buildRPTree(db, list)
	sp.End()
	m := newMiner(o)
	m.fn, m.done = fn, ctx.Done()
	m.mineTree(tree, nil, 1)
	m.lc.Flush(m.tr)
	if m.cancelled {
		return &CancelError{Err: ctx.Err()}
	}
	return nil
}
