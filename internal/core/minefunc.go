package core

import (
	"sort"

	"github.com/recurpat/rp/internal/tsdb"
)

// MineFunc runs RP-growth and invokes fn for every recurring pattern as it
// is discovered, instead of accumulating a result slice — memory stays
// bounded by the tree, not by the (possibly huge) pattern set. Patterns
// arrive in discovery order (suffix-item order, not the canonical order of
// Mine); returning false from fn stops mining early.
//
// MineFunc is always sequential; Options.Parallelism is ignored so the
// callback never races with itself.
func MineFunc(db *tsdb.DB, o Options, fn func(Pattern) bool) error {
	if err := o.Validate(); err != nil {
		return err
	}
	list := BuildRPList(db, o)
	if len(list.Candidates) == 0 {
		return nil
	}
	tree := buildRPTree(db, list)
	m := &funcMiner{o: o, fn: fn}
	m.mineTree(tree, nil, 1)
	return nil
}

type funcMiner struct {
	o       Options
	fn      func(Pattern) bool
	stopped bool
}

func (m *funcMiner) mineTree(t *rpTree, suffix []tsdb.ItemID, depth int) {
	for r := len(t.order) - 1; r >= 0 && !m.stopped; r-- {
		item := t.order[r]
		ts := t.collectTS(r, nil)
		if len(ts) > 0 {
			m.extend(t, r, item, ts, suffix, depth)
		}
		t.pushUp(r)
	}
}

func (m *funcMiner) extend(t *rpTree, r int, item tsdb.ItemID, ts []int64, suffix []tsdb.ItemID, depth int) {
	if m.o.candidateErec(ts) < m.o.MinRec {
		return
	}
	beta := make([]tsdb.ItemID, 0, len(suffix)+1)
	beta = append(beta, suffix...)
	beta = append(beta, item)
	rec, ipi := Recurrence(ts, m.o.Per, m.o.MinPS)
	if rec >= m.o.MinRec {
		items := make([]tsdb.ItemID, len(beta))
		copy(items, beta)
		sort.Slice(items, func(i, j int) bool { return items[i] < items[j] })
		if !m.fn(Pattern{Items: items, Support: len(ts), Recurrence: rec, Intervals: ipi}) {
			m.stopped = true
			return
		}
	}
	if m.o.MaxLen > 0 && len(beta) >= m.o.MaxLen {
		return
	}
	cond := t.conditionalTree(r, m.o, false)
	if cond == nil {
		return
	}
	m.mineTree(cond, beta, depth+1)
}
