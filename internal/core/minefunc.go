package core

import (
	"github.com/recurpat/rp/internal/tsdb"
)

// MineFunc runs RP-growth and invokes fn for every recurring pattern as it
// is discovered, instead of accumulating a result slice — memory stays
// bounded by the tree, not by the (possibly huge) pattern set. Patterns
// arrive in discovery order (suffix-item order, not the canonical order of
// Mine); returning false from fn stops mining early.
//
// MineFunc is always sequential; Options.Parallelism is ignored so the
// callback never races with itself.
func MineFunc(db *tsdb.DB, o Options, fn func(Pattern) bool) error {
	if err := o.Validate(); err != nil {
		return err
	}
	list := BuildRPList(db, o)
	if len(list.Candidates) == 0 {
		return nil
	}
	tree := buildRPTree(db, list)
	m := &miner{o: o, fn: fn}
	m.mineTree(tree, nil, 1)
	return nil
}
