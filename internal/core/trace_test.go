package core

import (
	"math/rand/v2"
	"testing"

	"github.com/recurpat/rp/internal/obs"
)

func TestMineTracedMatchesUntraced(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 3))
	db := randomDB(rng, 14, 2000, 0.28)
	o := Options{Per: 4, MinPS: 3, MinRec: 2}

	plain, err := Mine(db, o)
	if err != nil {
		t.Fatal(err)
	}
	o.Trace = obs.NewTrace()
	traced, err := Mine(db, o)
	if err != nil {
		t.Fatal(err)
	}
	if !plain.Equal(traced) {
		t.Fatal("tracing changed the mining result")
	}
	if len(plain.Patterns) == 0 {
		t.Fatal("workload produced no patterns; the trace assertions below would be vacuous")
	}

	r := o.Trace.Report()
	if r.Runs != 1 || r.TotalNanos <= 0 {
		t.Fatalf("want one timed run, got runs=%d total=%d", r.Runs, r.TotalNanos)
	}
	stats := map[string]obs.PhaseStat{}
	for _, s := range r.Phases {
		stats[s.Phase] = s
	}
	// Every singleton phase ran once; mining processed one task per
	// top-level tree rank; merges and prunes happened.
	for phase, wantCount := range map[string]int64{"scan": 1, "tree-build": 1, "finalize": 1} {
		if got := stats[phase].Count; got != wantCount {
			t.Errorf("%s count = %d, want %d", phase, got, wantCount)
		}
	}
	if stats["mine"].Count == 0 || stats["mine"].Nanos <= 0 {
		t.Errorf("mine phase empty: %+v", stats["mine"])
	}
	if stats["ts-merge"].Count == 0 {
		t.Error("no ts-merge observations on a merge-heavy workload")
	}
	if stats["erec-prune"].Count == 0 {
		t.Error("no erec-prune observations on a pruning workload")
	}
	// The top-level phases partition the run: their sum cannot exceed the
	// total, and on this workload covers the bulk of it.
	covered := r.CoveredNanos()
	if covered > r.TotalNanos {
		t.Errorf("phase times %d exceed the run total %d", covered, r.TotalNanos)
	}
	if covered*2 < r.TotalNanos {
		t.Errorf("phases cover under half the run (%d of %d); the taxonomy is missing something big", covered, r.TotalNanos)
	}
	// The nested merge time is contained in the mining phase's.
	if stats["ts-merge"].Nanos > stats["mine"].Nanos {
		t.Errorf("ts-merge time %d exceeds enclosing mine time %d", stats["ts-merge"].Nanos, stats["mine"].Nanos)
	}
}

// TestMineTracedParallel shares one Trace across the worker pool (the
// production shape in rpserved) and checks counts are complete; run under
// -race by make check.
func TestMineTracedParallel(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 3))
	db := randomDB(rng, 14, 2000, 0.28)

	seq := Options{Per: 4, MinPS: 3, MinRec: 2, Trace: obs.NewTrace()}
	if _, err := Mine(db, seq); err != nil {
		t.Fatal(err)
	}
	par := Options{Per: 4, MinPS: 3, MinRec: 2, Parallelism: 4, Trace: obs.NewTrace()}
	res, err := Mine(db, par)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) == 0 {
		t.Fatal("no patterns")
	}

	sr, pr := seq.Trace.Report(), par.Trace.Report()
	var sc, pc map[string]int64
	sc, pc = map[string]int64{}, map[string]int64{}
	for _, s := range sr.Phases {
		sc[s.Phase] = s.Count
	}
	for _, s := range pr.Phases {
		pc[s.Phase] = s.Count
	}
	// Both modes process one top-level task per initial tree rank.
	if sc["mine"] != pc["mine"] || pc["mine"] == 0 {
		t.Errorf("task counts differ: sequential=%d parallel=%d", sc["mine"], pc["mine"])
	}
	if pc["ts-merge"] == 0 || pc["erec-prune"] == 0 {
		t.Errorf("parallel run lost nested counts: %v", pc)
	}
	if pr.Runs != 1 {
		t.Errorf("parallel runs = %d, want 1", pr.Runs)
	}
}

// TestMineTimelineRecordsRun attaches a timeline (the flight-recorder
// path) and checks the retained spans describe the run at subtree-task
// granularity, agree with the aggregates, and carry labels and nested
// work — sequentially and across the worker pool (-race via make check).
func TestMineTimelineRecordsRun(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 3))
	db := randomDB(rng, 14, 2000, 0.28)

	for _, par := range []int{0, 4} {
		o := Options{Per: 4, MinPS: 3, MinRec: 2, Parallelism: par, Trace: obs.NewTrace()}
		tl := obs.NewTimeline(0)
		o.Trace.AttachTimeline(tl)
		plain, err := Mine(db, Options{Per: 4, MinPS: 3, MinRec: 2, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		res, err := Mine(db, o)
		if err != nil {
			t.Fatal(err)
		}
		if !plain.Equal(res) {
			t.Fatalf("par=%d: timeline retention changed the mining result", par)
		}

		snap := tl.Snapshot()
		counts := map[string]int{}
		var tasks, labelled int
		var taskNanos, merges, prunes int64
		for _, s := range snap.Spans {
			counts[s.Phase]++
			if s.Phase == "mine" {
				tasks++
				taskNanos += s.DurNS
				merges += s.Merges
				prunes += s.Prunes
				if s.Label != "" {
					labelled++
				}
				if s.MergeNS > s.DurNS {
					t.Errorf("par=%d: task %q nested merge time %d exceeds its duration %d", par, s.Label, s.MergeNS, s.DurNS)
				}
			}
		}
		for _, phase := range []string{"scan", "tree-build", "finalize", "total"} {
			if counts[phase] != 1 {
				t.Errorf("par=%d: retained %d %q spans, want 1", par, counts[phase], phase)
			}
		}
		r := o.Trace.Report()
		stats := map[string]obs.PhaseStat{}
		for _, s := range r.Phases {
			stats[s.Phase] = s
		}
		if snap.Dropped != 0 {
			t.Fatalf("par=%d: default cap dropped %d spans on a small workload", par, snap.Dropped)
		}
		if int64(tasks) != stats["mine"].Count || tasks == 0 {
			t.Errorf("par=%d: %d retained task spans, aggregate says %d tasks", par, tasks, stats["mine"].Count)
		}
		if labelled != tasks {
			t.Errorf("par=%d: only %d of %d task spans labelled", par, labelled, tasks)
		}
		if taskNanos != stats["mine"].Nanos {
			t.Errorf("par=%d: retained task time %d != aggregate mine time %d", par, taskNanos, stats["mine"].Nanos)
		}
		if merges != stats["ts-merge"].Count || prunes != stats["erec-prune"].Count {
			t.Errorf("par=%d: per-span work (merges=%d prunes=%d) disagrees with aggregates (%d, %d)",
				par, merges, prunes, stats["ts-merge"].Count, stats["erec-prune"].Count)
		}
	}
}

// TestMineFuncTraced checks the streaming entry point feeds the same trace
// machinery.
func TestMineFuncTraced(t *testing.T) {
	rng := rand.New(rand.NewPCG(17, 3))
	db := randomDB(rng, 14, 2000, 0.28)
	o := Options{Per: 4, MinPS: 3, MinRec: 2, Trace: obs.NewTrace()}
	n := 0
	if err := MineFunc(db, o, func(Pattern) bool { n++; return true }); err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("no patterns streamed")
	}
	r := o.Trace.Report()
	if r.Runs != 1 || r.CoveredNanos() <= 0 {
		t.Fatalf("stream run not traced: runs=%d covered=%d", r.Runs, r.CoveredNanos())
	}
}
