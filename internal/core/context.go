package core

// Context-aware mining support: the miners observe cancellation at
// subtree-task granularity — between top-level suffix items and on entry
// to each conditional tree — never inside the per-node hot loops, so the
// uncancelled path pays only a nil-channel check (see BENCH_core.json).

// CancelError reports that a mining run was cut short by its context. It
// wraps the context's error, so errors.Is(err, context.Canceled) and
// errors.Is(err, context.DeadlineExceeded) work, and carries the partial
// search-progress counters accumulated before the stop when
// Options.CollectStats was set (zero otherwise).
type CancelError struct {
	// Err is the context's error (context.Canceled or
	// context.DeadlineExceeded).
	Err error
	// Stats holds the partial progress at the moment mining stopped;
	// populated only when Options.CollectStats is set.
	Stats MineStats
}

// Error renders the cancellation with its cause.
func (e *CancelError) Error() string { return "core: mining cancelled: " + e.Err.Error() }

// Unwrap exposes the context's error to errors.Is / errors.As.
func (e *CancelError) Unwrap() error { return e.Err }

// checkCancel is the miners' cancellation probe, called once per subtree
// task (per rank of the tree being mined and on conditional-tree entry).
// With no context attached (done == nil, the Mine/MineFunc wrappers) it
// reduces to a nil check. Once the context fires, the miner latches both
// cancelled and stop so every enclosing mining loop unwinds promptly.
func (m *miner) checkCancel() bool {
	if m.done == nil {
		return false
	}
	if m.cancelled {
		return true
	}
	select {
	case <-m.done:
		m.cancelled = true
		m.stop = true
		return true
	default:
		return false
	}
}
