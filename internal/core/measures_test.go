package core

import (
	"reflect"
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/tsdb"
)

func TestIntervalsEdgeCases(t *testing.T) {
	if got := Intervals(nil, 5); got != nil {
		t.Errorf("nil input: %v", got)
	}
	got := Intervals([]int64{7}, 5)
	want := []Interval{{Start: 7, End: 7, PS: 1}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("singleton: %v, want %v", got, want)
	}
	// All gaps equal to per exactly: one run (<= is inclusive).
	got = Intervals([]int64{0, 5, 10, 15}, 5)
	if len(got) != 1 || got[0].PS != 4 {
		t.Errorf("boundary gaps: %v", got)
	}
	// All gaps just over per: all singleton runs.
	got = Intervals([]int64{0, 6, 12, 18}, 5)
	if len(got) != 4 {
		t.Errorf("over-per gaps: %v", got)
	}
}

func TestRecurrenceEdgeCases(t *testing.T) {
	rec, ipi := Recurrence(nil, 5, 1)
	if rec != 0 || ipi != nil {
		t.Errorf("nil input: %d %v", rec, ipi)
	}
	rec, ipi = Recurrence([]int64{3}, 5, 1)
	if rec != 1 || len(ipi) != 1 {
		t.Errorf("singleton at minPS=1: %d %v", rec, ipi)
	}
	rec, _ = Recurrence([]int64{3}, 5, 2)
	if rec != 0 {
		t.Errorf("singleton at minPS=2: %d", rec)
	}
}

func TestErecEdgeCases(t *testing.T) {
	if got := Erec(nil, 5, 2); got != 0 {
		t.Errorf("nil input: %d", got)
	}
	// One run of 7 at minPS 3: floor(7/3) = 2.
	if got := Erec([]int64{1, 2, 3, 4, 5, 6, 7}, 1, 3); got != 2 {
		t.Errorf("Erec of run 7/minPS 3 = %d, want 2", got)
	}
}

func TestMaxPeriodicity(t *testing.T) {
	// Boundary gaps count: first occurrence at 5 with span starting at 0
	// gives a lead-in of 5.
	if got := MaxPeriodicity([]int64{5, 6, 7}, 0, 10); got != 5 {
		t.Errorf("lead-in: %d, want 5", got)
	}
	if got := MaxPeriodicity([]int64{0, 1, 2}, 0, 10); got != 8 {
		t.Errorf("lead-out: %d, want 8", got)
	}
	if got := MaxPeriodicity([]int64{0, 4, 10}, 0, 10); got != 6 {
		t.Errorf("interior: %d, want 6", got)
	}
	if got := MaxPeriodicity(nil, 3, 10); got != 7 {
		t.Errorf("empty list spans the whole window: %d, want 7", got)
	}
}

func TestPeriodicAppearances(t *testing.T) {
	if got := PeriodicAppearances([]int64{1, 3, 10, 11}, 2); got != 2 {
		t.Errorf("got %d, want 2 (gaps 2 and 1)", got)
	}
	if got := PeriodicAppearances(nil, 2); got != 0 {
		t.Errorf("nil: %d", got)
	}
	if got := PeriodicAppearances([]int64{4}, 2); got != 0 {
		t.Errorf("singleton: %d", got)
	}
}

func TestIntersectTS(t *testing.T) {
	cases := []struct {
		a, b, want []int64
	}{
		{nil, nil, nil},
		{[]int64{1, 2, 3}, nil, nil},
		{[]int64{1, 2, 3}, []int64{2, 3, 4}, []int64{2, 3}},
		{[]int64{1, 5, 9}, []int64{2, 6, 10}, nil},
		{[]int64{1, 2, 3}, []int64{1, 2, 3}, []int64{1, 2, 3}},
	}
	for _, c := range cases {
		got := IntersectTS(nil, c.a, c.b)
		if !reflect.DeepEqual(got, c.want) {
			t.Errorf("IntersectTS(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
		// Symmetry.
		rev := IntersectTS(nil, c.b, c.a)
		if !reflect.DeepEqual(rev, c.want) {
			t.Errorf("IntersectTS not symmetric on %v, %v", c.a, c.b)
		}
	}
	// dst is appended to.
	dst := []int64{99}
	got := IntersectTS(dst, []int64{1, 2}, []int64{2, 3})
	if !reflect.DeepEqual(got, []int64{99, 2}) {
		t.Errorf("append semantics: %v", got)
	}
}

func TestPatternStringAndFormat(t *testing.T) {
	dict := tsdb.NewDictionary()
	a := dict.Intern("alpha")
	b := dict.Intern("beta")
	p := Pattern{
		Items:      []tsdb.ItemID{a, b},
		Support:    7,
		Recurrence: 2,
		Intervals:  []Interval{{Start: 1, End: 4, PS: 3}, {Start: 11, End: 14, PS: 3}},
	}
	s := p.String()
	if !strings.Contains(s, "sup=7") || !strings.Contains(s, "rec=2") {
		t.Errorf("String = %q", s)
	}
	f := p.Format(dict)
	if !strings.Contains(f, "alpha,beta") || !strings.Contains(f, "{[1,4]:3}, {[11,14]:3}") {
		t.Errorf("Format = %q", f)
	}
	if p.Len() != 2 {
		t.Errorf("Len = %d", p.Len())
	}
}

func TestResultEqualAndMaxLen(t *testing.T) {
	mk := func() *Result {
		return &Result{Patterns: []Pattern{
			{Items: []tsdb.ItemID{0}, Support: 3, Recurrence: 1,
				Intervals: []Interval{{Start: 1, End: 3, PS: 3}}},
			{Items: []tsdb.ItemID{0, 1}, Support: 2, Recurrence: 1,
				Intervals: []Interval{{Start: 1, End: 2, PS: 2}}},
		}}
	}
	a, b := mk(), mk()
	if !a.Equal(b) {
		t.Error("identical results must be equal")
	}
	if a.MaxLen() != 2 {
		t.Errorf("MaxLen = %d", a.MaxLen())
	}
	b.Patterns[1].Support = 99
	if a.Equal(b) {
		t.Error("support difference must be detected")
	}
	b = mk()
	b.Patterns[1].Intervals[0].PS = 1
	if a.Equal(b) {
		t.Error("interval difference must be detected")
	}
	b = mk()
	b.Patterns = b.Patterns[:1]
	if a.Equal(b) {
		t.Error("length difference must be detected")
	}
	empty := &Result{}
	if empty.MaxLen() != 0 {
		t.Errorf("empty MaxLen = %d", empty.MaxLen())
	}
}

func TestCanonicalizeOrder(t *testing.T) {
	r := &Result{Patterns: []Pattern{
		{Items: []tsdb.ItemID{2, 3}},
		{Items: []tsdb.ItemID{1}},
		{Items: []tsdb.ItemID{0, 5}},
		{Items: []tsdb.ItemID{0}},
	}}
	r.Canonicalize()
	want := [][]tsdb.ItemID{{0}, {1}, {0, 5}, {2, 3}}
	for i, p := range r.Patterns {
		if !reflect.DeepEqual(p.Items, want[i]) {
			t.Fatalf("position %d = %v, want %v", i, p.Items, want[i])
		}
	}
}

func TestVerticalMaxLen(t *testing.T) {
	db := paperDB(t)
	o := paperOptions()
	o.MaxLen = 1
	res, err := MineVertical(db, o)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range res.Patterns {
		if p.Len() > 1 {
			t.Errorf("MaxLen=1 produced %v", p.Items)
		}
	}
	if len(res.Patterns) != 5 {
		t.Errorf("got %d single-item patterns, want 5", len(res.Patterns))
	}
}

func TestBruteForceRefusesLargeAlphabets(t *testing.T) {
	b := tsdb.NewBuilder()
	for i := 0; i < bruteForceMaxItems+1; i++ {
		b.AddIDs(int64(i+1), tsdb.ItemID(i))
		b.Dict().Intern(string(rune('a' + i)))
	}
	if _, err := MineBruteForce(b.Build(), paperOptions()); err == nil {
		t.Error("brute force must refuse > 20 items")
	}
}
