package core

import (
	"slices"

	"github.com/recurpat/rp/internal/obs"
)

// Merge machinery for the RP-tree's timestamp lists. Every ts-list in the
// tree is a concatenation of sorted runs (tail-node appends arrive in scan
// order, push-ups append whole sorted runs), so producing a sorted list is a
// k-way merge of runs, not a comparison sort of the concatenation. The old
// implementation re-sorted concatenations with reflection-based sort.Slice
// on every collect; the merge is O(n log k) with no reflection and, through
// mergeScratch, no steady-state allocation. The k-way case cascades tight
// two-way passes (pairing runs round by round through pooled buffers) rather
// than pulling elements through a heap — the per-element constants of a
// branch-predictable copy loop are several times smaller than a heap's
// sift-per-element, which dominated profiles when push-ups fragment a
// ts-list into many runs.

// mergeScratch holds the reusable buffers of one miner: the run-view list,
// the cascade's round scratch, a free list of timestamp buffers, and the
// conditional-tree construction scratch. A zero value is ready to use. Not
// safe for concurrent use; the parallel miner gives each worker its own.
// conditionalTree never overlaps its own recursion (each call completes
// before mining recurses), so one set of buffers per miner suffices.
type mergeScratch struct {
	runs  []run     // collected run views, reused per call
	a, b  []run     // cascade round views, reused per call
	spent [][]int64 // intermediate buffers recycled at the end of a merge
	free  [][]int64 // timestamp buffer free list

	// conditionalTree scratch (see rptree.go):
	base     []basePath // base paths of the current call
	rankBuf  []int32    // shared backing for the paths' ancestor ranks
	sup      []int      // per-rank conditional support
	cur      []int      // CSR offsets / fill cursors
	pathIdx  []int32    // CSR payload: base-path indices per rank
	keep     []condKeep // items surviving the Erec check
	condRank []int32    // tree rank -> conditional rank, or nilNode
	path     []int32    // re-ranked path being inserted

	// lc, when non-nil, is the owning miner's local trace batch: merge
	// times a ts-merge observation per call and conditionalTree counts
	// its Erec prunes into it. nil (the untraced default) keeps the hot
	// path at a single pointer check.
	lc *obs.Local
}

// run is a view of one sorted segment of a node's ts-list.
type run struct{ s []int64 }

// getBuf hands out an empty timestamp buffer, reusing returned capacity.
func (ms *mergeScratch) getBuf() []int64 {
	if n := len(ms.free); n > 0 {
		b := ms.free[n-1]
		ms.free = ms.free[:n-1]
		return b[:0]
	}
	return nil
}

// putBuf returns a buffer to the free list. The caller must not use b (or
// anything aliasing it) afterwards.
func (ms *mergeScratch) putBuf(b []int64) {
	if cap(b) == 0 {
		return
	}
	ms.free = append(ms.free, b[:0])
}

// appendRunViews splits a run-tracked ts-list (ts plus the run boundaries of
// every run except the implicit last) into run views appended to dst.
func appendRunViews(dst []run, ts []int64, runs []int32) []run {
	if len(ts) == 0 {
		return dst
	}
	prev := int32(0)
	for _, end := range runs {
		dst = append(dst, run{ts[prev:end]})
		prev = end
	}
	return append(dst, run{ts[prev:]})
}

// merge merges the sorted runs into dst (appended) and resets ms.runs for
// the next call. The output is the sorted multiset union of the runs —
// byte-identical to sorting the concatenation, since element order among
// equal values is irrelevant for int64 keys. With a trace batch attached,
// each call records one ts-merge observation with its wall time.
func (ms *mergeScratch) merge(dst []int64) []int64 {
	if ms.lc == nil {
		return ms.mergeRuns(dst)
	}
	start := obs.Now()
	dst = ms.mergeRuns(dst)
	ms.lc.Observe(obs.PhaseMerge, obs.Since(start), 1)
	return dst
}

func (ms *mergeScratch) mergeRuns(dst []int64) []int64 {
	runs := ms.runs
	ms.runs = runs[:0]
	switch len(runs) {
	case 0:
		return dst
	case 1:
		return append(dst, runs[0].s...)
	case 2:
		return merge2(dst, runs[0].s, runs[1].s)
	}

	total := 0
	for _, r := range runs {
		total += len(r.s)
	}
	dst = slices.Grow(dst, total)

	// Cascade: merge adjacent pairs round by round until two runs remain,
	// then merge those straight into dst. Rounds alternate between the two
	// view buffers; intermediate element buffers come from (and return to)
	// the free list, so steady state allocates nothing.
	cur, spent, useA := runs, ms.spent[:0], true
	for len(cur) > 2 {
		nxt := ms.b[:0]
		if useA {
			nxt = ms.a[:0]
		}
		for i := 0; i+1 < len(cur); i += 2 {
			buf := slices.Grow(ms.getBuf(), len(cur[i].s)+len(cur[i+1].s))
			buf = merge2(buf, cur[i].s, cur[i+1].s)
			spent = append(spent, buf)
			nxt = append(nxt, run{buf})
		}
		if len(cur)&1 == 1 {
			nxt = append(nxt, cur[len(cur)-1])
		}
		if useA {
			ms.a = nxt
		} else {
			ms.b = nxt
		}
		cur, useA = nxt, !useA
	}
	dst = merge2(dst, cur[0].s, cur[1].s)
	for _, b := range spent {
		ms.free = append(ms.free, b[:0])
	}
	ms.spent = spent[:0]
	return dst
}

// merge2 merges two sorted runs into dst (appended).
func merge2(dst, a, b []int64) []int64 {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst = append(dst, a[i])
			i++
		} else {
			dst = append(dst, b[j])
			j++
		}
	}
	dst = append(dst, a[i:]...)
	return append(dst, b[j:]...)
}
