package core

import (
	"fmt"
	"slices"
	"strings"

	"github.com/recurpat/rp/internal/tsdb"
)

// Pattern is a recurring pattern together with the measures the paper
// reports for it (expression (1) in Definition 9): support, recurrence, and
// the interesting periodic intervals with their periodic supports.
type Pattern struct {
	Items      []tsdb.ItemID // sorted ascending
	Support    int
	Recurrence int
	Intervals  []Interval // interesting periodic intervals, in time order
}

// Len reports the number of items in the pattern.
func (p Pattern) Len() int { return len(p.Items) }

// String renders the pattern in the paper's notation using opaque item IDs;
// use Format with a dictionary for names.
func (p Pattern) String() string {
	ids := make([]string, len(p.Items))
	for i, id := range p.Items {
		ids[i] = fmt.Sprint(id)
	}
	return fmt.Sprintf("{%s} [sup=%d rec=%d %s]",
		strings.Join(ids, ","), p.Support, p.Recurrence, formatIntervals(p.Intervals))
}

// Format renders the pattern with item names resolved through dict.
func (p Pattern) Format(dict *tsdb.Dictionary) string {
	names := make([]string, len(p.Items))
	for i, id := range p.Items {
		names[i] = dict.Name(id)
	}
	return fmt.Sprintf("{%s} [sup=%d rec=%d %s]",
		strings.Join(names, ","), p.Support, p.Recurrence, formatIntervals(p.Intervals))
}

func formatIntervals(ipi []Interval) string {
	var b strings.Builder
	b.WriteByte('{')
	for i, iv := range ipi {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "{[%d,%d]:%d}", iv.Start, iv.End, iv.PS)
	}
	b.WriteByte('}')
	return b.String()
}

// Result is the output of a mining run.
type Result struct {
	Patterns []Pattern
	Stats    MineStats
}

// MineStats counts work done during mining; populated when
// Options.CollectStats is set. The counters quantify the effect of the Erec
// pruning bound for the ablation study.
type MineStats struct {
	CandidateItems   int // items surviving the RP-list scan (Algorithm 1)
	PatternsExamined int // patterns whose recurrence was evaluated (getRecurrence calls)
	PatternsPruned   int // extensions cut by the Erec bound before evaluation
	TreeNodes        int // prefix-tree nodes created across all conditional trees
	MaxDepth         int // deepest recursion reached
}

// MaxLen returns the length of the longest pattern in the result (column
// "II" of the paper's Table 8), or zero when empty.
func (r *Result) MaxLen() int {
	max := 0
	for _, p := range r.Patterns {
		if p.Len() > max {
			max = p.Len()
		}
	}
	return max
}

// Canonicalize sorts the result into the canonical order used throughout the
// repository: by pattern length, then lexicographically by item IDs. All
// miners return canonicalized results so they can be compared directly.
func (r *Result) Canonicalize() {
	slices.SortFunc(r.Patterns, func(a, b Pattern) int {
		return comparePatterns(a.Items, b.Items)
	})
}

func comparePatterns(a, b []tsdb.ItemID) int {
	if len(a) != len(b) {
		if len(a) < len(b) {
			return -1
		}
		return 1
	}
	for i := range a {
		if a[i] != b[i] {
			if a[i] < b[i] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// Equal reports whether two results contain the same patterns with the same
// measures (intervals included). Both results must be canonicalized.
func (r *Result) Equal(other *Result) bool {
	if len(r.Patterns) != len(other.Patterns) {
		return false
	}
	for i := range r.Patterns {
		if !patternEqual(r.Patterns[i], other.Patterns[i]) {
			return false
		}
	}
	return true
}

func patternEqual(a, b Pattern) bool {
	if a.Support != b.Support || a.Recurrence != b.Recurrence ||
		len(a.Items) != len(b.Items) || len(a.Intervals) != len(b.Intervals) {
		return false
	}
	for i := range a.Items {
		if a.Items[i] != b.Items[i] {
			return false
		}
	}
	for i := range a.Intervals {
		if a.Intervals[i] != b.Intervals[i] {
			return false
		}
	}
	return true
}
