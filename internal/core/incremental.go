package core

import (
	"cmp"
	"context"
	"fmt"
	"slices"

	"github.com/recurpat/rp/internal/tsdb"
)

// Incremental maintains the RP-list statistics (Algorithm 1's per-item
// state) over an append-only transaction stream, so the candidate items for
// any prefix of the stream are available without rescanning history — the
// online setting of Aref et al.'s incremental partial periodic mining that
// the paper cites as related work. Appends are O(|transaction|).
//
// The accumulated transactions are retained, so a full RP-growth run over
// everything seen so far is available at any point via Mine.
type Incremental struct {
	o      Options
	dict   *tsdb.Dictionary
	states []itemState
	trans  []tsdb.Transaction
	lastTS int64
}

// NewIncremental validates the thresholds and returns an empty accumulator.
func NewIncremental(o Options) (*Incremental, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	return &Incremental{o: o, dict: tsdb.NewDictionary()}, nil
}

// Len reports the number of transactions appended so far.
func (inc *Incremental) Len() int { return len(inc.trans) }

// Append adds one transaction. Timestamps must be strictly increasing
// across calls (the stream is temporally ordered); items may repeat within
// a call and are deduplicated.
func (inc *Incremental) Append(ts int64, items ...string) error {
	if len(inc.trans) > 0 && ts <= inc.lastTS {
		return fmt.Errorf("core: out-of-order append: ts %d after %d", ts, inc.lastTS)
	}
	if len(items) == 0 {
		return fmt.Errorf("core: empty transaction at ts %d", ts)
	}
	ids := make([]tsdb.ItemID, 0, len(items))
	for _, name := range items {
		ids = append(ids, inc.dict.Intern(name))
	}
	slices.Sort(ids)
	uniq := ids[:1]
	for _, id := range ids[1:] {
		if id != uniq[len(uniq)-1] {
			uniq = append(uniq, id)
		}
	}
	for int(uniq[len(uniq)-1]) >= len(inc.states) {
		inc.states = append(inc.states, itemState{})
	}
	for _, id := range uniq {
		st := &inc.states[id]
		switch {
		case !st.seen:
			st.seen = true
			st.sup = 1
			st.idl = ts
			st.ps = 1
		case ts-st.idl <= inc.o.Per:
			st.sup++
			st.ps++
			st.idl = ts
		default:
			st.erec += st.ps / inc.o.MinPS
			st.sup++
			st.ps = 1
			st.idl = ts
		}
	}
	inc.trans = append(inc.trans, tsdb.Transaction{TS: ts, Items: uniq})
	inc.lastTS = ts
	return nil
}

// Candidates returns the current RP-list snapshot: items whose estimated
// maximum recurrence over the stream so far reaches MinRec, in
// support-descending order. The accumulator state is not disturbed.
func (inc *Incremental) Candidates() []RPListEntry {
	var out []RPListEntry
	for id := range inc.states {
		st := inc.states[id]
		if !st.seen {
			continue
		}
		erec := st.erec + st.ps/inc.o.MinPS // close the open run on a copy
		if erec >= inc.o.MinRec {
			out = append(out, RPListEntry{Item: tsdb.ItemID(id), Support: st.sup, Erec: erec})
		}
	}
	slices.SortFunc(out, func(a, b RPListEntry) int {
		if a.Support != b.Support {
			return b.Support - a.Support
		}
		return cmp.Compare(a.Item, b.Item)
	})
	return out
}

// DB materializes the accumulated stream as a database sharing the
// accumulator's dictionary. The returned DB aliases internal state and must
// not be used across subsequent Appends.
func (inc *Incremental) DB() *tsdb.DB {
	return &tsdb.DB{Dict: inc.dict, Trans: inc.trans}
}

// Mine runs RP-growth over everything appended so far.
func (inc *Incremental) Mine() (*Result, error) {
	return Mine(inc.DB(), inc.o)
}

// MineContext runs RP-growth over everything appended so far, stopping at
// the next subtree-task boundary if ctx is cancelled (see MineContext).
func (inc *Incremental) MineContext(ctx context.Context) (*Result, error) {
	return MineContext(ctx, inc.DB(), inc.o)
}
