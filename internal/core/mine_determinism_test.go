package core

import (
	"fmt"
	"math/rand/v2"
	"strings"
	"testing"
)

// renderResult serializes a result byte-for-byte: every pattern with all
// its measures and interesting periodic intervals. Any nondeterminism in
// the miner — map iteration order reaching the output, goroutine
// scheduling leaking into the merge — shows up as a string mismatch.
func renderResult(r *Result) string {
	var b strings.Builder
	for _, p := range r.Patterns {
		fmt.Fprintln(&b, p.String())
	}
	return b.String()
}

// TestMineParallelDeterministic is the determinism gate for the parallel
// miner: the same database mined at Parallelism 1, 4 and 8 must produce
// byte-identical canonical results, and each configuration must reproduce
// itself exactly across repeated runs. Running under -race (scripts/
// check.sh does) additionally turns any unsynchronized merge into a test
// failure.
func TestMineParallelDeterministic(t *testing.T) {
	rng := rand.New(rand.NewPCG(42, 99))
	dbs := 4
	if testing.Short() {
		dbs = 2
	}
	for i := 0; i < dbs; i++ {
		nItems := rng.IntN(25) + 15
		nTS := rng.IntN(600) + 300
		db := randomDB(rng, nItems, nTS, 0.05+rng.Float64()*0.2)
		o := Options{
			Per:    rng.Int64N(12) + 1,
			MinPS:  rng.IntN(4) + 2,
			MinRec: rng.IntN(3) + 1,
		}
		var want string
		for _, par := range []int{1, 4, 8} {
			o.Parallelism = par
			first, err := Mine(db, o)
			if err != nil {
				t.Fatal(err)
			}
			got := renderResult(first)
			if par == 1 {
				want = got
				if want == "" {
					t.Logf("db %d mined empty; parameters too strict, still checking identity", i)
				}
			} else if got != want {
				t.Fatalf("db %d: Parallelism=%d output differs from sequential\n--- parallel ---\n%s--- sequential ---\n%s",
					i, par, got, want)
			}
			// Same configuration twice: goroutine scheduling must not be
			// able to reorder or alter anything.
			again, err := Mine(db, o)
			if err != nil {
				t.Fatal(err)
			}
			if rerun := renderResult(again); rerun != got {
				t.Fatalf("db %d: Parallelism=%d is not reproducible run to run", i, par)
			}
		}
	}
}
