package core

import (
	"math/rand/v2"
	"testing"

	"github.com/recurpat/rp/internal/obs"
)

// benchWorkload is a mid-size synthetic workload for the hot-path benchmarks
// (internal/bench would be an import cycle here): dense enough that
// conditional trees go several levels deep, with the thresholds scaled so a
// few hundred patterns survive. Deterministic by construction, so ns/op and
// allocs/op are comparable across runs; BENCH_core.json tracks them.
func benchWorkload() (Options, *rpTree) {
	rng := rand.New(rand.NewPCG(17, 3))
	db := randomDB(rng, 14, 2000, 0.28)
	o := Options{Per: 4, MinPS: 3, MinRec: 2}
	list := BuildRPList(db, o)
	return o, buildRPTree(db, list)
}

func BenchmarkBuildRPTree(b *testing.B) {
	rng := rand.New(rand.NewPCG(17, 3))
	db := randomDB(rng, 14, 2000, 0.28)
	o := Options{Per: 4, MinPS: 3, MinRec: 2}
	list := BuildRPList(db, o)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tree := buildRPTree(db, list)
		if tree.nodes == 0 {
			b.Fatal("empty tree")
		}
	}
}

func BenchmarkCollectTS(b *testing.B) {
	_, tree := benchWorkload()
	var ms mergeScratch
	// Mix of tail-only collection (fresh tree) and merge-heavy collection
	// (after push-ups), like a mining run sees.
	for r := len(tree.order) - 1; r > len(tree.order)/2; r-- {
		tree.pushUp(r)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for r := len(tree.order) / 2; r >= 0; r-- {
			ts := tree.collectTS(&ms, r, ms.getBuf())
			if len(ts) == 0 {
				b.Fatal("empty ts")
			}
			ms.putBuf(ts)
		}
	}
}

func BenchmarkConditionalTree(b *testing.B) {
	o, tree := benchWorkload()
	var arena nodeArena
	var ms mergeScratch
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		built := 0
		for r := len(tree.order) - 1; r >= 1; r-- {
			mark := arena.mark()
			if ct := tree.conditionalTree(&arena, &ms, o, r, true); ct != nil {
				built++
			}
			arena.reset(mark)
		}
		if built == 0 {
			b.Fatal("no conditional trees built")
		}
	}
}

func BenchmarkMineEndToEnd(b *testing.B) {
	rng := rand.New(rand.NewPCG(17, 3))
	db := randomDB(rng, 14, 2000, 0.28)
	o := Options{Per: 4, MinPS: 3, MinRec: 2}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Mine(db, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Patterns) == 0 {
			b.Fatal("no patterns")
		}
	}
}

func BenchmarkMineEndToEndParallel(b *testing.B) {
	rng := rand.New(rand.NewPCG(17, 3))
	db := randomDB(rng, 14, 2000, 0.28)
	o := Options{Per: 4, MinPS: 3, MinRec: 2, Parallelism: 4}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Mine(db, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Patterns) == 0 {
			b.Fatal("no patterns")
		}
	}
}

// BenchmarkMineEndToEndTraced is BenchmarkMineEndToEnd with a phase trace
// attached: its ns/op measures the tracing overhead on the same workload
// (Options.Trace == nil stays the untraced baseline above), and its
// reported "<phase>-ns/op" / "<phase>-count/op" metrics carry the phase
// attribution into BENCH_core.json via make bench-core.
func BenchmarkMineEndToEndTraced(b *testing.B) {
	rng := rand.New(rand.NewPCG(17, 3))
	db := randomDB(rng, 14, 2000, 0.28)
	o := Options{Per: 4, MinPS: 3, MinRec: 2, Trace: obs.NewTrace()}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := Mine(db, o)
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Patterns) == 0 {
			b.Fatal("no patterns")
		}
	}
	b.StopTimer()
	for k, v := range o.Trace.Report().BenchMetrics() {
		b.ReportMetric(v, k)
	}
}
