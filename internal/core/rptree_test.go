package core

import (
	"reflect"
	"testing"

	"github.com/recurpat/rp/internal/tsdb"
)

// buildPaperTree constructs the RP-tree of the running example (paper
// Figure 5(b)).
func buildPaperTree(t *testing.T) (*tsdb.DB, *RPList, *rpTree) {
	t.Helper()
	db := paperDB(t)
	list := BuildRPList(db, paperOptions())
	tree := buildRPTree(db, list)
	return db, list, tree
}

func TestRPTreeStructurePaperExample(t *testing.T) {
	db, list, tree := buildPaperTree(t)
	var ms mergeScratch
	// Six candidate items -> six header chains.
	if len(tree.headers) != 6 {
		t.Fatalf("headers = %d, want 6", len(tree.headers))
	}
	// Every transaction's full candidate projection timestamps must be
	// recoverable: collecting each item's subtree ts covers exactly the
	// transactions containing that item.
	for rank, item := range tree.order {
		runs := ms.runs[:0]
		for n := tree.headers[rank]; n != nilNode; n = tree.arena.nodes[n].link {
			runs = tree.appendSubtreeRuns(runs, n)
		}
		ms.runs = runs
		ts := ms.merge(nil)
		want := db.TSList([]tsdb.ItemID{item})
		if !reflect.DeepEqual(ts, want) {
			t.Errorf("item %s subtree ts = %v, want %v", db.Dict.Name(item), ts, want)
		}
	}
	// Figure 5(b): the root's children are exactly the distinct leading
	// items of the candidate projections... verify against the actual
	// projections instead of hard-coding.
	roots := map[tsdb.ItemID]bool{}
	var proj []tsdb.ItemID
	for _, tr := range db.Trans {
		proj = list.Project(proj[:0], tr.Items)
		if len(proj) > 0 {
			roots[proj[0]] = true
		}
	}
	got := 0
	for c := tree.arena.nodes[tree.root].firstChild; c != nilNode; c = tree.arena.nodes[c].nextSibling {
		got++
	}
	if got != len(roots) {
		t.Errorf("root children = %d, want %d", got, len(roots))
	}
	// The dense root index must agree with the sibling list.
	for rk, ci := range tree.rootByRank {
		if ci == nilNode {
			continue
		}
		if tree.arena.nodes[ci].rank != int32(rk) || tree.arena.nodes[ci].parent != tree.root {
			t.Errorf("rootByRank[%d] inconsistent", rk)
		}
	}
}

func TestRPTreeNoSupportCountsOnlyTailTS(t *testing.T) {
	// Paper Section 4.2.1: only tail nodes carry ts-lists. Count timestamps
	// across the tree: they must equal |TDB| projections (each transaction
	// recorded exactly once), and in the freshly built tree every ts-list
	// must be a single sorted run (transactions arrive in time order).
	db, _, tree := buildPaperTree(t)
	total := 0
	for i := range tree.arena.nodes {
		n := &tree.arena.nodes[i]
		total += len(n.ts)
		if len(n.runs) != 0 {
			t.Errorf("node %d has %d run boundaries in a fresh tree", i, len(n.runs))
		}
	}
	if total != db.Len() {
		t.Errorf("tree holds %d timestamps, want %d (one per transaction)", total, db.Len())
	}
}

func TestCollectTSMatchesScan(t *testing.T) {
	db, _, tree := buildPaperTree(t)
	var ms mergeScratch
	// Before any push-up, the bottom item's collectTS must equal its scan
	// ts-list (all its nodes are tail nodes).
	bottomRank := len(tree.order) - 1
	bottom := tree.order[bottomRank]
	got := tree.collectTS(&ms, bottomRank, nil)
	want := db.TSList([]tsdb.ItemID{bottom})
	if !reflect.DeepEqual(got, want) {
		t.Errorf("collectTS(%s) = %v, want %v", db.Dict.Name(bottom), got, want)
	}
}

func TestPushUpPreservesParentTS(t *testing.T) {
	// Lemma 3: pushing the bottom item's ts-lists up lets the next item's
	// collectTS still see every transaction containing it.
	db, _, tree := buildPaperTree(t)
	var ms mergeScratch
	for r := len(tree.order) - 1; r > 0; r-- {
		tree.pushUp(r)
		got := tree.collectTS(&ms, r-1, nil)
		want := db.TSList([]tsdb.ItemID{tree.order[r-1]})
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("after pushUp(%d): collectTS(%s) = %v, want %v",
				r, db.Dict.Name(tree.order[r-1]), got, want)
		}
	}
}

func TestConditionalTreePaperExample(t *testing.T) {
	// Paper Figure 6: the conditional tree for suffix item 'f' contains
	// only item 'e' (the other prefix items fail the Erec check), and the
	// ts-list of 'e' in it is TS^ef = {3,5,6,10,11,12}.
	db, _, tree := buildPaperTree(t)
	var arena nodeArena
	var ms mergeScratch
	fID, _ := db.Dict.Lookup("f")
	fRank := -1
	for r, it := range tree.order {
		if it == fID {
			fRank = r
		}
	}
	if fRank != len(tree.order)-1 {
		t.Fatalf("f should be the bottom item, got rank %d", fRank)
	}
	cond := tree.conditionalTree(&arena, &ms, paperOptions(), fRank, false)
	if cond == nil {
		t.Fatal("conditional tree for f is empty")
	}
	eID, _ := db.Dict.Lookup("e")
	if len(cond.order) != 1 || cond.order[0] != eID {
		names := make([]string, len(cond.order))
		for i, it := range cond.order {
			names[i] = db.Dict.Name(it)
		}
		t.Fatalf("CT_f items = %v, want [e]", names)
	}
	ts := cond.collectTS(&ms, 0, nil)
	want := []int64{3, 5, 6, 10, 11, 12}
	if !reflect.DeepEqual(ts, want) {
		t.Errorf("TS^ef = %v, want %v", ts, want)
	}
}

func TestConditionalTreeSubtreeModeEquivalent(t *testing.T) {
	// The parallel miner's subtree-merging conditional construction must
	// produce the same conditional tree contents as the sequential
	// push-up-based one, for the bottom item (where both apply unmodified).
	_, _, tree1 := buildPaperTree(t)
	_, _, tree2 := buildPaperTree(t)
	var a1, a2 nodeArena
	var ms mergeScratch
	r := len(tree1.order) - 1
	seqCT := tree1.conditionalTree(&a1, &ms, paperOptions(), r, false)
	parCT := tree2.conditionalTree(&a2, &ms, paperOptions(), r, true)
	if (seqCT == nil) != (parCT == nil) {
		t.Fatalf("one mode produced nil: %v vs %v", seqCT, parCT)
	}
	if seqCT == nil {
		return
	}
	if !reflect.DeepEqual(seqCT.order, parCT.order) {
		t.Fatalf("orders differ: %v vs %v", seqCT.order, parCT.order)
	}
	for rank := range seqCT.order {
		a := seqCT.collectTS(&ms, rank, nil)
		b := parCT.collectTS(&ms, rank, nil)
		if !reflect.DeepEqual(a, b) {
			t.Errorf("rank %d ts differ: %v vs %v", rank, a, b)
		}
	}
}

func TestMineStatsCounters(t *testing.T) {
	db := paperDB(t)
	o := paperOptions()
	o.CollectStats = true
	res, err := Mine(db, o)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CandidateItems != 6 {
		t.Errorf("CandidateItems = %d, want 6", res.Stats.CandidateItems)
	}
	if res.Stats.PatternsExamined < len(res.Patterns) {
		t.Errorf("Examined %d < %d patterns found", res.Stats.PatternsExamined, len(res.Patterns))
	}
	if res.Stats.TreeNodes == 0 || res.Stats.MaxDepth == 0 {
		t.Errorf("tree stats empty: %+v", res.Stats)
	}

	// Disabling pruning must not change output but must examine at least
	// as many patterns.
	o2 := o
	o2.DisableErecPruning = true
	res2, err := Mine(db, o2)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(res2) {
		t.Error("pruning changed the result")
	}
	if res2.Stats.PatternsExamined < res.Stats.PatternsExamined {
		t.Errorf("pruning off examined fewer patterns: %d vs %d",
			res2.Stats.PatternsExamined, res.Stats.PatternsExamined)
	}
}

func TestEmptyAndDegenerateDatabases(t *testing.T) {
	empty := &tsdb.DB{Dict: tsdb.NewDictionary()}
	res, err := Mine(empty, paperOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("empty DB produced patterns: %v", res.Patterns)
	}
	// Single transaction: a run of one timestamp; recurring only if
	// minPS=1 and minRec=1.
	b := tsdb.NewBuilder()
	b.Add("x", 5)
	db := b.Build()
	res, err = Mine(db, Options{Per: 1, MinPS: 1, MinRec: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 1 || res.Patterns[0].Support != 1 {
		t.Errorf("singleton DB: %v", res.Patterns)
	}
	res, err = Mine(db, Options{Per: 1, MinPS: 2, MinRec: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 0 {
		t.Errorf("minPS=2 on singleton must find nothing: %v", res.Patterns)
	}
}

func TestOptionsValidation(t *testing.T) {
	bad := []Options{
		{},
		{Per: 1},
		{Per: 1, MinPS: 1},
		{Per: -1, MinPS: 1, MinRec: 1},
		{Per: 1, MinPS: -1, MinRec: 1},
		{Per: 1, MinPS: 1, MinRec: -1},
		{Per: 1, MinPS: 1, MinRec: 1, MaxLen: -1},
		{Per: 1, MinPS: 1, MinRec: 1, Parallelism: -2},
	}
	for _, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("Validate(%+v) should fail", o)
		}
		if _, err := Mine(&tsdb.DB{Dict: tsdb.NewDictionary()}, o); err == nil {
			t.Errorf("Mine with %+v should fail", o)
		}
	}
	if err := (Options{Per: 1, MinPS: 1, MinRec: 1}).Validate(); err != nil {
		t.Errorf("minimal valid options rejected: %v", err)
	}
}

func TestMinPSFromPercent(t *testing.T) {
	db := paperDB(t) // 12 transactions
	cases := []struct {
		pct  float64
		want int
	}{
		{0, 1}, {1, 1}, {25, 3}, {50, 6}, {100, 12}, {200, 24},
	}
	for _, c := range cases {
		if got := MinPSFromPercent(db, c.pct); got != c.want {
			t.Errorf("MinPSFromPercent(%v%%) = %d, want %d", c.pct, got, c.want)
		}
	}
}

func TestLemma2TreeSizeBound(t *testing.T) {
	// Paper Lemma 2: the RP-tree size (nodes, without the root) is bounded
	// by the total size of the candidate item projections.
	db := paperDB(t)
	list := BuildRPList(db, paperOptions())
	tree := buildRPTree(db, list)
	bound := 0
	var proj []tsdb.ItemID
	for _, tr := range db.Trans {
		proj = list.Project(proj[:0], tr.Items)
		bound += len(proj)
	}
	if tree.nodes > bound {
		t.Errorf("tree has %d nodes, Lemma 2 bound is %d", tree.nodes, bound)
	}
	// Prefix sharing should make it strictly smaller here.
	if tree.nodes >= bound {
		t.Errorf("no prefix sharing: %d nodes vs bound %d", tree.nodes, bound)
	}
	// The slab holds exactly the created nodes plus the root.
	if len(tree.arena.nodes) != tree.nodes+1 {
		t.Errorf("slab has %d entries, want %d nodes + 1 root", len(tree.arena.nodes), tree.nodes)
	}
}
