package core

import (
	"context"
	"errors"
	"math/rand/v2"
	"testing"

	"github.com/recurpat/rp/internal/tsdb"
)

func TestShardSpecValidate(t *testing.T) {
	cases := []struct {
		spec ShardSpec
		ok   bool
	}{
		{ShardSpec{0, 1}, true},
		{ShardSpec{0, 4}, true},
		{ShardSpec{3, 4}, true},
		{ShardSpec{4, 4}, false},
		{ShardSpec{-1, 4}, false},
		{ShardSpec{0, 0}, false},
		{ShardSpec{0, -2}, false},
	}
	for _, c := range cases {
		if err := c.spec.Validate(); (err == nil) != c.ok {
			t.Errorf("ShardSpec%+v.Validate() = %v, want ok=%v", c.spec, err, c.ok)
		}
	}
}

func TestShardSpecOwnsPartition(t *testing.T) {
	// For every count, the shards partition the ranks: each rank is owned
	// by exactly one shard.
	for count := 1; count <= 7; count++ {
		for rank := 0; rank < 50; rank++ {
			owners := 0
			for idx := 0; idx < count; idx++ {
				if (ShardSpec{Index: idx, Count: count}).Owns(rank) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("rank %d owned by %d of %d shards", rank, owners, count)
			}
		}
	}
}

// mergeShards reproduces the reducer: concatenate shard patterns and
// canonicalize.
func mergeShards(parts []*Result) *Result {
	merged := &Result{}
	for _, p := range parts {
		merged.Patterns = append(merged.Patterns, p.Patterns...)
	}
	merged.Canonicalize()
	return merged
}

// TestMineShardEquivalence is the core half of the reducer-determinism
// property: for shard counts 1, 2, 3 and 7, mining every shard separately
// and merging reproduces the single-box MineContext output exactly, across
// item orders and the pruning ablation.
func TestMineShardEquivalence(t *testing.T) {
	ctx := context.Background()
	for seed := uint64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewPCG(seed, 7))
		db := randomDB(rng, 8, 60, 0.35)
		for _, o := range []Options{
			{Per: 4, MinPS: 2, MinRec: 1},
			{Per: 6, MinPS: 3, MinRec: 2, Parallelism: 3},
			{Per: 4, MinPS: 2, MinRec: 1, ItemOrder: Lexicographic},
			{Per: 4, MinPS: 2, MinRec: 1, DisableErecPruning: true},
			{Per: 5, MinPS: 2, MinRec: 1, MaxLen: 2},
		} {
			o.CollectStats = true
			want, err := MineContext(ctx, db, o)
			if err != nil {
				t.Fatalf("seed %d: MineContext: %v", seed, err)
			}
			for _, count := range []int{1, 2, 3, 7} {
				parts := make([]*Result, count)
				for idx := 0; idx < count; idx++ {
					parts[idx], err = MineShardContext(ctx, db, o, ShardSpec{Index: idx, Count: count})
					if err != nil {
						t.Fatalf("seed %d count %d shard %d: %v", seed, count, idx, err)
					}
				}
				got := mergeShards(parts)
				if !got.Equal(want) {
					t.Fatalf("seed %d opts %+v: %d-shard merge diverges from single-box mine: %d vs %d patterns",
						seed, o, count, len(got.Patterns), len(want.Patterns))
				}
				// Shard pattern counts sum exactly: ranks partition, so no
				// pattern is mined twice.
				sum := 0
				for _, p := range parts {
					sum += len(p.Patterns)
				}
				if sum != len(want.Patterns) {
					t.Fatalf("seed %d count %d: shard patterns sum to %d, want %d", seed, count, sum, len(want.Patterns))
				}
			}
		}
	}
}

// TestMineShardSingleIsFull pins that the {0,1} spec is exactly MineContext.
func TestMineShardSingleIsFull(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 9))
	db := randomDB(rng, 6, 50, 0.4)
	o := Options{Per: 4, MinPS: 2, MinRec: 1, CollectStats: true}
	want, err := MineContext(context.Background(), db, o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := MineShardContext(context.Background(), db, o, ShardSpec{Index: 0, Count: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatalf("single-shard mine diverges: %d vs %d patterns", len(got.Patterns), len(want.Patterns))
	}
	if got.Stats.CandidateItems != want.Stats.CandidateItems {
		t.Errorf("CandidateItems = %d, want %d", got.Stats.CandidateItems, want.Stats.CandidateItems)
	}
}

// TestMineShardCancel pins the cancellation contract: a cancelled context
// yields a *CancelError, as MineContext does.
func TestMineShardCancel(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 2))
	db := randomDB(rng, 6, 50, 0.4)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := MineShardContext(ctx, db, Options{Per: 4, MinPS: 2, MinRec: 1}, ShardSpec{Index: 0, Count: 2})
	var cerr *CancelError
	if !errors.As(err, &cerr) {
		t.Fatalf("want *CancelError, got %v", err)
	}
}

// TestMineShardBadSpec pins spec validation at the entry point.
func TestMineShardBadSpec(t *testing.T) {
	db := tsdb.NewBuilder().Build()
	_, err := MineShardContext(context.Background(), db, Options{Per: 1, MinPS: 1, MinRec: 1}, ShardSpec{Index: 2, Count: 2})
	if err == nil {
		t.Fatal("want error for out-of-range shard index")
	}
}
