package core

import (
	"fmt"
	"slices"

	"github.com/recurpat/rp/internal/tsdb"
)

// bruteForceMaxItems caps the lattice size MineBruteForce will enumerate;
// 2^20 subsets of 20 items is the largest search that stays comfortably in
// test budgets.
const bruteForceMaxItems = 20

// MineBruteForce enumerates every non-empty itemset over the items that
// occur in db, computes its timestamp list by direct intersection, and
// keeps the recurring ones. No pruning beyond empty ts-lists is applied, so
// the output is ground truth for the model regardless of any property the
// faster miners rely on. Intended for tests; it refuses databases with more
// than 20 distinct occurring items.
func MineBruteForce(db *tsdb.DB, o Options) (*Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	all := db.ItemTSLists()
	var items []tsdb.ItemID
	for id, ts := range all {
		if len(ts) > 0 {
			items = append(items, tsdb.ItemID(id))
		}
	}
	if len(items) > bruteForceMaxItems {
		return nil, fmt.Errorf("core: brute force refuses %d items (max %d)", len(items), bruteForceMaxItems)
	}
	res := &Result{}
	var grow func(start int, prefix []tsdb.ItemID, ts []int64)
	grow = func(start int, prefix []tsdb.ItemID, ts []int64) {
		for i := start; i < len(items); i++ {
			var ext []int64
			if len(prefix) == 0 {
				ext = all[items[i]]
			} else {
				ext = IntersectTS(nil, ts, all[items[i]])
			}
			if len(ext) == 0 {
				continue
			}
			next := append(prefix[:len(prefix):len(prefix)], items[i])
			if o.MaxLen == 0 || len(next) <= o.MaxLen {
				rec, ipi := Recurrence(ext, o.Per, o.MinPS)
				if rec >= o.MinRec {
					cp := make([]tsdb.ItemID, len(next))
					copy(cp, next)
					slices.Sort(cp)
					res.Patterns = append(res.Patterns, Pattern{
						Items:      cp,
						Support:    len(ext),
						Recurrence: rec,
						Intervals:  ipi,
					})
				}
				if o.MaxLen == 0 || len(next) < o.MaxLen {
					grow(i+1, next, ext)
				}
			}
		}
	}
	grow(0, nil, nil)
	res.Canonicalize()
	return res, nil
}
