package serve

import (
	"context"
	"errors"
	"sync/atomic"
	"time"
)

// errShed reports that admission control refused a mining run: either the
// wait queue was already full, or the request queued but no slot freed up
// within the queue timeout. Handlers translate it into 429 Too Many
// Requests so clients know to back off and retry.
var errShed = errors.New("serve: admission queue full, try again later")

// admission is a counting semaphore with a bounded wait queue. At most
// `slots` mines run concurrently; up to `maxQueue` further requests wait —
// each for at most `timeout` — and everything beyond that is shed
// immediately. Bounding both dimensions keeps a burst from stacking up
// goroutines (and their eventual mines) faster than the miners can drain
// them.
type admission struct {
	sem      chan struct{} // buffered; one token per running mine
	queued   atomic.Int64  // requests currently waiting for a token
	maxQueue int64
	timeout  time.Duration // 0 = wait only on ctx
}

func newAdmission(slots int, maxQueue int, timeout time.Duration) *admission {
	if slots < 1 {
		slots = 1
	}
	if maxQueue < 0 {
		maxQueue = 0
	}
	return &admission{
		sem:      make(chan struct{}, slots),
		maxQueue: int64(maxQueue),
		timeout:  timeout,
	}
}

// acquire blocks until a slot is free, the queue timeout fires (errShed),
// the queue is already full (errShed, immediately), or ctx is done
// (ctx.Err()). A nil error means the caller holds a slot and must release
// it.
func (a *admission) acquire(ctx context.Context) error {
	// Fast path: a slot is free, skip the queue accounting entirely.
	select {
	case a.sem <- struct{}{}:
		return nil
	default:
	}

	if a.queued.Add(1) > a.maxQueue {
		a.queued.Add(-1)
		return errShed
	}
	defer a.queued.Add(-1)

	var timeoutCh <-chan time.Time
	if a.timeout > 0 {
		t := time.NewTimer(a.timeout)
		defer t.Stop()
		timeoutCh = t.C
	}
	select {
	case a.sem <- struct{}{}:
		return nil
	case <-timeoutCh:
		return errShed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// release returns the slot taken by a successful acquire.
func (a *admission) release() { <-a.sem }

// inFlight reports how many mines currently hold a slot.
func (a *admission) inFlight() int { return len(a.sem) }

// waiting reports how many requests are queued for a slot.
func (a *admission) waiting() int { return int(a.queued.Load()) }
