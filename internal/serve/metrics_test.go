package serve

import (
	"bufio"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/recurpat/rp/internal/obs"
)

// parseHistogram pulls one histogram family out of exposition text:
// ordered (le, cumulative count) pairs plus the _sum and _count samples.
func parseHistogram(t *testing.T, text, name string) (les []string, counts []int64, sum float64, count int64) {
	t.Helper()
	sc := bufio.NewScanner(strings.NewReader(text))
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, name+"_bucket{le=\""):
			rest := strings.TrimPrefix(line, name+"_bucket{le=\"")
			le, after, ok := strings.Cut(rest, "\"} ")
			if !ok {
				t.Fatalf("malformed bucket line %q", line)
			}
			n, err := strconv.ParseInt(after, 10, 64)
			if err != nil {
				t.Fatalf("bucket count in %q: %v", line, err)
			}
			les = append(les, le)
			counts = append(counts, n)
		case strings.HasPrefix(line, name+"_sum "):
			v, err := strconv.ParseFloat(strings.TrimPrefix(line, name+"_sum "), 64)
			if err != nil {
				t.Fatalf("sum line %q: %v", line, err)
			}
			sum = v
		case strings.HasPrefix(line, name+"_count "):
			v, err := strconv.ParseInt(strings.TrimPrefix(line, name+"_count "), 10, 64)
			if err != nil {
				t.Fatalf("count line %q: %v", line, err)
			}
			count = v
		}
	}
	if len(les) == 0 {
		t.Fatalf("exposition has no %s_bucket series:\n%s", name, text)
	}
	return les, counts, sum, count
}

// TestCostHistogramExposition pins the new per-request cost families'
// exposition under concurrent observation: exact `le` bounds, cumulative
// monotone buckets, and sum/count agreeing with what was observed.
func TestCostHistogramExposition(t *testing.T) {
	var m metrics
	// Values chosen to pin bucket semantics: one exactly on the 64KiB
	// bound (le is inclusive), one just past it, one in the 16MiB bucket,
	// one beyond every bound (the +Inf bucket).
	costs := []struct {
		alloc uint64
		cpu   time.Duration
	}{
		{64 << 10, time.Millisecond},
		{64<<10 + 1, 2 * time.Millisecond},
		{10 << 20, 40 * time.Millisecond},
		{8 << 30, 2 * time.Second},
	}
	const rounds = 50
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				c := costs[(g+i)%len(costs)]
				m.observeCost(c.alloc, c.cpu)
			}
		}(g)
	}
	wg.Wait()

	var b strings.Builder
	p := obs.NewPromWriter(&b)
	m.writeProm(p)
	if err := p.Err(); err != nil {
		t.Fatal(err)
	}
	text := b.String()

	les, counts, sum, count := parseHistogram(t, text, "rpserved_request_alloc_bytes")
	wantLes := []string{"65536", "1048576", "16777216", "268435456", "4294967296", "+Inf"}
	if len(les) != len(wantLes) {
		t.Fatalf("le bounds %v, want %v", les, wantLes)
	}
	for i := range wantLes {
		if les[i] != wantLes[i] {
			t.Errorf("le[%d] = %q, want %q", i, les[i], wantLes[i])
		}
	}
	for i := 1; i < len(counts); i++ {
		if counts[i] < counts[i-1] {
			t.Errorf("buckets not cumulative: %v", counts)
		}
	}
	total := int64(4 * rounds)
	if counts[len(counts)-1] != total || count != total {
		t.Errorf("+Inf bucket %d, _count %d, want %d", counts[len(counts)-1], count, total)
	}
	// Each value ran 50 times; the exact-bound value must land in the
	// 64KiB bucket (inclusive le) and the just-past value outside it.
	if counts[0] != rounds {
		t.Errorf("le=65536 bucket = %d, want %d (boundary value inclusive, 65537 excluded)", counts[0], rounds)
	}
	var wantSum float64
	for _, c := range costs {
		wantSum += float64(c.alloc) * rounds
	}
	if sum != wantSum {
		t.Errorf("alloc sum = %v, want %v", sum, wantSum)
	}

	_, cpuCounts, cpuSum, cpuCount := parseHistogram(t, text, "rpserved_request_cpu_seconds")
	if cpuCount != total || cpuCounts[len(cpuCounts)-1] != total {
		t.Errorf("cpu _count %d, +Inf %d, want %d", cpuCount, cpuCounts[len(cpuCounts)-1], total)
	}
	var wantCPU float64
	for _, c := range costs {
		wantCPU += c.cpu.Seconds() * rounds
	}
	if diff := cpuSum - wantCPU; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("cpu sum = %v, want %v", cpuSum, wantCPU)
	}
}

// TestFormatBytesExact pins the bucket-bound formatter used for the JSON
// stats view of the alloc histogram.
func TestFormatBytesExact(t *testing.T) {
	for n, want := range map[int64]string{
		64 << 10:  "64KiB",
		1 << 20:   "1MiB",
		16 << 20:  "16MiB",
		256 << 20: "256MiB",
		4 << 30:   "4GiB",
	} {
		if got := formatBytes(n); got != want {
			t.Errorf("formatBytes(%d) = %q, want %q", n, got, want)
		}
	}
}
