package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

func entryN(i int, elapsedMS float64) *RequestEntry {
	return &RequestEntry{ID: fmt.Sprintf("r%03d", i), Outcome: "ok", Status: 200, ElapsedMS: elapsedMS}
}

func TestJournalEvictionOrder(t *testing.T) {
	j := newJournal(4, -1)
	for i := 0; i < 10; i++ {
		j.add(entryN(i, 1))
	}
	recent, slow, total := j.snapshot()
	if total != 10 {
		t.Errorf("total = %d, want 10", total)
	}
	if len(slow) != 0 {
		t.Errorf("negative slow threshold retained %d slow entries", len(slow))
	}
	// The ring keeps the newest 4, reported newest-first.
	want := []string{"r009", "r008", "r007", "r006"}
	if len(recent) != len(want) {
		t.Fatalf("recent has %d entries, want %d", len(recent), len(want))
	}
	for i, e := range recent {
		if e.ID != want[i] {
			t.Errorf("recent[%d] = %s, want %s", i, e.ID, want[i])
		}
	}
	if j.find("r005") != nil {
		t.Error("evicted entry still findable")
	}
	if e := j.find("r008"); e == nil || e.ID != "r008" {
		t.Error("retained entry not findable")
	}
}

func TestJournalSlowBucketRetention(t *testing.T) {
	j := newJournal(2, 100*time.Millisecond)
	j.add(entryN(0, 250)) // slow
	j.add(entryN(1, 500)) // slower
	for i := 2; i < 6; i++ {
		j.add(entryN(i, 1)) // fast churn that evicts 0 and 1 from the ring
	}
	recent, slow, _ := j.snapshot()
	for _, e := range recent {
		if e.ID == "r000" || e.ID == "r001" {
			t.Errorf("slow entry %s still in the 2-slot ring after 4 fast adds", e.ID)
		}
	}
	// The slow bucket keeps them past ring churn, slowest first.
	if len(slow) != 2 || slow[0].ID != "r001" || slow[1].ID != "r000" {
		t.Fatalf("slow bucket = %v, want [r001 r000]", slowIDs(slow))
	}
	if j.find("r001") == nil {
		t.Error("slow-bucket entry not findable after ring eviction")
	}

	// Overflowing the bucket keeps only the slowBucketSize slowest.
	for i := 10; i < 10+2*slowBucketSize; i++ {
		j.add(entryN(i, float64(1000+i)))
	}
	_, slow, _ = j.snapshot()
	if len(slow) != slowBucketSize {
		t.Fatalf("slow bucket has %d entries, want cap %d", len(slow), slowBucketSize)
	}
	for i := 1; i < len(slow); i++ {
		if slow[i-1].ElapsedMS < slow[i].ElapsedMS {
			t.Fatalf("slow bucket out of order at %d: %v", i, slowIDs(slow))
		}
	}
	if slow[len(slow)-1].ElapsedMS < 1000 {
		t.Errorf("a pre-overflow entry survived %d slower ones: %v", 2*slowBucketSize, slowIDs(slow))
	}
}

func slowIDs(slow []*RequestEntry) []string {
	ids := make([]string, len(slow))
	for i, e := range slow {
		ids[i] = e.ID
	}
	return ids
}

// TestJournalConcurrent hammers add, snapshot and find from many
// goroutines; run under -race by make check.
func TestJournalConcurrent(t *testing.T) {
	j := newJournal(8, 50*time.Millisecond)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				j.add(entryN(w*1000+i, float64(i%120)))
				if i%17 == 0 {
					recent, slow, _ := j.snapshot()
					if len(recent) > 8 || len(slow) > slowBucketSize {
						t.Errorf("snapshot over caps: %d recent, %d slow", len(recent), len(slow))
						return
					}
				}
				if i%29 == 0 {
					j.find(fmt.Sprintf("r%03d", i))
				}
			}
		}(w)
	}
	wg.Wait()
	_, _, total := j.snapshot()
	if total != 8*200 {
		t.Errorf("total = %d, want %d", total, 8*200)
	}
}

// TestDebugRequestsJournal drives one server through the three interesting
// outcomes — a served mine, a cache hit, and a shed request — and checks
// /debug/requests lists all three with per-phase breakdowns, and that the
// served run's span timeline exports as valid Chrome trace-event JSON.
func TestDebugRequestsJournal(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	fn := func(ctx context.Context, db *tsdb.DB, o core.Options) (*core.Result, error) {
		started <- struct{}{}
		<-release
		return core.MineContext(ctx, db, o)
	}
	_, hs := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1}, fn)

	servedBody := `{"db":"shop","per":4,"minPS":3,"minRec":1}`
	servedDone := make(chan int, 1)
	go func() {
		status, _ := postMine(t, hs.URL, servedBody)
		servedDone <- status
	}()
	<-started
	// Different key, slot busy, no queue: shed.
	if status, _ := postMine(t, hs.URL, `{"db":"shop","per":3,"minPS":2}`); status != http.StatusTooManyRequests {
		t.Fatalf("saturated request not shed: status %d", status)
	}
	close(release)
	if status := <-servedDone; status != http.StatusOK {
		t.Fatalf("served mine: status %d", status)
	}
	if status, m := postMine(t, hs.URL, servedBody); status != http.StatusOK || m["cached"] != true {
		t.Fatalf("repeat not cached: status %d cached=%v", status, m["cached"])
	}

	resp, body := getBody(t, hs.URL+"/debug/requests?format=json")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("debug/requests json: status %d", resp.StatusCode)
	}
	var jr struct {
		Total  int64           `json:"total"`
		Recent []*RequestEntry `json:"recent"`
	}
	decodeJSON(t, body, &jr)
	if jr.Total != 3 {
		t.Errorf("journal total = %d, want 3", jr.Total)
	}
	byOutcome := map[string]*RequestEntry{}
	for _, e := range jr.Recent {
		byOutcome[e.Outcome] = e
	}
	served, hit, shed := byOutcome["ok"], byOutcome["cache-hit"], byOutcome["shed"]
	if served == nil || hit == nil || shed == nil {
		t.Fatalf("journal lacks an outcome: have %v", slowIDs(jr.Recent))
	}
	// Executed and cached entries carry the producing run's phase
	// breakdown; the cached one is marked historic.
	for name, e := range map[string]*RequestEntry{"served": served, "cache-hit": hit} {
		phases := map[string]obs.PhaseStat{}
		for _, st := range e.Phases {
			phases[st.Phase] = st
		}
		for _, want := range []string{"scan", "tree-build", "mine", "finalize"} {
			if phases[want].Count == 0 {
				t.Errorf("%s entry lacks the %s phase: %v", name, want, e.Phases)
			}
		}
		if !e.HasTrace {
			t.Errorf("%s entry has no downloadable trace", name)
		}
	}
	if hit.Historic != true || served.Historic != false {
		t.Errorf("historic flags: served=%v hit=%v, want false/true", served.Historic, hit.Historic)
	}
	if shed.Status != http.StatusTooManyRequests || len(shed.Phases) != 0 || shed.HasTrace {
		t.Errorf("shed entry = %+v, want 429 with no phases or trace", shed)
	}

	// The HTML view lists the same requests.
	resp, html := getBody(t, hs.URL+"/debug/requests")
	if resp.StatusCode != http.StatusOK || !strings.Contains(resp.Header.Get("Content-Type"), "text/html") {
		t.Fatalf("debug/requests html: status %d type %q", resp.StatusCode, resp.Header.Get("Content-Type"))
	}
	for _, want := range []string{served.ID, hit.ID, shed.ID, "cache-hit", "shed", "scan", "/debug/requests/trace?id=" + served.ID} {
		if !strings.Contains(html, want) {
			t.Errorf("html view lacks %q", want)
		}
	}

	// The served request's timeline round-trips through the trace-event
	// exporter's own validator.
	resp, trace := getBody(t, hs.URL+"/debug/requests/trace?id="+served.ID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: status %d body %s", resp.StatusCode, trace)
	}
	spans, err := obs.ValidateTraceEvents(strings.NewReader(trace))
	if err != nil {
		t.Fatalf("exported trace invalid: %v", err)
	}
	if spans == 0 {
		t.Fatal("exported trace has no spans")
	}
	if resp, _ := getBody(t, hs.URL+"/debug/requests/trace?id=nope"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown trace id: status %d, want 404", resp.StatusCode)
	}
	if resp, _ := getBody(t, hs.URL+"/debug/requests/trace?id="+shed.ID); resp.StatusCode != http.StatusNotFound {
		t.Errorf("traceless entry: status %d, want 404", resp.StatusCode)
	}
}

// TestDebugRequestsDisabled checks a negative JournalSize turns the
// endpoints off and keeps the mine path timeline-free.
func TestDebugRequestsDisabled(t *testing.T) {
	srv, hs := newTestServer(t, Config{JournalSize: -1}, nil)
	if srv.journal != nil {
		t.Fatal("journal allocated despite JournalSize=-1")
	}
	if status, _ := postMine(t, hs.URL, `{"db":"shop","per":4,"minPS":3}`); status != http.StatusOK {
		t.Fatal("mine failed with journal disabled")
	}
	for _, path := range []string{"/debug/requests", "/debug/requests?format=json", "/debug/requests/trace?id=x"} {
		if resp, _ := getBody(t, hs.URL+path); resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s with journal disabled: status %d, want 404", path, resp.StatusCode)
		}
	}
}

// TestTimelineSpansDisabled checks TimelineSpans<0 journals requests with
// phase breakdowns but retains no span timelines.
func TestTimelineSpansDisabled(t *testing.T) {
	_, hs := newTestServer(t, Config{TimelineSpans: -1}, nil)
	if status, _ := postMine(t, hs.URL, `{"db":"shop","per":4,"minPS":3}`); status != http.StatusOK {
		t.Fatal("mine failed")
	}
	_, body := getBody(t, hs.URL+"/debug/requests?format=json")
	var jr struct {
		Recent []*RequestEntry `json:"recent"`
	}
	decodeJSON(t, body, &jr)
	if len(jr.Recent) != 1 {
		t.Fatalf("journal has %d entries, want 1", len(jr.Recent))
	}
	e := jr.Recent[0]
	if len(e.Phases) == 0 {
		t.Error("entry lost its phase breakdown without timelines")
	}
	if e.HasTrace {
		t.Error("entry claims a trace with timelines disabled")
	}
}

func decodeJSON(t *testing.T, body string, v any) {
	t.Helper()
	if err := json.Unmarshal([]byte(body), v); err != nil {
		t.Fatalf("decoding %q: %v", body, err)
	}
}
