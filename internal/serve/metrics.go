package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"github.com/recurpat/rp/internal/obs"
)

// histBounds are the upper bounds of the mining-time histogram buckets;
// an implicit final bucket catches everything slower. The spacing is
// decade-wise because mining time spans from sub-millisecond toy requests
// to multi-second full-scale runs. The same bounds serve the per-phase
// histograms: phases are fractions of mining time, so they need the same
// dynamic range one decade down, which the sub-millisecond buckets cover.
var histBounds = [...]time.Duration{
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// histBoundsSeconds is histBounds in the unit Prometheus conventions
// require for time series (seconds).
var histBoundsSeconds = func() []float64 {
	s := make([]float64, len(histBounds))
	for i, b := range histBounds {
		s[i] = b.Seconds()
	}
	return s
}()

// byteBounds are the upper bounds of the per-request allocation histogram,
// spaced in decades-of-16 because request alloc cost spans from a cached
// toy mine's bookkeeping to a full-scale run's working set.
var byteBounds = [...]int64{
	64 << 10,  // 64 KiB
	1 << 20,   // 1 MiB
	16 << 20,  // 16 MiB
	256 << 20, // 256 MiB
	4 << 30,   // 4 GiB
}

// byteBoundsFloat is byteBounds as Prometheus `le` values.
var byteBoundsFloat = func() []float64 {
	s := make([]float64, len(byteBounds))
	for i, b := range byteBounds {
		s[i] = float64(b)
	}
	return s
}()

// durationHist is one wall-time histogram: per-bucket (non-cumulative)
// counts plus the total observed time, all updated atomically.
type durationHist struct {
	buckets [len(histBounds) + 1]atomic.Int64
	nanos   atomic.Int64
}

func (h *durationHist) observe(d time.Duration) {
	h.nanos.Add(int64(d))
	for i, b := range histBounds {
		if d <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(histBounds)].Add(1)
}

// snapshot copies the bucket counts.
func (h *durationHist) snapshot() (buckets [len(histBounds) + 1]int64, nanos int64) {
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return buckets, h.nanos.Load()
}

// byteHist is durationHist's shape over byte sizes: per-bucket counts plus
// the total observed bytes.
type byteHist struct {
	buckets [len(byteBounds) + 1]atomic.Int64
	bytes   atomic.Int64
}

func (h *byteHist) observe(n int64) {
	h.bytes.Add(n)
	for i, b := range byteBounds {
		if n <= b {
			h.buckets[i].Add(1)
			return
		}
	}
	h.buckets[len(byteBounds)].Add(1)
}

func (h *byteHist) snapshot() (buckets [len(byteBounds) + 1]int64, bytes int64) {
	for i := range h.buckets {
		buckets[i] = h.buckets[i].Load()
	}
	return buckets, h.bytes.Load()
}

// metrics aggregates the serving counters reported by /v1/stats, exported
// through /debug/vars, and rendered as Prometheus text by /metrics. Every
// field is updated atomically; one value is shared by all handler
// goroutines.
type metrics struct {
	requests    atomic.Int64 // POST /v1/mine requests received
	cacheHits   atomic.Int64 // served straight from the result cache
	cacheMisses atomic.Int64 // had to consult the single-flight group
	shed        atomic.Int64 // 429s: admission queue full or wait timed out
	cancelled   atomic.Int64 // client went away mid-queue or mid-mine
	timeouts    atomic.Int64 // mines stopped by the server-side deadline
	errors      atomic.Int64 // other failed requests (bad input, unknown db, oversized body)
	mined       atomic.Int64 // mining runs actually executed
	mining      durationHist // wall time per executed mining run

	uploads          atomic.Int64 // POST /v1/datasets requests received
	datasetEvictions atomic.Int64 // datasets displaced by the registry's LRU bounds

	shardRequests atomic.Int64 // POST /v1/shard/mine requests received
	shardMined    atomic.Int64 // shard tasks executed to completion

	// requestAlloc and requestCPU histogram the per-request resource cost
	// measured around the executed mining section (leaders and shard tasks;
	// cache hits re-serve the producing run's cost and are not re-counted).
	requestAlloc byteHist
	requestCPU   durationHist

	// phases histograms the per-phase wall time of every executed mine,
	// one histogram per algorithm phase of the tracer's taxonomy. Nested
	// phases (ts-merge) record their aggregate time per run like the
	// others; count-only phases (erec-prune) stay at zero and are elided
	// from the exposition.
	phases [obs.NumPhases]durationHist
}

// observeMineTime records one completed mining run in the histogram.
func (m *metrics) observeMineTime(d time.Duration) {
	m.mined.Add(1)
	m.mining.observe(d)
}

// observeCost records one executed mine's resource cost.
func (m *metrics) observeCost(allocBytes uint64, cpu time.Duration) {
	m.requestAlloc.observe(int64(allocBytes))
	m.requestCPU.observe(cpu)
}

// observeTrace folds one run's phase report into the per-phase histograms.
func (m *metrics) observeTrace(r obs.PhaseReport) {
	for i, s := range r.Phases {
		if i >= len(m.phases) {
			break
		}
		if s.Nanos > 0 {
			m.phases[i].observe(time.Duration(s.Nanos))
		}
	}
}

// HistBucket is one mining-time histogram bucket in a stats snapshot.
type HistBucket struct {
	// LE is the bucket's inclusive upper bound rendered as a duration
	// ("1ms", ..., "+Inf").
	LE string `json:"le"`
	// LENanos is the same bound in nanoseconds, so the JSON is
	// interpretable without parsing duration strings; -1 marks the
	// catch-all +Inf bucket.
	LENanos int64 `json:"leNanos"`
	// Count is the number of mines that completed within the bound
	// (non-cumulative: each mine lands in exactly one bucket).
	Count int64 `json:"count"`
}

// histSnapshot renders a durationHist's buckets with their bounds.
func histSnapshot(h *durationHist) []HistBucket {
	buckets, _ := h.snapshot()
	out := make([]HistBucket, 0, len(buckets))
	for i, b := range histBounds {
		out = append(out, HistBucket{LE: b.String(), LENanos: int64(b), Count: buckets[i]})
	}
	return append(out, HistBucket{LE: "+Inf", LENanos: -1, Count: buckets[len(histBounds)]})
}

// ByteBucket is one byte-size histogram bucket in a stats snapshot, the
// bytes analogue of HistBucket.
type ByteBucket struct {
	// LE is the bucket's inclusive upper bound, human-formatted
	// ("64KiB", ..., "+Inf"); LEBytes the same bound in bytes (-1 = +Inf).
	LE      string `json:"le"`
	LEBytes int64  `json:"leBytes"`
	// Count is the number of requests whose alloc cost fell in this bucket
	// (non-cumulative).
	Count int64 `json:"count"`
}

// formatBytes renders a byte bound the way the bounds were chosen: as a
// power-of-two multiple of KiB/MiB/GiB.
func formatBytes(n int64) string {
	switch {
	case n >= 1<<30 && n%(1<<30) == 0:
		return fmt.Sprintf("%dGiB", n>>30)
	case n >= 1<<20 && n%(1<<20) == 0:
		return fmt.Sprintf("%dMiB", n>>20)
	case n >= 1<<10 && n%(1<<10) == 0:
		return fmt.Sprintf("%dKiB", n>>10)
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// byteHistSnapshot renders a byteHist's buckets with their bounds.
func byteHistSnapshot(h *byteHist) []ByteBucket {
	buckets, _ := h.snapshot()
	out := make([]ByteBucket, 0, len(buckets))
	for i, b := range byteBounds {
		out = append(out, ByteBucket{LE: formatBytes(b), LEBytes: b, Count: buckets[i]})
	}
	return append(out, ByteBucket{LE: "+Inf", LEBytes: -1, Count: buckets[len(byteBounds)]})
}

// MetricsSnapshot is a point-in-time copy of the serving counters.
type MetricsSnapshot struct {
	Requests      int64        `json:"requests"`
	CacheHits     int64        `json:"cacheHits"`
	CacheMisses   int64        `json:"cacheMisses"`
	Shed          int64        `json:"shed"`
	Cancelled     int64        `json:"cancelled"`
	Timeouts      int64        `json:"timeouts"`
	Errors        int64        `json:"errors"`
	Mined         int64        `json:"mined"`
	MiningMSTotal float64      `json:"miningMSTotal"`
	MiningTime    []HistBucket `json:"miningTime"`

	Uploads          int64 `json:"uploads"`
	DatasetEvictions int64 `json:"datasetEvictions"`

	ShardRequests int64 `json:"shardRequests"`
	ShardMined    int64 `json:"shardMined"`

	// Per-request cost: heap allocation and CPU time of executed mining
	// sections (totals plus their histograms).
	RequestAllocBytesTotal int64        `json:"requestAllocBytesTotal"`
	RequestAllocBytes      []ByteBucket `json:"requestAllocBytes"`
	RequestCPUMSTotal      float64      `json:"requestCPUMSTotal"`
	RequestCPUTime         []HistBucket `json:"requestCPUTime"`
}

// snapshot copies the counters. Individual loads are atomic but the
// snapshot as a whole is not; for operational metrics that is fine.
func (m *metrics) snapshot() MetricsSnapshot {
	return MetricsSnapshot{
		Requests:      m.requests.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
		Shed:          m.shed.Load(),
		Cancelled:     m.cancelled.Load(),
		Timeouts:      m.timeouts.Load(),
		Errors:        m.errors.Load(),
		Mined:         m.mined.Load(),
		MiningMSTotal: float64(m.mining.nanos.Load()) / 1e6,
		MiningTime:    histSnapshot(&m.mining),

		Uploads:          m.uploads.Load(),
		DatasetEvictions: m.datasetEvictions.Load(),

		ShardRequests: m.shardRequests.Load(),
		ShardMined:    m.shardMined.Load(),

		RequestAllocBytesTotal: m.requestAlloc.bytes.Load(),
		RequestAllocBytes:      byteHistSnapshot(&m.requestAlloc),
		RequestCPUMSTotal:      float64(m.requestCPU.nanos.Load()) / 1e6,
		RequestCPUTime:         histSnapshot(&m.requestCPU),
	}
}

// writeProm renders the counters and histograms in Prometheus text
// exposition format. Gauges that live on the Server (in-flight, queue
// depth, cache size, drain state) are appended by the /metrics handler.
func (m *metrics) writeProm(p *obs.PromWriter) {
	p.Counter("rpserved_requests_total", "Mining requests received.", float64(m.requests.Load()))
	p.Counter("rpserved_cache_hits_total", "Requests served from the result cache.", float64(m.cacheHits.Load()))
	p.Counter("rpserved_cache_misses_total", "Requests that consulted the single-flight group.", float64(m.cacheMisses.Load()))
	p.Counter("rpserved_shed_total", "Requests shed by admission control (429).", float64(m.shed.Load()))
	p.Counter("rpserved_cancelled_total", "Requests whose client went away mid-queue or mid-mine.", float64(m.cancelled.Load()))
	p.Counter("rpserved_timeouts_total", "Mines stopped by the server-side deadline.", float64(m.timeouts.Load()))
	p.Counter("rpserved_errors_total", "Other failed requests (bad input, unknown database, oversized body).", float64(m.errors.Load()))
	p.Counter("rpserved_mined_total", "Mining runs actually executed.", float64(m.mined.Load()))
	p.Counter("rpserved_uploads_total", "Dataset uploads received.", float64(m.uploads.Load()))
	p.Counter("rpserved_dataset_evictions_total", "Datasets displaced by the registry's LRU bounds.", float64(m.datasetEvictions.Load()))
	p.Counter("rpserved_shard_requests_total", "Shard mine requests received.", float64(m.shardRequests.Load()))
	p.Counter("rpserved_shard_mined_total", "Shard tasks executed to completion.", float64(m.shardMined.Load()))

	buckets, nanos := m.mining.snapshot()
	p.Histogram("rpserved_mining_seconds", "Wall time per executed mining run.",
		nil, histBoundsSeconds, buckets[:], float64(nanos)/1e9)

	allocBuckets, allocBytes := m.requestAlloc.snapshot()
	p.Histogram("rpserved_request_alloc_bytes", "Heap bytes allocated per executed mining section.",
		nil, byteBoundsFloat, allocBuckets[:], float64(allocBytes))
	cpuBuckets, cpuNanos := m.requestCPU.snapshot()
	p.Histogram("rpserved_request_cpu_seconds", "Process CPU time consumed per executed mining section.",
		nil, histBoundsSeconds, cpuBuckets[:], float64(cpuNanos)/1e9)

	for ph := obs.Phase(0); ph < obs.NumPhases; ph++ {
		buckets, nanos := m.phases[ph].snapshot()
		count := int64(0)
		for _, b := range buckets {
			count += b
		}
		if count == 0 {
			continue // count-only phases (erec-prune) have no time series
		}
		p.Histogram("rpserved_phase_seconds", "Wall time per mining run attributed to one algorithm phase.",
			map[string]string{"phase": ph.String()}, histBoundsSeconds, buckets[:], float64(nanos)/1e9)
	}
}
