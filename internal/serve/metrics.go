package serve

import (
	"sync/atomic"
	"time"
)

// histBounds are the upper bounds of the mining-time histogram buckets;
// an implicit final bucket catches everything slower. The spacing is
// decade-wise because mining time spans from sub-millisecond toy requests
// to multi-second full-scale runs.
var histBounds = [...]time.Duration{
	time.Millisecond,
	10 * time.Millisecond,
	100 * time.Millisecond,
	time.Second,
	10 * time.Second,
}

// metrics aggregates the serving counters reported by /v1/stats and
// exported through /debug/vars. Every field is updated atomically; one
// value is shared by all handler goroutines.
type metrics struct {
	requests    atomic.Int64 // POST /v1/mine requests received
	cacheHits   atomic.Int64 // served straight from the result cache
	cacheMisses atomic.Int64 // had to consult the single-flight group
	shed        atomic.Int64 // 429s: admission queue full or wait timed out
	cancelled   atomic.Int64 // client went away mid-queue or mid-mine
	timeouts    atomic.Int64 // mines stopped by the server-side deadline
	errors      atomic.Int64 // other failed requests (bad input, unknown db)
	mined       atomic.Int64 // mining runs actually executed
	miningNanos atomic.Int64 // total wall time spent mining
	hist        [len(histBounds) + 1]atomic.Int64
}

// observeMineTime records one completed mining run in the histogram.
func (m *metrics) observeMineTime(d time.Duration) {
	m.mined.Add(1)
	m.miningNanos.Add(int64(d))
	for i, b := range histBounds {
		if d <= b {
			m.hist[i].Add(1)
			return
		}
	}
	m.hist[len(histBounds)].Add(1)
}

// HistBucket is one mining-time histogram bucket in a stats snapshot.
type HistBucket struct {
	// LE is the bucket's inclusive upper bound ("1ms", ..., "+Inf").
	LE string `json:"le"`
	// Count is the number of mines that completed within the bound
	// (non-cumulative: each mine lands in exactly one bucket).
	Count int64 `json:"count"`
}

// MetricsSnapshot is a point-in-time copy of the serving counters.
type MetricsSnapshot struct {
	Requests      int64        `json:"requests"`
	CacheHits     int64        `json:"cacheHits"`
	CacheMisses   int64        `json:"cacheMisses"`
	Shed          int64        `json:"shed"`
	Cancelled     int64        `json:"cancelled"`
	Timeouts      int64        `json:"timeouts"`
	Errors        int64        `json:"errors"`
	Mined         int64        `json:"mined"`
	MiningMSTotal float64      `json:"miningMSTotal"`
	MiningTime    []HistBucket `json:"miningTime"`
}

// snapshot copies the counters. Individual loads are atomic but the
// snapshot as a whole is not; for operational metrics that is fine.
func (m *metrics) snapshot() MetricsSnapshot {
	s := MetricsSnapshot{
		Requests:      m.requests.Load(),
		CacheHits:     m.cacheHits.Load(),
		CacheMisses:   m.cacheMisses.Load(),
		Shed:          m.shed.Load(),
		Cancelled:     m.cancelled.Load(),
		Timeouts:      m.timeouts.Load(),
		Errors:        m.errors.Load(),
		Mined:         m.mined.Load(),
		MiningMSTotal: float64(m.miningNanos.Load()) / 1e6,
	}
	s.MiningTime = make([]HistBucket, 0, len(m.hist))
	for i, b := range histBounds {
		s.MiningTime = append(s.MiningTime, HistBucket{LE: b.String(), Count: m.hist[i].Load()})
	}
	s.MiningTime = append(s.MiningTime, HistBucket{LE: "+Inf", Count: m.hist[len(histBounds)].Load()})
	return s
}
