// The /debug/profiles endpoints serve the continuous-profiling capture
// ring (internal/obs/prof): a listing of retained CPU/heap captures with
// their metadata — HTML for humans, JSON for scripts — and per-capture
// downloads ready for `go tool pprof`.
package serve

import (
	"fmt"
	"html/template"
	"net/http"
	"time"

	"github.com/recurpat/rp/internal/obs/prof"
)

// profilesResponse is the JSON body of GET /debug/profiles?format=json.
type profilesResponse struct {
	// Interval and Retain echo the recorder's knobs.
	Interval string `json:"interval"`
	Retain   int    `json:"retain"`
	// Dropped counts captures evicted from the ring since start.
	Dropped uint64 `json:"dropped"`
	// Captures holds the retained captures oldest-first (metadata only;
	// profile bytes come from /debug/profiles/<id>).
	Captures []prof.Capture `json:"captures"`
}

func (s *Server) handleProfiles(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		http.Error(w, "continuous profiling disabled (Config.ProfileInterval <= 0)", http.StatusNotFound)
		return
	}
	captures, dropped := s.recorder.List()
	resp := profilesResponse{
		Interval: s.recorder.Interval().String(),
		Retain:   s.recorder.Retain(),
		Dropped:  dropped,
		Captures: captures,
	}
	if r.URL.Query().Get("format") == "json" {
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	// An execute error past the first write only means the client left.
	_ = profilesTmpl.Execute(w, resp)
}

// handleProfileDownload serves one capture's pprof bytes. The filename in
// Content-Disposition embeds the capture ID so saved profiles from a fleet
// don't collide.
func (s *Server) handleProfileDownload(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		http.Error(w, "continuous profiling disabled (Config.ProfileInterval <= 0)", http.StatusNotFound)
		return
	}
	id := r.PathValue("id")
	c, ok := s.recorder.Get(id)
	if !ok {
		s.writeError(w, http.StatusNotFound,
			fmt.Sprintf("no retained capture %q (evicted, or never captured)", id))
		return
	}
	if c.Err != "" {
		s.writeError(w, http.StatusNotFound,
			fmt.Sprintf("capture %q failed: %s", id, c.Err))
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "rpserved-"+c.ID+".pprof"))
	_, _ = w.Write(c.Bytes)
}

// profilesTmpl renders the capture ring as a self-contained HTML page in
// the /debug/requests style.
var profilesTmpl = template.Must(template.New("profiles").Funcs(template.FuncMap{
	"when":  func(t time.Time) string { return t.Format("15:04:05.000") },
	"bytes": humanBytes,
}).Parse(`<!DOCTYPE html>
<html>
<head>
<title>rpserved profile captures</title>
<style>
body { font-family: sans-serif; margin: 1.5em; }
table { border-collapse: collapse; width: 100%; }
th, td { border: 1px solid #ccc; padding: 4px 8px; text-align: left; font-size: 13px; }
th { background: #eee; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.err { color: #a00; }
</style>
</head>
<body>
<h1>rpserved profile captures</h1>
<p>One CPU profile and one heap snapshot every {{.Interval}}; the ring
retains the last {{.Retain}} captures ({{.Dropped}} dropped so far).
Download a capture and inspect it with
<code>go tool pprof rpserved-&lt;id&gt;.pprof</code>.</p>

<table>
<tr><th>start</th><th>id</th><th>kind</th><th>window&nbsp;ms</th>
<th>load</th><th>alloc&nbsp;Δ</th><th>status</th></tr>
{{range .Captures}}
<tr>
<td>{{when .Start}}</td>
<td>{{if .Err}}{{.ID}}{{else}}<a href="/debug/profiles/{{.ID}}">{{.ID}}</a>{{end}}</td>
<td>{{.Kind}}</td>
<td class="num">{{.DurMS}}</td>
<td class="num">{{.Load}}</td>
<td class="num">{{bytes .AllocDeltaBytes}}</td>
<td>{{if .Err}}<span class="err">{{.Err}}</span>{{else}}ok{{end}}</td>
</tr>
{{end}}
</table>
</body>
</html>
`))
