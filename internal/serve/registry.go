// The dataset registry is the "upload once, mine many" half of the
// service: POST /v1/datasets streams a TDB (any format) to a spill file,
// parses it through the parallel ingest path, and registers the database
// under its content fingerprint; POST /v1/mine then addresses it as
// {"dataset": "<fp>"} with no body re-parse. Registry memory is bounded
// by entry count and by estimated resident bytes, evicting least recently
// mined datasets first. Eviction only drops the registry's reference —
// in-flight mines hold their own and finish safely on the heap copy.
package serve

import (
	"container/list"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"sync"
	"time"

	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// errDatasetTooLarge rejects a dataset whose resident size alone exceeds
// the whole registry budget; admitting it would evict everything else and
// still leave the registry over its bound.
var errDatasetTooLarge = errors.New("serve: dataset exceeds the registry memory budget")

// regDataset is one registered dataset. The db is always heap-resident
// (uploads parse to the heap, never mmap), so eviction is reference drop
// plus GC — no unmap hazard for mines still running over it.
type regDataset struct {
	fp    uint64
	db    *tsdb.DB
	bytes int64  // estimated resident size, the unit of the byte bound
	name  string // optional client-supplied label
	hits  int64  // mines served by reference; under the registry mutex
}

// registry is the LRU-bounded dataset store, keyed by content
// fingerprint. All methods are safe for concurrent use.
type registry struct {
	maxBytes   int64 // 0 = unbounded
	maxEntries int   // 0 = unbounded

	mu    sync.Mutex
	bytes int64
	ll    *list.List // front = most recently used; values are *regDataset
	idx   map[uint64]*list.Element
}

func newRegistry(maxBytes int64, maxEntries int) *registry {
	return &registry{
		maxBytes:   maxBytes,
		maxEntries: maxEntries,
		ll:         list.New(),
		idx:        make(map[uint64]*list.Element),
	}
}

// put registers ds, evicting least recently used datasets as needed to
// respect the bounds. When the fingerprint is already registered the
// existing dataset is refreshed (same content by definition) and existing
// is true. evicted reports how many datasets were displaced.
func (g *registry) put(ds *regDataset) (existing bool, evicted int, err error) {
	if g.maxBytes > 0 && ds.bytes > g.maxBytes {
		return false, 0, errDatasetTooLarge
	}
	g.mu.Lock()
	defer g.mu.Unlock()
	if el, ok := g.idx[ds.fp]; ok {
		// Same content; keep the resident copy, adopt the fresher label.
		old := el.Value.(*regDataset)
		if ds.name != "" {
			old.name = ds.name
		}
		g.ll.MoveToFront(el)
		return true, 0, nil
	}
	g.idx[ds.fp] = g.ll.PushFront(ds)
	g.bytes += ds.bytes
	for g.ll.Len() > 1 &&
		((g.maxEntries > 0 && g.ll.Len() > g.maxEntries) ||
			(g.maxBytes > 0 && g.bytes > g.maxBytes)) {
		oldest := g.ll.Back()
		g.removeLocked(oldest)
		evicted++
	}
	return false, evicted, nil
}

// get returns the dataset for fp, marking it most recently used.
func (g *registry) get(fp uint64) (*regDataset, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	el, ok := g.idx[fp]
	if !ok {
		return nil, false
	}
	g.ll.MoveToFront(el)
	ds := el.Value.(*regDataset)
	ds.hits++
	return ds, true
}

// delete evicts fp explicitly.
func (g *registry) delete(fp uint64) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	el, ok := g.idx[fp]
	if !ok {
		return false
	}
	g.removeLocked(el)
	return true
}

func (g *registry) removeLocked(el *list.Element) {
	ds := el.Value.(*regDataset)
	g.ll.Remove(el)
	delete(g.idx, ds.fp)
	g.bytes -= ds.bytes
}

// stats returns the entry count and estimated resident bytes.
func (g *registry) stats() (entries int, bytes int64) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.ll.Len(), g.bytes
}

// snapshot lists the datasets most recently used first — the LRU order is
// deterministic for a given request sequence, so listings are stable.
func (g *registry) snapshot() []datasetInfo {
	g.mu.Lock()
	defer g.mu.Unlock()
	out := make([]datasetInfo, 0, g.ll.Len())
	for el := g.ll.Front(); el != nil; el = el.Next() {
		ds := el.Value.(*regDataset)
		items := 0
		if ds.db.Dict != nil {
			items = ds.db.Dict.Len()
		}
		out = append(out, datasetInfo{
			Fingerprint:  fmt.Sprintf("%016x", ds.fp),
			Name:         ds.name,
			Transactions: ds.db.Len(),
			Items:        items,
			Bytes:        ds.bytes,
			Hits:         ds.hits,
		})
	}
	return out
}

// estimateDBBytes approximates a database's resident heap size: name
// storage with per-entry map and header overhead, plus the transaction
// index and item arrays. It is the accounting unit of the registry's byte
// bound — an estimate, not an audit; consistent is what matters.
func estimateDBBytes(db *tsdb.DB) int64 {
	const (
		nameOverhead = 64 // map entry + names-slice header + string header
		txOverhead   = 32 // Transaction struct + items slice header
	)
	total := int64(0)
	if db.Dict != nil {
		for i := 0; i < db.Dict.Len(); i++ {
			total += int64(len(db.Dict.Name(tsdb.ItemID(i)))) + nameOverhead
		}
	}
	for _, tr := range db.Trans {
		total += txOverhead + 4*int64(len(tr.Items))
	}
	return total
}

// parseFingerprint parses the 16-hex-digit wire form of a fingerprint.
func parseFingerprint(s string) (uint64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("serve: fingerprint must be 16 hex digits, got %q", s)
	}
	fp, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("serve: bad fingerprint %q", s)
	}
	return fp, nil
}

// datasetInfo describes one registered dataset in listings and stats.
type datasetInfo struct {
	Fingerprint  string `json:"fingerprint"`
	Name         string `json:"name,omitempty"`
	Transactions int    `json:"transactions"`
	Items        int    `json:"items"`
	// Bytes is the estimated resident size counted against the registry
	// budget; Hits the number of mines addressed to this dataset.
	Bytes int64 `json:"bytes"`
	Hits  int64 `json:"hits"`
}

// uploadResponse is the JSON body of a successful POST /v1/datasets.
type uploadResponse struct {
	Fingerprint string `json:"fingerprint"`
	// Existing reports the fingerprint was already registered (the upload
	// was an idempotent no-op beyond an LRU touch).
	Existing     bool  `json:"existing"`
	Transactions int   `json:"transactions"`
	Items        int   `json:"items"`
	Bytes        int64 `json:"bytes"`
	// UploadBytes is the size of the request body as received; IngestMS the
	// parse wall time (the ingest phase of this request's journal entry).
	UploadBytes int64   `json:"uploadBytes"`
	IngestMS    float64 `json:"ingestMS"`
	Evicted     int     `json:"evicted,omitempty"`
}

// listDatasetsResponse is the JSON body of GET /v1/datasets.
type listDatasetsResponse struct {
	Count    int           `json:"count"`
	Bytes    int64         `json:"bytes"`
	MaxBytes int64         `json:"maxBytes"`
	Datasets []datasetInfo `json:"datasets"`
}

// handleDatasetUpload ingests one dataset: the body streams to a spill
// file (bounded by MaxUpload with the same JSON 413 as /v1/mine), parses
// through the parallel ingest path, and registers under its fingerprint.
// The ingest is phase-attributed and journalled like a mine, so
// /debug/requests shows upload requests with an "ingest" phase and
// mine-by-fingerprint requests without one.
func (s *Server) handleDatasetUpload(w http.ResponseWriter, r *http.Request) {
	start := now()
	s.metrics.uploads.Add(1)
	rec := &accessRecord{id: obs.RequestID(), outcome: "uploaded", status: http.StatusCreated}
	defer func() {
		elapsed := time.Since(start)
		s.cfg.Logger.Info("dataset-upload",
			"id", rec.id, "fp", rec.fp, "name", rec.db,
			"outcome", rec.outcome, "status", rec.status,
			"elapsedMS", float64(elapsed)/1e6)
		s.journalRecord(rec, start, elapsed)
	}()

	body := r.Body
	if s.cfg.MaxUpload > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxUpload)
	}
	tmp, err := os.CreateTemp(s.cfg.SpillDir, "rpserved-spill-*")
	if err != nil {
		rec.deny("spill-error", http.StatusInternalServerError)
		s.fail(w, http.StatusInternalServerError, "creating spill file: %v", err)
		return
	}
	spill := tmp.Name()
	defer func() {
		// Best effort: the spill file is temporary by construction.
		_ = os.Remove(spill)
	}()
	n, err := io.Copy(tmp, body)
	if cerr := tmp.Close(); err == nil && cerr != nil {
		err = cerr
	}
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			rec.deny("body-too-large", http.StatusRequestEntityTooLarge)
			s.fail(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", mbe.Limit)
			return
		}
		rec.deny("upload-error", http.StatusBadRequest)
		s.fail(w, http.StatusBadRequest, "reading upload: %v", err)
		return
	}

	rec.opts = fmt.Sprintf("bytes=%d", n)

	// Parse through the parallel path, attributing the wall time (and the
	// byte count: time + count = throughput) to the ingest phase.
	trace := obs.NewTrace()
	begin := now()
	db, err := tsdb.ReadFile(spill)
	ingest := time.Since(begin)
	trace.Observe(obs.PhaseIngest, int64(ingest), n)
	trace.ObserveTotal(int64(ingest))
	rec.report = trace.Report()
	s.metrics.observeTrace(rec.report)
	if err != nil {
		rec.deny("bad-dataset", http.StatusBadRequest)
		s.fail(w, http.StatusBadRequest, "parsing dataset: %v", err)
		return
	}

	fp := db.Fingerprint()
	rec.fp = fmt.Sprintf("%016x", fp)
	rec.db = r.URL.Query().Get("name")
	ds := &regDataset{
		fp:    fp,
		db:    db,
		bytes: estimateDBBytes(db),
		name:  rec.db,
	}
	existing, evicted, err := s.registry.put(ds)
	if err != nil {
		rec.deny("dataset-too-large", http.StatusRequestEntityTooLarge)
		s.fail(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	}
	if existing {
		rec.outcome, rec.status = "dataset-exists", http.StatusOK
	}
	s.metrics.datasetEvictions.Add(int64(evicted))

	items := 0
	if db.Dict != nil {
		items = db.Dict.Len()
	}
	s.writeJSON(w, rec.status, uploadResponse{
		Fingerprint:  rec.fp,
		Existing:     existing,
		Transactions: db.Len(),
		Items:        items,
		Bytes:        ds.bytes,
		UploadBytes:  n,
		IngestMS:     float64(ingest) / 1e6,
		Evicted:      evicted,
	})
}

func (s *Server) handleDatasetList(w http.ResponseWriter, r *http.Request) {
	entries, bytes := s.registry.stats()
	s.writeJSON(w, http.StatusOK, listDatasetsResponse{
		Count:    entries,
		Bytes:    bytes,
		MaxBytes: s.cfg.RegistryMaxBytes,
		Datasets: s.registry.snapshot(),
	})
}

func (s *Server) handleDatasetDelete(w http.ResponseWriter, r *http.Request) {
	fp, err := parseFingerprint(r.PathValue("fp"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if !s.registry.delete(fp) {
		s.fail(w, http.StatusNotFound, "serve: unknown dataset %q", r.PathValue("fp"))
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// lookupDataset resolves a mine request's dataset reference.
func (s *Server) lookupDataset(ref string) (*dbEntry, int, error) {
	fp, err := parseFingerprint(ref)
	if err != nil {
		return nil, http.StatusBadRequest, err
	}
	ds, ok := s.registry.get(fp)
	if !ok {
		return nil, http.StatusNotFound,
			fmt.Errorf("serve: unknown dataset %q (expired from the registry, or never uploaded)", ref)
	}
	name := ds.name
	if name == "" {
		name = "dataset:" + ref[:8]
	}
	return &dbEntry{name: name, db: ds.db, fp: ds.fp}, 0, nil
}
