package serve

import (
	"container/list"
	"context"
	"sync"
	"time"

	"github.com/recurpat/rp/internal/api"
	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
)

// cacheKey identifies a mining result: which database (by content
// fingerprint, so reloading identical data still hits) and every Options
// field that can change the output. Parallelism and CollectStats are
// deliberately absent — results are identical across parallelism levels,
// and the server always mines with stats on so a cached entry can answer
// both stats and no-stats requests.
type cacheKey struct {
	fp     uint64
	per    int64
	minPS  int
	minRec int
	maxLen int
	order  core.ItemOrder
	// noErec is Options.DisableErecPruning. The pattern set is identical
	// either way, but the search statistics are not, and a cached entry
	// answers stats requests — so the ablation must not share entries with
	// the default configuration.
	noErec bool
}

// cachedResult is an immutable, fully name-resolved mining result. It is
// shared between the cache and any number of concurrent responses, so
// nothing in it may be mutated after construction.
type cachedResult struct {
	patterns []api.Pattern
	stats    core.MineStats
	mineTime time.Duration // wall time of the run that produced it

	// partial and failedShards mark a best-effort scatter that lost
	// shards. Partial results are never actually cached (runMine skips the
	// put), but they flow through this type to the response writer.
	partial      bool
	failedShards []int

	// report and timeline describe the producing run for the request
	// journal: its per-phase breakdown and (when recording was on) its
	// retained span timeline. Requests answered from this entry journal
	// them as historic.
	report   obs.PhaseReport
	timeline obs.TimelineSnapshot

	// allocBytes and cpuTime are the producing run's resource cost,
	// measured around the single-flight mining section; like mineTime they
	// are historic on cache hits.
	allocBytes uint64
	cpuTime    time.Duration
}

// resultCache is a mutex-guarded LRU over cachedResults. A non-positive
// capacity disables caching (every get misses, put is a no-op).
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used; values are *lruEntry
	idx map[cacheKey]*list.Element
}

type lruEntry struct {
	key cacheKey
	val *cachedResult
}

func newResultCache(capacity int) *resultCache {
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		idx: make(map[cacheKey]*list.Element),
	}
}

func (c *resultCache) get(k cacheKey) (*cachedResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[k]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

func (c *resultCache) put(k cacheKey, v *cachedResult) {
	if c.cap <= 0 {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[k]; ok {
		el.Value.(*lruEntry).val = v
		c.ll.MoveToFront(el)
		return
	}
	c.idx[k] = c.ll.PushFront(&lruEntry{key: k, val: v})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.idx, oldest.Value.(*lruEntry).key)
	}
}

func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// flightGroup coalesces concurrent mines of the same cacheKey: the first
// caller becomes the leader and runs fn; followers block until the leader
// finishes (or their own context fires) and share its outcome. This keeps a
// thundering herd of identical requests from burning one admission slot
// each on redundant work.
//
// The leader runs fn under its own request context, so a cancelled leader
// poisons the shared outcome with a CancelError; do's callers detect that
// case (follower, leader-cancelled, own context still live) and retry,
// promoting one follower to leader on the next round.
type flightGroup struct {
	mu    sync.Mutex
	calls map[cacheKey]*flightCall
}

type flightCall struct {
	done chan struct{} // closed when val/err are settled
	val  *cachedResult
	err  error
}

func newFlightGroup() *flightGroup {
	return &flightGroup{calls: make(map[cacheKey]*flightCall)}
}

// do executes fn under key, coalescing with an in-flight execution if one
// exists. leader reports whether fn ran in this call; when false, the
// result came from another request's run (or err is ctx.Err() because this
// follower gave up waiting).
func (g *flightGroup) do(ctx context.Context, key cacheKey, fn func() (*cachedResult, error)) (v *cachedResult, err error, leader bool) {
	g.mu.Lock()
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		select {
		case <-c.done:
			return c.val, c.err, false
		case <-ctx.Done():
			return nil, ctx.Err(), false
		}
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, true
}
