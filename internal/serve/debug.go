// The /debug/requests endpoints render the request journal: an HTML page
// for humans (the x/net/trace style), a JSON form for scripts, and a
// per-request Chrome trace-event download for Perfetto. They read only
// journal snapshots, so a scrape never contends with request handling
// beyond the journal mutex.
package serve

import (
	"fmt"
	"html/template"
	"net/http"
	"strconv"
	"strings"
	"time"

	"github.com/recurpat/rp/internal/obs"
)

// journalRecord retains one finished /v1/mine request in the journal; a
// no-op when the journal is disabled. Called from handleMine's deferred
// access logger, so every exit path — served, cached, coalesced, shed,
// cancelled, failed — lands here exactly once.
func (s *Server) journalRecord(rec *accessRecord, start time.Time, elapsed time.Duration) {
	if s.journal == nil {
		return
	}
	s.journal.add(&RequestEntry{
		ID:         rec.id,
		Start:      start,
		DB:         rec.db,
		FP:         rec.fp,
		Opts:       rec.opts,
		Outcome:    rec.outcome,
		Status:     rec.status,
		Cached:     rec.cached,
		Patterns:   rec.patterns,
		QueueMS:    float64(rec.queueWait) / 1e6,
		MineMS:     float64(rec.mineTime) / 1e6,
		ElapsedMS:  float64(elapsed) / 1e6,
		AllocBytes: rec.allocBytes,
		CPUMS:      float64(rec.cpuTime) / 1e6,
		Phases:     activePhases(rec.report),
		Historic:   rec.historic,
		HasTrace:   len(rec.timeline.Spans) > 0,
		timeline:   rec.timeline,
	})
}

// activePhases keeps only the phases that observed time or work, the form
// journal entries retain and render.
func activePhases(r obs.PhaseReport) []obs.PhaseStat {
	var out []obs.PhaseStat
	for _, st := range r.Phases {
		if st.Nanos > 0 || st.Count > 0 {
			out = append(out, st)
		}
	}
	return out
}

// journalResponse is the JSON body of GET /debug/requests?format=json.
type journalResponse struct {
	// Total counts every request journalled since start, including those
	// the ring has since evicted.
	Total int64 `json:"total"`
	// Size and SlowThresholdMS echo the journal's retention knobs.
	Size            int     `json:"size"`
	SlowThresholdMS float64 `json:"slowThresholdMS"`
	// Recent holds the retained requests newest-first; Slow the long-term
	// bucket of slowest requests, slowest-first.
	Recent []*RequestEntry `json:"recent"`
	Slow   []*RequestEntry `json:"slow"`
}

func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		http.Error(w, "request journal disabled (Config.JournalSize < 0)", http.StatusNotFound)
		return
	}
	recent, slow, total := s.journal.snapshot()
	resp := journalResponse{
		Total:           total,
		Size:            s.cfg.JournalSize,
		SlowThresholdMS: float64(s.cfg.SlowThreshold) / 1e6,
		Recent:          recent,
		Slow:            slow,
	}
	if r.URL.Query().Get("format") == "json" {
		s.writeJSON(w, http.StatusOK, resp)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	// An execute error past the first write only means the client left.
	_ = debugRequestsTmpl.Execute(w, resp)
}

// handleRequestTrace serves one journalled request's span timeline as
// Chrome trace-event JSON, loadable in Perfetto or chrome://tracing.
func (s *Server) handleRequestTrace(w http.ResponseWriter, r *http.Request) {
	if s.journal == nil {
		http.Error(w, "request journal disabled (Config.JournalSize < 0)", http.StatusNotFound)
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		s.writeError(w, http.StatusBadRequest, "missing id parameter")
		return
	}
	e := s.journal.find(id)
	if e == nil {
		s.writeError(w, http.StatusNotFound,
			fmt.Sprintf("no journalled request %q (evicted, or never journalled)", id))
		return
	}
	if !e.HasTrace {
		s.writeError(w, http.StatusNotFound,
			fmt.Sprintf("request %q retained no span timeline (%s outcome)", id, e.Outcome))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Disposition", fmt.Sprintf("attachment; filename=%q", "rpserved-"+id+".json"))
	name := strings.TrimSpace("rpserved mine " + e.DB)
	// Embed the producing run's resource cost so a saved trace carries it
	// (rptrace prints these next to the span summary).
	var meta map[string]string
	if e.AllocBytes > 0 || e.CPUMS > 0 {
		meta = map[string]string{
			"requestAllocBytes": strconv.FormatUint(e.AllocBytes, 10),
			"requestCPUMS":      strconv.FormatFloat(e.CPUMS, 'f', 3, 64),
		}
	}
	_ = obs.WriteTraceEventsMeta(w, name, e.timeline, meta)
}

// debugRequestsTmpl renders the journal as a self-contained HTML page. The
// helper funcs keep the rows compact: millisecond columns with two
// decimals, and one phase-breakdown line per entry.
var debugRequestsTmpl = template.Must(template.New("requests").Funcs(template.FuncMap{
	"ms":     func(v float64) string { return fmt.Sprintf("%.2f", v) },
	"when":   func(t time.Time) string { return t.Format("15:04:05.000") },
	"bytes":  humanBytes,
	"phases": phaseSummary,
}).Parse(`<!DOCTYPE html>
<html>
<head>
<title>rpserved request journal</title>
<style>
body { font-family: sans-serif; margin: 1.5em; }
table { border-collapse: collapse; width: 100%; }
th, td { border: 1px solid #ccc; padding: 4px 8px; text-align: left; font-size: 13px; }
th { background: #eee; }
td.num { text-align: right; font-variant-numeric: tabular-nums; }
.outcome-ok { color: #070; }
.outcome-bad { color: #a00; }
.phases { color: #555; font-size: 12px; }
.historic { color: #777; font-style: italic; }
</style>
</head>
<body>
<h1>rpserved request journal</h1>
<p>{{.Total}} requests journalled; the ring retains the last {{.Size}};
requests at or above {{ms .SlowThresholdMS}}&nbsp;ms also enter the slow bucket.</p>

{{define "rows"}}
{{range .}}
<tr>
<td>{{when .Start}}</td>
<td>{{if .HasTrace}}<a href="/debug/requests/trace?id={{.ID}}">{{.ID}}</a>{{else}}{{.ID}}{{end}}</td>
<td>{{.DB}}</td>
<td class="{{if eq .Status 200}}outcome-ok{{else}}outcome-bad{{end}}">{{.Outcome}}</td>
<td class="num">{{.Status}}</td>
<td class="num">{{.Patterns}}</td>
<td class="num">{{ms .QueueMS}}</td>
<td class="num">{{ms .MineMS}}</td>
<td class="num">{{ms .ElapsedMS}}</td>
<td class="num">{{bytes .AllocBytes}}</td>
<td class="num">{{ms .CPUMS}}</td>
<td class="phases">{{phases .}}{{if .Historic}} <span class="historic">(historic)</span>{{end}}</td>
</tr>
{{end}}
{{end}}

<h2>Recent requests</h2>
<table>
<tr><th>start</th><th>id</th><th>db</th><th>outcome</th><th>status</th><th>patterns</th>
<th>queue&nbsp;ms</th><th>mine&nbsp;ms</th><th>total&nbsp;ms</th><th>alloc</th><th>cpu&nbsp;ms</th><th>phases</th></tr>
{{template "rows" .Recent}}
</table>

<h2>Slowest requests</h2>
{{if .Slow}}
<table>
<tr><th>start</th><th>id</th><th>db</th><th>outcome</th><th>status</th><th>patterns</th>
<th>queue&nbsp;ms</th><th>mine&nbsp;ms</th><th>total&nbsp;ms</th><th>alloc</th><th>cpu&nbsp;ms</th><th>phases</th></tr>
{{template "rows" .Slow}}
</table>
{{else}}
<p>No request has crossed the slow threshold yet.</p>
{{end}}
</body>
</html>
`))

// humanBytes renders a byte count for the journal's alloc column: scaled
// to the largest power-of-two unit with one decimal.
func humanBytes(n uint64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGiB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%dB", n)
	}
}

// phaseSummary renders an entry's phase breakdown on one line: timed
// phases as "name 1.23ms", count-only phases as "name ×42".
func phaseSummary(e *RequestEntry) string {
	if len(e.Phases) == 0 {
		return ""
	}
	parts := make([]string, 0, len(e.Phases))
	for _, st := range e.Phases {
		if st.Nanos > 0 {
			parts = append(parts, fmt.Sprintf("%s %.2fms", st.Phase, float64(st.Nanos)/1e6))
		} else {
			parts = append(parts, fmt.Sprintf("%s ×%d", st.Phase, st.Count))
		}
	}
	return strings.Join(parts, " · ")
}
