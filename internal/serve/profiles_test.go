package serve

import (
	"bytes"
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

func TestProfilesDisabledByDefault(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	for _, path := range []string{"/debug/profiles", "/debug/profiles/1-cpu"} {
		resp, err := http.Get(hs.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s with profiling off: status %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestProfilesListAndDownload(t *testing.T) {
	// A huge interval keeps the background loop quiet; the test drives
	// captures synchronously for determinism.
	s, hs := newTestServer(t, Config{ProfileInterval: time.Hour, ProfileRetain: 4}, nil)
	t.Cleanup(s.Close)
	s.recorder.CaptureOnce()

	resp, err := http.Get(hs.URL + "/debug/profiles?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var list profilesResponse
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	if len(list.Captures) != 2 {
		t.Fatalf("listing has %d captures, want cpu+heap: %+v", len(list.Captures), list)
	}
	if list.Retain != 4 || list.Interval != time.Hour.String() {
		t.Errorf("listing echoes retain=%d interval=%s, want 4 and 1h0m0s", list.Retain, list.Interval)
	}
	kinds := map[string]bool{}
	for _, c := range list.Captures {
		kinds[c.Kind] = true
		dl, err := http.Get(hs.URL + "/debug/profiles/" + c.ID)
		if err != nil {
			t.Fatal(err)
		}
		b, _ := io.ReadAll(dl.Body)
		dl.Body.Close()
		if dl.StatusCode != http.StatusOK || len(b) == 0 {
			t.Fatalf("download %s: status %d, %d bytes", c.ID, dl.StatusCode, len(b))
		}
		want := fmt.Sprintf("attachment; filename=%q", "rpserved-"+c.ID+".pprof")
		if cd := dl.Header.Get("Content-Disposition"); cd != want {
			t.Errorf("download %s Content-Disposition = %q, want %q", c.ID, cd, want)
		}
	}
	if !kinds["cpu"] || !kinds["heap"] {
		t.Errorf("capture kinds %v, want both cpu and heap", kinds)
	}

	resp, err = http.Get(hs.URL + "/debug/profiles/nope-cpu")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("download of unknown capture: status %d, want 404", resp.StatusCode)
	}

	// The HTML listing renders without template errors.
	resp, err = http.Get(hs.URL + "/debug/profiles")
	if err != nil {
		t.Fatal(err)
	}
	html, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !bytes.Contains(html, []byte("rpserved profile captures")) {
		t.Errorf("HTML listing missing title: %.200s", html)
	}
}

// TestRequestTraceContentDisposition pins the trace download's filename to
// the request ID, so saved fleet traces don't all land as trace.json.
func TestRequestTraceContentDisposition(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	status, body := postMine(t, hs.URL, `{"db":"shop","per":4,"minPS":3,"minRec":1}`)
	if status != http.StatusOK {
		t.Fatalf("mine: status %d, body %v", status, body)
	}
	id := journalIDs(t, hs.URL)[0]
	resp, err := http.Get(hs.URL + "/debug/requests/trace?id=" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: status %d", resp.StatusCode)
	}
	want := fmt.Sprintf("attachment; filename=%q", "rpserved-"+id+".json")
	if cd := resp.Header.Get("Content-Disposition"); cd != want {
		t.Errorf("Content-Disposition = %q, want %q", cd, want)
	}
}

// journalIDs returns the journal's recent request IDs, newest first.
func journalIDs(t *testing.T, base string) []string {
	t.Helper()
	resp, err := http.Get(base + "/debug/requests?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr journalResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Recent) == 0 {
		t.Fatal("journal is empty")
	}
	ids := make([]string, len(jr.Recent))
	for i, e := range jr.Recent {
		ids[i] = e.ID
	}
	return ids
}

// TestRequestCostColumns pins the per-request cost plumbing: an executed
// mine journals nonzero alloc bytes, a cache hit re-serves the producing
// run's cost as historic, and the totals surface in /v1/stats and the
// /metrics exposition. The mine targets bigDB because the runtime's heap
// counters are span-granular — a toy mine's few KB can legitimately read
// as a zero delta.
func TestRequestCostColumns(t *testing.T) {
	s, err := NewServer(Config{}, map[string]*tsdb.DB{"big": bigDB()})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	body := `{"db":"big","per":9,"minPS":5,"minRec":2}`
	if status, m := postMine(t, hs.URL, body); status != http.StatusOK {
		t.Fatalf("mine: status %d, body %v", status, m)
	}
	if status, m := postMine(t, hs.URL, body); status != http.StatusOK || m["cached"] != true {
		t.Fatalf("second mine: status %d, cached %v", status, m["cached"])
	}

	resp, err := http.Get(hs.URL + "/debug/requests?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr journalResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatal(err)
	}
	if len(jr.Recent) != 2 {
		t.Fatalf("journal has %d entries, want 2", len(jr.Recent))
	}
	hit, miss := jr.Recent[0], jr.Recent[1]
	if miss.AllocBytes == 0 {
		t.Errorf("executed mine journalled allocBytes=0, want nonzero")
	}
	if miss.CPUMS < 0 {
		t.Errorf("executed mine journalled cpuMS=%v, want >= 0", miss.CPUMS)
	}
	if !hit.Historic || hit.AllocBytes != miss.AllocBytes {
		t.Errorf("cache hit should inherit the producing run's cost: historic=%v alloc=%d vs %d",
			hit.Historic, hit.AllocBytes, miss.AllocBytes)
	}

	stats := getStats(t, hs.URL)
	if total := metric(t, stats, "requestAllocBytesTotal"); total != float64(miss.AllocBytes) {
		t.Errorf("stats requestAllocBytesTotal = %v, want %d (one executed mine)", total, miss.AllocBytes)
	}

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	prom, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	for _, want := range []string{
		`rpserved_request_alloc_bytes_bucket{le="65536"}`,
		`rpserved_request_alloc_bytes_bucket{le="+Inf"} 1`,
		"rpserved_request_alloc_bytes_count 1",
		`rpserved_request_cpu_seconds_bucket{le="+Inf"} 1`,
		"rpserved_request_cpu_seconds_count 1",
	} {
		if !strings.Contains(string(prom), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

// bigDB builds a database heavy enough that mining it takes real CPU, so a
// profile capture window overlapping a stream of mines is dominated by
// labeled mining samples.
func bigDB() *tsdb.DB {
	b := tsdb.NewBuilder()
	items := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	ts := int64(1)
	for i := 0; i < 4000; i++ {
		for j, it := range items {
			if i%(j+2) == 0 {
				b.Add(it, ts)
			}
		}
		ts += 3
	}
	return b.Build()
}

// TestMineCapturesLabeledProfile is the serve-level attribution check: a
// CPU capture taken while /v1/mine requests execute contains the pprof
// label keys and a real request ID minted by the handler. Sampling is
// statistical, so the capture window brackets a stream of uncached mines
// and the assertion retries.
func TestMineCapturesLabeledProfile(t *testing.T) {
	s, err := NewServer(Config{
		ProfileInterval: time.Hour, // background loop quiet; captures driven below
		CacheSize:       -1,        // every request actually mines
		MaxParallelism:  2,         // let parallelism:2 reach the worker path
	}, map[string]*tsdb.DB{"big": bigDB()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)

	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for {
			select {
			case <-stop:
				return
			default:
			}
			w := newNopResponseWriter()
			r, _ := http.NewRequest("POST", "/v1/mine",
				strings.NewReader(`{"db":"big","per":9,"minPS":5,"minRec":2,"parallelism":2}`))
			s.Handler().ServeHTTP(w, r)
			if w.status != http.StatusOK {
				t.Errorf("mine during capture: status %d", w.status)
				return
			}
		}
	}()
	defer func() { close(stop); <-done }()

	for attempt := 0; attempt < 5; attempt++ {
		s.recorder.CaptureOnce()
		captures, _ := s.recorder.List()
		var latest string
		for _, c := range captures {
			if c.Kind == "cpu" && c.Err == "" {
				latest = c.ID
			}
		}
		if latest == "" {
			t.Fatal("no successful cpu capture")
		}
		full, _ := s.recorder.Get(latest)
		zr, err := gzip.NewReader(bytes.NewReader(full.Bytes))
		if err != nil {
			t.Fatal(err)
		}
		proto, err := io.ReadAll(zr)
		if err != nil {
			t.Fatal(err)
		}
		// A real request ID from this server: "<8 hex>-<seq>". Checking for
		// the label keys plus the process's ID prefix keeps the assertion
		// independent of which requests got sampled.
		idPrefix := strings.SplitN(obs.RequestID(), "-", 2)[0]
		if bytes.Contains(proto, []byte(obs.LabelRequestID)) &&
			bytes.Contains(proto, []byte(obs.LabelDatasetFP)) &&
			bytes.Contains(proto, []byte(obs.LabelPhase)) &&
			bytes.Contains(proto, []byte(idPrefix)) {
			return
		}
	}
	t.Fatal("no capture attempt contained request_id/dataset_fp/phase labels")
}

// nopResponseWriter is an in-process ResponseWriter for hammering the
// handler without HTTP sockets in the way.
type nopResponseWriter struct {
	h      http.Header
	status int
}

func newNopResponseWriter() *nopResponseWriter {
	return &nopResponseWriter{h: make(http.Header), status: http.StatusOK}
}

func (w *nopResponseWriter) Header() http.Header         { return w.h }
func (w *nopResponseWriter) Write(b []byte) (int, error) { return len(b), nil }
func (w *nopResponseWriter) WriteHeader(status int)      { w.status = status }
