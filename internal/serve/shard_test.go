package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

// TestCacheKeyIncludesItemOrder is the regression for the api gap this
// package used to have: itemOrder (and disableErecPruning) now travel the
// wire, so two requests differing only in those knobs must not share a
// cache entry.
func TestCacheKeyIncludesItemOrder(t *testing.T) {
	var mines atomic.Int64
	s, hs := newTestServer(t, Config{}, func(ctx context.Context, db *tsdb.DB, o core.Options) (*core.Result, error) {
		mines.Add(1)
		return core.MineContext(ctx, db, o)
	})
	_ = s

	base := `"db":"shop","per":4,"minPS":3,"minRec":1`
	for i, body := range []string{
		`{` + base + `}`,
		`{` + base + `,"itemOrder":"lex"}`,
		`{` + base + `,"disableErecPruning":true}`,
		`{` + base + `}`, // repeat of the first: must hit, not re-mine
	} {
		status, m := postMine(t, hs.URL, body)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d, body %v", i, status, m)
		}
	}
	if got := mines.Load(); got != 3 {
		t.Errorf("executed %d mines, want 3 (order and pruning variants must not share cache entries)", got)
	}
}

// postShard sends a body to POST /v1/shard/mine.
func postShard(t *testing.T, base, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/shard/mine", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, m
}

// TestShardMineEndpoint exercises the peer half of scatter-gather: the
// shard tasks of a 3-way plan, addressed by fingerprint alone, must
// partition the full mine's pattern set.
func TestShardMineEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	fp := fmt.Sprintf("%016x", testDB().Fingerprint())

	status, full := postMine(t, hs.URL, `{"db":"shop","per":4,"minPS":3,"minRec":1}`)
	if status != http.StatusOK {
		t.Fatalf("full mine: status %d, body %v", status, full)
	}

	var shardTotal float64
	for i := 0; i < 3; i++ {
		status, m := postShard(t, hs.URL,
			fmt.Sprintf(`{"v":1,"fingerprint":%q,"per":4,"minPS":3,"minRec":1,"shard":%d,"shards":3}`, fp, i))
		if status != http.StatusOK {
			t.Fatalf("shard %d: status %d, body %v", i, status, m)
		}
		if m["fingerprint"] != fp {
			t.Errorf("shard %d echoed fingerprint %v, want %s", i, m["fingerprint"], fp)
		}
		if m["shard"].(float64) != float64(i) || m["shards"].(float64) != 3 {
			t.Errorf("shard %d echoed task %v/%v", i, m["shard"], m["shards"])
		}
		shardTotal += m["count"].(float64)
	}
	if shardTotal != full["count"].(float64) {
		t.Errorf("shard counts sum to %v, full mine found %v", shardTotal, full["count"])
	}

	stats := getStats(t, hs.URL)
	if got := metric(t, stats, "shardRequests"); got != 3 {
		t.Errorf("shardRequests = %v, want 3", got)
	}
	if got := metric(t, stats, "shardMined"); got != 3 {
		t.Errorf("shardMined = %v, want 3", got)
	}
}

func TestShardMineEndpointErrors(t *testing.T) {
	s, hs := newTestServer(t, Config{}, nil)
	fp := fmt.Sprintf("%016x", testDB().Fingerprint())

	// Invalid shard spec.
	if status, _ := postShard(t, hs.URL, `{"per":4,"minPS":3,"shard":3,"shards":3,"db":"shop"}`); status != http.StatusBadRequest {
		t.Errorf("out-of-range shard index: status %d, want 400", status)
	}
	// Unknown fingerprint.
	if status, m := postShard(t, hs.URL, `{"per":4,"minPS":3,"shard":0,"shards":2,"fingerprint":"00000000000000ff"}`); status != http.StatusNotFound {
		t.Errorf("unknown fingerprint: status %d, body %v, want 404", status, m)
	}
	// Named database whose bytes don't match the pinned fingerprint.
	if status, m := postShard(t, hs.URL, `{"per":4,"minPS":3,"shard":0,"shards":2,"db":"shop","fingerprint":"00000000000000ff"}`); status != http.StatusConflict {
		t.Errorf("fingerprint mismatch: status %d, body %v, want 409", status, m)
	}
	// No addressing at all.
	if status, _ := postShard(t, hs.URL, `{"per":4,"minPS":3,"shard":0,"shards":2}`); status != http.StatusBadRequest {
		t.Errorf("unaddressed task: status %d, want 400", status)
	}
	// Future schema version.
	if status, m := postShard(t, hs.URL, fmt.Sprintf(`{"v":9,"fingerprint":%q,"per":4,"minPS":3,"shard":0,"shards":2}`, fp)); status != http.StatusBadRequest {
		t.Errorf("future version: status %d, body %v, want 400", status, m)
	} else if msg, _ := m["error"].(string); !strings.Contains(msg, "unsupported schema version") {
		t.Errorf("version error message %q does not name the version problem", msg)
	}
	// Draining servers refuse shard tasks like they refuse mines.
	s.BeginDrain()
	if status, _ := postShard(t, hs.URL, fmt.Sprintf(`{"fingerprint":%q,"per":4,"minPS":3,"shard":0,"shards":2}`, fp)); status != http.StatusServiceUnavailable {
		t.Errorf("draining: status %d, want 503", status)
	}
}

func TestMineRejectsFutureVersion(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	status, m := postMine(t, hs.URL, `{"v":2,"db":"shop","per":4,"minPS":3}`)
	if status != http.StatusBadRequest {
		t.Fatalf("v2 request: status %d, body %v, want 400", status, m)
	}
	if msg, _ := m["error"].(string); !strings.Contains(msg, "unsupported schema version 2") {
		t.Errorf("error message %q does not name the version problem", msg)
	}
}

// TestPeersModeCoordinator stands up two real peer servers and a
// coordinator configured with -peers semantics, and pins the gathered
// /v1/mine response against a single-box server over the same database.
func TestPeersModeCoordinator(t *testing.T) {
	db := testDB()
	newPeer := func() *httptest.Server {
		s, err := NewServer(Config{}, map[string]*tsdb.DB{"whatever": db})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(s.Handler())
		t.Cleanup(hs.Close)
		return hs
	}
	p1, p2 := newPeer(), newPeer()

	coord, err := NewServer(Config{Peers: []string{p1.URL, p2.URL}, Shards: 3},
		map[string]*tsdb.DB{"shop": db})
	if err != nil {
		t.Fatal(err)
	}
	chs := httptest.NewServer(coord.Handler())
	t.Cleanup(chs.Close)
	_, shs := newTestServer(t, Config{}, nil) // single-box reference

	body := `{"db":"shop","per":4,"minPS":3,"minRec":1,"collectStats":true}`
	status, got := postMine(t, chs.URL, body)
	if status != http.StatusOK {
		t.Fatalf("scattered mine: status %d, body %v", status, got)
	}
	if got["partial"] != nil {
		t.Errorf("healthy scatter marked partial: %v", got["partial"])
	}
	_, want := postMine(t, shs.URL, body)

	gp, _ := json.Marshal(got["patterns"])
	wp, _ := json.Marshal(want["patterns"])
	if string(gp) != string(wp) {
		t.Errorf("scattered patterns diverge from single-box:\n%s\nvs\n%s", gp, wp)
	}
	// Stats merge semantics: examined/pruned/candidates/depth match the
	// single-box run exactly; TreeNodes overcounts by design (each shard
	// builds its own copy of the initial tree).
	gs := got["stats"].(map[string]any)
	ws := want["stats"].(map[string]any)
	for _, f := range []string{"PatternsExamined", "PatternsPruned", "CandidateItems", "MaxDepth"} {
		if gs[f] != ws[f] {
			t.Errorf("scattered stats field %s = %v, single-box %v", f, gs[f], ws[f])
		}
	}
	if gs["TreeNodes"].(float64) < ws["TreeNodes"].(float64) {
		t.Errorf("scattered TreeNodes %v below single-box %v", gs["TreeNodes"], ws["TreeNodes"])
	}

	// The per-peer counters surface in /v1/stats and /metrics.
	stats := getStats(t, chs.URL)
	peers, ok := stats["shardPeers"].([]any)
	if !ok || len(peers) != 2 {
		t.Fatalf("stats shardPeers = %v, want 2 entries", stats["shardPeers"])
	}
	var success float64
	for _, raw := range peers {
		success += raw.(map[string]any)["success"].(float64)
	}
	if success != 3 {
		t.Errorf("peer success counters sum to %v, want 3", success)
	}
	resp, err := http.Get(chs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	prom, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "rpserved_shard_peer_success_total{peer=") {
		t.Error("metrics output lacks the per-peer shard counter family")
	}

	// A second identical request hits the coordinator's cache: no new
	// shard traffic.
	if status, m := postMine(t, chs.URL, body); status != http.StatusOK || m["cached"] != true {
		t.Errorf("repeat scattered mine not cached: status %d, cached=%v", status, m["cached"])
	}
}
