package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// TestCacheKeyIncludesItemOrder is the regression for the api gap this
// package used to have: itemOrder (and disableErecPruning) now travel the
// wire, so two requests differing only in those knobs must not share a
// cache entry.
func TestCacheKeyIncludesItemOrder(t *testing.T) {
	var mines atomic.Int64
	s, hs := newTestServer(t, Config{}, func(ctx context.Context, db *tsdb.DB, o core.Options) (*core.Result, error) {
		mines.Add(1)
		return core.MineContext(ctx, db, o)
	})
	_ = s

	base := `"db":"shop","per":4,"minPS":3,"minRec":1`
	for i, body := range []string{
		`{` + base + `}`,
		`{` + base + `,"itemOrder":"lex"}`,
		`{` + base + `,"disableErecPruning":true}`,
		`{` + base + `}`, // repeat of the first: must hit, not re-mine
	} {
		status, m := postMine(t, hs.URL, body)
		if status != http.StatusOK {
			t.Fatalf("request %d: status %d, body %v", i, status, m)
		}
	}
	if got := mines.Load(); got != 3 {
		t.Errorf("executed %d mines, want 3 (order and pruning variants must not share cache entries)", got)
	}
}

// postShard sends a body to POST /v1/shard/mine.
func postShard(t *testing.T, base, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/shard/mine", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, m
}

// TestShardMineEndpoint exercises the peer half of scatter-gather: the
// shard tasks of a 3-way plan, addressed by fingerprint alone, must
// partition the full mine's pattern set.
func TestShardMineEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	fp := fmt.Sprintf("%016x", testDB().Fingerprint())

	status, full := postMine(t, hs.URL, `{"db":"shop","per":4,"minPS":3,"minRec":1}`)
	if status != http.StatusOK {
		t.Fatalf("full mine: status %d, body %v", status, full)
	}

	var shardTotal float64
	for i := 0; i < 3; i++ {
		status, m := postShard(t, hs.URL,
			fmt.Sprintf(`{"v":1,"fingerprint":%q,"per":4,"minPS":3,"minRec":1,"shard":%d,"shards":3}`, fp, i))
		if status != http.StatusOK {
			t.Fatalf("shard %d: status %d, body %v", i, status, m)
		}
		if m["fingerprint"] != fp {
			t.Errorf("shard %d echoed fingerprint %v, want %s", i, m["fingerprint"], fp)
		}
		if m["shard"].(float64) != float64(i) || m["shards"].(float64) != 3 {
			t.Errorf("shard %d echoed task %v/%v", i, m["shard"], m["shards"])
		}
		shardTotal += m["count"].(float64)
	}
	if shardTotal != full["count"].(float64) {
		t.Errorf("shard counts sum to %v, full mine found %v", shardTotal, full["count"])
	}

	stats := getStats(t, hs.URL)
	if got := metric(t, stats, "shardRequests"); got != 3 {
		t.Errorf("shardRequests = %v, want 3", got)
	}
	if got := metric(t, stats, "shardMined"); got != 3 {
		t.Errorf("shardMined = %v, want 3", got)
	}
}

// TestShardMineTraceOptIn pins the peer half of the trace-context
// contract: a task that asks for tracing gets the recorded timeline and
// handling time back and is journalled under the coordinator's propagated
// ID; a task that doesn't stays exactly on the pre-tracing wire shape.
func TestShardMineTraceOptIn(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	fp := fmt.Sprintf("%016x", testDB().Fingerprint())

	// Untraced: phases travel (they feed the coordinator's metrics), but
	// no timeline and no handling time.
	status, m := postShard(t, hs.URL,
		fmt.Sprintf(`{"v":1,"fingerprint":%q,"per":4,"minPS":3,"minRec":1,"shard":0,"shards":2}`, fp))
	if status != http.StatusOK {
		t.Fatalf("untraced shard task: status %d, body %v", status, m)
	}
	if m["timeline"] != nil || m["elapsedNS"] != nil {
		t.Errorf("untraced response carries trace fields: timeline=%v elapsedNS=%v", m["timeline"], m["elapsedNS"])
	}
	if phases, _ := m["phases"].([]any); len(phases) == 0 {
		t.Error("untraced response lost the phase report")
	}

	// Traced, under a propagated coordinator ID.
	status, m = postShard(t, hs.URL,
		fmt.Sprintf(`{"v":1,"fingerprint":%q,"per":4,"minPS":3,"minRec":1,"shard":1,"shards":2,"requestID":"coord-7","trace":true}`, fp))
	if status != http.StatusOK {
		t.Fatalf("traced shard task: status %d, body %v", status, m)
	}
	tl, _ := m["timeline"].(map[string]any)
	if tl == nil {
		t.Fatal("traced response has no timeline")
	}
	if spans, _ := tl["spans"].([]any); len(spans) == 0 {
		t.Error("returned timeline retained no spans")
	}
	if ns, _ := m["elapsedNS"].(float64); ns <= 0 {
		t.Errorf("elapsedNS = %v, want > 0", m["elapsedNS"])
	}

	// The peer's journal joins on the propagated ID.
	_, body := getBody(t, hs.URL+"/debug/requests?format=json")
	var jr struct {
		Recent []*RequestEntry `json:"recent"`
	}
	decodeJSON(t, body, &jr)
	byID := map[string]*RequestEntry{}
	for _, e := range jr.Recent {
		byID[e.ID] = e
	}
	e := byID["coord-7"]
	if e == nil {
		t.Fatalf("journal has no entry under the propagated ID: %v", slowIDs(jr.Recent))
	}
	if e.Outcome != "shard-ok" || !strings.Contains(e.Opts, "shard=1/2") {
		t.Errorf("journal entry = outcome %q opts %q, want shard-ok with shard=1/2", e.Outcome, e.Opts)
	}
	if !e.HasTrace {
		t.Error("traced shard task journalled without a downloadable trace")
	}
	// The untraced task minted its own ID and is journalled too.
	found := false
	for _, e := range jr.Recent {
		if e.ID != "coord-7" && strings.Contains(e.Opts, "shard=0/2") {
			found = true
			if e.HasTrace {
				t.Error("untraced shard task retained a timeline")
			}
		}
	}
	if !found {
		t.Error("untraced shard task missing from the journal")
	}
}

func TestShardMineEndpointErrors(t *testing.T) {
	s, hs := newTestServer(t, Config{}, nil)
	fp := fmt.Sprintf("%016x", testDB().Fingerprint())

	// Invalid shard spec.
	if status, _ := postShard(t, hs.URL, `{"per":4,"minPS":3,"shard":3,"shards":3,"db":"shop"}`); status != http.StatusBadRequest {
		t.Errorf("out-of-range shard index: status %d, want 400", status)
	}
	// Unknown fingerprint.
	if status, m := postShard(t, hs.URL, `{"per":4,"minPS":3,"shard":0,"shards":2,"fingerprint":"00000000000000ff"}`); status != http.StatusNotFound {
		t.Errorf("unknown fingerprint: status %d, body %v, want 404", status, m)
	}
	// Named database whose bytes don't match the pinned fingerprint.
	if status, m := postShard(t, hs.URL, `{"per":4,"minPS":3,"shard":0,"shards":2,"db":"shop","fingerprint":"00000000000000ff"}`); status != http.StatusConflict {
		t.Errorf("fingerprint mismatch: status %d, body %v, want 409", status, m)
	}
	// No addressing at all.
	if status, _ := postShard(t, hs.URL, `{"per":4,"minPS":3,"shard":0,"shards":2}`); status != http.StatusBadRequest {
		t.Errorf("unaddressed task: status %d, want 400", status)
	}
	// Future schema version.
	if status, m := postShard(t, hs.URL, fmt.Sprintf(`{"v":9,"fingerprint":%q,"per":4,"minPS":3,"shard":0,"shards":2}`, fp)); status != http.StatusBadRequest {
		t.Errorf("future version: status %d, body %v, want 400", status, m)
	} else if msg, _ := m["error"].(string); !strings.Contains(msg, "unsupported schema version") {
		t.Errorf("version error message %q does not name the version problem", msg)
	}
	// Draining servers refuse shard tasks like they refuse mines.
	s.BeginDrain()
	if status, _ := postShard(t, hs.URL, fmt.Sprintf(`{"fingerprint":%q,"per":4,"minPS":3,"shard":0,"shards":2}`, fp)); status != http.StatusServiceUnavailable {
		t.Errorf("draining: status %d, want 503", status)
	}
}

func TestMineRejectsFutureVersion(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	status, m := postMine(t, hs.URL, `{"v":2,"db":"shop","per":4,"minPS":3}`)
	if status != http.StatusBadRequest {
		t.Fatalf("v2 request: status %d, body %v, want 400", status, m)
	}
	if msg, _ := m["error"].(string); !strings.Contains(msg, "unsupported schema version 2") {
		t.Errorf("error message %q does not name the version problem", msg)
	}
}

// TestPeersModeCoordinator stands up two real peer servers and a
// coordinator configured with -peers semantics, and pins the gathered
// /v1/mine response against a single-box server over the same database.
func TestPeersModeCoordinator(t *testing.T) {
	db := testDB()
	newPeer := func() *httptest.Server {
		s, err := NewServer(Config{}, map[string]*tsdb.DB{"whatever": db})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(s.Handler())
		t.Cleanup(hs.Close)
		return hs
	}
	p1, p2 := newPeer(), newPeer()

	coord, err := NewServer(Config{Peers: []string{p1.URL, p2.URL}, Shards: 3},
		map[string]*tsdb.DB{"shop": db})
	if err != nil {
		t.Fatal(err)
	}
	chs := httptest.NewServer(coord.Handler())
	t.Cleanup(chs.Close)
	_, shs := newTestServer(t, Config{}, nil) // single-box reference

	body := `{"db":"shop","per":4,"minPS":3,"minRec":1,"collectStats":true}`
	status, got := postMine(t, chs.URL, body)
	if status != http.StatusOK {
		t.Fatalf("scattered mine: status %d, body %v", status, got)
	}
	if got["partial"] != nil {
		t.Errorf("healthy scatter marked partial: %v", got["partial"])
	}
	_, want := postMine(t, shs.URL, body)

	gp, _ := json.Marshal(got["patterns"])
	wp, _ := json.Marshal(want["patterns"])
	if string(gp) != string(wp) {
		t.Errorf("scattered patterns diverge from single-box:\n%s\nvs\n%s", gp, wp)
	}
	// Stats merge semantics: examined/pruned/candidates/depth match the
	// single-box run exactly; TreeNodes overcounts by design (each shard
	// builds its own copy of the initial tree).
	gs := got["stats"].(map[string]any)
	ws := want["stats"].(map[string]any)
	for _, f := range []string{"PatternsExamined", "PatternsPruned", "CandidateItems", "MaxDepth"} {
		if gs[f] != ws[f] {
			t.Errorf("scattered stats field %s = %v, single-box %v", f, gs[f], ws[f])
		}
	}
	if gs["TreeNodes"].(float64) < ws["TreeNodes"].(float64) {
		t.Errorf("scattered TreeNodes %v below single-box %v", gs["TreeNodes"], ws["TreeNodes"])
	}

	// The per-peer counters surface in /v1/stats and /metrics.
	stats := getStats(t, chs.URL)
	peers, ok := stats["shardPeers"].([]any)
	if !ok || len(peers) != 2 {
		t.Fatalf("stats shardPeers = %v, want 2 entries", stats["shardPeers"])
	}
	var success float64
	for _, raw := range peers {
		success += raw.(map[string]any)["success"].(float64)
	}
	if success != 3 {
		t.Errorf("peer success counters sum to %v, want 3", success)
	}
	resp, err := http.Get(chs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	prom, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), "rpserved_shard_peer_success_total{peer=") {
		t.Error("metrics output lacks the per-peer shard counter family")
	}

	// A second identical request hits the coordinator's cache: no new
	// shard traffic.
	if status, m := postMine(t, chs.URL, body); status != http.StatusOK || m["cached"] != true {
		t.Errorf("repeat scattered mine not cached: status %d, cached=%v", status, m["cached"])
	}
}

// TestFleetTraceAndStats is the acceptance test for fleet-wide tracing: a
// mine scattered over two real peer servers leaves ONE flight record on
// the coordinator — per-peer Perfetto lanes with the peers' own phase
// spans, joinable journals on both sides of every shard RPC, the per-peer
// per-phase metric, and the fleet stats fan-out.
func TestFleetTraceAndStats(t *testing.T) {
	db := testDB()
	newPeer := func() *httptest.Server {
		// A deep queue so 16 concurrent tasks admit rather than shed
		// (sheds would just be retried, adding noise to the journals).
		s, err := NewServer(Config{MaxQueue: 64}, map[string]*tsdb.DB{"whatever": db})
		if err != nil {
			t.Fatal(err)
		}
		hs := httptest.NewServer(s.Handler())
		t.Cleanup(hs.Close)
		return hs
	}
	p1, p2 := newPeer(), newPeer()

	// 16 tasks over 2 peers: the consistent-hash ring homes every task
	// independently, so both peers end up serving some.
	coord, err := NewServer(Config{Peers: []string{p1.URL, p2.URL}, Shards: 16},
		map[string]*tsdb.DB{"shop": db})
	if err != nil {
		t.Fatal(err)
	}
	chs := httptest.NewServer(coord.Handler())
	t.Cleanup(chs.Close)

	if status, m := postMine(t, chs.URL, `{"db":"shop","per":4,"minPS":3,"minRec":1}`); status != http.StatusOK {
		t.Fatalf("scattered mine: status %d, body %v", status, m)
	}

	// The coordinator journalled the request with a downloadable trace.
	_, body := getBody(t, chs.URL+"/debug/requests?format=json")
	var jr struct {
		Recent []*RequestEntry `json:"recent"`
	}
	decodeJSON(t, body, &jr)
	if len(jr.Recent) != 1 || !jr.Recent[0].HasTrace {
		t.Fatalf("coordinator journal = %+v, want one traced entry", jr.Recent)
	}
	reqID := jr.Recent[0].ID

	// The merged trace validates and carries one process track per peer.
	resp, trace := getBody(t, chs.URL+"/debug/requests/trace?id="+reqID)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("trace download: status %d body %s", resp.StatusCode, trace)
	}
	if _, err := obs.ValidateTraceEvents(strings.NewReader(trace)); err != nil {
		t.Fatalf("merged fleet trace invalid: %v", err)
	}
	var f struct {
		TraceEvents []obs.TraceEvent `json:"traceEvents"`
	}
	decodeJSON(t, trace, &f)
	names := map[int]string{}
	spanNames := map[int]map[string]bool{}
	for _, ev := range f.TraceEvents {
		switch ev.Ph {
		case "M":
			if ev.Name == "process_name" {
				names[ev.Pid], _ = ev.Args["name"].(string)
			}
		case "X":
			if spanNames[ev.Pid] == nil {
				spanNames[ev.Pid] = map[string]bool{}
			}
			spanNames[ev.Pid][ev.Name] = true
		}
	}
	hasPrefix := func(set map[string]bool, prefix string) bool {
		for n := range set {
			if strings.HasPrefix(n, prefix) {
				return true
			}
		}
		return false
	}
	if names[1] == "" || strings.HasPrefix(names[1], "peer ") {
		t.Errorf("pid 1 named %q, want the coordinator's own track", names[1])
	}
	// The coordinator lane keeps its per-task dispatch spans ("shard
	// shard=i/n"), one per scattered task.
	if !hasPrefix(spanNames[1], "shard") {
		t.Errorf("coordinator lane lacks its shard dispatch spans: %v", spanNames[1])
	}
	lanesFor := map[string]bool{}
	for pid, name := range names {
		if pid == 1 {
			continue
		}
		lanesFor[name] = true
		// Every peer lane carries the peer's own run: its admission wait
		// and its whole-task span, realigned onto the coordinator's clock.
		// (Per-item "mine" spans only appear on shards that drew items —
		// with 16 shards over this tiny dictionary most mine nothing.)
		if !spanNames[pid]["queue"] || !spanNames[pid]["total"] {
			t.Errorf("track %q lacks the peer's queue/total spans: %v", name, spanNames[pid])
		}
		if !hasPrefix(spanNames[pid], "mine") && !spanNames[pid]["scan"] {
			t.Errorf("track %q carries no phase spans at all: %v", name, spanNames[pid])
		}
	}
	for _, ps := range []*httptest.Server{p1, p2} {
		if !lanesFor["peer "+ps.URL] {
			t.Errorf("merged trace has no lane for peer %s (have %v)", ps.URL, names)
		}
	}

	// Both peers journalled their shard tasks under the coordinator's ID.
	for i, ps := range []*httptest.Server{p1, p2} {
		_, pbody := getBody(t, ps.URL+"/debug/requests?format=json")
		var pjr struct {
			Recent []*RequestEntry `json:"recent"`
		}
		decodeJSON(t, pbody, &pjr)
		served := 0
		for _, pe := range pjr.Recent {
			if pe.ID == reqID && pe.Outcome == "shard-ok" {
				served++
			}
		}
		// (Shed-and-retried attempts journal under the same ID too; at
		// least one task must have been served to completion here.)
		if served == 0 {
			t.Errorf("peer %d journal has no served tasks under coordinator ID %s", i+1, reqID)
		}
	}

	// The peers' phase reports surface as the per-peer per-phase metric.
	resp, prom := getBody(t, chs.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if !strings.Contains(prom, "rpserved_shard_peer_phase_seconds{peer=") {
		t.Error("metrics output lacks rpserved_shard_peer_phase_seconds")
	}

	// The fleet stats fan-out reaches both peers.
	resp, fleet := getBody(t, chs.URL+"/v1/fleet/stats")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("fleet stats: status %d body %s", resp.StatusCode, fleet)
	}
	var fs struct {
		Coordinator map[string]any `json:"coordinator"`
		Peers       []struct {
			URL   string          `json:"url"`
			Stats json.RawMessage `json:"stats"`
			Error string          `json:"error"`
		} `json:"peers"`
	}
	decodeJSON(t, fleet, &fs)
	if fs.Coordinator == nil || len(fs.Peers) != 2 {
		t.Fatalf("fleet stats shape: coordinator=%v, %d peers", fs.Coordinator != nil, len(fs.Peers))
	}
	for _, p := range fs.Peers {
		if p.Error != "" || len(p.Stats) == 0 {
			t.Errorf("peer %s fleet entry: error=%q stats bytes=%d", p.URL, p.Error, len(p.Stats))
		}
	}

	// A single-box server has no fleet to report on.
	_, shs := newTestServer(t, Config{}, nil)
	if resp, _ := getBody(t, shs.URL+"/v1/fleet/stats"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("single-box fleet stats: status %d, want 404", resp.StatusCode)
	}
}
