package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/tsdb"
)

// registryTestServer starts a registry-only server: no preloaded
// databases, everything arrives through POST /v1/datasets.
func registryTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// testDBText renders testDB (or a variant shifted by seed) as TDB text.
func testDBText(t *testing.T, seed int64) []byte {
	t.Helper()
	b := tsdb.NewBuilder()
	ts := int64(1)
	for i := 0; i < 30; i++ {
		b.Add(fmt.Sprintf("bread-%d", seed), ts)
		if i%2 == 0 {
			b.Add("jam", ts)
		}
		ts += 2
	}
	var buf bytes.Buffer
	if err := tsdb.Write(&buf, b.Build()); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// upload POSTs body to /v1/datasets and decodes the JSON response.
func upload(t *testing.T, base string, body []byte) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/datasets", "application/octet-stream", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding upload response: %v", err)
	}
	return resp.StatusCode, m
}

func listDatasets(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/datasets")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestDatasetLifecycle(t *testing.T) {
	_, hs := registryTestServer(t, Config{})

	// Upload (text format) and get a fingerprint back.
	status, up := upload(t, hs.URL, testDBText(t, 1))
	if status != http.StatusCreated {
		t.Fatalf("upload: status %d, body %v", status, up)
	}
	fp, _ := up["fingerprint"].(string)
	if len(fp) != 16 {
		t.Fatalf("upload returned bad fingerprint %q", fp)
	}
	if up["existing"] != false || up["transactions"].(float64) != 30 {
		t.Errorf("unexpected upload response: %v", up)
	}

	// Re-uploading the same content is idempotent: same fingerprint,
	// existing=true, 200 instead of 201.
	status, again := upload(t, hs.URL, testDBText(t, 1))
	if status != http.StatusOK || again["existing"] != true || again["fingerprint"] != fp {
		t.Fatalf("re-upload: status %d, body %v", status, again)
	}

	// The same database in v2 mapped format fingerprints identically, so
	// the registry deduplicates across formats too.
	db, err := tsdb.ReadBytes(testDBText(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	var v2 bytes.Buffer
	if err := tsdb.WriteMapped(&v2, db); err != nil {
		t.Fatal(err)
	}
	if status, m := upload(t, hs.URL, v2.Bytes()); status != http.StatusOK || m["fingerprint"] != fp {
		t.Fatalf("v2 re-upload: status %d, body %v", status, m)
	}

	// Mine by fingerprint.
	status, mine := postMine(t, hs.URL, fmt.Sprintf(`{"dataset":%q,"per":4,"minPS":3}`, fp))
	if status != http.StatusOK {
		t.Fatalf("mine by fingerprint: status %d, body %v", status, mine)
	}
	if n := mine["count"].(float64); n < 1 {
		t.Fatalf("mine by fingerprint found no patterns: %v", mine)
	}

	// An identical repeat hits the result cache (keyed by fingerprint).
	if status, second := postMine(t, hs.URL, fmt.Sprintf(`{"dataset":%q,"per":4,"minPS":3}`, fp)); status != http.StatusOK || second["cached"] != true {
		t.Fatalf("repeat mine not cached: status %d, body %v", status, second)
	}

	// The listing shows the dataset with its mine hits.
	ls := listDatasets(t, hs.URL)
	if ls["count"].(float64) != 1 {
		t.Fatalf("listing: %v", ls)
	}
	ds := ls["datasets"].([]any)[0].(map[string]any)
	if ds["fingerprint"] != fp || ds["hits"].(float64) < 2 {
		t.Errorf("listing entry: %v", ds)
	}

	// DELETE evicts; mining it afterwards is a 404.
	req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/datasets/"+fp, nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		t.Fatalf("delete: status %d", resp.StatusCode)
	}
	if status, m := postMine(t, hs.URL, fmt.Sprintf(`{"dataset":%q,"per":4,"minPS":3}`, fp)); status != http.StatusNotFound {
		t.Fatalf("mine after delete: status %d, body %v", status, m)
	}
}

func TestDatasetUploadErrors(t *testing.T) {
	_, hs := registryTestServer(t, Config{MaxUpload: 256})

	// Unparseable content is a 400 naming the parse error.
	status, m := upload(t, hs.URL, []byte("not-a-number\tx\n"))
	if status != http.StatusBadRequest || !strings.Contains(m["error"].(string), "parsing dataset") {
		t.Fatalf("bad upload: status %d, body %v", status, m)
	}

	// An over-limit body gets the same JSON 413 shape as /v1/mine.
	status, m = upload(t, hs.URL, bytes.Repeat([]byte("1\tx\n"), 200))
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized upload: status %d, body %v", status, m)
	}
	if !strings.Contains(m["error"].(string), "256-byte limit") {
		t.Errorf("413 body does not name the limit: %v", m)
	}

	// Naming both db and dataset in a mine request is rejected.
	if status, m := postMine(t, hs.URL, `{"db":"shop","dataset":"0123456789abcdef"}`); status != http.StatusBadRequest {
		t.Fatalf("db+dataset mine: status %d, body %v", status, m)
	}

	// A malformed fingerprint is a 400, an unknown one a 404.
	if status, _ := postMine(t, hs.URL, `{"dataset":"xyz"}`); status != http.StatusBadRequest {
		t.Fatalf("bad fingerprint: status %d", status)
	}
	if status, _ := postMine(t, hs.URL, `{"dataset":"0123456789abcdef"}`); status != http.StatusNotFound {
		t.Fatalf("unknown fingerprint: status %d", status)
	}

	// DELETE of an unknown fingerprint is a 404.
	req, err := http.NewRequest(http.MethodDelete, hs.URL+"/v1/datasets/0123456789abcdef", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("delete unknown: status %d", resp.StatusCode)
	}
}

func TestRegistryLRUEviction(t *testing.T) {
	s, hs := registryTestServer(t, Config{RegistryMaxEntries: 2})

	fps := make([]string, 3)
	for i := range fps {
		status, m := upload(t, hs.URL, testDBText(t, int64(i)))
		if status != http.StatusCreated {
			t.Fatalf("upload %d: status %d, body %v", i, status, m)
		}
		fps[i] = m["fingerprint"].(string)
	}

	// The third upload displaced the least recently used (the first).
	entries, _ := s.registry.stats()
	if entries != 2 {
		t.Fatalf("registry holds %d entries, want 2", entries)
	}
	if status, _ := postMine(t, hs.URL, fmt.Sprintf(`{"dataset":%q,"per":4,"minPS":3}`, fps[0])); status != http.StatusNotFound {
		t.Errorf("evicted dataset still minable: status %d", status)
	}
	if status, _ := postMine(t, hs.URL, fmt.Sprintf(`{"dataset":%q,"per":4,"minPS":3}`, fps[1])); status != http.StatusOK {
		t.Errorf("retained dataset not minable: status %d", status)
	}

	// Mining fps[1] made it most recently used, so a fourth upload must
	// displace fps[2] instead.
	status, m := upload(t, hs.URL, testDBText(t, 9))
	if status != http.StatusCreated {
		t.Fatalf("fourth upload: status %d, body %v", status, m)
	}
	if _, ok := s.registry.get(mustFP(t, fps[1])); !ok {
		t.Error("recently mined dataset was evicted instead of the LRU one")
	}
	if _, ok := s.registry.get(mustFP(t, fps[2])); ok {
		t.Error("least recently used dataset survived eviction")
	}
	if m["evicted"].(float64) != 1 {
		t.Errorf("upload response reported evicted=%v, want 1", m["evicted"])
	}
}

func TestRegistryByteBound(t *testing.T) {
	// A byte budget large enough for roughly one test dataset: the second
	// upload must displace the first, and a dataset bigger than the whole
	// budget is rejected outright.
	db, err := tsdb.ReadBytes(testDBText(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	budget := estimateDBBytes(db) + estimateDBBytes(db)/2
	s, hs := registryTestServer(t, Config{RegistryMaxBytes: budget})

	status, first := upload(t, hs.URL, testDBText(t, 0))
	if status != http.StatusCreated {
		t.Fatalf("first upload: status %d, body %v", status, first)
	}
	status, second := upload(t, hs.URL, testDBText(t, 1))
	if status != http.StatusCreated || second["evicted"].(float64) != 1 {
		t.Fatalf("second upload: status %d, body %v", status, second)
	}
	entries, bytes := s.registry.stats()
	if entries != 1 || bytes > budget {
		t.Fatalf("registry at %d entries / %d bytes, want 1 entry within %d", entries, bytes, budget)
	}

	// Oversized dataset: many more transactions than the budget covers.
	_, hs2 := registryTestServer(t, Config{RegistryMaxBytes: 64})
	status, m := upload(t, hs2.URL, testDBText(t, 5))
	if status != http.StatusRequestEntityTooLarge || !strings.Contains(m["error"].(string), "registry memory budget") {
		t.Fatalf("oversized dataset: status %d, body %v", status, m)
	}
}

func TestRegistryOnlyServerStats(t *testing.T) {
	_, hs := registryTestServer(t, Config{})

	// A registry-only server starts, reports empty stats, and gives a
	// helpful error for an unnamed mine.
	stats := getStats(t, hs.URL)
	reg, ok := stats["registry"].(map[string]any)
	if !ok || reg["entries"].(float64) != 0 {
		t.Fatalf("registry stats: %v", stats["registry"])
	}
	status, m := postMine(t, hs.URL, `{"per":4,"minPS":3}`)
	if status != http.StatusBadRequest || !strings.Contains(m["error"].(string), "upload one to /v1/datasets") {
		t.Fatalf("unnamed mine on empty server: status %d, body %v", status, m)
	}

	if _, m := upload(t, hs.URL, testDBText(t, 3)); m["fingerprint"] == "" {
		t.Fatal("upload failed on registry-only server")
	}
	stats = getStats(t, hs.URL)
	if reg := stats["registry"].(map[string]any); reg["entries"].(float64) != 1 {
		t.Fatalf("registry stats after upload: %v", reg)
	}
	if metric(t, stats, "uploads") != 1 {
		t.Errorf("uploads counter: %v", metric(t, stats, "uploads"))
	}
}

func mustFP(t *testing.T, s string) uint64 {
	t.Helper()
	fp, err := parseFingerprint(s)
	if err != nil {
		t.Fatal(err)
	}
	return fp
}
