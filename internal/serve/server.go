// Package serve implements the rpserved HTTP mining service: a handler
// that runs RP-growth over pre-loaded databases on demand, protected by a
// semaphore-based admission controller, an LRU result cache with
// single-flight deduplication, per-request cancellation wired through
// core.MineContext, and graceful drain for shutdown. The package is
// net/http-only by design — cmd/rpserved adds flags, listening and signal
// handling, nothing else.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"sync"
	"time"

	"github.com/recurpat/rp/internal/api"
	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/obs/prof"
	"github.com/recurpat/rp/internal/shard"
	"github.com/recurpat/rp/internal/tsdb"
)

// now is the single clock read-out of the package, used for request timing
// and histogram observations; the service's outputs stay deterministic in
// everything but the timing fields.
func now() time.Time {
	return time.Now() //rpvet:allow determinism -- serving metrics need wall time
}

// statusClientClosedRequest is the (nginx-convention) status recorded when
// the client disconnected or cancelled while its mine was queued or
// running. The client never sees it; it exists for logs and tests.
const statusClientClosedRequest = 499

// errDraining reports that the server has begun shutting down and accepts
// no new mining work.
var errDraining = errors.New("serve: server is draining")

// Config tunes the service. The zero value is usable: DefaultConfig
// documents what each zero resolves to.
type Config struct {
	// MaxConcurrent caps simultaneously running mines. 0 → GOMAXPROCS.
	MaxConcurrent int
	// MaxQueue caps requests waiting for a mining slot; beyond it requests
	// are shed with 429. 0 → 4×MaxConcurrent, negative → no queue (shed
	// immediately when all slots are busy).
	MaxQueue int
	// QueueTimeout bounds how long a queued request waits for a slot
	// before being shed with 429. 0 → 1s, negative → wait as long as the
	// client does.
	QueueTimeout time.Duration
	// MineTimeout bounds a single mining run; an over-limit run is
	// cancelled via its context and reported as 503. 0 → unlimited.
	MineTimeout time.Duration
	// CacheSize caps the result cache in entries. 0 → 64, negative →
	// caching disabled.
	CacheSize int
	// MaxParallelism caps the per-request Parallelism option (requests
	// asking for more are clamped, not rejected). 0 → GOMAXPROCS.
	MaxParallelism int
	// MaxBody caps the request body in bytes, enforced with
	// http.MaxBytesReader; over-limit requests are rejected with 413.
	// 0 → 1 MiB, negative → unlimited.
	MaxBody int64
	// MaxUpload caps a POST /v1/datasets body in bytes, with the same 413
	// shape as MaxBody. It is separate because datasets are legitimately
	// orders of magnitude larger than mine requests. 0 → 64 MiB, negative →
	// unlimited.
	MaxUpload int64
	// RegistryMaxBytes bounds the estimated resident size of all registered
	// datasets; least recently mined datasets are evicted to stay under it.
	// 0 → 256 MiB, negative → unbounded.
	RegistryMaxBytes int64
	// RegistryMaxEntries bounds the number of registered datasets. 0 → 64,
	// negative → unbounded.
	RegistryMaxEntries int
	// SpillDir is where uploads are spilled before parsing. "" →
	// os.TempDir() (via os.CreateTemp's convention).
	SpillDir string
	// JournalSize caps the request journal backing /debug/requests, in
	// entries. 0 → 64, negative → journal (and the /debug/requests
	// endpoints) disabled.
	JournalSize int
	// SlowThreshold is the elapsed time at which a journalled request also
	// enters the long-term slow bucket, which survives ring churn. 0 →
	// 500ms, negative → no slow bucket.
	SlowThreshold time.Duration
	// TimelineSpans caps the per-run span timeline retained for each
	// executed mine (downloadable as a Chrome trace from
	// /debug/requests/trace). 0 → obs.DefaultTimelineSpans, negative → no
	// timelines (journal entries keep their phase breakdowns only). No
	// timelines are recorded when the journal is disabled.
	TimelineSpans int
	// Logger receives the access log: one line per /v1/mine request with
	// its id, database, options digest, outcome and timings. nil → discard.
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ when set. Off by
	// default: the profiling endpoints can stall the process mid-scrape.
	Pprof bool

	// ProfileInterval, when positive, turns on continuous profiling: a
	// background recorder captures a CPU profile and a heap snapshot every
	// interval into a bounded ring served by GET /debug/profiles. 0 (and
	// negative) → no recorder. The server must be Closed to stop the
	// recorder's goroutine.
	ProfileInterval time.Duration
	// ProfileRetain bounds the capture ring (entries, both kinds counted).
	// 0 → 16.
	ProfileRetain int
	// ProfileDir, when non-empty, additionally spills each capture to disk
	// so profiles survive a crash; pruned alongside the ring.
	ProfileDir string

	// Peers, when non-empty, turns this server into a scatter-gather
	// coordinator: each executed /v1/mine splits into Shards tasks POSTed
	// to the peers' /v1/shard/mine endpoints (consistent-hash routed on
	// the database fingerprint and shard index) and the partials merge
	// into a result byte-identical to a single-box mine. Peers must serve
	// the same database bytes; tasks pin the content fingerprint.
	Peers []string
	// Shards is the number of shard tasks per mine in peers mode.
	// 0 → len(Peers).
	Shards int
	// ShardTimeout, ShardRetries, ShardBackoff and ShardHedge tune the
	// shard HTTP client; zero values resolve per shard.ClientConfig
	// (30s timeout, 2 retries, 100ms initial backoff, hedging off).
	ShardTimeout time.Duration
	ShardRetries int
	ShardBackoff time.Duration
	ShardHedge   time.Duration
	// ShardPolicy selects partial-failure handling: "fail-fast" (default)
	// or "best-effort" (serve the surviving shards' patterns marked
	// partial).
	ShardPolicy string
}

// withDefaults resolves the zero values documented on Config.
func (c Config) withDefaults() Config {
	if c.MaxConcurrent <= 0 {
		c.MaxConcurrent = runtime.GOMAXPROCS(0)
	}
	if c.MaxQueue == 0 {
		c.MaxQueue = 4 * c.MaxConcurrent
	}
	if c.MaxQueue < 0 {
		c.MaxQueue = 0
	}
	if c.QueueTimeout == 0 {
		c.QueueTimeout = time.Second
	}
	if c.QueueTimeout < 0 {
		c.QueueTimeout = 0
	}
	if c.CacheSize == 0 {
		c.CacheSize = 64
	}
	if c.MaxParallelism <= 0 {
		c.MaxParallelism = runtime.GOMAXPROCS(0)
	}
	if c.MaxBody == 0 {
		c.MaxBody = 1 << 20
	}
	if c.MaxBody < 0 {
		c.MaxBody = 0
	}
	if c.MaxUpload == 0 {
		c.MaxUpload = 64 << 20
	}
	if c.MaxUpload < 0 {
		c.MaxUpload = 0
	}
	if c.RegistryMaxBytes == 0 {
		c.RegistryMaxBytes = 256 << 20
	}
	if c.RegistryMaxBytes < 0 {
		c.RegistryMaxBytes = 0
	}
	if c.RegistryMaxEntries == 0 {
		c.RegistryMaxEntries = 64
	}
	if c.RegistryMaxEntries < 0 {
		c.RegistryMaxEntries = 0
	}
	if c.JournalSize == 0 {
		c.JournalSize = 64
	}
	if c.SlowThreshold == 0 {
		c.SlowThreshold = 500 * time.Millisecond
	}
	if c.Logger == nil {
		c.Logger = obs.NopLogger()
	}
	if c.Shards == 0 {
		c.Shards = len(c.Peers)
	}
	return c
}

// dbEntry is one served database with its precomputed cache identity.
type dbEntry struct {
	name string
	db   *tsdb.DB
	fp   uint64
}

// Server is the mining service. Create with NewServer, mount Handler on an
// http.Server, and call Drain before exiting.
type Server struct {
	cfg      Config
	dbs      map[string]*dbEntry
	names    []string // sorted, for deterministic listings
	registry *registry
	adm      *admission
	cache    *resultCache
	flight   *flightGroup
	metrics  metrics
	journal  *journal // nil when Config.JournalSize is negative
	handler  http.Handler

	// mineFn runs one mine; tests substitute stubs to simulate slow or
	// failing miners without real databases.
	mineFn func(ctx context.Context, db *tsdb.DB, o core.Options) (*core.Result, error)

	// shardClient and coord are set in peers mode (Config.Peers): executed
	// mines scatter over the peer set instead of running locally.
	shardClient *shard.Client
	coord       *shard.Coordinator

	// recorder is the continuous-profiling capture loop behind
	// /debug/profiles; nil unless Config.ProfileInterval > 0. Stopped by
	// Close.
	recorder *prof.Recorder

	// Drain machinery: beginMine/endMine bracket every mining run (cache
	// hits excluded — they borrow no resources worth waiting for).
	drainMu  sync.Mutex
	draining bool
	active   int
	idle     chan struct{} // non-nil while a Drain waits for active==0
}

// NewServer builds a Server over the given databases (name → DB). The map
// may be empty: a registry-only server starts with no preloaded databases
// and serves whatever clients upload to POST /v1/datasets.
func NewServer(cfg Config, dbs map[string]*tsdb.DB) (*Server, error) {
	cfg = cfg.withDefaults()
	s := &Server{
		cfg:      cfg,
		dbs:      make(map[string]*dbEntry, len(dbs)),
		registry: newRegistry(cfg.RegistryMaxBytes, cfg.RegistryMaxEntries),
		adm:      newAdmission(cfg.MaxConcurrent, cfg.MaxQueue, cfg.QueueTimeout),
		cache:    newResultCache(cfg.CacheSize),
		flight:   newFlightGroup(),
		mineFn:   core.MineContext,
	}
	if cfg.JournalSize > 0 {
		s.journal = newJournal(cfg.JournalSize, cfg.SlowThreshold)
	}
	if len(cfg.Peers) > 0 {
		client, err := shard.NewClient(shard.ClientConfig{
			Peers:   cfg.Peers,
			Timeout: cfg.ShardTimeout,
			Retries: cfg.ShardRetries,
			Backoff: cfg.ShardBackoff,
			Hedge:   cfg.ShardHedge,
		})
		if err != nil {
			return nil, err
		}
		policy, err := shard.ParsePolicy(cfg.ShardPolicy)
		if err != nil {
			return nil, err
		}
		s.shardClient = client
		s.coord = &shard.Coordinator{Count: cfg.Shards, Exec: client, Policy: policy}
	}
	for name, db := range dbs {
		if name == "" {
			return nil, errors.New("serve: database name must be non-empty")
		}
		s.dbs[name] = &dbEntry{name: name, db: db, fp: db.Fingerprint()}
		s.names = append(s.names, name)
	}
	sort.Strings(s.names)

	if cfg.ProfileInterval > 0 {
		s.recorder = prof.New(prof.Config{
			Interval: cfg.ProfileInterval,
			Retain:   cfg.ProfileRetain,
			Dir:      cfg.ProfileDir,
			Load:     func() float64 { return float64(s.adm.inFlight()) },
			Logger:   cfg.Logger,
		})
		if err := s.recorder.Start(); err != nil {
			return nil, err
		}
	}

	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/mine", s.handleMine)
	mux.HandleFunc("POST /v1/shard/mine", s.handleShardMine)
	mux.HandleFunc("POST /v1/datasets", s.handleDatasetUpload)
	mux.HandleFunc("GET /v1/datasets", s.handleDatasetList)
	mux.HandleFunc("DELETE /v1/datasets/{fp}", s.handleDatasetDelete)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/fleet/stats", s.handleFleetStats)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.Handle("GET /debug/vars", expvar.Handler())
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /debug/requests/trace", s.handleRequestTrace)
	mux.HandleFunc("GET /debug/profiles", s.handleProfiles)
	mux.HandleFunc("GET /debug/profiles/{id}", s.handleProfileDownload)
	if cfg.Pprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.handler = mux
	return s, nil
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler { return s.handler }

// Close releases the server's background resources — today that is the
// continuous-profiling recorder. It does not drain; call Drain first.
// Safe to call when profiling is off, and at most once otherwise.
func (s *Server) Close() {
	if s.recorder != nil {
		s.recorder.Stop()
	}
}

// PublishExpvar exposes this server's stats payload as the expvar variable
// "rpserved" (rendered by GET /debug/vars alongside the runtime's
// memstats). Expvar registration is global and permanent, so this must be
// called at most once per process; cmd/rpserved calls it, tests do not.
func (s *Server) PublishExpvar() {
	expvar.Publish("rpserved", expvar.Func(func() any { return s.statsPayload() }))
}

// BeginDrain flips the server into draining mode: new mines are refused
// with 503 and /healthz starts failing, while already-running mines
// continue. It is the non-blocking half of Drain.
func (s *Server) BeginDrain() {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
}

// Drain begins draining (if BeginDrain hasn't already) and blocks until
// every in-flight mine has finished or ctx fires. Cache-hit responses and
// stats reads are not waited for — http.Server.Shutdown covers those.
func (s *Server) Drain(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	if s.active == 0 {
		s.drainMu.Unlock()
		return nil
	}
	if s.idle == nil {
		s.idle = make(chan struct{})
	}
	idle := s.idle
	s.drainMu.Unlock()

	select {
	case <-idle:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Draining reports whether BeginDrain or Drain has been called.
func (s *Server) Draining() bool {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	return s.draining
}

// beginMine registers a mining run for drain accounting, refusing when the
// server is draining.
func (s *Server) beginMine() error {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return errDraining
	}
	s.active++
	return nil
}

func (s *Server) endMine() {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	s.active--
	if s.active == 0 && s.idle != nil {
		close(s.idle)
		s.idle = nil
	}
}

// maxMineAttempts bounds the follower-retry loop: how many times one
// request will re-enter the single-flight group after watching a leader
// get cancelled out from under it.
const maxMineAttempts = 3

// accessRecord accumulates one /v1/mine request's access-log fields; the
// deferred logger in handleMine emits it however the request ends.
type accessRecord struct {
	id        string
	db        string
	fp        string
	opts      string
	outcome   string // "ok", "cache-hit", "coalesced", "shed", ... — one word per exit path
	status    int
	cached    bool
	patterns  int
	queueWait time.Duration // time spent waiting for a mining slot (leaders only)
	mineTime  time.Duration // the producing mine's wall time (historic on cache hits)

	// allocBytes and cpuTime are the producing mine's resource cost,
	// measured as process-counter deltas around the single-flight mining
	// section (historic on cache hits; an upper bound when mines overlap).
	allocBytes uint64
	cpuTime    time.Duration

	// Journal-only fields: the producing run's per-phase report and span
	// timeline, and whether they were inherited from a cached result
	// rather than measured during this request.
	report   obs.PhaseReport
	timeline obs.TimelineSnapshot
	historic bool
}

// inherit fills the record's producing-run fields from a cached result.
func (rec *accessRecord) inherit(v *cachedResult) {
	rec.mineTime = v.mineTime
	rec.allocBytes, rec.cpuTime = v.allocBytes, v.cpuTime
	rec.report, rec.timeline, rec.historic = v.report, v.timeline, true
}

// deny records a failed request's outcome and status in one move.
func (rec *accessRecord) deny(outcome string, status int) {
	rec.outcome, rec.status = outcome, status
}

// optionsDigest is the compact access-log form of the resolved options.
// Every Options field that can change the output (or its search cost) is
// present, so two log lines with equal digests describe the same mine.
func optionsDigest(o core.Options) string {
	order := api.ItemOrderSupport
	if o.ItemOrder == core.Lexicographic {
		order = api.ItemOrderLex
	}
	erec := "on"
	if o.DisableErecPruning {
		erec = "off"
	}
	return fmt.Sprintf("per=%d,minPS=%d,minRec=%d,maxLen=%d,par=%d,order=%s,erec=%s",
		o.Per, o.MinPS, o.MinRec, o.MaxLen, o.Parallelism, order, erec)
}

func (s *Server) handleMine(w http.ResponseWriter, r *http.Request) {
	start := now()
	s.metrics.requests.Add(1)
	rec := &accessRecord{id: obs.RequestID(), outcome: "ok", status: http.StatusOK}
	defer func() {
		elapsed := time.Since(start)
		s.cfg.Logger.Info("mine",
			"id", rec.id, "db", rec.db, "fp", rec.fp, "opts", rec.opts,
			"outcome", rec.outcome, "status", rec.status, "cached", rec.cached,
			"patterns", rec.patterns,
			"queueMS", float64(rec.queueWait)/1e6,
			"mineMS", float64(rec.mineTime)/1e6,
			"allocBytes", rec.allocBytes,
			"cpuMS", float64(rec.cpuTime)/1e6,
			"elapsedMS", float64(elapsed)/1e6)
		s.journalRecord(rec, start, elapsed)
	}()

	body := r.Body
	if s.cfg.MaxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	}
	req, err := api.DecodeMineRequest(body)
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			// Distinct from plain bad requests: a too-large body usually
			// means a client is POSTing the database instead of naming it.
			rec.deny("body-too-large", http.StatusRequestEntityTooLarge)
			s.fail(w, http.StatusRequestEntityTooLarge,
				"request body exceeds the %d-byte limit", mbe.Limit)
			return
		}
		rec.deny("bad-request", http.StatusBadRequest)
		s.fail(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}

	// Resolve the target: a registered dataset by fingerprint, or a
	// preloaded database by name. Either way no transaction data rides in
	// the request — mine-by-reference is what makes repeat mining cheap.
	var ent *dbEntry
	switch {
	case req.Dataset != "" && req.DB != "":
		rec.deny("bad-request", http.StatusBadRequest)
		s.fail(w, http.StatusBadRequest, "serve: set db or dataset, not both")
		return
	case req.Dataset != "":
		var status int
		var err error
		ent, status, err = s.lookupDataset(req.Dataset)
		if err != nil {
			rec.deny("unknown-dataset", status)
			s.fail(w, status, "%v", err)
			return
		}
	default:
		var status int
		var err error
		ent, status, err = s.lookupDB(req.DB)
		if err != nil {
			rec.deny("unknown-db", status)
			s.fail(w, status, "%v", err)
			return
		}
	}
	rec.db, rec.fp = ent.name, fmt.Sprintf("%016x", ent.fp)

	// Threshold resolution and validation live in the api package so the
	// shard endpoint, remote peers and this handler can never disagree.
	o, err := req.ToCoreOptions(ent.db.Len())
	if err != nil {
		rec.deny("invalid-options", http.StatusBadRequest)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if o.Parallelism > s.cfg.MaxParallelism {
		o.Parallelism = s.cfg.MaxParallelism
	}
	rec.opts = optionsDigest(o)
	// Mine with stats unconditionally (the counters cost nothing next to
	// the mining itself) so one cached entry serves stats and no-stats
	// requests alike; the response includes them only on request.
	o.CollectStats = true

	key := cacheKey{
		fp:     ent.fp,
		per:    o.Per,
		minPS:  o.MinPS,
		minRec: o.MinRec,
		maxLen: o.MaxLen,
		order:  o.ItemOrder,
		noErec: o.DisableErecPruning,
	}
	if v, ok := s.cache.get(key); ok {
		s.metrics.cacheHits.Add(1)
		rec.outcome, rec.cached = "cache-hit", true
		rec.patterns = len(v.patterns)
		rec.inherit(v)
		s.writeMineResponse(w, ent, req, v, true, start)
		return
	}
	s.metrics.cacheMisses.Add(1)

	var (
		v      *cachedResult
		mErr   error
		leader bool
	)
	for attempt := 0; attempt < maxMineAttempts; attempt++ {
		v, mErr, leader = s.flight.do(r.Context(), key, func() (*cachedResult, error) {
			return s.runMine(r.Context(), ent, o, key, rec)
		})
		if mErr == nil {
			break
		}
		// A follower whose leader was cancelled retries while its own
		// request is still live; one of the retrying followers becomes
		// the next leader. Shed and drain outcomes are shared as-is.
		var cerr *core.CancelError
		if !leader && errors.As(mErr, &cerr) && r.Context().Err() == nil {
			continue
		}
		break
	}

	switch {
	case mErr == nil:
		if !leader {
			rec.outcome, rec.cached = "coalesced", true
			rec.inherit(v)
		}
		rec.patterns = len(v.patterns)
		s.writeMineResponse(w, ent, req, v, !leader, start)
	case errors.Is(mErr, errShed):
		s.metrics.shed.Add(1)
		rec.deny("shed", http.StatusTooManyRequests)
		w.Header().Set("Retry-After", "1")
		s.writeError(w, http.StatusTooManyRequests, mErr.Error())
	case errors.Is(mErr, errDraining):
		rec.deny("draining", http.StatusServiceUnavailable)
		s.writeError(w, http.StatusServiceUnavailable, mErr.Error())
	case r.Context().Err() != nil:
		// The client cancelled or disconnected; it won't read this, but
		// record the outcome for logs and metrics.
		s.metrics.cancelled.Add(1)
		rec.deny("cancelled", statusClientClosedRequest)
		s.writeError(w, statusClientClosedRequest, "client cancelled request")
	case errors.Is(mErr, context.DeadlineExceeded):
		s.metrics.timeouts.Add(1)
		rec.deny("timeout", http.StatusServiceUnavailable)
		s.writeError(w, http.StatusServiceUnavailable,
			fmt.Sprintf("mine exceeded the server-side time limit of %v", s.cfg.MineTimeout))
	default:
		rec.deny("error", http.StatusInternalServerError)
		s.fail(w, http.StatusInternalServerError, "mining failed: %v", mErr)
	}
}

// runMine is the single-flight leader path: drain accounting, admission,
// the optional server-side deadline, the mine itself (phase-traced), and
// cache fill. rec is the leader's access record; queue wait and mine time
// land there as they become known.
func (s *Server) runMine(ctx context.Context, ent *dbEntry, o core.Options, key cacheKey, rec *accessRecord) (*cachedResult, error) {
	if err := s.beginMine(); err != nil {
		return nil, err
	}
	defer s.endMine()

	queued := now()
	err := s.adm.acquire(ctx)
	rec.queueWait = time.Since(queued)
	if err != nil {
		return nil, err
	}
	defer s.adm.release()

	mctx := ctx
	if s.cfg.MineTimeout > 0 {
		var cancel context.CancelFunc
		mctx, cancel = context.WithTimeout(ctx, s.cfg.MineTimeout)
		defer cancel()
	}
	// Stamp the request's ID on the mining context: in peers mode the shard
	// client forwards it to every peer (request body and X-Request-Id), so
	// the coordinator's and the peers' journals join on one ID. The pprof
	// labels make any continuous-profiling CPU capture taken during the run
	// attribute its samples to this request and database.
	mctx = obs.WithRequestID(mctx, rec.id)
	mctx = obs.WithMineLabels(mctx, rec.id, fmt.Sprintf("%016x", ent.fp))

	// Each executed mine gets its own trace so the per-phase histograms
	// see per-run attributions, not a shared running total. With the
	// journal on, the trace additionally retains a bounded span timeline —
	// the run's flight record, downloadable from /debug/requests/trace.
	o.Trace = obs.NewTrace()
	var tl *obs.Timeline
	if s.journal != nil && s.cfg.TimelineSpans >= 0 {
		tl = obs.NewTimeline(s.cfg.TimelineSpans)
		o.Trace.AttachTimeline(tl)
	}
	begin := now()
	cost0 := prof.ReadCost()
	var (
		res     *core.Result
		partial bool
		failed  []int
	)
	if s.coord != nil {
		// Peers mode: scatter the mine over the shard peers. The gathered
		// result is byte-identical to the local mineFn path unless shards
		// failed under a best-effort policy.
		sres, serr := s.coord.Mine(mctx, ent.db, o)
		if serr != nil {
			return nil, serr
		}
		res, partial, failed = sres.Result, sres.Partial, sres.FailedShards
	} else {
		var merr error
		res, merr = s.mineFn(mctx, ent.db, o)
		if merr != nil {
			return nil, merr
		}
	}
	d := time.Since(begin)
	// Process-counter deltas around the mining section: exact while one
	// mine runs at a time, an upper bound when mines overlap (the journal
	// and docs say so). CPU is rusage-based, so it includes all worker
	// goroutines' time, which is the point.
	cost := prof.ReadCost().Sub(cost0)
	rec.mineTime = d
	rec.allocBytes, rec.cpuTime = cost.AllocBytes, cost.CPU
	report := o.Trace.Report()
	s.metrics.observeMineTime(d)
	s.metrics.observeTrace(report)
	s.metrics.observeCost(cost.AllocBytes, cost.CPU)
	rec.report, rec.timeline = report, tl.Snapshot()

	v := &cachedResult{
		patterns:     api.PatternsFromCore(ent.db, res.Patterns),
		stats:        res.Stats,
		partial:      partial,
		failedShards: failed,
		mineTime:     d,
		report:       rec.report,
		timeline:     rec.timeline,
		allocBytes:   cost.AllocBytes,
		cpuTime:      cost.CPU,
	}
	if !partial {
		// A partial result is one outage away from being wrong twice: never
		// let it satisfy later requests from the cache.
		s.cache.put(key, v)
	}
	return v, nil
}

func (s *Server) writeMineResponse(w http.ResponseWriter, ent *dbEntry, req *api.MineRequest, v *cachedResult, cached bool, start time.Time) {
	resp := api.MineResponse{
		V:            api.Version,
		DB:           ent.name,
		Count:        len(v.patterns),
		Cached:       cached,
		ElapsedMS:    float64(time.Since(start)) / 1e6,
		MiningMS:     float64(v.mineTime) / 1e6,
		Partial:      v.partial,
		FailedShards: v.failedShards,
		Patterns:     v.patterns,
	}
	if req.CollectStats {
		stats := v.stats
		resp.Stats = &stats
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleShardMine executes one shard task of a scatter-gather mine: the
// request addresses the database by content fingerprint (the coordinator
// doesn't know or care what this peer named it), the task's rank slice is
// mined under the same admission control and drain accounting as a full
// mine, and nothing is cached — the coordinator owns the merged result's
// lifecycle.
//
// Trace context flows both ways: the task is journalled under the
// coordinator's propagated request ID (X-Request-Id header, body fallback)
// so /debug/requests joins across the fleet, and when the task asks for a
// trace the peer records its run's span timeline — admission wait included —
// and returns it with its per-phase report and handling time for the
// coordinator to graft.
func (s *Server) handleShardMine(w http.ResponseWriter, r *http.Request) {
	start := now()
	s.metrics.shardRequests.Add(1)
	rec := &accessRecord{id: r.Header.Get("X-Request-Id"), outcome: "shard-ok", status: http.StatusOK}
	defer func() {
		if rec.id == "" {
			rec.id = obs.RequestID()
		}
		elapsed := time.Since(start)
		s.cfg.Logger.Info("shard-mine",
			"id", rec.id, "db", rec.db, "fp", rec.fp, "opts", rec.opts,
			"outcome", rec.outcome, "status", rec.status,
			"patterns", rec.patterns,
			"queueMS", float64(rec.queueWait)/1e6,
			"mineMS", float64(rec.mineTime)/1e6,
			"allocBytes", rec.allocBytes,
			"cpuMS", float64(rec.cpuTime)/1e6,
			"elapsedMS", float64(elapsed)/1e6)
		s.journalRecord(rec, start, elapsed)
	}()
	body := r.Body
	if s.cfg.MaxBody > 0 {
		body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBody)
	}
	req, err := api.DecodeShardMineRequest(body)
	if err != nil {
		rec.deny("bad-request", http.StatusBadRequest)
		s.fail(w, http.StatusBadRequest, "decoding shard request: %v", err)
		return
	}
	if rec.id == "" {
		rec.id = req.RequestID
	}
	spec := core.ShardSpec{Index: req.Shard, Count: req.Shards}
	if err := spec.Validate(); err != nil {
		rec.deny("bad-request", http.StatusBadRequest)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	ent, status, err := s.resolveShardTarget(req)
	if err != nil {
		rec.deny("unknown-db", status)
		s.fail(w, status, "%v", err)
		return
	}
	rec.db, rec.fp = ent.name, fmt.Sprintf("%016x", ent.fp)
	o, err := req.ToCoreOptions(ent.db.Len())
	if err != nil {
		rec.deny("invalid-options", http.StatusBadRequest)
		s.fail(w, http.StatusBadRequest, "%v", err)
		return
	}
	if o.Parallelism > s.cfg.MaxParallelism {
		o.Parallelism = s.cfg.MaxParallelism
	}
	rec.opts = fmt.Sprintf("%s,shard=%d/%d", optionsDigest(o), req.Shard, req.Shards)

	// The trace (and, when requested, the timeline) is created before
	// admission so the peer's flight record starts at request arrival and
	// the slot wait shows up as its own span, exactly what the coordinator's
	// clock alignment expects ElapsedNS to cover.
	o.Trace = obs.NewTrace()
	var tl *obs.Timeline
	if req.Trace && s.cfg.TimelineSpans >= 0 {
		tl = obs.NewTimeline(s.cfg.TimelineSpans)
		o.Trace.AttachTimeline(tl)
	}

	if err := s.beginMine(); err != nil {
		rec.deny("draining", http.StatusServiceUnavailable)
		s.writeError(w, http.StatusServiceUnavailable, err.Error())
		return
	}
	defer s.endMine()
	queued := now()
	if err := s.adm.acquire(r.Context()); err != nil {
		rec.queueWait = time.Since(queued)
		if errors.Is(err, errShed) {
			s.metrics.shed.Add(1)
			rec.deny("shed", http.StatusTooManyRequests)
			w.Header().Set("Retry-After", "1")
			s.writeError(w, http.StatusTooManyRequests, err.Error())
			return
		}
		s.metrics.cancelled.Add(1)
		rec.deny("cancelled", statusClientClosedRequest)
		s.writeError(w, statusClientClosedRequest, "client cancelled request")
		return
	}
	defer s.adm.release()
	rec.queueWait = time.Since(queued)
	tl.RecordSpan("queue", "", queued, rec.queueWait)

	mctx := r.Context()
	if s.cfg.MineTimeout > 0 {
		var cancel context.CancelFunc
		mctx, cancel = context.WithTimeout(mctx, s.cfg.MineTimeout)
		defer cancel()
	}
	// Label the shard task with the coordinator's propagated request ID, so
	// a profile captured on this peer attributes samples to the same ID the
	// fleet's journals join on.
	mctx = obs.WithMineLabels(mctx, rec.id, fmt.Sprintf("%016x", ent.fp))
	begin := now()
	cost0 := prof.ReadCost()
	res, err := core.MineShardContext(mctx, ent.db, o, spec)
	if err != nil {
		switch {
		case r.Context().Err() != nil:
			s.metrics.cancelled.Add(1)
			rec.deny("cancelled", statusClientClosedRequest)
			s.writeError(w, statusClientClosedRequest, "client cancelled request")
		case errors.Is(err, context.DeadlineExceeded):
			s.metrics.timeouts.Add(1)
			rec.deny("timeout", http.StatusServiceUnavailable)
			s.writeError(w, http.StatusServiceUnavailable,
				fmt.Sprintf("shard mine exceeded the server-side time limit of %v", s.cfg.MineTimeout))
		default:
			rec.deny("error", http.StatusInternalServerError)
			s.fail(w, http.StatusInternalServerError, "shard mining failed: %v", err)
		}
		return
	}
	s.metrics.shardMined.Add(1)
	cost := prof.ReadCost().Sub(cost0)
	rec.mineTime = time.Since(begin)
	rec.allocBytes, rec.cpuTime = cost.AllocBytes, cost.CPU
	rec.patterns = len(res.Patterns)
	rec.report = o.Trace.Report()
	s.metrics.observeCost(cost.AllocBytes, cost.CPU)
	resp := api.ShardMineResponse{
		V:           api.Version,
		Fingerprint: fmt.Sprintf("%016x", ent.fp),
		Shard:       req.Shard,
		Shards:      req.Shards,
		Count:       len(res.Patterns),
		MiningMS:    float64(rec.mineTime) / 1e6,
		Patterns:    api.PatternsFromCore(ent.db, res.Patterns),
		Stats:       &res.Stats,
		Phases:      activePhases(rec.report),
	}
	if tl != nil {
		rec.timeline = tl.Snapshot()
		resp.Timeline = &rec.timeline
		// ElapsedNS is stamped as late as possible: it is the peer-handling
		// width the coordinator centers inside its send→receive window.
		resp.ElapsedNS = int64(time.Since(start))
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// resolveShardTarget resolves a shard task's database. Fingerprint is the
// canonical address (searched across preloaded databases and the
// registry); db/dataset naming also works, but a named database whose
// bytes don't match a supplied fingerprint is refused — shards of one mine
// must agree on content, not on names.
func (s *Server) resolveShardTarget(req *api.ShardMineRequest) (*dbEntry, int, error) {
	var ent *dbEntry
	switch {
	case req.Dataset != "" && req.DB != "":
		return nil, http.StatusBadRequest, errors.New("serve: set db or dataset, not both")
	case req.Dataset != "":
		var status int
		var err error
		if ent, status, err = s.lookupDataset(req.Dataset); err != nil {
			return nil, status, err
		}
	case req.DB != "":
		var status int
		var err error
		if ent, status, err = s.lookupDB(req.DB); err != nil {
			return nil, status, err
		}
	case req.Fingerprint != "":
		fp, err := parseFingerprint(req.Fingerprint)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		for _, name := range s.names {
			if s.dbs[name].fp == fp {
				ent = s.dbs[name]
				break
			}
		}
		if ent == nil {
			if ent, _, err = s.lookupDataset(req.Fingerprint); err != nil {
				return nil, http.StatusNotFound,
					fmt.Errorf("serve: no database with fingerprint %s", req.Fingerprint)
			}
		}
	default:
		return nil, http.StatusBadRequest,
			errors.New("serve: shard request must address a database (fingerprint, db or dataset)")
	}
	if req.Fingerprint != "" {
		fp, err := parseFingerprint(req.Fingerprint)
		if err != nil {
			return nil, http.StatusBadRequest, err
		}
		if ent.fp != fp {
			return nil, http.StatusConflict, fmt.Errorf(
				"serve: database %q has fingerprint %016x, task wants %s", ent.name, ent.fp, req.Fingerprint)
		}
	}
	return ent, 0, nil
}

// lookupDB resolves a request's database name; an empty name is allowed
// when exactly one database is served.
func (s *Server) lookupDB(name string) (*dbEntry, int, error) {
	if name == "" {
		if len(s.names) == 1 {
			return s.dbs[s.names[0]], 0, nil
		}
		if len(s.names) == 0 {
			return nil, http.StatusBadRequest, errors.New(
				"serve: no preloaded databases; upload one to /v1/datasets and mine it by fingerprint")
		}
		return nil, http.StatusBadRequest,
			fmt.Errorf("serve: request must name a database (serving %d)", len(s.names))
	}
	ent, ok := s.dbs[name]
	if !ok {
		return nil, http.StatusNotFound, fmt.Errorf("serve: unknown database %q", name)
	}
	return ent, 0, nil
}

// dbInfo describes one served database in /v1/stats.
type dbInfo struct {
	Name         string `json:"name"`
	Fingerprint  string `json:"fingerprint"` // hex, as logged at load time
	Transactions int    `json:"transactions"`
	Items        int    `json:"items"`
	SpanStart    int64  `json:"spanStart"`
	SpanEnd      int64  `json:"spanEnd"`
}

// statsResponse is the JSON body of GET /v1/stats.
type statsResponse struct {
	Draining bool `json:"draining"`
	InFlight int  `json:"inFlight"`
	Queued   int  `json:"queued"`
	CacheLen int  `json:"cacheLen"`
	CacheCap int  `json:"cacheCap"`
	// CacheHitRatio is hits / (hits + misses) over the server's lifetime,
	// 0 before the first lookup.
	CacheHitRatio float64         `json:"cacheHitRatio"`
	Databases     []dbInfo        `json:"databases"`
	Registry      registryStats   `json:"registry"`
	Metrics       MetricsSnapshot `json:"metrics"`
	Runtime       runtimeInfo     `json:"runtime"`
	Config        configInfo      `json:"config"`
	GoMaxProcs    int             `json:"goMaxProcs"`
	// ShardPeers holds the per-peer scatter counters when this server is a
	// coordinator (Config.Peers); absent otherwise.
	ShardPeers []shard.PeerStats `json:"shardPeers,omitempty"`
}

// runtimeInfo is the Go runtime health section of /v1/stats: enough to
// spot a leaking or GC-bound process without attaching pprof.
type runtimeInfo struct {
	Goroutines     int     `json:"goroutines"`
	HeapInuseBytes uint64  `json:"heapInuseBytes"`
	HeapSysBytes   uint64  `json:"heapSysBytes"`
	GCPauseMSTotal float64 `json:"gcPauseMSTotal"`
	GCCycles       uint32  `json:"gcCycles"`
}

// readRuntimeInfo snapshots the runtime health gauges (one ReadMemStats
// per call; scrape-frequency cost, not request-frequency).
func readRuntimeInfo() runtimeInfo {
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return runtimeInfo{
		Goroutines:     runtime.NumGoroutine(),
		HeapInuseBytes: ms.HeapInuse,
		HeapSysBytes:   ms.HeapSys,
		GCPauseMSTotal: float64(ms.PauseTotalNs) / 1e6,
		GCCycles:       ms.NumGC,
	}
}

// cacheHitRatio derives the lifetime hit ratio from the counters.
func (s *Server) cacheHitRatio() float64 {
	hits := float64(s.metrics.cacheHits.Load())
	misses := float64(s.metrics.cacheMisses.Load())
	if hits+misses == 0 {
		return 0
	}
	return hits / (hits + misses)
}

// configInfo is the resolved Config, with durations rendered as strings.
type configInfo struct {
	MaxConcurrent  int    `json:"maxConcurrent"`
	MaxQueue       int    `json:"maxQueue"`
	QueueTimeout   string `json:"queueTimeout"`
	MineTimeout    string `json:"mineTimeout"`
	CacheSize      int    `json:"cacheSize"`
	MaxParallelism int    `json:"maxParallelism"`
	JournalSize    int    `json:"journalSize"`
	SlowThreshold  string `json:"slowThreshold"`
	TimelineSpans  int    `json:"timelineSpans"`
	MaxUpload      int64  `json:"maxUpload"`
	RegistryBytes  int64  `json:"registryMaxBytes"`
	RegistryCap    int    `json:"registryMaxEntries"`

	// Peers-mode settings; zero/absent on a single-box server.
	Peers       []string `json:"peers,omitempty"`
	Shards      int      `json:"shards,omitempty"`
	ShardPolicy string   `json:"shardPolicy,omitempty"`
}

// registryStats is the dataset-registry section of /v1/stats.
type registryStats struct {
	Entries  int           `json:"entries"`
	Bytes    int64         `json:"bytes"`
	Datasets []datasetInfo `json:"datasets"`
}

func (s *Server) statsPayload() statsResponse {
	resp := statsResponse{
		Draining:      s.Draining(),
		InFlight:      s.adm.inFlight(),
		Queued:        s.adm.waiting(),
		CacheLen:      s.cache.len(),
		CacheCap:      s.cfg.CacheSize,
		CacheHitRatio: s.cacheHitRatio(),
		Metrics:       s.metrics.snapshot(),
		Runtime:       readRuntimeInfo(),
		GoMaxProcs:    runtime.GOMAXPROCS(0),
		Config: configInfo{
			MaxConcurrent:  s.cfg.MaxConcurrent,
			MaxQueue:       s.cfg.MaxQueue,
			QueueTimeout:   s.cfg.QueueTimeout.String(),
			MineTimeout:    s.cfg.MineTimeout.String(),
			CacheSize:      s.cfg.CacheSize,
			MaxParallelism: s.cfg.MaxParallelism,
			JournalSize:    s.cfg.JournalSize,
			SlowThreshold:  s.cfg.SlowThreshold.String(),
			TimelineSpans:  s.cfg.TimelineSpans,
			MaxUpload:      s.cfg.MaxUpload,
			RegistryBytes:  s.cfg.RegistryMaxBytes,
			RegistryCap:    s.cfg.RegistryMaxEntries,
		},
	}
	if s.shardClient != nil {
		resp.ShardPeers = s.shardClient.Stats()
		resp.Config.Peers = s.shardClient.Peers()
		resp.Config.Shards = s.cfg.Shards
		resp.Config.ShardPolicy = s.coord.Policy.String()
	}
	entries, bytes := s.registry.stats()
	resp.Registry = registryStats{
		Entries:  entries,
		Bytes:    bytes,
		Datasets: s.registry.snapshot(),
	}
	for _, name := range s.names {
		ent := s.dbs[name]
		first, last := ent.db.Span()
		items := 0
		if ent.db.Dict != nil {
			items = ent.db.Dict.Len()
		}
		resp.Databases = append(resp.Databases, dbInfo{
			Name:         name,
			Fingerprint:  fmt.Sprintf("%016x", ent.fp),
			Transactions: ent.db.Len(),
			Items:        items,
			SpanStart:    first,
			SpanEnd:      last,
		})
	}
	return resp
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.writeJSON(w, http.StatusOK, s.statsPayload())
}

// fleetPeerStats is one peer's section of /v1/fleet/stats: its /v1/stats
// body verbatim, or the error the fetch failed with.
type fleetPeerStats struct {
	URL   string          `json:"url"`
	Stats json.RawMessage `json:"stats,omitempty"`
	Error string          `json:"error,omitempty"`
}

// fleetStatsResponse is the JSON body of GET /v1/fleet/stats.
type fleetStatsResponse struct {
	Coordinator statsResponse    `json:"coordinator"`
	Peers       []fleetPeerStats `json:"peers"`
}

// handleFleetStats is the coordinator's fleet-wide view: its own stats
// payload plus every peer's /v1/stats fetched concurrently, in
// deterministic (sorted-URL) order. A peer being down degrades to an error
// string in that peer's entry, never to a failed response — the endpoint
// exists precisely for looking at unhealthy fleets. 404 on non-coordinators.
func (s *Server) handleFleetStats(w http.ResponseWriter, r *http.Request) {
	if s.shardClient == nil {
		s.writeError(w, http.StatusNotFound, "serve: not a shard coordinator (no peers configured)")
		return
	}
	bodies := s.shardClient.FetchStats(r.Context())
	resp := fleetStatsResponse{
		Coordinator: s.statsPayload(),
		Peers:       make([]fleetPeerStats, len(bodies)),
	}
	for i, b := range bodies {
		resp.Peers[i].URL = b.URL
		if b.Err != nil {
			resp.Peers[i].Error = b.Err.Error()
			continue
		}
		resp.Peers[i].Stats = json.RawMessage(b.Body)
	}
	s.writeJSON(w, http.StatusOK, resp)
}

// handleMetrics renders the Prometheus text exposition: the counter and
// histogram families owned by metrics, then the instantaneous gauges that
// live on the Server.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	p := obs.NewPromWriter(w)
	s.metrics.writeProm(p)
	p.Gauge("rpserved_in_flight", "Mining runs currently executing.", float64(s.adm.inFlight()))
	p.Gauge("rpserved_queue_depth", "Requests waiting for a mining slot.", float64(s.adm.waiting()))
	p.Gauge("rpserved_cache_entries", "Entries in the result cache.", float64(s.cache.len()))
	p.Gauge("rpserved_cache_hit_ratio", "Lifetime fraction of cache lookups that hit.", s.cacheHitRatio())
	regEntries, regBytes := s.registry.stats()
	p.Gauge("rpserved_datasets", "Datasets currently in the registry.", float64(regEntries))
	p.Gauge("rpserved_registry_bytes", "Estimated resident bytes of registered datasets.", float64(regBytes))
	draining := 0.0
	if s.Draining() {
		draining = 1
	}
	p.Gauge("rpserved_draining", "1 while the server refuses new mines for shutdown.", draining)
	if s.shardClient != nil {
		peerStats := s.shardClient.Stats()
		peerSamples := func(value func(shard.PeerStats) int64) []obs.LabeledValue {
			out := make([]obs.LabeledValue, len(peerStats))
			for i, ps := range peerStats {
				out[i] = obs.LabeledValue{Labels: map[string]string{"peer": ps.URL}, Value: float64(value(ps))}
			}
			return out
		}
		p.CounterVec("rpserved_shard_peer_success_total", "Shard tasks answered successfully, per peer.",
			peerSamples(func(ps shard.PeerStats) int64 { return ps.Success }))
		p.CounterVec("rpserved_shard_peer_failure_total", "Shard task attempts that failed, per peer.",
			peerSamples(func(ps shard.PeerStats) int64 { return ps.Failure }))
		p.CounterVec("rpserved_shard_peer_retries_total", "Shard task re-dispatches after a failure, per peer.",
			peerSamples(func(ps shard.PeerStats) int64 { return ps.Retries }))
		p.CounterVec("rpserved_shard_peer_hedges_total", "Hedged duplicate shard requests fired, per peer.",
			peerSamples(func(ps shard.PeerStats) int64 { return ps.Hedges }))
		p.CounterVec("rpserved_shard_peer_hedge_wins_total", "Hedged shard requests that answered first, per peer.",
			peerSamples(func(ps shard.PeerStats) int64 { return ps.HedgeWins }))
		// Per-peer per-phase wall time, as reported by the peers themselves
		// in their shard responses: where fleet mining time actually goes.
		// Phase iteration follows the canonical phase order and peers are
		// already URL-sorted, so exposition is deterministic.
		var phaseSamples []obs.LabeledValue
		for _, ps := range peerStats {
			for _, phase := range obs.PhaseNames() {
				if sec, ok := ps.PhaseSeconds[phase]; ok {
					phaseSamples = append(phaseSamples, obs.LabeledValue{
						Labels: map[string]string{"peer": ps.URL, "phase": phase},
						Value:  sec,
					})
				}
			}
		}
		p.CounterVec("rpserved_shard_peer_phase_seconds",
			"Peer-reported wall time per algorithm phase, summed over this coordinator's successful shard tasks.",
			phaseSamples)
	}
	// Go runtime health: the gauges a dashboard needs to tell a leaking or
	// GC-bound process from a loaded one. Names follow the conventional
	// go_* client families.
	ri := readRuntimeInfo()
	p.Gauge("go_goroutines", "Goroutines that currently exist.", float64(ri.Goroutines))
	p.Gauge("go_heap_inuse_bytes", "Heap bytes in in-use spans.", float64(ri.HeapInuseBytes))
	p.Gauge("go_heap_sys_bytes", "Heap bytes obtained from the OS.", float64(ri.HeapSysBytes))
	p.Counter("go_gc_pause_seconds_total", "Cumulative stop-the-world GC pause time.", ri.GCPauseMSTotal/1e3)
	p.Counter("go_gc_cycles_total", "Completed GC cycles.", float64(ri.GCCycles))
	// A scrape error only means the scraper went away mid-read; there is
	// nothing useful to do about it here.
	_ = p.Err()
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if s.Draining() {
		http.Error(w, "draining", http.StatusServiceUnavailable)
		return
	}
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = fmt.Fprintln(w, "ok")
}

// fail writes an error response and counts it in the errors metric; use
// writeError directly for outcomes with their own counters (shed,
// cancelled, timeouts).
func (s *Server) fail(w http.ResponseWriter, status int, format string, args ...any) {
	s.metrics.errors.Add(1)
	s.writeError(w, status, fmt.Sprintf(format, args...))
}

func (s *Server) writeError(w http.ResponseWriter, status int, msg string) {
	s.writeJSON(w, status, api.ErrorResponse{Error: msg})
}

func (s *Server) writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	// The status line is already out; an encoding failure here can only
	// mean the client went away mid-write.
	_ = enc.Encode(v)
}
