package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// testDB is a small shop-style database with an obvious recurring pattern
// (bread+jam every other transaction) so real mines return something.
func testDB() *tsdb.DB {
	b := tsdb.NewBuilder()
	ts := int64(1)
	for i := 0; i < 30; i++ {
		b.Add("bread", ts)
		if i%2 == 0 {
			b.Add("jam", ts)
		}
		if i%7 == 0 {
			b.Add("bat", ts)
		}
		ts += 2
	}
	return b.Build()
}

type mineFunc func(ctx context.Context, db *tsdb.DB, o core.Options) (*core.Result, error)

func newTestServer(t *testing.T, cfg Config, fn mineFunc) (*Server, *httptest.Server) {
	t.Helper()
	s, err := NewServer(cfg, map[string]*tsdb.DB{"shop": testDB()})
	if err != nil {
		t.Fatal(err)
	}
	if fn != nil {
		s.mineFn = fn
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(hs.Close)
	return s, hs
}

// postMine sends body to POST /v1/mine and decodes the JSON response into
// a generic map (so error and success bodies read the same way).
func postMine(t *testing.T, base, body string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(base+"/v1/mine", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, m
}

func getStats(t *testing.T, base string) map[string]any {
	t.Helper()
	resp, err := http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var m map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&m); err != nil {
		t.Fatal(err)
	}
	return m
}

func metric(t *testing.T, stats map[string]any, name string) float64 {
	t.Helper()
	ms, ok := stats["metrics"].(map[string]any)
	if !ok {
		t.Fatalf("stats response has no metrics object: %v", stats)
	}
	v, ok := ms[name].(float64)
	if !ok {
		t.Fatalf("metrics has no numeric %q: %v", name, ms)
	}
	return v
}

func TestMineAndCacheHit(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	body := `{"db":"shop","per":4,"minPS":3,"minRec":1,"collectStats":true}`

	status, first := postMine(t, hs.URL, body)
	if status != http.StatusOK {
		t.Fatalf("first mine: status %d, body %v", status, first)
	}
	if first["cached"] != false {
		t.Errorf("first mine reported cached=%v, want false", first["cached"])
	}
	if n := first["count"].(float64); n < 1 {
		t.Fatalf("mine found no patterns; test DB misconfigured (body %v)", first)
	}
	if first["stats"] == nil {
		t.Error("collectStats request returned no stats")
	}

	status, second := postMine(t, hs.URL, body)
	if status != http.StatusOK || second["cached"] != true {
		t.Fatalf("identical request not served from cache: status %d, cached=%v", status, second["cached"])
	}
	if second["count"] != first["count"] {
		t.Errorf("cached count %v != fresh count %v", second["count"], first["count"])
	}

	// A no-stats request with the same thresholds must also hit (the key
	// excludes collectStats) and must omit the stats field.
	status, third := postMine(t, hs.URL, `{"db":"shop","per":4,"minPS":3,"minRec":1}`)
	if status != http.StatusOK || third["cached"] != true {
		t.Fatalf("no-stats variant missed the cache: status %d, cached=%v", status, third["cached"])
	}
	if _, present := third["stats"]; present {
		t.Error("no-stats request returned stats")
	}

	stats := getStats(t, hs.URL)
	if got := metric(t, stats, "cacheHits"); got != 2 {
		t.Errorf("cacheHits = %v, want 2", got)
	}
	if got := metric(t, stats, "cacheMisses"); got != 1 {
		t.Errorf("cacheMisses = %v, want 1", got)
	}
	if got := metric(t, stats, "mined"); got != 1 {
		t.Errorf("mined = %v, want 1", got)
	}
}

func TestValidateErrorTextMatchesCore(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	status, m := postMine(t, hs.URL, `{"db":"shop","per":0,"minPS":3}`)
	if status != http.StatusBadRequest {
		t.Fatalf("status = %d, want 400", status)
	}
	wantErr := core.Options{MinPS: 3, MinRec: 1}.Validate().Error()
	if got := m["error"]; got != wantErr {
		t.Errorf("error = %q, want core's Validate text %q", got, wantErr)
	}
}

func TestRequestErrors(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)

	if status, _ := postMine(t, hs.URL, `{"db":"nope","per":2,"minPS":2}`); status != http.StatusNotFound {
		t.Errorf("unknown db: status %d, want 404", status)
	}
	if status, _ := postMine(t, hs.URL, `{"per":2,"minPS":2,"bogus":1}`); status != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", status)
	}
	// With a single database served, naming it is optional.
	if status, m := postMine(t, hs.URL, `{"per":4,"minPS":3}`); status != http.StatusOK || m["db"] != "shop" {
		t.Errorf("unnamed single-db request: status %d, db %v", status, m["db"])
	}

	stats := getStats(t, hs.URL)
	if got := metric(t, stats, "errors"); got != 2 {
		t.Errorf("errors = %v, want 2", got)
	}
}

// blockingMine returns a mineFn stub that signals on started (buffered)
// each time a mine begins, then blocks until release is closed or ctx
// fires (returning a CancelError like the real miner).
func blockingMine(started chan struct{}, release chan struct{}) mineFunc {
	return func(ctx context.Context, db *tsdb.DB, o core.Options) (*core.Result, error) {
		started <- struct{}{}
		select {
		case <-release:
			return &core.Result{}, nil
		case <-ctx.Done():
			return nil, &core.CancelError{Err: ctx.Err()}
		}
	}
}

func TestSheddingUnderLoad(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	_, hs := newTestServer(t, Config{MaxConcurrent: 1, MaxQueue: -1}, blockingMine(started, release))

	// Occupy the single mining slot.
	firstDone := make(chan int, 1)
	go func() {
		status, _ := postMine(t, hs.URL, `{"per":2,"minPS":2}`)
		firstDone <- status
	}()
	<-started

	// A different request (different key, so no single-flight coalescing)
	// finds the slot busy and no queue: shed.
	status, m := postMine(t, hs.URL, `{"per":3,"minPS":2}`)
	if status != http.StatusTooManyRequests {
		t.Fatalf("saturated server: status %d, body %v, want 429", status, m)
	}

	close(release)
	if status := <-firstDone; status != http.StatusOK {
		t.Fatalf("first request: status %d, want 200", status)
	}
	if got := metric(t, getStats(t, hs.URL), "shed"); got != 1 {
		t.Errorf("shed = %v, want 1", got)
	}
}

func TestSingleFlightCoalescing(t *testing.T) {
	started := make(chan struct{}, 4)
	release := make(chan struct{})
	var mines atomic32
	fn := func(ctx context.Context, db *tsdb.DB, o core.Options) (*core.Result, error) {
		mines.add(1)
		return blockingMine(started, release)(ctx, db, o)
	}
	_, hs := newTestServer(t, Config{MaxConcurrent: 4}, fn)

	body := `{"per":2,"minPS":2}`
	results := make(chan map[string]any, 2)
	go func() {
		_, m := postMine(t, hs.URL, body)
		results <- m
	}()
	<-started // leader is mining

	go func() {
		_, m := postMine(t, hs.URL, body)
		results <- m
	}()
	// The follower never reaches mineFn; give it a moment to join the
	// flight, then let the leader finish.
	time.Sleep(20 * time.Millisecond)
	close(release)

	a, b := <-results, <-results
	if got := mines.load(); got != 1 {
		t.Errorf("mineFn ran %d times for two identical concurrent requests, want 1", got)
	}
	cachedCount := 0
	for _, m := range []map[string]any{a, b} {
		if m["cached"] == true {
			cachedCount++
		}
	}
	if cachedCount != 1 {
		t.Errorf("%d of 2 coalesced responses were marked cached, want exactly 1 (the follower)", cachedCount)
	}
}

func TestMidMineCancellation(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	srv, hs := newTestServer(t, Config{}, blockingMine(started, release))

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "POST", hs.URL+"/v1/mine",
		strings.NewReader(`{"per":2,"minPS":2}`))
	if err != nil {
		t.Fatal(err)
	}
	errCh := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		errCh <- err
	}()

	<-started // the mine is running under the request's context
	cancel()
	if err := <-errCh; err == nil {
		t.Fatal("cancelled request returned a response, want a client error")
	}

	// The handler finishes asynchronously after the client disconnects;
	// poll the metric rather than racing it.
	deadline := time.After(5 * time.Second)
	for {
		if metric(t, getStats(t, hs.URL), "cancelled") == 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("cancelled metric never reached 1")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if srv.adm.inFlight() != 0 {
		t.Errorf("admission slot leaked after cancellation: inFlight = %d", srv.adm.inFlight())
	}
}

func TestMineTimeout(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	defer close(release)
	_, hs := newTestServer(t, Config{MineTimeout: 10 * time.Millisecond}, blockingMine(started, release))

	status, m := postMine(t, hs.URL, `{"per":2,"minPS":2}`)
	if status != http.StatusServiceUnavailable {
		t.Fatalf("timed-out mine: status %d, body %v, want 503", status, m)
	}
	if got := metric(t, getStats(t, hs.URL), "timeouts"); got != 1 {
		t.Errorf("timeouts = %v, want 1", got)
	}
}

func TestGracefulDrain(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv, hs := newTestServer(t, Config{}, blockingMine(started, release))

	inFlightDone := make(chan int, 1)
	go func() {
		status, _ := postMine(t, hs.URL, `{"per":2,"minPS":2}`)
		inFlightDone <- status
	}()
	<-started

	srv.BeginDrain()

	// New mining work is refused while draining...
	if status, _ := postMine(t, hs.URL, `{"per":3,"minPS":2}`); status != http.StatusServiceUnavailable {
		t.Fatalf("mine during drain: status %d, want 503", status)
	}
	// ...and health checks fail so load balancers stop routing here.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("healthz during drain: status %d, want 503", resp.StatusCode)
	}

	// Drain must wait for the in-flight mine.
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	select {
	case err := <-drained:
		t.Fatalf("Drain returned (%v) while a mine was still running", err)
	case <-time.After(30 * time.Millisecond):
	}

	close(release)
	select {
	case err := <-drained:
		if err != nil {
			t.Fatalf("Drain: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Drain did not return after the last mine finished")
	}
	if status := <-inFlightDone; status != http.StatusOK {
		t.Errorf("in-flight request during drain: status %d, want 200", status)
	}

	// A second Drain with nothing in flight returns immediately.
	ctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Errorf("idle Drain: %v", err)
	}
}

func TestDrainTimeout(t *testing.T) {
	started := make(chan struct{}, 1)
	release := make(chan struct{})
	srv, hs := newTestServer(t, Config{}, blockingMine(started, release))

	done := make(chan struct{})
	go func() {
		postMine(t, hs.URL, `{"per":2,"minPS":2}`)
		close(done)
	}()
	<-started

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err != context.DeadlineExceeded {
		t.Errorf("Drain with stuck mine: err = %v, want DeadlineExceeded", err)
	}
	close(release)
	<-done
}

func TestHealthzAndDebugVars(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || strings.TrimSpace(string(body)) != "ok" {
		t.Errorf("healthz: status %d body %q", resp.StatusCode, body)
	}

	resp, err = http.Get(hs.URL + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "memstats") {
		t.Errorf("debug/vars: status %d, body lacks memstats", resp.StatusCode)
	}
}

func TestStatsPayload(t *testing.T) {
	_, hs := newTestServer(t, Config{MaxConcurrent: 3, CacheSize: 7}, nil)
	stats := getStats(t, hs.URL)

	dbs, ok := stats["databases"].([]any)
	if !ok || len(dbs) != 1 {
		t.Fatalf("databases = %v, want 1 entry", stats["databases"])
	}
	db := dbs[0].(map[string]any)
	if db["name"] != "shop" || db["transactions"].(float64) != 30 {
		t.Errorf("db entry = %v", db)
	}
	want := testDB().Fingerprint()
	if got := db["fingerprint"]; got != fmt.Sprintf("%016x", want) {
		t.Errorf("fingerprint = %v, want %016x", got, want)
	}
	cfg := stats["config"].(map[string]any)
	if cfg["maxConcurrent"].(float64) != 3 || cfg["cacheSize"].(float64) != 7 {
		t.Errorf("config = %v", cfg)
	}
	if cfg["journalSize"].(float64) != 64 || cfg["slowThreshold"] != "500ms" {
		t.Errorf("journal config = journalSize %v slowThreshold %v", cfg["journalSize"], cfg["slowThreshold"])
	}
	rt, ok := stats["runtime"].(map[string]any)
	if !ok {
		t.Fatalf("stats response has no runtime section: %v", stats)
	}
	if rt["goroutines"].(float64) < 1 || rt["heapInuseBytes"].(float64) <= 0 {
		t.Errorf("runtime gauges implausible: %v", rt)
	}
	if _, ok := stats["cacheHitRatio"].(float64); !ok {
		t.Errorf("stats response has no cacheHitRatio: %v", stats)
	}
}

func TestAdmissionQueueTimeout(t *testing.T) {
	a := newAdmission(1, 8, 15*time.Millisecond)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	// Slot taken: a queued acquire must shed after the queue timeout.
	if err := a.acquire(context.Background()); err != errShed {
		t.Errorf("queued acquire: err = %v, want errShed", err)
	}
	// Cancelled context wins over the queue timeout.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := a.acquire(ctx); err != context.Canceled {
		t.Errorf("cancelled acquire: err = %v, want context.Canceled", err)
	}
	a.release()
	if err := a.acquire(context.Background()); err != nil {
		t.Errorf("acquire after release: %v", err)
	}
	a.release()
}

func TestAdmissionQueueBound(t *testing.T) {
	a := newAdmission(1, 1, time.Second)
	if err := a.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}

	// One waiter fits in the queue; the next must shed immediately.
	var wg sync.WaitGroup
	wg.Add(1)
	waiterErr := make(chan error, 1)
	go func() {
		defer wg.Done()
		waiterErr <- a.acquire(context.Background())
	}()
	waitFor(t, func() bool { return a.waiting() == 1 })

	if err := a.acquire(context.Background()); err != errShed {
		t.Errorf("over-queue acquire: err = %v, want errShed", err)
	}

	a.release() // hands the slot to the queued waiter
	wg.Wait()
	if err := <-waiterErr; err != nil {
		t.Errorf("queued waiter: %v", err)
	}
	a.release()
}

func TestResultCacheLRU(t *testing.T) {
	c := newResultCache(2)
	k := func(i int) cacheKey { return cacheKey{fp: uint64(i)} }
	v := &cachedResult{}

	c.put(k(1), v)
	c.put(k(2), v)
	if _, ok := c.get(k(1)); !ok { // touch 1 → 2 is now LRU
		t.Fatal("k1 missing")
	}
	c.put(k(3), v) // evicts 2
	if _, ok := c.get(k(2)); ok {
		t.Error("k2 survived past capacity; LRU order wrong")
	}
	if _, ok := c.get(k(1)); !ok {
		t.Error("recently used k1 was evicted")
	}
	if c.len() != 2 {
		t.Errorf("len = %d, want 2", c.len())
	}

	disabled := newResultCache(0)
	disabled.put(k(1), v)
	if _, ok := disabled.get(k(1)); ok || disabled.len() != 0 {
		t.Error("zero-capacity cache stored an entry")
	}
}

func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.After(5 * time.Second)
	for !cond() {
		select {
		case <-deadline:
			t.Fatal("condition never became true")
		case <-time.After(2 * time.Millisecond):
		}
	}
}

// atomic32 is a tiny counter; sync/atomic's Int32 spelled out to keep the
// test dependency surface minimal.
type atomic32 struct {
	mu sync.Mutex
	n  int
}

func (a *atomic32) add(d int) { a.mu.Lock(); a.n += d; a.mu.Unlock() }
func (a *atomic32) load() int { a.mu.Lock(); defer a.mu.Unlock(); return a.n }

// syncBuffer is a mutex-guarded bytes buffer for capturing log output that
// handlers may still be writing after the client got its response.
type syncBuffer struct {
	mu sync.Mutex
	b  strings.Builder
}

func (s *syncBuffer) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuffer) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

func getBody(t *testing.T, url string) (*http.Response, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	return resp, string(body)
}

func TestMetricsEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	if status, m := postMine(t, hs.URL, `{"db":"shop","per":4,"minPS":3,"minRec":1}`); status != http.StatusOK {
		t.Fatalf("mine: status %d, body %v", status, m)
	}

	resp, body := getBody(t, hs.URL+"/metrics")
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.Contains(ct, "text/plain; version=0.0.4") {
		t.Errorf("metrics content type = %q, want the 0.0.4 text exposition", ct)
	}

	// The mining-time histogram must expose its bucket bounds and count the
	// one executed mine; a sub-millisecond test mine lands in every
	// cumulative bucket.
	for _, want := range []string{
		"# TYPE rpserved_mining_seconds histogram",
		`rpserved_mining_seconds_bucket{le="0.001"}`,
		`rpserved_mining_seconds_bucket{le="10"}`,
		`rpserved_mining_seconds_bucket{le="+Inf"} 1`,
		"rpserved_mining_seconds_count 1",
		"# TYPE rpserved_requests_total counter",
		"rpserved_requests_total 1",
		"# TYPE rpserved_in_flight gauge",
		"rpserved_in_flight 0",
		"rpserved_cache_entries 1",
		"rpserved_cache_hit_ratio 0",
		"rpserved_draining 0",
		"# TYPE go_goroutines gauge",
		"go_goroutines ",
		"go_heap_inuse_bytes ",
		"go_heap_sys_bytes ",
		"# TYPE go_gc_pause_seconds_total counter",
		"go_gc_cycles_total ",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics output lacks %q", want)
		}
	}
	// The per-phase histograms carry the run's trace attribution.
	for _, phase := range []string{"scan", "tree-build", "mine"} {
		if !strings.Contains(body, `rpserved_phase_seconds_bucket{phase="`+phase+`",le="+Inf"} 1`) {
			t.Errorf("metrics output lacks the %s phase histogram:\n%s", phase, body)
		}
	}
}

func TestMaxBodyLimit(t *testing.T) {
	var logs syncBuffer
	_, hs := newTestServer(t, Config{MaxBody: 64, Logger: obs.NewLogger(&logs, slog.LevelInfo)}, nil)

	// Leading whitespace is legal JSON framing, so the decoder must read
	// through it — and trips the byte limit long before the value ends.
	status, m := postMine(t, hs.URL, strings.Repeat(" ", 256)+`{"db":"shop","per":4,"minPS":3}`)
	if status != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized body: status %d, body %v, want 413", status, m)
	}
	if msg, _ := m["error"].(string); !strings.Contains(msg, "64-byte limit") {
		t.Errorf("error message %q does not name the limit", msg)
	}
	if got := metric(t, getStats(t, hs.URL), "errors"); got != 1 {
		t.Errorf("errors = %v, want 1", got)
	}
	waitFor(t, func() bool { return strings.Contains(logs.String(), "outcome=body-too-large") })

	// An in-limit request on the same server still works.
	if status, _ := postMine(t, hs.URL, `{"db":"shop","per":4,"minPS":3}`); status != http.StatusOK {
		t.Errorf("in-limit request: status %d, want 200", status)
	}
}

func TestAccessLog(t *testing.T) {
	var logs syncBuffer
	_, hs := newTestServer(t, Config{Logger: obs.NewLogger(&logs, slog.LevelInfo)}, nil)

	body := `{"db":"shop","per":4,"minPS":3,"minRec":1}`
	if status, _ := postMine(t, hs.URL, body); status != http.StatusOK {
		t.Fatal("mine failed")
	}
	if status, _ := postMine(t, hs.URL, body); status != http.StatusOK {
		t.Fatal("cache hit failed")
	}
	waitFor(t, func() bool { return strings.Count(logs.String(), "outcome=") >= 2 })

	lines := strings.Split(strings.TrimSpace(logs.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("access log has %d lines, want 2:\n%s", len(lines), logs.String())
	}
	wantFP := fmt.Sprintf("fp=%016x", testDB().Fingerprint())
	for i, want := range []string{"outcome=ok", "outcome=cache-hit"} {
		line := lines[i]
		for _, frag := range []string{want, "db=shop", wantFP,
			`opts="per=4,minPS=3,minRec=1,maxLen=0,par=0,order=support,erec=on"`, "status=200"} {
			if !strings.Contains(line, frag) {
				t.Errorf("log line %d lacks %q: %s", i, frag, line)
			}
		}
	}
	// Request IDs are present and distinct.
	id := func(line string) string {
		for _, f := range strings.Fields(line) {
			if strings.HasPrefix(f, "id=") {
				return f
			}
		}
		return ""
	}
	if a, b := id(lines[0]), id(lines[1]); a == "" || a == b {
		t.Errorf("request ids not distinct: %q vs %q", a, b)
	}
}

func TestStatsHistogramBounds(t *testing.T) {
	_, hs := newTestServer(t, Config{}, nil)
	stats := getStats(t, hs.URL)
	ms := stats["metrics"].(map[string]any)
	buckets, ok := ms["miningTime"].([]any)
	if !ok || len(buckets) != len(histBounds)+1 {
		t.Fatalf("miningTime = %v, want %d buckets", ms["miningTime"], len(histBounds)+1)
	}
	prev := int64(0)
	for i, raw := range buckets {
		b := raw.(map[string]any)
		le, ok := b["leNanos"].(float64)
		if !ok {
			t.Fatalf("bucket %d has no numeric leNanos: %v", i, b)
		}
		if i == len(buckets)-1 {
			if le != -1 || b["le"] != "+Inf" {
				t.Errorf("last bucket = %v, want the +Inf catch-all", b)
			}
			break
		}
		if int64(le) <= prev {
			t.Errorf("bucket bounds not ascending at %d: %v", i, buckets)
		}
		prev = int64(le)
	}
}

func TestPprofGate(t *testing.T) {
	_, off := newTestServer(t, Config{}, nil)
	if resp, _ := getBody(t, off.URL+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without Pprof: status %d, want 404", resp.StatusCode)
	}
	_, on := newTestServer(t, Config{Pprof: true}, nil)
	if resp, _ := getBody(t, on.URL+"/debug/pprof/cmdline"); resp.StatusCode != http.StatusOK {
		t.Errorf("pprof with Pprof: status %d, want 200", resp.StatusCode)
	}
}
