// The request journal is rpserved's flight recorder: a bounded in-memory
// ring of the last N mining requests (/v1/mine, and /v1/shard/mine tasks
// under their coordinator's propagated ID) — every outcome, not just
// successes — plus a long-term bucket that retains the slowest requests
// after the ring has churned past them (the x/net/trace idea, stdlib-only).
// Entries are immutable once added, so the /debug/requests handlers render
// snapshots without copying anything but the slice headers.
package serve

import (
	"sort"
	"sync"
	"time"

	"github.com/recurpat/rp/internal/obs"
)

// slowBucketSize caps the long-term bucket of slowest requests.
const slowBucketSize = 16

// RequestEntry is one completed /v1/mine request as retained by the
// journal and rendered by /debug/requests. All fields are filled before
// the entry is added and never mutated afterwards.
type RequestEntry struct {
	// ID is the request's access-log id (obs.RequestID).
	ID string `json:"id"`
	// Start is when the handler began processing the request.
	Start time.Time `json:"start"`
	// DB and FP name the target database and its content fingerprint
	// (empty when the request failed before resolving one).
	DB string `json:"db,omitempty"`
	FP string `json:"fp,omitempty"`
	// Opts is the resolved options digest, as in the access log.
	Opts string `json:"opts,omitempty"`
	// Outcome is the one-word request outcome (ok, cache-hit, coalesced,
	// shed, cancelled, timeout, ...), Status the HTTP status sent.
	Outcome string `json:"outcome"`
	Status  int    `json:"status"`
	// Cached reports whether the response reused another run's result.
	Cached bool `json:"cached"`
	// Patterns is the number of patterns in the response (successes only).
	Patterns int `json:"patterns"`
	// QueueMS is time spent waiting for a mining slot, MineMS the
	// producing mine's wall time (historic on cache hits), ElapsedMS this
	// request's total handling time.
	QueueMS   float64 `json:"queueMS"`
	MineMS    float64 `json:"mineMS"`
	ElapsedMS float64 `json:"elapsedMS"`
	// AllocBytes and CPUMS are the producing mine's resource cost, read as
	// process-counter deltas around the mining section (historic on cache
	// hits, an upper bound when mines overlap; zero when nothing was
	// executed — shed, bad requests, ...).
	AllocBytes uint64  `json:"allocBytes"`
	CPUMS      float64 `json:"cpuMS"`
	// Phases is the per-phase breakdown of the producing mine (only
	// phases that observed time or work). Historic marks breakdowns
	// inherited from the cached producing run rather than measured during
	// this request.
	Phases   []obs.PhaseStat `json:"phases,omitempty"`
	Historic bool            `json:"historic,omitempty"`
	// HasTrace reports a retained span timeline, downloadable as Chrome
	// trace-event JSON from /debug/requests/trace?id=<ID>.
	HasTrace bool `json:"hasTrace"`

	// timeline is the retained per-run span timeline backing HasTrace;
	// unexported so the JSON listing stays small (the trace endpoint
	// renders it on demand).
	timeline obs.TimelineSnapshot
}

// journal retains recent and slow request entries. All methods are safe
// for concurrent use.
type journal struct {
	mu      sync.Mutex
	cap     int
	slowMin time.Duration

	recent []*RequestEntry // ring; next is the slot the next add overwrites
	next   int
	total  int64

	slow []*RequestEntry // slowest long-term entries, ElapsedMS descending
}

// newJournal sizes the ring to hold size entries; slowMin is the elapsed
// time at which a request also enters the long-term slow bucket.
func newJournal(size int, slowMin time.Duration) *journal {
	return &journal{cap: size, slowMin: slowMin}
}

// add retains one completed request. Past the ring capacity the oldest
// recent entry is evicted; entries at or above slowMin are additionally
// kept in the slow bucket until slowBucketSize faster ones displace them.
func (j *journal) add(e *RequestEntry) {
	j.mu.Lock()
	defer j.mu.Unlock()
	j.total++
	if len(j.recent) < j.cap {
		j.recent = append(j.recent, e)
	} else {
		j.recent[j.next] = e
		j.next = (j.next + 1) % j.cap
	}
	if j.slowMin < 0 || time.Duration(e.ElapsedMS*float64(time.Millisecond)) < j.slowMin {
		return
	}
	i := sort.Search(len(j.slow), func(i int) bool { return j.slow[i].ElapsedMS < e.ElapsedMS })
	if i >= slowBucketSize {
		return
	}
	j.slow = append(j.slow, nil)
	copy(j.slow[i+1:], j.slow[i:])
	j.slow[i] = e
	if len(j.slow) > slowBucketSize {
		j.slow = j.slow[:slowBucketSize]
	}
}

// snapshot returns the retained entries — recent ones newest-first, slow
// ones slowest-first — and the total number of requests journalled.
func (j *journal) snapshot() (recent, slow []*RequestEntry, total int64) {
	j.mu.Lock()
	defer j.mu.Unlock()
	recent = make([]*RequestEntry, 0, len(j.recent))
	for i := 1; i <= len(j.recent); i++ {
		recent = append(recent, j.recent[(j.next+len(j.recent)-i)%len(j.recent)])
	}
	return recent, append([]*RequestEntry(nil), j.slow...), j.total
}

// find returns the retained entry with the given id, or nil. Recent
// entries win over slow ones (they are the same pointer when both hold it).
func (j *journal) find(id string) *RequestEntry {
	j.mu.Lock()
	defer j.mu.Unlock()
	for _, e := range j.recent {
		if e.ID == id {
			return e
		}
	}
	for _, e := range j.slow {
		if e.ID == id {
			return e
		}
	}
	return nil
}
