package ext

import (
	"fmt"
	"sort"

	"github.com/recurpat/rp/internal/core"
)

// Monitor watches specific patterns over a live event stream through a
// sliding time window, and reports when a pattern starts or stops being
// recurring within the window — the online counterpart of batch mining,
// for the paper's network-operations motivation (alert when a failure
// signature becomes periodic).
type Monitor struct {
	opts   core.Options
	window int64
	items  map[string]int // item name -> watch bitmap column
	watch  []watched
	lastTS int64
	seen   bool
}

type watched struct {
	names     []string
	need      []int // bitmap columns that must all be present
	ts        []int64
	recurring bool
}

// Alert reports a state transition of a watched pattern.
type Alert struct {
	Pattern []string
	// Recurring is the new state: true when the pattern just became
	// recurring within the window, false when it just stopped.
	Recurring bool
	// Recurrence is the pattern's in-window recurrence at the transition.
	Recurrence int
	// TS is the transaction timestamp that triggered the transition.
	TS int64
}

// NewMonitor builds a monitor for the given patterns. window is the width
// of the sliding time window (in timestamp units) over which recurrence is
// evaluated; it must be positive and should comfortably exceed
// o.Per*o.MinPS or no pattern can ever qualify.
func NewMonitor(o core.Options, window int64, patterns [][]string) (*Monitor, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	if window <= 0 {
		return nil, fmt.Errorf("ext: window must be positive, got %d", window)
	}
	if len(patterns) == 0 {
		return nil, fmt.Errorf("ext: no patterns to watch")
	}
	m := &Monitor{opts: o, window: window, items: make(map[string]int)}
	for _, p := range patterns {
		if len(p) == 0 {
			return nil, fmt.Errorf("ext: empty watch pattern")
		}
		w := watched{names: append([]string(nil), p...)}
		sort.Strings(w.names)
		for _, name := range w.names {
			col, ok := m.items[name]
			if !ok {
				col = len(m.items)
				m.items[name] = col
			}
			w.need = append(w.need, col)
		}
		m.watch = append(m.watch, w)
	}
	return m, nil
}

// Observe feeds one transaction (its timestamp and items) and returns any
// state transitions it caused. Timestamps must be non-decreasing; a
// transaction at a timestamp already seen extends that instant and is
// treated as part of it.
func (m *Monitor) Observe(ts int64, items ...string) ([]Alert, error) {
	if m.seen && ts < m.lastTS {
		return nil, fmt.Errorf("ext: out-of-order observation: ts %d after %d", ts, m.lastTS)
	}
	m.lastTS = ts
	m.seen = true
	present := make([]bool, len(m.items))
	for _, it := range items {
		if col, ok := m.items[it]; ok {
			present[col] = true
		}
	}
	var alerts []Alert
	low := ts - m.window
	for i := range m.watch {
		w := &m.watch[i]
		all := true
		for _, col := range w.need {
			if !present[col] {
				all = false
				break
			}
		}
		if all && (len(w.ts) == 0 || w.ts[len(w.ts)-1] != ts) {
			w.ts = append(w.ts, ts)
		}
		// Evict observations that slid out of the window.
		k := 0
		for k < len(w.ts) && w.ts[k] < low {
			k++
		}
		if k > 0 {
			w.ts = append(w.ts[:0], w.ts[k:]...)
		}
		rec, _ := core.Recurrence(w.ts, m.opts.Per, m.opts.MinPS)
		nowRecurring := rec >= m.opts.MinRec
		if nowRecurring != w.recurring {
			w.recurring = nowRecurring
			alerts = append(alerts, Alert{
				Pattern:    w.names,
				Recurring:  nowRecurring,
				Recurrence: rec,
				TS:         ts,
			})
		}
	}
	return alerts, nil
}

// Recurring reports which watched patterns are currently recurring within
// the window.
func (m *Monitor) Recurring() [][]string {
	var out [][]string
	for _, w := range m.watch {
		if w.recurring {
			out = append(out, w.names)
		}
	}
	return out
}
