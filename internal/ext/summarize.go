package ext

import (
	"cmp"
	"slices"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

// Summarization reduces a mining result to its non-redundant core. A
// recurring pattern is
//
//   - maximal if no proper superset of it is also in the result;
//   - closed if no proper superset in the result has the same support
//     (equal support means the superset occurs in exactly the same
//     transactions, so the subset adds no information).
//
// Both filters preserve the patterns' measures; Maximal is the stronger
// reduction, Closed is lossless with respect to supports.

// Maximal returns the maximal patterns of a canonicalized result, in
// canonical order.
func Maximal(res *core.Result) []core.Pattern {
	return filterBySuperset(res, func(sub, super core.Pattern) bool {
		return true // any proper superset suppresses the subset
	})
}

// Closed returns the closed patterns of a canonicalized result, in
// canonical order.
func Closed(res *core.Result) []core.Pattern {
	return filterBySuperset(res, func(sub, super core.Pattern) bool {
		return super.Support == sub.Support
	})
}

// filterBySuperset keeps every pattern that has no proper superset in the
// result for which suppresses(sub, super) holds. The result must be
// canonicalized (shorter patterns first).
func filterBySuperset(res *core.Result, suppresses func(sub, super core.Pattern) bool) []core.Pattern {
	// Index patterns by their first item to avoid the full quadratic scan;
	// a superset necessarily contains the subset's first item.
	byItem := make(map[tsdb.ItemID][]core.Pattern)
	for _, p := range res.Patterns {
		for _, it := range p.Items {
			byItem[it] = append(byItem[it], p)
		}
	}
	var out []core.Pattern
	for _, p := range res.Patterns {
		suppressed := false
		for _, q := range byItem[p.Items[0]] {
			if len(q.Items) <= len(p.Items) {
				continue
			}
			if isSubset(p.Items, q.Items) && suppresses(p, q) {
				suppressed = true
				break
			}
		}
		if !suppressed {
			out = append(out, p)
		}
	}
	slices.SortFunc(out, func(a, b core.Pattern) int { return compareCanonical(a.Items, b.Items) })
	return out
}

func isSubset(a, b []tsdb.ItemID) bool {
	i := 0
	for _, x := range a {
		for i < len(b) && b[i] < x {
			i++
		}
		if i == len(b) || b[i] != x {
			return false
		}
		i++
	}
	return true
}

func compareCanonical(a, b []tsdb.ItemID) int {
	if len(a) != len(b) {
		return len(a) - len(b)
	}
	for i := range a {
		if a[i] != b[i] {
			return cmp.Compare(a[i], b[i])
		}
	}
	return 0
}
