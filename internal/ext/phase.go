package ext

import (
	"cmp"
	"fmt"
	"slices"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

// ShiftOptions extends the recurring pattern thresholds with a phase-shift
// tolerance: when a pattern's periodic appearance pauses and resumes with a
// time offset (a phase shift), the strict model splits its interval in two.
// With a tolerance, two periodic runs separated by a silent gap of at most
// ShiftTolerance are treated as one interval whose periodic support is the
// sum of the runs'.
type ShiftOptions struct {
	core.Options
	// ShiftTolerance is the largest silent gap (in timestamp units) bridged
	// between two periodic runs. Values at or below Per change nothing.
	ShiftTolerance int64
}

// Validate reports the first violated constraint.
func (o ShiftOptions) Validate() error {
	if err := o.Options.Validate(); err != nil {
		return err
	}
	if o.ShiftTolerance < 0 {
		return fmt.Errorf("ext: ShiftTolerance must be non-negative, got %d", o.ShiftTolerance)
	}
	return nil
}

func (o ShiftOptions) bridge() int64 {
	if o.ShiftTolerance > o.Per {
		return o.ShiftTolerance
	}
	return o.Per
}

// ShiftRecurrence computes recurrence with phase-shift bridging: the strict
// periodic runs (gaps <= Per) are computed first, adjacent runs separated by
// at most the tolerance are merged, and the merged intervals are filtered by
// MinPS.
func ShiftRecurrence(ts []int64, o ShiftOptions) (rec int, ipi []core.Interval) {
	runs := core.Intervals(ts, o.Per)
	merged := MergeIntervals(runs, o.bridge())
	for _, iv := range merged {
		if iv.PS >= o.MinPS {
			ipi = append(ipi, iv)
			rec++
		}
	}
	return rec, ipi
}

// MergeIntervals coalesces intervals whose separating gap (next.Start -
// prev.End) is at most tol, summing their periodic supports. The input must
// be in time order, as produced by core.Intervals.
func MergeIntervals(ivs []core.Interval, tol int64) []core.Interval {
	if len(ivs) == 0 {
		return nil
	}
	out := []core.Interval{ivs[0]}
	for _, iv := range ivs[1:] {
		last := &out[len(out)-1]
		if iv.Start-last.End <= tol {
			last.End = iv.End
			last.PS += iv.PS
		} else {
			out = append(out, iv)
		}
	}
	return out
}

// MineShifted discovers all patterns whose phase-shift-tolerant recurrence
// reaches MinRec. Pruning mirrors MineNoisy: merged intervals lie inside
// runs of the bridged period, so Erec at the bridge distance bounds the
// shifted recurrence of a pattern and its supersets.
func MineShifted(db *tsdb.DB, o ShiftOptions) (*core.Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	bridge := o.bridge()
	res := &core.Result{}
	all := db.ItemTSLists()
	type entry struct {
		item tsdb.ItemID
		ts   []int64
	}
	var items []entry
	for id, ts := range all {
		if core.Erec(ts, bridge, o.MinPS) >= o.MinRec {
			items = append(items, entry{item: tsdb.ItemID(id), ts: ts})
		}
	}
	slices.SortFunc(items, func(a, b entry) int {
		if len(a.ts) != len(b.ts) {
			return len(b.ts) - len(a.ts)
		}
		return cmp.Compare(a.item, b.item)
	})

	var dfs func(prefix []tsdb.ItemID, ts []int64, idx int)
	dfs = func(prefix []tsdb.ItemID, ts []int64, idx int) {
		rec, ipi := ShiftRecurrence(ts, o)
		if rec >= o.MinRec {
			sorted := make([]tsdb.ItemID, len(prefix))
			copy(sorted, prefix)
			slices.Sort(sorted)
			res.Patterns = append(res.Patterns, core.Pattern{
				Items: sorted, Support: len(ts), Recurrence: rec, Intervals: ipi,
			})
		}
		if o.MaxLen > 0 && len(prefix) >= o.MaxLen {
			return
		}
		n := len(prefix)
		for j := idx + 1; j < len(items); j++ {
			ext := core.IntersectTS(nil, ts, items[j].ts)
			if len(ext) == 0 || core.Erec(ext, bridge, o.MinPS) < o.MinRec {
				continue
			}
			dfs(append(prefix[:n:n], items[j].item), ext, j)
		}
	}
	for i := range items {
		dfs([]tsdb.ItemID{items[i].item}, items[i].ts, i)
	}
	res.Canonicalize()
	return res, nil
}
