package ext

import (
	"cmp"
	"fmt"
	"slices"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

// Rule is a recurring association rule A => c: when the items of A are
// observed, item c tends to follow in the same transaction, and the joint
// pattern A ∪ {c} recurs periodically during the rule's intervals. The paper
// motivates these rules as the substrate of a temporally aware recommender
// (Section 6).
type Rule struct {
	Antecedent []tsdb.ItemID // sorted ascending
	Consequent tsdb.ItemID
	// Support is the support of the joint pattern.
	Support int
	// Confidence is Sup(A ∪ {c}) / Sup(A).
	Confidence float64
	// Recurrence and Intervals describe the joint pattern's periodic
	// behavior.
	Recurrence int
	Intervals  []core.Interval
}

// RuleOptions configures rule generation.
type RuleOptions struct {
	core.Options
	// MinConfidence filters weak rules; in [0, 1].
	MinConfidence float64
}

// Validate reports the first violated constraint.
func (o RuleOptions) Validate() error {
	if err := o.Options.Validate(); err != nil {
		return err
	}
	if o.MinConfidence < 0 || o.MinConfidence > 1 {
		return fmt.Errorf("ext: MinConfidence must be in [0,1], got %f", o.MinConfidence)
	}
	return nil
}

// Rules mines the recurring patterns of db and derives all single-consequent
// rules A => c with confidence at least MinConfidence, where A ∪ {c} is a
// recurring pattern of at least two items. Rules are ordered by descending
// confidence, then support, then antecedent.
func Rules(db *tsdb.DB, o RuleOptions) ([]Rule, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	res, err := core.Mine(db, o.Options)
	if err != nil {
		return nil, err
	}
	supCache := make(map[string]int)
	supportOf := func(items []tsdb.ItemID) int {
		key := fmt.Sprint(items)
		if s, ok := supCache[key]; ok {
			return s
		}
		s := len(db.TSList(items))
		supCache[key] = s
		return s
	}
	// Seed the cache with the mined patterns' own supports.
	for _, p := range res.Patterns {
		supCache[fmt.Sprint(p.Items)] = p.Support
	}

	var rules []Rule
	for _, p := range res.Patterns {
		if len(p.Items) < 2 {
			continue
		}
		for i, c := range p.Items {
			ante := make([]tsdb.ItemID, 0, len(p.Items)-1)
			ante = append(ante, p.Items[:i]...)
			ante = append(ante, p.Items[i+1:]...)
			supA := supportOf(ante)
			if supA == 0 {
				continue
			}
			conf := float64(p.Support) / float64(supA)
			if conf < o.MinConfidence {
				continue
			}
			rules = append(rules, Rule{
				Antecedent: ante,
				Consequent: c,
				Support:    p.Support,
				Confidence: conf,
				Recurrence: p.Recurrence,
				Intervals:  p.Intervals,
			})
		}
	}
	slices.SortFunc(rules, func(a, b Rule) int {
		if a.Confidence != b.Confidence {
			return cmp.Compare(b.Confidence, a.Confidence)
		}
		if a.Support != b.Support {
			return b.Support - a.Support
		}
		if len(a.Antecedent) != len(b.Antecedent) {
			return len(a.Antecedent) - len(b.Antecedent)
		}
		for k := range a.Antecedent {
			if a.Antecedent[k] != b.Antecedent[k] {
				return cmp.Compare(a.Antecedent[k], b.Antecedent[k])
			}
		}
		return cmp.Compare(a.Consequent, b.Consequent)
	})
	return rules, nil
}

// Recommender serves temporally aware recommendations from recurring rules:
// a rule only fires when the query timestamp falls inside (or near) one of
// the rule's interesting periodic intervals, so seasonal associations are
// recommended in season.
type Recommender struct {
	db    *tsdb.DB
	rules []Rule
	// Slack widens the intervals when matching timestamps, so queries just
	// before a season starts still see it.
	Slack int64
}

// NewRecommender builds a recommender from mined rules.
func NewRecommender(db *tsdb.DB, rules []Rule) *Recommender {
	return &Recommender{db: db, rules: rules}
}

// Recommendation is a scored consequent item.
type Recommendation struct {
	Item       string
	Confidence float64
	Recurrence int
}

// Recommend returns the consequents of every rule whose antecedent is a
// subset of the given basket and whose intervals contain ts (within Slack),
// ranked by confidence. Each item is recommended at most once, at its best
// confidence; items already in the basket are not recommended.
func (r *Recommender) Recommend(basket []string, ts int64, limit int) []Recommendation {
	have := make(map[tsdb.ItemID]bool, len(basket))
	for _, name := range basket {
		if id, ok := r.db.Dict.Lookup(name); ok {
			have[id] = true
		}
	}
	best := make(map[tsdb.ItemID]Rule)
	for _, rule := range r.rules {
		if have[rule.Consequent] {
			continue
		}
		if !subset(rule.Antecedent, have) {
			continue
		}
		if !r.inSeason(rule, ts) {
			continue
		}
		if prev, ok := best[rule.Consequent]; !ok || rule.Confidence > prev.Confidence {
			best[rule.Consequent] = rule
		}
	}
	out := make([]Recommendation, 0, len(best))
	for id, rule := range best {
		out = append(out, Recommendation{
			Item:       r.db.Dict.Name(id),
			Confidence: rule.Confidence,
			Recurrence: rule.Recurrence,
		})
	}
	slices.SortFunc(out, func(a, b Recommendation) int {
		if a.Confidence != b.Confidence {
			return cmp.Compare(b.Confidence, a.Confidence)
		}
		return cmp.Compare(a.Item, b.Item)
	})
	if limit > 0 && len(out) > limit {
		out = out[:limit]
	}
	return out
}

func (r *Recommender) inSeason(rule Rule, ts int64) bool {
	for _, iv := range rule.Intervals {
		if ts >= iv.Start-r.Slack && ts <= iv.End+r.Slack {
			return true
		}
	}
	return false
}

func subset(items []tsdb.ItemID, have map[tsdb.ItemID]bool) bool {
	for _, id := range items {
		if !have[id] {
			return false
		}
	}
	return true
}
