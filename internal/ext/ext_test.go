package ext

import (
	"math/rand/v2"
	"reflect"
	"sort"
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

func mustDB(t testing.TB, text string) *tsdb.DB {
	t.Helper()
	db, err := tsdb.Read(strings.NewReader(text))
	if err != nil {
		t.Fatal(err)
	}
	return db
}

func randomDB(rng *rand.Rand, nItems, nTS int, density float64) *tsdb.DB {
	b := tsdb.NewBuilder()
	for ts := int64(1); ts <= int64(nTS); ts++ {
		for i := 0; i < nItems; i++ {
			if rng.Float64() < density {
				b.Add(string(rune('a'+i)), ts)
			}
		}
	}
	return b.Build()
}

func TestNoisyRecurrenceStrictEqualsCore(t *testing.T) {
	// With a zero noise budget the extension must reproduce the strict
	// model exactly.
	rng := rand.New(rand.NewPCG(1, 1))
	for run := 0; run < 200; run++ {
		var ts []int64
		cur := int64(0)
		for i := 0; i < rng.IntN(50); i++ {
			cur += rng.Int64N(9) + 1
			ts = append(ts, cur)
		}
		o := NoiseOptions{
			Options:     core.Options{Per: rng.Int64N(6) + 1, MinPS: rng.IntN(4) + 1, MinRec: 1},
			NoiseFactor: 3,
		}
		rec, ipi := NoisyRecurrence(ts, o)
		wantRec, wantIPI := core.Recurrence(ts, o.Per, o.MinPS)
		if rec != wantRec || !reflect.DeepEqual(ipi, wantIPI) {
			t.Fatalf("zero budget diverges from strict model: %v vs %v", ipi, wantIPI)
		}
	}
}

func TestNoisyRecurrenceBridgesGaps(t *testing.T) {
	// 1,2,3, (gap 4), 7,8,9: strict per=1 gives two runs of 3; one tolerated
	// violation (factor 4) bridges them into a single interval of 6.
	ts := []int64{1, 2, 3, 7, 8, 9}
	o := NoiseOptions{
		Options:       core.Options{Per: 1, MinPS: 3, MinRec: 1},
		MaxViolations: 1,
		NoiseFactor:   4,
	}
	rec, ipi := NoisyRecurrence(ts, o)
	if rec != 1 || len(ipi) != 1 || ipi[0] != (core.Interval{Start: 1, End: 9, PS: 6}) {
		t.Fatalf("got rec=%d ipi=%v, want one [1,9]:6", rec, ipi)
	}
	// The same gap is too wide at factor 2 (relaxed per = 2 < gap 4).
	o.NoiseFactor = 2
	rec, ipi = NoisyRecurrence(ts, o)
	if rec != 2 {
		t.Fatalf("factor 2 should keep two intervals, got %d (%v)", rec, ipi)
	}
	// Budget exhaustion: two gaps, one violation allowed.
	ts = []int64{1, 2, 3, 7, 8, 9, 13, 14, 15}
	o.NoiseFactor = 4
	rec, _ = NoisyRecurrence(ts, o)
	if rec != 2 {
		t.Fatalf("budget of 1 must split at the second gap, got %d", rec)
	}
	o.MaxViolations = 2
	rec, ipi = NoisyRecurrence(ts, o)
	if rec != 1 || ipi[0].PS != 9 {
		t.Fatalf("budget of 2 should bridge both gaps, got rec=%d ipi=%v", rec, ipi)
	}
}

// noisyBruteForce is the oracle for MineNoisy.
func noisyBruteForce(db *tsdb.DB, o NoiseOptions) []core.Pattern {
	all := db.ItemTSLists()
	var items []tsdb.ItemID
	for id, ts := range all {
		if len(ts) > 0 {
			items = append(items, tsdb.ItemID(id))
		}
	}
	var out []core.Pattern
	var grow func(start int, prefix []tsdb.ItemID, ts []int64)
	grow = func(start int, prefix []tsdb.ItemID, ts []int64) {
		for i := start; i < len(items); i++ {
			var ext []int64
			if len(prefix) == 0 {
				ext = all[items[i]]
			} else {
				ext = core.IntersectTS(nil, ts, all[items[i]])
			}
			if len(ext) == 0 {
				continue
			}
			next := append(prefix[:len(prefix):len(prefix)], items[i])
			rec, ipi := NoisyRecurrence(ext, o)
			if rec >= o.MinRec && (o.MaxLen == 0 || len(next) <= o.MaxLen) {
				cp := make([]tsdb.ItemID, len(next))
				copy(cp, next)
				out = append(out, core.Pattern{Items: cp, Support: len(ext), Recurrence: rec, Intervals: ipi})
			}
			grow(i+1, next, ext)
		}
	}
	grow(0, nil, nil)
	res := core.Result{Patterns: out}
	res.Canonicalize()
	return res.Patterns
}

func TestMineNoisyAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(4, 4))
	for run := 0; run < 30; run++ {
		db := randomDB(rng, rng.IntN(5)+2, rng.IntN(60)+20, 0.25+rng.Float64()*0.3)
		if db.Len() == 0 {
			continue
		}
		o := NoiseOptions{
			Options:       core.Options{Per: rng.Int64N(4) + 1, MinPS: rng.IntN(3) + 2, MinRec: rng.IntN(2) + 1},
			MaxViolations: rng.IntN(3),
			NoiseFactor:   1 + 2*rng.Float64(),
		}
		got, err := MineNoisy(db, o)
		if err != nil {
			t.Fatal(err)
		}
		want := noisyBruteForce(db, o)
		if !reflect.DeepEqual(got.Patterns, want) {
			t.Fatalf("run %d (%+v): got %d patterns, want %d", run, o, len(got.Patterns), len(want))
		}
	}
}

func TestMineNoisySupersetOfStrict(t *testing.T) {
	// A noise budget can only add patterns, never remove them.
	rng := rand.New(rand.NewPCG(6, 6))
	for run := 0; run < 15; run++ {
		db := randomDB(rng, 5, 80, 0.3)
		base := core.Options{Per: 2, MinPS: 3, MinRec: 1}
		strict, err := core.Mine(db, base)
		if err != nil {
			t.Fatal(err)
		}
		noisy, err := MineNoisy(db, NoiseOptions{Options: base, MaxViolations: 2, NoiseFactor: 3})
		if err != nil {
			t.Fatal(err)
		}
		found := make(map[string]bool, len(noisy.Patterns))
		for _, p := range noisy.Patterns {
			found[keyOf(p.Items)] = true
		}
		for _, p := range strict.Patterns {
			if !found[keyOf(p.Items)] {
				t.Fatalf("strict pattern %v lost under noise tolerance", p.Items)
			}
		}
	}
}

func keyOf(items []tsdb.ItemID) string {
	var b strings.Builder
	for _, id := range items {
		b.WriteString(string(rune('0' + id)))
		b.WriteByte(',')
	}
	return b.String()
}

func TestMergeIntervals(t *testing.T) {
	ivs := []core.Interval{
		{Start: 1, End: 4, PS: 3},
		{Start: 7, End: 9, PS: 2},
		{Start: 20, End: 22, PS: 2},
	}
	got := MergeIntervals(ivs, 3)
	want := []core.Interval{{Start: 1, End: 9, PS: 5}, {Start: 20, End: 22, PS: 2}}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("MergeIntervals = %v, want %v", got, want)
	}
	if MergeIntervals(nil, 3) != nil {
		t.Error("empty input should yield nil")
	}
	// Chain merging: all three coalesce at a large tolerance.
	got = MergeIntervals(ivs, 100)
	if len(got) != 1 || got[0].PS != 7 {
		t.Errorf("chain merge = %v", got)
	}
}

func TestShiftRecurrence(t *testing.T) {
	// Two dense runs 1-5 and 14-18 (phase shift of 9): strict per=1 sees two
	// intervals of 5; with tolerance 9 they merge into one of 10.
	ts := []int64{1, 2, 3, 4, 5, 14, 15, 16, 17, 18}
	base := core.Options{Per: 1, MinPS: 6, MinRec: 1}
	rec, _ := core.Recurrence(ts, base.Per, base.MinPS)
	if rec != 0 {
		t.Fatalf("strict rec = %d, want 0 (runs of 5 < minPS 6)", rec)
	}
	srec, ipi := ShiftRecurrence(ts, ShiftOptions{Options: base, ShiftTolerance: 9})
	if srec != 1 || len(ipi) != 1 || ipi[0].PS != 10 {
		t.Fatalf("shifted rec = %d ipi = %v, want one [1,18]:10", srec, ipi)
	}
	// Tolerance below the gap changes nothing.
	srec, _ = ShiftRecurrence(ts, ShiftOptions{Options: base, ShiftTolerance: 8})
	if srec != 0 {
		t.Fatalf("tolerance 8 should not bridge a gap of 9, got rec %d", srec)
	}
}

// shiftBruteForce is the oracle for MineShifted.
func shiftBruteForce(db *tsdb.DB, o ShiftOptions) []core.Pattern {
	all := db.ItemTSLists()
	var items []tsdb.ItemID
	for id, ts := range all {
		if len(ts) > 0 {
			items = append(items, tsdb.ItemID(id))
		}
	}
	var out []core.Pattern
	var grow func(start int, prefix []tsdb.ItemID, ts []int64)
	grow = func(start int, prefix []tsdb.ItemID, ts []int64) {
		for i := start; i < len(items); i++ {
			var ext []int64
			if len(prefix) == 0 {
				ext = all[items[i]]
			} else {
				ext = core.IntersectTS(nil, ts, all[items[i]])
			}
			if len(ext) == 0 {
				continue
			}
			next := append(prefix[:len(prefix):len(prefix)], items[i])
			rec, ipi := ShiftRecurrence(ext, o)
			if rec >= o.MinRec && (o.MaxLen == 0 || len(next) <= o.MaxLen) {
				cp := make([]tsdb.ItemID, len(next))
				copy(cp, next)
				out = append(out, core.Pattern{Items: cp, Support: len(ext), Recurrence: rec, Intervals: ipi})
			}
			grow(i+1, next, ext)
		}
	}
	grow(0, nil, nil)
	res := core.Result{Patterns: out}
	res.Canonicalize()
	return res.Patterns
}

func TestMineShiftedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	for run := 0; run < 30; run++ {
		db := randomDB(rng, rng.IntN(5)+2, rng.IntN(60)+20, 0.25+rng.Float64()*0.3)
		if db.Len() == 0 {
			continue
		}
		o := ShiftOptions{
			Options:        core.Options{Per: rng.Int64N(4) + 1, MinPS: rng.IntN(3) + 2, MinRec: rng.IntN(2) + 1},
			ShiftTolerance: rng.Int64N(10),
		}
		got, err := MineShifted(db, o)
		if err != nil {
			t.Fatal(err)
		}
		want := shiftBruteForce(db, o)
		if !reflect.DeepEqual(got.Patterns, want) {
			t.Fatalf("run %d (%+v): got %d patterns, want %d", run, o, len(got.Patterns), len(want))
		}
	}
}

func TestTopK(t *testing.T) {
	rng := rand.New(rand.NewPCG(12, 12))
	for run := 0; run < 20; run++ {
		db := randomDB(rng, rng.IntN(5)+2, rng.IntN(80)+20, 0.3)
		if db.Len() == 0 {
			continue
		}
		per := rng.Int64N(4) + 1
		minPS := rng.IntN(3) + 1
		k := rng.IntN(6) + 1
		got, err := TopK(db, per, minPS, k)
		if err != nil {
			t.Fatal(err)
		}
		// Oracle: mine everything at minRec=1, sort by the top-k order.
		all, err := core.MineBruteForce(db, core.Options{Per: per, MinPS: minPS, MinRec: 1})
		if err != nil {
			t.Fatal(err)
		}
		want := append([]core.Pattern(nil), all.Patterns...)
		sort.Slice(want, func(i, j int) bool { return better(want[i], want[j]) })
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			t.Fatalf("run %d: got %d patterns, want %d", run, len(got), len(want))
		}
		for i := range want {
			if got[i].Recurrence != want[i].Recurrence {
				t.Fatalf("run %d rank %d: rec %d, want %d", run, i, got[i].Recurrence, want[i].Recurrence)
			}
		}
	}
}

func TestTopKValidation(t *testing.T) {
	db := mustDB(t, "1\ta\n")
	for _, args := range [][3]int{{0, 1, 1}, {1, 0, 1}, {1, 1, 0}} {
		if _, err := TopK(db, int64(args[0]), args[1], args[2]); err == nil {
			t.Errorf("TopK(%v) should fail", args)
		}
	}
}

func TestRulesAndRecommender(t *testing.T) {
	// Seasonal co-purchase: jackets+gloves recur in two winter windows;
	// sunscreen sells in summer.
	b := tsdb.NewBuilder()
	for ts := int64(1); ts <= 10; ts++ {
		b.Add("jackets", ts)
		if ts%2 == 0 {
			b.Add("gloves", ts)
		} else {
			b.Add("scarf", ts)
		}
	}
	for ts := int64(30); ts <= 40; ts++ {
		b.Add("sunscreen", ts)
	}
	for ts := int64(60); ts <= 70; ts++ {
		b.Add("jackets", ts)
		b.Add("gloves", ts)
	}
	db := b.Build()
	o := RuleOptions{
		Options:       core.Options{Per: 2, MinPS: 3, MinRec: 2},
		MinConfidence: 0.5,
	}
	rules, err := Rules(db, o)
	if err != nil {
		t.Fatal(err)
	}
	if len(rules) == 0 {
		t.Fatal("no rules derived")
	}
	var jg *Rule
	for i := range rules {
		names := db.PatternNames(rules[i].Antecedent)
		if len(names) == 1 && names[0] == "gloves" && db.Dict.Name(rules[i].Consequent) == "jackets" {
			jg = &rules[i]
		}
	}
	if jg == nil {
		t.Fatal("rule gloves => jackets not found")
	}
	if jg.Confidence != 1.0 {
		t.Errorf("gloves => jackets confidence = %f, want 1.0", jg.Confidence)
	}

	rec := NewRecommender(db, rules)
	// In winter window: jackets recommended with gloves in the basket.
	got := rec.Recommend([]string{"gloves"}, 65, 5)
	found := false
	for _, r := range got {
		if r.Item == "jackets" {
			found = true
		}
	}
	if !found {
		t.Errorf("in-season recommendation missing jackets: %+v", got)
	}
	// Out of season (summer): the winter rule must not fire.
	got = rec.Recommend([]string{"gloves"}, 35, 5)
	for _, r := range got {
		if r.Item == "jackets" {
			t.Errorf("out-of-season recommendation leaked: %+v", got)
		}
	}
	// Items already held are not recommended.
	got = rec.Recommend([]string{"gloves", "jackets"}, 65, 5)
	for _, r := range got {
		if r.Item == "jackets" || r.Item == "gloves" {
			t.Errorf("recommended an item already in the basket: %+v", got)
		}
	}
}

func TestRuleOptionsValidate(t *testing.T) {
	bad := RuleOptions{Options: core.Options{Per: 1, MinPS: 1, MinRec: 1}, MinConfidence: 1.5}
	if err := bad.Validate(); err == nil {
		t.Error("MinConfidence > 1 should fail validation")
	}
	if _, err := Rules(mustDB(t, "1\ta\n"), bad); err == nil {
		t.Error("Rules must reject invalid options")
	}
	if _, err := MineNoisy(mustDB(t, "1\ta\n"), NoiseOptions{MaxViolations: -1, Options: core.Options{Per: 1, MinPS: 1, MinRec: 1}}); err == nil {
		t.Error("MineNoisy must reject negative budget")
	}
	if _, err := MineShifted(mustDB(t, "1\ta\n"), ShiftOptions{ShiftTolerance: -1, Options: core.Options{Per: 1, MinPS: 1, MinRec: 1}}); err == nil {
		t.Error("MineShifted must reject negative tolerance")
	}
}
