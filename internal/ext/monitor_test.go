package ext

import (
	"testing"

	"github.com/recurpat/rp/internal/core"
)

func monitorOptions() core.Options { return core.Options{Per: 2, MinPS: 3, MinRec: 1} }

func TestMonitorValidation(t *testing.T) {
	if _, err := NewMonitor(core.Options{}, 10, [][]string{{"a"}}); err == nil {
		t.Error("invalid options must fail")
	}
	if _, err := NewMonitor(monitorOptions(), 0, [][]string{{"a"}}); err == nil {
		t.Error("zero window must fail")
	}
	if _, err := NewMonitor(monitorOptions(), 10, nil); err == nil {
		t.Error("no patterns must fail")
	}
	if _, err := NewMonitor(monitorOptions(), 10, [][]string{{}}); err == nil {
		t.Error("empty pattern must fail")
	}
}

func TestMonitorFiresOnRecurrence(t *testing.T) {
	m, err := NewMonitor(monitorOptions(), 100, [][]string{{"x", "y"}})
	if err != nil {
		t.Fatal(err)
	}
	// Two co-occurrences: not yet recurring (minPS=3).
	for ts := int64(1); ts <= 2; ts++ {
		alerts, err := m.Observe(ts, "x", "y")
		if err != nil {
			t.Fatal(err)
		}
		if len(alerts) != 0 {
			t.Fatalf("premature alert at ts %d: %+v", ts, alerts)
		}
	}
	// Third consecutive co-occurrence completes an interesting interval.
	alerts, err := m.Observe(3, "x", "y", "z")
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || !alerts[0].Recurring || alerts[0].TS != 3 {
		t.Fatalf("expected recurring alert at ts 3, got %+v", alerts)
	}
	if got := m.Recurring(); len(got) != 1 {
		t.Fatalf("Recurring() = %v", got)
	}
	// Items observed separately do not count as co-occurrence; after the
	// window slides past the burst, the pattern stops recurring.
	alerts, err = m.Observe(200, "x")
	if err != nil {
		t.Fatal(err)
	}
	if len(alerts) != 1 || alerts[0].Recurring {
		t.Fatalf("expected stop alert after window slide, got %+v", alerts)
	}
	if got := m.Recurring(); len(got) != 0 {
		t.Fatalf("Recurring() after stop = %v", got)
	}
}

func TestMonitorWindowEviction(t *testing.T) {
	// minRec=2: needs two separated bursts inside the window.
	o := core.Options{Per: 2, MinPS: 3, MinRec: 2}
	m, err := NewMonitor(o, 50, [][]string{{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	feedBurst := func(start int64) []Alert {
		var last []Alert
		for ts := start; ts < start+3; ts++ {
			alerts, err := m.Observe(ts, "a")
			if err != nil {
				t.Fatal(err)
			}
			last = alerts
		}
		return last
	}
	feedBurst(1) // one interval: rec=1 < 2
	if got := m.Recurring(); len(got) != 0 {
		t.Fatalf("one burst should not recur at minRec=2: %v", got)
	}
	alerts := feedBurst(20) // second interval inside window: rec=2
	if len(alerts) != 1 || !alerts[0].Recurring || alerts[0].Recurrence != 2 {
		t.Fatalf("expected rec=2 alert, got %+v", alerts)
	}
	// A third burst far away slides the first two out: back to rec=1.
	stopSeen := false
	for ts := int64(90); ts < 93; ts++ {
		alerts, err := m.Observe(ts, "a")
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range alerts {
			if !a.Recurring {
				stopSeen = true
			}
		}
	}
	if !stopSeen {
		t.Error("window eviction never produced a stop alert")
	}
}

func TestMonitorOutOfOrder(t *testing.T) {
	m, err := NewMonitor(monitorOptions(), 10, [][]string{{"a"}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(5, "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Observe(4, "a"); err == nil {
		t.Error("out-of-order observation must fail")
	}
	// Same timestamp is allowed (extends the instant) and does not double
	// count.
	if _, err := m.Observe(5, "a"); err != nil {
		t.Errorf("same-ts observation rejected: %v", err)
	}
	if len(m.watch[0].ts) != 1 {
		t.Errorf("duplicate ts recorded: %v", m.watch[0].ts)
	}
}

func TestMonitorMatchesBatchMining(t *testing.T) {
	// Feeding a whole database through a window larger than its span must
	// end with exactly the batch-recurring watched patterns flagged.
	db := mustDB(t, "1\ta b g\n2\ta c d\n3\ta b e f\n4\ta b c d\n5\tc d e f g\n"+
		"6\te f g\n7\ta b c g\n9\tc d\n10\tc d e f\n11\ta b e f\n12\ta b c d e f g\n14\ta b g\n")
	o := core.Options{Per: 2, MinPS: 3, MinRec: 2}
	watch := [][]string{{"a", "b"}, {"c", "d"}, {"e", "f"}, {"a", "g"}, {"c"}}
	m, err := NewMonitor(o, 1000, watch)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range db.Trans {
		names := db.PatternNames(tr.Items)
		if _, err := m.Observe(tr.TS, names...); err != nil {
			t.Fatal(err)
		}
	}
	rec := m.Recurring()
	// Table 2: ab, cd, ef recur; ag and c do not.
	if len(rec) != 3 {
		t.Fatalf("Recurring() = %v, want the three Table 2 pairs", rec)
	}
}
