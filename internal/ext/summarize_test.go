package ext

import (
	"math/rand/v2"
	"testing"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

func TestMaximalAndClosedPaperExample(t *testing.T) {
	// The running example's Table 2: {a,b} suppresses a (sup 8 != 7, so 'a'
	// stays closed but not maximal) and b (sup 7 == 7: not even closed).
	db := mustDB(t, "1\ta b g\n2\ta c d\n3\ta b e f\n4\ta b c d\n5\tc d e f g\n"+
		"6\te f g\n7\ta b c g\n9\tc d\n10\tc d e f\n11\ta b e f\n12\ta b c d e f g\n14\ta b g\n")
	res, err := core.Mine(db, core.Options{Per: 2, MinPS: 3, MinRec: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Patterns) != 8 {
		t.Fatalf("expected Table 2's 8 patterns, got %d", len(res.Patterns))
	}

	max := Maximal(res)
	// Maximal: {a,b}, {c,d}, {e,f} — every 1-pattern is inside one of them.
	if len(max) != 3 {
		t.Fatalf("maximal = %d patterns, want 3: %v", len(max), names(db, max))
	}
	for _, p := range max {
		if len(p.Items) != 2 {
			t.Errorf("maximal pattern %v has length %d", db.PatternNames(p.Items), len(p.Items))
		}
	}

	closed := Closed(res)
	// Closed: the three pairs plus 'a' (sup 8 > sup(ab) = 7). b, d, e, f all
	// have the same support as their containing pair.
	if len(closed) != 4 {
		t.Fatalf("closed = %d patterns, want 4: %v", len(closed), names(db, closed))
	}
	foundA := false
	for _, p := range closed {
		if len(p.Items) == 1 && db.Dict.Name(p.Items[0]) == "a" {
			foundA = true
		}
	}
	if !foundA {
		t.Error("'a' (sup 8) must stay closed")
	}
}

func names(db *tsdb.DB, ps []core.Pattern) [][]string {
	out := make([][]string, len(ps))
	for i, p := range ps {
		out[i] = db.PatternNames(p.Items)
	}
	return out
}

func TestSummarizeProperties(t *testing.T) {
	rng := rand.New(rand.NewPCG(21, 21))
	for run := 0; run < 20; run++ {
		db := randomDB(rng, rng.IntN(6)+2, rng.IntN(60)+20, 0.3+rng.Float64()*0.2)
		if db.Len() == 0 {
			continue
		}
		res, err := core.Mine(db, core.Options{
			Per: rng.Int64N(4) + 1, MinPS: rng.IntN(3) + 1, MinRec: rng.IntN(2) + 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		max := Maximal(res)
		closed := Closed(res)
		// Maximal subset-of closed subset-of all.
		if len(max) > len(closed) || len(closed) > len(res.Patterns) {
			t.Fatalf("size ordering violated: %d maximal, %d closed, %d all",
				len(max), len(closed), len(res.Patterns))
		}
		inResult := map[string]bool{}
		for _, p := range res.Patterns {
			inResult[keyOf(p.Items)] = true
		}
		// No maximal pattern may have a proper superset in the result.
		for _, m := range max {
			for _, p := range res.Patterns {
				if len(p.Items) > len(m.Items) && isSubset(m.Items, p.Items) {
					t.Fatalf("maximal %v has superset %v", m.Items, p.Items)
				}
			}
			if !inResult[keyOf(m.Items)] {
				t.Fatalf("maximal %v not in the original result", m.Items)
			}
		}
		// Every pattern must be recoverable from the closed set: it has a
		// closed superset with the same support.
		for _, p := range res.Patterns {
			ok := false
			for _, c := range closed {
				if len(c.Items) >= len(p.Items) && isSubset(p.Items, c.Items) && c.Support == p.Support {
					ok = true
					break
				}
			}
			if !ok {
				t.Fatalf("pattern %v has no same-support closed superset", p.Items)
			}
		}
	}
}

func TestIsSubset(t *testing.T) {
	cases := []struct {
		a, b []tsdb.ItemID
		want bool
	}{
		{nil, nil, true},
		{[]tsdb.ItemID{1}, []tsdb.ItemID{1}, true},
		{[]tsdb.ItemID{1}, []tsdb.ItemID{0, 1, 2}, true},
		{[]tsdb.ItemID{0, 2}, []tsdb.ItemID{0, 1, 2}, true},
		{[]tsdb.ItemID{0, 3}, []tsdb.ItemID{0, 1, 2}, false},
		{[]tsdb.ItemID{1, 2}, []tsdb.ItemID{2}, false},
	}
	for _, c := range cases {
		if got := isSubset(c.a, c.b); got != c.want {
			t.Errorf("isSubset(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}
