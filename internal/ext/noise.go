// Package ext implements extensions to the recurring pattern model that the
// paper's Section 6 leaves as future work — noise-tolerant recurrence and
// phase-shift tolerance — plus two utilities built on the model: top-k
// recurring pattern mining and recurring association rules for
// recommendation.
package ext

import (
	"cmp"
	"fmt"
	"slices"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

// NoiseOptions extends the recurring pattern thresholds with a bounded
// noise budget: within one periodic interval, up to MaxViolations
// inter-arrival times may exceed Per, provided each stays within
// NoiseFactor*Per. This models measurement dropouts — an otherwise periodic
// pattern missing a handful of beats keeps its interval instead of having
// it split.
type NoiseOptions struct {
	core.Options
	// MaxViolations is the number of over-period gaps tolerated per
	// interval. Zero reproduces the strict model exactly.
	MaxViolations int
	// NoiseFactor bounds how large a tolerated gap may be, as a multiple of
	// Per. Values below 1 are treated as 1 (no tolerance).
	NoiseFactor float64
}

// Validate reports the first violated constraint.
func (o NoiseOptions) Validate() error {
	if err := o.Options.Validate(); err != nil {
		return err
	}
	if o.MaxViolations < 0 {
		return fmt.Errorf("ext: MaxViolations must be non-negative, got %d", o.MaxViolations)
	}
	return nil
}

// relaxedPer returns the largest gap a noisy interval may contain.
func (o NoiseOptions) relaxedPer() int64 {
	if o.NoiseFactor <= 1 || o.MaxViolations == 0 {
		return o.Per
	}
	return int64(o.NoiseFactor * float64(o.Per))
}

// NoisyRecurrence computes the noise-tolerant recurrence of a sorted
// timestamp list: periodic intervals may absorb up to MaxViolations gaps in
// (Per, NoiseFactor*Per]; a gap beyond the relaxed bound, or one more
// violation than the budget allows, closes the interval (and resets the
// budget).
func NoisyRecurrence(ts []int64, o NoiseOptions) (rec int, ipi []core.Interval) {
	if len(ts) == 0 {
		return 0, nil
	}
	relaxed := o.relaxedPer()
	start := ts[0]
	ps := 1
	viol := 0
	flush := func(end int64) {
		if ps >= o.MinPS {
			ipi = append(ipi, core.Interval{Start: start, End: end, PS: ps})
			rec++
		}
	}
	for i := 1; i < len(ts); i++ {
		gap := ts[i] - ts[i-1]
		switch {
		case gap <= o.Per:
			ps++
		case gap <= relaxed && viol < o.MaxViolations:
			viol++
			ps++
		default:
			flush(ts[i-1])
			start = ts[i]
			ps = 1
			viol = 0
		}
	}
	flush(ts[len(ts)-1])
	return rec, ipi
}

// MineNoisy discovers all patterns whose noise-tolerant recurrence reaches
// MinRec. Pruning uses the Erec bound evaluated at the relaxed period: every
// noisy interesting interval lies inside a relaxed-period run, and a run
// containing m disjoint noisy intervals has periodic support at least
// m*MinPS, so Erec at the relaxed period upper-bounds the noisy recurrence
// of the pattern and (by anti-monotonicity) of all its supersets.
func MineNoisy(db *tsdb.DB, o NoiseOptions) (*core.Result, error) {
	if err := o.Validate(); err != nil {
		return nil, err
	}
	relaxed := o.relaxedPer()
	res := &core.Result{}
	all := db.ItemTSLists()
	type entry struct {
		item tsdb.ItemID
		ts   []int64
	}
	var items []entry
	for id, ts := range all {
		if core.Erec(ts, relaxed, o.MinPS) >= o.MinRec {
			items = append(items, entry{item: tsdb.ItemID(id), ts: ts})
		}
	}
	slices.SortFunc(items, func(a, b entry) int {
		if len(a.ts) != len(b.ts) {
			return len(b.ts) - len(a.ts)
		}
		return cmp.Compare(a.item, b.item)
	})

	var dfs func(prefix []tsdb.ItemID, ts []int64, idx int)
	dfs = func(prefix []tsdb.ItemID, ts []int64, idx int) {
		rec, ipi := NoisyRecurrence(ts, o)
		if rec >= o.MinRec {
			sorted := make([]tsdb.ItemID, len(prefix))
			copy(sorted, prefix)
			slices.Sort(sorted)
			res.Patterns = append(res.Patterns, core.Pattern{
				Items: sorted, Support: len(ts), Recurrence: rec, Intervals: ipi,
			})
		}
		if o.MaxLen > 0 && len(prefix) >= o.MaxLen {
			return
		}
		n := len(prefix)
		for j := idx + 1; j < len(items); j++ {
			ext := core.IntersectTS(nil, ts, items[j].ts)
			if len(ext) == 0 || core.Erec(ext, relaxed, o.MinPS) < o.MinRec {
				continue
			}
			dfs(append(prefix[:n:n], items[j].item), ext, j)
		}
	}
	for i := range items {
		dfs([]tsdb.ItemID{items[i].item}, items[i].ts, i)
	}
	res.Canonicalize()
	return res, nil
}
