package ext

import (
	"cmp"
	"container/heap"
	"fmt"
	"slices"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

// TopK mines the k patterns with the highest recurrence under the given
// period and minimum periodic support, without requiring the user to guess
// minRec (the usual threshold-free variant of a pattern mining problem).
// Ties are broken by support (higher first), then canonical item order.
//
// The search is a vertical DFS whose pruning threshold rises as the result
// heap fills: once k patterns are held, any extension whose Erec bound
// cannot beat the current k-th recurrence is discarded — the same bound that
// makes minRec pruning sound makes the dynamic threshold sound.
func TopK(db *tsdb.DB, per int64, minPS, k int) ([]core.Pattern, error) {
	if per <= 0 {
		return nil, fmt.Errorf("ext: per must be positive, got %d", per)
	}
	if minPS <= 0 {
		return nil, fmt.Errorf("ext: minPS must be positive, got %d", minPS)
	}
	if k <= 0 {
		return nil, fmt.Errorf("ext: k must be positive, got %d", k)
	}

	all := db.ItemTSLists()
	type entry struct {
		item tsdb.ItemID
		ts   []int64
	}
	var items []entry
	for id, ts := range all {
		if core.Erec(ts, per, minPS) >= 1 {
			items = append(items, entry{item: tsdb.ItemID(id), ts: ts})
		}
	}
	slices.SortFunc(items, func(a, b entry) int {
		if len(a.ts) != len(b.ts) {
			return len(b.ts) - len(a.ts)
		}
		return cmp.Compare(a.item, b.item)
	})

	h := &patternHeap{}
	threshold := func() int {
		if h.Len() < k {
			return 1
		}
		return (*h)[0].Recurrence
	}

	var dfs func(prefix []tsdb.ItemID, ts []int64, idx int)
	dfs = func(prefix []tsdb.ItemID, ts []int64, idx int) {
		rec, ipi := core.Recurrence(ts, per, minPS)
		if rec >= threshold() {
			sorted := make([]tsdb.ItemID, len(prefix))
			copy(sorted, prefix)
			slices.Sort(sorted)
			p := core.Pattern{Items: sorted, Support: len(ts), Recurrence: rec, Intervals: ipi}
			if h.Len() < k {
				heap.Push(h, p)
			} else if better(p, (*h)[0]) {
				(*h)[0] = p
				heap.Fix(h, 0)
			}
		}
		n := len(prefix)
		for j := idx + 1; j < len(items); j++ {
			ext := core.IntersectTS(nil, ts, items[j].ts)
			if len(ext) == 0 || core.Erec(ext, per, minPS) < threshold() {
				continue
			}
			dfs(append(prefix[:n:n], items[j].item), ext, j)
		}
	}
	for i := range items {
		if core.Erec(items[i].ts, per, minPS) < threshold() {
			continue
		}
		dfs([]tsdb.ItemID{items[i].item}, items[i].ts, i)
	}

	out := make([]core.Pattern, h.Len())
	for i := len(out) - 1; i >= 0; i-- {
		out[i] = heap.Pop(h).(core.Pattern)
	}
	return out, nil
}

// better reports whether a outranks b in the top-k order.
func better(a, b core.Pattern) bool {
	if a.Recurrence != b.Recurrence {
		return a.Recurrence > b.Recurrence
	}
	if a.Support != b.Support {
		return a.Support > b.Support
	}
	return lessItems(a.Items, b.Items)
}

func lessItems(a, b []tsdb.ItemID) bool {
	for i := 0; i < len(a) && i < len(b); i++ {
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return len(a) < len(b)
}

// patternHeap is a min-heap under the top-k order, so the weakest held
// pattern sits at the root.
type patternHeap []core.Pattern

func (h patternHeap) Len() int            { return len(h) }
func (h patternHeap) Less(i, j int) bool  { return better(h[j], h[i]) }
func (h patternHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *patternHeap) Push(x interface{}) { *h = append(*h, x.(core.Pattern)) }
func (h *patternHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
