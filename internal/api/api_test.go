package api

import (
	"bytes"
	"encoding/json"
	"errors"
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

func TestDecodeMineRequestVersions(t *testing.T) {
	cases := []struct {
		name string
		body string
		ok   bool
		vErr bool
	}{
		{"absent v is v1", `{"db":"shop","per":10}`, true, false},
		{"explicit v1", `{"v":1,"db":"shop","per":10}`, true, false},
		{"future version", `{"v":2,"db":"shop","per":10}`, false, true},
		{"far future version", `{"v":99,"per":10}`, false, true},
		{"negative version", `{"v":-1,"per":10}`, false, false},
		{"unknown field", `{"per":10,"bogus":true}`, false, false},
		{"trailing data", `{"per":10}{"per":11}`, false, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			req, err := DecodeMineRequest(strings.NewReader(c.body))
			if c.ok {
				if err != nil {
					t.Fatalf("decode: %v", err)
				}
				if req.Per != 10 {
					t.Errorf("Per = %d, want 10", req.Per)
				}
				return
			}
			if err == nil {
				t.Fatal("want decode error")
			}
			var ve *VersionError
			if got := errors.As(err, &ve); got != c.vErr {
				t.Errorf("VersionError = %v (err %v), want %v", got, err, c.vErr)
			}
		})
	}
}

func TestDecodeShardMineRequest(t *testing.T) {
	req, err := DecodeShardMineRequest(strings.NewReader(
		`{"v":1,"fingerprint":"00000000deadbeef","per":360,"minPS":4,"shard":1,"shards":3,"itemOrder":"lex","disableErecPruning":true}`))
	if err != nil {
		t.Fatal(err)
	}
	if req.Shard != 1 || req.Shards != 3 || req.Fingerprint != "00000000deadbeef" {
		t.Errorf("task fields = %d/%d %q", req.Shard, req.Shards, req.Fingerprint)
	}
	if req.ItemOrder != ItemOrderLex || !req.DisableErecPruning {
		t.Errorf("ablation knobs lost in decode: %+v", req)
	}
	if _, err := DecodeShardMineRequest(strings.NewReader(`{"v":3,"per":1,"shard":0,"shards":1}`)); err == nil {
		t.Error("want version error for v3 shard request")
	}
}

// TestShardTraceContextRoundTrip covers the v1 trace-context additions:
// the optional request ID / trace flag on the request and the phase report,
// handling time and timeline on the response survive a strict-decode round
// trip, and their absence decodes to the zero values (the pre-tracing
// behaviour, which is what makes them same-version additions).
func TestShardTraceContextRoundTrip(t *testing.T) {
	req := ShardMineRequest{
		MineRequest: MineRequest{V: Version, Per: 360, MinPS: 4},
		Shard:       1, Shards: 3,
		Fingerprint: "00000000deadbeef",
		RequestID:   "0a1b2c3d-7",
		Trace:       true,
	}
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(req); err != nil {
		t.Fatal(err)
	}
	got, err := DecodeShardMineRequest(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.RequestID != "0a1b2c3d-7" || !got.Trace {
		t.Errorf("trace context lost in decode: id=%q trace=%v", got.RequestID, got.Trace)
	}
	// A pre-tracing coordinator's request still decodes, untraced.
	old, err := DecodeShardMineRequest(strings.NewReader(
		`{"v":1,"fingerprint":"00000000deadbeef","per":360,"minPS":4,"shard":0,"shards":2}`))
	if err != nil {
		t.Fatal(err)
	}
	if old.RequestID != "" || old.Trace {
		t.Errorf("absent trace context decoded non-zero: id=%q trace=%v", old.RequestID, old.Trace)
	}

	resp := ShardMineResponse{
		V:           Version,
		Fingerprint: "00000000deadbeef",
		Shard:       1, Shards: 3,
		Phases:    []obs.PhaseStat{{Phase: "mine", Nanos: 1200, Count: 2, Unit: "tasks"}},
		ElapsedNS: 4500,
		Timeline: &obs.TimelineSnapshot{
			Cap:   8,
			Spans: []obs.SpanRecord{{Phase: "mine", StartNS: 10, DurNS: 900}},
		},
	}
	buf.Reset()
	if err := json.NewEncoder(&buf).Encode(resp); err != nil {
		t.Fatal(err)
	}
	rt, err := DecodeShardMineResponse(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if rt.ElapsedNS != 4500 || len(rt.Phases) != 1 || rt.Phases[0].Phase != "mine" {
		t.Errorf("phase report lost in decode: %+v", rt)
	}
	if rt.Timeline == nil || len(rt.Timeline.Spans) != 1 || rt.Timeline.Spans[0].DurNS != 900 {
		t.Errorf("timeline lost in decode: %+v", rt.Timeline)
	}
	// A pre-tracing peer's response still decodes, with no timeline.
	bare, err := DecodeShardMineResponse(strings.NewReader(
		`{"v":1,"fingerprint":"00000000000000aa","shard":0,"shards":2,"count":0,"miningMS":1.5,"patterns":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if bare.Timeline != nil || bare.ElapsedNS != 0 || bare.Phases != nil {
		t.Errorf("absent trace fields decoded non-zero: %+v", bare)
	}
}

func TestDecodeShardMineResponseVersion(t *testing.T) {
	if _, err := DecodeShardMineResponse(strings.NewReader(`{"v":2,"fingerprint":"0","shard":0,"shards":1}`)); err == nil {
		t.Error("want version error for v2 shard response")
	}
	resp, err := DecodeShardMineResponse(strings.NewReader(`{"v":1,"fingerprint":"00000000000000aa","shard":0,"shards":2,"count":0,"miningMS":1.5,"patterns":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if resp.Shards != 2 {
		t.Errorf("Shards = %d, want 2", resp.Shards)
	}
}

func TestToCoreOptions(t *testing.T) {
	req := MineRequest{Per: 360, MinPSPercent: 10, MaxLen: 3, ItemOrder: "lex", DisableErecPruning: true}
	o, err := req.ToCoreOptions(200)
	if err != nil {
		t.Fatal(err)
	}
	if o.MinPS != 20 {
		t.Errorf("MinPS = %d, want 20 (10%% of 200)", o.MinPS)
	}
	if o.MinRec != 1 {
		t.Errorf("MinRec = %d, want defaulted 1", o.MinRec)
	}
	if o.ItemOrder != core.Lexicographic || !o.DisableErecPruning {
		t.Errorf("ablation knobs lost in conversion: %+v", o)
	}

	// Absolute minPS wins over the percentage.
	req = MineRequest{Per: 360, MinPS: 7, MinPSPercent: 50}
	if o, err = req.ToCoreOptions(200); err != nil || o.MinPS != 7 {
		t.Errorf("MinPS = %d (err %v), want absolute 7", o.MinPS, err)
	}

	// Validation lives here: core's error text, verbatim.
	if _, err = (&MineRequest{Per: 0, MinPS: 1}).ToCoreOptions(10); err == nil || !strings.Contains(err.Error(), "Per must be positive") {
		t.Errorf("want core validation error, got %v", err)
	}
	if _, err = (&MineRequest{Per: 1, MinPS: 1, ItemOrder: "zigzag"}).ToCoreOptions(10); err == nil || !strings.Contains(err.Error(), "itemOrder") {
		t.Errorf("want itemOrder error, got %v", err)
	}
}

func TestFromCoreOptionsRoundTrip(t *testing.T) {
	for _, o := range []core.Options{
		{Per: 360, MinPS: 20, MinRec: 2},
		{Per: 5, MinPS: 1, MinRec: 1, MaxLen: 4, Parallelism: 8, CollectStats: true},
		{Per: 9, MinPS: 2, MinRec: 1, ItemOrder: core.Lexicographic, DisableErecPruning: true},
	} {
		req := FromCoreOptions(o)
		if req.V != Version {
			t.Errorf("FromCoreOptions did not stamp v%d: %+v", Version, req)
		}
		back, err := req.ToCoreOptions(1000)
		if err != nil {
			t.Fatalf("round-trip of %+v: %v", o, err)
		}
		if back != o {
			t.Errorf("options round-trip diverged:\n sent %+v\n got  %+v", o, back)
		}
	}
}

func TestItemOrderWireForms(t *testing.T) {
	if s := ItemOrderString(core.SupportDescending); s != "" {
		t.Errorf("default order renders %q, want empty", s)
	}
	if s := ItemOrderString(core.Lexicographic); s != ItemOrderLex {
		t.Errorf("lex order renders %q", s)
	}
	if o, err := ParseItemOrder(ItemOrderSupport); err != nil || o != core.SupportDescending {
		t.Errorf("ParseItemOrder(support) = %v, %v", o, err)
	}
}

func TestPatternConvertersRoundTrip(t *testing.T) {
	b := tsdb.NewBuilder()
	for ts := int64(1); ts <= 6; ts++ {
		b.Add("bread", ts)
		b.Add("jam", ts)
	}
	db := b.Build()
	in := []core.Pattern{
		{
			Items:      mustIDs(t, db, "bread", "jam"),
			Support:    6,
			Recurrence: 1,
			Intervals:  []core.Interval{{Start: 1, End: 6, PS: 6}},
		},
	}
	wire := PatternsFromCore(db, in)
	if len(wire) != 1 || wire[0].Items[0] != "bread" || wire[0].Intervals[0].PS != 6 {
		t.Fatalf("wire form wrong: %+v", wire)
	}
	back, err := PatternsToCore(db, wire)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || len(back[0].Items) != 2 || back[0].Items[0] != in[0].Items[0] {
		t.Fatalf("round-trip diverged: %+v vs %+v", back, in)
	}

	// An item the local dictionary has never seen means the databases
	// differ; the converter must refuse, not invent an ID.
	if _, err := PatternsToCore(db, []Pattern{{Items: []string{"anchovies"}}}); err == nil {
		t.Error("want error for unknown item name")
	}
}

func mustIDs(t *testing.T, db *tsdb.DB, names ...string) []tsdb.ItemID {
	t.Helper()
	ids := make([]tsdb.ItemID, len(names))
	for i, n := range names {
		id, ok := db.Dict.Lookup(n)
		if !ok {
			t.Fatalf("item %q not in dictionary", n)
		}
		ids[i] = id
	}
	return ids
}
