// Package api is the versioned wire schema of the rpserved HTTP surface:
// the request and response bodies of POST /v1/mine and POST /v1/shard/mine,
// shared by the rpserved handlers, the shard HTTP client, and the CLI
// clients (rpmonitor -remote). It holds the one copy of request→Options
// validation so a remote shard peer can never mine under different
// semantics than its coordinator.
//
// Versioning rules:
//
//   - Every request and response carries an explicit schema version in its
//     "v" field. Version is the version this package speaks.
//   - A missing or zero "v" means v1: the field was introduced with v1, so
//     pre-versioning clients are v1 clients by definition.
//   - Decoders reject a version above Version at decode time with a
//     *VersionError, before any field is interpreted — a v2 client talking
//     to a v1 server gets a clean "speak v1" error, not a silently
//     misinterpreted mine.
//   - Within a version, unknown fields are a decode error
//     (DisallowUnknownFields): a field the server would silently drop is a
//     semantic difference between coordinator and shard, which is exactly
//     what the versioning exists to prevent.
//   - Adding a field with a zero-value-compatible meaning is a
//     same-version change; changing the meaning or default of an existing
//     field requires a version bump.
package api

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/obs"
	"github.com/recurpat/rp/internal/tsdb"
)

// Version is the wire schema version this package reads and writes.
const Version = 1

// VersionError reports a request or response whose schema version is newer
// than this build speaks.
type VersionError struct {
	Got int
}

func (e *VersionError) Error() string {
	return fmt.Sprintf("api: unsupported schema version %d (this build speaks v%d)", e.Got, Version)
}

// checkVersion validates a decoded "v" field: zero (absent) and Version
// pass, anything newer is a *VersionError, anything negative is malformed.
func checkVersion(v int) error {
	if v == 0 || v == Version {
		return nil
	}
	if v > Version {
		return &VersionError{Got: v}
	}
	return fmt.Errorf("api: malformed schema version %d", v)
}

// Item-order wire values. The empty string means the default
// (support-descending, the paper's order).
const (
	ItemOrderSupport = "support"
	ItemOrderLex     = "lex"
)

// ParseItemOrder maps the wire form of an item order to the core enum.
func ParseItemOrder(s string) (core.ItemOrder, error) {
	switch s {
	case "", ItemOrderSupport:
		return core.SupportDescending, nil
	case ItemOrderLex:
		return core.Lexicographic, nil
	default:
		return 0, fmt.Errorf("api: unknown itemOrder %q (want %q or %q)", s, ItemOrderSupport, ItemOrderLex)
	}
}

// ItemOrderString maps the core enum to its canonical wire form: the empty
// string for the default order, so requests round-trip without noise.
func ItemOrderString(o core.ItemOrder) string {
	if o == core.Lexicographic {
		return ItemOrderLex
	}
	return ""
}

// MineRequest is the JSON body of POST /v1/mine. Exactly one of minPS and
// minPSPercent should be set; minPSPercent is resolved against the target
// database's size (ToCoreOptions). Exactly one of db and dataset addresses
// the data; the server enforces the exclusivity.
type MineRequest struct {
	V            int     `json:"v,omitempty"`            // schema version; 0 = 1
	DB           string  `json:"db,omitempty"`           // database name; optional when only one is served
	Dataset      string  `json:"dataset,omitempty"`      // registered dataset fingerprint (16 hex digits); alternative to db
	Per          int64   `json:"per"`                    // period threshold
	MinPS        int     `json:"minPS,omitempty"`        // absolute minimum periodic support
	MinPSPercent float64 `json:"minPSPercent,omitempty"` // minPS as a % of |TDB| (used when minPS is 0)
	MinRec       int     `json:"minRec,omitempty"`       // minimum recurrence; defaults to 1
	MaxLen       int     `json:"maxLen,omitempty"`       // pattern length cap; 0 = unlimited
	Parallelism  int     `json:"parallelism,omitempty"`  // mining parallelism; servers clamp to their cap
	CollectStats bool    `json:"collectStats,omitempty"` // include search statistics in the response
	// ItemOrder selects the RP-tree item ordering: "" or "support" for the
	// paper's support-descending order, "lex" for lexicographic. Output is
	// identical either way, but the ablation knob must travel the wire so
	// a shard peer mines under its coordinator's exact options.
	ItemOrder string `json:"itemOrder,omitempty"`
	// DisableErecPruning turns off the Erec candidate bound (the pruning
	// ablation). Output is unchanged; search statistics are not.
	DisableErecPruning bool `json:"disableErecPruning,omitempty"`
}

// Interval is the wire form of a periodic interval.
type Interval struct {
	Start int64 `json:"start"`
	End   int64 `json:"end"`
	PS    int   `json:"ps"`
}

// Pattern is the wire form of one recurring pattern.
type Pattern struct {
	Items      []string   `json:"items"`
	Support    int        `json:"support"`
	Recurrence int        `json:"recurrence"`
	Intervals  []Interval `json:"intervals"`
}

// MineResponse is the JSON body of a successful POST /v1/mine.
type MineResponse struct {
	V         int     `json:"v"`
	DB        string  `json:"db"`
	Count     int     `json:"count"`
	Cached    bool    `json:"cached"`
	ElapsedMS float64 `json:"elapsedMS"` // this request's wall time, queueing included
	MiningMS  float64 `json:"miningMS"`  // the producing mine's wall time (historic on cache hits)
	// Partial marks a best-effort scatter-gather result that is missing
	// the shards listed in FailedShards; single-box mines never set it.
	Partial      bool            `json:"partial,omitempty"`
	FailedShards []int           `json:"failedShards,omitempty"`
	Patterns     []Pattern       `json:"patterns"`
	Stats        *core.MineStats `json:"stats,omitempty"`
}

// ShardMineRequest is the JSON body of POST /v1/shard/mine: one shard task
// of a scatter-gather mine. The embedded mine request carries the options;
// db/dataset addressing works as in /v1/mine, and a coordinator normally
// addresses by Fingerprint alone so peers resolve their own copy whatever
// they named it.
type ShardMineRequest struct {
	MineRequest
	// Shard and Shards are the task's ShardSpec: mine the suffix items
	// whose RP-list rank r has r mod shards == shard.
	Shard  int `json:"shard"`
	Shards int `json:"shards"`
	// Fingerprint, when set, is the expected content fingerprint (16 hex
	// digits) of the database to mine. A peer that resolves a database
	// with any other fingerprint must refuse the task: shards of one mine
	// must agree on the bytes, not just on a name.
	Fingerprint string `json:"fingerprint,omitempty"`
	// RequestID is the coordinator's request ID, also sent as the
	// X-Request-Id header. Peers journal the task under it, so the
	// coordinator's and the peer's /debug/requests entries are joinable.
	// Optional with a zero-value-compatible meaning (the peer mints its
	// own), so it is a same-version (v1) addition.
	RequestID string `json:"requestID,omitempty"`
	// Trace asks the peer to record its run's span timeline and return it
	// in ShardMineResponse.Timeline, so the coordinator can graft the
	// peer's lane into one fleet-wide flight record. Optional: absent
	// means untraced, exactly the pre-tracing behaviour.
	Trace bool `json:"trace,omitempty"`
}

// ShardMineResponse is the JSON body of a successful POST /v1/shard/mine.
type ShardMineResponse struct {
	V           int             `json:"v"`
	Fingerprint string          `json:"fingerprint"` // of the database actually mined
	Shard       int             `json:"shard"`
	Shards      int             `json:"shards"`
	Count       int             `json:"count"`
	MiningMS    float64         `json:"miningMS"`
	Patterns    []Pattern       `json:"patterns"`
	Stats       *core.MineStats `json:"stats,omitempty"`
	// Phases is the peer's per-phase attribution of this task (only phases
	// that observed time or work), whether or not a timeline was requested
	// — it feeds the coordinator's per-peer per-phase metrics.
	Phases []obs.PhaseStat `json:"phases,omitempty"`
	// ElapsedNS is how long the peer spent handling the task, queueing
	// included — the clock reference the coordinator aligns Timeline
	// against (see obs.PeerTimeline.AlignOffset).
	ElapsedNS int64 `json:"elapsedNS,omitempty"`
	// Timeline is the peer's recorded span timeline, present only when the
	// request set Trace and the peer retains timelines.
	Timeline *obs.TimelineSnapshot `json:"timeline,omitempty"`
}

// ErrorResponse is the JSON body of every failed request.
type ErrorResponse struct {
	Error string `json:"error"`
}

// DecodeMineRequest decodes one MineRequest from r, rejecting unknown
// fields and unsupported schema versions. Transport-level errors
// (http.MaxBytesError) pass through unwrapped for the caller's errors.As.
func DecodeMineRequest(r io.Reader) (*MineRequest, error) {
	var req MineRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := checkVersion(req.V); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeShardMineRequest is DecodeMineRequest for shard tasks.
func DecodeShardMineRequest(r io.Reader) (*ShardMineRequest, error) {
	var req ShardMineRequest
	if err := decodeStrict(r, &req); err != nil {
		return nil, err
	}
	if err := checkVersion(req.V); err != nil {
		return nil, err
	}
	return &req, nil
}

// DecodeShardMineResponse decodes a peer's shard result, with the same
// version check as the request decoders.
func DecodeShardMineResponse(r io.Reader) (*ShardMineResponse, error) {
	var resp ShardMineResponse
	if err := decodeStrict(r, &resp); err != nil {
		return nil, err
	}
	if err := checkVersion(resp.V); err != nil {
		return nil, err
	}
	return &resp, nil
}

// decodeStrict decodes exactly one JSON value with unknown fields
// disallowed, and rejects trailing data.
func decodeStrict(r io.Reader, v any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return err
	}
	if dec.More() {
		return errors.New("api: trailing data after request body")
	}
	return nil
}

// ToCoreOptions resolves the request's thresholds into validated
// core.Options against a database of dbLen transactions: the percentage
// form of minPS resolves here, minRec defaults to 1, the item order
// parses, and core's Options.Validate runs — so every entry point
// (rpserved, the shard endpoint, future clients) applies identical
// validation and reports identical error text. Parallelism is carried
// through unclamped; server-side caps are the server's policy, not the
// schema's.
func (req *MineRequest) ToCoreOptions(dbLen int) (core.Options, error) {
	o := core.Options{
		Per:                req.Per,
		MinPS:              req.MinPS,
		MinRec:             req.MinRec,
		MaxLen:             req.MaxLen,
		Parallelism:        req.Parallelism,
		CollectStats:       req.CollectStats,
		DisableErecPruning: req.DisableErecPruning,
	}
	order, err := ParseItemOrder(req.ItemOrder)
	if err != nil {
		return core.Options{}, err
	}
	o.ItemOrder = order
	if o.MinPS == 0 && req.MinPSPercent > 0 {
		o.MinPS = core.MinPSForLen(dbLen, req.MinPSPercent)
	}
	if o.MinRec == 0 {
		o.MinRec = 1
	}
	if err := o.Validate(); err != nil {
		return core.Options{}, err
	}
	return o, nil
}

// FromCoreOptions renders resolved options back into a request, the form a
// coordinator ships to its shard peers. Absolute thresholds only: the
// percentage form was resolved against a database size the peer must not
// re-resolve. The Trace field does not travel.
func FromCoreOptions(o core.Options) MineRequest {
	return MineRequest{
		V:                  Version,
		Per:                o.Per,
		MinPS:              o.MinPS,
		MinRec:             o.MinRec,
		MaxLen:             o.MaxLen,
		Parallelism:        o.Parallelism,
		CollectStats:       o.CollectStats,
		ItemOrder:          ItemOrderString(o.ItemOrder),
		DisableErecPruning: o.DisableErecPruning,
	}
}

// PatternsFromCore renders ItemID-level patterns into their wire form,
// resolving item names against db's dictionary.
func PatternsFromCore(db *tsdb.DB, patterns []core.Pattern) []Pattern {
	out := make([]Pattern, len(patterns))
	for i, p := range patterns {
		ivs := make([]Interval, len(p.Intervals))
		for j, iv := range p.Intervals {
			ivs[j] = Interval{Start: iv.Start, End: iv.End, PS: iv.PS}
		}
		out[i] = Pattern{
			Items:      db.PatternNames(p.Items),
			Support:    p.Support,
			Recurrence: p.Recurrence,
			Intervals:  ivs,
		}
	}
	return out
}

// PatternsToCore maps wire patterns back to ItemID-level patterns against
// db's dictionary — the gather half of a remote shard exchange, where the
// coordinator and the peer hold the same database (same fingerprint) and
// therefore the same dictionary. Unknown item names are an error: they
// mean the fingerprints lied.
func PatternsToCore(db *tsdb.DB, patterns []Pattern) ([]core.Pattern, error) {
	out := make([]core.Pattern, len(patterns))
	for i, p := range patterns {
		items := make([]tsdb.ItemID, len(p.Items))
		for j, name := range p.Items {
			id, ok := db.Dict.Lookup(name)
			if !ok {
				return nil, fmt.Errorf("api: pattern item %q not in the local dictionary", name)
			}
			items[j] = id
		}
		ivs := make([]core.Interval, len(p.Intervals))
		for j, iv := range p.Intervals {
			ivs[j] = core.Interval{Start: iv.Start, End: iv.End, PS: iv.PS}
		}
		out[i] = core.Pattern{
			Items:      items,
			Support:    p.Support,
			Recurrence: p.Recurrence,
			Intervals:  ivs,
		}
	}
	return out, nil
}
