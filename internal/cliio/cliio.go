// Package cliio holds the small I/O helpers shared by the command-line
// tools. Its Writer latches the first write error so the CLIs can print
// with plain fmt.Fprintf and still fail loudly (broken pipe, full disk)
// by checking Err once before exiting — the contract the errcheck pass of
// internal/analysis recognizes via the Err() error method.
package cliio

import "io"

// Writer wraps an io.Writer and remembers the first write error. After an
// error every subsequent write is dropped, so a burst of prints after a
// broken pipe does no further work and the original cause is preserved.
type Writer struct {
	dst io.Writer
	err error
}

// NewWriter wraps dst. A nil-safe no-op: wrapping an existing *Writer
// returns it unchanged so layered helpers share one latch.
func NewWriter(dst io.Writer) *Writer {
	if w, ok := dst.(*Writer); ok {
		return w
	}
	return &Writer{dst: dst}
}

// Write implements io.Writer, latching the first error.
func (w *Writer) Write(p []byte) (int, error) {
	if w.err != nil {
		return 0, w.err
	}
	n, err := w.dst.Write(p)
	if err != nil {
		w.err = err
	}
	return n, err
}

// Err returns the first error any write hit, or nil.
func (w *Writer) Err() error { return w.err }
