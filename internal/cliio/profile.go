package cliio

import (
	"os"
	"runtime"
	"runtime/pprof"
)

// Profile runs f under the stdlib profilers: a CPU profile is streamed to
// cpuFile while f runs, and a heap profile is written to memFile after f
// returns (after a GC, so the profile reflects live memory rather than
// garbage). Empty filenames disable the respective profile, so callers can
// pass flag values through unconditionally. Both files are created eagerly;
// profile-write and close errors are reported unless f itself failed first.
func Profile(cpuFile, memFile string, f func() error) error {
	var cf *os.File
	if cpuFile != "" {
		var err error
		cf, err = os.Create(cpuFile)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(cf); err != nil {
			_ = cf.Close()
			return err
		}
	}
	err := f()
	if cf != nil {
		pprof.StopCPUProfile()
		if cerr := cf.Close(); err == nil {
			err = cerr
		}
	}
	if err != nil || memFile == "" {
		return err
	}
	mf, err := os.Create(memFile)
	if err != nil {
		return err
	}
	runtime.GC() // flush dead objects so the profile shows live allocations
	if err := pprof.WriteHeapProfile(mf); err != nil {
		_ = mf.Close()
		return err
	}
	return mf.Close()
}
