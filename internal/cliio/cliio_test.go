package cliio

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, f.err
	}
	f.n--
	return len(p), nil
}

func TestWriterLatchesFirstError(t *testing.T) {
	boom := errors.New("boom")
	dst := &failAfter{n: 2, err: boom}
	w := NewWriter(dst)

	for i := 0; i < 5; i++ {
		fmt.Fprintf(w, "line %d\n", i)
	}
	if !errors.Is(w.Err(), boom) {
		t.Fatalf("Err() = %v, want %v", w.Err(), boom)
	}
	if dst.n != 0 {
		t.Fatalf("writes after the first failure reached the destination")
	}
}

func TestWriterCleanPassThrough(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	fmt.Fprint(w, "hello ")
	fmt.Fprint(w, "world")
	if w.Err() != nil {
		t.Fatalf("Err() = %v on clean writes", w.Err())
	}
	if buf.String() != "hello world" {
		t.Fatalf("buffer = %q", buf.String())
	}
}

func TestNewWriterIdempotent(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf)
	if NewWriter(w) != w {
		t.Fatal("NewWriter(*Writer) must return the same writer, not wrap it again")
	}
}
