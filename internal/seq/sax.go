package seq

import (
	"fmt"
	"math"
	"sort"

	"github.com/recurpat/rp/internal/tsdb"
)

// SAX (Symbolic Aggregate approXimation, Lin et al. 2003) is the standard
// time-series discretization: the series is z-normalized, averaged over
// fixed-length frames (PAA), and each frame mean is mapped to one of a
// alphabet-size symbols using breakpoints that make the symbols
// equiprobable under a standard normal distribution. Each frame becomes one
// event "<name>:<symbol>" stamped at the frame's first timestamp, giving a
// symbol stream the recurring pattern miner consumes directly.

// SAXConfig parameterizes the transform.
type SAXConfig struct {
	// FrameLen is the number of samples averaged per frame (PAA window).
	FrameLen int
	// AlphabetSize is the number of symbols, 2..20.
	AlphabetSize int
}

// gaussianBreakpoints returns the a-1 breakpoints dividing the standard
// normal distribution into a equiprobable regions, computed by bisection on
// the error-function CDF (no external tables).
func gaussianBreakpoints(a int) []float64 {
	bps := make([]float64, a-1)
	for i := 1; i < a; i++ {
		target := float64(i) / float64(a)
		lo, hi := -8.0, 8.0
		for iter := 0; iter < 80; iter++ {
			mid := (lo + hi) / 2
			if stdNormalCDF(mid) < target {
				lo = mid
			} else {
				hi = mid
			}
		}
		bps[i-1] = (lo + hi) / 2
	}
	return bps
}

func stdNormalCDF(x float64) float64 {
	return 0.5 * (1 + math.Erf(x/math.Sqrt2))
}

// SAX discretizes the series. Frames are consecutive runs of FrameLen
// samples (a trailing partial frame is dropped). The emitted event of frame
// k is "<name>:sax<symbol>" at the timestamp of the frame's first sample.
func SAX(s Series, c SAXConfig) (tsdb.EventSequence, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if c.FrameLen <= 0 {
		return nil, fmt.Errorf("seq: FrameLen must be positive, got %d", c.FrameLen)
	}
	if c.AlphabetSize < 2 || c.AlphabetSize > 20 {
		return nil, fmt.Errorf("seq: AlphabetSize must be in 2..20, got %d", c.AlphabetSize)
	}
	if len(s.Samples) < c.FrameLen {
		return nil, nil
	}

	// Z-normalize.
	mean, sd := 0.0, 0.0
	for _, smp := range s.Samples {
		mean += smp.Value
	}
	mean /= float64(len(s.Samples))
	for _, smp := range s.Samples {
		d := smp.Value - mean
		sd += d * d
	}
	sd = math.Sqrt(sd / float64(len(s.Samples)))
	if sd == 0 {
		sd = 1 // constant series: everything maps to the middle symbol
	}

	bps := gaussianBreakpoints(c.AlphabetSize)
	frames := len(s.Samples) / c.FrameLen
	events := make(tsdb.EventSequence, 0, frames)
	for f := 0; f < frames; f++ {
		start := f * c.FrameLen
		sum := 0.0
		for i := 0; i < c.FrameLen; i++ {
			sum += s.Samples[start+i].Value
		}
		paa := (sum/float64(c.FrameLen) - mean) / sd
		sym := sort.SearchFloat64s(bps, paa)
		events = append(events, tsdb.Event{
			Item: fmt.Sprintf("%s:sax%c", s.Name, 'a'+sym),
			TS:   s.Samples[start].TS,
		})
	}
	return events, nil
}
