// Package seq turns real-valued time series into the symbolic event
// sequences the recurring pattern miner consumes. The paper's model (like
// most periodic pattern mining work) operates on categorical events; this
// package provides the standard discretizations that bridge numeric data —
// sensor readings, prices, request rates — into that form:
//
//   - level binning (equal-width or quantile bins): each sample becomes an
//     event "<name>:<bin>" at its timestamp;
//   - delta events: significant up/down moves become events
//     "<name>:up" / "<name>:down";
//   - threshold events: samples crossing a level become "<name>:high".
//
// All functions emit tsdb.Event values that can be mixed freely (several
// series into one event stream) before building the transactional database.
package seq

import (
	"fmt"
	"math"
	"sort"

	"github.com/recurpat/rp/internal/tsdb"
)

// Sample is one numeric observation of a series.
type Sample struct {
	TS    int64
	Value float64
}

// Series is an ordered collection of samples. Functions in this package
// require ascending timestamps (Validate checks).
type Series struct {
	Name    string
	Samples []Sample
}

// Validate reports the first structural problem: empty name, unordered
// timestamps, or non-finite values.
func (s Series) Validate() error {
	if s.Name == "" {
		return fmt.Errorf("seq: series has no name")
	}
	for i, smp := range s.Samples {
		if math.IsNaN(smp.Value) || math.IsInf(smp.Value, 0) {
			return fmt.Errorf("seq: series %q: non-finite value at index %d", s.Name, i)
		}
		if i > 0 && s.Samples[i-1].TS >= smp.TS {
			return fmt.Errorf("seq: series %q: timestamps not strictly increasing at index %d", s.Name, i)
		}
	}
	return nil
}

// EqualWidthBins discretizes the series into n equal-width level bins over
// its observed [min, max] range, emitting one "<name>:bin<k>" event per
// sample (k in 0..n-1). A constant series maps every sample to bin 0.
func EqualWidthBins(s Series, n int) (tsdb.EventSequence, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("seq: bin count must be positive, got %d", n)
	}
	if len(s.Samples) == 0 {
		return nil, nil
	}
	lo, hi := s.Samples[0].Value, s.Samples[0].Value
	for _, smp := range s.Samples {
		lo = math.Min(lo, smp.Value)
		hi = math.Max(hi, smp.Value)
	}
	width := (hi - lo) / float64(n)
	events := make(tsdb.EventSequence, 0, len(s.Samples))
	for _, smp := range s.Samples {
		bin := 0
		if width > 0 {
			bin = int((smp.Value - lo) / width)
			if bin >= n {
				bin = n - 1 // the maximum lands in the last bin
			}
		}
		events = append(events, tsdb.Event{
			Item: fmt.Sprintf("%s:bin%d", s.Name, bin),
			TS:   smp.TS,
		})
	}
	return events, nil
}

// QuantileBins discretizes the series into n equal-frequency bins: bin
// boundaries are the empirical quantiles, so each bin holds roughly the
// same number of samples regardless of the value distribution.
func QuantileBins(s Series, n int) (tsdb.EventSequence, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if n <= 0 {
		return nil, fmt.Errorf("seq: bin count must be positive, got %d", n)
	}
	if len(s.Samples) == 0 {
		return nil, nil
	}
	values := make([]float64, len(s.Samples))
	for i, smp := range s.Samples {
		values[i] = smp.Value
	}
	sort.Float64s(values)
	// Upper boundary of bin k is the ((k+1)/n)-quantile.
	bounds := make([]float64, n-1)
	for k := 0; k < n-1; k++ {
		idx := (k + 1) * len(values) / n
		if idx >= len(values) {
			idx = len(values) - 1
		}
		bounds[k] = values[idx]
	}
	events := make(tsdb.EventSequence, 0, len(s.Samples))
	for _, smp := range s.Samples {
		bin := sort.SearchFloat64s(bounds, smp.Value)
		// SearchFloat64s returns the first boundary >= value; values equal
		// to a boundary belong to the lower bin, matching half-open bins.
		for bin > 0 && smp.Value < bounds[bin-1] {
			bin--
		}
		events = append(events, tsdb.Event{
			Item: fmt.Sprintf("%s:q%d", s.Name, bin),
			TS:   smp.TS,
		})
	}
	return events, nil
}

// DeltaEvents emits "<name>:up" / "<name>:down" events at samples whose
// value moved by at least minMove relative to the previous sample. Flat
// stretches emit nothing.
func DeltaEvents(s Series, minMove float64) (tsdb.EventSequence, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	if minMove < 0 {
		return nil, fmt.Errorf("seq: minMove must be non-negative, got %f", minMove)
	}
	var events tsdb.EventSequence
	for i := 1; i < len(s.Samples); i++ {
		d := s.Samples[i].Value - s.Samples[i-1].Value
		switch {
		case d >= minMove && d != 0:
			events = append(events, tsdb.Event{Item: s.Name + ":up", TS: s.Samples[i].TS})
		case -d >= minMove && d != 0:
			events = append(events, tsdb.Event{Item: s.Name + ":down", TS: s.Samples[i].TS})
		}
	}
	return events, nil
}

// ThresholdEvents emits a "<name>:high" event at every sample at or above
// the threshold — the paper's stock market motivation ("the set of high
// stock indices that rise periodically for a particular time interval").
func ThresholdEvents(s Series, threshold float64) (tsdb.EventSequence, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	var events tsdb.EventSequence
	for _, smp := range s.Samples {
		if smp.Value >= threshold {
			events = append(events, tsdb.Event{Item: s.Name + ":high", TS: smp.TS})
		}
	}
	return events, nil
}

// Merge concatenates event sequences from several series and sorts the
// result, ready for tsdb.FromEvents.
func Merge(seqs ...tsdb.EventSequence) tsdb.EventSequence {
	var all tsdb.EventSequence
	for _, s := range seqs {
		all = append(all, s...)
	}
	all.Sort()
	return all
}
