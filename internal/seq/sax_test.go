package seq

import (
	"math"
	"math/rand/v2"
	"strings"
	"testing"
)

func TestGaussianBreakpoints(t *testing.T) {
	// The a=4 breakpoints are well known: -0.6745, 0, 0.6745.
	bps := gaussianBreakpoints(4)
	want := []float64{-0.6745, 0, 0.6745}
	if len(bps) != 3 {
		t.Fatalf("got %d breakpoints", len(bps))
	}
	for i := range want {
		if math.Abs(bps[i]-want[i]) > 0.001 {
			t.Errorf("bp[%d] = %f, want %f", i, bps[i], want[i])
		}
	}
	// a=3: -0.4307, 0.4307.
	bps = gaussianBreakpoints(3)
	if math.Abs(bps[0]+0.4307) > 0.001 || math.Abs(bps[1]-0.4307) > 0.001 {
		t.Errorf("a=3 breakpoints = %v", bps)
	}
}

func TestSAXValidation(t *testing.T) {
	s := mkSeries("x", 1, 2, 3, 4)
	if _, err := SAX(s, SAXConfig{FrameLen: 0, AlphabetSize: 4}); err == nil {
		t.Error("zero frame must fail")
	}
	if _, err := SAX(s, SAXConfig{FrameLen: 2, AlphabetSize: 1}); err == nil {
		t.Error("alphabet 1 must fail")
	}
	if _, err := SAX(s, SAXConfig{FrameLen: 2, AlphabetSize: 21}); err == nil {
		t.Error("alphabet 21 must fail")
	}
	if _, err := SAX(Series{}, SAXConfig{FrameLen: 2, AlphabetSize: 4}); err == nil {
		t.Error("invalid series must fail")
	}
	// Shorter than one frame: no events, no error.
	got, err := SAX(mkSeries("x", 1), SAXConfig{FrameLen: 2, AlphabetSize: 4})
	if err != nil || got != nil {
		t.Errorf("short series: %v %v", got, err)
	}
}

func TestSAXEquiprobableSymbols(t *testing.T) {
	// On Gaussian data, symbols must be roughly equiprobable.
	rng := rand.New(rand.NewPCG(6, 6))
	s := Series{Name: "g"}
	for i := 0; i < 8000; i++ {
		s.Samples = append(s.Samples, Sample{TS: int64(i + 1), Value: rng.NormFloat64()})
	}
	events, err := SAX(s, SAXConfig{FrameLen: 1, AlphabetSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Item]++
	}
	if len(counts) != 4 {
		t.Fatalf("got %d symbols: %v", len(counts), counts)
	}
	for sym, c := range counts {
		frac := float64(c) / float64(len(events))
		if frac < 0.2 || frac > 0.3 {
			t.Errorf("symbol %s frequency %.3f, want ~0.25", sym, frac)
		}
	}
}

func TestSAXFramesAndSymbols(t *testing.T) {
	// Low half then high half: first frames get low symbols, last frames
	// high ones.
	s := Series{Name: "step"}
	for i := 0; i < 40; i++ {
		v := -1.0
		if i >= 20 {
			v = 1.0
		}
		s.Samples = append(s.Samples, Sample{TS: int64(i + 1), Value: v})
	}
	events, err := SAX(s, SAXConfig{FrameLen: 5, AlphabetSize: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 8 {
		t.Fatalf("got %d frames, want 8", len(events))
	}
	if !strings.HasSuffix(events[0].Item, "saxa") {
		t.Errorf("first frame = %q, want lowest symbol", events[0].Item)
	}
	if !strings.HasSuffix(events[7].Item, "saxd") {
		t.Errorf("last frame = %q, want highest symbol", events[7].Item)
	}
	// Frame timestamps are the frames' first sample timestamps.
	if events[0].TS != 1 || events[1].TS != 6 {
		t.Errorf("frame timestamps: %d, %d", events[0].TS, events[1].TS)
	}
}

func TestSAXConstantSeries(t *testing.T) {
	events, err := SAX(mkSeries("c", 5, 5, 5, 5), SAXConfig{FrameLen: 2, AlphabetSize: 3})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if !strings.HasSuffix(e.Item, "saxb") {
			t.Errorf("constant series should map to the middle symbol, got %q", e.Item)
		}
	}
}
