package seq

import (
	"fmt"
	"math"
	"math/rand/v2"
	"strings"
	"testing"

	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/tsdb"
)

func mkSeries(name string, values ...float64) Series {
	s := Series{Name: name}
	for i, v := range values {
		s.Samples = append(s.Samples, Sample{TS: int64(i + 1), Value: v})
	}
	return s
}

func TestValidate(t *testing.T) {
	if err := (Series{}).Validate(); err == nil {
		t.Error("empty name must fail")
	}
	bad := mkSeries("x", 1, 2)
	bad.Samples[1].TS = 1
	if err := bad.Validate(); err == nil {
		t.Error("duplicate timestamps must fail")
	}
	nan := mkSeries("x", math.NaN())
	if err := nan.Validate(); err == nil {
		t.Error("NaN must fail")
	}
	inf := mkSeries("x", math.Inf(1))
	if err := inf.Validate(); err == nil {
		t.Error("Inf must fail")
	}
	if err := mkSeries("x", 1, 2, 3).Validate(); err != nil {
		t.Errorf("valid series rejected: %v", err)
	}
}

func TestEqualWidthBins(t *testing.T) {
	s := mkSeries("temp", 0, 5, 10)
	events, err := EqualWidthBins(s, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"temp:bin0", "temp:bin1", "temp:bin1"}
	if len(events) != len(want) {
		t.Fatalf("got %d events", len(events))
	}
	for i, e := range events {
		if e.Item != want[i] {
			t.Errorf("event %d = %q, want %q", i, e.Item, want[i])
		}
	}
	// Constant series: everything in bin 0.
	events, err = EqualWidthBins(mkSeries("c", 7, 7, 7), 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		if e.Item != "c:bin0" {
			t.Errorf("constant series event %q", e.Item)
		}
	}
	if _, err := EqualWidthBins(s, 0); err == nil {
		t.Error("zero bins must fail")
	}
	if got, err := EqualWidthBins(Series{Name: "e"}, 3); err != nil || got != nil {
		t.Errorf("empty series: %v %v", got, err)
	}
}

func TestEqualWidthBinsRange(t *testing.T) {
	rng := rand.New(rand.NewPCG(3, 3))
	s := Series{Name: "r"}
	for i := 0; i < 500; i++ {
		s.Samples = append(s.Samples, Sample{TS: int64(i + 1), Value: rng.NormFloat64() * 10})
	}
	n := 8
	events, err := EqualWidthBins(s, n)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range events {
		var bin int
		if _, err := fmt.Sscanf(e.Item, "r:bin%d", &bin); err != nil {
			t.Fatalf("bad item %q", e.Item)
		}
		if bin < 0 || bin >= n {
			t.Fatalf("bin %d out of range", bin)
		}
	}
}

func TestQuantileBinsBalanced(t *testing.T) {
	rng := rand.New(rand.NewPCG(9, 9))
	s := Series{Name: "q"}
	for i := 0; i < 1000; i++ {
		// Heavily skewed distribution: equal-width would lump almost
		// everything into bin 0; quantile bins must stay balanced.
		s.Samples = append(s.Samples, Sample{TS: int64(i + 1), Value: math.Exp(rng.NormFloat64() * 2)})
	}
	n := 4
	events, err := QuantileBins(s, n)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range events {
		counts[e.Item]++
	}
	if len(counts) != n {
		t.Fatalf("got %d distinct bins, want %d: %v", len(counts), n, counts)
	}
	for item, c := range counts {
		if c < len(s.Samples)/n/2 || c > len(s.Samples)*2/n {
			t.Errorf("bin %s has %d samples, want near %d", item, c, len(s.Samples)/n)
		}
	}
	if _, err := QuantileBins(s, 0); err == nil {
		t.Error("zero bins must fail")
	}
}

func TestDeltaEvents(t *testing.T) {
	s := mkSeries("load", 1, 3, 3, 2, 10)
	events, err := DeltaEvents(s, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []tsdb.Event{
		{Item: "load:up", TS: 2},
		{Item: "load:down", TS: 4},
		{Item: "load:up", TS: 5},
	}
	if len(events) != len(want) {
		t.Fatalf("got %v", events)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Errorf("event %d = %v, want %v", i, events[i], want[i])
		}
	}
	if _, err := DeltaEvents(s, -1); err == nil {
		t.Error("negative minMove must fail")
	}
}

func TestThresholdEvents(t *testing.T) {
	s := mkSeries("price", 10, 90, 95, 40)
	events, err := ThresholdEvents(s, 90)
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[0].TS != 2 || events[1].TS != 3 {
		t.Fatalf("got %v", events)
	}
	if events[0].Item != "price:high" {
		t.Errorf("item = %q", events[0].Item)
	}
}

func TestMergeAndMine(t *testing.T) {
	// End to end: two synthetic sensors whose "high" regimes coincide in
	// two separate windows; mining the discretized stream finds the joint
	// recurring pattern.
	mk := func(name string) Series {
		s := Series{Name: name}
		for ts := int64(1); ts <= 200; ts++ {
			v := 1.0
			if (ts >= 30 && ts < 60) || (ts >= 130 && ts < 160) {
				v = 100
			}
			s.Samples = append(s.Samples, Sample{TS: ts, Value: v})
		}
		return s
	}
	e1, err := ThresholdEvents(mk("cpu"), 50)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := ThresholdEvents(mk("mem"), 50)
	if err != nil {
		t.Fatal(err)
	}
	db := tsdb.FromEvents(Merge(e1, e2))
	res, err := core.Mine(db, core.Options{Per: 2, MinPS: 10, MinRec: 2})
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, p := range res.Patterns {
		if len(p.Items) == 2 && p.Recurrence == 2 {
			names := db.PatternNames(p.Items)
			if strings.Contains(names[0]+names[1], "cpu:high") &&
				strings.Contains(names[0]+names[1], "mem:high") {
				found = true
			}
		}
	}
	if !found {
		t.Errorf("joint high-regime pattern not found among %d patterns", len(res.Patterns))
	}
}
