package rp

// One testing.B benchmark per table and figure of the paper's evaluation,
// plus the ablation benches DESIGN.md calls out. Benchmarks run on reduced
// instances of the same workload distributions (see internal/bench for the
// full-scale harness used by EXPERIMENTS.md); thresholds are scaled to keep
// the per-op work representative of one cell of the corresponding table.

import (
	"testing"

	"github.com/recurpat/rp/internal/baseline/partial"
	"github.com/recurpat/rp/internal/baseline/ppattern"
	"github.com/recurpat/rp/internal/bench"
	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/ext"
	"github.com/recurpat/rp/internal/gen"
)

// benchDataset loads a reduced benchmark instance, failing the benchmark on
// error. Scales mirror internal/bench's test scales.
func benchDataset(b *testing.B, name string, scale float64) *bench.Dataset {
	b.Helper()
	d, err := bench.Load(name, scale, 1)
	if err != nil {
		b.Fatal(err)
	}
	return d
}

func mineOnce(b *testing.B, d *bench.Dataset, o core.Options) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Mine(d.DB, o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(res.Patterns)), "patterns")
		}
	}
}

// Table 5 / Table 7 — one representative cell per dataset (counts and
// runtime come from the same mining call; Table 5 reports the former,
// Table 7 the latter).

func BenchmarkTable5T10I4D100K(b *testing.B) {
	d := benchDataset(b, "t10i4d100k", 0.05)
	mineOnce(b, d, core.Options{Per: 720, MinPS: core.MinPSFromPercent(d.DB, 1.0), MinRec: 1})
}

func BenchmarkTable5Shop14(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	mineOnce(b, d, core.Options{Per: 720, MinPS: core.MinPSFromPercent(d.DB, 2.0), MinRec: 1})
}

func BenchmarkTable5Twitter(b *testing.B) {
	d := benchDataset(b, "twitter", 0.05)
	mineOnce(b, d, core.Options{Per: 360, MinPS: core.MinPSFromPercent(d.DB, 15), MinRec: 1})
}

func BenchmarkTable7T10I4D100K(b *testing.B) {
	d := benchDataset(b, "t10i4d100k", 0.05)
	mineOnce(b, d, core.Options{Per: 1440, MinPS: core.MinPSFromPercent(d.DB, 0.5), MinRec: 2})
}

func BenchmarkTable7Shop14(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	mineOnce(b, d, core.Options{Per: 1440, MinPS: core.MinPSFromPercent(d.DB, 2.5), MinRec: 2})
}

func BenchmarkTable7Twitter(b *testing.B) {
	d := benchDataset(b, "twitter", 0.05)
	mineOnce(b, d, core.Options{Per: 720, MinPS: core.MinPSFromPercent(d.DB, 10), MinRec: 2})
}

// Figures 7 and 9 — the minPS sweep at each per (counts and runtimes).

func BenchmarkFigure7Sweep(b *testing.B) {
	d := benchDataset(b, "twitter", 0.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		points, err := bench.Sweep(d, 12, 20, 8)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			total := 0
			for _, p := range points {
				total += p.Count
			}
			b.ReportMetric(float64(total), "patterns")
		}
	}
}

func BenchmarkFigure9Sweep(b *testing.B) {
	// Figure 9 is the runtime view of the same sweep; benchmark one
	// representative high-cost point (per=1440).
	d := benchDataset(b, "twitter", 0.05)
	mineOnce(b, d, core.Options{Per: 1440, MinPS: core.MinPSFromPercent(d.DB, 12), MinRec: 1})
}

// Table 6 — event-story extraction; Figure 8 — daily frequency series.

func BenchmarkTable6Events(b *testing.B) {
	d := benchDataset(b, "twitter", 0.15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table6(d, 6)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(len(rows)), "events")
		}
	}
}

func BenchmarkFigure8Daily(b *testing.B) {
	d := benchDataset(b, "twitter", 0.15)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		series := bench.Figure8(d)
		if len(series) != 4 {
			b.Fatal("missing series")
		}
	}
}

// Table 8 — the three-model comparison.

func BenchmarkTable8Shop14(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	o := bench.DefaultTable8Options(d.Name)
	o.SupPercent *= 20
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rows, err := bench.Table8(d, o)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(rows[2].Count), "ppatterns")
		}
	}
}

func BenchmarkTable8Twitter(b *testing.B) {
	d := benchDataset(b, "twitter", 0.05)
	o := bench.DefaultTable8Options(d.Name)
	o.SupPercent *= 5
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Table8(d, o); err != nil {
			b.Fatal(err)
		}
	}
}

// Ablations (DESIGN.md Section 3).

func BenchmarkAblationPruningOn(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	mineOnce(b, d, core.Options{Per: 360, MinPS: core.MinPSFromPercent(d.DB, 1.0), MinRec: 2})
}

func BenchmarkAblationPruningOff(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	mineOnce(b, d, core.Options{Per: 360, MinPS: core.MinPSFromPercent(d.DB, 1.0), MinRec: 2,
		DisableErecPruning: true})
}

func BenchmarkAblationTree(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	mineOnce(b, d, core.Options{Per: 720, MinPS: core.MinPSFromPercent(d.DB, 2.0), MinRec: 1})
}

func BenchmarkAblationVertical(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	o := core.Options{Per: 720, MinPS: core.MinPSFromPercent(d.DB, 2.0), MinRec: 1}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.MineVertical(d.DB, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationOrderSupportDesc(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	mineOnce(b, d, core.Options{Per: 720, MinPS: core.MinPSFromPercent(d.DB, 2.0), MinRec: 1,
		ItemOrder: core.SupportDescending})
}

func BenchmarkAblationOrderLexicographic(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	mineOnce(b, d, core.Options{Per: 720, MinPS: core.MinPSFromPercent(d.DB, 2.0), MinRec: 1,
		ItemOrder: core.Lexicographic})
}

func BenchmarkAblationSequential(b *testing.B) {
	d := benchDataset(b, "twitter", 0.05)
	mineOnce(b, d, core.Options{Per: 360, MinPS: core.MinPSFromPercent(d.DB, 15), MinRec: 1})
}

func BenchmarkAblationParallel(b *testing.B) {
	d := benchDataset(b, "twitter", 0.05)
	mineOnce(b, d, core.Options{Per: 360, MinPS: core.MinPSFromPercent(d.DB, 15), MinRec: 1,
		Parallelism: 8})
}

// Micro-benchmarks for the building blocks.

func BenchmarkRPListScan(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	o := core.Options{Per: 720, MinPS: core.MinPSFromPercent(d.DB, 1.0), MinRec: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		core.BuildRPList(d.DB, o)
	}
}

func BenchmarkRecurrenceScan(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	lists := d.DB.ItemTSLists()
	var longest []int64
	for _, ts := range lists {
		if len(ts) > len(longest) {
			longest = ts
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Recurrence(longest, 360, 50)
	}
}

func BenchmarkDatasetGeneration(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gen.Twitter(gen.DefaultTwitter(uint64(i)).Scale(0.02))
	}
}

func BenchmarkTopK(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	minPS := core.MinPSFromPercent(d.DB, 1.0)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ext.TopK(d.DB, 720, minPS, 10); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPPatternVariants quantifies the paper's claim that the
// periodic-first p-pattern algorithm is faster than association-first.

func BenchmarkPPatternPeriodicFirst(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	o := ppattern.Options{Per: 1440, Window: 1, MinSup: core.MinPSFromPercent(d.DB, 3)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ppattern.Mine(d.DB, o); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPPatternAssociationFirst(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	o := ppattern.Options{Per: 1440, Window: 1, MinSup: core.MinPSFromPercent(d.DB, 3)}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ppattern.MineAssociationFirst(d.DB, o); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPartialPeriodic covers the symbolic-sequence comparator (Han et
// al. max-subpattern hit set) on the clickstream data with a daily period.

func BenchmarkPartialPeriodic(b *testing.B) {
	d := benchDataset(b, "shop14", 0.25)
	o := partial.Options{Period: 24, MinSup: d.DB.Len() / 24 / 4, MaxSlotItems: 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := partial.Mine(d.DB, o); err != nil {
			b.Fatal(err)
		}
	}
}
