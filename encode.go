package rp

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WritePatternsJSON serializes patterns as a JSON array. Intervals keep
// their Start/End/PS fields, so downstream tooling can reconstruct the
// paper's pattern expression (Definition 9) exactly.
func WritePatternsJSON(w io.Writer, patterns []Pattern) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(patterns)
}

// ReadPatternsJSON parses the output of WritePatternsJSON.
func ReadPatternsJSON(r io.Reader) ([]Pattern, error) {
	var patterns []Pattern
	if err := json.NewDecoder(r).Decode(&patterns); err != nil {
		return nil, fmt.Errorf("rp: decoding patterns: %w", err)
	}
	return patterns, nil
}

// WritePatternsCSV serializes patterns as CSV with the header
//
//	items,support,recurrence,intervals
//
// where items are space-separated and intervals are semicolon-separated
// "start:end:ps" triples.
func WritePatternsCSV(w io.Writer, patterns []Pattern) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"items", "support", "recurrence", "intervals"}); err != nil {
		return err
	}
	for _, p := range patterns {
		ivs := make([]string, len(p.Intervals))
		for i, iv := range p.Intervals {
			ivs[i] = fmt.Sprintf("%d:%d:%d", iv.Start, iv.End, iv.PS)
		}
		row := []string{
			strings.Join(p.Items, " "),
			strconv.Itoa(p.Support),
			strconv.Itoa(p.Recurrence),
			strings.Join(ivs, ";"),
		}
		if err := cw.Write(row); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadPatternsCSV parses the output of WritePatternsCSV.
func ReadPatternsCSV(r io.Reader) ([]Pattern, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("rp: reading pattern CSV: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("rp: pattern CSV has no header")
	}
	patterns := make([]Pattern, 0, len(rows)-1)
	for i, row := range rows[1:] {
		if len(row) != 4 {
			return nil, fmt.Errorf("rp: pattern CSV row %d: want 4 columns, got %d", i+2, len(row))
		}
		p := Pattern{Items: strings.Fields(row[0])}
		if p.Support, err = strconv.Atoi(row[1]); err != nil {
			return nil, fmt.Errorf("rp: pattern CSV row %d: bad support: %w", i+2, err)
		}
		if p.Recurrence, err = strconv.Atoi(row[2]); err != nil {
			return nil, fmt.Errorf("rp: pattern CSV row %d: bad recurrence: %w", i+2, err)
		}
		if row[3] != "" {
			for _, part := range strings.Split(row[3], ";") {
				var iv Interval
				if _, err := fmt.Sscanf(part, "%d:%d:%d", &iv.Start, &iv.End, &iv.PS); err != nil {
					return nil, fmt.Errorf("rp: pattern CSV row %d: bad interval %q: %w", i+2, part, err)
				}
				p.Intervals = append(p.Intervals, iv)
			}
		}
		patterns = append(patterns, p)
	}
	return patterns, nil
}
