// Stocks: the paper's market motivation — "the set of high stock indices
// that rise periodically for a particular time interval may be of special
// interest". This example synthesizes daily closing prices for a basket of
// indices, discretizes them into up-move and high-level events, and mines
// which index groups rally together and in which date ranges.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"strings"

	"github.com/recurpat/rp"
	"github.com/recurpat/rp/internal/ext"
	"github.com/recurpat/rp/internal/seq"
)

func main() {
	rng := rand.New(rand.NewPCG(1929, 10))
	const days = 3 * 365

	// Three sector groups; each sector rallies in its own recurring season
	// (e.g. energy in winters, retail before year-end).
	sectors := map[string][]string{
		"energy": {"OIL", "GAS", "COAL"},
		"retail": {"SHOP", "MALL"},
		"tech":   {"CHIP", "SOFT", "WEB"},
	}
	seasonStart := map[string]int{"energy": 330, "retail": 290, "tech": 120}
	seasonLen := map[string]int{"energy": 80, "retail": 50, "tech": 90}

	var all []rp.EventSequence
	for sector, tickers := range sectors {
		// A shared sector factor correlates the tickers' daily moves.
		factor := make([]float64, days+1)
		for d := 1; d <= days; d++ {
			factor[d] = rng.NormFloat64() * 1.0
		}
		for _, ticker := range tickers {
			s := seq.Series{Name: ticker}
			price := 100.0
			for d := 1; d <= days; d++ {
				doy := d % 365
				drift := -0.02 // mild decay off-season
				inSeason := false
				start := seasonStart[sector]
				end := (start + seasonLen[sector]) % 365
				if start < end {
					inSeason = doy >= start && doy < end
				} else {
					inSeason = doy >= start || doy < end
				}
				if inSeason {
					drift = 1.2 // rallies during the sector's season
				}
				price = math.Max(20, price+drift+factor[d]+rng.NormFloat64()*0.6)
				s.Samples = append(s.Samples, seq.Sample{TS: int64(d), Value: price})
			}
			up, err := seq.DeltaEvents(s, 1.0)
			if err != nil {
				log.Fatal(err)
			}
			all = append(all, up)
		}
	}
	db := rp.FromEvents(seq.Merge(all...))
	fmt.Println("event database:", rp.ComputeStats(db))

	// A rally season: up-moves on at least 15 near-consecutive trading
	// days, recurring in at least 2 years.
	patterns, err := rp.Mine(db, rp.Options{Per: 7, MinPS: 12, MinRec: 2, MaxLen: 3})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nco-rallying index groups:")
	shown := 0
	for _, p := range patterns {
		if len(p.Items) < 2 {
			continue
		}
		if !allUp(p.Items) {
			continue
		}
		fmt.Printf("  {%s} rec=%d seasons:", strings.Join(p.Items, ","), p.Recurrence)
		for _, iv := range p.Intervals {
			fmt.Printf(" [day %d..%d]", iv.Start, iv.End)
		}
		fmt.Println()
		if shown++; shown >= 12 {
			break
		}
	}

	// Threshold-free view: the five most recurrent co-movements.
	raw, err := rp.MineRaw(db, rp.Options{Per: 7, MinPS: 12, MinRec: 1, MaxLen: 3})
	if err != nil {
		log.Fatal(err)
	}
	top, err := ext.TopK(db, 7, 12, 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d patterns total; top-5 by recurrence:\n", len(raw.Patterns))
	for _, p := range top {
		fmt.Printf("  %s rec=%d sup=%d\n", db.FormatPattern(p.Items), p.Recurrence, p.Support)
	}
}

func allUp(items []string) bool {
	for _, it := range items {
		if !strings.HasSuffix(it, ":up") {
			return false
		}
	}
	return true
}
