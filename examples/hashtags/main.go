// Hashtags: the paper's social-network motivation — temporal bursts of
// hashtags such as #uttarakhand (floods) or #pakvotes (elections). This
// example generates a reduced slice of the simulated Twitter stream, mines
// the recurring co-occurring tags, and checks them against the planted
// ground-truth events — the qualitative story of the paper's Table 6.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/recurpat/rp"
	"github.com/recurpat/rp/internal/ext"
	"github.com/recurpat/rp/internal/gen"
)

func main() {
	cfg := gen.DefaultTwitter(7)
	cfg.Days = 30 // May 2013: election, tornado and the first nuclear window
	cfg.SyntheticEvents = 6
	db, events := gen.TwitterWithEvents(cfg)
	fmt.Println("database:", rp.ComputeStats(db))

	// 6-hour period, bursts of at least ~2 days of sustained activity.
	o := rp.Options{Per: 360, MinPS: rp.MinPSFromPercent(db, 3), MinRec: 1, MaxLen: 3}
	patterns, err := rp.Mine(db, o)
	if err != nil {
		log.Fatal(err)
	}

	owner := map[string]string{}
	for _, e := range events {
		label := strings.Join(e.Tags, "+")
		for _, tag := range e.Tags {
			owner[tag] = label
		}
	}

	fmt.Println("\nburst patterns (multi-tag recurring patterns):")
	found := map[string]bool{}
	for _, p := range patterns {
		if len(p.Items) < 2 {
			continue
		}
		ev := owner[p.Items[0]]
		match := ev != ""
		for _, tag := range p.Items[1:] {
			if owner[tag] != ev {
				match = false
			}
		}
		durations := make([]string, len(p.Intervals))
		for i, iv := range p.Intervals {
			durations[i] = fmt.Sprintf("day %d-%d", (iv.Start-1)/1440, (iv.End-1)/1440)
		}
		verdict := "background co-occurrence"
		if match {
			verdict = "planted event " + ev
			found[ev] = true
		}
		fmt.Printf("  {%s} rec=%d %s -> %s\n",
			strings.Join(p.Items, ","), p.Recurrence, strings.Join(durations, ", "), verdict)
	}
	fmt.Printf("\nrediscovered %d of %d planted events with in-horizon windows\n",
		len(found), countInHorizon(events, cfg.Days))

	// Threshold-free view: the 5 most recurrent patterns.
	top, err := ext.TopK(db, 360, rp.MinPSFromPercent(db, 3), 5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\ntop-5 patterns by recurrence:")
	for _, p := range top {
		fmt.Printf("  %s rec=%d sup=%d\n", db.FormatPattern(p.Items), p.Recurrence, p.Support)
	}
}

func countInHorizon(events []gen.BurstEvent, days int) int {
	n := 0
	for _, e := range events {
		for _, w := range e.Windows {
			if w.End <= days {
				n++
				break
			}
		}
	}
	return n
}
