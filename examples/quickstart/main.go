// Quickstart: mine the running example of the paper (Figure 1 / Table 1)
// and print its Table 2 — every recurring pattern with support, recurrence
// and interesting periodic intervals.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/recurpat/rp"
)

func main() {
	// The time series of the paper's Figure 1: items a-g observed at
	// timestamps 1-14 (nothing happens at 8 and 13).
	series := map[int64][]string{
		1:  {"a", "b", "g"},
		2:  {"a", "c", "d"},
		3:  {"a", "b", "e", "f"},
		4:  {"a", "b", "c", "d"},
		5:  {"c", "d", "e", "f", "g"},
		6:  {"e", "f", "g"},
		7:  {"a", "b", "c", "g"},
		9:  {"c", "d"},
		10: {"c", "d", "e", "f"},
		11: {"a", "b", "e", "f"},
		12: {"a", "b", "c", "d", "e", "f", "g"},
		14: {"a", "b", "g"},
	}
	b := rp.NewBuilder()
	for ts, items := range series {
		for _, item := range items {
			b.Add(item, ts)
		}
	}
	db := b.Build()
	fmt.Println("database:", rp.ComputeStats(db))

	// The paper's thresholds: per=2, minPS=3, minRec=2.
	patterns, err := rp.Mine(db, rp.Options{Per: 2, MinPS: 3, MinRec: 2})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nrecurring patterns (the paper's Table 2):")
	fmt.Printf("%-10s %-5s %-5s %s\n", "Pattern", "Sup", "Rec", "Interesting periodic intervals")
	for _, p := range patterns {
		fmt.Printf("%-10s %-5d %-5d ", strings.Join(p.Items, ","), p.Support, p.Recurrence)
		for i, iv := range p.Intervals {
			if i > 0 {
				fmt.Print(", ")
			}
			fmt.Printf("{[%d,%d]:%d}", iv.Start, iv.End, iv.PS)
		}
		fmt.Println()
	}
}
