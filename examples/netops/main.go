// Netops: the paper's rare-item motivation — a network administrator cares
// about rare high-severity events (cascading failures) recurring in bursts,
// against a background of frequent routine events (backups, heartbeats).
// A single support threshold either misses the rare pattern or drowns in
// frequent noise; the recurring pattern model finds both regimes with one
// setting. The example also shows the noise-tolerant extension bridging
// dropped log entries.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"strings"

	"github.com/recurpat/rp"
	"github.com/recurpat/rp/internal/core"
	"github.com/recurpat/rp/internal/ext"
)

func main() {
	db := simulate()
	fmt.Println("event log:", rp.ComputeStats(db))

	// Routine events recur every few minutes all month, so they form one
	// giant periodic interval (recurrence 1); failure cascades recur
	// minute-by-minute only inside two incident windows (recurrence >= 2).
	// One threshold setting surfaces both regimes.
	o := rp.Options{Per: 10, MinPS: 20, MinRec: 1}
	patterns, err := rp.Mine(db, o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecurring event patterns (strict model):")
	printPatterns(db, patterns)
	fmt.Println("note: the incident intervals are fragmented by the 15-minute log outages")

	// The same mining with a noise budget: up to 3 missing beats per
	// interval, each within 3x the period, are bridged. The fragmented
	// incident intervals coalesce.
	noisy, err := ext.MineNoisy(db, ext.NoiseOptions{
		Options:       core.Options{Per: 10, MinPS: 20, MinRec: 1},
		MaxViolations: 3,
		NoiseFactor:   3,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nwith noise tolerance (3 dropped beats bridged per interval):")
	named := make([]rp.Pattern, len(noisy.Patterns))
	for i, p := range noisy.Patterns {
		named[i] = rp.Pattern{
			Items: db.PatternNames(p.Items), Support: p.Support,
			Recurrence: p.Recurrence, Intervals: p.Intervals,
		}
	}
	printPatterns(db, named)
}

func printPatterns(db *rp.DB, patterns []rp.Pattern) {
	for _, p := range patterns {
		if len(p.Items) < 2 {
			continue
		}
		kind := "routine"
		if strings.HasPrefix(p.Items[0], "sev1") {
			kind = "INCIDENT"
		}
		fmt.Printf("  [%-8s] {%s} sup=%d rec=%d intervals=%d\n",
			kind, strings.Join(p.Items, ","), p.Support, p.Recurrence, len(p.Intervals))
	}
}

// simulate builds a month of minute-level logs: heartbeat+backup routine
// pairs throughout, and two 2-hour cascading-failure incidents where
// sev1-linkdown and sev1-bgp-flap fire nearly every minute — rare overall
// (support ~0.6%), dense within their windows. A 15-minute log outage in
// the middle of each incident fragments the strict intervals; the noise
// tolerance bridges them.
func simulate() *rp.DB {
	rng := rand.New(rand.NewPCG(404, 1))
	b := rp.NewBuilder()
	horizon := int64(30 * 1440)
	for ts := int64(1); ts <= horizon; ts++ {
		if ts%5 == 0 { // routine telemetry every 5 minutes
			b.Add("heartbeat", ts)
			b.Add("backup-ok", ts)
		}
		if rng.Float64() < 0.05 {
			b.Add("login", ts)
		}
	}
	for _, start := range []int64{7 * 1440, 21 * 1440} {
		for ts := start; ts < start+120; ts++ {
			if off := ts - start; off >= 55 && off < 70 {
				continue // log outage mid-incident
			}
			if rng.Float64() < 0.95 { // occasional dropped entries
				b.Add("sev1-linkdown", ts)
				b.Add("sev1-bgp-flap", ts)
			}
		}
	}
	return b.Build()
}
