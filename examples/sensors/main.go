// Sensors: mining recurring patterns from numeric time series. The model
// operates on symbolic events, so real-valued telemetry is first
// discretized (internal/seq): threshold crossings, significant moves, and
// level bins all become items. Here two servers exhibit correlated
// overload regimes twice a week; the miner recovers the joint pattern and
// its weekly windows from the raw numbers.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand/v2"
	"strings"

	"github.com/recurpat/rp"
	"github.com/recurpat/rp/internal/seq"
)

func main() {
	rng := rand.New(rand.NewPCG(77, 7))
	cpu := seq.Series{Name: "web-cpu"}
	lat := seq.Series{Name: "db-latency"}
	const days = 28
	for ts := int64(1); ts <= days*1440; ts++ {
		day := int((ts - 1) / 1440 % 7)
		minute := int((ts - 1) % 1440)
		// Batch jobs hammer both systems Monday and Thursday evenings.
		overload := (day == 0 || day == 3) && minute >= 19*60 && minute < 22*60
		base := 30 + 10*math.Sin(float64(minute)/1440*2*math.Pi)
		if overload {
			base += 55
		}
		cpu.Samples = append(cpu.Samples, seq.Sample{TS: ts, Value: base + rng.NormFloat64()*5})
		l := 20.0
		if overload {
			l = 95
		}
		lat.Samples = append(lat.Samples, seq.Sample{TS: ts, Value: l + rng.NormFloat64()*8})
	}

	cpuHigh, err := seq.ThresholdEvents(cpu, 70)
	if err != nil {
		log.Fatal(err)
	}
	latHigh, err := seq.ThresholdEvents(lat, 70)
	if err != nil {
		log.Fatal(err)
	}
	db := rp.FromEvents(seq.Merge(cpuHigh, latHigh))
	fmt.Println("discretized event DB:", rp.ComputeStats(db))

	// Overload windows are ~180 minutes twice a week: demand 100 sustained
	// co-occurrences per window and at least 4 windows over the month.
	patterns, err := rp.Mine(db, rp.Options{Per: 10, MinPS: 100, MinRec: 4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nrecurring overload patterns:")
	for _, p := range patterns {
		fmt.Printf("  {%s} rec=%d sup=%d\n", strings.Join(p.Items, ","), p.Recurrence, p.Support)
		for _, iv := range p.Intervals {
			fmt.Printf("    day %d %02d:%02d -> day %d %02d:%02d (%d beats)\n",
				(iv.Start-1)/1440, (iv.Start-1)%1440/60, (iv.Start-1)%60,
				(iv.End-1)/1440, (iv.End-1)%1440/60, (iv.End-1)%60, iv.PS)
		}
	}
	if len(patterns) == 0 {
		fmt.Println("  (none found — try lowering the thresholds)")
	}
}
