// Retail: the paper's opening motivation — seasonal purchase associations
// like {Jackets, Gloves} recurring every winter. This example simulates two
// years of daily sales, mines the recurring co-purchases, derives recurring
// association rules, and asks a temporally aware recommender for
// suggestions inside and outside the season.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"

	"github.com/recurpat/rp"
	"github.com/recurpat/rp/internal/ext"
)

const day = int64(1) // timestamps are day numbers

func main() {
	db := simulate()
	fmt.Println("database:", rp.ComputeStats(db))

	// Winter runs ~120 days; demand a pattern that recurs on at least 30
	// roughly-daily purchases per season, in at least 2 seasons.
	o := rp.Options{Per: 7 * day, MinPS: 30, MinRec: 2}
	patterns, err := rp.Mine(db, o)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nseasonal recurring patterns:")
	for _, p := range patterns {
		if len(p.Items) < 2 {
			continue
		}
		fmt.Printf("  %v  sup=%d rec=%d seasons=", p.Items, p.Support, p.Recurrence)
		for i, iv := range p.Intervals {
			if i > 0 {
				fmt.Print(",")
			}
			fmt.Printf("[day %d..%d]", iv.Start, iv.End)
		}
		fmt.Println()
	}

	// Recurring association rules and in-season recommendation.
	rules, err := ext.Rules(db, ext.RuleOptions{Options: o, MinConfidence: 0.4})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d recurring rules derived; top rules:\n", len(rules))
	for i := 0; i < 5 && i < len(rules); i++ {
		r := rules[i]
		fmt.Printf("  %v => %s (conf %.2f, rec %d)\n",
			db.PatternNames(r.Antecedent), db.Dict.Name(r.Consequent), r.Confidence, r.Recurrence)
	}

	rec := ext.NewRecommender(db, rules)
	rec.Slack = 7 * day
	midWinter, midSummer := int64(60), int64(240)
	fmt.Printf("\nbasket [jackets] on day %d (winter): %v\n", midWinter,
		rec.Recommend([]string{"jackets"}, midWinter, 3))
	fmt.Printf("basket [jackets] on day %d (summer): %v\n", midSummer,
		rec.Recommend([]string{"jackets"}, midSummer, 3))
}

// simulate builds two years of daily transactions: year-round staples,
// winter gear that sells mid-November through mid-March, and summer gear
// from June through August.
func simulate() *rp.DB {
	rng := rand.New(rand.NewPCG(2015, 23))
	b := rp.NewBuilder()
	staples := []string{"milk", "bread", "eggs", "coffee"}
	winter := []string{"jackets", "gloves", "scarves"}
	summer := []string{"sunscreen", "sandals"}
	for d := int64(1); d <= 730; d++ {
		for _, it := range staples {
			if rng.Float64() < 0.8 {
				b.Add(it, d)
			}
		}
		doy := d % 365
		if doy >= 320 || doy < 75 { // winter season
			for _, it := range winter {
				if rng.Float64() < 0.7 {
					b.Add(it, d)
				}
			}
		}
		if doy >= 150 && doy < 240 { // summer season
			for _, it := range summer {
				if rng.Float64() < 0.7 {
					b.Add(it, d)
				}
			}
		}
		// Occasional off-season purchases (noise).
		if rng.Float64() < 0.03 {
			b.Add(winter[rng.IntN(len(winter))], d)
		}
	}
	return b.Build()
}
