package rp

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

func minedPaperPatterns(t *testing.T) []Pattern {
	t.Helper()
	db := FromEvents(paperEvents())
	patterns, err := Mine(db, Options{Per: 2, MinPS: 3, MinRec: 2})
	if err != nil {
		t.Fatal(err)
	}
	return patterns
}

func TestJSONRoundTrip(t *testing.T) {
	patterns := minedPaperPatterns(t)
	var buf bytes.Buffer
	if err := WritePatternsJSON(&buf, patterns); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPatternsJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, patterns) {
		t.Errorf("JSON round trip changed patterns:\ngot  %+v\nwant %+v", got, patterns)
	}
}

func TestCSVRoundTrip(t *testing.T) {
	patterns := minedPaperPatterns(t)
	var buf bytes.Buffer
	if err := WritePatternsCSV(&buf, patterns); err != nil {
		t.Fatal(err)
	}
	if !strings.HasPrefix(buf.String(), "items,support,recurrence,intervals\n") {
		t.Errorf("missing header:\n%s", buf.String())
	}
	got, err := ReadPatternsCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, patterns) {
		t.Errorf("CSV round trip changed patterns:\ngot  %+v\nwant %+v", got, patterns)
	}
}

func TestReadPatternsCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"items,support,recurrence,intervals\na b,x,2,1:2:3\n",
		"items,support,recurrence,intervals\na b,2,x,1:2:3\n",
		"items,support,recurrence,intervals\na b,2,2,nonsense\n",
	}
	for _, in := range cases {
		if _, err := ReadPatternsCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadPatternsCSV(%q) should fail", in)
		}
	}
}

func TestReadPatternsJSONErrors(t *testing.T) {
	if _, err := ReadPatternsJSON(strings.NewReader("{not json")); err == nil {
		t.Error("bad JSON must fail")
	}
}

func TestCSVEmptyIntervals(t *testing.T) {
	in := "items,support,recurrence,intervals\na,5,0,\n"
	got, err := ReadPatternsCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Intervals != nil {
		t.Errorf("got %+v", got)
	}
}
